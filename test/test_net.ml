(* The network plane: tuple/packet codec properties, a golden wire
   fixture, the remote exchange against real worker processes (the
   differential behind the encapsulation claim crossing a socket), its
   failure semantics (killed worker, injected faults at every net site),
   and the serving plane.

   The worker side of these tests is this very test binary re-executed
   in net-worker mode ([worker_main], dispatched from [main.ml] before
   Alcotest sees argv), so parent and workers share one task
   vocabulary — exactly the arrangement the CLI uses. *)

module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Remote = Volcano_plan.Remote
module Exchange = Volcano.Exchange
module Packet = Volcano.Packet
module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Rng = Volcano_util.Rng
module Fault = Volcano_fault
module Injector = Volcano_fault.Injector
module Wire = Volcano_net.Wire
module Codec = Volcano_net.Codec
module Launcher = Volcano_net.Launcher
module Repart = Volcano_net.Repart
module Serve = Volcano_net.Serve
module Sched = Volcano_sched.Sched
module Bufpool = Volcano_storage.Bufpool

(* --- the test task vocabulary ---------------------------------------- *)

let gen_plan n =
  Plan.Generate_slice
    { arity = 2; count = n; gen = (fun i -> Tuple.of_ints [ i; i * i mod 97 ]) }

(* A stream that is deliberately slow to produce, so a query over it is
   reliably mid-stream when a test kills a worker or walks away. *)
let slow_plan n ms =
  Plan.Generate_slice
    {
      arity = 2;
      count = n;
      gen =
        (fun i ->
          if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.);
          Tuple.of_ints [ i; i * 2 ]);
    }

let parse_task task =
  match String.split_on_char ':' task with
  | [ "corpus"; seed; depth ] ->
      Test_random_plans.random_plan
        (Rng.create (Int64.of_string seed))
        (int_of_string depth)
  | [ "gen"; n ] -> gen_plan (int_of_string n)
  | [ "slow"; n; ms ] -> slow_plan (int_of_string n) (int_of_string ms)
  | _ -> failwith ("unknown test task " ^ task)

(* Worker-process main: [main.ml] dispatches here when argv says
   net-worker, before Alcotest parses anything. *)
let worker_main ~socket =
  Volcano_net.Worker.run ~socket ~resolve:(fun ~task ~shard ~shards ->
      match String.split_on_char ':' task with
      | [ "fail"; msg ] -> failwith msg
      | _ ->
          let env = Env.create ~frames:128 ~page_size:512 () in
          Remote.shard_pull env ~shard ~shards (parse_task task))

let worker_command ~socket = [| Sys.executable_name; "net-worker"; socket |]

let register ?pids env =
  Env.set_remote_launcher env (fun ~faults ~repartition ~workers ~task
                                   ~packet_size ->
      let launched =
        Launcher.launch ~faults
          ?repartition:
            (Option.map
               (fun (spec, dests) -> Repart.of_partition_spec spec ~dests)
               repartition)
          ~command:worker_command ~workers ~task ~packet_size ()
      in
      Option.iter (fun r -> r := Array.to_list launched.Launcher.pids) pids;
      launched.Launcher.sources)

let remote ?(workers = 2) ?(packet_size = 7) ?(flow_slack = Some 4) ~task input
    =
  Plan.Remote
    {
      cfg = Exchange.config ~degree:workers ~packet_size ~flow_slack ();
      workers;
      task;
      input;
    }

let sorted run = List.sort Tuple.compare run

(* Same harness as the chaos suite: a hang is a failure, not a stuck CI. *)
type outcome = Rows of Tuple.t list | Raised of exn | Timeout

let run_with_timeout ?(seconds = 30.0) f =
  let slot = Atomic.make None in
  let worker =
    Domain.spawn (fun () ->
        let r = try Rows (f ()) with exn -> Raised exn in
        Atomic.set slot (Some r))
  in
  let deadline = Unix.gettimeofday () +. seconds in
  let rec wait () =
    match Atomic.get slot with
    | Some r ->
        Domain.join worker;
        r
    | None ->
        if Unix.gettimeofday () > deadline then Timeout
        else begin
          Unix.sleepf 0.001;
          wait ()
        end
  in
  wait ()

let check_quiescent ~what env ~unjoined0 ~live0 =
  Bufpool.assert_quiescent ~what (Env.buffer env);
  Alcotest.(check int)
    (what ^ ": no unjoined domains")
    unjoined0
    (Exchange.unjoined_domains ());
  Alcotest.(check int)
    (what ^ ": no live domains")
    live0 (Exchange.live_domains ());
  Sched.assert_quiescent ~what (Sched.default ())

(* --- codec properties ------------------------------------------------- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun i -> Value.Int i) int;
        (* NaN is excluded only because the test compares structurally;
           the codec itself round-trips any bit pattern (int64 bits). *)
        map
          (fun f -> Value.Float (if Float.is_nan f then 0.0 else f))
          float;
        map (fun s -> Value.Str s) (string_size (int_bound 40));
      ])

let tuple_arb =
  QCheck.make
    ~print:(fun t -> Tuple.to_string t)
    QCheck.Gen.(map Tuple.make (list_size (int_bound 8) value_gen))

let prop_rows_roundtrip =
  QCheck.Test.make ~name:"rows codec round-trips all column types" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_bound 12) tuple_arb)
    (fun rows -> Codec.decode_rows (Codec.encode_rows rows) = rows)

let prop_packet_roundtrip =
  QCheck.Test.make ~name:"packet codec round-trips through a shell"
    ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_bound 12) tuple_arb)
    (fun rows ->
      let capacity = max 1 (List.length rows) in
      let src = Packet.create ~capacity ~producer:0 in
      List.iter (Packet.add src) rows;
      let dst = Packet.create ~capacity ~producer:1 in
      Codec.decode_into (Codec.encode src) dst;
      List.init (Packet.length dst) (Packet.get dst) = rows)

let prop_truncation_rejected =
  QCheck.Test.make ~name:"every strict prefix of an encoding is rejected"
    ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_bound 4) tuple_arb)
    (fun rows ->
      let buf = Codec.encode_rows rows in
      let rejected len =
        match Codec.decode_rows (Bytes.sub buf 0 len) with
        | _ -> false
        | exception Wire.Corrupt _ -> true
      in
      List.for_all rejected (List.init (Bytes.length buf) Fun.id))

let test_wire_hello_err_roundtrip () =
  let h =
    Wire.parse_hello
      (Wire.hello ~task:"corpus:7:2" ~shard:3 ~shards:5 ~packet_size:83 ())
  in
  Alcotest.(check string) "task" "corpus:7:2" h.Wire.task;
  Alcotest.(check int) "shard" 3 h.Wire.shard;
  Alcotest.(check int) "shards" 5 h.Wire.shards;
  Alcotest.(check int) "packet size" 83 h.Wire.packet_size;
  Alcotest.(check bool) "merge hello" false h.Wire.repartition;
  let h' =
    Wire.parse_hello
      (Wire.hello ~repartition:true ~task:"t" ~shard:0 ~shards:1
         ~packet_size:7 ())
  in
  Alcotest.(check bool) "repartition flag" true h'.Wire.repartition;
  let site, message = Wire.parse_err (Wire.err ~site:"net-worker-1" ~message:"boom") in
  Alcotest.(check string) "site" "net-worker-1" site;
  Alcotest.(check string) "message" "boom" message

(* The golden fixture: the exact bytes of a known row-list encoding,
   asserted in both directions.  A codec change that breaks
   cross-process (or cross-version) compatibility must show up here as
   a changed constant, not as a silent re-encode. *)
let golden_rows =
  [
    Tuple.make
      [ Value.Int 42; Value.Null; Value.Float 1.5; Value.Str "volcano" ];
    Tuple.make [ Value.Int (-1) ];
  ]

let golden_hex =
  "02000000" (* u32 LE row count *)
  ^ "0400" (* u16 LE field count *)
  ^ "012a00000000000000" (* Int 42 *)
  ^ "00" (* Null *)
  ^ "02000000000000f83f" (* Float 1.5 (IEEE bits LE) *)
  ^ "030700766f6c63616e6f" (* Str "volcano" *)
  ^ "0100" (* u16 LE field count *)
  ^ "01ffffffffffffffff" (* Int -1 *)

let hex_of bytes =
  String.concat ""
    (List.init (Bytes.length bytes) (fun i ->
         Printf.sprintf "%02x" (Char.code (Bytes.get bytes i))))

let bytes_of_hex s =
  Bytes.init
    (String.length s / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let test_golden_frame () =
  Alcotest.(check string)
    "encode matches the golden bytes" golden_hex
    (hex_of (Codec.encode_rows golden_rows));
  Alcotest.(check bool)
    "golden bytes decode to the rows" true
    (Codec.decode_rows (bytes_of_hex golden_hex) = golden_rows)

(* --- remote exchange against real worker processes -------------------- *)

(* The encapsulation claim across the wire: [Plan.Remote] over N worker
   processes must be bit-identical (as a multiset) to the same subtree
   under a local exchange of the same degree — workers rebuild the
   corpus plan from its seed and shard it exactly as local producer
   ranks would. *)
let test_remote_local_differential () =
  for i = 0 to 7 do
    let seed = Int64.of_int ((104729 * i) + 3) in
    let depth = 1 + (i mod 2) in
    let workers = 2 + (i mod 2) in
    let serial = Test_random_plans.random_plan (Rng.create seed) depth in
    let env = Env.create ~frames:128 ~page_size:512 () in
    register env;
    let unjoined0 = Exchange.unjoined_domains () in
    let live0 = Exchange.live_domains () in
    let local =
      sorted
        (Runner.run env
           (Plan.Exchange
              {
                cfg = Exchange.config ~degree:workers ~packet_size:7 ();
                input = serial;
              }))
    in
    let task = Printf.sprintf "corpus:%Ld:%d" seed depth in
    let outcome =
      run_with_timeout (fun () ->
          Runner.run env (remote ~workers ~task serial))
    in
    (match outcome with
    | Rows rows ->
        if sorted rows <> local then
          Alcotest.failf "remote diverges from local (seed=%Ld depth=%d)" seed
            depth
    | Raised exn ->
        Alcotest.failf "remote run failed (seed=%Ld): %s" seed
          (Printexc.to_string exn)
    | Timeout -> Alcotest.failf "remote run hung (seed=%Ld)" seed);
    check_quiescent ~what:"remote differential" env ~unjoined0 ~live0
  done

(* A worker process killed mid-stream must surface as exactly one
   [Query_failed] at the consumer — no hang, no partial result. *)
let test_killed_worker () =
  let env = Env.create ~frames:128 ~page_size:512 () in
  let pids = ref [] in
  register ~pids env;
  let unjoined0 = Exchange.unjoined_domains () in
  let live0 = Exchange.live_domains () in
  let killer =
    Thread.create
      (fun () ->
        let rec await n =
          if !pids = [] && n > 0 then begin
            Unix.sleepf 0.01;
            await (n - 1)
          end
        in
        await 1000;
        Unix.sleepf 0.05;
        match !pids with
        | pid :: _ -> ( try Unix.kill pid Sys.sigkill with _ -> ())
        | [] -> ())
      ()
  in
  (match
     run_with_timeout (fun () ->
         Runner.run env (remote ~task:"slow:100000:1" (slow_plan 100000 1)))
   with
  | Raised (Exchange.Query_failed { site; _ }) ->
      if not (String.length site >= 10 && String.sub site 0 10 = "net-worker")
      then Alcotest.failf "killed worker surfaced at site %S" site
  | Raised exn ->
      Alcotest.failf "killed worker surfaced as %s, not Query_failed"
        (Printexc.to_string exn)
  | Rows _ -> Alcotest.fail "query succeeded despite a killed worker"
  | Timeout -> Alcotest.fail "killed worker hung the query");
  Thread.join killer;
  check_quiescent ~what:"killed worker" env ~unjoined0 ~live0

(* A worker whose task resolution fails reports an [Err] frame; the
   consumer re-raises it as the selfsame single [Query_failed]. *)
let test_worker_task_failure () =
  let env = Env.create ~frames:128 ~page_size:512 () in
  register env;
  let unjoined0 = Exchange.unjoined_domains () in
  let live0 = Exchange.live_domains () in
  (match
     run_with_timeout (fun () ->
         Runner.run env (remote ~task:"fail:planted" (gen_plan 10)))
   with
  | Raised (Exchange.Query_failed _) -> ()
  | Raised exn ->
      Alcotest.failf "worker failure surfaced as %s" (Printexc.to_string exn)
  | Rows _ -> Alcotest.fail "query succeeded despite a failing worker"
  | Timeout -> Alcotest.fail "worker failure hung the query");
  check_quiescent ~what:"worker task failure" env ~unjoined0 ~live0

(* Early close cancels across the socket: walking away from a remote
   stream that would take minutes to drain must tear down promptly —
   cancel frames / socket shutdown reach the workers, feeders join,
   processes are reaped. *)
let test_remote_early_close () =
  let env = Env.create ~frames:128 ~page_size:512 () in
  register env;
  let unjoined0 = Exchange.unjoined_domains () in
  let live0 = Exchange.live_domains () in
  (match
     run_with_timeout (fun () ->
         Runner.run env
           (Plan.Limit
              {
                count = 5;
                input = remote ~task:"slow:100000:1" (slow_plan 100000 1);
              }))
   with
  | Rows rows -> Alcotest.(check int) "limit rows" 5 (List.length rows)
  | Raised exn ->
      Alcotest.failf "early close failed: %s" (Printexc.to_string exn)
  | Timeout -> Alcotest.fail "early close hung (cancel never crossed)");
  check_quiescent ~what:"remote early close" env ~unjoined0 ~live0

(* Chaos at the network sites: a counted [Fail] at each site in turn
   must surface as one well-typed [Query_failed] carrying that site's
   name — connection refusal at launch, a dropped read, a failed write,
   a truncated frame — with nothing leaked.  (These same sites are also
   drawn by [Fault.random_plan] in the main chaos matrix.) *)
let test_net_fault_sites () =
  List.iter
    (fun (site, hit) ->
      let env = Env.create ~frames:128 ~page_size:512 () in
      register env;
      let unjoined0 = Exchange.unjoined_domains () in
      let live0 = Exchange.live_domains () in
      Env.set_faults env
        (Injector.make
           {
             Fault.seed = 11L;
             rules =
               [ { Fault.site; trigger = Fault.At_hit hit; action = Fault.Fail } ];
           });
      (match
         run_with_timeout (fun () ->
             Runner.run env (remote ~task:"gen:3000" (gen_plan 3000)))
       with
      | Raised (Exchange.Query_failed { site = s; _ }) ->
          Alcotest.(check string)
            (Fault.site_name site ^ " site crosses intact")
            (Fault.site_name site) s
      | Raised exn ->
          Alcotest.failf "fault at %s surfaced as %s" (Fault.site_name site)
            (Printexc.to_string exn)
      | Rows _ ->
          Alcotest.failf "fault at %s never fired" (Fault.site_name site)
      | Timeout ->
          Alcotest.failf "fault at %s hung the query" (Fault.site_name site));
      Env.clear_faults env;
      check_quiescent
        ~what:("net fault " ^ Fault.site_name site)
        env ~unjoined0 ~live0)
    [
      (Fault.Net_connect, 1);
      (Fault.Net_read, 3);
      (Fault.Net_write, 1);
      (Fault.Net_frame, 2);
    ]

(* --- planlint: the VL7xx remote pass ---------------------------------- *)

let vl_codes env ?batch_size plan =
  List.filter_map Volcano_analysis.Diag.vl_code
    (Compile.analyze ?batch_size env plan)

let test_planlint_remote () =
  let env = Env.create () in
  (* degree/worker disagreement is an error *)
  let mismatched =
    Plan.Remote
      {
        cfg = Exchange.config ~degree:2 ~flow_slack:(Some 4) ();
        workers = 3;
        task = "gen:10";
        input = gen_plan 10;
      }
  in
  Alcotest.(check bool)
    "VL701 on degree/worker mismatch" true
    (List.mem "VL701" (vl_codes env mismatched));
  (* an empty task is an error *)
  Alcotest.(check bool)
    "VL701 on empty task" true
    (List.mem "VL701" (vl_codes env (remote ~task:"" (gen_plan 10))));
  (* no flow slack on the wire edge is a warning *)
  Alcotest.(check bool)
    "VL702 without flow slack" true
    (List.mem "VL702"
       (vl_codes env (remote ~flow_slack:None ~task:"gen:10" (gen_plan 10))));
  (* batching off while shipping batches is a warning *)
  Alcotest.(check bool)
    "VL703 with batch_size 0" true
    (List.mem "VL703"
       (vl_codes env ~batch_size:0 (remote ~task:"gen:10" (gen_plan 10))));
  (* a well-configured remote edge draws none of them *)
  let clean =
    vl_codes env (remote ~packet_size:83 ~task:"gen:10" (gen_plan 10))
  in
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (code ^ " absent on a clean remote plan")
        false (List.mem code clean))
    [ "VL701"; "VL702"; "VL703" ];
  (* and the schema pass still sees through the wire *)
  Alcotest.(check bool)
    "schema errors surface through Remote" true
    (List.mem "VL101"
       (vl_codes env
          (Plan.Project_cols
             { cols = [ 9 ]; input = remote ~task:"gen:10" (gen_plan 10) })))

(* --- the serving plane ------------------------------------------------ *)

let test_serve_concurrent_clients () =
  (* An atomically created temp name, not a pid-derived one: pid reuse
     after a crashed run could leave a stale socket file exactly where a
     pid-named path would bind next. *)
  let socket = Filename.temp_file "volcano-test-serve-" ".sock" in
  Unix.unlink socket;
  let handle task =
    match int_of_string_opt task with
    | Some n -> Ok (List.init n (fun i -> Tuple.of_ints [ i; i * 3 ]))
    | None -> Error ("serve-test", "bad task " ^ task)
  in
  let server = Serve.Server.start ~socket ~handle () in
  let failures = Atomic.make 0 in
  let client i =
    let c = Serve.Client.connect ~socket in
    Fun.protect
      ~finally:(fun () -> Serve.Client.close c)
      (fun () ->
        for r = 0 to 9 do
          let n = ((i * 10) + r) mod 23 in
          match Serve.Client.query c (string_of_int n) with
          | Ok rows
            when rows = List.init n (fun j -> Tuple.of_ints [ j; j * 3 ]) ->
              ()
          | Ok _ | Error _ -> Atomic.incr failures
        done;
        match Serve.Client.query c "nope" with
        | Error ("serve-test", _) -> ()
        | Ok _ | Error _ -> Atomic.incr failures)
  in
  let threads = List.init 8 (fun i -> Thread.create (fun () -> client i) ()) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no failed requests" 0 (Atomic.get failures);
  Alcotest.(check int) "request count" 88 (Serve.Server.requests server);
  Alcotest.(check int) "error count" 8 (Serve.Server.errors server);
  (* remote shutdown, then stop merely joins (and is idempotent) *)
  let c = Serve.Client.connect ~socket in
  Serve.Client.shutdown_server c;
  Serve.Client.close c;
  Serve.Server.stop server;
  Serve.Server.stop server;
  try Sys.remove socket with _ -> ()

let suite =
  [
    QCheck_alcotest.to_alcotest prop_rows_roundtrip;
    QCheck_alcotest.to_alcotest prop_packet_roundtrip;
    QCheck_alcotest.to_alcotest prop_truncation_rejected;
    Alcotest.test_case "hello/err frames round-trip" `Quick
      test_wire_hello_err_roundtrip;
    Alcotest.test_case "golden wire fixture" `Quick test_golden_frame;
    Alcotest.test_case "remote matches local over the corpus" `Slow
      test_remote_local_differential;
    Alcotest.test_case "killed worker yields one Query_failed" `Slow
      test_killed_worker;
    Alcotest.test_case "worker task failure crosses as Query_failed" `Slow
      test_worker_task_failure;
    Alcotest.test_case "early close cancels across the socket" `Slow
      test_remote_early_close;
    Alcotest.test_case "faults at every net site" `Slow test_net_fault_sites;
    Alcotest.test_case "planlint VL7xx remote pass" `Quick
      test_planlint_remote;
    Alcotest.test_case "serve: concurrent clients" `Quick
      test_serve_concurrent_clients;
  ]
