(* The encapsulation property as a randomized test: generate random plan
   trees, then decorate them with random, structure-respecting exchange
   insertions (vertical pipelines anywhere; GAMMA-style repartitioning
   around matches and aggregations; merge networks around sorts) and check
   that the result multiset never changes.  This is the paper's central
   claim run as a property. *)

module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Exchange = Volcano.Exchange
module Sched = Volcano_sched.Sched
module Bufpool = Volcano_storage.Bufpool
module Tuple = Volcano_tuple.Tuple
module Expr = Volcano_tuple.Expr
module Support = Volcano_tuple.Support
module Match_op = Volcano_ops.Match_op
module Rng = Volcano_util.Rng

(* --- random serial plans ------------------------------------------- *)

(* All leaves are [Generate_slice]: in a solo group that is an ordinary
   generator, and under a degree-d exchange each producer generates its
   share — the invariant decoration relies on. *)
let leaf rng =
  let n = 1 + Rng.int rng 60 in
  let seed = Rng.int64 rng in
  let gen i =
    let r = Rng.create (Int64.add seed (Int64.of_int i)) in
    Tuple.of_ints [ Rng.int r 8; Rng.int r 5; Rng.int r 1000 ]
  in
  Plan.Generate_slice { arity = 3; count = n; gen }

(* Output width of a generated plan (no catalog needed: no Scan_table). *)
let rec plan_arity = function
  | Plan.Generate_slice { arity; _ } -> arity
  | Plan.Filter { input; _ } | Plan.Sort { input; _ } -> plan_arity input
  | Plan.Project_cols { cols; _ } -> List.length cols
  | Plan.Distinct { input; _ } -> plan_arity input
  | Plan.Aggregate { group_by; aggs; _ } ->
      List.length group_by + List.length aggs
  | Plan.Match { kind; left; right; _ } ->
      Volcano_ops.Match_op.output_arity kind ~left_arity:(plan_arity left)
        ~right_arity:(plan_arity right)
  | _ -> assert false

let all_cols plan = List.init (plan_arity plan) Fun.id

(* Deterministic-multiset operators only (no Limit; Distinct only over ALL
   columns — on a proper subset it keeps an arbitrary representative). *)
let rec random_plan rng depth =
  if depth = 0 then leaf rng
  else
    match Rng.int rng 8 with
    | 0 ->
        Plan.Filter
          {
            pred = Expr.Cmp (Expr.Le, Expr.Col 0, Expr.Const (Volcano_tuple.Value.Int (Rng.int rng 8)));
            mode = (if Rng.bool rng then `Compiled else `Interpreted);
            input = random_plan rng (depth - 1);
          }
    | 1 ->
        Plan.Project_cols
          { cols = [ 1; 0; 2 ]; input = random_plan rng (depth - 1) }
    | 2 ->
        Plan.Sort
          { key = [ (0, Support.Asc); (2, Support.Desc) ];
            input = random_plan rng (depth - 1) }
    | 3 ->
        let input = random_plan rng (depth - 1) in
        Plan.Distinct
          {
            algo = (if Rng.bool rng then Plan.Hash_based else Plan.Sort_based);
            on = all_cols input;
            input;
          }
    | 4 ->
        Plan.Aggregate
          {
            algo = (if Rng.bool rng then Plan.Hash_based else Plan.Sort_based);
            group_by = [ 0 ];
            aggs = [ Volcano_ops.Aggregate.Count; Volcano_ops.Aggregate.Sum (Expr.Col 2) ];
            input = random_plan rng (depth - 1);
          }
    | 5 | 6 ->
        let kind =
          match Rng.int rng 5 with
          | 0 -> Match_op.Join
          | 1 -> Match_op.Semi
          | 2 -> Match_op.Anti
          | 3 -> Match_op.Left_outer
          | _ -> Match_op.Full_outer
        in
        Plan.Match
          {
            algo = (if Rng.bool rng then Plan.Hash_based else Plan.Sort_based);
            kind;
            left_key = [ 0 ];
            right_key = [ 0 ];
            left = random_plan rng (depth - 1);
            right = random_plan rng (depth - 1);
          }
    | _ -> leaf rng

(* --- random exchange decoration ------------------------------------ *)

let random_cfg ?partition ?degree rng =
  Exchange.config
    ~degree:(match degree with Some d -> d | None -> 1 + Rng.int rng 3)
    ~packet_size:(1 + Rng.int rng 17)
    ~flow_slack:(if Rng.bool rng then Some (1 + Rng.int rng 4) else None)
    ?partition ()

let maybe rng p = Rng.int rng 100 < p

(* A subtree is slice-safe when running one copy per member of a degree-d
   group partitions the data instead of replicating or splitting matches:
   slice leaves and unary operators qualify; exchanges are boundaries (they
   gather their producers' full output); binary operators and grouping
   operators are not slice-safe — placing them in a parallel group without
   repartitioning would split their key groups, which is exactly the
   placement mistake a real optimizer must avoid. *)
let rec slice_safe = function
  | Plan.Generate_slice _ | Plan.Scan_table_slice _ -> true
  | Plan.Filter { input; _ }
  | Plan.Project_cols { input; _ }
  | Plan.Project_exprs { input; _ }
  | Plan.Sort { input; _ } ->
      slice_safe input
  | Plan.Exchange _ | Plan.Exchange_merge _ -> true
  | _ -> false

(* Repartitioning exchanges may only put their producers in a degree > 1
   group when the subtree below is slice-safe. *)
let inner_degree rng input = if slice_safe input then 1 + Rng.int rng 3 else 1

let rec decorate rng plan =
  let decorated =
    match plan with
    | Plan.Filter f -> Plan.Filter { f with input = decorate rng f.input }
    | Plan.Project_cols p ->
        Plan.Project_cols { p with input = decorate rng p.input }
    | Plan.Sort s ->
        let input = decorate rng s.input in
        if maybe rng 35 && slice_safe input then
          (* merge network: producers sort, consumer merges by producer *)
          Plan.Exchange_merge { cfg = random_cfg rng; key = s.key; input = Plan.Sort { s with input } }
        else Plan.Sort { s with input }
    | Plan.Distinct d ->
        (* safe to partition on the distinct columns *)
        let input = decorate rng d.input in
        if maybe rng 35 then
          Plan.Exchange
            {
              cfg = random_cfg rng;
              input =
                Plan.Distinct
                  {
                    d with
                    input =
                      Plan.Exchange
                        {
                          cfg =
                            random_cfg ~degree:(inner_degree rng input)
                              ~partition:(Exchange.Hash_on d.on) rng;
                          input;
                        };
                  };
            }
        else Plan.Distinct { d with input }
    | Plan.Aggregate a ->
        let input = decorate rng a.input in
        if maybe rng 35 then
          Plan.Exchange
            {
              cfg = random_cfg rng;
              input =
                Plan.Aggregate
                  {
                    a with
                    input =
                      Plan.Exchange
                        {
                          cfg =
                            random_cfg ~degree:(inner_degree rng input)
                              ~partition:(Exchange.Hash_on a.group_by) rng;
                          input;
                        };
                  };
            }
        else Plan.Aggregate { a with input }
    | Plan.Match m ->
        let left = decorate rng m.left and right = decorate rng m.right in
        if maybe rng 35 then
          (* GAMMA repartitioning: both inputs hash-partitioned on the key
             across the match group *)
          Plan.Exchange
            {
              cfg = random_cfg rng;
              input =
                Plan.Match
                  {
                    m with
                    left =
                      Plan.Exchange
                        {
                          cfg =
                            random_cfg ~degree:(inner_degree rng left)
                              ~partition:(Exchange.Hash_on m.left_key) rng;
                          input = left;
                        };
                    right =
                      Plan.Exchange
                        {
                          cfg =
                            random_cfg ~degree:(inner_degree rng right)
                              ~partition:(Exchange.Hash_on m.right_key) rng;
                          input = right;
                        };
                  };
            }
        else Plan.Match { m with left; right }
    | other -> other
  in
  (* Vertical parallelism (degree 1) is safe anywhere; wrapping with
     degree > 1 is only sound when the subtree is repartitioned, which the
     structured decorations above handle. *)
  if maybe rng 25 then
    Plan.Exchange
      {
        cfg =
          Exchange.config ~degree:1
            ~packet_size:(1 + Rng.int rng 17)
            ~flow_slack:(if Rng.bool rng then Some (1 + Rng.int rng 4) else None)
            ();
        input = decorated;
      }
  else decorated

(* --- stripping: the serial twin of a parallelized plan ---------------- *)

(* Remove every exchange wrapper, yielding the serial plan the decorated
   one encapsulates.  The paper's claim in one function: parallelism lives
   entirely in the exchange operators, so deleting them must change the
   process placement and nothing else.  Multiset-preserving by
   construction — a [Generate_slice] under a degree-d group generates the
   same total either way, and stripping an [Exchange_merge] keeps its
   producers' sorts, losing only the merge order (the comparison below is
   order-insensitive). *)
let rec strip = function
  | ( Plan.Scan_table _ | Plan.Scan_table_slice _ | Plan.Scan_index _
    | Plan.Scan_list _ | Plan.Generate _ | Plan.Generate_slice _
    | Plan.Generate_range _ ) as leaf ->
      leaf
  | Plan.Filter f -> Plan.Filter { f with input = strip f.input }
  | Plan.Project_cols p -> Plan.Project_cols { p with input = strip p.input }
  | Plan.Project_exprs p -> Plan.Project_exprs { p with input = strip p.input }
  | Plan.Sort s -> Plan.Sort { s with input = strip s.input }
  | Plan.Match m ->
      Plan.Match { m with left = strip m.left; right = strip m.right }
  | Plan.Cross { left; right } ->
      Plan.Cross { left = strip left; right = strip right }
  | Plan.Theta_join t ->
      Plan.Theta_join { t with left = strip t.left; right = strip t.right }
  | Plan.Aggregate a -> Plan.Aggregate { a with input = strip a.input }
  | Plan.Distinct d -> Plan.Distinct { d with input = strip d.input }
  | Plan.Division d ->
      Plan.Division
        { d with dividend = strip d.dividend; divisor = strip d.divisor }
  | Plan.Limit l -> Plan.Limit { l with input = strip l.input }
  | Plan.Union_all { left; right } ->
      Plan.Union_all { left = strip left; right = strip right }
  | Plan.Choose c ->
      Plan.Choose { c with alternatives = List.map strip c.alternatives }
  | Plan.Exchange { input; _ }
  | Plan.Exchange_merge { input; _ }
  | Plan.Interchange { input; _ }
  | Plan.Remote { input; _ } ->
      strip input

(* --- the property ---------------------------------------------------- *)

let sorted_run env plan = List.sort Tuple.compare (Runner.run env plan)

let accepted env plan =
  Volcano_analysis.Diag.errors (Compile.analyze env plan) = []

let prop_exchange_invariance =
  QCheck.Test.make ~name:"random exchange decoration preserves results"
    ~count:60
    QCheck.(pair int64 (int_range 1 3))
    (fun (seed, depth) ->
      let env = Env.create ~frames:128 ~page_size:512 () in
      let rng = Rng.create seed in
      let serial = random_plan rng depth in
      let expected = sorted_run env serial in
      (* Several independent decorations of the same plan.  The analyzer
         must accept every decoration (structure-respecting exchange
         insertion never introduces an error-severity diagnostic), and
         [sorted_run] uses the default [~check:true], so acceptance is
         also exercised end to end. *)
      let ok =
        List.for_all
          (fun salt ->
            let rng = Rng.create (Int64.add seed (Int64.of_int salt)) in
            let decorated = decorate rng serial in
            accepted env decorated && sorted_run env decorated = expected)
          [ 1; 2 ]
      in
      Bufpool.assert_quiescent ~what:"exchange invariance" (Env.buffer env);
      Sched.assert_quiescent ~what:"exchange invariance" (Sched.default ());
      ok)

(* Differential lock on the exchange hot path: the decorated (parallel)
   plan against its own stripped (serial) twin, across 1000 seeds.  The
   invariance property above checks fewer, deeper plans against an
   independently built serial original; this one floods the ring/pool/
   wait machinery with many small parallel plans, where the packet counts
   are low enough that end-of-stream, shutdown, and pool-recycling edges
   dominate.  Since the default scheduler is the shared worker pool, this
   is also the serial-vs-pooled differential: every parallel run here
   executes its producers as pool fibers. *)
let prop_serial_parallel_differential =
  QCheck.Test.make ~name:"stripped serial twin matches across 1000 seeds"
    ~count:1000
    QCheck.(pair int64 (int_range 1 2))
    (fun (seed, depth) ->
      let env = Env.create ~frames:128 ~page_size:512 () in
      let rng = Rng.create seed in
      let parallel = decorate rng (random_plan rng depth) in
      let serial = strip parallel in
      let ok = sorted_run env parallel = sorted_run env serial in
      Bufpool.assert_quiescent ~what:"serial/parallel differential"
        (Env.buffer env);
      Sched.assert_quiescent ~what:"serial/parallel differential"
        (Sched.default ());
      ok)

(* Planlint soundness differential: a plan the analyzer accepts must run
   identically on the pooled scheduler and on the dedicated
   (domain-per-task) baseline.  This is the check behind planlint's
   claim that its scheduler-aware passes are advisory — acceptance never
   depends on which scheduler the plan lands on, and the schedulers
   agree on the result.  (Plans the analyzer rejects are covered by
   [prop_rejected_plans_misbehave] below.) *)
let prop_pooled_dedicated_differential =
  QCheck.Test.make ~name:"accepted plans agree pooled vs dedicated"
    ~count:40
    QCheck.(pair int64 (int_range 1 2))
    (fun (seed, depth) ->
      let pooled = Env.create ~frames:128 ~page_size:512 () in
      let dedicated =
        Env.create ~frames:128 ~page_size:512 ~sched:(Sched.dedicated ()) ()
      in
      let rng = Rng.create seed in
      let plan = decorate rng (random_plan rng depth) in
      (* Acceptance must not be scheduler-dependent. *)
      let ap = accepted pooled plan and ad = accepted dedicated plan in
      let ok =
        ap = ad
        && ((not ap) || sorted_run pooled plan = sorted_run dedicated plan)
      in
      Bufpool.assert_quiescent ~what:"pooled/dedicated differential"
        (Env.buffer pooled);
      Bufpool.assert_quiescent ~what:"pooled/dedicated differential"
        (Env.buffer dedicated);
      Sched.assert_quiescent ~what:"pooled/dedicated differential"
        (Sched.default ());
      ok)

(* --- the converse: rejected plans really are broken ------------------- *)

(* Plant one deterministic defect in an otherwise-sound plan.  Each
   mutation must (a) draw an error-severity diagnostic from the analyzer
   and (b) observably misbehave when forced past the check: raise at
   runtime, or — for the width mutation, which corrupts data rather than
   crashing — change the output arity. *)
let mutate rng arity plan =
  match Rng.int rng 4 with
  | 0 -> Plan.Project_cols { cols = [ arity ]; input = plan }
  | 1 ->
      Plan.Filter
        {
          pred = Expr.Cmp (Expr.Eq, Expr.Col arity, Expr.Const (Volcano_tuple.Value.Int 0));
          mode = `Compiled;
          input = plan;
        }
  | 2 ->
      (* An unresolved leaf: the catalog pass flags it
         (schema-unknown-source) and compilation raises [Not_found].
         (A malformed config literal is no longer constructible — the
         record is private behind the validating constructor.) *)
      Plan.Cross { left = plan; right = Plan.Scan_table "__missing__" }
  | _ ->
      Plan.Exchange
        {
          cfg =
            Exchange.config ~degree:2
              ~partition:(Exchange.Hash_on [ arity ]) ();
          input = plan;
        }

let prop_rejected_plans_misbehave =
  QCheck.Test.make ~name:"analyzer-rejected plans fail without the check"
    ~count:40
    QCheck.(pair int64 (int_range 1 3))
    (fun (seed, depth) ->
      let env = Env.create ~frames:128 ~page_size:512 () in
      let rng = Rng.create seed in
      let serial = random_plan rng depth in
      let expected = sorted_run env serial in
      let bad = mutate rng (plan_arity serial) serial in
      let rejected = not (accepted env bad) in
      let misbehaves =
        match Runner.run ~check:false env bad with
        | exception _ -> true
        | rows ->
            (* The column-reference mutations only dereference the bad
               column when a tuple actually flows; an empty stream is a
               vacuous pass.  Otherwise the output must differ. *)
            expected = [] || List.sort Tuple.compare rows <> expected
      in
      rejected && misbehaves)

let suite =
  [
    QCheck_alcotest.to_alcotest ~long:false prop_exchange_invariance;
    QCheck_alcotest.to_alcotest ~long:false prop_serial_parallel_differential;
    QCheck_alcotest.to_alcotest ~long:false prop_pooled_dedicated_differential;
    QCheck_alcotest.to_alcotest ~long:false prop_rejected_plans_misbehave;
  ]
