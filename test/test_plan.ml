(* Plan-level tests.  The central property: inserting exchange operators —
   any variety, anywhere — never changes a query's result multiset.  That is
   precisely the paper's encapsulation claim. *)

module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Parallel = Volcano_plan.Parallel
module Exchange = Volcano.Exchange
module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Expr = Volcano_tuple.Expr
module Support = Volcano_tuple.Support

let check = Alcotest.check

let env () = Env.create ~frames:128 ~page_size:512 ()

let sorted_result env plan = List.sort Tuple.compare (Runner.run env plan)

let check_same_result name env serial parallelized =
  let a = sorted_result env serial and b = sorted_result env parallelized in
  check Alcotest.int (name ^ " cardinality") (List.length a) (List.length b);
  List.iter2
    (fun x y -> check Alcotest.bool (name ^ " tuple") true (Tuple.equal x y))
    a b

let gen_tuple i = Tuple.of_ints [ i; i mod 10; i mod 7 ]
let base n = Plan.Generate { arity = 3; count = n; gen = gen_tuple }
let base_slice n = Plan.Generate_slice { arity = 3; count = n; gen = gen_tuple }

let test_scan_table () =
  let e = env () in
  let file =
    Env.create_table e ~name:"t"
      ~schema:(Volcano_tuple.Schema.of_names [ ("a", Value.Tint) ])
  in
  for i = 0 to 19 do
    ignore
      (Volcano_storage.Heap_file.insert file
         (Bytes.to_string (Volcano_tuple.Serial.encode (Tuple.of_ints [ i ]))))
  done;
  check Alcotest.int "scan" 20 (Runner.count e (Plan.Scan_table "t"));
  check Alcotest.int "arity" 1 (Plan.arity e (Plan.Scan_table "t"))

let test_filter_modes_agree () =
  let e = env () in
  let open Expr.Infix in
  let pred = Expr.col 1 = Expr.int 3 in
  let compiled =
    Plan.Filter { pred; mode = `Compiled; input = base 1000 }
  in
  let interpreted =
    Plan.Filter { pred; mode = `Interpreted; input = base 1000 }
  in
  check_same_result "compiled = interpreted" e compiled interpreted;
  check Alcotest.int "selectivity" 100 (Runner.count e compiled)

let test_sort_plan () =
  let e = env () in
  let plan =
    Plan.Sort { key = [ (0, Support.Desc) ]; input = base 100 }
  in
  let result = Runner.run e plan in
  check Alcotest.int "first is max" 99 (Tuple.int_exn (List.hd result) 0)

let test_limit_early_close () =
  let e = env () in
  (* Limit above an exchange exercises early close through a plan. *)
  let plan =
    Plan.Limit
      {
        count = 5;
        input =
          Plan.Exchange
            { cfg = Exchange.config ~degree:2 (); input = base_slice 1_000_000 };
      }
  in
  check Alcotest.int "limit" 5 (Runner.count e plan)

(* The encapsulation property, exercised over a zoo of plans. *)
let test_exchange_transparency () =
  let e = env () in
  let join_serial =
    Plan.Match
      {
        algo = Plan.Hash_based;
        kind = Volcano_ops.Match_op.Join;
        left_key = [ 1 ];
        right_key = [ 1 ];
        left = base 300;
        right = base 200;
      }
  in
  (* 1: vertical parallelism above the join *)
  check_same_result "pipeline above join" e join_serial
    (Parallel.pipeline join_serial);
  (* 2: bushy parallelism — both join inputs in their own processes *)
  let bushy =
    Plan.Match
      {
        algo = Plan.Hash_based;
        kind = Volcano_ops.Match_op.Join;
        left_key = [ 1 ];
        right_key = [ 1 ];
        left = Parallel.pipeline (base 300);
        right = Parallel.pipeline (base 200);
      }
  in
  check_same_result "bushy join" e join_serial bushy;
  (* 3: intra-operator parallelism with repartitioning *)
  let partitioned =
    Parallel.partitioned_match ~degree:3 ~algo:Plan.Hash_based
      ~kind:Volcano_ops.Match_op.Join ~left_key:[ 1 ] ~right_key:[ 1 ]
      ~left:(base_slice 300) ~right:(base_slice 200) ()
  in
  check_same_result "partitioned join" e join_serial partitioned

let test_sort_based_partitioned_match () =
  let e = env () in
  let serial =
    Plan.Match
      {
        algo = Plan.Sort_based;
        kind = Volcano_ops.Match_op.Semi;
        left_key = [ 2 ];
        right_key = [ 2 ];
        left = base 150;
        right = base 50;
      }
  in
  let parallel =
    Parallel.partitioned_match ~degree:2 ~algo:Plan.Sort_based
      ~kind:Volcano_ops.Match_op.Semi ~left_key:[ 2 ] ~right_key:[ 2 ]
      ~left:(base_slice 150) ~right:(base_slice 50) ()
  in
  check_same_result "sort-based semi" e serial parallel

let test_partitioned_aggregate () =
  let e = env () in
  let aggs = [ Volcano_ops.Aggregate.Count; Volcano_ops.Aggregate.Sum (Expr.col 0) ] in
  let serial =
    Plan.Aggregate { algo = Plan.Hash_based; group_by = [ 1 ]; aggs; input = base 1000 }
  in
  let parallel =
    Parallel.partitioned_aggregate ~degree:4 ~algo:Plan.Hash_based
      ~group_by:[ 1 ] ~aggs (base_slice 1000)
  in
  check_same_result "partitioned aggregate" e serial parallel

let test_parallel_sort_plan () =
  let e = env () in
  let key = [ (0, Support.Asc) ] in
  let serial = Plan.Sort { key; input = base 500 } in
  let parallel = Parallel.parallel_sort ~degree:3 ~key (base_slice 500) in
  (* Parallel sort must preserve global order, not just the multiset. *)
  let a = Runner.run e serial and b = Runner.run e parallel in
  check Alcotest.int "cardinality" (List.length a) (List.length b);
  List.iter2
    (fun x y -> check Alcotest.bool "ordered equal" true (Tuple.equal x y))
    a b

let test_broadcast_join_plan () =
  let e = env () in
  let serial =
    Plan.Match
      {
        algo = Plan.Hash_based;
        kind = Volcano_ops.Match_op.Join;
        left_key = [ 1 ];
        right_key = [ 1 ];
        left = base 200;
        right = base 40;
      }
  in
  let parallel =
    Parallel.broadcast_join ~degree:3 ~kind:Volcano_ops.Match_op.Join
      ~left_key:[ 1 ] ~right_key:[ 1 ]
      ~left:(base_slice 200)
      ~right:(base_slice 40) ()
  in
  check_same_result "broadcast join" e serial parallel

let test_interchange_plan () =
  let e = env () in
  (* Distinct keeps an arbitrary representative per group, so compare the
     group keys only. *)
  let keys_only input = Plan.Project_cols { cols = [ 1 ]; input } in
  let serial =
    keys_only (Plan.Distinct { algo = Plan.Hash_based; on = [ 1 ]; input = base 400 })
  in
  (* Inside a 3-wide group: slices repartitioned by hash on column 1 via the
     no-fork interchange, then locally deduplicated. *)
  let parallel =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree:3 ();
        input =
          keys_only
            (Plan.Distinct
               {
                 algo = Plan.Hash_based;
                 on = [ 1 ];
                 input =
                   Plan.Interchange
                     {
                       cfg =
                         Exchange.config ~degree:3
                           ~partition:(Exchange.Hash_on [ 1 ]) ();
                       input = base_slice 400;
                     };
               });
      }
  in
  check_same_result "interchange distinct" e serial parallel

let test_division_plan () =
  let e = env () in
  let pairs =
    List.concat_map
      (fun s -> List.filter_map (fun c -> if (s + c) mod 4 <> 0 then Some (s, c) else None)
          [ 0; 1; 2 ])
      (List.init 20 Fun.id)
  in
  let dividend =
    Plan.Scan_list
      { arity = 2; tuples = List.map (fun (s, c) -> Tuple.of_ints [ s; c ]) pairs }
  in
  let divisor =
    Plan.Scan_list { arity = 1; tuples = List.map (fun c -> Tuple.of_ints [ c ]) [ 0; 1; 2 ] }
  in
  let results =
    List.map
      (fun algo ->
        sorted_result e
          (Plan.Division
             { algo; quotient = [ 0 ]; divisor_attrs = [ 1 ]; divisor_key = [ 0 ];
               dividend; divisor }))
      [ `Hash; `Count; `Sort ]
  in
  match results with
  | [ a; b; c ] ->
      check Alcotest.int "hash=count" (List.length a) (List.length b);
      check Alcotest.int "hash=sort" (List.length a) (List.length c);
      List.iter2 (fun x y -> check Alcotest.bool "tuple" true (Tuple.equal x y)) a b;
      List.iter2 (fun x y -> check Alcotest.bool "tuple" true (Tuple.equal x y)) a c
  | _ -> assert false

let test_explain () =
  let e = env () in
  let plan =
    Parallel.partitioned_match ~degree:2 ~algo:Plan.Hash_based
      ~kind:Volcano_ops.Match_op.Join ~left_key:[ 0 ] ~right_key:[ 0 ]
      ~left:(base_slice 10) ~right:(base_slice 10) ()
  in
  let text = Plan.explain e plan in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec at i = i + n <= h && (String.sub text i n = needle || at (i + 1)) in
    at 0
  in
  check Alcotest.bool "mentions exchange" true (contains "exchange");
  check Alcotest.bool "mentions join" true (contains "hash-join");
  check Alcotest.bool "mentions partitioning" true (contains "hash[0]")

let test_deep_pipeline () =
  let e = env () in
  (* Five chained exchange boundaries — a 6-process vertical pipeline. *)
  let rec chain n plan =
    if n = 0 then plan else chain (n - 1) (Parallel.pipeline plan)
  in
  let plan = chain 5 (base 500) in
  check Alcotest.int "deep pipeline" 500 (Runner.count e plan)

let suite =
  [
    Alcotest.test_case "scan table" `Quick test_scan_table;
    Alcotest.test_case "filter modes agree" `Quick test_filter_modes_agree;
    Alcotest.test_case "sort plan" `Quick test_sort_plan;
    Alcotest.test_case "limit closes exchange early" `Quick test_limit_early_close;
    Alcotest.test_case "exchange transparency (join)" `Quick
      test_exchange_transparency;
    Alcotest.test_case "sort-based partitioned match" `Quick
      test_sort_based_partitioned_match;
    Alcotest.test_case "partitioned aggregate" `Quick test_partitioned_aggregate;
    Alcotest.test_case "parallel sort preserves order" `Quick
      test_parallel_sort_plan;
    Alcotest.test_case "broadcast join" `Quick test_broadcast_join_plan;
    Alcotest.test_case "interchange plan" `Quick test_interchange_plan;
    Alcotest.test_case "division plans agree" `Quick test_division_plan;
    Alcotest.test_case "explain renders" `Quick test_explain;
    Alcotest.test_case "deep pipeline" `Quick test_deep_pipeline;
  ]
