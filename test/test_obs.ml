(* Observability subsystem tests: registry semantics, the instrumented
   iterator wrapper, counter-consistency invariants over real parallel
   runs, disabled-path transparency, and exporter well-formedness. *)

module Obs = Volcano_obs.Obs
module Jsonx = Volcano_obs.Jsonx
module Iterator = Volcano.Iterator
module Exchange = Volcano.Exchange
module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Profile = Volcano_plan.Profile
module Tuple = Volcano_tuple.Tuple

let check = Alcotest.check

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let test_registry () =
  let sink = Obs.create () in
  check Alcotest.bool "enabled" true (Obs.enabled sink);
  let c = Obs.counter sink "packets" in
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  check Alcotest.int "counter" 5 (Obs.Counter.value c);
  let c' = Obs.counter sink "packets" in
  Obs.Counter.incr c';
  check Alcotest.int "find-or-create shares state" 6 (Obs.Counter.value c);
  let g = Obs.gauge sink "depth" in
  Obs.Gauge.set g 3.5;
  check (Alcotest.float 1e-9) "gauge" 3.5 (Obs.Gauge.value g);
  let h = Obs.histogram sink "latency" in
  List.iter (fun x -> Obs.Histogram.observe h x) [ 1.0; 2.0; 3.0; 4.0 ];
  check Alcotest.int "histogram count" 4 (Obs.Histogram.count h);
  check (Alcotest.float 1e-9) "histogram mean" 2.5 (Obs.Histogram.mean h);
  check (Alcotest.float 1e-9) "histogram median" 2.5
    (Obs.Histogram.percentile h 0.5)

let test_null_sink () =
  check Alcotest.bool "disabled" false (Obs.enabled Obs.null);
  let n = Obs.node Obs.null ~label:"x" in
  (* Recording through a null node is harmless and registers nothing. *)
  Obs.Node.count_open n;
  Obs.Node.on_next n ~produced:true ~elapsed:0.001;
  check Alcotest.int "no nodes" 0 (List.length (Obs.nodes Obs.null));
  let c = Obs.counter Obs.null "x" in
  Obs.Counter.incr c;
  check Alcotest.int "unregistered metric" 0
    (Obs.Counter.value (Obs.counter Obs.null "x"))

let test_instrumented_iterator () =
  let sink = Obs.create () in
  let node = Obs.node sink ~label:"scan" in
  let inner = Iterator.of_list (List.map (fun i -> Tuple.of_ints [ i ]) [ 1; 2; 3 ]) in
  let it = Iterator.instrumented ~node inner in
  Iterator.open_ it;
  let rec drain n =
    match Iterator.next it with Some _ -> drain (n + 1) | None -> n
  in
  let rows = drain 0 in
  Iterator.close it;
  check Alcotest.int "rows drained" 3 rows;
  check Alcotest.int "node rows" 3 (Obs.Node.rows node);
  check Alcotest.int "opens" 1 (Obs.Node.opens node);
  check Alcotest.int "closes" 1 (Obs.Node.closes node);
  check Alcotest.int "next calls" 4 (Obs.Node.next_calls node);
  check Alcotest.bool "busy time accumulates" true (Obs.Node.busy_s node >= 0.0);
  match Obs.spans sink with
  | [ span ] ->
      check Alcotest.int "span rows" 3 span.Obs.span_rows;
      check Alcotest.bool "span ordered" true (span.Obs.stop >= span.Obs.start);
      check Alcotest.string "span label" "scan" span.Obs.span_label
  | spans -> Alcotest.failf "expected one span, got %d" (List.length spans)

(* A two-exchange topology: 3 producers hash-partition into 2 middle
   processes that forward round-robin to the root. *)
let parallel_plan n =
  let inner =
    Plan.Exchange
      {
        cfg =
          Exchange.config ~degree:3 ~packet_size:5 ~flow_slack:(Some 2)
            ~partition:(Exchange.Hash_on [ 1 ]) ();
        input =
          Plan.Generate_slice
            {
              arity = 2;
              count = n;
              gen = (fun i -> Tuple.of_ints [ i; i mod 10 ]);
            };
      }
  in
  Plan.Exchange
    {
      cfg = Exchange.config ~degree:2 ~packet_size:7 ~flow_slack:(Some 2) ();
      input = inner;
    }

let test_exchange_invariants () =
  let n = 2000 in
  let env = Env.create () in
  let plan = parallel_plan n in
  let sink = Obs.create () in
  let obs = Compile.observe sink plan in
  let rows = Iterator.consume (Compile.compile ~obs env plan) in
  check Alcotest.int "all rows arrive" n rows;
  (* Spans balanced: every open of every rank got its close. *)
  List.iter
    (fun node ->
      check Alcotest.int
        (Obs.Node.label node ^ ": opens = closes")
        (Obs.Node.opens node) (Obs.Node.closes node))
    (Obs.nodes sink);
  (* Packet conservation per port, and per-producer counts sum to the
     total. *)
  let samples =
    List.filter_map
      (fun node ->
        Option.map (fun s -> (node, s)) (Obs.exchange_sample sink ~node))
      (Obs.nodes sink)
  in
  check Alcotest.int "both exchanges sampled" 2 (List.length samples);
  List.iter
    (fun (node, s) ->
      let label = Obs.Node.label node in
      check Alcotest.int (label ^ ": sent = received") s.Obs.packets_sent
        s.Obs.packets_received;
      check Alcotest.int
        (label ^ ": per-producer sums to total")
        s.Obs.packets_sent
        (Array.fold_left ( + ) 0 s.Obs.per_producer);
      check Alcotest.int (label ^ ": every record crossed") n s.Obs.records;
      check Alcotest.bool (label ^ ": some packets flowed") true
        (s.Obs.packets_sent > 0);
      check Alcotest.bool (label ^ ": queue depth seen") true
        (s.Obs.max_queue_depth >= 1))
    samples

let test_disabled_identical () =
  let n = 500 in
  let run instrument =
    let env = Env.create () in
    let plan = parallel_plan n in
    let it =
      if instrument then
        Compile.compile ~obs:(Compile.observe (Obs.create ()) plan) env plan
      else Compile.compile env plan
    in
    List.sort Tuple.compare (Iterator.to_list it)
  in
  check Alcotest.bool "results identical with obs on/off" true
    (run true = run false)

(* The ring-path variants the plan above does not reach: a merge network
   (keep-separate lanes drained with receive_from) and an unbounded port
   (flow control off, the striped mutex-queue lanes).  Observation must
   not perturb either — the [timed] flag only changes whether stall waits
   read the clock, never what flows. *)
let test_disabled_identical_ring_paths () =
  let n = 600 in
  let merge_plan =
    Plan.Exchange_merge
      {
        cfg =
          Exchange.config ~degree:3 ~packet_size:4 ~flow_slack:(Some 2) ();
        key = [ (0, Volcano_tuple.Support.Asc) ];
        input =
          Plan.Sort
            {
              key = [ (0, Volcano_tuple.Support.Asc) ];
              input =
                Plan.Generate_slice
                  {
                    arity = 2;
                    count = n;
                    gen = (fun i -> Tuple.of_ints [ (7 * i) mod n; i ]);
                  };
            };
      }
  in
  let unbounded_plan =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree:3 ~packet_size:4 ~flow_slack:None ();
        input =
          Plan.Generate_slice
            { arity = 2; count = n; gen = (fun i -> Tuple.of_ints [ i; i ]) };
      }
  in
  List.iter
    (fun (label, ordered, plan) ->
      let run instrument =
        let env = Env.create () in
        let it =
          if instrument then
            Compile.compile ~obs:(Compile.observe (Obs.create ()) plan) env plan
          else Compile.compile env plan
        in
        let rows = Iterator.to_list it in
        (* A merge network's output order is deterministic (unique sort
           keys here) and must not depend on being observed; a plain
           multi-producer exchange interleaves nondeterministically either
           way, so only its multiset is comparable. *)
        if ordered then rows else List.sort Tuple.compare rows
      in
      check Alcotest.bool (label ^ " identical with obs on/off") true
        (List.equal Tuple.equal (run true) (run false)))
    [
      ("merge network", true, merge_plan);
      ("unbounded exchange", false, unbounded_plan);
    ]

(* Batched execution: a fused scan→filter→project chain flushes node
   counters once per batch instead of once per record.  Per-node row
   counts must stay exact, every open must get its close (and a span),
   and the per-batch [next_calls] must be far below the row count —
   the visible footprint of vectorization. *)
let test_fused_chain_counters () =
  let n = 1000 in
  let scan =
    Plan.Generate
      { arity = 2; count = n; gen = (fun i -> Tuple.of_ints [ i; i mod 10 ]) }
  in
  let filter =
    Plan.Filter
      {
        pred =
          Volcano_tuple.Expr.Cmp
            ( Volcano_tuple.Expr.Lt,
              Volcano_tuple.Expr.Col 1,
              Volcano_tuple.Expr.Const (Volcano_tuple.Value.Int 5) );
        mode = `Compiled;
        input = scan;
      }
  in
  let plan = Plan.Project_cols { cols = [ 0 ]; input = filter } in
  let env = Env.create () in
  check Alcotest.bool "batching on by default" true (Env.batch_size env > 0);
  let sink = Obs.create () in
  let obs = Compile.observe sink plan in
  let rows = Iterator.consume (Compile.compile ~obs env plan) in
  check Alcotest.int "output rows" (n / 2) rows;
  let node_for p =
    match obs.Compile.node_of p with
    | Some node -> node
    | None -> Alcotest.fail "plan node not observed"
  in
  List.iter
    (fun (what, p, expect) ->
      let node = node_for p in
      check Alcotest.int (what ^ " rows exact") expect (Obs.Node.rows node);
      check Alcotest.int (what ^ " opens") 1 (Obs.Node.opens node);
      check Alcotest.int (what ^ " closes") 1 (Obs.Node.closes node);
      (* One flush per batch (plus the final empty next): with the
         default batch size this is ~n/64, nowhere near n. *)
      check Alcotest.bool
        (what ^ " next_calls counts batches")
        true
        (Obs.Node.next_calls node > 0 && Obs.Node.next_calls node <= (n / 32) + 2))
    [ ("scan", scan, n); ("filter", filter, n / 2); ("root project", plan, n / 2) ];
  check Alcotest.int "one span per fused node" 3 (List.length (Obs.spans sink));
  List.iter
    (fun span ->
      check Alcotest.bool "span ordered" true (span.Obs.stop >= span.Obs.start))
    (Obs.spans sink)

(* The parallel invariants above (packet conservation, spans balanced,
   obs on/off identical) run with batching on by default.  Pin down that
   the batched and record-at-a-time executions also agree with each other
   under observation — same rows, same exact per-node row counters. *)
let test_batching_counters_match_record_path () =
  let n = 1200 in
  let run batch_size =
    let env = Env.create ~batch_size () in
    let plan = parallel_plan n in
    let sink = Obs.create () in
    let obs = Compile.observe sink plan in
    let rows =
      List.sort Tuple.compare (Iterator.to_list (Compile.compile ~obs env plan))
    in
    let counters =
      List.map
        (fun node -> (Obs.Node.label node, Obs.Node.rows node))
        (List.sort
           (fun a b -> compare (Obs.Node.label a) (Obs.Node.label b))
           (Obs.nodes sink))
    in
    (rows, counters)
  in
  let batched_rows, batched_counters = run 64 in
  let record_rows, record_counters = run 0 in
  check Alcotest.bool "rows identical" true
    (List.equal Tuple.equal batched_rows record_rows);
  check
    Alcotest.(list (pair string int))
    "per-node row counters identical" record_counters batched_counters

let test_profile_batched_smoke () =
  let env = Env.create () in
  let report = Profile.execute env (parallel_plan 500) in
  check Alcotest.int "batched profile rows" 500 report.Profile.rows;
  List.iter
    (fun node ->
      check Alcotest.int
        (Obs.Node.label node ^ ": opens = closes")
        (Obs.Node.opens node) (Obs.Node.closes node))
    (Obs.nodes report.Profile.sink);
  let rendered = Profile.render report in
  check Alcotest.bool "render shows rows" true (contains rendered "rows=")

let test_null_observe_adds_nothing () =
  let plan = parallel_plan 10 in
  let o = Compile.observe Obs.null plan in
  check Alcotest.bool "no node assigned" true (o.Compile.node_of plan = None);
  check Alcotest.int "nothing registered" 0 (List.length (Obs.nodes Obs.null))

let test_exporters () =
  let env = Env.create () in
  let report = Profile.execute env (parallel_plan 300) in
  check Alcotest.int "report rows" 300 report.Profile.rows;
  let balanced s =
    let depth = ref 0 in
    String.iter
      (fun c ->
        if c = '{' || c = '[' then incr depth
        else if c = '}' || c = ']' then decr depth)
      s;
    !depth = 0
  in
  let trace = Jsonx.to_string (Obs.trace_json report.Profile.sink) in
  check Alcotest.bool "trace has traceEvents" true
    (contains trace "\"traceEvents\"");
  check Alcotest.bool "trace has complete events" true
    (contains trace "\"ph\":\"X\"");
  check Alcotest.bool "trace brackets balanced" true (balanced trace);
  let json = Jsonx.to_string (Profile.to_json report) in
  check Alcotest.bool "report has obs section" true (contains json "\"obs\"");
  check Alcotest.bool "report brackets balanced" true (balanced json);
  let rendered = Profile.render report in
  check Alcotest.bool "render shows packets" true (contains rendered "packets:");
  check Alcotest.bool "render shows rows" true (contains rendered "rows=")

let suite =
  [
    Alcotest.test_case "metrics registry" `Quick test_registry;
    Alcotest.test_case "null sink" `Quick test_null_sink;
    Alcotest.test_case "instrumented iterator" `Quick test_instrumented_iterator;
    Alcotest.test_case "exchange counter invariants" `Quick
      test_exchange_invariants;
    Alcotest.test_case "obs-disabled results identical" `Quick
      test_disabled_identical;
    Alcotest.test_case "obs-disabled identical on ring paths" `Quick
      test_disabled_identical_ring_paths;
    Alcotest.test_case "fused chain node counters" `Quick
      test_fused_chain_counters;
    Alcotest.test_case "batched counters match record path" `Quick
      test_batching_counters_match_record_path;
    Alcotest.test_case "batched profile smoke" `Quick test_profile_batched_smoke;
    Alcotest.test_case "null observe adds nothing" `Quick
      test_null_observe_adds_nothing;
    Alcotest.test_case "exporters well-formed" `Quick test_exporters;
  ]
