(* The chaos harness: random plans (reusing the generators from
   [Test_random_plans]) run under random fault plans.

   For every seeded (plan, fault-plan) pair:
   - the decorated plan run fault-free must match the single-process
     oracle (the encapsulation property);
   - the run under injection must either produce exactly the oracle rows
     (no Fail rule fired, or it fired on a swallowed cleanup path) or
     raise a single well-typed failure — within a timeout;
   - afterwards the buffer pool holds zero fixes and every producer
     domain has been joined.

   Any violation prints the (plan_seed, fault_seed) pair and the fault
   plan, so the case replays exactly:

     CHAOS_SEEDS=500 dune build @chaos   # sweep a larger matrix

   The default matrix (100 pairs) runs in the tier-1 [dune runtest]. *)

module Iterator = Volcano.Iterator
module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Exchange = Volcano.Exchange
module Bufpool = Volcano_storage.Bufpool
module Tuple = Volcano_tuple.Tuple
module Rng = Volcano_util.Rng
module Fault = Volcano_fault
module Injector = Volcano_fault.Injector
module Obs = Volcano_obs.Obs
module Sched = Volcano_sched.Sched

let default_cases = 100

let cases () =
  match Sys.getenv_opt "CHAOS_SEEDS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> default_cases)
  | None -> default_cases

(* Generous bound: a healthy faulty run finishes in milliseconds; only a
   genuine hang (a blocked domain that never observed cancellation) gets
   anywhere near it. *)
let timeout_seconds = 20.0

type outcome = Rows of Tuple.t list | Raised of exn | Timeout

(* Run [f] in its own domain and poll for its result.  On timeout the
   worker domain is abandoned — the case has already failed, and the
   printed seed pair is what matters. *)
let run_with_timeout ~seconds f =
  let slot = Atomic.make None in
  let worker =
    Domain.spawn (fun () ->
        let r = try Rows (f ()) with exn -> Raised exn in
        Atomic.set slot (Some r))
  in
  let deadline = Unix.gettimeofday () +. seconds in
  let rec wait () =
    match Atomic.get slot with
    | Some r ->
        Domain.join worker;
        r
    | None ->
        if Unix.gettimeofday () > deadline then Timeout
        else begin
          Unix.sleepf 0.001;
          wait ()
        end
  in
  wait ()

(* The failures a faulty run is allowed to surface: the exchange's single
   well-typed error, a raw injection (fired on a serial path with no
   exchange above it), or either of those wrapped once by a protecting
   close on the unwind path. *)
let rec acceptable_failure = function
  | Exchange.Query_failed _ | Fault.Injected _ -> true
  | Fun.Finally_raised e -> acceptable_failure e
  | _ -> false

let run_case ?batch_size ~plan_seed ~fault_seed () =
  let rng = Rng.create plan_seed in
  let depth = 1 + Rng.int rng 3 in
  let env = Env.create ~frames:128 ~page_size:512 ?batch_size () in
  (* Small runs force external sorts to spill, exercising the storage
     injection sites (device read/write, buffer fix) under parallelism. *)
  Env.set_sort_run_capacity env (8 + Rng.int rng 56);
  let serial = Test_random_plans.random_plan rng depth in
  let decorated = Test_random_plans.decorate rng serial in
  let fault_plan = Fault.random_plan ~seed:fault_seed in
  let repro () =
    Printf.sprintf
      "repro: CHAOS_REPRO=%Ld:%Ld (plan_seed:fault_seed), depth=%d\n\
       faults=%s\nplan:\n%s" plan_seed fault_seed depth
      (Fault.plan_to_string fault_plan)
      (Format.asprintf "%a" Plan.pp decorated)
  in
  let failf fmt =
    Printf.ksprintf (fun msg -> Alcotest.failf "%s\n%s" msg (repro ())) fmt
  in
  let unjoined0 = Exchange.unjoined_domains () in
  let live0 = Exchange.live_domains () in
  let oracle = Test_random_plans.sorted_run env serial in
  if not (Test_random_plans.accepted env decorated) then
    failf "decorated plan rejected by the analyzer";
  (* Fault-free: the decoration must be invisible. *)
  let clean = Test_random_plans.sorted_run env decorated in
  if clean <> oracle then failf "fault-free decorated run diverges from oracle";
  (* Under injection. *)
  Env.set_faults env (Injector.make fault_plan);
  let outcome =
    run_with_timeout ~seconds:timeout_seconds (fun () ->
        List.sort Tuple.compare (Runner.run env decorated))
  in
  (match outcome with
  | Rows rows ->
      (* Nothing fired on a live path: the result must be untouched. *)
      if rows <> oracle then failf "faulty run completed with wrong rows"
  | Raised exn ->
      if not (acceptable_failure exn) then
        failf "unexpected failure type: %s" (Printexc.to_string exn)
  | Timeout -> failf "faulty run hung (> %.0fs)" timeout_seconds);
  Env.clear_faults env;
  (try Bufpool.assert_quiescent ~what:"chaos case" (Env.buffer env)
   with Failure msg -> failf "%s" msg);
  if Exchange.unjoined_domains () <> unjoined0 then
    failf "leaked %d unjoined domain(s)"
      (Exchange.unjoined_domains () - unjoined0);
  if Exchange.live_domains () <> live0 then
    failf "leaked %d live domain(s)" (Exchange.live_domains () - live0);
  try Sched.assert_quiescent ~what:"chaos case" (Sched.default ())
  with Failure msg -> failf "%s" msg

let test_matrix () =
  (* CHAOS_REPRO=<plan_seed>:<fault_seed> replays a single failing pair
     exactly as printed by a failure report. *)
  match Sys.getenv_opt "CHAOS_REPRO" with
  | Some spec -> (
      match String.split_on_char ':' (String.trim spec) with
      | [ p; f ] ->
          run_case ~plan_seed:(Int64.of_string p)
            ~fault_seed:(Int64.of_string f) ()
      | _ -> Alcotest.fail "CHAOS_REPRO must be <plan_seed>:<fault_seed>")
  | None ->
      let n = cases () in
      for i = 0 to n - 1 do
        run_case
          ~plan_seed:(Int64.of_int ((1000003 * i) + 17))
          ~fault_seed:(Int64.of_int ((7919 * i) + 23))
          ()
      done

(* Batching is on by default, so the matrix above exercises fused loops
   and batch-fed producers throughout.  This slice re-runs a quarter of
   it with the vectorized path off, so the record-at-a-time protocol
   keeps its own chaos coverage too. *)
let test_matrix_record_path () =
  let n = max 1 (cases () / 4) in
  for i = 0 to n - 1 do
    run_case ~batch_size:0
      ~plan_seed:(Int64.of_int ((1000003 * i) + 17))
      ~fault_seed:(Int64.of_int ((7919 * i) + 23))
      ()
  done

(* Satellite: faults fire INSIDE fused loops.  A fused
   scan→filter→project chain feeding an exchange consults the generic
   [Operator] site per record from a tap stage in the tight loop, the
   [Producer] site per record in the batch drive loop, and the storage
   sites from the heap cursor's page steps; a counted [Fail] at any of
   them must surface at the consumer as exactly one well-typed
   [Query_failed], and leak nothing. *)
let test_faults_inside_fused_loops () =
  List.iter
    (fun (site, hit) ->
      (* A pool far smaller than the table: the fused scan cannot run
         from cache, so its page steps really consult the device sites. *)
      let env = Env.create ~frames:8 ~page_size:512 () in
      let file =
        Env.create_table env ~name:"chaos_t"
          ~schema:
            (Volcano_tuple.Schema.of_names
               [
                 ("a", Volcano_tuple.Value.Tint);
                 ("b", Volcano_tuple.Value.Tint);
               ])
      in
      for i = 0 to 999 do
        ignore
          (Volcano_storage.Heap_file.insert file
             (Bytes.to_string
                (Volcano_tuple.Serial.encode (Tuple.of_ints [ i; i mod 9 ]))))
      done;
      let plan =
        Plan.Exchange
          {
            cfg = Exchange.config ~degree:2 ~packet_size:7 ();
            input =
              Plan.Project_cols
                {
                  cols = [ 1; 0 ];
                  input =
                    Plan.Filter
                      {
                        pred =
                          Volcano_tuple.Expr.Cmp
                            ( Volcano_tuple.Expr.Ne,
                              Volcano_tuple.Expr.Col 1,
                              Volcano_tuple.Expr.Const
                                (Volcano_tuple.Value.Int 4) );
                        mode = `Compiled;
                        input = Plan.Scan_table "chaos_t";
                      };
                };
          }
      in
      let unjoined0 = Exchange.unjoined_domains () in
      let live0 = Exchange.live_domains () in
      Env.set_faults env
        (Injector.make
           {
             Fault.seed = 7L;
             rules =
               [ { Fault.site; trigger = Fault.At_hit hit; action = Fault.Fail } ];
           });
      (match
         run_with_timeout ~seconds:timeout_seconds (fun () ->
             Runner.run env plan)
       with
      | Rows _ ->
          Alcotest.failf "fault at %s never fired in the fused pipeline"
            (Fault.site_name site)
      | Raised (Exchange.Query_failed _) -> ()
      | Raised exn ->
          Alcotest.failf "fault at %s surfaced as %s, not Query_failed"
            (Fault.site_name site) (Printexc.to_string exn)
      | Timeout ->
          Alcotest.failf "fault at %s hung the query" (Fault.site_name site));
      Env.clear_faults env;
      Bufpool.assert_quiescent ~what:"fused-loop fault" (Env.buffer env);
      Alcotest.(check int)
        "no unjoined domains" unjoined0
        (Exchange.unjoined_domains ());
      Alcotest.(check int) "no live domains" live0 (Exchange.live_domains ());
      Sched.assert_quiescent ~what:"fused-loop fault" (Sched.default ()))
    [
      (Fault.Operator, 137);
      (Fault.Producer 0, 137);
      (Fault.Device_read, 5);
      (Fault.Bufpool_fix, 5);
      (Fault.Port_send, 3);
    ]

(* Satellite: analyzer-accepted plans under pure-delay chaos never hang
   AND never lose a record — delays perturb every interleaving the flow
   control and shutdown paths can reach, but fail nothing. *)
let delay_plan seed =
  {
    Fault.seed;
    rules =
      [
        {
          Fault.site = Fault.Port_send;
          trigger = Fault.With_prob 0.05;
          action = Fault.Delay 0.0005;
        };
        {
          Fault.site = Fault.Port_receive;
          trigger = Fault.With_prob 0.05;
          action = Fault.Delay 0.0005;
        };
        {
          Fault.site = Fault.Operator;
          trigger = Fault.With_prob 0.01;
          action = Fault.Delay 0.001;
        };
      ];
  }

let test_delays_preserve_results () =
  for i = 0 to 9 do
    let plan_seed = Int64.of_int ((104729 * i) + 5) in
    let rng = Rng.create plan_seed in
    let depth = 1 + Rng.int rng 3 in
    let env = Env.create ~frames:128 ~page_size:512 () in
    Env.set_sort_run_capacity env (8 + Rng.int rng 56);
    let serial = Test_random_plans.random_plan rng depth in
    let decorated = Test_random_plans.decorate rng serial in
    let oracle = Test_random_plans.sorted_run env serial in
    Env.set_faults env (Injector.make (delay_plan plan_seed));
    (match
       run_with_timeout ~seconds:timeout_seconds (fun () ->
           List.sort Tuple.compare (Runner.run env decorated))
     with
    | Rows rows ->
        if rows <> oracle then
          Alcotest.failf "delays changed the result (plan_seed=%Ld)" plan_seed
    | Raised exn ->
        Alcotest.failf "delay-only run failed (plan_seed=%Ld): %s" plan_seed
          (Printexc.to_string exn)
    | Timeout ->
        Alcotest.failf "delay-only run hung (plan_seed=%Ld)" plan_seed);
    Env.clear_faults env;
    Bufpool.assert_quiescent ~what:"delay case" (Env.buffer env);
    Sched.assert_quiescent ~what:"delay case" (Sched.default ())
  done

(* Satellite: early close under injected delays.  Open a decorated plan
   with port delays active, pull a few records, and walk away — the
   cancellation must still chain through every port, join every domain,
   and unfix every page. *)
let test_early_close_under_delays () =
  for i = 0 to 9 do
    let plan_seed = Int64.of_int ((15485863 * i) + 11) in
    let rng = Rng.create plan_seed in
    let depth = 1 + Rng.int rng 3 in
    let env = Env.create ~frames:128 ~page_size:512 () in
    Env.set_sort_run_capacity env (8 + Rng.int rng 56);
    let serial = Test_random_plans.random_plan rng depth in
    let decorated = Test_random_plans.decorate rng serial in
    let unjoined0 = Exchange.unjoined_domains () in
    let live0 = Exchange.live_domains () in
    Env.set_faults env (Injector.make (delay_plan plan_seed));
    (match
       run_with_timeout ~seconds:timeout_seconds (fun () ->
           let iterator = Compile.compile env decorated in
           Iterator.open_ iterator;
           (try
              for _ = 1 to 3 do
                match Iterator.next iterator with
                | Some _ -> ()
                | None -> raise Exit
              done
            with Exit -> ());
           Iterator.close iterator;
           [])
     with
    | Rows _ -> ()
    | Raised exn ->
        Alcotest.failf "early close under delays failed (plan_seed=%Ld): %s"
          plan_seed (Printexc.to_string exn)
    | Timeout ->
        Alcotest.failf "early close under delays hung (plan_seed=%Ld)"
          plan_seed);
    Env.clear_faults env;
    Bufpool.assert_quiescent ~what:"early close under delays" (Env.buffer env);
    Alcotest.(check int)
      "no unjoined domains" unjoined0
      (Exchange.unjoined_domains ());
    Alcotest.(check int) "no live domains" live0 (Exchange.live_domains ());
    Sched.assert_quiescent ~what:"early close under delays"
      (Sched.default ())
  done

(* Satellite: a slice of the chaos matrix with observability on.  The
   instrumented run must behave exactly like the bare one: fault-free it
   matches the oracle with balanced spans; under injection it completes
   with the oracle rows or raises one acceptable failure, and leaks
   nothing.  Span balance is NOT asserted under injection — cancellation
   legitimately runs self-cleaning closes whose open never happened. *)
let test_obs_matrix () =
  for i = 0 to 24 do
    let plan_seed = Int64.of_int ((1000003 * i) + 17) in
    let fault_seed = Int64.of_int ((7919 * i) + 23) in
    let rng = Rng.create plan_seed in
    let depth = 1 + Rng.int rng 3 in
    let env = Env.create ~frames:128 ~page_size:512 () in
    Env.set_sort_run_capacity env (8 + Rng.int rng 56);
    let serial = Test_random_plans.random_plan rng depth in
    let decorated = Test_random_plans.decorate rng serial in
    if Test_random_plans.accepted env decorated then begin
      let unjoined0 = Exchange.unjoined_domains () in
      let live0 = Exchange.live_domains () in
      let oracle = Test_random_plans.sorted_run env serial in
      (* Fault-free, instrumented: observability must be invisible. *)
      let sink = Obs.create () in
      let obs = Compile.observe sink decorated in
      let clean =
        List.sort Tuple.compare
          (Iterator.to_list (Compile.compile ~obs env decorated))
      in
      if clean <> oracle then
        Alcotest.failf "instrumented run diverges from oracle (plan_seed=%Ld)"
          plan_seed;
      List.iter
        (fun n ->
          if Obs.Node.opens n <> Obs.Node.closes n then
            Alcotest.failf
              "unbalanced spans on %S: %d opens, %d closes (plan_seed=%Ld)"
              (Obs.Node.label n) (Obs.Node.opens n) (Obs.Node.closes n)
              plan_seed)
        (Obs.nodes sink);
      (* Under injection, instrumented. *)
      Env.set_faults env (Injector.make (Fault.random_plan ~seed:fault_seed));
      let sink = Obs.create () in
      let obs = Compile.observe sink decorated in
      (match
         run_with_timeout ~seconds:timeout_seconds (fun () ->
             List.sort Tuple.compare
               (Iterator.to_list (Compile.compile ~obs env decorated)))
       with
      | Rows rows ->
          if rows <> oracle then
            Alcotest.failf
              "instrumented faulty run completed with wrong rows \
               (plan_seed=%Ld, fault_seed=%Ld)"
              plan_seed fault_seed
      | Raised exn ->
          if not (acceptable_failure exn) then
            Alcotest.failf
              "unexpected failure type under obs (plan_seed=%Ld, \
               fault_seed=%Ld): %s"
              plan_seed fault_seed (Printexc.to_string exn)
      | Timeout ->
          Alcotest.failf "instrumented faulty run hung (plan_seed=%Ld)"
            plan_seed);
      Env.clear_faults env;
      Bufpool.assert_quiescent ~what:"obs chaos case" (Env.buffer env);
      Alcotest.(check int)
        "no unjoined domains" unjoined0
        (Exchange.unjoined_domains ());
      Alcotest.(check int) "no live domains" live0 (Exchange.live_domains ());
      Sched.assert_quiescent ~what:"obs chaos case" (Sched.default ())
    end
  done

let suite =
  [
    Alcotest.test_case "seeded (plan, fault-plan) matrix" `Slow test_matrix;
    Alcotest.test_case "matrix slice with batching off" `Slow
      test_matrix_record_path;
    Alcotest.test_case "faults fire inside fused loops" `Slow
      test_faults_inside_fused_loops;
    Alcotest.test_case "chaos matrix with observability on" `Slow
      test_obs_matrix;
    Alcotest.test_case "delay-only chaos preserves results" `Slow
      test_delays_preserve_results;
    Alcotest.test_case "early close under injected delays" `Slow
      test_early_close_under_delays;
  ]
