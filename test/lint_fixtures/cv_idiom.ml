(* conclint-fixture expect: none *)
(* The classic monitor idiom is not a violation: Condition.wait under
   the very mutex it releases, including through a nested helper
   defined after the lock is taken (the Group.lookup_port shape). *)

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable ready : bool;
  mutable value : int;
}

let await_direct t =
  Mutex.lock t.lock;
  while not t.ready do
    Condition.wait t.cond t.lock
  done;
  let v = t.value in
  Mutex.unlock t.lock;
  v

let await_nested t =
  Mutex.lock t.lock;
  let rec wait () =
    if t.ready then begin
      Mutex.unlock t.lock;
      t.value
    end
    else begin
      Condition.wait t.cond t.lock;
      wait ()
    end
  in
  wait ()
