(* conclint-fixture expect: CL001 *)
(* A local with_lock wrapper is a lock region too: the closure passed
   to it runs under the wrapper's mutex, so suspending inside the
   closure is the same bug as suspending between lock and unlock. *)

type t = { lock : Mutex.t; mutable refs : int; group : int }

let with_lock t f =
  Mutex.lock t.lock;
  let r = f () in
  Mutex.unlock t.lock;
  r

let open_stream t =
  with_lock t (fun () ->
      t.refs <- t.refs + 1;
      Group.lookup_port t.group ~key:1)
