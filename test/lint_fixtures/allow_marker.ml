(* conclint-fixture expect: none *)
(* The allowlist marker suppresses an audited exception at its site
   (and only that code at that site). *)

type t = { lock : Mutex.t; group : int; mutable port : int option }

let audited t =
  Mutex.lock t.lock;
  (* conclint: allow CL001 -- fixture: pretend this site was audited;
     the group is always pre-published here so the lookup never
     actually suspends. *)
  let port = Group.lookup_port t.group ~key:0 in
  t.port <- Some port;
  Mutex.unlock t.lock
