(* conclint-fixture expect: CL001 *)
(* Sema.acquire parks the calling thread on the semaphore's own
   condition variable; doing so while holding an unrelated mutex keeps
   that mutex pinned for the whole wait. *)

type t = { lock : Mutex.t; frames : Sema.t; mutable pinned : int }

let pin t =
  Mutex.lock t.lock;
  Sema.acquire t.frames;
  t.pinned <- t.pinned + 1;
  Mutex.unlock t.lock
