(* conclint-fixture expect: CL001 *)
(* An early raise does not end the lexical lock region: the exception
   leaks the mutex, and the suspend after the conditional raise is
   still inside the held region. *)

type t = { lock : Mutex.t; mutable budget : int; done_ : Sched.Event.t }

let consume t n =
  Mutex.lock t.lock;
  if n < 0 then invalid_arg "consume: negative";
  t.budget <- t.budget - n;
  Sched.Event.wait t.done_;
  Mutex.unlock t.lock
