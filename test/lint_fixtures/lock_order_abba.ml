(* conclint-fixture expect: CL002 *)
(* Inconsistent acquisition order across two mutexes: one path takes
   a then b, the other b then a — a potential ABBA deadlock. *)

type account = { alock : Mutex.t; block : Mutex.t; mutable balance : int }

let credit t n =
  Mutex.lock t.alock;
  Mutex.lock t.block;
  t.balance <- t.balance + n;
  Mutex.unlock t.block;
  Mutex.unlock t.alock

let debit t n =
  Mutex.lock t.block;
  Mutex.lock t.alock;
  t.balance <- t.balance - n;
  Mutex.unlock t.alock;
  Mutex.unlock t.block
