(* conclint-fixture expect: none *)
(* The shape of the PR-5 fix: the refcount mutex only elects a first
   opener; the suspending work (consumer setup) happens after the lock
   is released, and racers wait on an event with nothing held. *)

type stream = {
  lock : Mutex.t;
  mutable opened : int;
  mutable port : int option;
  group : int;
  ready : Sched.Event.t;
}

let setup_consumer s =
  let port = Group.lookup_port s.group ~key:0 in
  s.port <- Some port

let ensure_open s =
  Mutex.lock s.lock;
  s.opened <- s.opened + 1;
  let first = s.opened = 1 in
  Mutex.unlock s.lock;
  if first then begin
    setup_consumer s;
    Sched.Event.fire s.ready
  end
  else Sched.Event.wait s.ready
