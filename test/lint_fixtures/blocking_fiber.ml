(* conclint-fixture expect: CL003 *)
(* A fiber that sleeps stalls its pool worker: the scheduler sees a
   running task, not an idle thread, so no stealing helps. *)

let backoff_poll sched device =
  Sched.fork sched (fun () ->
      while not (Device.ready device) do
        Unix.sleepf 0.01
      done)
