(* conclint-fixture expect: CL001 *)
(* Distilled reproduction of the PR-5 [producer_streams] deadlock.

   Before the first-opener-election fix, every consumer opening a
   shared producer stream built its consumer-side state while still
   holding the stream's refcount mutex.  [Group.lookup_port] suspends
   the calling fiber until the master task publishes the port — so the
   mutex stayed owned by a parked fiber, the worker thread moved on to
   another fiber, and every sibling opener (and eventually the master
   itself) deadlocked on [Mutex.lock].  conclint proves the rule that
   PR 5 fixed by hand: never suspend under a lock. *)

type stream = {
  lock : Mutex.t;
  mutable opened : int;
  mutable port : int option;
  group : int;
}

let setup_consumer s =
  (* Suspends until the master publishes the port for this consumer. *)
  let port = Group.lookup_port s.group ~key:0 in
  s.port <- Some port

let ensure_open s =
  Mutex.lock s.lock;
  s.opened <- s.opened + 1;
  if s.port = None then setup_consumer s;
  Mutex.unlock s.lock
