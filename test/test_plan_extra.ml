(* Additional plan-level tests: two-phase parallel aggregation, index
   scans through the catalog, choose-plan nodes, and a realistic
   end-to-end query run serially and with full parallel decoration. *)

module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Parallel = Volcano_plan.Parallel
module Exchange = Volcano.Exchange
module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Expr = Volcano_tuple.Expr
module Support = Volcano_tuple.Support
module A = Volcano_ops.Aggregate
module W = Volcano_wisconsin.Wisconsin

let check = Alcotest.check

let sorted env plan = List.sort Tuple.compare (Runner.run env plan)

let check_same name env a b =
  let ra = sorted env a and rb = sorted env b in
  check Alcotest.int (name ^ " cardinality") (List.length ra) (List.length rb);
  List.iter2
    (fun x y -> check Alcotest.bool (name ^ " tuple") true (Tuple.equal x y))
    ra rb

let gen_tuple i = Tuple.of_ints [ i; i mod 10; i mod 7 ]
let base n = Plan.Generate { arity = 3; count = n; gen = gen_tuple }
let base_slice n = Plan.Generate_slice { arity = 3; count = n; gen = gen_tuple }

(* --- two-phase aggregation --- *)

let test_two_phase_aggregate () =
  let env = Env.create () in
  let aggs =
    [ A.Count; A.Sum (Expr.Col 0); A.Min (Expr.Col 0); A.Max (Expr.Col 2) ]
  in
  let serial =
    Plan.Aggregate
      { algo = Plan.Hash_based; group_by = [ 1 ]; aggs; input = base 2000 }
  in
  let two_phase =
    Parallel.partitioned_aggregate_two_phase ~degree:4 ~group_by:[ 1 ] ~aggs
      (base_slice 2000)
  in
  check_same "two-phase aggregate" env serial two_phase

let test_two_phase_avg () =
  let env = Env.create () in
  let aggs = [ A.Count; A.Avg (Expr.Col 0); A.Max (Expr.Col 0) ] in
  let serial =
    Plan.Aggregate
      { algo = Plan.Hash_based; group_by = [ 1 ]; aggs; input = base 1000 }
  in
  let two_phase =
    Parallel.partitioned_aggregate_two_phase ~degree:3 ~group_by:[ 1 ] ~aggs
      (base_slice 1000)
  in
  let ra = sorted env serial and rb = sorted env two_phase in
  check Alcotest.int "groups" (List.length ra) (List.length rb);
  List.iter2
    (fun x y ->
      check Alcotest.int "group key" (Tuple.int_exn x 0) (Tuple.int_exn y 0);
      check Alcotest.int "count" (Tuple.int_exn x 1) (Tuple.int_exn y 1);
      check (Alcotest.float 1e-9) "avg"
        (Value.float_exn (Tuple.get x 2))
        (Value.float_exn (Tuple.get y 2));
      check Alcotest.int "max" (Tuple.int_exn x 3) (Tuple.int_exn y 3))
    ra rb

let test_two_phase_moves_less_data () =
  (* With 10 groups and 2,000 rows, the naive repartitioning moves 2,000
     records; two-phase moves at most degree * groups partials.  We verify
     correct results here and rely on plan inspection for the data-motion
     claim (the partial aggregate appears below the hash exchange). *)
  let env = Env.create () in
  let plan =
    Parallel.partitioned_aggregate_two_phase ~degree:4 ~group_by:[ 1 ]
      ~aggs:[ A.Count ] (base_slice 2000)
  in
  let text = Plan.explain env plan in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec at i = i + n <= h && (String.sub text i n = needle || at (i + 1)) in
    at 0
  in
  check Alcotest.bool "local aggregate below exchange" true
    (contains "hash-aggregate by [1]");
  check Alcotest.bool "partition on group key" true (contains "hash[0]")

(* --- index scans through the catalog --- *)

let setup_indexed_env () =
  let env = Env.create ~frames:1024 () in
  W.load ~env ~name:"wisc" ~n:2000 ();
  let entries =
    Env.create_index env ~table:"wisc" ~name:"wisc_u1" ~key:[ W.column "unique1" ]
  in
  check Alcotest.int "index entries" 2000 entries;
  env

let test_scan_index_plan () =
  let env = setup_indexed_env () in
  let range lo hi =
    Plan.Scan_index
      {
        index = "wisc_u1";
        lo = Plan.Ix_inclusive (Tuple.of_ints [ lo ]);
        hi = Plan.Ix_exclusive (Tuple.of_ints [ hi ]);
      }
  in
  (* Equivalent filter over the full scan. *)
  let filtered lo hi =
    Plan.Filter
      {
        pred =
          Expr.And
            ( Expr.Cmp (Expr.Ge, Expr.Col (W.column "unique1"), Expr.Const (Value.Int lo)),
              Expr.Cmp (Expr.Lt, Expr.Col (W.column "unique1"), Expr.Const (Value.Int hi)) );
        mode = `Compiled;
        input = Plan.Scan_table "wisc";
      }
  in
  check_same "narrow range" env (range 100 150) (filtered 100 150);
  check_same "empty range" env (range 5000 6000) (filtered 5000 6000);
  check Alcotest.int "arity through index" 16
    (Plan.arity env (range 0 10));
  (* Index output arrives in key order. *)
  let rows = Runner.run env (range 100 150) in
  let keys = List.map (fun t -> Tuple.int_exn t (W.column "unique1")) rows in
  check (Alcotest.list Alcotest.int) "ordered" (List.init 50 (fun i -> 100 + i)) keys

let test_index_with_choose_plan () =
  let env = setup_indexed_env () in
  let queries_decided = ref [] in
  let access lo hi =
    Plan.Choose
      {
        decide =
          (fun () ->
            let narrow = hi - lo < 200 in
            queries_decided := narrow :: !queries_decided;
            if narrow then 0 else 1);
        alternatives =
          [
            Plan.Scan_index
              {
                index = "wisc_u1";
                lo = Plan.Ix_inclusive (Tuple.of_ints [ lo ]);
                hi = Plan.Ix_exclusive (Tuple.of_ints [ hi ]);
              };
            Plan.Filter
              {
                pred =
                  Expr.And
                    ( Expr.Cmp (Expr.Ge, Expr.Col 0, Expr.Const (Value.Int lo)),
                      Expr.Cmp (Expr.Lt, Expr.Col 0, Expr.Const (Value.Int hi)) );
                mode = `Compiled;
                input = Plan.Scan_table "wisc";
              };
          ];
      }
  in
  check Alcotest.int "narrow via index" 50 (Runner.count env (access 0 50));
  check Alcotest.int "wide via scan" 1500 (Runner.count env (access 0 1500));
  check (Alcotest.list Alcotest.bool) "decisions" [ false; true ]
    !queries_decided

(* --- a realistic end-to-end query --- *)

(* "For each four-value, how many distinct ten-values appear among rows
   whose unique1 is under half the table, joined against a second relation
   on unique1?"  Serial vs fully parallel plan. *)
let test_end_to_end_query () =
  let env = Env.create ~frames:2048 () in
  let n = 3000 in
  let pred =
    Expr.Cmp (Expr.Lt, Expr.Col (W.column "unique1"), Expr.Const (Value.Int (n / 2)))
  in
  let serial =
    Plan.Sort
      {
        key = [ (0, Support.Asc) ];
        input =
          Plan.Aggregate
            {
              algo = Plan.Hash_based;
              group_by = [ W.column "four" ];
              aggs = [ A.Count; A.Sum (Expr.Col (W.column "unique1")) ];
              input =
                Plan.Match
                  {
                    algo = Plan.Hash_based;
                    kind = Volcano_ops.Match_op.Semi;
                    left_key = [ W.column "unique1" ];
                    right_key = [ W.column "unique2" ];
                    left =
                      Plan.Filter
                        { pred; mode = `Compiled; input = W.plan ~seed:5L ~n () };
                    right = W.plan ~seed:6L ~n:(n / 2) ();
                  };
            };
      }
  in
  let parallel =
    Plan.Sort
      {
        key = [ (0, Support.Asc) ];
        input =
          Parallel.partitioned_aggregate ~degree:3 ~algo:Plan.Hash_based
            ~group_by:[ W.column "four" ]
            ~aggs:[ A.Count; A.Sum (Expr.Col (W.column "unique1")) ]
            (Parallel.partitioned_match ~degree:2 ~algo:Plan.Hash_based
               ~kind:Volcano_ops.Match_op.Semi
               ~left_key:[ W.column "unique1" ]
               ~right_key:[ W.column "unique2" ]
               ~left:
                 (Plan.Filter
                    { pred; mode = `Compiled; input = W.plan_slice ~seed:5L ~n () })
               ~right:(W.plan_slice ~seed:6L ~n:(n / 2) ())
               ());
      }
  in
  let a = Runner.run env serial and b = Runner.run env parallel in
  check Alcotest.int "cardinality" (List.length a) (List.length b);
  List.iter2 (fun x y -> check Alcotest.bool "row" true (Tuple.equal x y)) a b

let test_limit_over_merge_network () =
  let env = Env.create () in
  let plan =
    Plan.Limit
      {
        count = 25;
        input =
          Parallel.parallel_sort ~degree:3
            ~key:[ (0, Support.Asc) ]
            (base_slice 100_000);
      }
  in
  let rows = Runner.run env plan in
  check Alcotest.int "limited" 25 (List.length rows);
  (* Top-25 of the sorted stream = 0..24. *)
  check (Alcotest.list Alcotest.int) "smallest first" (List.init 25 Fun.id)
    (List.map (fun t -> Tuple.int_exn t 0) rows)

let suite =
  [
    Alcotest.test_case "two-phase aggregate" `Quick test_two_phase_aggregate;
    Alcotest.test_case "two-phase average" `Quick test_two_phase_avg;
    Alcotest.test_case "two-phase structure" `Quick test_two_phase_moves_less_data;
    Alcotest.test_case "index scan plan" `Quick test_scan_index_plan;
    Alcotest.test_case "choose-plan picks access path" `Quick
      test_index_with_choose_plan;
    Alcotest.test_case "end-to-end query serial = parallel" `Quick
      test_end_to_end_query;
    Alcotest.test_case "limit over merge network" `Quick
      test_limit_over_merge_network;
  ]
