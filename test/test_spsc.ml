(* Torture tests for the SPSC ring and the ring-based port hot path:
   wraparound and capacity edge cases, cross-domain FIFO and conservation,
   and a large shutdown/poison race matrix checking that no wakeup is ever
   lost on the spin-then-park paths. *)

module Spsc = Volcano_util.Spsc
module Tuple = Volcano_tuple.Tuple
module Port = Volcano.Port
module Packet = Volcano.Packet

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Ring unit properties                                                *)

let test_ring_basics () =
  let r = Spsc.create ~capacity:3 ~dummy:(-1) in
  check Alcotest.int "logical capacity is exact, not pow2" 3 (Spsc.capacity r);
  check Alcotest.bool "starts empty" true (Spsc.is_empty r);
  check Alcotest.bool "push 1" true (Spsc.try_push r 10);
  check Alcotest.bool "push 2" true (Spsc.try_push r 11);
  check Alcotest.bool "push 3" true (Spsc.try_push r 12);
  (* Occupancy is bounded by the configured capacity even though the
     backing array was rounded up to 4. *)
  check Alcotest.bool "push into full fails" false (Spsc.try_push r 13);
  check Alcotest.int "length at full" 3 (Spsc.length r);
  check (Alcotest.option Alcotest.int) "pop fifo" (Some 10) (Spsc.try_pop r);
  check Alcotest.bool "full -> not full after pop" true (Spsc.try_push r 13);
  check (Alcotest.option Alcotest.int) "pop 11" (Some 11) (Spsc.try_pop r);
  check (Alcotest.option Alcotest.int) "pop 12" (Some 12) (Spsc.try_pop r);
  check (Alcotest.option Alcotest.int) "pop 13" (Some 13) (Spsc.try_pop r);
  check (Alcotest.option Alcotest.int) "pop empty" None (Spsc.try_pop r);
  check Alcotest.bool "empty again" true (Spsc.is_empty r)

let test_ring_capacity_one () =
  let r = Spsc.create ~capacity:1 ~dummy:0 in
  for i = 1 to 1000 do
    (* Full/empty transition on every element: the tightest wraparound. *)
    check Alcotest.bool "push" true (Spsc.try_push r i);
    check Alcotest.bool "full" false (Spsc.try_push r (-i));
    check (Alcotest.option Alcotest.int) "pop" (Some i) (Spsc.try_pop r);
    check (Alcotest.option Alcotest.int) "empty" None (Spsc.try_pop r)
  done

let test_ring_wraparound () =
  let r = Spsc.create ~capacity:5 ~dummy:(-1) in
  (* Keep a rolling occupancy of 3 across many index wraps; FIFO order
     must survive every wrap of the 8-slot backing array. *)
  let next_in = ref 0 and next_out = ref 0 in
  for _ = 1 to 3 do
    assert (Spsc.try_push r !next_in);
    incr next_in
  done;
  for _ = 1 to 10_000 do
    assert (Spsc.try_push r !next_in);
    incr next_in;
    (match Spsc.try_pop r with
    | Some v ->
        check Alcotest.int "fifo across wraps" !next_out v;
        incr next_out
    | None -> Alcotest.fail "ring unexpectedly empty");
    check Alcotest.int "steady occupancy" 3 (Spsc.length r)
  done

let test_ring_invalid () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Spsc.create: capacity must be positive") (fun () ->
      ignore (Spsc.create ~capacity:0 ~dummy:()))

(* ------------------------------------------------------------------ *)
(* Cross-domain torture: raw ring                                      *)

(* One producer domain pushes [n] ints while this domain pops: every value
   arrives exactly once, in order — conservation and FIFO under real
   cross-domain publication.  The ring is large so a single-core host can
   move a whole batch per scheduling quantum instead of four. *)
let test_ring_two_domains () =
  let n = 200_000 in
  let r = Spsc.create ~capacity:1024 ~dummy:(-1) in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Spsc.try_push r i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let expected = ref 0 in
  while !expected < n do
    match Spsc.try_pop r with
    | Some v ->
        if v <> !expected then
          Alcotest.failf "out of order: got %d, expected %d" v !expected;
        incr expected
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  check (Alcotest.option Alcotest.int) "drained" None (Spsc.try_pop r)

(* ------------------------------------------------------------------ *)
(* Port-level: FIFO per lane, conservation across lanes                *)

let packet_of_int ~producer i =
  let p = Packet.create ~capacity:1 ~producer in
  Packet.add p (Tuple.of_ints [ i ]);
  p

let int_of_packet p = Tuple.int_exn (Packet.get p 0) 0

let test_port_lane_fifo () =
  (* Two producers interleave into one consumer; each lane must stay FIFO
     and nothing may be lost or duplicated. *)
  let per_producer = 20_000 in
  let port = Port.create ~producers:2 ~consumers:1 ~flow_slack:3 () in
  let producers =
    List.init 2 (fun rank ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              Port.send port ~producer:rank ~consumer:0
                (packet_of_int ~producer:rank i)
            done))
  in
  let last = [| -1; -1 |] in
  let got = ref 0 in
  while !got < 2 * per_producer do
    match Port.receive port ~consumer:0 with
    | None -> Alcotest.fail "port shut down unexpectedly"
    | Some p ->
        let rank = Packet.producer p in
        let v = int_of_packet p in
        if v <= last.(rank) then
          Alcotest.failf "lane %d not FIFO: %d after %d" rank v last.(rank);
        last.(rank) <- v;
        incr got
  done;
  List.iter Domain.join producers;
  check Alcotest.int "lane 0 complete" (per_producer - 1) last.(0);
  check Alcotest.int "lane 1 complete" (per_producer - 1) last.(1);
  check Alcotest.int "conserved" (2 * per_producer) (Port.packets_received port)

(* ------------------------------------------------------------------ *)
(* Shutdown/poison races: no lost wakeups                              *)

(* A consumer blocked in [receive] races a shutdown (or poison) from
   another domain, thousands of times.  A lost wakeup hangs the test, so
   the whole suite doubles as a liveness check.  One long-lived worker
   domain is fed ports through a blocking rendezvous (semaphores, so a
   single-core host hands the CPU over instead of burning a timeslice
   spinning) — spawning 10k domains would dominate the run time. *)
type job = Stop | Drain of Port.t

let test_shutdown_race_matrix () =
  let rounds = 10_000 in
  let module Sema = Volcano_util.Sema in
  let job_ready = Sema.create 0 and job_done = Sema.create 0 in
  let slot = ref Stop in
  let worker =
    Domain.spawn (fun () ->
        let rec loop () =
          Sema.acquire job_ready;
          match !slot with
          | Stop -> ()
          | Drain port ->
              (* Block until a packet or the shutdown arrives; either way
                 every receive must return. *)
              let rec drain () =
                match Port.receive port ~consumer:0 with
                | Some _ -> drain ()
                | None -> ()
              in
              drain ();
              Sema.release job_done;
              loop ()
        in
        loop ())
  in
  for round = 1 to rounds do
    let port = Port.create ~producers:1 ~consumers:1 ~flow_slack:2 () in
    slot := Drain port;
    Sema.release job_ready;
    (* Vary the interleaving: sometimes send first, sometimes shut down
       straight away, sometimes poison, and sometimes yield long enough
       for the worker to park inside [receive] before the shutdown — the
       wakeup that must never be lost. *)
    (match round mod 4 with
    | 0 ->
        Port.send port ~producer:0 ~consumer:0 (packet_of_int ~producer:0 round)
    | 1 -> Port.poison port (Failure "race")
    | 2 -> Unix.sleepf 1e-4
    | _ -> ());
    Port.shutdown port;
    Sema.acquire job_done
  done;
  slot := Stop;
  Sema.release job_ready;
  Domain.join worker

(* The mirror race: a producer blocked on a full lane ring must be woken
   by shutdown (and its packet dropped), never stranded. *)
let test_blocked_producer_shutdown () =
  for _ = 1 to 1_000 do
    let port = Port.create ~producers:1 ~consumers:1 ~flow_slack:1 () in
    Port.send port ~producer:0 ~consumer:0 (packet_of_int ~producer:0 0);
    let producer =
      Domain.spawn (fun () ->
          (* The lane is full: this blocks until the shutdown below. *)
          Port.send port ~producer:0 ~consumer:0 (packet_of_int ~producer:0 1))
    in
    Port.shutdown port;
    Domain.join producer;
    (* The queued packet survives the shutdown (drain-then-None); the
       blocked send was dropped. *)
    (match Port.receive port ~consumer:0 with
    | Some p -> check Alcotest.int "queued packet survives" 0 (int_of_packet p)
    | None -> Alcotest.fail "queued packet lost");
    check (Alcotest.option Alcotest.int) "then None" None
      (Option.map int_of_packet (Port.receive port ~consumer:0))
  done

let suite =
  [
    Alcotest.test_case "ring basics and exact capacity" `Quick test_ring_basics;
    Alcotest.test_case "ring capacity one" `Quick test_ring_capacity_one;
    Alcotest.test_case "ring wraparound fifo" `Quick test_ring_wraparound;
    Alcotest.test_case "ring invalid capacity" `Quick test_ring_invalid;
    Alcotest.test_case "ring two domains" `Slow test_ring_two_domains;
    Alcotest.test_case "port lane fifo and conservation" `Slow
      test_port_lane_fifo;
    Alcotest.test_case "10k shutdown/poison races" `Slow
      test_shutdown_race_matrix;
    Alcotest.test_case "blocked producer woken by shutdown" `Slow
      test_blocked_producer_shutdown;
  ]
