(* The vectorized batch path, locked in differentially: every plan must
   produce bit-identical results whether its fusible chains compile to
   batch pipelines (the default) or to record-at-a-time iterator trees
   ([batch_size = 0]).  The batch path is an optimization of the
   iterator protocol, not a semantic variant — exactly as exchange is an
   optimization of placement, checked by the suite next door. *)

module Batch = Volcano.Batch
module Iterator = Volcano.Iterator
module Packet = Volcano.Packet
module Exchange = Volcano.Exchange
module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Sched = Volcano_sched.Sched
module Bufpool = Volcano_storage.Bufpool
module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Expr = Volcano_tuple.Expr
module Support = Volcano_tuple.Support
module Diag = Volcano_analysis.Diag
module Rng = Volcano_util.Rng
module Aggregate = Volcano_ops.Aggregate

let check = Alcotest.check

let env ?batch_size () = Env.create ~frames:128 ~page_size:512 ?batch_size ()

let check_rows name expected actual =
  check Alcotest.int (name ^ ": cardinality") (List.length expected)
    (List.length actual);
  List.iter2
    (fun x y -> check Alcotest.bool (name ^ ": tuple") true (Tuple.equal x y))
    expected actual

let gen_tuple i = Tuple.of_ints [ i; i mod 10; i mod 7 ]

(* A chain exercising every fusible operator class over one leaf:
   filter, both projections, and hash distinct. *)
let fused_chain n =
  Plan.Distinct
    {
      algo = Plan.Hash_based;
      on = [ 0; 1 ];
      input =
        Plan.Project_exprs
          {
            exprs = [ Expr.Col 1; Expr.Infix.( + ) (Expr.Col 0) (Expr.Col 2) ];
            input =
              Plan.Project_cols
                {
                  cols = [ 2; 0; 1 ];
                  input =
                    Plan.Filter
                      {
                        pred =
                          Expr.Cmp
                            ( Expr.Ne,
                              Expr.Mod (Expr.Col 0, Expr.int 3),
                              Expr.int 0 );
                        mode = `Compiled;
                        input =
                          Plan.Generate { arity = 3; count = n; gen = gen_tuple };
                      };
                };
          };
    }

(* --- the adapter bridges -------------------------------------------- *)

let test_bridge_roundtrip () =
  List.iter
    (fun (batch_size, count) ->
      let name = Printf.sprintf "size %d count %d" batch_size count in
      let expected = List.init count gen_tuple in
      let bridged =
        Iterator.to_list
          (Batch.to_iterator
             (Batch.of_iterator ~batch_size
                (Iterator.generate ~count ~f:gen_tuple)))
      in
      check_rows name expected bridged)
    [ (1, 0); (1, 7); (3, 1); (7, 7); (7, 20); (64, 5); (255, 1000) ]

let test_batch_shapes () =
  (* A yielded packet is never empty, never end-of-stream-tagged, and
     full except for the non-divisible tail. *)
  let batch_size = 7 and count = 23 in
  let b = Batch.of_iterator ~batch_size (Iterator.generate ~count ~f:gen_tuple) in
  Batch.open_ b;
  let lengths = ref [] in
  let rec drain () =
    match Batch.next b with
    | None -> ()
    | Some p ->
        check Alcotest.bool "not empty" false (Packet.is_empty p);
        check Alcotest.bool "no eos tag" false (Packet.end_of_stream p);
        check Alcotest.int "capacity is the batch size" batch_size
          (Packet.capacity p);
        lengths := Packet.length p :: !lengths;
        drain ()
  in
  drain ();
  Batch.close b;
  check
    Alcotest.(list int)
    "full batches, then the tail" [ 7; 7; 7; 2 ]
    (List.rev !lengths)

let test_validate () =
  check Alcotest.bool "0 disables, valid" true (Batch.validate ~batch_size:0 = []);
  check Alcotest.bool "1 valid" true (Batch.validate ~batch_size:1 = []);
  check Alcotest.bool "255 valid" true (Batch.validate ~batch_size:255 = []);
  check Alcotest.bool "256 invalid" false
    (Batch.validate ~batch_size:256 = []);
  check Alcotest.bool "-1 invalid" false (Batch.validate ~batch_size:(-1) = []);
  check Alcotest.int "default size" 64 Batch.default_size;
  (match Env.create ~batch_size:256 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Env.create must reject batch_size 256");
  let e = env () in
  check Alcotest.int "env default" Batch.default_size (Env.batch_size e);
  Env.set_batch_size e 0;
  check Alcotest.int "knob set" 0 (Env.batch_size e);
  match Env.set_batch_size e 999 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "Env.set_batch_size must reject 999"

(* --- edge cases through the compiler -------------------------------- *)

(* Empty input, batch_size 1, batch_size > input, non-divisible tails:
   for every (size, count) pair the batch path must reproduce the record
   path's output exactly, order included — fused chains are
   order-preserving, so this is the strongest possible comparison. *)
let test_edge_sizes () =
  List.iter
    (fun count ->
      let plan = fused_chain count in
      let expected = Runner.run (env ~batch_size:0 ()) plan in
      List.iter
        (fun batch_size ->
          let actual = Runner.run (env ~batch_size ()) plan in
          check_rows
            (Printf.sprintf "size %d count %d" batch_size count)
            expected actual)
        [ 1; 2; 64; 255 ])
    [ 0; 1; 2; 63; 64; 65; 129 ]

(* Reopening a compiled batch pipeline must replay it from scratch —
   in particular distinct's seen table must reset, or the second pass
   returns nothing. *)
let test_reopen_resets_state () =
  let e = env () in
  let iter = Compile.compile e (fused_chain 50) in
  let first = Iterator.to_list iter in
  let second = Iterator.to_list iter in
  check Alcotest.bool "first pass nonempty" true (first <> []);
  check_rows "reopen" first second

(* Early close mid-batch: drain a few records of a fused chain feeding
   an exchange, close at the root, and reconcile — the scheduler joins
   every producer and the packet pools leak nothing (quiescence is the
   pool-ledger check: a leaked in-flight packet leaves a producer
   unjoined or a lane undrained). *)
let test_early_close_mid_batch () =
  let e = env () in
  let plan =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree:2 ~packet_size:5 ();
        input =
          Plan.Filter
            {
              pred = Expr.Cmp (Expr.Ge, Expr.Col 0, Expr.int 0);
              mode = `Compiled;
              input =
                Plan.Generate_slice { arity = 3; count = 5000; gen = gen_tuple };
            };
      }
  in
  let iter = Compile.compile e plan in
  Iterator.open_ iter;
  for _ = 1 to 3 do
    match Iterator.next iter with
    | Some _ -> ()
    | None -> Alcotest.fail "expected a record before early close"
  done;
  Iterator.close iter;
  Bufpool.assert_quiescent ~what:"early close" (Env.buffer e);
  Sched.assert_quiescent ~what:"early close" (Sched.default ());
  (* The same pipeline closed mid-batch directly, then reopened. *)
  let b =
    Batch.of_iterator ~batch_size:8 (Iterator.generate ~count:100 ~f:gen_tuple)
  in
  Batch.open_ b;
  (match Batch.next b with
  | Some p -> check Alcotest.int "first batch full" 8 (Packet.length p)
  | None -> Alcotest.fail "expected a batch");
  Batch.close b;
  check Alcotest.int "reopen after early close" 100 (Batch.consume b)

(* --- the differential lock ------------------------------------------ *)

let sorted_run env plan = List.sort Tuple.compare (Runner.run env plan)

(* 1000 seeds of the random-plan corpus, decorated with random exchange
   placements, through both paths.  Comparison is the sorted multiset
   (parallel arrival order is nondeterministic); the serial property
   below pins exact order. *)
let prop_batch_iterator_differential =
  QCheck.Test.make ~name:"batch and record paths agree across 1000 seeds"
    ~count:1000
    QCheck.(pair int64 (int_range 1 2))
    (fun (seed, depth) ->
      let batched = env () in
      let record = env ~batch_size:0 () in
      let rng = Rng.create seed in
      let plan =
        Test_random_plans.decorate rng (Test_random_plans.random_plan rng depth)
      in
      let ok = sorted_run batched plan = sorted_run record plan in
      Bufpool.assert_quiescent ~what:"batch/iterator differential"
        (Env.buffer batched);
      Sched.assert_quiescent ~what:"batch/iterator differential"
        (Sched.default ());
      ok)

(* Undecorated (serial) random plans are deterministic, so here the two
   paths must agree record for record, in order — bit-identical. *)
let prop_batch_iterator_serial_identical =
  QCheck.Test.make ~name:"serial plans bit-identical batch vs record"
    ~count:300
    QCheck.(pair int64 (int_range 1 3))
    (fun (seed, depth) ->
      let rng = Rng.create seed in
      let plan = Test_random_plans.random_plan rng depth in
      (* Random batch size across the full legal range, so tails and
         size-1 batches are swept too. *)
      let batch_size = 1 + Rng.int rng 255 in
      Runner.run (env ~batch_size ()) plan
      = Runner.run (env ~batch_size:0 ()) plan)

(* Scheduler independence with batching on: the pooled scheduler and the
   dedicated (domain-per-task) baseline agree on batched plans just as
   they do on record plans. *)
let prop_batch_pooled_dedicated =
  QCheck.Test.make ~name:"batched plans agree pooled vs dedicated" ~count:60
    QCheck.(pair int64 (int_range 1 2))
    (fun (seed, depth) ->
      let pooled = env () in
      let dedicated =
        Env.create ~frames:128 ~page_size:512 ~sched:(Sched.dedicated ()) ()
      in
      let rng = Rng.create seed in
      let plan =
        Test_random_plans.decorate rng (Test_random_plans.random_plan rng depth)
      in
      let ok = sorted_run pooled plan = sorted_run dedicated plan in
      Bufpool.assert_quiescent ~what:"batch pooled/dedicated"
        (Env.buffer pooled);
      Bufpool.assert_quiescent ~what:"batch pooled/dedicated"
        (Env.buffer dedicated);
      Sched.assert_quiescent ~what:"batch pooled/dedicated"
        (Sched.default ());
      ok)

(* The projection-pushdown rewrite — an aggregate directly over
   projections folds the projections into its own key and argument
   expressions — runs only on the batch path, so it needs its own
   differential, and over data nastier than the random-plan corpus's
   all-int tuples: zero divisors make Null keys and Null sums, stray
   floats and strings defeat the int kernels mid-build (demoting groups
   and the unboxed key probe), and generic aggregates (Avg, Min) drive
   the expression-keyed generic build. *)
let test_pushdown_differential () =
  let rng = Rng.create 0xBADDECAFL in
  let mixed i =
    let v k =
      match Rng.int rng 10 with
      | 0 -> Value.Null
      | 1 -> Value.Float (float_of_int k /. 2.0)
      | 2 -> Value.Str (string_of_int (k mod 5))
      | _ -> Value.Int (k mod 17)
    in
    [| v i; v (i * 3); v (i * 7); Value.Int (i mod 4) |]
  in
  for case = 0 to 49 do
    let n = 50 + Rng.int rng 200 in
    let tuples = List.init n mixed in
    let aggs =
      if case mod 2 = 0 then
        [ Aggregate.Count; Aggregate.Sum (Expr.Div (Expr.Col 1, Expr.Col 2)) ]
      else
        (* Avg reads the Mod projection (always Int or Null): Avg over a
           string raises in every path, which is not what this test is
           about.  Min takes anything. *)
        [ Aggregate.Avg (Expr.Col 0); Aggregate.Min (Expr.Col 1) ]
    in
    let plan =
      Plan.Aggregate
        {
          algo = Plan.Hash_based;
          group_by = [ 0; 1 ];
          aggs;
          input =
            Plan.Project_exprs
              {
                exprs =
                  [
                    Expr.Mod (Expr.Col 0, Expr.Col 3);
                    Expr.Col 2;
                    Expr.Div (Expr.Col 1, Expr.Col 3);
                  ];
                input =
                  Plan.Project_cols
                    {
                      cols = [ 2; 0; 1; 3 ];
                      input = Plan.Scan_list { arity = 4; tuples };
                    };
              };
        }
    in
    let batched = Runner.run (env ()) plan in
    let record = Runner.run (env ~batch_size:0 ()) plan in
    check_rows (Printf.sprintf "pushdown case %d" case) record batched
  done

(* --- planlint -------------------------------------------------------- *)

let has_code diags code =
  List.exists (fun (d : Diag.t) -> String.equal d.code code) diags

let test_planlint_batch () =
  let e = env () in
  let plan = fused_chain 10 in
  (* An illegal knob is an error (VL601), sharing Batch.validate. *)
  let diags = Compile.analyze ~batch_size:300 e plan in
  check Alcotest.bool "batch-size error" true
    (has_code (Diag.errors diags) "batch-size");
  check Alcotest.(option string) "VL601" (Some "VL601")
    (Diag.vl_code (Diag.error ~code:"batch-size" ~path:"root" "x"));
  (* A port packet smaller than the batch splits every batch: VL602. *)
  let small_edge =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree:2 ~packet_size:4 ();
        input = Plan.Generate_slice { arity = 3; count = 10; gen = gen_tuple };
      }
  in
  let diags = Compile.analyze ~batch_size:64 e small_edge in
  check Alcotest.bool "mismatch warning" true
    (has_code diags "batch-packet-mismatch");
  check Alcotest.bool "mismatch is not an error" false
    (has_code (Diag.errors diags) "batch-packet-mismatch");
  check Alcotest.(option string) "VL602" (Some "VL602")
    (Diag.vl_code (Diag.warning ~code:"batch-packet-mismatch" ~path:"root" "x"));
  (* The default port packet (83) comfortably holds the default batch
     (64): clean.  Batching off checks nothing. *)
  check Alcotest.bool "default sizes clean" false
    (has_code (Compile.analyze e small_edge |> Diag.errors) "batch-size");
  check Alcotest.bool "disabled checks nothing" false
    (has_code (Compile.analyze ~batch_size:0 e small_edge)
       "batch-packet-mismatch")

let suite =
  [
    Alcotest.test_case "bridge roundtrip" `Quick test_bridge_roundtrip;
    Alcotest.test_case "batch shapes" `Quick test_batch_shapes;
    Alcotest.test_case "knob validation" `Quick test_validate;
    Alcotest.test_case "edge sizes" `Quick test_edge_sizes;
    Alcotest.test_case "reopen resets state" `Quick test_reopen_resets_state;
    Alcotest.test_case "early close mid-batch" `Quick test_early_close_mid_batch;
    QCheck_alcotest.to_alcotest prop_batch_iterator_differential;
    QCheck_alcotest.to_alcotest prop_batch_iterator_serial_identical;
    QCheck_alcotest.to_alcotest prop_batch_pooled_dedicated;
    Alcotest.test_case "projection pushdown differential" `Quick
      test_pushdown_differential;
    Alcotest.test_case "planlint batch pass" `Quick test_planlint_batch;
  ]
