(* Unit and property tests for the utility modules. *)

module Sema = Volcano_util.Sema
module Latch = Volcano_util.Latch
module Rng = Volcano_util.Rng
module Zipf = Volcano_util.Zipf
module Binheap = Volcano_util.Binheap
module Stats = Volcano_util.Stats

let check = Alcotest.check

let test_sema_counting () =
  let s = Sema.create 2 in
  check Alcotest.int "initial" 2 (Sema.value s);
  Sema.acquire s;
  Sema.acquire s;
  check Alcotest.bool "exhausted" false (Sema.try_acquire s);
  Sema.release s;
  check Alcotest.bool "recovered" true (Sema.try_acquire s);
  Sema.release_n s 5;
  check Alcotest.int "bulk release" 5 (Sema.value s)

let test_sema_blocking () =
  let s = Sema.create 0 in
  let woke = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Sema.acquire s;
        Atomic.set woke true)
  in
  Unix.sleepf 0.02;
  check Alcotest.bool "still blocked" false (Atomic.get woke);
  Sema.release s;
  Domain.join d;
  check Alcotest.bool "woken" true (Atomic.get woke)

let test_sema_waiters () =
  let s = Sema.create 0 in
  check Alcotest.int "no waiters" 0 (Sema.waiters s);
  let d =
    Domain.spawn (fun () ->
        Sema.acquire s;
        Sema.acquire s)
  in
  (* Wait for the domain to park (exact waiter accounting is the point:
     a teardown can release precisely the number of blocked acquirers). *)
  let rec await tries =
    if Sema.waiters s = 1 then ()
    else if tries = 0 then Alcotest.fail "waiter never parked"
    else begin
      Unix.sleepf 0.005;
      await (tries - 1)
    end
  in
  await 1000;
  Sema.release_n s (Sema.waiters s);
  await 1000;
  Sema.release_n s (Sema.waiters s);
  Domain.join d;
  check Alcotest.int "all released" 0 (Sema.waiters s)

let test_latch () =
  let l = Latch.create 3 in
  check Alcotest.bool "closed" false (Latch.is_open l);
  Latch.count_down l;
  Latch.count_down l;
  check Alcotest.bool "still closed" false (Latch.is_open l);
  Latch.count_down l;
  Latch.await l;
  check Alcotest.bool "open" true (Latch.is_open l);
  (* Extra count_downs are harmless. *)
  Latch.count_down l;
  check Alcotest.bool "still open" true (Latch.is_open l)

let test_barrier () =
  let b = Latch.Barrier.create 4 in
  let counter = Atomic.make 0 in
  let domains =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr counter;
            Latch.Barrier.await b;
            (* Second round: reuse the same barrier. *)
            Atomic.incr counter;
            Latch.Barrier.await b))
  in
  Atomic.incr counter;
  Latch.Barrier.await b;
  (* After the first barrier everyone must have done round one. *)
  check Alcotest.bool "first round complete" true (Atomic.get counter >= 4);
  Atomic.incr counter;
  Latch.Barrier.await b;
  List.iter Domain.join domains;
  check Alcotest.int "both rounds" 8 (Atomic.get counter)

let test_rng_determinism () =
  let a = Rng.create 17L and b = Rng.create 17L in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    check Alcotest.bool "in range" true (x >= 0 && x < 7)
  done

let test_permutation () =
  let rng = Rng.create 5L in
  let p = Rng.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check
    (Alcotest.array Alcotest.int)
    "is a permutation"
    (Array.init 100 (fun i -> i))
    sorted

let test_zipf_skew () =
  let rng = Rng.create 11L in
  let z = Zipf.create ~n:100 ~theta:1.0 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let x = Zipf.draw z rng in
    counts.(x) <- counts.(x) + 1
  done;
  (* Rank 0 must dominate rank 50 heavily under theta = 1. *)
  check Alcotest.bool "skewed" true (counts.(0) > counts.(50) * 5)

let test_zipf_uniform () =
  let rng = Rng.create 11L in
  let z = Zipf.create ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let x = Zipf.draw z rng in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c -> check Alcotest.bool "roughly uniform" true (c > 700 && c < 1300))
    counts

let test_binheap_sorts () =
  let heap = Binheap.of_list ~cmp:compare [ 5; 3; 8; 1; 9; 2; 7 ] in
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ]
    (Binheap.to_sorted_list heap)

let test_binheap_empty () =
  let heap = Binheap.create ~cmp:compare in
  check Alcotest.bool "empty" true (Binheap.is_empty heap);
  check (Alcotest.option Alcotest.int) "pop empty" None (Binheap.pop heap);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Binheap.pop_exn: empty heap")
    (fun () -> ignore (Binheap.pop_exn heap))

let prop_binheap =
  QCheck.Test.make ~name:"binheap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let heap = Binheap.of_list ~cmp:compare xs in
      Binheap.to_sorted_list heap = List.sort compare xs)

let test_stats () =
  let s = Stats.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-6) "stddev" 2.13808993 (Stats.stddev s);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.max s)

let test_percentile_exact () =
  (* 1..100 fits the default reservoir, so percentiles are exact (linear
     interpolation between closest ranks). *)
  let s = Stats.of_list (List.init 100 (fun i -> float_of_int (i + 1))) in
  check (Alcotest.float 1e-9) "p0 = min" 1.0 (Stats.percentile s 0.0);
  check (Alcotest.float 1e-9) "p100 = max" 100.0 (Stats.percentile s 1.0);
  check (Alcotest.float 1e-9) "median" 50.5 (Stats.percentile s 0.5);
  check (Alcotest.float 1e-6) "p90" 90.1 (Stats.percentile s 0.9);
  let single = Stats.of_list [ 42.0 ] in
  check (Alcotest.float 1e-9) "singleton" 42.0 (Stats.percentile single 0.7)

let test_percentile_edge () =
  let empty = Stats.create () in
  check (Alcotest.float 1e-9) "empty" 0.0 (Stats.percentile empty 0.5);
  let s = Stats.of_list [ 1.0; 2.0 ] in
  Alcotest.check_raises "p > 1"
    (Invalid_argument "Stats.percentile: p must be in [0, 1]") (fun () ->
      ignore (Stats.percentile s 1.5));
  Alcotest.check_raises "p < 0"
    (Invalid_argument "Stats.percentile: p must be in [0, 1]") (fun () ->
      ignore (Stats.percentile s (-0.1)))

let test_percentile_reservoir () =
  (* 10,000 values through a 64-slot reservoir: estimates are approximate
     but deterministic (fixed rng seed) and order-correct. *)
  let mk () =
    Stats.of_list ~reservoir:64 (List.init 10_000 (fun i -> float_of_int i))
  in
  let a = mk () and b = mk () in
  check (Alcotest.float 1e-9) "deterministic" (Stats.percentile a 0.5)
    (Stats.percentile b 0.5);
  let p10 = Stats.percentile a 0.1
  and p50 = Stats.percentile a 0.5
  and p90 = Stats.percentile a 0.9 in
  check Alcotest.bool "ordered" true (p10 <= p50 && p50 <= p90);
  check Alcotest.bool "median in the middle" true
    (p50 > 2000.0 && p50 < 8000.0)

let test_cov () =
  let s = Stats.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check (Alcotest.float 1e-6) "cov" (2.13808993 /. 5.0)
    (Stats.coefficient_of_variation s);
  (* Zero mean (cancelling values or empty series) reports 0, not nan. *)
  let zero = Stats.of_list [ -1.0; 1.0 ] in
  check (Alcotest.float 1e-9) "zero mean" 0.0
    (Stats.coefficient_of_variation zero);
  check (Alcotest.float 1e-9) "empty" 0.0
    (Stats.coefficient_of_variation (Stats.create ()));
  (* Negative mean uses the magnitude. *)
  let neg = Stats.of_list [ -2.0; -4.0; -6.0 ] in
  check Alcotest.bool "negative mean positive cov" true
    (Stats.coefficient_of_variation neg > 0.0)

let suite =
  [
    Alcotest.test_case "semaphore counting" `Quick test_sema_counting;
    Alcotest.test_case "semaphore blocking" `Quick test_sema_blocking;
    Alcotest.test_case "semaphore waiter accounting" `Quick test_sema_waiters;
    Alcotest.test_case "latch" `Quick test_latch;
    Alcotest.test_case "barrier reusable" `Quick test_barrier;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform;
    Alcotest.test_case "binheap sorts" `Quick test_binheap_sorts;
    Alcotest.test_case "binheap empty" `Quick test_binheap_empty;
    QCheck_alcotest.to_alcotest prop_binheap;
    Alcotest.test_case "stats welford" `Quick test_stats;
    Alcotest.test_case "stats percentile exact" `Quick test_percentile_exact;
    Alcotest.test_case "stats percentile edges" `Quick test_percentile_edge;
    Alcotest.test_case "stats percentile reservoir" `Quick
      test_percentile_reservoir;
    Alcotest.test_case "stats cov" `Quick test_cov;
  ]
