(* The worker-pool scheduler and the multi-query runtime on top of it:
   fork/await/steal mechanics, fiber suspension (events, blocked ports),
   pool exhaustion (more producers than workers must not deadlock),
   admission gating, queued-task cancellation, deadlines, and the Session
   facade tying them together. *)

module Sched = Volcano_sched.Sched
module Runtime = Volcano_sched.Runtime
module Exchange = Volcano.Exchange
module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Session = Volcano_plan.Session
module Bufpool = Volcano_storage.Bufpool
module Device = Volcano_storage.Device
module Daemon = Volcano_storage.Daemon
module Tuple = Volcano_tuple.Tuple

let check = Alcotest.check

let with_pool ?(workers = 2) f =
  let sched = Sched.create ~workers () in
  Fun.protect
    ~finally:(fun () -> Sched.shutdown sched)
    (fun () ->
      let r = f sched in
      Sched.assert_quiescent ~what:"test pool" sched;
      r)

(* --- pool basics ----------------------------------------------------- *)

let test_fork_await () =
  with_pool ~workers:2 (fun sched ->
      let tasks = List.init 50 (fun i -> Sched.fork sched (fun () -> i * i)) in
      List.iteri
        (fun i task ->
          match Sched.await task with
          | Ok v -> check Alcotest.int "task result" (i * i) v
          | Error exn -> Alcotest.failf "task %d: %s" i (Printexc.to_string exn))
        tasks;
      let s = Sched.stats sched in
      check Alcotest.int "workers" 2 s.Sched.pool_workers;
      check Alcotest.int "submitted" 50 s.Sched.submitted;
      check Alcotest.int "completed" 50 s.Sched.completed)

let test_fork_await_dedicated () =
  let sched = Sched.dedicated () in
  let tasks = List.init 8 (fun i -> Sched.fork sched (fun () -> i + 1)) in
  List.iteri
    (fun i task ->
      match Sched.await task with
      | Ok v -> check Alcotest.int "task result" (i + 1) v
      | Error exn -> Alcotest.failf "task %d: %s" i (Printexc.to_string exn))
    tasks;
  check Alcotest.int "no pool workers" 0 (Sched.workers sched);
  Sched.assert_quiescent ~what:"dedicated" sched

let test_task_failure () =
  with_pool (fun sched ->
      let task = Sched.fork sched (fun () -> failwith "boom") in
      match Sched.await task with
      | Ok _ -> Alcotest.fail "expected Error"
      | Error (Failure msg) -> check Alcotest.string "message" "boom" msg
      | Error exn -> Alcotest.failf "wrong exn: %s" (Printexc.to_string exn))

let test_event () =
  with_pool (fun sched ->
      let gate = Sched.Event.create () in
      check Alcotest.bool "not fired" false (Sched.Event.fired gate);
      (* Waiters both on-pool (fiber suspends) and off-pool (condition
         wait) must wake on one fire. *)
      let waiter = Sched.fork sched (fun () -> Sched.Event.wait gate; 7) in
      let firer =
        Sched.fork sched (fun () ->
            Unix.sleepf 0.005;
            Sched.Event.fire gate)
      in
      check Alcotest.(result int reject) "pool waiter" (Ok 7)
        (match Sched.await waiter with Ok v -> Ok v | Error _ -> Ok (-1));
      Sched.Event.wait gate;
      ignore (Sched.await firer : (unit, exn) result);
      Sched.Event.fire gate (* idempotent *))

let test_suspend_off_pool_rejected () =
  Alcotest.check_raises "suspend off pool"
    (Invalid_argument "Sched.suspend: not inside a pool fiber") (fun () ->
      Sched.suspend (fun _ -> false))

(* --- pool exhaustion -------------------------------------------------- *)

(* More producer tasks than workers, with blocking dependencies between
   them (inner producers block on flow control; outer producers block on
   the inner port lookup and receives).  On a 2-worker pool this deadlocks
   unless every one of those waits suspends its fiber instead of holding
   the worker. *)
let test_pool_exhaustion_no_deadlock () =
  let slice n =
    Plan.Generate_slice
      { arity = 2; count = n; gen = (fun i -> Tuple.of_ints [ i; i mod 7 ]) }
  in
  let plan =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree:4 ~packet_size:3 ~flow_slack:(Some 2) ();
        input =
          Plan.Exchange
            {
              cfg =
                Exchange.config ~degree:3 ~packet_size:3 ~flow_slack:(Some 2)
                  ();
              input = slice 600;
            };
      }
  in
  Session.with_session ~workers:2 ~frames:64 ~page_size:512 (fun s ->
      for _ = 1 to 3 do
        check Alcotest.int "rows survive 7 tasks on 2 workers" 600
          (Session.exec_count s (`Plan plan))
      done;
      Sched.assert_quiescent ~what:"exhaustion" (Session.sched s))

(* --- runtime: admission, cancellation, deadlines ---------------------- *)

let test_admission_gate () =
  with_pool ~workers:4 (fun sched ->
      let rt = Runtime.create ~max_concurrent:2 sched in
      let gate = Sched.Event.create () in
      let a = Runtime.submit rt (fun () -> Sched.Event.wait gate; "a") in
      let b = Runtime.submit rt (fun () -> Sched.Event.wait gate; "b") in
      let c = Runtime.submit rt (fun () -> "c") in
      (* a and b hold both slots; c must stay queued. *)
      let rec wait_running n =
        if Runtime.running rt < n then (Unix.sleepf 0.002; wait_running n)
      in
      wait_running 2;
      check Alcotest.int "queued behind the gate" 1 (Runtime.queued rt);
      check Alcotest.bool "c not started" true (Runtime.status c = Runtime.Queued);
      Sched.Event.fire gate;
      check Alcotest.(result string reject) "c runs after release" (Ok "c")
        (match Runtime.await c with Ok v -> Ok v | Error _ -> Ok "?");
      ignore (Runtime.await a : (string, exn) result);
      ignore (Runtime.await b : (string, exn) result);
      Runtime.close rt)

let test_queued_cancel_never_runs () =
  with_pool ~workers:2 (fun sched ->
      let rt = Runtime.create ~max_concurrent:1 sched in
      let gate = Sched.Event.create () in
      let ran = Atomic.make false in
      let a = Runtime.submit rt (fun () -> Sched.Event.wait gate) in
      let b = Runtime.submit rt (fun () -> Atomic.set ran true) in
      check Alcotest.bool "b queued" true (Runtime.status b = Runtime.Queued);
      Runtime.cancel b;
      Sched.Event.fire gate;
      (match Runtime.await b with
      | Error Runtime.Cancelled -> ()
      | Error exn -> Alcotest.failf "wrong exn: %s" (Printexc.to_string exn)
      | Ok () -> Alcotest.fail "cancelled job returned Ok");
      check Alcotest.bool "b aborted" true (Runtime.status b = Runtime.Aborted);
      ignore (Runtime.await a : (unit, exn) result);
      Runtime.close rt;
      check Alcotest.bool "cancelled-while-queued body never ran" false
        (Atomic.get ran))

let test_close_drains_queue () =
  with_pool ~workers:2 (fun sched ->
      let rt = Runtime.create ~max_concurrent:1 sched in
      let jobs = List.init 5 (fun i -> Runtime.submit rt (fun () -> i)) in
      Runtime.close rt;
      List.iteri
        (fun i j ->
          check Alcotest.bool "finished" true (Runtime.status j = Runtime.Finished);
          match Runtime.await j with
          | Ok v -> check Alcotest.int "drained result" i v
          | Error exn -> Alcotest.failf "job %d: %s" i (Printexc.to_string exn))
        jobs;
      Alcotest.check_raises "submit after close"
        (Invalid_argument "Runtime.submit: runtime is closed") (fun () ->
          ignore (Runtime.submit rt (fun () -> ()) : unit Runtime.job)))

(* The paper-shaped cancellation path: a deadline (or explicit cancel)
   poisons the query's root scope, the poison chains through every port,
   and the job fails with the reason as the [Query_failed] origin. *)
let big_exchange_plan =
  Plan.Exchange
    {
      cfg = Exchange.config ~degree:2 ~packet_size:8 ~flow_slack:(Some 4) ();
      input =
        Plan.Generate_slice
          { arity = 1; count = 40_000_000; gen = (fun i -> Tuple.of_ints [ i ]) };
    }

let test_session_deadline () =
  Session.with_session ~workers:3 ~frames:64 ~page_size:512 (fun s ->
      match Session.exec_count ~deadline_s:0.03 s (`Plan big_exchange_plan) with
      | n -> Alcotest.failf "40M-row query beat a 30ms deadline (%d rows)" n
      | exception Exchange.Query_failed { origin = Runtime.Deadline_exceeded; _ }
        ->
          Sched.assert_quiescent ~what:"deadline" (Session.sched s)
      | exception exn ->
          Alcotest.failf "wrong failure: %s" (Printexc.to_string exn))

let test_session_cancel_running () =
  Session.with_session ~workers:3 ~frames:64 ~page_size:512 (fun s ->
      let job = Session.submit_count ~label:"big" s (`Plan big_exchange_plan) in
      let rec wait_running () =
        match Session.status job with
        | Runtime.Queued -> Unix.sleepf 0.002; wait_running ()
        | _ -> ()
      in
      wait_running ();
      Session.cancel job;
      (match Session.await job with
      | Error (Exchange.Query_failed { origin = Runtime.Cancelled; _ }) -> ()
      | Error exn -> Alcotest.failf "wrong exn: %s" (Printexc.to_string exn)
      | Ok n -> Alcotest.failf "cancelled query completed with %d rows" n);
      check Alcotest.bool "aborted" true (Session.status job = Runtime.Aborted);
      Sched.assert_quiescent ~what:"cancel" (Session.sched s))

(* --- session basics --------------------------------------------------- *)

let test_session_exec_matches_serial () =
  let mk () =
    Plan.Aggregate
      {
        algo = Plan.Hash_based;
        group_by = [ 1 ];
        aggs = [];
        input =
          Plan.Exchange
            {
              cfg =
                Exchange.config ~degree:3
                  ~partition:(Exchange.Hash_on [ 1 ])
                  ();
              input =
                Plan.Generate_slice
                  {
                    arity = 2;
                    count = 5_000;
                    gen = (fun i -> Tuple.of_ints [ i; i mod 97 ]);
                  };
            };
      }
  in
  let serial_env =
    Env.create ~frames:64 ~page_size:512 ~sched:(Sched.dedicated ()) ()
  in
  let expected = List.sort Tuple.compare (Runner.run serial_env (mk ())) in
  Session.with_session ~workers:2 ~frames:64 ~page_size:512 (fun s ->
      let rows = List.sort Tuple.compare (Session.exec s (`Plan (mk ()))) in
      check Alcotest.bool "pooled session = dedicated run" true
        (rows = expected))

let test_session_concurrent_submits () =
  Session.with_session ~workers:3 ~max_concurrent:2 ~frames:128 ~page_size:512
    (fun s ->
      let plan n =
        Plan.Exchange
          {
            cfg = Exchange.config ~degree:2 ~packet_size:5 ();
            input =
              Plan.Generate_slice
                { arity = 1; count = n; gen = (fun i -> Tuple.of_ints [ i ]) };
          }
      in
      let jobs =
        List.init 8 (fun i ->
            (400 + (i * 13), Session.submit_count s (`Plan (plan (400 + (i * 13))))))
      in
      List.iter
        (fun (expect, job) ->
          match Session.await job with
          | Ok n -> check Alcotest.int "concurrent query rows" expect n
          | Error exn -> Alcotest.failf "job failed: %s" (Printexc.to_string exn))
        jobs;
      Sched.assert_quiescent ~what:"concurrent submits" (Session.sched s))

(* --- pooled-vs-dedicated differential --------------------------------- *)

(* The same randomly decorated plans, one env on the shared pool, one on
   a dedicated (domain-per-producer) scheduler: results must agree.  The
   1000-seed differential in [Test_random_plans] covers pooled-vs-serial;
   this closes the remaining edge. *)
let test_pooled_vs_dedicated_differential () =
  with_pool ~workers:3 (fun pool ->
      for case = 0 to 14 do
        let seed = Int64.of_int ((104729 * case) + 7) in
        let rng = Volcano_util.Rng.create seed in
        let depth = 1 + Volcano_util.Rng.int rng 2 in
        let plan =
          Test_random_plans.decorate rng (Test_random_plans.random_plan rng depth)
        in
        let run sched =
          let env = Env.create ~frames:128 ~page_size:512 ~sched () in
          if Test_random_plans.accepted env plan then
            Some (Test_random_plans.sorted_run env plan)
          else None
        in
        match (run pool, run (Sched.dedicated ())) with
        | Some pooled, Some dedicated ->
            if pooled <> dedicated then
              Alcotest.failf "pooled/dedicated divergence (seed=%Ld)" seed
        | None, None -> ()
        | _ -> Alcotest.failf "acceptance divergence (seed=%Ld)" seed
      done)

(* --- storage daemon on the pool --------------------------------------- *)

let test_pooled_daemon () =
  with_pool ~workers:2 (fun sched ->
      let pool = Bufpool.create ~frames:8 ~page_size:128 () in
      let dev = Device.create_virtual ~page_size:128 ~capacity:64 () in
      let pages = Array.init 6 (fun _ -> Device.allocate dev) in
      Array.iter
        (fun p ->
          let f = Bufpool.fix_new pool dev p in
          Bufpool.mark_dirty f;
          Bufpool.unfix pool f)
        pages;
      let daemon = Daemon.start ~sched ~buffer:pool ~workers:1 () in
      Array.iter (fun p -> Daemon.submit daemon (Daemon.Flush (dev, p))) pages;
      Daemon.drain daemon;
      check Alcotest.int "flushed on pool tasks" 6 (Daemon.flushes_done daemon);
      Bufpool.purge_device pool dev;
      Array.iter
        (fun p -> Daemon.submit daemon (Daemon.Read_ahead (dev, p)))
        pages;
      Daemon.drain daemon;
      check Alcotest.int "read ahead on pool tasks" 6 (Daemon.reads_done daemon);
      Array.iter
        (fun p ->
          check Alcotest.bool "resident" true (Bufpool.contains pool dev p))
        pages;
      Daemon.stop daemon;
      Alcotest.check_raises "submit after stop"
        (Invalid_argument "Daemon.submit: daemon stopped") (fun () ->
          Daemon.submit daemon (Daemon.Flush (dev, pages.(0))));
      Bufpool.assert_quiescent ~what:"pooled daemon" pool)

let suite =
  [
    Alcotest.test_case "fork and await on the pool" `Quick test_fork_await;
    Alcotest.test_case "dedicated mode" `Quick test_fork_await_dedicated;
    Alcotest.test_case "task failure is a result" `Quick test_task_failure;
    Alcotest.test_case "events" `Quick test_event;
    Alcotest.test_case "suspend off pool rejected" `Quick
      test_suspend_off_pool_rejected;
    Alcotest.test_case "pool exhaustion does not deadlock" `Quick
      test_pool_exhaustion_no_deadlock;
    Alcotest.test_case "admission gate" `Quick test_admission_gate;
    Alcotest.test_case "queued cancel never runs" `Quick
      test_queued_cancel_never_runs;
    Alcotest.test_case "close drains the queue" `Quick test_close_drains_queue;
    Alcotest.test_case "deadline poisons the query" `Quick test_session_deadline;
    Alcotest.test_case "cancel a running query" `Quick
      test_session_cancel_running;
    Alcotest.test_case "session exec matches dedicated" `Quick
      test_session_exec_matches_serial;
    Alcotest.test_case "concurrent submits" `Quick
      test_session_concurrent_submits;
    Alcotest.test_case "pooled vs dedicated differential" `Quick
      test_pooled_vs_dedicated_differential;
    Alcotest.test_case "daemon requests as pool tasks" `Quick
      test_pooled_daemon;
  ]
