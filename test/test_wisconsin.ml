(* Wisconsin workload generator tests. *)

module W = Volcano_wisconsin.Wisconsin
module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile

let check = Alcotest.check

let test_determinism () =
  let g1 = W.generator ~seed:9L ~n:100 () in
  let g2 = W.generator ~seed:9L ~n:100 () in
  for i = 0 to 99 do
    check Alcotest.bool "same tuple" true (Tuple.equal (g1 i) (g2 i))
  done

let test_unique1_is_permutation () =
  let n = 1000 in
  let g = W.generator ~n () in
  let u1 = W.column "unique1" in
  let seen = Array.make n false in
  for i = 0 to n - 1 do
    let v = Tuple.int_exn (g i) u1 in
    check Alcotest.bool "range" true (v >= 0 && v < n);
    check Alcotest.bool "unseen" false seen.(v);
    seen.(v) <- true
  done

let test_derived_columns () =
  let g = W.generator ~n:100 () in
  let u1 = W.column "unique1" in
  for i = 0 to 99 do
    let t = g i in
    let v = Tuple.int_exn t u1 in
    check Alcotest.int "two" (v mod 2) (Tuple.int_exn t (W.column "two"));
    check Alcotest.int "ten" (v mod 10) (Tuple.int_exn t (W.column "ten"));
    check Alcotest.int "unique2" i (Tuple.int_exn t (W.column "unique2"));
    check Alcotest.int "one_percent" (v mod 100)
      (Tuple.int_exn t (W.column "one_percent"))
  done

let test_selectivity () =
  (* "two = 0" selects exactly half. *)
  let e = Env.create () in
  let open Volcano_tuple.Expr.Infix in
  let pred =
    Volcano_tuple.Expr.col (W.column "two") = Volcano_tuple.Expr.int 0
  in
  let plan = Plan.Filter { pred; mode = `Compiled; input = W.plan ~n:2000 () } in
  check Alcotest.int "50% selectivity" 1000 (Runner.count e plan)

let test_load_and_partitions () =
  let e = Env.create ~frames:512 () in
  W.load ~env:e ~name:"wisc" ~n:300 ~partitions:3 ();
  check Alcotest.int "full table" 300 (Runner.count e (Plan.Scan_table "wisc"));
  List.iter
    (fun p ->
      check Alcotest.int
        (Printf.sprintf "partition %d" p)
        100
        (Runner.count e (Plan.Scan_table (Printf.sprintf "wisc#%d" p))))
    [ 0; 1; 2 ];
  (* A partitioned parallel scan sees every record exactly once. *)
  let parallel =
    Volcano_plan.Parallel.partitioned_scan ~degree:3 ~table:"wisc" ()
  in
  check Alcotest.int "partitioned scan" 300 (Runner.count e parallel)

(* One realistic query run both ways: a selection and grouped aggregate
   over the Wisconsin relation, parallelized GAMMA-style (partitioned
   producers, hash repartitioning on the grouping key), against its
   serial twin obtained by stripping every exchange out of the very same
   plan tree. *)
let test_serial_parallel_differential () =
  let e = Env.create ~frames:256 () in
  let open Volcano_tuple.Expr.Infix in
  let pred =
    Volcano_tuple.Expr.col (W.column "two") = Volcano_tuple.Expr.int 0
  in
  let filtered =
    Plan.Filter { pred; mode = `Compiled; input = W.plan_slice ~n:3000 () }
  in
  let parallel =
    Volcano_plan.Parallel.partitioned_aggregate ~degree:3 ~packet_size:7
      ~algo:Plan.Hash_based
      ~group_by:[ W.column "ten" ]
      ~aggs:
        [
          Volcano_ops.Aggregate.Count;
          Volcano_ops.Aggregate.Sum
            (Volcano_tuple.Expr.Col (W.column "unique1"));
        ]
      filtered
  in
  let serial = Test_random_plans.strip parallel in
  let sorted plan = List.sort Tuple.compare (Runner.run e plan) in
  let serial_rows = sorted serial in
  (* "two = 0" keeps even unique1 values; they hit only the even "ten"
     groups. *)
  check Alcotest.int "five groups" 5 (List.length serial_rows);
  check Alcotest.bool "serial = parallel" true
    (List.equal Tuple.equal serial_rows (sorted parallel))

let test_skewed_generator () =
  let g = W.skewed_generator ~n:5000 ~key_space:100 ~theta:1.2 () in
  let counts = Hashtbl.create 100 in
  for i = 0 to 4999 do
    let k = Tuple.int_exn (g i) 0 in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let hottest = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  check Alcotest.bool "skew visible" true (hottest > 5000 / 20)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "unique1 is a permutation" `Quick
      test_unique1_is_permutation;
    Alcotest.test_case "derived columns" `Quick test_derived_columns;
    Alcotest.test_case "selectivity" `Quick test_selectivity;
    Alcotest.test_case "load with partitions" `Quick test_load_and_partitions;
    Alcotest.test_case "serial = parallel differential" `Quick
      test_serial_parallel_differential;
    Alcotest.test_case "skewed generator" `Quick test_skewed_generator;
  ]
