(* Tests for the file system: pages, bitmaps, devices, VTOC, buffer pool,
   heap files, and the read-ahead/write-behind daemon. *)

module Page = Volcano_storage.Page
module Bitmap = Volcano_storage.Bitmap
module Device = Volcano_storage.Device
module Vtoc = Volcano_storage.Vtoc
module Bufpool = Volcano_storage.Bufpool
module Heap_file = Volcano_storage.Heap_file
module Daemon = Volcano_storage.Daemon
module Rid = Volcano_storage.Rid

let check = Alcotest.check

let with_temp_path f =
  let path = Filename.temp_file "volcano" ".dev" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* --- slotted pages --- *)

let fresh_page ?(size = 512) () =
  let page = Bytes.create size in
  Page.init page ~kind:7;
  page

let test_page_init () =
  let page = fresh_page () in
  check Alcotest.int "no slots" 0 (Page.n_slots page);
  check Alcotest.int "kind" 7 (Page.kind page);
  check Alcotest.int "next" (-1) (Page.next_page page);
  Page.set_next_page page 42;
  check Alcotest.int "next set" 42 (Page.next_page page)

let test_page_insert_read () =
  let page = fresh_page () in
  let s1 = Page.insert page "hello" in
  let s2 = Page.insert page "world!" in
  check (Alcotest.option Alcotest.int) "slot 0" (Some 0) s1;
  check (Alcotest.option Alcotest.int) "slot 1" (Some 1) s2;
  check (Alcotest.option Alcotest.string) "read 0" (Some "hello") (Page.read page 0);
  check (Alcotest.option Alcotest.string) "read 1" (Some "world!") (Page.read page 1);
  check (Alcotest.option Alcotest.string) "read bad" None (Page.read page 2)

let test_page_delete_reuse () =
  let page = fresh_page () in
  let _ = Page.insert page "aaaa" in
  let _ = Page.insert page "bbbb" in
  check Alcotest.bool "delete" true (Page.delete page 0);
  check Alcotest.bool "double delete" false (Page.delete page 0);
  check (Alcotest.option Alcotest.string) "dead slot" None (Page.read page 0);
  (* The dead slot is reused. *)
  check (Alcotest.option Alcotest.int) "reuse" (Some 0) (Page.insert page "cccc");
  check (Alcotest.option Alcotest.string) "new value" (Some "cccc")
    (Page.read page 0)

let test_page_fill_and_compact () =
  let page = fresh_page ~size:256 () in
  (* Fill the page with records, then delete every other one and verify the
     reclaimed space is usable after compaction. *)
  let rec fill n =
    match Page.insert page (Printf.sprintf "record-%04d" n) with
    | Some _ -> fill (n + 1)
    | None -> n
  in
  let inserted = fill 0 in
  check Alcotest.bool "filled some" true (inserted > 5);
  for i = 0 to inserted - 1 do
    if i mod 2 = 0 then ignore (Page.delete page i)
  done;
  (* This insert is bigger than any single free gap before compaction. *)
  let big = String.make 20 'x' in
  check Alcotest.bool "compaction made room" true
    (Page.insert page big <> None);
  (* Survivors are intact. *)
  for i = 0 to inserted - 1 do
    if i mod 2 = 1 then
      check (Alcotest.option Alcotest.string)
        (Printf.sprintf "survivor %d" i)
        (Some (Printf.sprintf "record-%04d" i))
        (Page.read page i)
  done

let prop_page_model =
  (* Random insert/delete sequence against a list model. *)
  QCheck.Test.make ~name:"slotted page behaves like a model" ~count:100
    QCheck.(
      list
        (pair bool
           (make ~print:Fun.id
              QCheck.Gen.(string_size ~gen:printable (int_range 1 30)))))
    (fun ops ->
      let page = fresh_page ~size:1024 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (do_insert, payload) ->
          if do_insert || Hashtbl.length model = 0 then (
            match Page.insert page payload with
            | Some slot ->
                Hashtbl.replace model slot payload;
                true
            | None -> true (* full is fine *))
          else begin
            let slot = Hashtbl.fold (fun k _ acc -> max k acc) model (-1) in
            let ok = Page.delete page slot in
            Hashtbl.remove model slot;
            ok
          end
          && Hashtbl.fold
               (fun slot payload ok ->
                 ok && Page.read page slot = Some payload)
               model true)
        ops)

(* --- bitmap --- *)

let test_bitmap () =
  let b = Bitmap.create 100 in
  check Alcotest.int "empty" 0 (Bitmap.used b);
  check (Alcotest.option Alcotest.int) "first" (Some 0) (Bitmap.allocate b);
  check (Alcotest.option Alcotest.int) "second" (Some 1) (Bitmap.allocate b);
  Bitmap.clear b 0;
  check (Alcotest.option Alcotest.int) "reuse lowest" (Some 0) (Bitmap.allocate b);
  let rec exhaust n =
    match Bitmap.allocate b with Some _ -> exhaust (n + 1) | None -> n
  in
  check Alcotest.int "capacity" 98 (exhaust 0);
  check Alcotest.int "all used" 100 (Bitmap.used b)

let test_bitmap_roundtrip () =
  let b = Bitmap.create 50 in
  List.iter (fun i -> Bitmap.set b i) [ 1; 7; 13; 49 ];
  let b' = Bitmap.of_bytes (Bitmap.to_bytes b) ~n:50 in
  for i = 0 to 49 do
    check Alcotest.bool
      (Printf.sprintf "bit %d" i)
      (Bitmap.is_set b i) (Bitmap.is_set b' i)
  done

(* --- devices --- *)

let test_real_device_io () =
  with_temp_path (fun path ->
      let dev = Device.create_real ~path ~page_size:256 ~capacity:16 in
      let page = Device.allocate dev in
      let buf = Bytes.make 256 'z' in
      Device.write dev ~page buf;
      let out = Bytes.make 256 '\000' in
      Device.read dev ~page out;
      check Alcotest.bool "roundtrip" true (Bytes.equal buf out);
      (* Unwritten pages read as zeros. *)
      let p2 = Device.allocate dev in
      Device.read dev ~page:p2 out;
      check Alcotest.bool "zeros" true
        (Bytes.for_all (fun c -> c = '\000') out);
      Device.close dev)

let test_device_persistence () =
  with_temp_path (fun path ->
      let dev = Device.create_real ~path ~page_size:256 ~capacity:16 in
      let page = Device.allocate dev in
      Vtoc.add (Device.vtoc dev)
        { Vtoc.name = "t"; first_page = page; last_page = page; pages = 1; records = 5 };
      Device.close dev;
      let dev2 = Device.open_real ~path in
      check Alcotest.int "page size" 256 (Device.page_size dev2);
      check Alcotest.int "capacity" 16 (Device.capacity dev2);
      check Alcotest.bool "page still allocated" true
        (Device.allocate dev2 <> page);
      (match Vtoc.find (Device.vtoc dev2) "t" with
      | Some e ->
          check Alcotest.int "vtoc first page" page e.first_page;
          check Alcotest.int "vtoc records" 5 e.records
      | None -> Alcotest.fail "vtoc entry lost");
      Device.close dev2)

let test_virtual_device () =
  let dev = Device.create_virtual ~page_size:128 ~capacity:8 () in
  let page = Device.allocate dev in
  (* Reading a never-written virtual page is an error: it only exists in
     the buffer. *)
  Alcotest.check_raises "not resident"
    (Invalid_argument
       (Printf.sprintf "Device %s: virtual page %d is not resident" "<virtual>"
          page))
    (fun () -> Device.read dev ~page (Bytes.make 128 '\000'));
  (* A spilled (written) page can be read back. *)
  let buf = Bytes.make 128 'v' in
  Device.write dev ~page buf;
  let out = Bytes.make 128 '\000' in
  Device.read dev ~page out;
  check Alcotest.bool "spill roundtrip" true (Bytes.equal buf out);
  (* Freeing discards the page. *)
  Device.free dev page;
  Alcotest.check_raises "discarded"
    (Invalid_argument
       (Printf.sprintf "Device %s: virtual page %d is not resident" "<virtual>"
          page))
    (fun () -> Device.read dev ~page out)

let test_vtoc_ops () =
  let v = Vtoc.create () in
  Vtoc.add v { Vtoc.name = "a"; first_page = 1; last_page = 2; pages = 2; records = 9 };
  Vtoc.add v { Vtoc.name = "b"; first_page = 3; last_page = 3; pages = 1; records = 1 };
  check Alcotest.int "count" 2 (Vtoc.entry_count v);
  check Alcotest.bool "find" true (Vtoc.find v "a" <> None);
  check Alcotest.bool "remove" true (Vtoc.remove v "a");
  check Alcotest.bool "gone" true (Vtoc.find v "a" = None);
  Alcotest.check_raises "duplicate" (Invalid_argument "Vtoc.add: duplicate file b")
    (fun () ->
      Vtoc.add v { Vtoc.name = "b"; first_page = 0; last_page = 0; pages = 0; records = 0 })

(* --- buffer pool --- *)

let make_pool ?(mode = Bufpool.Two_level) ?(frames = 4) () =
  let pool = Bufpool.create ~mode ~frames ~page_size:128 () in
  let dev = Device.create_virtual ~page_size:128 ~capacity:64 () in
  (pool, dev)

let test_buffer_fix_unfix () =
  let pool, dev = make_pool () in
  let page = Device.allocate dev in
  let f = Bufpool.fix_new pool dev page in
  check Alcotest.int "fixed once" 1 (Bufpool.fix_count f);
  Bytes.set (Bufpool.bytes f) 0 'A';
  Bufpool.mark_dirty f;
  let f2 = Bufpool.fix pool dev page in
  check Alcotest.int "fixed twice" 2 (Bufpool.fix_count f2);
  Bufpool.unfix pool f;
  Bufpool.unfix pool f2;
  check Alcotest.int "unfixed" 0 (Bufpool.fix_count f);
  Alcotest.check_raises "over-unfix"
    (Invalid_argument "Bufpool.unfix: frame is not fixed") (fun () ->
      Bufpool.unfix pool f);
  Bufpool.assert_quiescent ~what:"fix/unfix" pool

let test_buffer_eviction_writeback () =
  let pool, dev = make_pool ~frames:2 () in
  let pages = Array.init 4 (fun _ -> Device.allocate dev) in
  Array.iteri
    (fun i page ->
      let f = Bufpool.fix_new pool dev page in
      Bytes.set (Bufpool.bytes f) 0 (Char.chr (Char.code 'a' + i));
      Bufpool.mark_dirty f;
      Bufpool.unfix pool f)
    pages;
  (* Only 2 frames: earlier pages were evicted and written back; re-fixing
     them must reload the stored contents. *)
  Array.iteri
    (fun i page ->
      let f = Bufpool.fix pool dev page in
      check Alcotest.char
        (Printf.sprintf "page %d content" i)
        (Char.chr (Char.code 'a' + i))
        (Bytes.get (Bufpool.bytes f) 0);
      Bufpool.unfix pool f)
    pages;
  let stats = Bufpool.stats pool in
  check Alcotest.bool "evictions happened" true (stats.Bufpool.evictions >= 2);
  check Alcotest.bool "writebacks happened" true (stats.Bufpool.writebacks >= 2);
  Bufpool.assert_quiescent ~what:"eviction" pool

let test_buffer_exhausted () =
  let pool, dev = make_pool ~frames:2 () in
  let p1 = Device.allocate dev and p2 = Device.allocate dev and p3 = Device.allocate dev in
  let f1 = Bufpool.fix_new pool dev p1 in
  let f2 = Bufpool.fix_new pool dev p2 in
  Alcotest.check_raises "exhausted" Bufpool.Buffer_exhausted (fun () ->
      ignore (Bufpool.fix_new pool dev p3));
  Bufpool.unfix pool f1;
  Bufpool.unfix pool f2;
  Bufpool.assert_quiescent ~what:"exhausted" pool

let test_buffer_lru_order () =
  let pool, dev = make_pool ~frames:2 () in
  let a = Device.allocate dev and b = Device.allocate dev and c = Device.allocate dev in
  List.iter
    (fun p ->
      let f = Bufpool.fix_new pool dev p in
      Bufpool.unfix pool f)
    [ a; b ];
  (* Touch [a] so that [b] is the LRU victim. *)
  let f = Bufpool.fix pool dev a in
  Bufpool.unfix pool f;
  let f = Bufpool.fix_new pool dev c in
  Bufpool.unfix pool f;
  check Alcotest.bool "a stays" true (Bufpool.contains pool dev a);
  check Alcotest.bool "b evicted" false (Bufpool.contains pool dev b);
  check Alcotest.bool "c resident" true (Bufpool.contains pool dev c);
  Bufpool.assert_quiescent ~what:"lru order" pool

let concurrent_hammer mode =
  let pool = Bufpool.create ~mode ~frames:8 ~page_size:128 () in
  let dev = Device.create_virtual ~page_size:128 ~capacity:64 () in
  let pages = Array.init 24 (fun _ -> Device.allocate dev) in
  (* Initialize all pages through the pool. *)
  Array.iter
    (fun p ->
      let f = Bufpool.fix_new pool dev p in
      Bufpool.mark_dirty f;
      Bufpool.unfix pool f)
    pages;
  let errors = Atomic.make 0 in
  let worker seed () =
    let rng = Volcano_util.Rng.create (Int64.of_int seed) in
    for _ = 1 to 2_000 do
      let page = pages.(Volcano_util.Rng.int rng (Array.length pages)) in
      match Bufpool.fix pool dev page with
      | f ->
          if Bufpool.fix_count f < 1 then Atomic.incr errors;
          Bufpool.unfix pool f
      | exception _ -> Atomic.incr errors
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join domains;
  check Alcotest.int "no errors" 0 (Atomic.get errors);
  (* All fix counts must return to zero. *)
  Array.iter
    (fun p ->
      let f = Bufpool.fix pool dev p in
      check Alcotest.int "quiescent" 1 (Bufpool.fix_count f);
      Bufpool.unfix pool f)
    pages;
  Bufpool.assert_quiescent ~what:"concurrent hammer" pool

let test_buffer_concurrent_two_level () = concurrent_hammer Bufpool.Two_level
let test_buffer_concurrent_global () = concurrent_hammer Bufpool.Single_global

(* --- heap files --- *)

let make_env () =
  let pool = Bufpool.create ~frames:16 ~page_size:256 () in
  let dev = Device.create_virtual ~page_size:256 ~capacity:512 () in
  (pool, dev)

let test_heap_insert_scan () =
  let pool, dev = make_env () in
  let file = Heap_file.create ~buffer:pool ~device:dev ~name:"t" in
  let records = List.init 100 (fun i -> Printf.sprintf "record-%03d" i) in
  let rids = List.map (Heap_file.insert file) records in
  check Alcotest.int "count" 100 (Heap_file.record_count file);
  check Alcotest.bool "multi page" true (Heap_file.page_count file > 1);
  (* Scan returns all records in insertion order (page order). *)
  let scanned = ref [] in
  Heap_file.iter file (fun _rid r -> scanned := r :: !scanned);
  check (Alcotest.list Alcotest.string) "scan" records (List.rev !scanned);
  (* Point lookups by RID. *)
  List.iteri
    (fun i rid ->
      check (Alcotest.option Alcotest.string)
        (Printf.sprintf "get %d" i)
        (Some (List.nth records i))
        (Heap_file.get file rid))
    rids;
  Bufpool.assert_quiescent ~what:"heap insert/scan" pool

let test_heap_delete () =
  let pool, dev = make_env () in
  let file = Heap_file.create ~buffer:pool ~device:dev ~name:"t" in
  let rids = List.init 20 (fun i -> Heap_file.insert file (Printf.sprintf "%05d" i)) in
  List.iteri (fun i rid -> if i mod 2 = 0 then ignore (Heap_file.delete file rid)) rids;
  check Alcotest.int "count after delete" 10 (Heap_file.record_count file);
  let seen = ref 0 in
  Heap_file.iter file (fun _ _ -> incr seen);
  check Alcotest.int "scan skips deleted" 10 !seen;
  check (Alcotest.option Alcotest.string) "deleted gone" None
    (Heap_file.get file (List.nth rids 0));
  check Alcotest.bool "delete twice" false
    (Heap_file.delete file (List.nth rids 0));
  Bufpool.assert_quiescent ~what:"heap delete" pool

let test_heap_drop_frees_pages () =
  let pool, dev = make_env () in
  let before = Device.allocated_pages dev in
  let file = Heap_file.create ~buffer:pool ~device:dev ~name:"t" in
  for i = 0 to 199 do
    ignore (Heap_file.insert file (Printf.sprintf "row %d padded out..." i))
  done;
  check Alcotest.bool "allocated" true (Device.allocated_pages dev > before);
  Heap_file.drop file;
  check Alcotest.int "freed" before (Device.allocated_pages dev);
  check Alcotest.bool "vtoc removed" true (Vtoc.find (Device.vtoc dev) "t" = None);
  Bufpool.assert_quiescent ~what:"heap drop" pool

let test_heap_open_existing () =
  let pool, dev = make_env () in
  let file = Heap_file.create ~buffer:pool ~device:dev ~name:"t" in
  for i = 0 to 9 do
    ignore (Heap_file.insert file (string_of_int i))
  done;
  Heap_file.sync_vtoc file;
  let reopened = Heap_file.open_existing ~buffer:pool ~device:dev ~name:"t" in
  check Alcotest.int "count" 10 (Heap_file.record_count reopened);
  let seen = ref 0 in
  Heap_file.iter reopened (fun _ _ -> incr seen);
  check Alcotest.int "scannable" 10 !seen;
  Bufpool.assert_quiescent ~what:"heap reopen" pool

let test_heap_concurrent_inserts () =
  let pool = Bufpool.create ~frames:64 ~page_size:256 () in
  let dev = Device.create_virtual ~page_size:256 ~capacity:2048 () in
  let file = Heap_file.create ~buffer:pool ~device:dev ~name:"t" in
  let per_domain = 500 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              ignore (Heap_file.insert file (Printf.sprintf "%d-%06d" d i))
            done))
  in
  List.iter Domain.join domains;
  check Alcotest.int "all inserted" (4 * per_domain) (Heap_file.record_count file);
  let seen = ref 0 in
  Heap_file.iter file (fun _ _ -> incr seen);
  check Alcotest.int "all scanned" (4 * per_domain) !seen;
  Bufpool.assert_quiescent ~what:"heap concurrent" pool

(* --- daemon --- *)

let test_daemon_flush_and_readahead () =
  let pool = Bufpool.create ~frames:8 ~page_size:128 () in
  let dev = Device.create_virtual ~page_size:128 ~capacity:64 () in
  let pages = Array.init 4 (fun _ -> Device.allocate dev) in
  Array.iter
    (fun p ->
      let f = Bufpool.fix_new pool dev p in
      Bufpool.mark_dirty f;
      Bufpool.unfix pool f)
    pages;
  let daemon = Daemon.start ~buffer:pool ~workers:2 () in
  Array.iter (fun p -> Daemon.submit daemon (Daemon.Flush (dev, p))) pages;
  Daemon.drain daemon;
  check Alcotest.int "flushed" 4 (Daemon.flushes_done daemon);
  (* After purging, read-ahead loads pages back into the pool. *)
  Bufpool.purge_device pool dev;
  Array.iter (fun p -> Daemon.submit daemon (Daemon.Read_ahead (dev, p))) pages;
  Daemon.drain daemon;
  check Alcotest.int "read ahead" 4 (Daemon.reads_done daemon);
  Array.iter
    (fun p -> check Alcotest.bool "resident" true (Bufpool.contains pool dev p))
    pages;
  Daemon.stop daemon;
  Alcotest.check_raises "submit after stop"
    (Invalid_argument "Daemon.submit: daemon stopped") (fun () ->
      Daemon.submit daemon (Daemon.Flush (dev, pages.(0))));
  Bufpool.assert_quiescent ~what:"daemon" pool

let test_rid () =
  let a = Rid.make ~device:1 ~page:2 ~slot:3 in
  let b = Rid.make ~device:1 ~page:2 ~slot:4 in
  check Alcotest.bool "order" true (Rid.compare a b < 0);
  check Alcotest.string "print" "1.2.3" (Rid.to_string a)

let suite =
  [
    Alcotest.test_case "page init" `Quick test_page_init;
    Alcotest.test_case "page insert/read" `Quick test_page_insert_read;
    Alcotest.test_case "page delete and slot reuse" `Quick test_page_delete_reuse;
    Alcotest.test_case "page fill and compact" `Quick test_page_fill_and_compact;
    QCheck_alcotest.to_alcotest prop_page_model;
    Alcotest.test_case "bitmap allocate/free" `Quick test_bitmap;
    Alcotest.test_case "bitmap roundtrip" `Quick test_bitmap_roundtrip;
    Alcotest.test_case "real device io" `Quick test_real_device_io;
    Alcotest.test_case "device persistence" `Quick test_device_persistence;
    Alcotest.test_case "virtual device" `Quick test_virtual_device;
    Alcotest.test_case "vtoc" `Quick test_vtoc_ops;
    Alcotest.test_case "buffer fix/unfix" `Quick test_buffer_fix_unfix;
    Alcotest.test_case "buffer eviction + writeback" `Quick
      test_buffer_eviction_writeback;
    Alcotest.test_case "buffer exhausted" `Quick test_buffer_exhausted;
    Alcotest.test_case "buffer lru order" `Quick test_buffer_lru_order;
    Alcotest.test_case "buffer concurrent (two-level)" `Quick
      test_buffer_concurrent_two_level;
    Alcotest.test_case "buffer concurrent (global)" `Quick
      test_buffer_concurrent_global;
    Alcotest.test_case "heap insert + scan + get" `Quick test_heap_insert_scan;
    Alcotest.test_case "heap delete" `Quick test_heap_delete;
    Alcotest.test_case "heap drop frees pages" `Quick test_heap_drop_frees_pages;
    Alcotest.test_case "heap open existing" `Quick test_heap_open_existing;
    Alcotest.test_case "heap concurrent inserts" `Quick
      test_heap_concurrent_inserts;
    Alcotest.test_case "daemon flush + readahead" `Quick
      test_daemon_flush_and_readahead;
    Alcotest.test_case "rid" `Quick test_rid;
  ]
