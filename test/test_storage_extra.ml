(* Additional storage tests: in-place updates, page chains, prefetched
   scans through the read-ahead daemon, buffer statistics, and encode/
   decode properties. *)

module Page = Volcano_storage.Page
module Bitmap = Volcano_storage.Bitmap
module Device = Volcano_storage.Device
module Vtoc = Volcano_storage.Vtoc
module Bufpool = Volcano_storage.Bufpool
module Heap_file = Volcano_storage.Heap_file
module Daemon = Volcano_storage.Daemon
module Scan = Volcano_ops.Scan
module Iterator = Volcano.Iterator
module Tuple = Volcano_tuple.Tuple

let check = Alcotest.check

let make_store ?(frames = 16) ?(page_size = 256) ?(capacity = 512) () =
  let buffer = Bufpool.create ~frames ~page_size () in
  let device = Device.create_virtual ~page_size ~capacity () in
  (buffer, device)

(* --- heap update --- *)

let test_update_in_place () =
  let buffer, device = make_store () in
  let file = Heap_file.create ~buffer ~device ~name:"t" in
  let rid = Heap_file.insert file "original value" in
  check Alcotest.bool "same size fits" true (Heap_file.update file rid "replaced value!");
  check (Alcotest.option Alcotest.string) "updated" (Some "replaced value!")
    (Heap_file.get file rid);
  (* Smaller also fits and keeps the RID. *)
  check Alcotest.bool "smaller fits" true (Heap_file.update file rid "tiny");
  check (Alcotest.option Alcotest.string) "shrunk" (Some "tiny")
    (Heap_file.get file rid);
  check Alcotest.int "count unchanged" 1 (Heap_file.record_count file);
  Bufpool.assert_quiescent ~what:"update in place" buffer

let test_update_grows_within_page () =
  let buffer, device = make_store () in
  let file = Heap_file.create ~buffer ~device ~name:"t" in
  let rid = Heap_file.insert file "ab" in
  check Alcotest.bool "grow fits via free space" true
    (Heap_file.update file rid (String.make 60 'x'));
  check (Alcotest.option Alcotest.string) "grown"
    (Some (String.make 60 'x'))
    (Heap_file.get file rid);
  Bufpool.assert_quiescent ~what:"update grows" buffer

let test_update_too_big_fails_cleanly () =
  let buffer, device = make_store ~page_size:128 () in
  let file = Heap_file.create ~buffer ~device ~name:"t" in
  let rid = Heap_file.insert file "x" in
  (* Way beyond page capacity. *)
  check Alcotest.bool "does not fit" false
    (Heap_file.update file rid (String.make 120 'y'));
  check (Alcotest.option Alcotest.string) "original survives" (Some "x")
    (Heap_file.get file rid);
  Bufpool.assert_quiescent ~what:"update too big" buffer

let test_update_dead_rid () =
  let buffer, device = make_store () in
  let file = Heap_file.create ~buffer ~device ~name:"t" in
  let rid = Heap_file.insert file "gone" in
  let _ = Heap_file.delete file rid in
  check Alcotest.bool "dead rid" false (Heap_file.update file rid "new");
  Bufpool.assert_quiescent ~what:"update dead rid" buffer

(* --- page chain + prefetched scan --- *)

let test_page_chain () =
  let buffer, device = make_store () in
  let file = Heap_file.create ~buffer ~device ~name:"t" in
  for i = 0 to 99 do
    ignore (Heap_file.insert file (Printf.sprintf "record number %06d" i))
  done;
  let chain = Heap_file.page_chain file in
  check Alcotest.int "chain length" (Heap_file.page_count file)
    (List.length chain);
  (* Chain pages are distinct. *)
  check Alcotest.int "distinct" (List.length chain)
    (List.length (List.sort_uniq compare chain));
  Bufpool.assert_quiescent ~what:"page chain" buffer

let test_prefetched_scan () =
  let buffer, device = make_store ~frames:64 () in
  let file = Heap_file.create ~buffer ~device ~name:"t" in
  let tuples = List.init 200 (fun i -> Tuple.of_ints [ i ]) in
  let _ = Scan.materialize (Iterator.of_list tuples) ~into:file in
  (* Push everything out of the pool, then scan with read-ahead. *)
  Bufpool.flush_all buffer;
  Bufpool.purge_device buffer device;
  let daemon = Daemon.start ~buffer ~workers:1 () in
  let it = Scan.heap_prefetched ~daemon file in
  Iterator.open_ it;
  Daemon.drain daemon;
  (* Every page is now resident: the scan runs at buffer speed. *)
  List.iter
    (fun page ->
      check Alcotest.bool
        (Printf.sprintf "page %d staged" page)
        true
        (Bufpool.contains buffer device page))
    (Heap_file.page_chain file);
  let count = ref 0 in
  let rec drain () =
    match Iterator.next it with
    | Some _ ->
        incr count;
        drain ()
    | None -> ()
  in
  drain ();
  Iterator.close it;
  Daemon.stop daemon;
  check Alcotest.int "all rows" 200 !count;
  Bufpool.assert_quiescent ~what:"prefetched scan" buffer

(* --- buffer statistics sanity --- *)

let test_buffer_hit_ratio () =
  let buffer, device = make_store ~frames:8 () in
  let page = Device.allocate device in
  let f = Bufpool.fix_new buffer device page in
  Bufpool.unfix buffer f;
  for _ = 1 to 100 do
    let f = Bufpool.fix buffer device page in
    Bufpool.unfix buffer f
  done;
  let stats = Bufpool.stats buffer in
  check Alcotest.bool "hits >= 100" true (stats.Bufpool.hits >= 100);
  check Alcotest.int "no evictions" 0 stats.Bufpool.evictions;
  Bufpool.assert_quiescent ~what:"hit ratio" buffer

let test_flush_all_persists () =
  let buffer, device = make_store () in
  let page = Device.allocate device in
  let f = Bufpool.fix_new buffer device page in
  Bytes.set (Bufpool.bytes f) 0 'Q';
  Bufpool.mark_dirty f;
  Bufpool.unfix buffer f;
  check Alcotest.int "nothing written yet" 0 (Device.writes device);
  Bufpool.flush_all buffer;
  check Alcotest.int "written once" 1 (Device.writes device);
  (* Purge and reload from the device. *)
  Bufpool.purge_device buffer device;
  let f = Bufpool.fix buffer device page in
  check Alcotest.char "content persisted" 'Q' (Bytes.get (Bufpool.bytes f) 0);
  Bufpool.unfix buffer f;
  Bufpool.assert_quiescent ~what:"flush all" buffer

(* --- vtoc encode/decode property --- *)

let prop_vtoc_roundtrip =
  QCheck.Test.make ~name:"vtoc encode/decode roundtrip" ~count:100
    QCheck.(
      list
        (pair
           (make ~print:Fun.id Gen.(string_size ~gen:printable (int_range 1 12)))
           (quad small_nat small_nat small_nat small_nat)))
    (fun entries ->
      (* Dedup names. *)
      let seen = Hashtbl.create 8 in
      let entries =
        List.filter
          (fun (name, _) ->
            if Hashtbl.mem seen name then false
            else begin
              Hashtbl.add seen name ();
              true
            end)
          entries
      in
      let v = Vtoc.create () in
      List.iter
        (fun (name, (a, b, c, d)) ->
          Vtoc.add v
            { Vtoc.name; first_page = a; last_page = b; pages = c; records = d })
        entries;
      let encoded = Vtoc.encode v in
      let v', consumed = Vtoc.decode encoded ~pos:0 in
      let _ = consumed in
      List.for_all
        (fun (name, (a, b, c, d)) ->
          match Vtoc.find v' name with
          | Some e ->
              e.first_page = a && e.last_page = b && e.pages = c && e.records = d
          | None -> false)
        entries
      && Vtoc.entry_count v' = List.length entries)

(* --- page header fields --- *)

let test_page_headers () =
  let page = Bytes.create 256 in
  Page.init page ~kind:3;
  Page.set_aux page 777;
  check Alcotest.int "aux" 777 (Page.aux page);
  Page.set_kind page 9;
  check Alcotest.int "kind" 9 (Page.kind page);
  check Alcotest.int "free space" (256 - Page.header_size) (Page.free_space page)

let suite =
  [
    Alcotest.test_case "update in place" `Quick test_update_in_place;
    Alcotest.test_case "update grows within page" `Quick
      test_update_grows_within_page;
    Alcotest.test_case "oversized update fails cleanly" `Quick
      test_update_too_big_fails_cleanly;
    Alcotest.test_case "update dead rid" `Quick test_update_dead_rid;
    Alcotest.test_case "page chain" `Quick test_page_chain;
    Alcotest.test_case "prefetched scan via daemon" `Quick test_prefetched_scan;
    Alcotest.test_case "buffer hit ratio" `Quick test_buffer_hit_ratio;
    Alcotest.test_case "flush_all persists dirty pages" `Quick
      test_flush_all_persists;
    QCheck_alcotest.to_alcotest prop_vtoc_roundtrip;
    Alcotest.test_case "page header fields" `Quick test_page_headers;
  ]
