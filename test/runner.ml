(* The tests' compile-and-drain path.  Product code goes through
   {!Volcano_plan.Session}; tests that build their own [Env] (registered
   tables, fault injectors, tuned knobs) drain plans directly so the
   environment under test is exactly the one they configured. *)

let run ?check env plan =
  Volcano.Iterator.to_list (Volcano_plan.Compile.compile ?check env plan)

let count ?check env plan =
  Volcano.Iterator.consume (Volcano_plan.Compile.compile ?check env plan)
