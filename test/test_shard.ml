(* Sharded storage across worker sites, locked in by distributed
   differential tests.

   A stored table is partitioned into per-site heap files with a catalog
   entry recording the placement ([Volcano_storage.Shard] +
   [Volcano_plan.Partition]); a remote exchange over [Scan_table_slice]
   then scans shard [k] at the site holding partition [k].  The suite
   pins four claims:

   - partition function and catalog behave (every row routes to exactly
     one partition; the union of per-partition scans is the full table;
     the catalog byte image is stable — golden fixture);
   - a remote plan over a partitioned stored table equals the same plan
     run locally, across hash and range specs, identity and non-identity
     placements, the Unix and TCP lanes, and 2-3 real worker processes;
   - exchange-boundary repartitioning routes rows to the consumer the
     partition function names (a Distinct-based differential that fails
     under merge-order delivery);
   - the failure matrix holds at this scale: a site killed mid-shard-scan
     is exactly one [Query_failed], a corrupted TCP frame likewise, and
     walking away from a repartitioning edge tears down cleanly.

   Worker processes are this test binary re-executed in shard-worker
   mode ([worker_main], dispatched from [main.ml]); each rebuilds a
   site-local environment holding only the partitions its site owns. *)

module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Remote = Volcano_plan.Remote
module Partition = Volcano_plan.Partition
module Shard = Volcano_storage.Shard
module Heap_file = Volcano_storage.Heap_file
module Exchange = Volcano.Exchange
module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Serial = Volcano_tuple.Serial
module Expr = Volcano_tuple.Expr
module Agg = Volcano_ops.Aggregate
module W = Volcano_wisconsin.Wisconsin
module Launcher = Volcano_net.Launcher
module Repart = Volcano_net.Repart
module Obs = Volcano_obs.Obs
module Fault = Volcano_fault
module Injector = Volcano_fault.Injector

let table = "wisc"

(* --- the shared vocabulary: spec, placement, shape ------------------- *)

(* Both sides of a socket derive the identical partitioned table from the
   task string alone; nothing but these few tokens crosses the wire. *)

let spec_of ~rows ~parts = function
  | "hash0" -> Partition.hash_spec [ W.column "unique1" ]
  | "hash4" -> Partition.hash_spec [ W.column "ten" ]
  | "range1" ->
      Partition.range_spec ~col:(W.column "unique2")
        ~bounds:
          (Array.init (parts - 1) (fun k ->
               Value.Int (((k + 1) * rows / parts) - 1)))
  | s -> failwith ("unknown partition spec " ^ s)

let sites_of ~parts = function
  | "id" -> Array.init parts Fun.id
  | "rot" -> Array.init parts (fun p -> (p + 1) mod parts)
  | "pack" ->
      (* two partitions per site: a site-local env serves several
         shards, and some worker sites hold nothing of other tables *)
      Array.init parts (fun p -> p / 2)
  | s -> failwith ("unknown placement " ^ s)

let shape_plan shape =
  let slice = Plan.Scan_table_slice table in
  match shape with
  | "scan" | "slow" -> slice
  | "filter" ->
      Plan.Filter
        {
          pred =
            Expr.Cmp (Expr.Lt, Expr.Col (W.column "ten"), Expr.Const (Value.Int 4));
          mode = `Compiled;
          input = slice;
        }
  | "agg" ->
      Plan.Aggregate
        {
          algo = Plan.Hash_based;
          group_by = [ W.column "two" ];
          aggs = [ Agg.Count; Agg.Sum (Expr.Col (W.column "ten")) ];
          input = slice;
        }
  | "distinct" ->
      Plan.Distinct
        {
          algo = Plan.Hash_based;
          on = [ 0 ];
          input = Plan.Project_cols { cols = [ W.column "twenty" ]; input = slice };
        }
  | s -> failwith ("unknown plan shape " ^ s)

let task_of ~rows ~parts ~spec ~placement ~shape =
  Printf.sprintf "stored:%d:%d:%s:%s:%s" rows parts spec placement shape

(* --- worker side ------------------------------------------------------ *)

(* Shard-worker main: [main.ml] dispatches here.  The worker plays site
   [sites.(shard)] — it materializes every partition that site owns (so
   non-identity placements work by construction) and compiles the sliced
   shape against that site-local environment. *)
let worker_main ~socket =
  Volcano_net.Worker.run ~socket ~resolve:(fun ~task ~shard ~shards ->
      match String.split_on_char ':' task with
      | [ "stored"; rows; parts; spec_name; placement; shape ] ->
          let rows = int_of_string rows and parts = int_of_string parts in
          if parts <> shards then
            failwith
              (Printf.sprintf "task has %d parts but the edge runs %d shards"
                 parts shards);
          if shape = "fail" then failwith "planted shard failure";
          let env = Env.create ~frames:128 ~page_size:512 () in
          let spec = spec_of ~rows ~parts spec_name in
          let sites = sites_of ~parts placement in
          ignore
            (Partition.load_site env ~table ~schema:W.schema ~spec ~parts
               ~sites ~site:sites.(shard) ~count:rows
               ~gen:(W.generator ~n:rows ()) ());
          let next = Remote.shard_pull env ~shard ~shards (shape_plan shape) in
          if shape = "slow" then (fun () ->
            Unix.sleepf 0.002;
            next ())
          else next
      | _ -> failwith ("unknown shard task " ^ task))

let worker_command ~socket = [| Sys.executable_name; "shard-worker"; socket |]

(* --- parent side ------------------------------------------------------ *)

(* The parent holds the full table AND its partition files (split keeps
   the source registered), so one env serves both the local baseline and
   the catalog the analyzer consults. *)
let make_env ~rows ~parts ~spec ~placement =
  let env = Env.create ~frames:256 ~page_size:512 () in
  let file = Env.create_table env ~name:table ~schema:W.schema in
  let gen = W.generator ~n:rows () in
  for i = 0 to rows - 1 do
    ignore (Heap_file.insert file (Bytes.to_string (Serial.encode (gen i))))
  done;
  let counts =
    Partition.split env ~table
      ~spec:(spec_of ~rows ~parts spec)
      ~parts
      ~sites:(sites_of ~parts placement)
      ()
  in
  (env, counts)

let register ?lane ?obs ?pids ?address env =
  Env.set_remote_launcher env (fun ~faults ~repartition ~workers ~task
                                   ~packet_size ->
      let launched =
        Launcher.launch ~faults ?lane ?obs
          ?repartition:
            (Option.map
               (fun (spec, dests) -> Repart.of_partition_spec spec ~dests)
               repartition)
          ~command:worker_command ~workers ~task ~packet_size ()
      in
      Option.iter (fun r -> r := Array.to_list launched.Launcher.pids) pids;
      Option.iter (fun r -> r := launched.Launcher.address) address;
      launched.Launcher.sources)

let remote ?packet_size:(ps = 7) ?partition ~workers ~task input =
  Plan.Remote
    {
      cfg =
        Exchange.config ~degree:workers ~packet_size:ps ~flow_slack:(Some 4)
          ?partition ();
      workers;
      task;
      input;
    }

let sorted = Test_net.sorted

(* --- partition function and catalog properties ------------------------ *)

let test_partition_properties () =
  List.iter
    (fun (spec_name, parts, placement) ->
      let rows = 311 in
      let env, counts = make_env ~rows ~parts ~spec:spec_name ~placement in
      Alcotest.(check int)
        (Printf.sprintf "%s/%d: every row lands in exactly one partition"
           spec_name parts)
        rows
        (Array.fold_left ( + ) 0 counts);
      (* the union of per-partition scans IS the table *)
      let whole = sorted (Runner.run env (Plan.Scan_table table)) in
      let union =
        List.concat_map
          (fun part ->
            Runner.run env
              (Plan.Scan_table (Shard.partition_name ~table ~part)))
          (List.init parts Fun.id)
      in
      if sorted union <> whole then
        Alcotest.failf "%s/%d/%s: partition union differs from the table"
          spec_name parts placement;
      (* the catalog answers placement questions consistently *)
      let entry = Option.get (Shard.find (Env.catalog env) table) in
      let sites = sites_of ~parts placement in
      for part = 0 to parts - 1 do
        Alcotest.(check (option int))
          "site_of agrees with the placement"
          (Some sites.(part))
          (Shard.site_of (Env.catalog env) ~table ~part)
      done;
      let covered =
        List.concat_map
          (fun site -> Shard.partitions_of_site entry ~site)
          (List.sort_uniq compare (Array.to_list sites))
      in
      Alcotest.(check (list int))
        "sites jointly own every partition exactly once"
        (List.init parts Fun.id)
        (List.sort compare covered);
      (* a second registration of the same table is rejected *)
      (match Shard.add (Env.catalog env) entry with
      | () -> Alcotest.fail "duplicate catalog entry accepted"
      | exception Invalid_argument _ -> ());
      (* routing is total over the table's rows *)
      let route = Partition.route (spec_of ~rows ~parts spec_name) ~parts in
      let gen = W.generator ~n:rows () in
      for i = 0 to rows - 1 do
        let p = route (gen i) in
        if p < 0 || p >= parts then
          Alcotest.failf "row %d routed out of range (%d)" i p
      done)
    [
      ("hash0", 2, "id");
      ("hash0", 3, "rot");
      ("hash4", 3, "id");
      ("range1", 2, "id");
      ("range1", 3, "pack");
    ]

let test_catalog_validation () =
  let catalog = Shard.create () in
  let reject what entry =
    match Shard.add catalog entry with
    | () -> Alcotest.failf "%s accepted" what
    | exception Invalid_argument _ -> ()
  in
  reject "zero parts"
    { Shard.table = "t"; parts = 0; spec = Shard.Hash [ 0 ]; sites = [||] };
  reject "sites shorter than parts"
    { Shard.table = "t"; parts = 2; spec = Shard.Hash [ 0 ]; sites = [| 0 |] };
  reject "negative site"
    {
      Shard.table = "t";
      parts = 2;
      spec = Shard.Hash [ 0 ];
      sites = [| 0; -1 |];
    };
  reject "negative hash column"
    { Shard.table = "t"; parts = 1; spec = Shard.Hash [ -3 ]; sites = [| 0 |] };
  reject "bounds not parts - 1"
    {
      Shard.table = "t";
      parts = 3;
      spec = Shard.Range (0, [| "x" |]);
      sites = [| 0; 1; 2 |];
    };
  Alcotest.(check int) "nothing registered" 0 (Shard.entry_count catalog)

(* The golden fixture: the exact byte image of a known catalog, asserted
   in both directions, alongside the Wire golden fixture — placement
   crossing a process (or version) boundary must not silently re-encode. *)
let golden_catalog () =
  let catalog = Shard.create () in
  Shard.add catalog
    {
      Shard.table = "orders";
      parts = 3;
      spec = Shard.Hash [ 0; 2 ];
      sites = [| 0; 1; 2 |];
    };
  Shard.add catalog
    {
      Shard.table = "part";
      parts = 2;
      spec =
        Shard.Range (1, [| Partition.encode_bound (Value.Int 500) |]);
      sites = [| 1; 0 |];
    };
  catalog

(* u16 count, then per entry (sorted by table name):
   u16 len | name | u16 parts | u8 tag | spec | parts x u16 site
   hash spec: u16 n, n x u16 col; range: u16 col, u16 n, n x (u16 len | bytes) *)
let golden_catalog_hex =
  "0200
   0600 6f7264657273 0300 01 0200 0000 0200 0000 0100 0200
   0400 70617274 0200 02 0100 0100 0b00 010001f401000000000000 0100 0000"

let hex_to_bytes hex =
  let compact =
    String.concat ""
      (String.split_on_char '\n' hex
      |> List.concat_map (String.split_on_char ' '))
  in
  let n = String.length compact / 2 in
  Bytes.init n (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub compact (i * 2) 2)))

let bytes_to_hex b =
  String.concat ""
    (List.init (Bytes.length b) (fun i ->
         Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let test_catalog_golden () =
  let image = Shard.encode (golden_catalog ()) in
  Alcotest.(check string)
    "catalog byte image is pinned"
    (bytes_to_hex (hex_to_bytes golden_catalog_hex))
    (bytes_to_hex image);
  let decoded, consumed = Shard.decode image ~pos:0 in
  Alcotest.(check int) "decode consumes the image" (Bytes.length image) consumed;
  Alcotest.(check int) "both entries decoded" 2 (Shard.entry_count decoded);
  Alcotest.(check (list string))
    "tables survive" [ "orders"; "part" ] (Shard.tables decoded);
  Alcotest.(check string)
    "re-encode is the identity"
    (bytes_to_hex image)
    (bytes_to_hex (Shard.encode decoded));
  (* the range bound round-trips through the opaque encoding *)
  match Shard.find decoded "part" with
  | Some { Shard.spec = Shard.Range (1, [| bound |]); sites = [| 1; 0 |]; _ } ->
      Alcotest.(check bool)
        "bound decodes" true
        (Partition.decode_bound bound = Value.Int 500)
  | _ -> Alcotest.fail "part entry mangled"

let test_catalog_corruption () =
  let image = Shard.encode (golden_catalog ()) in
  (* every strict prefix must be rejected, never mis-decoded *)
  let rejected len =
    match Shard.decode (Bytes.sub image 0 len) ~pos:0 with
    | _ -> false
    | exception Shard.Corrupt_catalog _ -> true
  in
  Alcotest.(check bool)
    "all strict prefixes rejected" true
    (List.for_all rejected (List.init (Bytes.length image) Fun.id));
  let bad_tag = Bytes.copy image in
  (* the first entry's spec tag byte: u16 count, u16 len, 6 name bytes *)
  Bytes.set_uint8 bad_tag 12 9;
  match Shard.decode bad_tag ~pos:0 with
  | _ -> Alcotest.fail "unknown spec tag accepted"
  | exception Shard.Corrupt_catalog _ -> ()

(* --- the distributed differential ------------------------------------- *)

let differential ?lane ~rows ~parts ~spec ~placement ~shape () =
  let env, _ = make_env ~rows ~parts ~spec ~placement in
  register ?lane env;
  let unjoined0 = Exchange.unjoined_domains () in
  let live0 = Exchange.live_domains () in
  let plan = shape_plan shape in
  let local =
    sorted
      (Runner.run env
         (Plan.Exchange
            {
              cfg = Exchange.config ~degree:parts ~packet_size:7 ();
              input = plan;
            }))
  in
  let task = task_of ~rows ~parts ~spec ~placement ~shape in
  (match
     Test_net.run_with_timeout (fun () ->
         Runner.run env (remote ~workers:parts ~task plan))
   with
  | Test_net.Rows rows ->
      if sorted rows <> local then
        Alcotest.failf "remote diverges from local (%s)" task
  | Test_net.Raised exn ->
      Alcotest.failf "remote run failed (%s): %s" task
        (Printexc.to_string exn)
  | Test_net.Timeout -> Alcotest.failf "remote run hung (%s)" task);
  Test_net.check_quiescent ~what:("shard differential " ^ task) env ~unjoined0
    ~live0

let test_remote_differential () =
  List.iter
    (fun (spec, parts, placement, shape) ->
      differential ~rows:500 ~parts ~spec ~placement ~shape ())
    [
      ("hash0", 2, "id", "scan");
      ("hash0", 3, "rot", "scan");
      ("hash4", 3, "id", "filter");
      ("range1", 3, "pack", "scan");
      ("range1", 2, "id", "agg");
      ("hash0", 3, "id", "distinct");
    ]

let test_tcp_lane_differential () =
  (* the same claim across the TCP lane — plus proof it WAS the TCP
     lane, via the address the launcher handed its workers *)
  let env, _ = make_env ~rows:400 ~parts:3 ~spec:"hash0" ~placement:"id" in
  let address = ref "" in
  register ~lane:`Tcp ~address env;
  let unjoined0 = Exchange.unjoined_domains () in
  let live0 = Exchange.live_domains () in
  let plan = shape_plan "scan" in
  let local =
    sorted
      (Runner.run env
         (Plan.Exchange
            {
              cfg = Exchange.config ~degree:3 ~packet_size:7 ();
              input = plan;
            }))
  in
  let task =
    task_of ~rows:400 ~parts:3 ~spec:"hash0" ~placement:"id" ~shape:"scan"
  in
  (match
     Test_net.run_with_timeout (fun () ->
         Runner.run env (remote ~workers:3 ~task plan))
   with
  | Test_net.Rows rows ->
      Alcotest.(check bool) "tcp differential holds" true (sorted rows = local)
  | Test_net.Raised exn ->
      Alcotest.failf "tcp remote failed: %s" (Printexc.to_string exn)
  | Test_net.Timeout -> Alcotest.fail "tcp remote hung");
  Alcotest.(check bool)
    "workers dialed the TCP lane" true
    (String.length !address > 4 && String.sub !address 0 4 = "tcp:");
  Test_net.check_quiescent ~what:"tcp lane differential" env ~unjoined0 ~live0

(* --- exchange-boundary repartitioning --------------------------------- *)

(* The routing lock: distinct-per-consumer over a hash-repartitioned
   remote edge equals a serial global distinct ONLY if every duplicate of
   a key reaches the same consumer — merge-order (round-robin) delivery
   scatters duplicates and fails this check.  3 worker sites feed 2
   consumer ranks, so neither count can silently stand in for the
   other. *)
let test_repartition_differential () =
  let rows = 500 and parts = 3 and consumers = 2 in
  let env, _ = make_env ~rows ~parts ~spec:"hash0" ~placement:"id" in
  let obs = Obs.create () in
  register ~obs env;
  let unjoined0 = Exchange.unjoined_domains () in
  let live0 = Exchange.live_domains () in
  let ten = W.column "ten" in
  let serial =
    sorted
      (Runner.run env
         (Plan.Distinct
            {
              algo = Plan.Hash_based;
              on = [ 0 ];
              input =
                Plan.Project_cols
                  { cols = [ ten ]; input = Plan.Scan_table table };
            }))
  in
  let task =
    task_of ~rows ~parts ~spec:"hash0" ~placement:"id" ~shape:"scan"
  in
  let repartitioned =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree:consumers ~packet_size:7 ();
        input =
          Plan.Distinct
            {
              algo = Plan.Hash_based;
              on = [ 0 ];
              input =
                Plan.Project_cols
                  {
                    cols = [ ten ];
                    input =
                      remote
                        ~partition:(Exchange.Hash_on [ ten ])
                        ~workers:parts ~task
                        (Plan.Scan_table_slice table);
                  };
            };
      }
  in
  (match Test_net.run_with_timeout (fun () -> Runner.run env repartitioned) with
  | Test_net.Rows rows ->
      Alcotest.(check bool)
        "per-consumer distinct over routed rows equals global distinct" true
        (sorted rows = serial)
  | Test_net.Raised exn ->
      Alcotest.failf "repartitioned run failed: %s" (Printexc.to_string exn)
  | Test_net.Timeout -> Alcotest.fail "repartitioned run hung");
  (* the per-site wire counters saw every site ship something *)
  for site = 0 to parts - 1 do
    let c = Obs.counter obs (Printf.sprintf "net.site%d.rows" site) in
    Alcotest.(check bool)
      (Printf.sprintf "site %d shipped rows" site)
      true
      (Obs.Counter.value c > 0)
  done;
  Test_net.check_quiescent ~what:"repartition differential" env ~unjoined0
    ~live0

(* --- the failure matrix at shard scale -------------------------------- *)

let test_killed_site_mid_scan () =
  let rows = 20000 and parts = 2 in
  let env, _ = make_env ~rows ~parts ~spec:"hash0" ~placement:"id" in
  let pids = ref [] in
  register ~pids env;
  let unjoined0 = Exchange.unjoined_domains () in
  let live0 = Exchange.live_domains () in
  let killer =
    Thread.create
      (fun () ->
        let rec await n =
          if !pids = [] && n > 0 then begin
            Unix.sleepf 0.01;
            await (n - 1)
          end
        in
        await 1000;
        Unix.sleepf 0.05;
        match !pids with
        | pid :: _ -> ( try Unix.kill pid Sys.sigkill with _ -> ())
        | [] -> ())
      ()
  in
  let task =
    task_of ~rows ~parts ~spec:"hash0" ~placement:"id" ~shape:"slow"
  in
  (match
     Test_net.run_with_timeout (fun () ->
         Runner.run env
           (remote ~workers:parts ~task (Plan.Scan_table_slice table)))
   with
  | Test_net.Raised (Exchange.Query_failed { site; _ }) ->
      if not (String.length site >= 10 && String.sub site 0 10 = "net-worker")
      then Alcotest.failf "killed site surfaced at %S" site
  | Test_net.Raised exn ->
      Alcotest.failf "killed site surfaced as %s, not Query_failed"
        (Printexc.to_string exn)
  | Test_net.Rows _ -> Alcotest.fail "query succeeded despite a killed site"
  | Test_net.Timeout -> Alcotest.fail "killed site hung the query");
  Thread.join killer;
  Test_net.check_quiescent ~what:"killed site" env ~unjoined0 ~live0

let test_tcp_frame_corruption () =
  let env, _ = make_env ~rows:2000 ~parts:2 ~spec:"hash0" ~placement:"id" in
  register ~lane:`Tcp env;
  let unjoined0 = Exchange.unjoined_domains () in
  let live0 = Exchange.live_domains () in
  Env.set_faults env
    (Injector.make
       {
         Fault.seed = 17L;
         rules =
           [
             {
               Fault.site = Fault.Net_frame;
               trigger = Fault.At_hit 2;
               action = Fault.Fail;
             };
           ];
       });
  let task =
    task_of ~rows:2000 ~parts:2 ~spec:"hash0" ~placement:"id" ~shape:"scan"
  in
  (match
     Test_net.run_with_timeout (fun () ->
         Runner.run env
           (remote ~workers:2 ~task (Plan.Scan_table_slice table)))
   with
  | Test_net.Raised (Exchange.Query_failed { site; _ }) ->
      Alcotest.(check string)
        "truncated TCP frame surfaces at its own site"
        (Fault.site_name Fault.Net_frame)
        site
  | Test_net.Raised exn ->
      Alcotest.failf "frame corruption surfaced as %s" (Printexc.to_string exn)
  | Test_net.Rows _ -> Alcotest.fail "frame corruption never fired"
  | Test_net.Timeout -> Alcotest.fail "frame corruption hung the query");
  Env.clear_faults env;
  Test_net.check_quiescent ~what:"tcp frame corruption" env ~unjoined0 ~live0

let test_repartition_early_close () =
  let rows = 20000 and parts = 2 in
  let env, _ = make_env ~rows ~parts ~spec:"hash0" ~placement:"id" in
  register env;
  let unjoined0 = Exchange.unjoined_domains () in
  let live0 = Exchange.live_domains () in
  let task =
    task_of ~rows ~parts ~spec:"hash0" ~placement:"id" ~shape:"slow"
  in
  (match
     Test_net.run_with_timeout (fun () ->
         Runner.run env
           (Plan.Limit
              {
                count = 5;
                input =
                  Plan.Exchange
                    {
                      cfg = Exchange.config ~degree:2 ~packet_size:7 ();
                      input =
                        remote
                          ~partition:(Exchange.Hash_on [ 0 ])
                          ~workers:parts ~task
                          (Plan.Scan_table_slice table);
                    };
              }))
   with
  | Test_net.Rows rows -> Alcotest.(check int) "limit rows" 5 (List.length rows)
  | Test_net.Raised exn ->
      Alcotest.failf "early close failed: %s" (Printexc.to_string exn)
  | Test_net.Timeout ->
      Alcotest.fail "early close of a repartitioning edge hung");
  Test_net.check_quiescent ~what:"repartition early close" env ~unjoined0
    ~live0

(* --- planlint: placement (VL704) and skew (VL705) --------------------- *)

let vl_codes env plan =
  List.filter_map Volcano_analysis.Diag.vl_code (Compile.analyze env plan)

let test_planlint_placement () =
  let env, _ = make_env ~rows:100 ~parts:3 ~spec:"hash0" ~placement:"id" in
  let task =
    task_of ~rows:100 ~parts:3 ~spec:"hash0" ~placement:"id" ~shape:"scan"
  in
  let slice = Plan.Scan_table_slice table in
  let under_exchange ?(degree = 2) inner =
    Plan.Exchange
      { cfg = Exchange.config ~degree ~packet_size:7 (); input = inner }
  in
  (* catalog says 3 partitions; a 2-worker edge misplaces shards *)
  Alcotest.(check bool)
    "VL704 on parts/workers disagreement" true
    (List.mem "VL704" (vl_codes env (remote ~workers:2 ~task slice)));
  (* matched counts are clean *)
  let clean = vl_codes env (remote ~workers:3 ~task slice) in
  Alcotest.(check bool)
    "matched parts/workers carry no VL704" false
    (List.mem "VL704" clean);
  (* a custom closure cannot cross a repartitioning edge *)
  Alcotest.(check bool)
    "VL704 on custom partition spec" true
    (List.mem "VL704"
       (vl_codes env
          (under_exchange
             (remote
                ~partition:(Exchange.Custom (fun () _ -> 0))
                ~workers:3 ~task slice))));
  (* broadcast is inexpressible on the wire *)
  Alcotest.(check bool)
    "VL704 on broadcast" true
    (List.mem "VL704"
       (vl_codes env
          (under_exchange
             (remote ~partition:Exchange.Broadcast ~workers:3 ~task slice))));
  (* range bounds must split into exactly the consumer count *)
  Alcotest.(check bool)
    "VL704 on range bounds vs consumers" true
    (List.mem "VL704"
       (vl_codes env
          (under_exchange ~degree:2
             (remote
                ~partition:
                  (Exchange.Range_on
                     (0, [| Value.Int 10; Value.Int 20 |]))
                ~workers:3 ~task slice))));
  (* hash on no columns: everything lands on one consumer *)
  Alcotest.(check bool)
    "VL705 on empty hash columns" true
    (List.mem "VL705"
       (vl_codes env
          (under_exchange
             (remote ~partition:(Exchange.Hash_on []) ~workers:3 ~task slice))));
  (* a duplicated hash column adds no spread *)
  Alcotest.(check bool)
    "VL705 on duplicate hash columns" true
    (List.mem "VL705"
       (vl_codes env
          (under_exchange
             (remote
                ~partition:(Exchange.Hash_on [ 0; 0 ])
                ~workers:3 ~task slice))));
  (* a well-formed repartitioning edge is clean of both *)
  let good =
    vl_codes env
      (under_exchange
         (remote ~partition:(Exchange.Hash_on [ 0 ]) ~workers:3 ~task slice))
  in
  Alcotest.(check bool)
    "good repartitioning plan carries no VL704/VL705" false
    (List.mem "VL704" good || List.mem "VL705" good);
  (* with one consumer every spec degenerates to a merge: no diagnostics *)
  let solo =
    vl_codes env
      (remote ~partition:(Exchange.Hash_on [ 0 ]) ~workers:3 ~task slice)
  in
  Alcotest.(check bool)
    "solo consumer carries no placement diagnostics" false
    (List.mem "VL704" solo || List.mem "VL705" solo)

let suite =
  [
    Alcotest.test_case "partition function and catalog properties" `Quick
      test_partition_properties;
    Alcotest.test_case "catalog validation rejects malformed entries" `Quick
      test_catalog_validation;
    Alcotest.test_case "golden catalog fixture" `Quick test_catalog_golden;
    Alcotest.test_case "catalog corruption is detected" `Quick
      test_catalog_corruption;
    Alcotest.test_case "remote shard scan matches local over the matrix"
      `Slow test_remote_differential;
    Alcotest.test_case "TCP lane differential" `Slow test_tcp_lane_differential;
    Alcotest.test_case "repartitioning routes keys to their consumer" `Slow
      test_repartition_differential;
    Alcotest.test_case "killed site mid-shard-scan fails once, cleanly" `Slow
      test_killed_site_mid_scan;
    Alcotest.test_case "TCP frame corruption fails at its site" `Slow
      test_tcp_frame_corruption;
    Alcotest.test_case "early close cancels a repartitioning edge" `Slow
      test_repartition_early_close;
    Alcotest.test_case "planlint VL704/VL705 placement and skew" `Quick
      test_planlint_placement;
  ]
