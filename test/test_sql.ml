(* The SQL front end: parser round-trip fixpoint, binder error cases,
   optimizer EXPLAIN shape, and the optimizer-vs-hand-plan result
   differential over serial, pooled/batched, and sharded-slice
   executions. *)

module Sql = Volcano_sql.Sql
module Ast = Volcano_sql.Ast
module Binder = Volcano_sql.Binder
module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Partition = Volcano_plan.Partition
module Session = Volcano_plan.Session
module Exchange = Volcano.Exchange
module Expr = Volcano_tuple.Expr
module Value = Volcano_tuple.Value
module Tuple = Volcano_tuple.Tuple
module Support = Volcano_tuple.Support
module Agg = Volcano_ops.Aggregate
module W = Volcano_wisconsin.Wisconsin
module Rng = Volcano_util.Rng

let check = Alcotest.check

(* --- parser: canonical round trip -------------------------------------- *)

(* Canonical strings: parse → print must be the identity. *)
let canonical =
  [
    "SELECT * FROM emp";
    "SELECT a.unique1 FROM emp AS a";
    "SELECT (unique1 + 1) AS next FROM emp WHERE (unique1 < 10)";
    "SELECT * FROM emp WHERE ((two = 0) AND (NOT (ten = 3)))";
    "SELECT * FROM emp WHERE ((unique1 * 2) >= (unique2 - 1))";
    "SELECT * FROM emp WHERE (stringu1 IS NOT NULL)";
    "SELECT ten, COUNT(*), SUM(unique1) FROM emp GROUP BY ten";
    "SELECT COUNT(*), AVG(unique1) FROM emp";
    "SELECT DISTINCT two, four FROM emp ORDER BY two ASC, four DESC";
    "SELECT * FROM emp ORDER BY unique1 ASC LIMIT 7";
    "SELECT a.unique1, b.unique2 FROM emp AS a JOIN emp AS b ON (a.unique1 = \
     b.unique2)";
    "SELECT i FROM generate(100) WHERE ((i % 3) = 0)";
    "SELECT unique1 FROM wisconsin(50, 7)";
    "SELECT unique1 FROM emp WHERE (unique1 < 3) UNION ALL SELECT unique2 \
     FROM emp WHERE (unique2 > 40)";
    "SELECT \"select\" FROM \"weird table\"";
    "SELECT * FROM emp WHERE (stringu1 = 'it''s')";
  ]

let test_round_trip () =
  List.iter
    (fun q -> check Alcotest.string q q (Sql.print (Sql.parse q)))
    canonical

(* Non-canonical spellings normalize to the same canonical form. *)
let test_normalization () =
  let cases =
    [
      ("select * from emp", "SELECT * FROM emp");
      ( "SELECT unique1+1 next FROM emp",
        "SELECT (unique1 + 1) AS next FROM emp" );
      ( "select * from emp where two=0 and ten<>3;",
        "SELECT * FROM emp WHERE ((two = 0) AND (ten <> 3))" );
      ( "SELECT ten FROM emp ORDER BY ten",
        "SELECT ten FROM emp ORDER BY ten ASC" );
      ( "SELECT a.unique1 FROM emp a INNER JOIN emp b ON a.unique1=b.unique2",
        "SELECT a.unique1 FROM emp AS a JOIN emp AS b ON (a.unique1 = \
         b.unique2)" );
    ]
  in
  List.iter
    (fun (src, want) ->
      check Alcotest.string src want (Sql.print (Sql.parse src)))
    cases

(* print → parse → print is a fixpoint even for machine-built ASTs. *)
let test_print_parse_fixpoint () =
  let rng = Rng.create 41L in
  for _ = 1 to 200 do
    let rec num depth =
      if depth = 0 then
        match Rng.int rng 3 with
        | 0 -> Ast.Col (None, "unique1")
        | 1 -> Ast.Int (Rng.int rng 100)
        | _ -> Ast.Col (Some "a", "ten")
      else
        let l = num (depth - 1) and r = num (depth - 1) in
        let op =
          match Rng.int rng 5 with
          | 0 -> Ast.Add
          | 1 -> Ast.Sub
          | 2 -> Ast.Mul
          | 3 -> Ast.Div
          | _ -> Ast.Mod
        in
        if Rng.int rng 4 = 0 then Ast.Neg l else Ast.Bin (op, l, r)
    in
    let e = num (1 + Rng.int rng 3) in
    let q =
      Ast.Select
        {
          distinct = false;
          items = [ Ast.Sel { expr = e; alias = None } ];
          from = Ast.Table { name = "emp"; alias = Some "a" };
          joins = [];
          where = None;
          group_by = [];
          order_by = [];
          limit = None;
        }
    in
    let s = Ast.to_string q in
    check Alcotest.string "fixpoint" s (Sql.print (Sql.parse s))
  done

let expect_error ?(substring = "") f =
  match f () with
  | exception Sql.Error m ->
      if substring <> "" then
        check Alcotest.bool
          (Printf.sprintf "error %S mentions %S" m substring)
          true
          (let re = Str.regexp_string substring in
           try
             ignore (Str.search_forward re m 0);
             true
           with Not_found -> false)
  | _ -> Alcotest.fail "expected Sql.Error"

let test_parse_errors () =
  expect_error ~substring:"parse error" (fun () -> Sql.parse "SELECT");
  expect_error (fun () -> Sql.parse "SELECT * FROM");
  expect_error (fun () -> Sql.parse "SELECT * FROM emp WHERE");
  expect_error (fun () -> Sql.parse "SELECT * FROM rand(5)");
  expect_error (fun () -> Sql.parse "SELECT * FROM emp LIMIT -1");
  expect_error ~substring:"lex error" (fun () ->
      Sql.parse "SELECT * FROM emp WHERE x = 'unterminated");
  expect_error (fun () -> Sql.parse "SELECT * FROM emp UNION SELECT 1")

(* --- the test catalog --------------------------------------------------- *)

let rows = 2000
let parts = 3

(* One environment per execution slice, same stored data in each:
   [env_plain] disables batching, [env_batched] uses the default batch
   size — the optimizer's plan must agree with the hand plan on both. *)
let load_env ~batch_size () =
  let env = Env.create ~frames:256 ~batch_size () in
  W.load ~env ~name:"emp" ~n:rows ();
  (* a hash-sharded and a range-sharded stored table, partition files on
     "sites" 0..parts-1 *)
  W.load ~env ~name:"hemp" ~n:rows ();
  ignore
    (Partition.split env ~table:"hemp"
       ~spec:(Partition.hash_spec [ W.column "ten" ])
       ~parts ());
  W.load ~env ~name:"remp" ~n:rows ();
  ignore
    (Partition.split env ~table:"remp"
       ~spec:
         (Partition.range_spec ~col:(W.column "unique1")
            ~bounds:[| Value.Int 666; Value.Int 1333 |])
       ~parts ());
  env

let env_plain = lazy (load_env ~batch_size:0 ())
let env_batched = lazy (load_env ~batch_size:64 ())

(* --- binder ------------------------------------------------------------- *)

let bind_err ?substring sql =
  expect_error ?substring (fun () ->
      Sql.bind (Lazy.force env_plain) (Sql.parse sql))

let test_binder_errors () =
  bind_err ~substring:"unknown table" "SELECT * FROM nope";
  bind_err ~substring:"unknown column" "SELECT wat FROM emp";
  bind_err ~substring:"ambiguous"
    "SELECT unique1 FROM emp AS a INNER JOIN emp AS b ON (a.unique1 = \
     b.unique1)";
  bind_err ~substring:"COUNT" "SELECT COUNT(unique1) FROM emp";
  bind_err ~substring:"aggregate" "SELECT SUM(COUNT(*)) FROM emp";
  bind_err ~substring:"WHERE" "SELECT * FROM emp WHERE (SUM(unique1) > 3)";
  bind_err ~substring:"GROUP BY" "SELECT unique1, COUNT(*) FROM emp GROUP BY ten";
  bind_err ~substring:"GROUP BY" "SELECT COUNT(*) FROM emp GROUP BY (ten + 1)";
  bind_err ~substring:"union-compatible"
    "SELECT unique1, unique2 FROM emp UNION ALL SELECT unique1 FROM emp";
  bind_err ~substring:"ORDER BY" "SELECT unique1 FROM emp ORDER BY 3 ASC";
  bind_err "SELECT (stringu1 + 1) FROM emp";
  bind_err "SELECT * FROM emp WHERE (stringu1 = 1)"

(* The binder decomposes AVG itself: no [Agg.Avg] survives binding, so
   serial and parallel plans share one (integer) AVG semantics. *)
let test_binder_avg_decomposition () =
  match Sql.bind (Lazy.force env_plain) (Sql.parse "SELECT AVG(unique1), COUNT(*) FROM emp") with
  | Binder.Q_union _ -> Alcotest.fail "expected a select"
  | Binder.Q_select s -> (
      match s.Binder.shape with
      | Binder.Flat _ -> Alcotest.fail "expected grouped shape"
      | Binder.Grouped { aggs; post; _ } ->
          check Alcotest.bool "no Avg slot" false
            (List.exists (function Agg.Avg _ -> true | _ -> false) aggs);
          (* two slots (SUM, COUNT) serve both items *)
          check Alcotest.int "dedup'd slots" 2 (List.length aggs);
          check Alcotest.int "two outputs" 2 (List.length post))

(* --- optimizer ---------------------------------------------------------- *)

let rec plan_nodes p = p :: List.concat_map plan_nodes (Plan.children p)

let keyed_exchanges p =
  List.filter_map
    (function
      | Plan.Exchange { cfg; _ } | Plan.Exchange_merge { cfg; _ } -> (
          match cfg.Exchange.partition with
          | Exchange.Hash_on _ | Exchange.Range_on _ -> Some cfg
          | Exchange.Round_robin | Exchange.Custom _ | Exchange.Broadcast ->
              None)
      | _ -> None)
    (plan_nodes p)

let exchanges p =
  List.filter
    (function
      | Plan.Exchange _ | Plan.Exchange_merge _ -> true | _ -> false)
    (plan_nodes p)

let optimize ?(workers = parts) sql =
  Sql.plan ~workers (Lazy.force env_plain) sql

(* Every chosen plan is diagnostic-free by construction. *)
let assert_clean ?(workers = parts) plan =
  let env = Lazy.force env_plain in
  check Alcotest.int "no diagnostics" 0
    (List.length (Compile.analyze ~workers env plan))

let test_optimizer_serial_when_alone () =
  (* workers = 1: nothing to parallelize with, so no exchanges at all *)
  let c = optimize ~workers:1 "SELECT ten, COUNT(*) FROM emp GROUP BY ten" in
  check Alcotest.int "no exchanges" 0 (List.length (exchanges c.plan));
  assert_clean ~workers:1 c.plan

let test_optimizer_closure_free_generate () =
  let c = optimize ~workers:1 "SELECT i FROM generate(10)" in
  check Alcotest.bool "generate_range leaf" true
    (List.exists
       (function Plan.Generate_range _ -> true | _ -> false)
       (plan_nodes c.plan));
  check Alcotest.bool "no Choose, no closure leaves" true
    (List.for_all
       (function
         | Plan.Choose _ | Plan.Generate _ | Plan.Generate_slice _ -> false
         | _ -> true)
       (plan_nodes c.plan))

let test_optimizer_sharded_scan_alignment () =
  (* grouping a hash-sharded table on its shard key: the optimizer must
     pick degree = parts, scan the partition files, aggregate in one
     phase (groups are co-located) and gather — no repartitioning. *)
  let c = optimize "SELECT ten, COUNT(*) FROM hemp GROUP BY ten" in
  check Alcotest.int "one gather, no repartition" 1
    (List.length (exchanges c.plan));
  check Alcotest.int "no keyed exchange needed" 0
    (List.length (keyed_exchanges c.plan));
  assert_clean c.plan

let test_optimizer_acceptance_shape () =
  (* the ISSUE's acceptance query: join + group-by over a sharded table,
     written as one SQL string.  The chosen plan must be parallel with at
     least one non-round-robin exchange, and pass the analyzer clean. *)
  let sql =
    "SELECT h.ten, COUNT(*), SUM(e.unique1) FROM hemp AS h INNER JOIN emp \
     AS e ON (h.unique1 = e.unique1) GROUP BY h.ten"
  in
  let c = optimize sql in
  check Alcotest.bool "places keyed exchanges" true
    (keyed_exchanges c.plan <> []);
  assert_clean c.plan;
  (* and it computes the same answer as the hand-built serial plan *)
  let env = Lazy.force env_plain in
  let hand =
    Plan.Aggregate
      {
        algo = Plan.Hash_based;
        group_by = [ W.column "ten" ];
        aggs = [ Agg.Count; Agg.Sum (Expr.Col (16 + W.column "unique1")) ];
        input =
          Plan.Match
            {
              algo = Plan.Hash_based;
              kind = Volcano_ops.Match_op.Join;
              left_key = [ W.column "unique1" ];
              right_key = [ W.column "unique1" ];
              left = Plan.Scan_table "hemp";
              right = Plan.Scan_table "emp";
            };
      }
  in
  let sorted l = List.sort Tuple.compare l in
  check Alcotest.int "same rows" (List.length (Runner.run env hand))
    (List.length (Runner.run env c.plan));
  check Alcotest.bool "same result" true
    (sorted (Runner.run env c.plan) = sorted (Runner.run env hand))

let test_optimizer_range_alignment () =
  (* joining a range-sharded table on its shard column: the other side
     must be Range_on-partitioned with the catalog's bounds, not hashed *)
  let sql =
    "SELECT r.unique1 FROM remp AS r INNER JOIN emp AS e ON (r.unique1 = \
     e.unique1)"
  in
  let c = optimize sql in
  let ranged =
    List.filter
      (fun cfg ->
        match cfg.Exchange.partition with
        | Exchange.Range_on _ -> true
        | _ -> false)
      (keyed_exchanges c.plan)
  in
  check Alcotest.bool "range-aligned repartition" true (ranged <> []);
  assert_clean c.plan

let test_explain_mentions_decisions () =
  let env = Lazy.force env_plain in
  let s = Sql.explain ~workers:parts env "SELECT ten, COUNT(*) FROM hemp GROUP BY ten" in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "explain mentions %S" needle) true
        (try
           ignore (Str.search_forward (Str.regexp_string needle) s 0);
           true
         with Not_found -> false))
    [ "-- optimizer --"; "chosen"; "serial"; "degree 3" ]

let test_session_front_door () =
  Volcano_sql.Sql.install ();
  Session.with_session ~frames:256 @@ fun s ->
  W.load ~env:(Session.env s) ~name:"emp" ~n:rows ();
  let rows' = Session.query s "SELECT COUNT(*) FROM emp" in
  check Alcotest.int "one row" 1 (List.length rows');
  check Alcotest.int "count" rows
    (Tuple.int_exn (List.hd rows') 0);
  let text = Session.explain s "SELECT COUNT(*) FROM emp" in
  check Alcotest.bool "explain text" true (String.length text > 0);
  (* `Sql inputs reach exec/profile/analyze too *)
  check Alcotest.int "exec_count via SQL" 1
    (Session.exec_count s (`Sql "SELECT COUNT(*) FROM emp"));
  check Alcotest.int "analyze clean" 0
    (List.length (Session.analyze s (`Sql "SELECT COUNT(*) FROM emp")))

(* --- differential corpus ------------------------------------------------ *)

(* Each shape yields (sql, equivalent hand-built serial plan).  The SQL
   goes through the whole front end (parse → bind → optimize) with a
   seed-dependent worker budget; both plans run on the batching and
   non-batching environments and must agree up to row order. *)

let u1 = W.column "unique1"
let u2 = W.column "unique2"
let ten = W.column "ten"
let two = W.column "two"
let four = W.column "four"

let filt col k input =
  Plan.Filter
    {
      pred = Expr.Cmp (Expr.Lt, Expr.Col col, Expr.Const (Value.Int k));
      mode = `Compiled;
      input;
    }

let shape rng =
  match Rng.int rng 8 with
  | 0 ->
      let k = 1 + Rng.int rng rows in
      ( Printf.sprintf
          "SELECT unique1, unique2 FROM emp WHERE (unique1 < %d)" k,
        Plan.Project_exprs
          {
            exprs = [ Expr.Col u1; Expr.Col u2 ];
            input = filt u1 k (Plan.Scan_table "emp");
          } )
  | 1 ->
      ( "SELECT ten, COUNT(*), SUM(unique1) FROM emp GROUP BY ten",
        Plan.Aggregate
          {
            algo = Plan.Hash_based;
            group_by = [ ten ];
            aggs = [ Agg.Count; Agg.Sum (Expr.Col u1) ];
            input = Plan.Scan_table "emp";
          } )
  | 2 ->
      let k = 1 + Rng.int rng rows in
      (* scalar aggregate incl. AVG's integer decomposition *)
      ( Printf.sprintf
          "SELECT COUNT(*), SUM(unique1), AVG(unique1) FROM emp WHERE \
           (unique1 < %d)"
          k,
        Plan.Project_exprs
          {
            exprs =
              [ Expr.Col 0; Expr.Col 1; Expr.Div (Expr.Col 1, Expr.Col 0) ];
            input =
              Plan.Aggregate
                {
                  algo = Plan.Hash_based;
                  group_by = [];
                  aggs = [ Agg.Count; Agg.Sum (Expr.Col u1) ];
                  input = filt u1 k (Plan.Scan_table "emp");
                };
          } )
  | 3 ->
      let k = 1 + Rng.int rng rows in
      ( Printf.sprintf
          "SELECT a.unique1, b.unique2 FROM emp AS a INNER JOIN emp AS b ON \
           (a.unique1 = b.unique2) WHERE (a.unique1 < %d)"
          k,
        Plan.Project_exprs
          {
            exprs = [ Expr.Col u1; Expr.Col (16 + u2) ];
            input =
              Plan.Match
                {
                  algo = Plan.Hash_based;
                  kind = Volcano_ops.Match_op.Join;
                  left_key = [ u1 ];
                  right_key = [ u2 ];
                  left = filt u1 k (Plan.Scan_table "emp");
                  right = Plan.Scan_table "emp";
                };
          } )
  | 4 ->
      ( "SELECT DISTINCT two, four FROM emp",
        Plan.Distinct
          {
            algo = Plan.Hash_based;
            on = [ 0; 1 ];
            input =
              Plan.Project_exprs
                {
                  exprs = [ Expr.Col two; Expr.Col four ];
                  input = Plan.Scan_table "emp";
                };
          } )
  | 5 ->
      let k = 1 + Rng.int rng rows in
      ( Printf.sprintf
          "SELECT unique2, unique1 FROM emp WHERE (unique1 < %d) ORDER BY \
           unique1 DESC"
          k,
        Plan.Sort
          {
            key = [ (1, Support.Desc) ];
            input =
              Plan.Project_exprs
                {
                  exprs = [ Expr.Col u2; Expr.Col u1 ];
                  input = filt u1 k (Plan.Scan_table "emp");
                };
          } )
  | 6 ->
      let k = Rng.int rng rows and j = Rng.int rng rows in
      ( Printf.sprintf
          "SELECT unique1 FROM emp WHERE (unique1 < %d) UNION ALL SELECT \
           unique1 FROM emp WHERE (unique1 >= %d)"
          k j,
        Plan.Union_all
          {
            left =
              Plan.Project_exprs
                {
                  exprs = [ Expr.Col u1 ];
                  input = filt u1 k (Plan.Scan_table "emp");
                };
            right =
              Plan.Project_exprs
                {
                  exprs = [ Expr.Col u1 ];
                  input =
                    Plan.Filter
                      {
                        pred =
                          Expr.Cmp
                            (Expr.Ge, Expr.Col u1, Expr.Const (Value.Int j));
                        mode = `Compiled;
                        input = Plan.Scan_table "emp";
                      };
                };
          } )
  | _ ->
      (* the sharded slice: partition files + catalog placement drive
         the degree and partitioning choices *)
      let t = if Rng.int rng 2 = 0 then "hemp" else "remp" in
      ( Printf.sprintf "SELECT ten, COUNT(*) FROM %s GROUP BY ten" t,
        Plan.Aggregate
          {
            algo = Plan.Hash_based;
            group_by = [ ten ];
            aggs = [ Agg.Count ];
            input = Plan.Scan_table t;
          } )

let sorted_run env plan = List.sort Tuple.compare (Runner.run env plan)

let prop_optimizer_differential =
  QCheck.Test.make
    ~name:"optimizer matches hand plans across 1000 seeds" ~count:1000
    QCheck.int64 (fun seed ->
      let rng = Rng.create seed in
      let sql, hand = shape rng in
      (* worker budgets: serial, a pool smaller than the shard width,
         and the shard-aligned width itself *)
      let workers = [| 1; 2; parts |].(Rng.int rng 3) in
      let envs = [ Lazy.force env_plain; Lazy.force env_batched ] in
      List.for_all
        (fun env ->
          let choice = Sql.plan ~workers env sql in
          Compile.analyze ~workers env choice.Volcano_sql.Optimizer.plan = []
          && sorted_run env choice.Volcano_sql.Optimizer.plan
             = sorted_run env hand)
        envs)

let suite =
  [
    Alcotest.test_case "parser round trip" `Quick test_round_trip;
    Alcotest.test_case "parser normalization" `Quick test_normalization;
    Alcotest.test_case "print-parse fixpoint" `Quick test_print_parse_fixpoint;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "binder errors" `Quick test_binder_errors;
    Alcotest.test_case "AVG decomposition" `Quick test_binder_avg_decomposition;
    Alcotest.test_case "serial when alone" `Quick
      test_optimizer_serial_when_alone;
    Alcotest.test_case "closure-free generate" `Quick
      test_optimizer_closure_free_generate;
    Alcotest.test_case "sharded scan alignment" `Quick
      test_optimizer_sharded_scan_alignment;
    Alcotest.test_case "acceptance shape" `Quick test_optimizer_acceptance_shape;
    Alcotest.test_case "range alignment" `Quick test_optimizer_range_alignment;
    Alcotest.test_case "explain decisions" `Quick test_explain_mentions_decisions;
    Alcotest.test_case "session front door" `Quick test_session_front_door;
    QCheck_alcotest.to_alcotest ~long:false prop_optimizer_differential;
  ]
