(* The net suite re-executes this binary as its worker processes;
   dispatch before Alcotest ever parses argv. *)
let () =
  if Array.length Sys.argv >= 3 && Sys.argv.(1) = "net-worker" then
    Test_net.worker_main ~socket:Sys.argv.(2)
  else if Array.length Sys.argv >= 3 && Sys.argv.(1) = "shard-worker" then
    Test_shard.worker_main ~socket:Sys.argv.(2)
  else
    Alcotest.run "volcano"
    [
      ("util", Test_util.suite);
      ("spsc", Test_spsc.suite);
      ("tuple", Test_tuple.suite);
      ("storage", Test_storage.suite);
      ("storage-extra", Test_storage_extra.suite);
      ("btree", Test_btree.suite);
      ("iterator", Test_iterator.suite);
      ("exchange", Test_exchange.suite);
      ("exchange-extra", Test_exchange_extra.suite);
      ("fault", Test_fault.suite);
      ("obs", Test_obs.suite);
      ("ops", Test_ops.suite);
      ("ops-extra", Test_ops_extra.suite);
      ("plan", Test_plan.suite);
      ("analysis", Test_analysis.suite);
      ("lint", Test_lint.suite);
      ("plan-extra", Test_plan_extra.suite);
      ("random-plans", Test_random_plans.suite);
      ("batch", Test_batch.suite);
      ("sched", Test_sched.suite);
      ("chaos", Test_chaos.suite);
      ("sim", Test_sim.suite);
      ("wisconsin", Test_wisconsin.suite);
      ("edges", Test_extra_edges.suite);
      ("sql", Test_sql.suite);
      ("net", Test_net.suite);
      ("shard", Test_shard.suite);
    ]
