(* Directed regressions for the failure semantics: poisoned-port wakeup,
   sibling cancellation, early close of deep flow-controlled pipelines,
   fault injection at the storage sites, and interchange member failure.
   The randomized counterpart lives in Chaos. *)

module Fault = Volcano_fault
module Injector = Volcano_fault.Injector
module Iterator = Volcano.Iterator
module Exchange = Volcano.Exchange
module Group = Volcano.Group
module Port = Volcano.Port
module Bufpool = Volcano_storage.Bufpool
module Device = Volcano_storage.Device
module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Tuple = Volcano_tuple.Tuple
module Sched = Volcano_sched.Sched

let check = Alcotest.check

(* Every test asserts the books balance afterwards: a failed query must
   leave no producer task running or unjoined, and no fiber suspended. *)
let with_domain_accounting f =
  let unjoined0 = Exchange.unjoined_domains () in
  let live0 = Exchange.live_domains () in
  f ();
  check Alcotest.int "no unjoined tasks" unjoined0
    (Exchange.unjoined_domains ());
  check Alcotest.int "no live tasks" live0 (Exchange.live_domains ());
  Sched.assert_quiescent ~what:"fault case" (Sched.default ())

(* --- injector ------------------------------------------------------- *)

let test_injector_deterministic () =
  (* Two injectors from one plan fire identically, hit for hit. *)
  let plan = Fault.random_plan ~seed:42L in
  let observe () =
    let inj = Injector.make plan in
    let trace = Buffer.create 64 in
    for i = 0 to 999 do
      List.iter
        (fun site ->
          match Injector.hit inj site with
          | () -> ()
          | exception Fault.Injected { hit; _ } ->
              Buffer.add_string trace (Printf.sprintf "%d:%d;" i hit))
        [ Fault.Device_read; Fault.Port_send; Fault.Producer 0 ]
    done;
    (Buffer.contents trace, Injector.fired inj, Injector.hits inj)
  in
  let a = observe () and b = observe () in
  check
    Alcotest.(triple string int int)
    "identical decision traces" a b

let test_injector_at_hit () =
  let plan =
    {
      Fault.seed = 7L;
      rules =
        [
          {
            Fault.site = Fault.Bufpool_fix;
            trigger = Fault.At_hit 3;
            action = Fault.Fail;
          };
        ];
    }
  in
  let inj = Injector.make plan in
  Injector.hit inj Fault.Bufpool_fix;
  Injector.hit inj Fault.Bufpool_fix;
  Injector.hit inj Fault.Device_read (* different site: not counted *);
  (match Injector.hit inj Fault.Bufpool_fix with
  | () -> Alcotest.fail "expected an injected failure on the third hit"
  | exception Fault.Injected { site = Fault.Bufpool_fix; hit = 3 } -> ()
  | exception exn -> raise exn);
  (* One-shot: the fourth hit passes. *)
  Injector.hit inj Fault.Bufpool_fix;
  check Alcotest.int "fired once" 1 (Injector.fired inj)

(* --- poisoned-port wakeup ------------------------------------------- *)

exception Boom

(* A producer that dies before sending anything must wake a consumer that
   is already blocked in receive — immediately, not after a timeout — and
   surface as Query_failed with the original exception. *)
let test_poisoned_port_wakes_consumer () =
  with_domain_accounting (fun () ->
      let cfg = Exchange.config ~degree:1 ~flow_slack:(Some 1) () in
      let iterator =
        Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun _group ->
            Iterator.make
              ~open_:(fun () -> ())
              ~next:(fun () ->
                (* Let the consumer reach its blocking receive first. *)
                Unix.sleepf 0.05;
                raise Boom)
              ~close:(fun () -> ()))
      in
      Iterator.open_ iterator;
      (match Iterator.next iterator with
      | _ -> Alcotest.fail "expected Query_failed"
      | exception Exchange.Query_failed { origin = Boom; site } ->
          check Alcotest.string "site" "producer" site);
      Iterator.close iterator)

(* A failing producer cancels its siblings: with degree 3 and effectively
   unbounded sibling inputs, the query still fails promptly and every
   domain is joined. *)
let test_sibling_cancellation () =
  with_domain_accounting (fun () ->
      let cfg =
        Exchange.config ~degree:3 ~packet_size:3 ~flow_slack:(Some 2) ()
      in
      let iterator =
        Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun group ->
            let rank = Group.rank group in
            let count = ref 0 in
            Iterator.make
              ~open_:(fun () -> ())
              ~next:(fun () ->
                incr count;
                if rank = 1 && !count > 5 then raise Boom
                else Some (Tuple.of_ints [ rank; !count ]))
              ~close:(fun () -> ()))
      in
      (match Iterator.consume iterator with
      | _ -> Alcotest.fail "expected Query_failed"
      | exception Exchange.Query_failed { origin = Boom; _ } -> ()))

(* The producer's subtree is closed when it dies: its close must run so
   resources (here: a flag; in real plans, buffer fixes) are released. *)
let test_failed_producer_subtree_closed () =
  with_domain_accounting (fun () ->
      let closed = Atomic.make false in
      let cfg = Exchange.config ~degree:1 () in
      let iterator =
        Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun _group ->
            Iterator.make
              ~open_:(fun () -> ())
              ~next:(fun () -> raise Boom)
              ~close:(fun () -> Atomic.set closed true))
      in
      (match Iterator.consume iterator with
      | _ -> Alcotest.fail "expected Query_failed"
      | exception Exchange.Query_failed _ -> ());
      check Alcotest.bool "producer subtree closed" true (Atomic.get closed))

(* A consumer-side failure (injected at the receive site) must cancel the
   producers rather than leave them pumping into a dead port. *)
let test_consumer_failure_cancels_producers () =
  with_domain_accounting (fun () ->
      let faults =
        Injector.make
          {
            Fault.seed = 1L;
            rules =
              [
                {
                  Fault.site = Fault.Port_receive;
                  trigger = Fault.At_hit 2;
                  action = Fault.Fail;
                };
              ];
          }
      in
      let scope = Exchange.Scope.create () in
      let cfg =
        Exchange.config ~degree:2 ~packet_size:2 ~flow_slack:(Some 1) ()
      in
      let iterator =
        Exchange.iterator ~faults ~scope cfg ~group:(Group.solo ())
          ~input:(fun group ->
            let rank = Group.rank group in
            Iterator.generate ~count:100_000 ~f:(fun i ->
                Tuple.of_ints [ rank; i ]))
      in
      (match Iterator.consume iterator with
      | _ -> Alcotest.fail "expected Query_failed"
      | exception
          Exchange.Query_failed
            { origin = Fault.Injected { site = Fault.Port_receive; _ }; site }
        ->
          check Alcotest.string "site" "port-receive" site))

(* Nested exchange: the failure of an inner producer crosses both process
   boundaries and still arrives as a single Query_failed carrying the
   innermost site. *)
let test_nested_failure_single_wrap () =
  with_domain_accounting (fun () ->
      let inner_id = Exchange.fresh_id () in
      let cfg = Exchange.config ~degree:2 ~packet_size:2 () in
      let iterator =
        Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun group ->
            Exchange.iterator ~id:inner_id cfg ~group ~input:(fun igroup ->
                let irank = Group.rank igroup in
                Iterator.make
                  ~open_:(fun () -> ())
                  ~next:(fun () ->
                    if irank = 0 then raise Boom
                    else Some (Tuple.of_ints [ irank ]))
                  ~close:(fun () -> ())))
      in
      (match Iterator.consume iterator with
      | _ -> Alcotest.fail "expected Query_failed"
      | exception Exchange.Query_failed { origin = Boom; site } ->
          (* wrapped exactly once: origin is the bare exception and the
             site is the innermost one, not "producer(producer(...))" *)
          check Alcotest.string "innermost site" "producer" site))

(* --- early close ----------------------------------------------------- *)

(* Early-closing a deep flow-controlled pipeline: producers at every level
   are blocked on tiny flow-control slack when the consumer walks away
   after three records.  The cancellation must chain through every level's
   port (the Scope mechanism) and release the flow semaphores, or the
   close would deadlock in join. *)
let test_early_close_deep_flow_controlled_pipeline () =
  with_domain_accounting (fun () ->
      let env = Env.create ~frames:64 ~page_size:512 () in
      let cfg () =
        Exchange.config ~degree:2 ~packet_size:1 ~flow_slack:(Some 1) ()
      in
      let leaf =
        Plan.Generate_slice
          {
            arity = 1;
            count = 1_000_000;
            gen = (fun i -> Tuple.of_ints [ i ]);
          }
      in
      let plan =
        Plan.Exchange
          {
            cfg = cfg ();
            input =
              Plan.Exchange
                {
                  cfg = cfg ();
                  input = Plan.Exchange { cfg = cfg (); input = leaf };
                };
          }
      in
      let iterator = Compile.compile env plan in
      Iterator.open_ iterator;
      for _ = 1 to 3 do
        match Iterator.next iterator with
        | Some _ -> ()
        | None -> Alcotest.fail "stream ended early"
      done;
      Iterator.close iterator;
      Bufpool.assert_quiescent ~what:"early close" (Env.buffer env))

(* --- storage-site injection ----------------------------------------- *)

let sort_plan () =
  Plan.Sort
    {
      key = [ (0, Volcano_tuple.Support.Asc) ];
      input =
        Plan.Generate_slice
          {
            arity = 3;
            count = 400;
            gen = (fun i -> Tuple.of_ints [ 997 * i mod 400; i; i * i ]);
          };
    }

(* A denied buffer fix while an external sort spills must fail the query
   cleanly: no leaked fixes, workspace reusable afterwards. *)
let test_bufpool_fix_denial_during_spill () =
  with_domain_accounting (fun () ->
      let env = Env.create ~frames:64 ~page_size:512 () in
      Env.set_sort_run_capacity env 32;
      Env.set_faults env
        (Injector.make
           {
             Fault.seed = 11L;
             rules =
               [
                 {
                   Fault.site = Fault.Bufpool_fix;
                   trigger = Fault.At_hit 5;
                   action = Fault.Fail;
                 };
               ];
           });
      (match Runner.run env (sort_plan ()) with
      | _ -> Alcotest.fail "expected an injected failure"
      | exception Fault.Injected { site = Fault.Bufpool_fix; _ } -> ()
      | exception Exchange.Query_failed _ -> ());
      Env.clear_faults env;
      Bufpool.assert_quiescent ~what:"fix denial" (Env.buffer env);
      (* The environment still works after the failure. *)
      let rows = Runner.run env (sort_plan ()) in
      check Alcotest.int "reusable after failure" 400 (List.length rows))

(* A device write error while spilling, inside an exchange producer, must
   arrive as Query_failed at the device-write site. *)
let test_device_fault_during_parallel_spill () =
  with_domain_accounting (fun () ->
      let env = Env.create ~frames:64 ~page_size:512 () in
      Env.set_sort_run_capacity env 16;
      Env.set_faults env
        (Injector.make
           {
             Fault.seed = 13L;
             rules =
               [
                 {
                   Fault.site = Fault.Device_write;
                   trigger = Fault.At_hit 2;
                   action = Fault.Fail;
                 };
               ];
           });
      let plan =
        Plan.Exchange
          { cfg = Exchange.config ~degree:1 (); input = sort_plan () }
      in
      (match Runner.run env plan with
      | _ -> Alcotest.fail "expected Query_failed"
      | exception
          Exchange.Query_failed
            { origin = Fault.Injected { site = Fault.Device_write; _ }; site }
        ->
          check Alcotest.string "site" "device-write" site);
      Env.clear_faults env;
      Bufpool.assert_quiescent ~what:"device fault" (Env.buffer env))

(* Producer-site injection through the compiled plan path: the rule names
   a producer rank; the consumer sees that site's name. *)
let test_producer_site_via_plan () =
  with_domain_accounting (fun () ->
      let env = Env.create ~frames:64 ~page_size:512 () in
      Env.set_faults env
        (Injector.make
           {
             Fault.seed = 17L;
             rules =
               [
                 {
                   Fault.site = Fault.Producer 1;
                   trigger = Fault.At_hit 10;
                   action = Fault.Fail;
                 };
               ];
           });
      let plan =
        Plan.Exchange
          {
            cfg = Exchange.config ~degree:2 ~packet_size:3 ();
            input =
              Plan.Generate_slice
                { arity = 1; count = 500; gen = (fun i -> Tuple.of_ints [ i ]) };
          }
      in
      (match Runner.run env plan with
      | _ -> Alcotest.fail "expected Query_failed"
      | exception Exchange.Query_failed { site; _ } ->
          check Alcotest.string "site" "producer-1" site);
      Env.clear_faults env;
      Bufpool.assert_quiescent ~what:"producer site" (Env.buffer env))

(* --- interchange member failure -------------------------------------- *)

(* An interchange member whose input dies must poison the shared port:
   its peers block on each other's packets and would otherwise hang. *)
let test_interchange_member_failure () =
  with_domain_accounting (fun () ->
      let inner_id = Exchange.fresh_id () in
      let outer_cfg = Exchange.config ~degree:2 ~packet_size:2 () in
      let inner_cfg =
        Exchange.config ~degree:2 ~packet_size:2
          ~partition:(Exchange.Hash_on [ 0 ]) ()
      in
      let iterator =
        Exchange.iterator outer_cfg ~group:(Group.solo ())
          ~input:(fun group ->
            let rank = Group.rank group in
            (* Rank 0's input must be finite: while packets keep arriving
               an interchange member only relays them and never pulls its
               own input, so an unbounded healthy peer would postpone the
               sick member's failure forever. *)
            let remaining = ref 100 in
            let own =
              Iterator.make
                ~open_:(fun () -> ())
                ~next:(fun () ->
                  if rank = 1 then raise Boom
                  else if !remaining = 0 then None
                  else begin
                    decr remaining;
                    Some (Tuple.of_ints [ !remaining ])
                  end)
                ~close:(fun () -> ())
            in
            Exchange.interchange ~id:inner_id inner_cfg ~group ~input:own)
      in
      (match Iterator.consume iterator with
      | _ -> Alcotest.fail "expected Query_failed"
      | exception Exchange.Query_failed { origin = Boom; _ } -> ()))

let suite =
  [
    Alcotest.test_case "injector determinism" `Quick
      test_injector_deterministic;
    Alcotest.test_case "injector at-hit trigger" `Quick test_injector_at_hit;
    Alcotest.test_case "poisoned port wakes blocked consumer" `Quick
      test_poisoned_port_wakes_consumer;
    Alcotest.test_case "sibling producers cancelled" `Quick
      test_sibling_cancellation;
    Alcotest.test_case "failed producer subtree closed" `Quick
      test_failed_producer_subtree_closed;
    Alcotest.test_case "consumer failure cancels producers" `Quick
      test_consumer_failure_cancels_producers;
    Alcotest.test_case "nested failure wrapped once" `Quick
      test_nested_failure_single_wrap;
    Alcotest.test_case "early close of deep flow-controlled pipeline" `Quick
      test_early_close_deep_flow_controlled_pipeline;
    Alcotest.test_case "bufpool fix denial during spill" `Quick
      test_bufpool_fix_denial_during_spill;
    Alcotest.test_case "device fault during parallel spill" `Quick
      test_device_fault_during_parallel_spill;
    Alcotest.test_case "producer site via plan" `Quick
      test_producer_site_via_plan;
    Alcotest.test_case "interchange member failure" `Quick
      test_interchange_member_failure;
  ]
