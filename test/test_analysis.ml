(* Planlint: one malformed plan per diagnostic class, plus the wiring
   tests — Compile.compile (default ~check:true) must reject at submit
   time exactly the mistakes that previously failed only at runtime,
   deep inside a forked domain. *)

module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Exchange = Volcano.Exchange
module Diag = Volcano_analysis.Diag
module Tuple = Volcano_tuple.Tuple
module Expr = Volcano_tuple.Expr
module Support = Volcano_tuple.Support

let check = Alcotest.check
let env () = Env.create ~frames:64 ~page_size:512 ()

let gen n = Plan.Generate { arity = 3; count = n; gen = (fun i -> Tuple.of_ints [ i; i mod 5; i mod 7 ]) }

let has ?severity code diags =
  List.exists
    (fun (d : Diag.t) ->
      String.equal d.code code
      && match severity with None -> true | Some s -> d.severity = s)
    diags

let codes diags =
  String.concat ", " (List.map (fun (d : Diag.t) -> d.code) diags)

let assert_flags ?severity name code plan =
  let diags = Compile.analyze (env ()) plan in
  if not (has ?severity code diags) then
    Alcotest.failf "%s: expected %s among [%s]" name code (codes diags)

let assert_clean name plan =
  let errors = Diag.errors (Compile.analyze (env ()) plan) in
  if errors <> [] then
    Alcotest.failf "%s: expected no errors, got [%s]" name (codes errors)

let assert_rejected name code plan =
  match Compile.compile (env ()) plan with
  | _ -> Alcotest.failf "%s: expected Compile.Rejected" name
  | exception Compile.Rejected errors ->
      if not (has ~severity:Diag.Error code errors) then
        Alcotest.failf "%s: expected error %s among [%s]" name code
          (codes errors)

(* --- pass 1: schema / arity ----------------------------------------- *)

let test_schema_columns () =
  assert_rejected "project out of range" "schema-col"
    (Plan.Project_cols { cols = [ 0; 3 ]; input = gen 10 });
  assert_rejected "filter column out of range" "schema-col"
    (Plan.Filter
       {
         pred = Expr.Infix.( = ) (Expr.col 7) (Expr.int 0);
         mode = `Compiled;
         input = gen 10;
       });
  assert_rejected "sort key out of range" "schema-col"
    (Plan.Sort { key = [ (3, Support.Asc) ]; input = gen 10 });
  (* Arity inference must flow through projections: col 2 is valid below
     the projection, invalid above it. *)
  assert_rejected "stale column above projection" "schema-col"
    (Plan.Filter
       {
         pred = Expr.Infix.( = ) (Expr.col 2) (Expr.int 0);
         mode = `Compiled;
         input = Plan.Project_cols { cols = [ 0; 1 ]; input = gen 10 };
       });
  assert_clean "valid columns"
    (Plan.Filter
       {
         pred = Expr.Infix.( = ) (Expr.col 2) (Expr.int 0);
         mode = `Compiled;
         input = gen 10;
       })

let test_schema_match_keys () =
  assert_rejected "mismatched key lists" "schema-match-keys"
    (Plan.Match
       {
         algo = Plan.Hash_based;
         kind = Volcano_ops.Match_op.Join;
         left_key = [ 0 ];
         right_key = [ 0; 1 ];
         left = gen 10;
         right = gen 10;
       });
  assert_rejected "union of different widths" "schema-union-arity"
    (Plan.Match
       {
         algo = Plan.Sort_based;
         kind = Volcano_ops.Match_op.Union;
         left_key = [ 0 ];
         right_key = [ 0 ];
         left = gen 10;
         right = Plan.Project_cols { cols = [ 0 ]; input = gen 10 };
       })

let test_schema_leaves () =
  assert_rejected "unknown table" "schema-unknown-source"
    (Plan.Scan_table "nonexistent");
  assert_rejected "literal width mismatch" "schema-row-width"
    (Plan.Scan_list { arity = 2; tuples = [ Tuple.of_ints [ 1; 2; 3 ] ] });
  assert_rejected "choose-plan width disagreement" "schema-choose-arity"
    (Plan.Choose
       {
         decide = (fun () -> 0);
         alternatives =
           [ gen 10; Plan.Project_cols { cols = [ 0 ]; input = gen 10 } ];
       })

(* The acceptance-criterion case: an out-of-bounds partition column used
   to blow up at fork time, inside a producer domain; now it is rejected
   at submit time. *)
let test_schema_partition_column () =
  let plan =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree:2 ~partition:(Exchange.Hash_on [ 5 ]) ();
        input = gen 40;
      }
  in
  assert_rejected "partition column out of range" "schema-col" plan;
  (* Unchecked, the same plan still fails — but only at runtime. *)
  match Runner.run ~check:false (env ()) plan with
  | _ -> Alcotest.fail "expected a runtime failure with ~check:false"
  | exception Compile.Rejected _ -> Alcotest.fail "~check:false must not analyze"
  | exception _ -> ()

(* --- pass 2: exchange configuration --------------------------------- *)

let test_exchange_config_literals () =
  (* [Exchange.config] is private now, so a malformed scalar field can no
     longer ride into a compiled plan — but the analyzer still diagnoses
     hand-built IR (plans that never went through the constructor),
     through the same [Exchange.validate] the constructor calls. *)
  let module Ir = Volcano_analysis.Ir in
  let leaf =
    Ir.Leaf
      { label = "gen"; arity = 3; rows = Some 10; bad_rows = 0; parts = None }
  in
  let base =
    {
      Ir.degree = 1;
      packet_size = 83;
      flow_slack = Some 4;
      partition = Ir.Round_robin;
    }
  in
  let assert_ir name code node =
    let diags = Volcano_analysis.Analyze.analyze ~frames:64 node in
    if not (has ~severity:Diag.Error code diags) then
      Alcotest.failf "%s: expected error %s among [%s]" name code (codes diags)
  in
  assert_ir "packet size zero" "exchange-packet-size"
    (Ir.Exchange { cfg = { base with packet_size = 0 }; input = leaf });
  assert_ir "packet size over one byte" "exchange-packet-size"
    (Ir.Exchange { cfg = { base with packet_size = 1000 }; input = leaf });
  assert_ir "degree zero" "exchange-degree"
    (Ir.Exchange { cfg = { base with degree = 0 }; input = leaf });
  assert_ir "non-positive flow slack" "exchange-flow-slack"
    (Ir.Exchange { cfg = { base with flow_slack = Some 0 }; input = leaf });
  (* And the shared validator reports all problems at once, in order. *)
  check
    Alcotest.(list string)
    "validate codes"
    [ "exchange-degree"; "exchange-packet-size"; "exchange-flow-slack" ]
    (List.map fst
       (Exchange.validate ~degree:0 ~packet_size:0 ~flow_slack:(Some 0)))

let test_exchange_config_constructor () =
  List.iter
    (fun (name, f) ->
      match f () with
      | (_ : Exchange.config) ->
          Alcotest.failf "%s: expected Invalid_argument" name
      | exception Invalid_argument _ -> ())
    [
      ("degree 0", fun () -> Exchange.config ~degree:0 ());
      ("degree -3", fun () -> Exchange.config ~degree:(-3) ());
      ("packet 0", fun () -> Exchange.config ~packet_size:0 ());
      ("packet 256", fun () -> Exchange.config ~packet_size:256 ());
      ("slack 0", fun () -> Exchange.config ~flow_slack:(Some 0) ());
    ];
  (* Boundary values are accepted. *)
  ignore (Exchange.config ~degree:1 ~packet_size:1 ~flow_slack:(Some 1) ());
  ignore (Exchange.config ~packet_size:255 ~flow_slack:None ())

let test_merge_sortedness () =
  let key = [ (0, Support.Asc) ] in
  assert_rejected "merge over unsorted producers" "merge-unsorted"
    (Plan.Exchange_merge
       { cfg = Exchange.config ~degree:2 (); key; input = gen 40 });
  assert_rejected "merge key not a sort-key prefix" "merge-unsorted"
    (Plan.Exchange_merge
       {
         cfg = Exchange.config ~degree:2 ();
         key = [ (1, Support.Asc) ];
         input = Plan.Sort { key; input = gen 40 };
       });
  (* Sorting on a refinement of the merge key is fine. *)
  assert_clean "merge key is a prefix"
    (Plan.Exchange_merge
       {
         cfg = Exchange.config ~degree:2 ();
         key;
         input =
           Plan.Sort { key = [ (0, Support.Asc); (2, Support.Desc) ]; input = gen 40 };
       })

let test_interchange_placement () =
  assert_rejected "interchange cannot broadcast" "interchange-broadcast"
    (Plan.Interchange
       {
         cfg = Exchange.config ~degree:2 ~partition:Exchange.Broadcast ();
         input = gen 10;
       });
  assert_flags ~severity:Diag.Warning "interchange outside a group"
    "interchange-solo"
    (Plan.Interchange { cfg = Exchange.config ~degree:2 (); input = gen 10 });
  assert_rejected "range bounds vs consumers" "exchange-range-bounds"
    (Plan.Exchange
       {
         cfg =
           Exchange.config ~degree:2
             ~partition:
               (Exchange.Range_on
                  (0, [| Volcano_tuple.Value.Int 3; Volcano_tuple.Value.Int 6 |]))
             ();
         input = gen 10;
       })

(* --- pass 3: dataflow deadlock hazards ------------------------------ *)

let test_deadlock_merge_flow () =
  let key = [ (0, Support.Asc) ] in
  let merge ~flow_slack ~consumers =
    let network =
      Plan.Exchange_merge
        {
          cfg = Exchange.config ~degree:3 ~flow_slack ();
          key;
          input = Plan.Sort { key; input = gen 40 };
        }
    in
    if consumers = 1 then network
    else
      Plan.Exchange
        { cfg = Exchange.config ~degree:consumers (); input = network }
  in
  (* Hazardous: flow control + several producers + several consumers. *)
  assert_flags ~severity:Diag.Warning "merge network under flow control"
    "deadlock-merge-flow"
    (merge ~flow_slack:(Some 2) ~consumers:2);
  (* Either a solo consumer group or no flow control defuses it. *)
  assert_clean "solo consumer merge" (merge ~flow_slack:(Some 2) ~consumers:1);
  let diags =
    Compile.analyze (env ()) (merge ~flow_slack:None ~consumers:2)
  in
  if has "deadlock-merge-flow" diags then
    Alcotest.fail "flow control off: no merge-flow hazard expected"

let test_deadlock_broadcast_flow () =
  let mk algo =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree:2 ();
        input =
          Plan.Match
            {
              algo;
              kind = Volcano_ops.Match_op.Join;
              left_key = [ 0 ];
              right_key = [ 0 ];
              left =
                Plan.Exchange
                  {
                    cfg =
                      Exchange.config ~degree:2 ~partition:Exchange.Broadcast ();
                    input = gen 40;
                  };
              right =
                Plan.Exchange
                  {
                    cfg =
                      Exchange.config ~degree:2
                        ~partition:(Exchange.Hash_on [ 0 ]) ();
                    input = gen 40;
                  };
            };
      }
  in
  assert_flags ~severity:Diag.Warning "broadcast + flow under sort-match"
    "deadlock-broadcast-flow" (mk Plan.Sort_based);
  (* A hash match drains one side completely before the other: no cycle. *)
  let diags = Compile.analyze (env ()) (mk Plan.Hash_based) in
  if has "deadlock-broadcast-flow" diags then
    Alcotest.fail "hash match: no broadcast-flow hazard expected"

(* --- pass 4: resource estimation ------------------------------------ *)

let test_resource_domains () =
  assert_flags ~severity:Diag.Warning "domain over-commit" "resource-domains"
    (Plan.Exchange { cfg = Exchange.config ~degree:600 (); input = gen 10 })

let test_resource_bufpool () =
  (* Two sorts, one inside a degree-4 group: ~40 estimated pages against
     the 64-frame pool of [env ()]?  Use a tighter pool. *)
  let tight = Env.create ~frames:16 ~page_size:512 () in
  let plan =
    Plan.Sort
      {
        key = [ (0, Support.Asc) ];
        input =
          Plan.Exchange
            {
              cfg = Exchange.config ~degree:4 ();
              input = Plan.Sort { key = [ (0, Support.Asc) ]; input = gen 40 };
            };
      }
  in
  let diags = Compile.analyze tight plan in
  if not (has ~severity:Diag.Warning "resource-bufpool" diags) then
    Alcotest.failf "expected resource-bufpool among [%s]" (codes diags)

(* --- passes 5/6: scheduler placement, flow-control memory ------------ *)

let test_sched_dop () =
  (* 12 concurrent producer tasks in total (8 + 4). *)
  let plan =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree:8 ();
        input =
          Plan.Exchange { cfg = Exchange.config ~degree:4 (); input = gen 10 };
      }
  in
  let dop workers = Compile.analyze ~workers (env ()) plan in
  (* Two workers admit 8 tasks at the 4x advisory: 12 is over. *)
  if not (has ~severity:Diag.Warning "sched-dop" (dop 2)) then
    Alcotest.failf "expected sched-dop on 2 workers, got [%s]" (codes (dop 2));
  (* Three workers admit exactly 12: the advisory is a strict bound. *)
  if has "sched-dop" (dop 3) then
    Alcotest.fail "12 tasks on 3 workers is within 4x oversubscription";
  (* The dedicated scheduler forks a domain per task: no pool to
     oversubscribe, the advisory is off. *)
  if has "sched-dop" (dop 0) then
    Alcotest.fail "sched-dop must be disabled for the dedicated scheduler"

let test_mem_flow_slack () =
  let edge = Exchange.config ~degree:2 ~packet_size:100 ~flow_slack:(Some 5) () in
  let plan =
    Plan.Exchange
      { cfg = edge; input = Plan.Exchange { cfg = edge; input = gen 10 } }
  in
  (* Outer edge: 2 producers x 1 consumer x 5 packets x 100 records =
     1000; inner edge feeds the outer group's 2 consumers: 2x2x5x100 =
     2000.  Worst case 3000 records. *)
  let mem flow_budget = Compile.analyze ~flow_budget (env ()) plan in
  if not (has ~severity:Diag.Warning "mem-flow-slack" (mem 2999)) then
    Alcotest.failf "expected mem-flow-slack over a 2999-record budget, got [%s]"
      (codes (mem 2999));
  if has "mem-flow-slack" (mem 3000) then
    Alcotest.fail "3000 buffered records fit a 3000-record budget exactly";
  (* Edges without flow control are bounded by operator demand, not by
     the exchange: not counted. *)
  let unmetered =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree:2 ~packet_size:100 ~flow_slack:None ();
        input = gen 10;
      }
  in
  if has "mem-flow-slack" (Compile.analyze ~flow_budget:1 (env ()) unmetered)
  then Alcotest.fail "flow control off: nothing to bound"

(* --- wiring ----------------------------------------------------------- *)

let test_warnings_do_not_reject () =
  (* A hazardous-but-runnable plan (the merge-flow hazard over tiny data)
     compiles and runs under the default check; only errors reject. *)
  let key = [ (0, Support.Asc) ] in
  let plan =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree:2 ();
        input =
          Plan.Exchange_merge
            {
              cfg = Exchange.config ~degree:3 ~flow_slack:(Some 2) ();
              key;
              input =
                Plan.Sort
                  {
                    key;
                    input =
                      Plan.Generate_slice
                        {
                          arity = 3;
                          count = 40;
                          gen = (fun i -> Tuple.of_ints [ i; i mod 5; i mod 7 ]);
                        };
                  };
            };
      }
  in
  let diags = Compile.analyze (env ()) plan in
  check Alcotest.bool "has the hazard warning" true
    (has ~severity:Diag.Warning "deadlock-merge-flow" diags);
  check Alcotest.bool "but no errors" true (Diag.errors diags = []);
  check Alcotest.int "still runs" 40 (Runner.count (env ()) plan)

let test_report_rendering () =
  let d =
    Diag.error ~code:"schema-col" ~path:"exchange/project" "column 9 of 3"
  in
  check Alcotest.string "to_string"
    "error[VL101 schema-col] at exchange/project: column 9 of 3"
    (Diag.to_string d);
  (* Unregistered (ad-hoc) codes render slug-only. *)
  check Alcotest.string "ad-hoc code"
    "warning[custom] at root: hello"
    (Diag.to_string (Diag.warning ~code:"custom" ~path:"root" "hello"));
  (* Every code the passes emit has a stable number, the numbers are
     unique, and the hundreds digit matches the pass family. *)
  let nums = List.map snd Diag.registry in
  check Alcotest.int "registry numbers unique"
    (List.length nums)
    (List.length (List.sort_uniq String.compare nums));
  check (Alcotest.option Alcotest.string) "sched-dop number" (Some "VL501")
    (Diag.vl_code (Diag.warning ~code:"sched-dop" ~path:"root" "x"));
  let report =
    Format.asprintf "%a" Diag.pp_report
      [ Diag.warning ~code:"w" ~path:"root" "warn"; d ]
  in
  check Alcotest.bool "errors sorted first" true
    (String.length report > 0
    && String.sub report 0 5 = "error");
  check Alcotest.string "empty report" "no diagnostics\n"
    (Format.asprintf "%a" Diag.pp_report [])

let suite =
  [
    Alcotest.test_case "schema: column references" `Quick test_schema_columns;
    Alcotest.test_case "schema: match keys" `Quick test_schema_match_keys;
    Alcotest.test_case "schema: leaves and choose" `Quick test_schema_leaves;
    Alcotest.test_case "schema: partition column rejected at submit" `Quick
      test_schema_partition_column;
    Alcotest.test_case "exchange: config literals" `Quick
      test_exchange_config_literals;
    Alcotest.test_case "exchange: config constructor" `Quick
      test_exchange_config_constructor;
    Alcotest.test_case "exchange: merge sortedness" `Quick test_merge_sortedness;
    Alcotest.test_case "exchange: interchange placement" `Quick
      test_interchange_placement;
    Alcotest.test_case "deadlock: merge + flow control" `Quick
      test_deadlock_merge_flow;
    Alcotest.test_case "deadlock: broadcast + flow control" `Quick
      test_deadlock_broadcast_flow;
    Alcotest.test_case "resource: domains" `Quick test_resource_domains;
    Alcotest.test_case "resource: buffer pool" `Quick test_resource_bufpool;
    Alcotest.test_case "scheduler: degree-of-parallelism advisory" `Quick
      test_sched_dop;
    Alcotest.test_case "memory: flow-slack bound" `Quick test_mem_flow_slack;
    Alcotest.test_case "warnings do not reject" `Quick
      test_warnings_do_not_reject;
    Alcotest.test_case "diagnostic rendering" `Quick test_report_rendering;
  ]
