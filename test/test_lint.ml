(* conclint over its vendored fixture corpus: each fixture file declares
   the diagnostic codes it must (or must not) draw in a header comment

     (* conclint-fixture expect: CL001 *)
     (* conclint-fixture expect: none *)

   and the suite asserts the analyzer reports exactly that set.  The
   corpus pins both directions: the distilled PR-5 producer-streams
   deadlock (and friends) must keep firing, and the sound idioms the
   engine actually uses — the CV wait loop, election-then-setup outside
   the lock, allowlist markers — must stay silent. *)

module Lint = Volcano_lint.Lint
module Cldiag = Volcano_lint.Cldiag

let fixtures_dir = "lint_fixtures"

let expect_re = Str.regexp ".*conclint-fixture expect: *\\([A-Za-z0-9, ]+\\)"

let expected_codes path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header = input_line ic in
      if not (Str.string_match expect_re header 0) then
        Alcotest.failf "%s: missing conclint-fixture expect header" path;
      match String.trim (Str.matched_group 1 header) with
      | "none" -> []
      | spec ->
          String.split_on_char ',' spec
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
          |> List.sort_uniq String.compare)

let fixture_files () =
  match Sys.readdir fixtures_dir with
  | entries ->
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".ml")
      |> List.sort String.compare
      |> List.map (Filename.concat fixtures_dir)
  | exception Sys_error _ ->
      Alcotest.failf "fixture corpus %s not found (cwd %s)" fixtures_dir
        (Sys.getcwd ())

(* Each fixture analyzes alone: they are self-contained programs, and
   isolation keeps one fixture's helper names out of another's call
   graph. *)
let reported path =
  Lint.run_files [ path ]
  |> List.map (fun (d : Cldiag.t) -> d.code)
  |> List.sort_uniq String.compare

let test_corpus () =
  let files = fixture_files () in
  if List.length files < 8 then
    Alcotest.failf "fixture corpus suspiciously small: %d file(s)"
      (List.length files);
  List.iter
    (fun path ->
      let expected = expected_codes path in
      let got = reported path in
      if got <> expected then
        Alcotest.failf "%s: expected [%s], analyzer reported [%s]"
          (Filename.basename path)
          (String.concat ", " expected)
          (String.concat ", " got))
    files

(* The acceptance-criterion case by itself: the PR-5 deadlock shape must
   be a CL001 whose rendered chain walks lock site -> helper ->
   may-suspend root, so the report is actionable without re-reading the
   analyzer. *)
let test_pr5_chain () =
  let path = Filename.concat fixtures_dir "suspend_under_lock.ml" in
  match Lint.run_files [ path ] with
  | [ d ] ->
      Alcotest.(check string) "code" "CL001" d.Cldiag.code;
      let chain = String.concat "\n" d.Cldiag.chain in
      let mentions s =
        match Str.search_forward (Str.regexp_string s) chain 0 with
        | (_ : int) -> true
        | exception Not_found -> false
      in
      if not (mentions "setup_consumer") then
        Alcotest.failf "chain misses the intermediate call:\n%s"
          (Cldiag.to_string d);
      if not (mentions "Group.lookup_port") then
        Alcotest.failf "chain misses the suspension root:\n%s"
          (Cldiag.to_string d)
  | ds ->
      Alcotest.failf "expected exactly one diagnostic, got %d:\n%s"
        (List.length ds)
        (String.concat "\n" (List.map Cldiag.to_string ds))

(* The allowlist is per-code and per-site: a CL001 marker must not eat a
   CL003 at the same spot, and the marker window is bounded. *)
let test_allow_is_code_specific () =
  let path = Filename.concat fixtures_dir "allow_marker.ml" in
  Alcotest.(check (list string)) "marker suppresses its code" [] (reported path);
  (* Same source with the marker pointing at the wrong code: fires. *)
  let src = In_channel.with_open_text path In_channel.input_all in
  let patched =
    Str.global_replace (Str.regexp_string "allow CL001") "allow CL002" src
  in
  let tmp = Filename.temp_file "conclint_fixture" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Out_channel.with_open_text tmp (fun oc ->
          Out_channel.output_string oc patched);
      match
        Lint.run_files [ tmp ]
        |> List.map (fun (d : Cldiag.t) -> d.Cldiag.code)
      with
      | [ "CL001" ] -> ()
      | got ->
          Alcotest.failf "wrong-code marker must not suppress; got [%s]"
            (String.concat ", " got))

(* The shipped engine sources lint clean — the same invariant the @lint
   alias enforces at build time, kept in-suite so `dune runtest` alone
   catches a regression.  The tree layout differs under dune's sandbox,
   so this runs only when ../lib is visible (it is, in-repo). *)
let test_shipped_tree_clean () =
  (* cwd is _build/default/test; the staged library sources sit beside it. *)
  let lib = Filename.concat ".." "lib" in
  if Sys.file_exists lib && Sys.is_directory lib then
    match Lint.run_paths [ lib ] with
    | [] -> ()
    | ds ->
        Alcotest.failf "shipped lib/ must lint clean, got %d finding(s):\n%s"
          (List.length ds)
          (String.concat "\n" (List.map Cldiag.to_string ds))

let suite =
  [
    Alcotest.test_case "fixture corpus expectations" `Quick test_corpus;
    Alcotest.test_case "PR-5 deadlock chain is complete" `Quick test_pr5_chain;
    Alcotest.test_case "allowlist is code-specific" `Quick
      test_allow_is_code_specific;
    Alcotest.test_case "shipped tree lints clean" `Quick
      test_shipped_tree_clean;
  ]
