(* Additional exchange tests: stress across packet sizes, empty streams,
   range partitioning through interchange, nested merge networks, broadcast
   to multiple consumers, and port error handling. *)

module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Support = Volcano_tuple.Support
module Iterator = Volcano.Iterator
module Exchange = Volcano.Exchange
module Group = Volcano.Group
module Port = Volcano.Port
module Packet = Volcano.Packet

let check = Alcotest.check
let range n = List.init n (fun i -> i)

let sorted_ints iterator =
  List.sort compare
    (List.map (fun t -> Tuple.int_exn t 0) (Iterator.to_list iterator))

(* Sweep packet size x flow slack x degree: the multiset never changes. *)
let test_parameter_sweep () =
  List.iter
    (fun (packet_size, flow_slack, degree) ->
      let cfg = Exchange.config ~degree ~packet_size ~flow_slack () in
      let per = 120 in
      let iterator =
        Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun group ->
            let rank = Group.rank group in
            Iterator.generate ~count:per ~f:(fun i ->
                Tuple.of_ints [ (rank * per) + i ]))
      in
      check
        (Alcotest.list Alcotest.int)
        (Printf.sprintf "ps=%d slack=%s d=%d" packet_size
           (match flow_slack with Some n -> string_of_int n | None -> "-")
           degree)
        (range (degree * per))
        (sorted_ints iterator))
    [
      (1, Some 1, 1); (1, Some 1, 4); (2, None, 3); (13, Some 2, 2);
      (83, Some 4, 5); (255, None, 2); (7, Some 8, 7);
    ]

let test_empty_producers () =
  let cfg = Exchange.config ~degree:3 () in
  let iterator =
    Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun _ -> Iterator.empty)
  in
  check Alcotest.int "empty stream" 0 (Iterator.consume iterator)

let test_single_record () =
  let cfg = Exchange.config ~degree:2 ~packet_size:83 () in
  let iterator =
    Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun group ->
        if Group.rank group = 0 then Iterator.of_list [ Tuple.of_ints [ 7 ] ]
        else Iterator.empty)
  in
  check (Alcotest.list Alcotest.int) "one record" [ 7 ] (sorted_ints iterator)

(* Reusing one exchange iterator value for two full open/consume/close
   cycles (the state record is reinitialized by open). *)
let test_reopen_after_close () =
  let cfg = Exchange.config ~degree:2 () in
  let make () =
    Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun group ->
        let rank = Group.rank group in
        Iterator.generate ~count:10 ~f:(fun i -> Tuple.of_ints [ (rank * 10) + i ]))
  in
  let it = make () in
  check (Alcotest.list Alcotest.int) "first run" (range 20) (sorted_ints it);
  let it2 = make () in
  check (Alcotest.list Alcotest.int) "second run" (range 20) (sorted_ints it2)

(* Range partitioning through the no-fork interchange: each member ends up
   with exactly its key range. *)
let test_interchange_range_partition () =
  let inner_id = Exchange.fresh_id () in
  let n = 300 in
  let bounds = [| Value.Int 99; Value.Int 199 |] in
  let outer_cfg = Exchange.config ~degree:3 () in
  let inner_cfg =
    Exchange.config ~degree:3 ~partition:(Exchange.Range_on (0, bounds)) ()
  in
  let outer =
    Exchange.iterator outer_cfg ~group:(Group.solo ()) ~input:(fun group ->
        let rank = Group.rank group in
        let scan =
          Iterator.generate
            ~count:(n / 3)
            ~f:(fun i -> Tuple.of_ints [ (i * 3) + rank ])
        in
        let exchanged =
          Exchange.interchange ~id:inner_id inner_cfg ~group ~input:scan
        in
        Iterator.make
          ~open_:(fun () -> Iterator.open_ exchanged)
          ~next:(fun () ->
            Option.map
              (fun t -> Array.append t [| Value.Int rank |])
              (Iterator.next exchanged))
          ~close:(fun () -> Iterator.close exchanged))
  in
  let tuples = Iterator.to_list outer in
  check Alcotest.int "total" n (List.length tuples);
  List.iter
    (fun t ->
      let key = Tuple.int_exn t 0 and owner = Tuple.int_exn t 1 in
      let expected = if key <= 99 then 0 else if key <= 199 then 1 else 2 in
      check Alcotest.int (Printf.sprintf "key %d range owner" key) expected owner)
    tuples

(* Two parallel merge networks feeding a binary merge — nested use of the
   keep-separate variant. *)
let test_two_merge_networks () =
  let cfg = Exchange.config ~degree:2 ~packet_size:11 () in
  let network parity =
    Volcano_ops.Merge.exchange_merge cfg
      ~cmp:(Support.compare_cols [ 0 ])
      ~group:(Group.solo ())
      ~input:(fun group ->
        let rank = Group.rank group in
        (* producer emits sorted values congruent to parity+2*rank mod 4 *)
        Iterator.generate ~count:50 ~f:(fun i ->
            Tuple.of_ints [ (i * 4) + parity + (2 * rank) ]))
  in
  let merged =
    Volcano_ops.Merge.of_iterators
      ~cmp:(Support.compare_cols [ 0 ])
      [| network 0; network 1 |]
  in
  let values = List.map (fun t -> Tuple.int_exn t 0) (Iterator.to_list merged) in
  check (Alcotest.list Alcotest.int) "globally sorted" (range 200) values

(* Broadcast with a 2-member consumer group: every consumer sees every
   record of every producer. *)
let test_broadcast_multi_consumer () =
  let inner_id = Exchange.fresh_id () in
  let outer_cfg = Exchange.config ~degree:2 () in
  let inner_cfg = Exchange.config ~degree:3 ~partition:Exchange.Broadcast () in
  let outer =
    Exchange.iterator outer_cfg ~group:(Group.solo ()) ~input:(fun group ->
        let inner =
          Exchange.iterator ~id:inner_id inner_cfg ~group ~input:(fun igroup ->
              let irank = Group.rank igroup in
              Iterator.generate ~count:20 ~f:(fun i ->
                  Tuple.of_ints [ (irank * 20) + i ]))
        in
        inner)
  in
  (* 3 producers x 20 records, broadcast to 2 consumers = 120 deliveries. *)
  let values = sorted_ints outer in
  check Alcotest.int "deliveries" 120 (List.length values);
  List.iter
    (fun v ->
      check Alcotest.int
        (Printf.sprintf "record %d delivered twice" v)
        2
        (List.length (List.filter (fun x -> x = v) values)))
    (range 60)

let test_producer_streams_early_close () =
  let cfg = Exchange.config ~degree:2 ~flow_slack:(Some 1) ~packet_size:2 () in
  let streams =
    Exchange.producer_streams cfg ~group:(Group.solo ()) ~input:(fun _ ->
        Iterator.generate ~count:1_000_000 ~f:(fun i -> Tuple.of_ints [ i ]))
  in
  Array.iter Iterator.open_ streams;
  (* Take a couple of records from stream 0 only, then close everything;
     producers must be cancelled. *)
  ignore (Iterator.next streams.(0));
  ignore (Iterator.next streams.(0));
  Array.iter Iterator.close streams;
  check Alcotest.bool "returned" true true

let test_port_separate_mode_errors () =
  let port = Port.create ~producers:2 ~consumers:1 ~keep_separate:true () in
  Alcotest.check_raises "receive requires receive_from"
    (Invalid_argument "Port.receive: keep-separate port requires receive_from")
    (fun () -> ignore (Port.receive port ~consumer:0));
  Alcotest.check_raises "try_receive too"
    (Invalid_argument "Port.try_receive: keep-separate port requires receive_from")
    (fun () -> ignore (Port.try_receive port ~consumer:0))

let test_port_shutdown_drains () =
  let port = Port.create ~producers:1 ~consumers:1 () in
  let packet = Packet.create ~capacity:4 ~producer:0 in
  Packet.add packet (Tuple.of_ints [ 1 ]);
  Port.send port ~producer:0 ~consumer:0 packet;
  Port.shutdown port;
  (* Queued packets remain readable after shutdown... *)
  (match Port.receive port ~consumer:0 with
  | Some p -> check Alcotest.int "queued packet survives" 1 (Packet.length p)
  | None -> Alcotest.fail "lost queued packet");
  (* ...then receive reports the shutdown. *)
  check Alcotest.bool "then None" true (Port.receive port ~consumer:0 = None);
  (* Sends after shutdown are dropped. *)
  Port.send port ~producer:0 ~consumer:0 packet;
  check Alcotest.bool "send dropped" true (Port.receive port ~consumer:0 = None)

let test_packet_bounds () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Packet.create: capacity must be in [1, 255]") (fun () ->
      ignore (Packet.create ~capacity:0 ~producer:0));
  Alcotest.check_raises "over max"
    (Invalid_argument "Packet.create: capacity must be in [1, 255]") (fun () ->
      ignore (Packet.create ~capacity:256 ~producer:0));
  let p = Packet.create ~capacity:1 ~producer:3 in
  check Alcotest.int "producer" 3 (Packet.producer p);
  Packet.add p (Tuple.of_ints [ 1 ]);
  Alcotest.check_raises "add to full" (Invalid_argument "Packet.add: packet full")
    (fun () -> Packet.add p (Tuple.of_ints [ 2 ]));
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Packet.get: out of range") (fun () ->
      ignore (Packet.get p 1))

let test_custom_partition_clamped () =
  (* A custom partition function returning out-of-range values is reduced
     modulo the consumer count. *)
  let cfg =
    Exchange.config ~degree:1
      ~partition:(Exchange.Custom (fun () tuple -> Tuple.int_exn tuple 0 - 50))
      ()
  in
  let iterator =
    Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun _ ->
        Iterator.generate ~count:100 ~f:(fun i -> Tuple.of_ints [ i ]))
  in
  check (Alcotest.list Alcotest.int) "all delivered" (range 100)
    (sorted_ints iterator)

(* Regression: multi-column hash keys used to overflow to negative
   partition numbers, killing producers and hanging the query. *)
let test_multicolumn_hash_partition () =
  let inner_id = Exchange.fresh_id () in
  let outer_cfg = Exchange.config ~degree:3 () in
  let inner_cfg =
    Exchange.config ~degree:3 ~partition:(Exchange.Hash_on [ 0; 1; 2 ]) ()
  in
  let n = 500 in
  let outer =
    Exchange.iterator outer_cfg ~group:(Group.solo ()) ~input:(fun group ->
        Exchange.iterator ~id:inner_id inner_cfg ~group ~input:(fun igroup ->
            let irank = Group.rank igroup in
            Iterator.generate
              ~count:(n / 3 + if irank < n mod 3 then 1 else 0)
              ~f:(fun i ->
                let v = (i * 3) + irank in
                Tuple.of_ints [ v; v mod 5; v mod 7 ])))
  in
  check Alcotest.int "all records survive repartitioning" n
    (List.length (sorted_ints outer))

(* A producer that raises must fail the query at close, not hang it. *)
exception Boom

let test_producer_exception_propagates () =
  let cfg = Exchange.config ~degree:2 () in
  let iterator =
    Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun group ->
        let rank = Group.rank group in
        Iterator.make
          ~open_:(fun () -> ())
          ~next:(fun () -> if rank = 1 then raise Boom else Some (Tuple.of_ints [ 0 ]))
          ~close:(fun () -> ()))
  in
  match Iterator.consume iterator with
  | _ -> Alcotest.fail "expected the producer's exception"
  | exception Exchange.Query_failed { origin = Boom; site } ->
      (* the failure surfaces at the consumer's next, wrapped once, with
         the original exception and the failing site preserved *)
      Alcotest.(check string) "failure site" "producer" site

let test_deep_vertical_chain () =
  (* Seven chained process boundaries. *)
  let cfg = Exchange.config ~degree:1 ~packet_size:5 () in
  let rec build depth group =
    if depth = 0 then Iterator.generate ~count:200 ~f:(fun i -> Tuple.of_ints [ i ])
    else Exchange.iterator cfg ~group ~input:(fun g -> build (depth - 1) g)
  in
  check (Alcotest.list Alcotest.int) "depth 7" (range 200)
    (sorted_ints (build 7 (Group.solo ())))

(* The pool must never alias a live packet: an allocation may only return
   a packet the consumer has explicitly recycled, and recycling must
   reset it before the producer sees it again. *)
let test_pool_no_premature_aliasing () =
  let port = Port.create ~producers:1 ~consumers:1 ~flow_slack:4 () in
  let p1 = Port.alloc port ~producer:0 ~consumer:0 ~capacity:5 in
  Packet.add p1 (Tuple.of_ints [ 42 ]);
  Port.send port ~producer:0 ~consumer:0 p1;
  (* p1 is in flight (sent, not yet recycled): a fresh allocation must not
     hand it out again. *)
  let p2 = Port.alloc port ~producer:0 ~consumer:0 ~capacity:5 in
  check Alcotest.bool "in-flight packet not re-allocated" false (p1 == p2);
  (match Port.receive port ~consumer:0 with
  | Some q ->
      check Alcotest.bool "received the sent packet" true (q == p1);
      check Alcotest.int "contents intact" 42 (Tuple.int_exn (Packet.get q 0) 0);
      Port.recycle port ~consumer:0 q
  | None -> Alcotest.fail "packet lost");
  (* Only now may the pool serve p1 again — reset. *)
  let p3 = Port.alloc port ~producer:0 ~consumer:0 ~capacity:5 in
  check Alcotest.bool "recycled packet reused" true (p3 == p1);
  check Alcotest.int "reused packet reset" 0 (Packet.length p3);
  check Alcotest.bool "eos cleared" false (Packet.end_of_stream p3);
  (* A recycled packet of the wrong shape must not leak across allocation
     sites: ask for a different capacity and get a fresh packet. *)
  Port.recycle port ~consumer:0 p2;
  let p4 = Port.alloc port ~producer:0 ~consumer:0 ~capacity:7 in
  check Alcotest.bool "capacity mismatch not reused" false (p4 == p2);
  check Alcotest.int "ledger: allocated" 3 (Port.pool_allocated port);
  check Alcotest.int "ledger: reused" 1 (Port.pool_reused port);
  check Alcotest.int "ledger: recycled" 2 (Port.pool_recycled port)

(* Pool ledger against port counters on a real parallel query, observed
   through an Obs sample: every packet sent was either freshly allocated
   or reused, and nothing is recycled that was never received. *)
let test_pool_ledger_reconciles () =
  let module Obs = Volcano_obs.Obs in
  let module Plan = Volcano_plan.Plan in
  let module Env = Volcano_plan.Env in
  let module Compile = Volcano_plan.Compile in
  let n = 1200 in
  let plan =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree:3 ~packet_size:5 ~flow_slack:(Some 2) ();
        input =
          Plan.Generate_slice
            { arity = 1; count = n; gen = (fun i -> Tuple.of_ints [ i ]) };
      }
  in
  let env = Env.create () in
  let sink = Obs.create () in
  let obs = Compile.observe sink plan in
  check Alcotest.int "all rows arrive" n
    (Iterator.consume (Compile.compile ~obs env plan));
  let samples =
    List.filter_map (fun node -> Obs.exchange_sample sink ~node) (Obs.nodes sink)
  in
  check Alcotest.int "one exchange sampled" 1 (List.length samples);
  List.iter
    (fun s ->
      check Alcotest.int "allocated + reused = sent" s.Obs.packets_sent
        (s.Obs.pool_allocated + s.Obs.pool_reused);
      check Alcotest.bool "recycled <= received" true
        (s.Obs.pool_recycled <= s.Obs.packets_received);
      check Alcotest.bool "reused <= recycled" true
        (s.Obs.pool_reused <= s.Obs.pool_recycled);
      check Alcotest.bool "pool actually reused packets" true
        (s.Obs.pool_reused > 0))
    samples

let suite =
  [
    Alcotest.test_case "parameter sweep" `Quick test_parameter_sweep;
    Alcotest.test_case "empty producers" `Quick test_empty_producers;
    Alcotest.test_case "single record" `Quick test_single_record;
    Alcotest.test_case "fresh iterator per run" `Quick test_reopen_after_close;
    Alcotest.test_case "interchange range partition" `Quick
      test_interchange_range_partition;
    Alcotest.test_case "two merge networks" `Quick test_two_merge_networks;
    Alcotest.test_case "broadcast to consumer group" `Quick
      test_broadcast_multi_consumer;
    Alcotest.test_case "producer streams early close" `Quick
      test_producer_streams_early_close;
    Alcotest.test_case "keep-separate port API errors" `Quick
      test_port_separate_mode_errors;
    Alcotest.test_case "port shutdown semantics" `Quick test_port_shutdown_drains;
    Alcotest.test_case "packet bounds" `Quick test_packet_bounds;
    Alcotest.test_case "custom partition clamped" `Quick
      test_custom_partition_clamped;
    Alcotest.test_case "multi-column hash partition (regression)" `Quick
      test_multicolumn_hash_partition;
    Alcotest.test_case "producer exception propagates" `Quick
      test_producer_exception_propagates;
    Alcotest.test_case "deep vertical chain" `Quick test_deep_vertical_chain;
    Alcotest.test_case "pool never aliases a live packet" `Quick
      test_pool_no_premature_aliasing;
    Alcotest.test_case "pool ledger reconciles with port counters" `Quick
      test_pool_ledger_reconciles;
  ]
