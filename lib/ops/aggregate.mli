(** Aggregation and duplicate elimination — "two algorithms each" (section
    1): sort-based (input arrives grouped) and hash-based.

    Output tuples carry the group-by columns followed by one value per
    aggregate.  Duplicate elimination is aggregation with an empty aggregate
    list. *)

type agg =
  | Count
  | Sum of Volcano_tuple.Expr.num
  | Min of Volcano_tuple.Expr.num
  | Max of Volcano_tuple.Expr.num
  | Avg of Volcano_tuple.Expr.num

val hash_iterator :
  group_by:int list -> aggs:agg list -> Volcano.Iterator.t -> Volcano.Iterator.t
(** Hash aggregation: consumes the whole input on [open_], emits one tuple
    per group. *)

val hash_feed_exprs :
  keys:Volcano_tuple.Expr.num list ->
  aggs:agg list ->
  drain:((Volcano_tuple.Tuple.t -> unit) -> unit) ->
  Volcano.Iterator.t
(** {!hash_feed} generalized to expression-valued group keys: the output
    key columns are the [keys] evaluated on each input tuple, in order.
    This is how the compiler pushes a projection directly under an
    aggregate into the aggregate itself ([Expr.subst] on keys and
    aggregate arguments) — the fused loop then never materializes the
    projected tuple at all. *)

val hash_feed :
  group_by:int list ->
  aggs:agg list ->
  drain:((Volcano_tuple.Tuple.t -> unit) -> unit) ->
  Volcano.Iterator.t
(** {!hash_iterator} fed by an arbitrary drive loop: [open_] calls
    [drain feed] once and expects it to push every input tuple.  This is
    the sink-fusion entry point — the compiler passes the fused chain's
    emit path as the drain, so scan, filter, project and the hash build
    run as one loop with no packet shell in between.  Same algorithm,
    same first-seen group order, bit-identical output.  When every
    aggregate is [Count] or [Sum] of an integer-only expression, the
    build runs allocation-free per record (see the implementation). *)

val hash_batches :
  group_by:int list -> aggs:agg list -> Volcano.Batch.t -> Volcano.Iterator.t
(** {!hash_feed} over a batch pipeline: the build loop feeds straight
    out of each batch's packet, so a fused chain aggregates without the
    record-at-a-time bridge. *)

val distinct_filter : on:int list -> unit -> Volcano_tuple.Tuple.t -> bool
(** A fresh stateful duplicate predicate for the fused batch path: true
    exactly on the first tuple of each key group.  Instantiate one per
    open (it remembers every key it has seen). *)

val sorted_iterator :
  group_by:int list -> aggs:agg list -> Volcano.Iterator.t -> Volcano.Iterator.t
(** Streaming aggregation over an input already sorted (or at least
    grouped) on the group-by columns; fully pipelined. *)

val distinct_hash : on:int list -> Volcano.Iterator.t -> Volcano.Iterator.t
(** Duplicate elimination keyed on the given columns; emits the first tuple
    of each group. *)

val distinct_sorted : on:int list -> Volcano.Iterator.t -> Volcano.Iterator.t
