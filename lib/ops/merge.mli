(** The merge iterator (paper, section 4.4): a single-level merge of
    pre-sorted inputs, "easily derived from the sort module".  Combined with
    the keep-separate exchange variant it forms merge networks: some
    processes produce sorted streams that other processes merge. *)

val of_iterators :
  cmp:Volcano_tuple.Support.comparator ->
  Volcano.Iterator.t array ->
  Volcano.Iterator.t
(** Merge sorted inputs into one sorted stream.  Opens and closes all
    inputs. *)

val exchange_merge :
  ?id:int ->
  ?faults:Volcano_fault.Injector.t ->
  ?parent_scope:Volcano.Exchange.Scope.t ->
  ?scope:Volcano.Exchange.Scope.t ->
  ?obs:Volcano_obs.Obs.t * Volcano_obs.Obs.Node.t ->
  ?sched:Volcano_sched.Sched.t ->
  Volcano.Exchange.config ->
  cmp:Volcano_tuple.Support.comparator ->
  group:Volcano.Group.t ->
  input:(Volcano.Group.t -> Volcano.Iterator.t) ->
  Volcano.Iterator.t
(** Merge the sorted streams of an exchange's producers, keeping records
    separated by producer (the "third argument to next-exchange"
    mechanism). *)
