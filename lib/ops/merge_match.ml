module Iterator = Volcano.Iterator
module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value

type state = {
  mutable left_head : Tuple.t option;
  mutable right_head : Tuple.t option;
  mutable pending : Tuple.t list;
  mutable finished : bool;
}

let iterator ~kind ~left_key ~right_key ~left_arity ~right_arity ~left ~right =
  if List.length left_key <> List.length right_key then
    invalid_arg "Merge_match: key lists must have equal length";
  let key_cmp l r =
    List.fold_left2
      (fun acc li ri -> if acc <> 0 then acc else Value.compare l.(li) r.(ri))
      0 left_key right_key
  in
  (* Compare two left-side tuples on the left key. *)
  let left_group_cmp a b =
    List.fold_left
      (fun acc i -> if acc <> 0 then acc else Value.compare a.(i) b.(i))
      0 left_key
  in
  let right_group_cmp a b =
    List.fold_left
      (fun acc i -> if acc <> 0 then acc else Value.compare a.(i) b.(i))
      0 right_key
  in
  let state =
    { left_head = None; right_head = None; pending = []; finished = false }
  in
  (* Collect the full group of consecutive tuples equal to the head. *)
  let collect_group head advance group_cmp set_head =
    let rec gather acc current =
      match current with
      | None ->
          set_head None;
          List.rev acc
      | Some tuple ->
          if acc = [] || group_cmp (List.hd acc) tuple = 0 then
            gather (tuple :: acc) (advance ())
          else begin
            set_head (Some tuple);
            List.rev acc
          end
    in
    gather [] (Some head)
  in
  let next_left () = Iterator.next left in
  let next_right () = Iterator.next right in
  let emit l r = Match_op.emit_group kind ~left_arity ~right_arity ~left:l ~right:r in
  let rec fill () =
    if state.pending = [] && not state.finished then begin
      (match (state.left_head, state.right_head) with
      | None, None -> state.finished <- true
      | Some l, None ->
          let group =
            collect_group l next_left left_group_cmp (fun h -> state.left_head <- h)
          in
          state.pending <- emit group []
      | None, Some r ->
          let group =
            collect_group r next_right right_group_cmp (fun h ->
                state.right_head <- h)
          in
          state.pending <- emit [] group
      | Some l, Some r ->
          let c = key_cmp l r in
          if c < 0 then begin
            let group =
              collect_group l next_left left_group_cmp (fun h ->
                  state.left_head <- h)
            in
            state.pending <- emit group []
          end
          else if c > 0 then begin
            let group =
              collect_group r next_right right_group_cmp (fun h ->
                  state.right_head <- h)
            in
            state.pending <- emit [] group
          end
          else begin
            let lgroup =
              collect_group l next_left left_group_cmp (fun h ->
                  state.left_head <- h)
            in
            let rgroup =
              collect_group r next_right right_group_cmp (fun h ->
                  state.right_head <- h)
            in
            state.pending <- emit lgroup rgroup
          end);
      fill ()
    end
  in
  Iterator.make
    ~open_:(fun () ->
      (* Self-clean on failure: if the right side fails to open (or either
         first [next] dies — e.g. an injected fix denial while a sorted
         input reopens its spilled runs), close whatever opened so its
         pinned pages are released; the caller never sees a state to
         close. *)
      Iterator.open_ left;
      (try
         Iterator.open_ right;
         try
           state.left_head <- Iterator.next left;
           state.right_head <- Iterator.next right
         with exn ->
           (try Iterator.close right with _ -> ());
           raise exn
       with exn ->
         (try Iterator.close left with _ -> ());
         raise exn);
      state.pending <- [];
      state.finished <- false)
    ~next:(fun () ->
      fill ();
      match state.pending with
      | [] -> None
      | tuple :: rest ->
          state.pending <- rest;
          Some tuple)
    ~close:(fun () ->
      (* Close both sides even if one close fails; first failure re-raised. *)
      let first = ref None in
      (try Iterator.close left with exn -> first := Some exn);
      (try Iterator.close right with exn -> if !first = None then first := Some exn);
      match !first with Some exn -> raise exn | None -> ())
