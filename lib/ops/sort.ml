module Iterator = Volcano.Iterator
module Heap_file = Volcano_storage.Heap_file
module Serial = Volcano_tuple.Serial
module Binheap = Volcano_util.Binheap

type spill = {
  device : Volcano_storage.Device.t;
  buffer : Volcano_storage.Bufpool.t;
}

let run_counter = Atomic.make 0
let runs_spilled () = Atomic.get run_counter

(* A sorted run: either resident or a spilled heap file. *)
type run = In_memory of Volcano_tuple.Tuple.t array | Spilled of Heap_file.t

let spill_run spill tuples =
  let id = Atomic.fetch_and_add run_counter 1 in
  let file =
    Heap_file.create ~buffer:spill.buffer ~device:spill.device
      ~name:(Printf.sprintf "__sort_run_%d" id)
  in
  Array.iter
    (fun tuple ->
      let _ = Heap_file.insert file (Bytes.to_string (Serial.encode tuple)) in
      ())
    tuples;
  Spilled file

type run_cursor = {
  mutable head : Volcano_tuple.Tuple.t option;
  advance : unit -> Volcano_tuple.Tuple.t option;
  cleanup : unit -> unit;
}

let cursor_of_run run =
  match run with
  | In_memory tuples ->
      let pos = ref 0 in
      let advance () =
        if !pos >= Array.length tuples then None
        else begin
          let t = tuples.(!pos) in
          incr pos;
          Some t
        end
      in
      let c = { head = None; advance; cleanup = (fun () -> ()) } in
      c.head <- advance ();
      c
  | Spilled file ->
      let scan = Heap_file.scan file in
      let advance () =
        match Heap_file.next scan with
        | None -> None
        | Some (_rid, record) -> Some (Serial.decode_bytes (Bytes.of_string record))
      in
      let cleanup () =
        Heap_file.close_cursor scan;
        Heap_file.drop file
      in
      let c = { head = None; advance; cleanup } in
      c.head <- advance ();
      c

(* Failure-path cleanup.  Dropping twice is safe (an emptied file's chain
   walk is a no-op), so best-effort cleanup may overlap. *)
let drop_run = function
  | Spilled file -> ( try Heap_file.drop file with _ -> ())
  | In_memory _ -> ()

(* Build cursors for every run; if a later one fails to open (e.g. an
   injected fix denial while pinning the run's first page), release the
   already-built cursors so their pinned pages do not leak. *)
let cursors_of_runs runs =
  let built = ref [] in
  try
    Array.of_list
      (List.map
         (fun r ->
           let c = cursor_of_run r in
           built := c :: !built;
           c)
         runs)
  with exn ->
    List.iter (fun c -> try c.cleanup () with _ -> ()) !built;
    raise exn

(* Merge a batch of runs into one stream.  The heap orders cursors by their
   head tuple; ties broken by an index to keep the comparison total. *)
let merge_cursors ~cmp cursors =
  let heap =
    Binheap.create ~cmp:(fun (a, ia) (b, ib) ->
        let c = cmp a b in
        if c <> 0 then c else compare (ia : int) ib)
  in
  Array.iteri
    (fun i c -> match c.head with Some t -> Binheap.push heap (t, i) | None -> ())
    cursors;
  fun () ->
    match Binheap.pop heap with
    | None -> None
    | Some (tuple, i) ->
        let cursor = cursors.(i) in
        cursor.head <- cursor.advance ();
        (match cursor.head with
        | Some t -> Binheap.push heap (t, i)
        | None -> ());
        Some tuple

let rec take n xs =
  if n = 0 then ([], xs)
  else
    match xs with
    | [] -> ([], [])
    | x :: rest ->
        let batch, remainder = take (n - 1) rest in
        (x :: batch, remainder)

(* Cascaded merge: reduce the run list to at most [fan_in] runs, then give
   back the final single-level merge.  A failure mid-merge (a device fault
   while reading or spilling) drops every remaining run so that no pinned
   page survives the wreck. *)
let reduce_runs ~cmp ~fan_in ~spill runs =
  if List.length runs <= fan_in then runs
  else
    match spill with
    | None ->
        (* Cannot spill intermediate merges; merge everything at once. *)
        runs
    | Some sp ->
        let current = ref runs in
        (try
           while List.length !current > fan_in do
             let batch, rest = take fan_in !current in
             let cursors = cursors_of_runs batch in
             let merged =
               try
                 let pull = merge_cursors ~cmp cursors in
                 let collected = ref [] in
                 let rec drain () =
                   match pull () with
                   | None -> ()
                   | Some t ->
                       collected := t :: !collected;
                       drain ()
                 in
                 drain ();
                 Array.iter (fun c -> c.cleanup ()) cursors;
                 spill_run sp (Array.of_list (List.rev !collected))
               with exn ->
                 Array.iter (fun c -> try c.cleanup () with _ -> ()) cursors;
                 raise exn
             in
             current := rest @ [ merged ]
           done
         with exn ->
           List.iter drop_run !current;
           raise exn);
        !current

let iterator ?(run_capacity = 65536) ?(fan_in = 8) ?spill ~cmp input =
  if run_capacity < 1 then invalid_arg "Sort: run_capacity must be positive";
  if fan_in < 2 then invalid_arg "Sort: fan_in must be at least 2";
  let state = ref None in
  Iterator.make
    ~open_:(fun () ->
      Iterator.open_ input;
      let runs = ref [] in
      let pending = ref [] in
      let pending_len = ref 0 in
      let flush_pending () =
        if !pending_len > 0 then begin
          let tuples = Array.of_list (List.rev !pending) in
          Array.sort cmp tuples;
          let run =
            match spill with
            | Some sp when !runs <> [] || !pending_len >= run_capacity ->
                spill_run sp tuples
            | _ -> In_memory tuples
          in
          runs := !runs @ [ run ];
          pending := [];
          pending_len := 0
        end
      in
      let rec consume () =
        match Iterator.next input with
        | None -> ()
        | Some tuple ->
            pending := tuple :: !pending;
            incr pending_len;
            if !pending_len >= run_capacity then flush_pending ();
            consume ()
      in
      (* [open_] drains the whole input, so a failure anywhere in it — the
         input stream dying, a device fault while spilling, a fix denial
         while reopening a run — must close the input and drop the spilled
         runs here: the caller will never see a state to close. *)
      let input_open = ref true in
      try
        consume ();
        flush_pending ();
        input_open := false;
        Iterator.close input;
        let reduced = reduce_runs ~cmp ~fan_in ~spill !runs in
        runs := reduced;
        let cursors = cursors_of_runs reduced in
        let pull = merge_cursors ~cmp cursors in
        state := Some (pull, cursors)
      with exn ->
        if !input_open then (try Iterator.close input with _ -> ());
        List.iter drop_run !runs;
        raise exn)
    ~next:(fun () ->
      match !state with
      | None -> invalid_arg "Sort: not open"
      | Some (pull, _) -> pull ())
    ~close:(fun () ->
      match !state with
      | None -> ()
      | Some (_, cursors) ->
          (* Best-effort: one cursor failing to drop its run (e.g. an
             injected fault on the chain walk) must not strand the other
             cursors' pinned pages. *)
          Array.iter (fun c -> try c.cleanup () with _ -> ()) cursors;
          state := None)
