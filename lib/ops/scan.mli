(** Scan operators: the bridge between the file system and the query
    algebra.  A scan deserializes stored records into tuples; everything
    above it is oblivious to storage ("anonymous inputs"). *)

val heap : Volcano_storage.Heap_file.t -> Volcano.Iterator.t
(** Full file scan in page order. *)

val heap_cursor : Volcano_storage.Heap_file.t -> Volcano.Batch.cursor
(** The batch source behind fused scan chains: a {!Volcano.Batch.cursor}
    over the file in page order, for {!Volcano.Batch.fused}. *)

val heap_prefetched :
  daemon:Volcano_storage.Daemon.t ->
  Volcano_storage.Heap_file.t ->
  Volcano.Iterator.t
(** Full scan that asks the read-ahead daemon to stage the file's pages
    into the buffer pool at open time (paper, section 4.5). *)

val heap_filtered :
  pred:Volcano_tuple.Support.predicate ->
  Volcano_storage.Heap_file.t ->
  Volcano.Iterator.t
(** Scan with the predicate applied inside the scan operator, as Volcano's
    file scan does with its predicate support function. *)

val btree :
  Volcano_btree.Btree.t ->
  lo:Volcano_btree.Btree.bound ->
  hi:Volcano_btree.Btree.bound ->
  Volcano.Iterator.t
(** Range scan over a B+-tree whose values are serialized tuples. *)

val materialize :
  Volcano.Iterator.t -> into:Volcano_storage.Heap_file.t -> int
(** Drain an iterator into a heap file; returns the record count.  Used to
    build stored datasets and spill intermediate results. *)

(** {2 Secondary indexes}

    A secondary index is a B+-tree whose values are encoded RIDs into a
    heap file ("functional join": index scan, then fetch). *)

val encode_rid : Volcano_storage.Rid.t -> string
val decode_rid : string -> Volcano_storage.Rid.t

val build_index :
  tree:Volcano_btree.Btree.t ->
  key_of:(Volcano_tuple.Tuple.t -> string) ->
  Volcano_storage.Heap_file.t ->
  int
(** Scan the file and index every record under [key_of tuple]; returns the
    number of entries inserted. *)

val index_fetch :
  tree:Volcano_btree.Btree.t ->
  file:Volcano_storage.Heap_file.t ->
  lo:Volcano_btree.Btree.bound ->
  hi:Volcano_btree.Btree.bound ->
  Volcano.Iterator.t
(** Range-scan the index and fetch the qualifying records from the heap
    file.  Records deleted from the file since indexing are skipped. *)
