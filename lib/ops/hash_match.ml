module Iterator = Volcano.Iterator
module Tuple = Volcano_tuple.Tuple
module Support = Volcano_tuple.Support
module Serial = Volcano_tuple.Serial
module Heap_file = Volcano_storage.Heap_file

module Key_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let rec take n xs =
  if n <= 0 then []
  else match xs with [] -> [] | x :: rest -> x :: take (n - 1) rest

let match_tag = Atomic.make 0

type entry = {
  mutable tuples : Tuple.t list; (* build tuples, reversed insertion order *)
  mutable count : int;
  mutable probes : int; (* left tuples seen with this key *)
  mutable matched : bool;
}

(* The in-memory match core, usable directly or per Grace partition. *)
let in_memory ~kind ~left_key ~right_key ~left_arity ~right_arity ~left ~right =
  let left_of = Support.key_on left_key in
  let right_of = Support.key_on right_key in
  let table = Key_table.create 1024 in
  let drain_queue = Queue.create () in
  let phase = ref `Build in
  let build () =
    Iterator.open_ right;
    let rec load () =
      match Iterator.next right with
      | None -> ()
      | Some tuple ->
          let key = right_of tuple in
          (match Key_table.find_opt table key with
          | Some entry ->
              entry.tuples <- tuple :: entry.tuples;
              entry.count <- entry.count + 1
          | None ->
              Key_table.add table key
                { tuples = [ tuple ]; count = 1; probes = 0; matched = false });
          load ()
    in
    (* A failing build input must not stay open: close it here, because the
       consumer's close is a no-op while the phase is still [`Build]. *)
    (try load () with
    | exn ->
        (try Iterator.close right with _ -> ());
        raise exn);
    Iterator.close right;
    Iterator.open_ left;
    phase := `Probe
  in
  let pending = ref [] in
  let emit_probe tuple =
    let key = left_of tuple in
    let entry = Key_table.find_opt table key in
    (match entry with
    | Some e ->
        e.matched <- true;
        e.probes <- e.probes + 1
    | None -> ());
    match kind with
    | Match_op.Join -> (
        match entry with
        | Some e -> List.rev_map (fun b -> Tuple.concat tuple b) e.tuples
        | None -> [])
    | Match_op.Left_outer -> (
        match entry with
        | Some e -> List.rev_map (fun b -> Tuple.concat tuple b) e.tuples
        | None ->
            Match_op.emit_group Match_op.Left_outer ~left_arity ~right_arity
              ~left:[ tuple ] ~right:[])
    | Match_op.Right_outer | Match_op.Full_outer -> (
        match entry with
        | Some e -> List.rev_map (fun b -> Tuple.concat tuple b) e.tuples
        | None ->
            if kind = Match_op.Full_outer then
              Match_op.emit_group Match_op.Full_outer ~left_arity ~right_arity
                ~left:[ tuple ] ~right:[]
            else [])
    | Match_op.Semi -> ( match entry with Some _ -> [ tuple ] | None -> [])
    | Match_op.Anti -> ( match entry with Some _ -> [] | None -> [ tuple ])
    | Match_op.Intersection -> (
        match entry with
        | Some e when e.probes <= e.count -> [ tuple ]
        | _ -> [])
    | Match_op.Difference -> (
        match entry with
        | Some e when e.probes <= e.count -> []
        | _ -> [ tuple ])
    | Match_op.Union -> [ tuple ]
    | Match_op.Anti_difference -> []
  in
  let start_drain () =
    Iterator.close left;
    phase := `Drain;
    Key_table.iter
      (fun _key entry ->
        let leftovers =
          match kind with
          | Match_op.Right_outer | Match_op.Full_outer ->
              if entry.matched then []
              else
                Match_op.emit_group kind ~left_arity ~right_arity ~left:[]
                  ~right:(List.rev entry.tuples)
          | Match_op.Union | Match_op.Anti_difference ->
              let extra = entry.count - entry.probes in
              if extra > 0 then take extra (List.rev entry.tuples) else []
          | Match_op.Join | Match_op.Left_outer | Match_op.Semi | Match_op.Anti
          | Match_op.Intersection | Match_op.Difference ->
              []
        in
        List.iter (fun t -> Queue.push t drain_queue) leftovers)
      table
  in
  Iterator.make
    ~open_:(fun () -> build ())
    ~next:(fun () ->
      let rec step () =
        match !pending with
        | tuple :: rest ->
            pending := rest;
            Some tuple
        | [] -> (
            match !phase with
            | `Build -> invalid_arg "Hash_match: not open"
            | `Probe -> (
                match Iterator.next left with
                | Some tuple ->
                    pending := emit_probe tuple;
                    step ()
                | None ->
                    start_drain ();
                    step ())
            | `Drain -> Queue.take_opt drain_queue)
      in
      step ())
    ~close:(fun () ->
      match !phase with
      | `Probe -> Iterator.close left
      | `Build | `Drain -> ())

(* Grace partitioning: route both inputs to per-partition files, then match
   each partition pair in memory. *)
let partitioned ~partitions ~spill ~kind ~left_key ~right_key ~left_arity
    ~right_arity ~left ~right =
  let hash_left = Support.hash_on left_key in
  let hash_right = Support.hash_on right_key in
  let tag = Atomic.fetch_and_add match_tag 1 in
  let make_files side =
    Array.init partitions (fun p ->
        Heap_file.create ~buffer:spill.Sort.buffer ~device:spill.Sort.device
          ~name:(Printf.sprintf "__match_%d_%s_%d" tag side p))
  in
  let spill_input files hash input =
    Iterator.iter
      (fun tuple ->
        let p = hash tuple mod partitions in
        let _ =
          Heap_file.insert files.(p) (Bytes.to_string (Serial.encode tuple))
        in
        ())
      input
  in
  let left_files = ref [||] in
  let right_files = ref [||] in
  let current = ref None in
  let partition_index = ref 0 in
  let open_partition p =
    let sub =
      in_memory ~kind ~left_key ~right_key ~left_arity ~right_arity
        ~left:(Scan.heap !left_files.(p))
        ~right:(Scan.heap !right_files.(p))
    in
    Iterator.open_ sub;
    current := Some sub
  in
  Iterator.make
    ~open_:(fun () ->
      left_files := make_files "probe";
      right_files := make_files "build";
      try
        spill_input !right_files hash_right right;
        spill_input !left_files hash_left left;
        partition_index := 0;
        open_partition 0
      with exn ->
        (* Drop the partition files on a failed open — the caller has no
           state to close yet.  (Dropping again from close is safe.) *)
        Array.iter (fun f -> try Heap_file.drop f with _ -> ()) !left_files;
        Array.iter (fun f -> try Heap_file.drop f with _ -> ()) !right_files;
        raise exn)
    ~next:(fun () ->
      let rec step () =
        match !current with
        | None -> None
        | Some sub -> (
            match Iterator.next sub with
            | Some tuple -> Some tuple
            | None ->
                Iterator.close sub;
                incr partition_index;
                if !partition_index >= partitions then begin
                  current := None;
                  None
                end
                else begin
                  open_partition !partition_index;
                  step ()
                end)
      in
      step ())
    ~close:(fun () ->
      (match !current with Some sub -> Iterator.close sub | None -> ());
      current := None;
      (* Best-effort: a failing drop must not leave later files undropped. *)
      Array.iter (fun f -> try Heap_file.drop f with _ -> ()) !left_files;
      Array.iter (fun f -> try Heap_file.drop f with _ -> ()) !right_files)

let iterator ?(build_capacity = max_int) ?(partitions = 16) ?spill ~kind
    ~left_key ~right_key ~left_arity ~right_arity left right =
  match spill with
  | Some sp when build_capacity < max_int ->
      (* Decide once, up front: peek at the build side size by buffering up
         to the capacity; beyond it, fall back to Grace partitioning with
         the buffered prefix replayed. *)
      let decided = ref None in
      Iterator.make
        ~open_:(fun () ->
          Iterator.open_ right;
          let buffered = ref [] in
          let n = ref 0 in
          let rec peek () =
            if !n >= build_capacity then `Overflow
            else
              match Iterator.next right with
              | None -> `Fits
              | Some tuple ->
                  buffered := tuple :: !buffered;
                  incr n;
                  peek ()
          in
          let verdict =
            try peek ()
            with exn ->
              (try Iterator.close right with _ -> ());
              raise exn
          in
          let replayed_prefix = Iterator.of_list (List.rev !buffered) in
          let build_rest =
            (* Remaining build tuples still inside [right]. *)
            Iterator.make
              ~open_:(fun () -> Iterator.open_ replayed_prefix)
              ~next:(fun () ->
                match Iterator.next replayed_prefix with
                | Some t -> Some t
                | None -> ( match verdict with
                            | `Fits -> None
                            | `Overflow -> Iterator.next right))
              ~close:(fun () ->
                Iterator.close replayed_prefix;
                Iterator.close right)
          in
          let sub =
            match verdict with
            | `Fits ->
                in_memory ~kind ~left_key ~right_key ~left_arity ~right_arity
                  ~left ~right:build_rest
            | `Overflow ->
                partitioned ~partitions ~spill:sp ~kind ~left_key ~right_key
                  ~left_arity ~right_arity ~left ~right:build_rest
          in
          Iterator.open_ sub;
          decided := Some sub)
        ~next:(fun () ->
          match !decided with
          | None -> invalid_arg "Hash_match: not open"
          | Some sub -> Iterator.next sub)
        ~close:(fun () ->
          match !decided with
          | None -> ()
          | Some sub ->
              Iterator.close sub;
              decided := None)
  | _ ->
      in_memory ~kind ~left_key ~right_key ~left_arity ~right_arity ~left ~right
