module Iterator = Volcano.Iterator
module Binheap = Volcano_util.Binheap

type source = {
  mutable head : Volcano_tuple.Tuple.t option;
  input : Iterator.t;
}

let of_iterators ~cmp inputs =
  let sources = Array.map (fun input -> { head = None; input }) inputs in
  let heap = ref None in
  Iterator.make
    ~open_:(fun () ->
      let h =
        Binheap.create ~cmp:(fun (a, ia) (b, ib) ->
            let c = cmp a b in
            if c <> 0 then c else compare (ia : int) ib)
      in
      (* If a later source fails to open (or its first [next] dies), close
         EVERY source, opened or not: producer streams refcount their
         closes, and only the last one shuts the shared port and joins the
         producer group — closing just the opened subset would leak the
         producer domains. *)
      (try
         Array.iteri
           (fun i source ->
             Iterator.open_ source.input;
             source.head <- Iterator.next source.input;
             match source.head with
             | Some t -> Binheap.push h (t, i)
             | None -> ())
           sources
       with exn ->
         Array.iter
           (fun s -> try Iterator.close s.input with _ -> ())
           sources;
         raise exn);
      heap := Some h)
    ~next:(fun () ->
      match !heap with
      | None -> invalid_arg "Merge: not open"
      | Some h -> (
          match Binheap.pop h with
          | None -> None
          | Some (tuple, i) ->
              let source = sources.(i) in
              source.head <- Iterator.next source.input;
              (match source.head with
              | Some t -> Binheap.push h (t, i)
              | None -> ());
              Some tuple))
    ~close:(fun () ->
      (* Close every source even if one close fails: for producer streams
         the last close releases the shared port and joins the producer
         group, which must happen regardless.  First failure re-raised. *)
      let first = ref None in
      Array.iter
        (fun source ->
          try Iterator.close source.input
          with exn -> if !first = None then first := Some exn)
        sources;
      heap := None;
      match !first with Some exn -> raise exn | None -> ())

let exchange_merge ?id ?faults ?parent_scope ?scope ?obs ?sched cfg ~cmp
    ~group ~input =
  let streams =
    Volcano.Exchange.producer_streams ?id ?faults ?parent_scope ?scope ?obs
      ?sched cfg ~group ~input
  in
  of_iterators ~cmp streams
