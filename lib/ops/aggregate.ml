module Iterator = Volcano.Iterator
module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Expr = Volcano_tuple.Expr
module Support = Volcano_tuple.Support

type agg =
  | Count
  | Sum of Expr.num
  | Min of Expr.num
  | Max of Expr.num
  | Avg of Expr.num

(* Accumulator state per aggregate per group. *)
type acc =
  | Acc_count of int ref
  | Acc_sum of Value.t ref * (Tuple.t -> Value.t)
  | Acc_min of Value.t ref * (Tuple.t -> Value.t)
  | Acc_max of Value.t ref * (Tuple.t -> Value.t)
  | Acc_avg of float ref * int ref * (Tuple.t -> Value.t)

let value_add a b =
  match (a, b) with
  | Value.Null, x | x, Value.Null -> x
  | Value.Int x, Value.Int y -> Value.Int (x + y)
  | x, y -> Value.Float (Value.float_exn x +. Value.float_exn y)

let fresh_acc agg =
  match agg with
  | Count -> Acc_count (ref 0)
  | Sum e -> Acc_sum (ref Value.Null, Expr.Compiled.num e)
  | Min e -> Acc_min (ref Value.Null, Expr.Compiled.num e)
  | Max e -> Acc_max (ref Value.Null, Expr.Compiled.num e)
  | Avg e -> Acc_avg (ref 0.0, ref 0, Expr.Compiled.num e)

let feed acc tuple =
  match acc with
  | Acc_count n -> incr n
  | Acc_sum (v, f) -> v := value_add !v (f tuple)
  | Acc_min (v, f) ->
      let x = f tuple in
      if x <> Value.Null && (!v = Value.Null || Value.compare x !v < 0) then v := x
  | Acc_max (v, f) ->
      let x = f tuple in
      if x <> Value.Null && (!v = Value.Null || Value.compare x !v > 0) then v := x
  | Acc_avg (sum, n, f) -> (
      match f tuple with
      | Value.Null -> ()
      | x ->
          sum := !sum +. Value.float_exn x;
          incr n)

let finish acc =
  match acc with
  | Acc_count n -> Value.Int !n
  | Acc_sum (v, _) -> !v
  | Acc_min (v, _) -> !v
  | Acc_max (v, _) -> !v
  | Acc_avg (sum, n, _) ->
      if !n = 0 then Value.Null else Value.Float (!sum /. float_of_int !n)

let output_tuple key accs =
  Tuple.concat key (Array.of_list (List.map finish accs))

module Key_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* The shared hash-build machinery: [drain] consumes the whole input —
   record iterator or batch pipeline — through the [build] feeder on
   open, then the grouped results stream out of a queue in first-seen
   order (deterministic output). *)
let hash_build ~key_of ~aggs ~drain =
  let results = Queue.create () in
  let opened = ref false in
  Iterator.make
    ~open_:(fun () ->
      let table = Key_table.create 1024 in
      (* Preserve first-seen group order for deterministic output. *)
      let order = ref [] in
      drain (fun tuple ->
          let key = key_of tuple in
          let accs =
            match Key_table.find_opt table key with
            | Some accs -> accs
            | None ->
                let accs = List.map fresh_acc aggs in
                Key_table.add table key accs;
                order := key :: !order;
                accs
          in
          List.iter (fun acc -> feed acc tuple) accs);
      List.iter
        (fun key ->
          let accs = Key_table.find table key in
          Queue.push (output_tuple key accs) results)
        (List.rev !order);
      opened := true)
    ~next:(fun () ->
      if not !opened then invalid_arg "Aggregate.hash: not open";
      Queue.take_opt results)
    ~close:(fun () -> opened := false)

let hash_iterator ~group_by ~aggs input =
  hash_build ~key_of:(Support.key_on group_by) ~aggs ~drain:(fun feed_tuple ->
      Iterator.iter feed_tuple input)

(* ------------------------------------------------------------------ *)
(* The specialized batch build.

   For the common batched shape — every aggregate [Count] or [Sum] of an
   integer-only expression — the build loop runs almost allocation-free
   per record: group keys are hashed and compared straight out of a
   scratch buffer (the key tuple is materialized once per GROUP, not per
   record), and accumulators are native ints.  A record that defeats an
   int kernel (a non-int field, division by zero) demotes its group to
   the generic accumulators, at most once per group, so results are
   identical to [hash_build]'s.  This is where batching pays beyond
   saved [next] calls: the record-at-a-time operator cannot justify a
   second code path per plan shape, the batch operator amortizes the
   choice over every packet.

   Keys are expressions, not column positions: the compiler pushes
   projections under an aggregate into the aggregate itself
   ([Expr.subst]), so the fused loop evaluates keys and accumulator
   inputs straight off the scan tuple.  A plain column list is the
   special case [keys = List.map Expr.col group_by]. *)

type group = {
  gkey : Tuple.t;
  ghash : int;
  fast : int array; (* one slot per aggregate: count, or running sum *)
  seen : bool array; (* Sum slots: fed at least once while fast *)
  mutable generic : acc list; (* non-empty once the group is demoted *)
}

(* [None] per slot = Count; [Some kernel] = Sum of an int expression.
   The whole plan is [None] when any aggregate needs the generic build. *)
let fast_agg_plan aggs =
  let rec go = function
    | [] -> Some []
    | Count :: rest -> Option.map (fun l -> None :: l) (go rest)
    | Sum e :: rest -> (
        match Expr.Compiled.num_int e with
        | Some kernel -> Option.map (fun l -> Some kernel :: l) (go rest)
        | None -> None)
    | (Min _ | Max _ | Avg _) :: _ -> None
  in
  Option.map Array.of_list (go aggs)

(* The table below is private to one build: any hash will do as long as
   equal keys agree on it, and output order is first-seen, never hash
   order.  So ints — the overwhelmingly common group key — get a
   one-multiply mix instead of [Value.hash]'s byte-serial FNV, which
   costs more than the rest of the probe put together. *)
let slot_hash = function
  | Value.Int x -> x * 0x2545F4914F6CDD1D land max_int
  | v -> Value.hash v

let slot_equal a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> x = y
  | _ -> Value.equal a b

let key_hash key =
  let h = ref 17 in
  for i = 0 to Array.length key - 1 do
    h := (!h * 31) + slot_hash (Array.unsafe_get key i)
  done;
  !h

let key_matches gkey key =
  let rec go i =
    i >= Array.length key
    || slot_equal (Array.unsafe_get gkey i) (Array.unsafe_get key i)
       && go (i + 1)
  in
  go 0

let demote aggs g =
  g.generic <-
    List.mapi
      (fun i agg ->
        match agg with
        | Count -> Acc_count (ref g.fast.(i))
        | Sum e ->
            Acc_sum
              ( ref (if g.seen.(i) then Value.Int g.fast.(i) else Value.Null),
                Expr.Compiled.num e )
        | Min _ | Max _ | Avg _ -> assert false)
      aggs

let fast_output aggs g =
  match g.generic with
  | _ :: _ as accs -> output_tuple g.gkey accs
  | [] ->
      Tuple.concat g.gkey
        (Array.of_list
           (List.mapi
              (fun i agg ->
                match agg with
                | Count -> Value.Int g.fast.(i)
                | Sum _ ->
                    if g.seen.(i) then Value.Int g.fast.(i) else Value.Null
                | Min _ | Max _ | Avg _ -> assert false)
              aggs))

let fast_hash_build ~key_evals ~key_kernels ~aggs ~kernels ~drain =
  let naggs = Array.length kernels in
  let nkeys = Array.length key_evals in
  let results = Queue.create () in
  let opened = ref false in
  Iterator.make
    ~open_:(fun () ->
      let buckets = ref (Array.make 1024 []) in
      let size = ref 0 in
      let order = ref [] in
      let tmp = Array.make (max 1 naggs) 0 in
      (* Scratch for the current record's key values; a group that the
         probe misses copies it into a fresh [gkey]. *)
      let kbuf = Array.make nkeys Value.Null in
      let ibuf = Array.make nkeys 0 in
      let rehash () =
        let old = !buckets in
        let grown = Array.make (2 * Array.length old) [] in
        let mask = Array.length grown - 1 in
        Array.iter
          (fun bucket ->
            List.iter
              (fun g ->
                let i = g.ghash land mask in
                grown.(i) <- g :: grown.(i))
              bucket)
          old;
        buckets := grown
      in
      let add_group gkey h =
        let g =
          {
            gkey;
            ghash = h;
            fast = Array.make (max 1 naggs) 0;
            seen = Array.make (max 1 naggs) false;
            generic = [];
          }
        in
        let bs = !buckets in
        let idx = h land (Array.length bs - 1) in
        bs.(idx) <- g :: bs.(idx);
        order := g :: !order;
        incr size;
        if !size > 2 * Array.length bs then rehash ();
        g
      in
      let find_boxed tuple =
        for i = 0 to nkeys - 1 do
          Array.unsafe_set kbuf i ((Array.unsafe_get key_evals i) tuple)
        done;
        let h = key_hash kbuf in
        let bs = !buckets in
        let rec scan = function
          | [] -> add_group (Array.copy kbuf) h
          | g :: rest ->
              if g.ghash = h && key_matches g.gkey kbuf then g else scan rest
        in
        scan bs.(h land (Array.length bs - 1))
      in
      (* When every key has an int kernel, keys hash and compare as
         native ints with no [Value] boxing at all.  The first record
         whose keys defeat the kernels turns the probe off for the rest
         of the build (a non-int-keyed plan fails on record one); both
         probes share the table, and [slot_hash]/[slot_equal] agree with
         the int path on [Int] values, so mixing them is sound. *)
      let find_or_add =
        match key_kernels with
        | None -> find_boxed
        | Some kk ->
            let int_keys = ref true in
            let matches_ints gkey =
              let rec go i =
                i >= nkeys
                || (match Array.unsafe_get gkey i with
                   | Value.Int y -> y = Array.unsafe_get ibuf i && go (i + 1)
                   | _ -> false)
              in
              go 0
            in
            fun tuple ->
              if not !int_keys then find_boxed tuple
              else if
                try
                  for i = 0 to nkeys - 1 do
                    Array.unsafe_set ibuf i ((Array.unsafe_get kk i) tuple)
                  done;
                  false
                with Expr.Compiled.Fallback -> true
              then begin
                int_keys := false;
                find_boxed tuple
              end
              else begin
                let h = ref 17 in
                for i = 0 to nkeys - 1 do
                  h :=
                    (!h * 31)
                    + (Array.unsafe_get ibuf i * 0x2545F4914F6CDD1D land max_int)
                done;
                let h = !h in
                let bs = !buckets in
                let rec scan = function
                  | [] ->
                      add_group
                        (Array.init nkeys (fun i -> Value.Int ibuf.(i)))
                        h
                  | g :: rest ->
                      if g.ghash = h && matches_ints g.gkey then g
                      else scan rest
                in
                scan bs.(h land (Array.length bs - 1))
              end
      in
      let feed_group g tuple =
        match g.generic with
        | _ :: _ as accs -> List.iter (fun acc -> feed acc tuple) accs
        | [] -> (
            try
              (* Evaluate every kernel before touching the state, so a
                 fallback mid-record leaves the group consistent. *)
              for i = 0 to naggs - 1 do
                match Array.unsafe_get kernels i with
                | None -> ()
                | Some kernel -> Array.unsafe_set tmp i (kernel tuple)
              done;
              for i = 0 to naggs - 1 do
                match Array.unsafe_get kernels i with
                | None -> g.fast.(i) <- g.fast.(i) + 1
                | Some _ ->
                    g.fast.(i) <- g.fast.(i) + Array.unsafe_get tmp i;
                    g.seen.(i) <- true
              done
            with Expr.Compiled.Fallback ->
              demote aggs g;
              List.iter (fun acc -> feed acc tuple) g.generic)
      in
      drain (fun tuple -> feed_group (find_or_add tuple) tuple);
      List.iter
        (fun g -> Queue.push (fast_output aggs g) results)
        (List.rev !order);
      opened := true)
    ~next:(fun () ->
      if not !opened then invalid_arg "Aggregate.hash: not open";
      Queue.take_opt results)
    ~close:(fun () -> opened := false)

(* Batched entry points.  [hash_feed_exprs] lets the compiler hand the
   build a drain of its own making — in particular the fused-sink drain,
   where the scan chain's emit path calls [feed] directly with no packet
   shell in between — and key expressions carrying pushed-down
   projections.  [hash_feed] is the plain column-keyed form and
   [hash_batches] the packet-consuming special case. *)
let hash_feed_exprs ~keys ~aggs ~drain =
  let key_evals = Array.of_list (List.map Expr.Compiled.num keys) in
  match fast_agg_plan aggs with
  | Some kernels ->
      let key_kernels =
        let ks = List.map Expr.Compiled.num_int keys in
        if List.for_all Option.is_some ks then
          Some (Array.of_list (List.map Option.get ks))
        else None
      in
      fast_hash_build ~key_evals ~key_kernels ~aggs ~kernels ~drain
  | None ->
      let key_of tuple = Array.map (fun f -> f tuple) key_evals in
      hash_build ~key_of ~aggs ~drain

let hash_feed ~group_by ~aggs ~drain =
  hash_feed_exprs ~keys:(List.map Expr.col group_by) ~aggs ~drain

let hash_batches ~group_by ~aggs input =
  hash_feed ~group_by ~aggs ~drain:(fun feed_tuple ->
      Volcano.Batch.iter feed_tuple input)

let sorted_iterator ~group_by ~aggs input =
  let key_of = Support.key_on group_by in
  let lookahead = ref None in
  let finished = ref false in
  Iterator.make
    ~open_:(fun () ->
      Iterator.open_ input;
      (* Self-clean on failure: a dying first [next] (e.g. a sorted input
         hitting an injected fault) must not leave the input open — the
         caller never sees a state to close. *)
      (try lookahead := Iterator.next input
       with exn ->
         (try Iterator.close input with _ -> ());
         raise exn);
      finished := false)
    ~next:(fun () ->
      if !finished then None
      else
        match !lookahead with
        | None ->
            finished := true;
            None
        | Some first ->
            let key = key_of first in
            let accs = List.map fresh_acc aggs in
            List.iter (fun acc -> feed acc first) accs;
            let rec gather () =
              match Iterator.next input with
              | None -> lookahead := None
              | Some tuple ->
                  if Tuple.equal (key_of tuple) key then begin
                    List.iter (fun acc -> feed acc tuple) accs;
                    gather ()
                  end
                  else lookahead := Some tuple
            in
            gather ();
            Some (output_tuple key accs))
    ~close:(fun () -> Iterator.close input)

(* A fresh stateful duplicate predicate for the fused batch path: true on
   the first tuple of each key group.  One instance per open. *)
let distinct_filter ~on () =
  let key_of = Support.key_on on in
  let seen = Key_table.create 1024 in
  fun tuple ->
    let key = key_of tuple in
    if Key_table.mem seen key then false
    else begin
      Key_table.add seen key ();
      true
    end

(* Duplicate elimination keeps the whole first tuple of each group rather
   than just the key columns. *)
let distinct_hash ~on input =
  let key_of = Support.key_on on in
  let seen = Key_table.create 1024 in
  Iterator.make
    ~open_:(fun () ->
      Key_table.reset seen;
      Iterator.open_ input)
    ~next:(fun () ->
      let rec step () =
        match Iterator.next input with
        | None -> None
        | Some tuple ->
            let key = key_of tuple in
            if Key_table.mem seen key then step ()
            else begin
              Key_table.add seen key ();
              Some tuple
            end
      in
      step ())
    ~close:(fun () -> Iterator.close input)

let distinct_sorted ~on input =
  let key_of = Support.key_on on in
  let previous = ref None in
  Iterator.make
    ~open_:(fun () ->
      previous := None;
      Iterator.open_ input)
    ~next:(fun () ->
      let rec step () =
        match Iterator.next input with
        | None -> None
        | Some tuple ->
            let key = key_of tuple in
            let duplicate =
              match !previous with
              | Some prev -> Tuple.equal prev key
              | None -> false
            in
            if duplicate then step ()
            else begin
              previous := Some key;
              Some tuple
            end
      in
      step ())
    ~close:(fun () -> Iterator.close input)
