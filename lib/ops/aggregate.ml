module Iterator = Volcano.Iterator
module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Expr = Volcano_tuple.Expr
module Support = Volcano_tuple.Support

type agg =
  | Count
  | Sum of Expr.num
  | Min of Expr.num
  | Max of Expr.num
  | Avg of Expr.num

(* Accumulator state per aggregate per group. *)
type acc =
  | Acc_count of int ref
  | Acc_sum of Value.t ref * (Tuple.t -> Value.t)
  | Acc_min of Value.t ref * (Tuple.t -> Value.t)
  | Acc_max of Value.t ref * (Tuple.t -> Value.t)
  | Acc_avg of float ref * int ref * (Tuple.t -> Value.t)

let value_add a b =
  match (a, b) with
  | Value.Null, x | x, Value.Null -> x
  | Value.Int x, Value.Int y -> Value.Int (x + y)
  | x, y -> Value.Float (Value.float_exn x +. Value.float_exn y)

let fresh_acc agg =
  match agg with
  | Count -> Acc_count (ref 0)
  | Sum e -> Acc_sum (ref Value.Null, Expr.Compiled.num e)
  | Min e -> Acc_min (ref Value.Null, Expr.Compiled.num e)
  | Max e -> Acc_max (ref Value.Null, Expr.Compiled.num e)
  | Avg e -> Acc_avg (ref 0.0, ref 0, Expr.Compiled.num e)

let feed acc tuple =
  match acc with
  | Acc_count n -> incr n
  | Acc_sum (v, f) -> v := value_add !v (f tuple)
  | Acc_min (v, f) ->
      let x = f tuple in
      if x <> Value.Null && (!v = Value.Null || Value.compare x !v < 0) then v := x
  | Acc_max (v, f) ->
      let x = f tuple in
      if x <> Value.Null && (!v = Value.Null || Value.compare x !v > 0) then v := x
  | Acc_avg (sum, n, f) -> (
      match f tuple with
      | Value.Null -> ()
      | x ->
          sum := !sum +. Value.float_exn x;
          incr n)

let finish acc =
  match acc with
  | Acc_count n -> Value.Int !n
  | Acc_sum (v, _) -> !v
  | Acc_min (v, _) -> !v
  | Acc_max (v, _) -> !v
  | Acc_avg (sum, n, _) ->
      if !n = 0 then Value.Null else Value.Float (!sum /. float_of_int !n)

let output_tuple key accs =
  Tuple.concat key (Array.of_list (List.map finish accs))

module Key_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let hash_iterator ~group_by ~aggs input =
  let key_of = Support.key_on group_by in
  let results = Queue.create () in
  let opened = ref false in
  Iterator.make
    ~open_:(fun () ->
      let table = Key_table.create 1024 in
      (* Preserve first-seen group order for deterministic output. *)
      let order = ref [] in
      Iterator.iter
        (fun tuple ->
          let key = key_of tuple in
          let accs =
            match Key_table.find_opt table key with
            | Some accs -> accs
            | None ->
                let accs = List.map fresh_acc aggs in
                Key_table.add table key accs;
                order := key :: !order;
                accs
          in
          List.iter (fun acc -> feed acc tuple) accs)
        input;
      List.iter
        (fun key ->
          let accs = Key_table.find table key in
          Queue.push (output_tuple key accs) results)
        (List.rev !order);
      opened := true)
    ~next:(fun () ->
      if not !opened then invalid_arg "Aggregate.hash: not open";
      Queue.take_opt results)
    ~close:(fun () -> opened := false)

let sorted_iterator ~group_by ~aggs input =
  let key_of = Support.key_on group_by in
  let lookahead = ref None in
  let finished = ref false in
  Iterator.make
    ~open_:(fun () ->
      Iterator.open_ input;
      (* Self-clean on failure: a dying first [next] (e.g. a sorted input
         hitting an injected fault) must not leave the input open — the
         caller never sees a state to close. *)
      (try lookahead := Iterator.next input
       with exn ->
         (try Iterator.close input with _ -> ());
         raise exn);
      finished := false)
    ~next:(fun () ->
      if !finished then None
      else
        match !lookahead with
        | None ->
            finished := true;
            None
        | Some first ->
            let key = key_of first in
            let accs = List.map fresh_acc aggs in
            List.iter (fun acc -> feed acc first) accs;
            let rec gather () =
              match Iterator.next input with
              | None -> lookahead := None
              | Some tuple ->
                  if Tuple.equal (key_of tuple) key then begin
                    List.iter (fun acc -> feed acc tuple) accs;
                    gather ()
                  end
                  else lookahead := Some tuple
            in
            gather ();
            Some (output_tuple key accs))
    ~close:(fun () -> Iterator.close input)

(* Duplicate elimination keeps the whole first tuple of each group rather
   than just the key columns. *)
let distinct_hash ~on input =
  let key_of = Support.key_on on in
  let seen = Key_table.create 1024 in
  Iterator.make
    ~open_:(fun () ->
      Key_table.reset seen;
      Iterator.open_ input)
    ~next:(fun () ->
      let rec step () =
        match Iterator.next input with
        | None -> None
        | Some tuple ->
            let key = key_of tuple in
            if Key_table.mem seen key then step ()
            else begin
              Key_table.add seen key ();
              Some tuple
            end
      in
      step ())
    ~close:(fun () -> Iterator.close input)

let distinct_sorted ~on input =
  let key_of = Support.key_on on in
  let previous = ref None in
  Iterator.make
    ~open_:(fun () ->
      previous := None;
      Iterator.open_ input)
    ~next:(fun () ->
      let rec step () =
        match Iterator.next input with
        | None -> None
        | Some tuple ->
            let key = key_of tuple in
            let duplicate =
              match !previous with
              | Some prev -> Tuple.equal prev key
              | None -> false
            in
            if duplicate then step ()
            else begin
              previous := Some key;
              Some tuple
            end
      in
      step ())
    ~close:(fun () -> Iterator.close input)
