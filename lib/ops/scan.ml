module Heap_file = Volcano_storage.Heap_file
module Serial = Volcano_tuple.Serial
module Iterator = Volcano.Iterator

let heap_filtered ~pred file =
  let cursor = ref None in
  Iterator.make
    ~open_:(fun () -> cursor := Some (Heap_file.scan file))
    ~next:(fun () ->
      match !cursor with
      | None -> invalid_arg "Scan.heap: not open"
      | Some c ->
          let rec step () =
            match Heap_file.next c with
            | None -> None
            | Some (_rid, record) ->
                let tuple = Serial.decode_bytes (Bytes.of_string record) in
                if pred tuple then Some tuple else step ()
          in
          step ())
    ~close:(fun () ->
      match !cursor with
      | None -> ()
      | Some c ->
          Heap_file.close_cursor c;
          cursor := None)

let heap file = heap_filtered ~pred:(fun _ -> true) file

(* The batch source for fused scan chains: the per-record decode stays
   (records are variable-length on the page), but the iterator protocol
   above it is gone — one [step] call refills a whole batch. *)
let heap_cursor file =
  let cursor = ref None in
  {
    Volcano.Batch.reset = (fun () -> cursor := Some (Heap_file.scan file));
    step =
      (fun ~emit ~max ->
        match !cursor with
        | None -> invalid_arg "Scan.heap_cursor: not open"
        | Some c ->
            let n = ref 0 in
            (try
               while !n < max do
                 match Heap_file.next c with
                 | None -> raise Exit
                 | Some (_rid, record) ->
                     emit (Serial.decode_bytes (Bytes.of_string record));
                     incr n
               done
             with Exit -> ());
            !n);
    stop =
      (fun () ->
        match !cursor with
        | None -> ()
        | Some c ->
            Heap_file.close_cursor c;
            cursor := None);
  }

let heap_prefetched ~daemon file =
  let inner = heap file in
  Iterator.make
    ~open_:(fun () ->
      List.iter
        (fun page ->
          Volcano_storage.Daemon.submit daemon
            (Volcano_storage.Daemon.Read_ahead (Heap_file.device file, page)))
        (Heap_file.page_chain file);
      Iterator.open_ inner)
    ~next:(fun () -> Iterator.next inner)
    ~close:(fun () -> Iterator.close inner)

let btree tree ~lo ~hi =
  let cursor = ref None in
  Iterator.make
    ~open_:(fun () -> cursor := Some (Volcano_btree.Btree.range tree ~lo ~hi))
    ~next:(fun () ->
      match !cursor with
      | None -> invalid_arg "Scan.btree: not open"
      | Some c -> (
          match Volcano_btree.Btree.next c with
          | None -> None
          | Some (_key, value) ->
              Some (Serial.decode_bytes (Bytes.of_string value))))
    ~close:(fun () ->
      match !cursor with
      | None -> ()
      | Some c ->
          Volcano_btree.Btree.close_cursor c;
          cursor := None)

let encode_rid rid =
  let buf = Bytes.create 12 in
  Bytes.set_int32_le buf 0 (Int32.of_int rid.Volcano_storage.Rid.device);
  Bytes.set_int32_le buf 4 (Int32.of_int rid.Volcano_storage.Rid.page);
  Bytes.set_int32_le buf 8 (Int32.of_int rid.Volcano_storage.Rid.slot);
  Bytes.to_string buf

let decode_rid s =
  let buf = Bytes.of_string s in
  Volcano_storage.Rid.make
    ~device:(Int32.to_int (Bytes.get_int32_le buf 0))
    ~page:(Int32.to_int (Bytes.get_int32_le buf 4))
    ~slot:(Int32.to_int (Bytes.get_int32_le buf 8))

let build_index ~tree ~key_of file =
  let count = ref 0 in
  Heap_file.iter file (fun rid record ->
      let tuple = Serial.decode_bytes (Bytes.of_string record) in
      Volcano_btree.Btree.insert tree ~key:(key_of tuple)
        ~value:(encode_rid rid);
      incr count);
  !count

let index_fetch ~tree ~file ~lo ~hi =
  let cursor = ref None in
  Iterator.make
    ~open_:(fun () -> cursor := Some (Volcano_btree.Btree.range tree ~lo ~hi))
    ~next:(fun () ->
      match !cursor with
      | None -> invalid_arg "Scan.index_fetch: not open"
      | Some c ->
          let rec step () =
            match Volcano_btree.Btree.next c with
            | None -> None
            | Some (_key, value) -> (
                match Heap_file.get file (decode_rid value) with
                | Some record -> Some (Serial.decode_bytes (Bytes.of_string record))
                | None -> step () (* deleted since indexing *))
          in
          step ())
    ~close:(fun () ->
      match !cursor with
      | None -> ()
      | Some c ->
          Volcano_btree.Btree.close_cursor c;
          cursor := None)

let materialize iterator ~into =
  Iterator.fold
    (fun count tuple ->
      let _ = Heap_file.insert into (Bytes.to_string (Serial.encode tuple)) in
      count + 1)
    0 iterator
