(* The three conclint rules, evaluated over the shape IR with the
   effect table from {!Effects}:

   CL001  a may-suspend call lexically inside a held-mutex region,
          tracked through branches and early raises (a raise does not
          end the region: the lock leaks with the exception);
   CL002  inconsistent lock acquisition order: a cycle in the static
          lock graph means a potential ABBA deadlock;
   CL003  a blocking primitive reachable from fiber context, where it
          would stall a pool worker invisibly to the scheduler. *)

module SS = Set.Make (String)

type acc = {
  table : Effects.table;
  mutable diags : Cldiag.t list;
  mutable edges : (string * string * Cldiag.pos * string) list;
      (* held -> acquired, site, via *)
}

let report acc ~code ~slug ~pos ?(chain = []) message =
  acc.diags <- Cldiag.v ~code ~slug ~pos ~chain message :: acc.diags

let held_keys held = List.map fst held

let describe_held held =
  String.concat ", "
    (List.map
       (fun (k, (p : Cldiag.pos)) ->
         Printf.sprintf "%s (locked at %s:%d)" k p.file p.line)
       held)

(* ------------------------------------------------------------------ *)
(* CL001: the lock-region walk                                         *)

let cl001_root acc ~owner held callee pos =
  report acc ~code:"CL001" ~slug:"suspend-under-lock" ~pos
    ~chain:[ Printf.sprintf "%s is a may-suspend root" callee ]
    (Printf.sprintf "%s: may-suspend call to %s while holding %s" owner callee
       (describe_held held))

let cl001_via acc ~owner held callee pos (m : Effects.info) =
  match m.hard with
  | Some _ ->
      report acc ~code:"CL001" ~slug:"suspend-under-lock" ~pos
        ~chain:
          (Printf.sprintf "%s calls %s (%s:%d)" owner (Shape.pretty callee)
             pos.Cldiag.file pos.Cldiag.line
          :: Effects.chain acc.table callee)
        (Printf.sprintf "%s: call to %s may suspend while holding %s" owner
           (Shape.pretty callee) (describe_held held))
  | None -> ()

let cl001_cv acc ~owner held callee pos cv_keys =
  report acc ~code:"CL001" ~slug:"suspend-under-lock" ~pos
    ~chain:
      [
        Printf.sprintf "%s waits on a condition variable of %s"
          (Shape.pretty callee)
          (String.concat ", " (SS.elements cv_keys));
      ]
    (Printf.sprintf
       "%s: call to %s condition-waits while also holding %s (wait releases \
        only its own mutex)"
       owner (Shape.pretty callee) (describe_held held))

(* Walk a shape list with the set of held locks; returns the exit held
   set and whether the path unconditionally diverges (raises). *)
let rec walk acc ~owner held shapes =
  match shapes with
  | [] -> (held, false)
  | shape :: rest -> (
      match step acc ~owner held shape with
      | held', false -> walk acc ~owner held' rest
      | held', true -> (held', true) (* unreachable tail *))

and step acc ~owner held shape =
  match shape with
  | Shape.Lock (k, p) ->
      List.iter
        (fun (h, _) -> acc.edges <- (h, k, p, "Mutex.lock") :: acc.edges)
        held;
      (held @ [ (k, p) ], false)
  | Unlock (k, _) ->
      let rec drop = function
        | [] -> []
        | (h, _) :: tl when h = k -> tl
        | hd :: tl -> hd :: drop tl
      in
      (drop (List.rev held) |> List.rev, false)
  | Cond_wait (key, pos) ->
      let exempt =
        match key with
        | Some k -> List.for_all (fun (h, _) -> h = k) held
        | None -> held = []
      in
      if (not exempt) && held <> [] then
        report acc ~code:"CL001" ~slug:"suspend-under-lock" ~pos
          (Printf.sprintf
             "%s: Condition.wait%s while holding %s (wait releases only its \
              own mutex)"
             owner
             (match key with Some k -> " on " ^ k | None -> "")
             (describe_held
                (match key with
                | Some k -> List.filter (fun (h, _) -> h <> k) held
                | None -> held)));
      (held, false)
  | Raise _ -> (held, true)
  | Branch alts ->
      let outs = List.map (fun alt -> walk acc ~owner held alt) alts in
      let live = List.filter (fun (_, d) -> not d) outs in
      if live = [] then (held, true)
      else
        let keep (k, p) =
          if List.for_all (fun (h, _) -> List.mem_assoc k h) live then
            Some (k, p)
          else None
        in
        (* Intersection of the non-diverging exits: a lock released in
           every live branch is gone, one released in only some is
           conservatively kept (first live exit wins). *)
        let first, _ = List.hd live in
        (List.filter_map keep first, false)
  | Defer body ->
      ignore (walk acc ~owner [] body);
      (held, false)
  | Call c -> call acc ~owner held c

and call acc ~owner held (c : Shape.call) =
  match Effects.spawn_ctx c.callee with
  | Some _ ->
      (* Detached closure: runs later with nothing held. *)
      List.iter (fun body -> ignore (walk acc ~owner [] body)) c.closures;
      (held, false)
  | None -> (
      let wrapper_key =
        if c.callee = "Mutex.protect" then c.recv_key
        else Hashtbl.find_opt acc.table.wrappers c.callee
      in
      match wrapper_key with
      | Some k ->
          List.iter
            (fun (h, _) -> acc.edges <- (h, k, c.cpos, c.callee) :: acc.edges)
            held;
          List.iter
            (fun body ->
              ignore (walk acc ~owner (held @ [ (k, c.cpos) ]) body))
            c.closures;
          (held, false)
      | None ->
          let check name =
            if held <> [] then begin
              if SS.mem name Effects.hard_roots then
                cl001_root acc ~owner held name c.cpos
              else
                match Hashtbl.find_opt acc.table.nodes name with
                | Some m when Effects.saturated acc.table name c.applied ->
                    if m.hard <> None then cl001_via acc ~owner held name c.cpos m
                    else if
                      (not (SS.is_empty m.cv))
                      && List.exists
                           (fun h -> not (SS.mem h m.cv))
                           (held_keys held)
                    then cl001_cv acc ~owner held name c.cpos m.cv;
                    List.iter
                      (fun h ->
                        SS.iter
                          (fun a ->
                            acc.edges <- (h, a, c.cpos, name) :: acc.edges)
                          m.acquires)
                      (held_keys held)
                | _ -> ()
            end
          in
          check c.callee;
          if SS.mem c.callee Effects.sync_hofs then List.iter check c.heads;
          List.iter (fun body -> ignore (walk acc ~owner held body)) c.closures;
          (held, false))

(* ------------------------------------------------------------------ *)
(* CL002: lock-order cycles                                            *)

let cl002 acc =
  (* Adjacency over distinct keys; self-edges are skipped (two
     instances behind one field name are indistinguishable statically). *)
  let edges =
    List.filter (fun (a, b, _, _) -> a <> b) acc.edges
    |> List.sort_uniq compare
  in
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b, p, via) ->
      Hashtbl.replace adj a ((b, p, via) :: (try Hashtbl.find adj a with Not_found -> [])))
    edges;
  let reported = Hashtbl.create 4 in
  let black = Hashtbl.create 16 in
  let rec dfs path node =
    if not (Hashtbl.mem black node) then
      match List.assoc_opt node path with
      | Some _ ->
          (* Back edge: the cycle is the path suffix starting at the
             first occurrence of [node]. *)
          let cycle =
            let rec from = function
              | (k, e) :: tl -> if k = node then (k, e) :: tl else from tl
              | [] -> []
            in
            from (List.rev path)
          in
          let keys = List.map fst cycle in
          let canon = String.concat " -> " (List.sort compare keys) in
          if not (Hashtbl.mem reported canon) then begin
            Hashtbl.replace reported canon ();
            let _, (p, via) = List.hd (List.rev cycle) in
            report acc ~code:"CL002" ~slug:"lock-order-cycle" ~pos:p
              ~chain:
                (List.map
                   (fun (k, ((ep : Cldiag.pos), evia)) ->
                     Printf.sprintf "%s acquired at %s:%d (via %s)" k ep.file
                       ep.line evia)
                   cycle)
              (Printf.sprintf
                 "inconsistent lock order: %s form a cycle (potential ABBA \
                  deadlock, e.g. via %s)"
                 (String.concat " -> " (keys @ [ List.hd keys ]))
                 via)
          end
      | None ->
          (match Hashtbl.find_opt adj node with
          | None -> ()
          | Some nexts ->
              List.iter
                (fun (b, p, via) -> dfs ((node, (p, via)) :: path) b)
                nexts);
          Hashtbl.replace black node ()
  in
  Hashtbl.iter (fun a _ -> dfs [] a) adj

(* ------------------------------------------------------------------ *)
(* CL003: blocking primitives reachable from fiber context             *)

let cl003 acc =
  let t = acc.table in
  (* BFS over saturated call edges from every fiber entry. *)
  let seen = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let queue = Queue.create () in
  let enqueue ~from key pos =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      Hashtbl.replace parent key (from, pos);
      Queue.push key queue
    end
  in
  let rec path_to key =
    match Hashtbl.find_opt parent key with
    | Some (Some from, (pos : Cldiag.pos)) ->
        path_to from
        @ [
            Printf.sprintf "%s calls %s (%s:%d)" (Shape.pretty from)
              (Shape.pretty key) pos.file pos.line;
          ]
    | Some (None, (pos : Cldiag.pos)) ->
        [
          Printf.sprintf "%s forked as a fiber (%s:%d)" (Shape.pretty key)
            pos.file pos.line;
        ]
    | None -> []
  in
  let report_site ~owner_chain name (pos : Cldiag.pos) =
    report acc ~code:"CL003" ~slug:"blocking-in-fiber" ~pos
      ~chain:owner_chain
      (Printf.sprintf
         "blocking call to %s reachable from fiber context (stalls a pool \
          worker invisibly to the scheduler)"
         name)
  in
  (* Literal fiber closures: check their own calls, then seed the named
     functions they reach. *)
  let scan_entry (e : Effects.entry) =
    match e.e_ctx with
    | Effects.Domain_ctx -> ()
    | Fiber -> (
        match e.e_target with
        | Some target -> enqueue ~from:None target e.e_pos
        | None ->
            let probe =
              {
                Effects.node =
                  {
                    Shape.key = e.e_owner ^ ".<fiber>";
                    display = e.e_owner ^ ".<fiber>";
                    npos = e.e_pos;
                    arity = 0;
                    body = e.e_body;
                  };
                calls = [];
                cv = SS.empty;
                unknown_cv = false;
                acquires = SS.empty;
                hard = None;
                blocking = None;
              }
            in
            Effects.scan_direct probe e.e_body;
            List.iter
              (fun (callee, _, pos) ->
                if SS.mem callee Effects.blocking_roots then
                  report_site
                    ~owner_chain:
                      [
                        Printf.sprintf "fiber forked in %s (%s:%d)"
                          (Shape.pretty e.e_owner)
                          e.e_pos.Cldiag.file e.e_pos.Cldiag.line;
                      ]
                    callee pos
                else enqueue ~from:None callee e.e_pos)
              probe.calls)
  in
  List.iter scan_entry t.entries;
  while not (Queue.is_empty queue) do
    let key = Queue.pop queue in
    match Hashtbl.find_opt t.nodes key with
    | None -> ()
    | Some info ->
        List.iter
          (fun (callee, applied, pos) ->
            if SS.mem callee Effects.blocking_roots then
              report_site
                ~owner_chain:
                  (path_to key
                  @ [
                      Printf.sprintf "%s calls %s (%s:%d)" (Shape.pretty key)
                        callee pos.Cldiag.file pos.Cldiag.line;
                    ])
                callee pos
            else if Effects.saturated t callee applied then
              enqueue ~from:(Some key) callee pos)
          info.calls
  done

(* ------------------------------------------------------------------ *)

let run (t : Effects.table) : Cldiag.t list =
  let acc = { table = t; diags = []; edges = [] } in
  Hashtbl.iter
    (fun _ (info : Effects.info) ->
      ignore (walk acc ~owner:info.node.Shape.display [] info.node.Shape.body))
    t.nodes;
  cl002 acc;
  cl003 acc;
  acc.diags
