(* Shape extraction: compress every function body in a source file down to
   the concurrency-relevant events, preserving evaluation order and
   branch structure.  The later passes (effect propagation, lock-region
   walking) work on this small IR instead of the full parsetree.

   Names are normalized to their last two path components after expanding
   file-local module aliases (so [module Sched = Volcano_sched.Sched]
   makes [Sched.suspend] resolve to the same key everywhere).  Lock keys
   are the mutex's field or variable name qualified by the innermost
   enclosing module, e.g. [Port:q_lock]. *)

module P = Parsetree

type pos = Cldiag.pos

type t =
  | Lock of string * pos (* Mutex.lock m *)
  | Unlock of string * pos (* Mutex.unlock m *)
  | Cond_wait of string option * pos (* Condition.wait cv m: key of m *)
  | Raise of pos (* raise / failwith / invalid_arg *)
  | Call of call
  | Branch of t list list (* if / match / try alternatives *)
  | Defer of t list (* lambda built here, run elsewhere *)

and call = {
  callee : string; (* normalized name, e.g. "Group.lookup_port" *)
  cpos : pos;
  applied : int; (* non-optional arguments at the call site *)
  recv_key : string option; (* lock key of the first argument, if any *)
  closures : t list list; (* literal fun arguments, in order *)
  heads : string list; (* function idents passed as arguments *)
}

type node = {
  key : string; (* "Module.fn" or "Module.fn.inner" *)
  display : string;
  npos : pos;
  arity : int; (* non-optional parameters *)
  body : t list;
}

type env = {
  file : string;
  modname : string; (* innermost enclosing module, for lock keys *)
  owner : string; (* enclosing node key, for nested definitions *)
  aliases : (string * string list) list ref;
  out : node list ref;
}

let pos_of env (loc : Location.t) =
  { Cldiag.file = env.file; line = loc.Location.loc_start.Lexing.pos_lnum }

(* Strip the "@line" uniquifiers nested-definition keys carry, for
   human-facing names. *)
let pretty key = Str.global_replace (Str.regexp "@[0-9]+") "" key

(* ------------------------------------------------------------------ *)
(* Names                                                               *)

let resolve env scope lid =
  match Longident.flatten lid with
  | [ x ] -> (
      match List.assoc_opt x scope with
      | Some "" | None -> x (* parameter or true primitive *)
      | Some key -> key)
  | comps -> (
      let comps =
        match comps with
        | m :: rest -> (
            match List.assoc_opt m !(env.aliases) with
            | Some expansion -> expansion @ rest
            | None -> comps)
        | [] -> comps
      in
      match List.rev comps with
      | f :: m :: _ -> m ^ "." ^ f
      | [ f ] -> f
      | [] -> "?")

(* The mutex expression behind Mutex.lock / Condition.wait: a variable,
   a record field ([t.shared.lock]) or an array slot ([pool.locks.(i)]).
   The key is the final name, qualified by the enclosing module. *)
let rec key_of_expr env (e : P.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
      Some (env.modname ^ ":" ^ Longident.last txt)
  | Pexp_field (_, { txt; _ }) -> Some (env.modname ^ ":" ^ Longident.last txt)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, a) :: _)
    when Longident.last txt = "get" || Longident.last txt = "unsafe_get" ->
      key_of_expr env a
  | Pexp_constraint (e, _) -> key_of_expr env e
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)

let rec arity_of (e : P.expression) =
  match e.pexp_desc with
  | Pexp_fun (Optional _, _, _, body) -> arity_of body
  | Pexp_fun (_, _, _, body) -> 1 + arity_of body
  | Pexp_newtype (_, body) -> arity_of body
  | Pexp_constraint (body, _) -> arity_of body
  | Pexp_function _ -> 1
  | _ -> 0

let pat_names p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it' pp ->
          (match pp.P.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it' pp);
    }
  in
  it.pat it p;
  !acc

let rec params_of (e : P.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, p, body) -> pat_names p @ params_of body
  | Pexp_newtype (_, body) -> params_of body
  | Pexp_constraint (body, _) -> params_of body
  | _ -> []

let var_name (p : P.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let is_raise name =
  match name with
  | "raise" | "raise_notrace" | "failwith" | "invalid_arg" | "Stdlib.raise"
  | "Stdlib.raise_notrace" | "Stdlib.failwith" | "Stdlib.invalid_arg" ->
      true
  | _ -> false

let nolabel_args args =
  List.filter_map
    (fun (lbl, a) ->
      match lbl with Asttypes.Nolabel -> Some a | _ -> None)
    args

(* ------------------------------------------------------------------ *)
(* Expression walk                                                     *)

let rec shapes env scope (e : P.expression) : t list =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
      apply env scope (resolve env scope txt) (pos_of env loc) args
  | Pexp_fun _ | Pexp_function _ ->
      (* A lambda in non-argument position: built now, run elsewhere in
         an unknown lock context. *)
      [ Defer (fun_body env scope e) ]
  | Pexp_let (rf, vbs, body) ->
      let fn_vbs, val_vbs =
        List.partition
          (fun vb -> arity_of vb.P.pvb_expr > 0 && var_name vb.P.pvb_pat <> None)
          vbs
      in
      (* Nested definitions are keyed with their definition line so two
         same-named locals (e.g. the pool and non-pool [wait] in
         Group.lookup_port) stay distinct in the call graph. *)
      let nested_key vb name =
        Printf.sprintf "%s.%s@%d" env.owner name
          (pos_of env vb.P.pvb_loc).line
      in
      let scope' =
        List.fold_left
          (fun sc vb ->
            match var_name vb.P.pvb_pat with
            | Some name -> (name, nested_key vb name) :: sc
            | None -> sc)
          scope fn_vbs
      in
      let def_scope =
        match rf with Asttypes.Recursive -> scope' | Nonrecursive -> scope
      in
      List.iter
        (fun vb ->
          match var_name vb.P.pvb_pat with
          | Some name ->
              emit_node env def_scope ~key:(nested_key vb name)
                ~display:(pretty env.owner ^ "." ^ name)
                vb.P.pvb_expr
          | None -> ())
        fn_vbs;
      let now =
        List.concat_map (fun vb -> shapes env def_scope vb.P.pvb_expr) val_vbs
      in
      now @ shapes env scope' body
  | Pexp_sequence (a, b) -> shapes env scope a @ shapes env scope b
  | Pexp_ifthenelse (c, t, eo) ->
      shapes env scope c
      @ [
          Branch
            [
              shapes env scope t;
              (match eo with Some e -> shapes env scope e | None -> []);
            ];
        ]
  | Pexp_match (scrut, cases) ->
      shapes env scope scrut @ [ Branch (List.map (case_shapes env scope) cases) ]
  | Pexp_try (body, cases) ->
      [ Branch (shapes env scope body :: List.map (case_shapes env scope) cases) ]
  | Pexp_while (c, b) ->
      shapes env scope c @ [ Branch [ shapes env scope b; [] ] ]
  | Pexp_for (_, a, b, _, body) ->
      shapes env scope a @ shapes env scope b
      @ [ Branch [ shapes env scope body; [] ] ]
  | _ ->
      (* Generic: concatenate the shapes of immediate sub-expressions. *)
      let acc = ref [] in
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ child -> acc := shapes env scope child :: !acc);
        }
      in
      Ast_iterator.default_iterator.expr it e;
      List.concat (List.rev !acc)

and case_shapes env scope (c : P.case) =
  (match c.pc_guard with Some g -> shapes env scope g | None -> [])
  @ shapes env scope c.pc_rhs

(* Body of a literal function, with its parameters shadowing the scope. *)
and fun_body env scope (e : P.expression) : t list =
  let scope = List.map (fun p -> (p, "")) (params_of e) @ scope in
  let rec strip (e : P.expression) =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, body) -> strip body
    | Pexp_newtype (_, body) -> strip body
    | Pexp_constraint (body, _) -> strip body
    | Pexp_function cases -> [ Branch (List.map (case_shapes env scope) cases) ]
    | _ -> shapes env scope e
  in
  strip e

and apply env scope name cpos args : t list =
  let positional = nolabel_args args in
  let arg_at n = List.nth_opt positional n in
  let walk_args ?(skip = []) () =
    List.concat_map
      (fun (_, a) ->
        if List.memq a skip then [] else shapes env scope a)
      args
  in
  match name with
  | "Mutex.lock" -> (
      match arg_at 0 with
      | Some m -> (
          match key_of_expr env m with
          | Some k -> [ Lock (k, cpos) ]
          | None -> [ Lock (env.modname ^ ":?", cpos) ])
      | None -> [])
  | "Mutex.unlock" -> (
      match arg_at 0 with
      | Some m -> (
          match key_of_expr env m with
          | Some k -> [ Unlock (k, cpos) ]
          | None -> [ Unlock (env.modname ^ ":?", cpos) ])
      | None -> [])
  | "Condition.wait" ->
      let key = Option.bind (arg_at 1) (key_of_expr env) in
      [ Cond_wait (key, cpos) ]
  | name when is_raise name -> walk_args () @ [ Raise cpos ]
  | _ ->
      let is_fun (a : P.expression) = arity_of a > 0 in
      let closures =
        List.filter_map
          (fun (_, a) -> if is_fun a then Some (fun_body env scope a) else None)
          args
      in
      let heads =
        List.filter_map
          (fun ((_, a) : Asttypes.arg_label * P.expression) ->
            match a.pexp_desc with
            | Pexp_ident { txt; _ } when not (is_fun a) -> (
                match resolve env scope txt with
                | n when String.contains n '.' -> Some n
                | _ -> None)
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
                match resolve env scope txt with
                | "" -> None
                | n when String.contains n '.' -> Some n
                | _ -> None)
            | _ -> None)
          args
      in
      let skip =
        List.filter_map (fun (_, a) -> if is_fun a then Some a else None) args
      in
      let before = walk_args ~skip () in
      before
      @ [
          Call
            {
              callee = name;
              cpos;
              applied =
                List.length
                  (List.filter
                     (fun ((lbl, _) : Asttypes.arg_label * P.expression) ->
                       match lbl with Optional _ -> false | _ -> true)
                     args);
              recv_key = Option.bind (arg_at 0) (key_of_expr env);
              closures;
              heads;
            };
        ]

and emit_node env scope ~key ~display (e : P.expression) =
  let env = { env with owner = key } in
  let body = fun_body env scope e in
  env.out :=
    {
      key;
      display;
      npos = pos_of env e.pexp_loc;
      arity = arity_of e;
      body;
    }
    :: !(env.out)

(* ------------------------------------------------------------------ *)
(* Structure walk                                                      *)

let rec unwrap_module (me : P.module_expr) =
  match me.pmod_desc with
  | Pmod_constraint (me, _) -> unwrap_module me
  | Pmod_functor (_, me) -> unwrap_module me
  | d -> d

let rec do_structure env scope (items : P.structure) =
  ignore (List.fold_left (do_item env) scope items)

and do_item env scope (item : P.structure_item) =
  match item.pstr_desc with
  | Pstr_value (rf, vbs) ->
      let scope' =
        List.fold_left
          (fun sc vb ->
            match var_name vb.P.pvb_pat with
            | Some name when arity_of vb.P.pvb_expr > 0 ->
                (name, env.modname ^ "." ^ name) :: sc
            | _ -> sc)
          scope vbs
      in
      let def_scope =
        match rf with Asttypes.Recursive -> scope' | Nonrecursive -> scope
      in
      List.iter
        (fun vb ->
          match var_name vb.P.pvb_pat with
          | Some name when arity_of vb.P.pvb_expr > 0 ->
              emit_node env def_scope
                ~key:(env.modname ^ "." ^ name)
                ~display:(env.modname ^ "." ^ name)
                vb.P.pvb_expr
          | _ ->
              (* Top-level effectful binding: runs at module init. *)
              let line = (pos_of env vb.P.pvb_loc).line in
              let key = Printf.sprintf "%s._init%d" env.modname line in
              env.out :=
                {
                  key;
                  display = env.modname ^ " (module init)";
                  npos = pos_of env vb.P.pvb_loc;
                  arity = 0;
                  body = shapes { env with owner = key } def_scope vb.P.pvb_expr;
                }
                :: !(env.out))
        vbs;
      scope'
  | Pstr_eval (e, _) ->
      let line = (pos_of env item.pstr_loc).line in
      let key = Printf.sprintf "%s._init%d" env.modname line in
      env.out :=
        {
          key;
          display = env.modname ^ " (module init)";
          npos = pos_of env item.pstr_loc;
          arity = 0;
          body = shapes { env with owner = key } scope e;
        }
        :: !(env.out);
      scope
  | Pstr_module mb ->
      do_module env scope mb;
      scope
  | Pstr_recmodule mbs ->
      List.iter (do_module env scope) mbs;
      scope
  | _ -> scope

and do_module env scope (mb : P.module_binding) =
  let name = match mb.pmb_name.txt with Some n -> n | None -> "_" in
  match unwrap_module mb.pmb_expr with
  | Pmod_ident { txt; _ } ->
      env.aliases := (name, Longident.flatten txt) :: !(env.aliases)
  | Pmod_structure items ->
      do_structure { env with modname = name } scope items
  | _ -> ()

(* ------------------------------------------------------------------ *)

exception Parse_error of Cldiag.pos * string

let of_file path : node list =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      let ast =
        try Parse.implementation lexbuf
        with exn ->
          let line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum in
          let msg =
            match exn with
            | Syntaxerr.Error _ -> "syntax error"
            | e -> Printexc.to_string e
          in
          raise (Parse_error ({ file = path; line }, msg))
      in
      let modname =
        String.capitalize_ascii
          (Filename.remove_extension (Filename.basename path))
      in
      let env =
        { file = path; modname; owner = modname; aliases = ref []; out = ref [] }
      in
      do_structure env [] ast;
      List.rev !(env.out))
