(* Inter-module effect propagation over the shape IR.

   Seeds a may-suspend set from known roots (Sched.suspend, Event.wait,
   the Port park paths, Group.lookup_port, Sema.acquire, Condition.wait,
   raw Domain.join) and propagates it transitively over the call graph.
   Condition waits are tracked separately with the mutex they wait on:
   a CV wait under its *own* mutex is the correct monitor idiom and is
   only a hazard when some other lock is also held.  Spawned closures
   (Domain.spawn, Sched.fork, spawn_task) run detached, so their effects
   do not flow into the spawning function; they become entries of their
   own, remembered with the context (fiber or domain) they run in. *)

module SS = Set.Make (String)

(* Fiber-suspension roots for CL001.  Sleeps and blocking reads are
   deliberately absent: they stall the calling thread but release
   nothing to an idle worker, so under a lock they are a latency bug,
   not the lost-lock deadlock CL001 proves; they are CL003's concern
   when reachable from fiber context. *)
let hard_roots =
  SS.of_list
    [
      "Sched.suspend";
      "Sched.await";
      "Event.wait";
      "Port.send";
      "Port.receive";
      "Port.receive_from";
      "Group.lookup_port";
      "Sema.acquire";
      "Domain.join";
    ]

(* Socket and file-descriptor calls joined the set with the network
   subsystem: a fiber that blocks in [Unix.read] on a socket stalls its
   pool worker exactly as a sleep does.  Dedicated transport domains
   (net feeders, serve handler threads) are [Domain_ctx] and exempt;
   sites that block deliberately carry [(* conclint: allow CL003 *)]. *)
let blocking_roots =
  SS.of_list
    [
      "Unix.sleep";
      "Unix.sleepf";
      "Unix.select";
      "Thread.delay";
      "Domain.join";
      "Unix.read";
      "Unix.write";
      "Unix.connect";
      "Unix.accept";
    ]

type spawn_ctx = Fiber | Domain_ctx

let spawn_ctx name =
  let last =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  match name with
  | "Sched.fork" -> Some Fiber
  | "Domain.spawn" | "Thread.create" -> Some Domain_ctx
  | _ -> if last = "spawn_task" then Some Fiber else None

(* Higher-order combinators that call their function arguments
   synchronously: a bare function ident passed to one of these counts as
   a call from the enclosing function. *)
let sync_hofs =
  SS.of_list
    [
      "Fun.protect";
      "List.iter";
      "List.iteri";
      "List.map";
      "List.concat_map";
      "List.filter_map";
      "List.fold_left";
      "List.for_all";
      "List.exists";
      "Array.iter";
      "Array.iteri";
      "Array.map";
      "Option.iter";
      "Option.map";
      "Option.fold";
      "Queue.iter";
      "Hashtbl.iter";
      "Seq.iter";
      "Seq.map";
    ]

(* Why a node may suspend (or block): the offending callee/root and the
   call site.  Chains are reconstructed by following [why] through the
   table until a root is reached. *)
type why = { what : string; wpos : Cldiag.pos }

type info = {
  node : Shape.node;
  mutable calls : (string * int * Cldiag.pos) list; (* callee, applied, pos *)
  mutable cv : SS.t; (* mutexes transitively CV-waited on *)
  mutable unknown_cv : bool; (* some CV wait key unresolvable *)
  mutable acquires : SS.t; (* locks transitively acquired *)
  mutable hard : why option; (* non-CV suspension reachable *)
  mutable blocking : why option; (* L3 blocking root reachable *)
}

type entry = {
  e_ctx : spawn_ctx;
  e_owner : string; (* node containing the spawn site *)
  e_pos : Cldiag.pos;
  e_target : string option; (* named function spawned, if not a literal *)
  e_body : Shape.t list; (* literal closure body, else [] *)
}

type table = {
  nodes : (string, info) Hashtbl.t;
  wrappers : (string, string) Hashtbl.t; (* with_lock-style node -> lock key *)
  entries : entry list;
}

let wrapper_name key =
  let last =
    match String.rindex_opt key '.' with
    | Some i -> String.sub key (i + 1) (String.length key - i - 1)
    | None -> key
  in
  last = "locked" || last = "with_lock"

let is_wrapper t callee = Hashtbl.mem t.wrappers callee

(* Direct (synchronously executed) facts of a shape list: spawned
   closures excluded, deferred lambdas excluded, inline closures of
   ordinary calls included. *)
let scan_direct info shapes =
  let rec go = function
    | Shape.Lock (k, _) -> info.acquires <- SS.add k info.acquires
    | Unlock _ -> ()
    | Cond_wait (Some k, _) -> info.cv <- SS.add k info.cv
    | Cond_wait (None, _) -> info.unknown_cv <- true
    | Raise _ -> ()
    | Branch alts -> List.iter (List.iter go) alts
    | Defer _ -> ()
    | Call c ->
        if spawn_ctx c.callee = None then begin
          info.calls <- (c.callee, c.applied, c.cpos) :: info.calls;
          if c.callee = "Mutex.protect" then
            Option.iter
              (fun k -> info.acquires <- SS.add k info.acquires)
              c.recv_key;
          List.iter (List.iter go) c.closures;
          if SS.mem c.callee sync_hofs then
            List.iter
              (fun h -> info.calls <- (h, -1, c.cpos) :: info.calls)
              c.heads
        end
  in
  List.iter go shapes

(* Collect spawn sites anywhere in a shape tree (including inside
   branches, deferred lambdas and inline closures). *)
let collect_entries owner shapes =
  let acc = ref [] in
  let rec go = function
    | Shape.Lock _ | Unlock _ | Cond_wait _ | Raise _ -> ()
    | Branch alts -> List.iter (List.iter go) alts
    | Defer body -> List.iter go body
    | Call c -> (
        List.iter (List.iter go) c.closures;
        match spawn_ctx c.callee with
        | None -> ()
        | Some ctx ->
            List.iter
              (fun body ->
                acc :=
                  {
                    e_ctx = ctx;
                    e_owner = owner;
                    e_pos = c.cpos;
                    e_target = None;
                    e_body = body;
                  }
                  :: !acc)
              c.closures;
            List.iter
              (fun h ->
                acc :=
                  {
                    e_ctx = ctx;
                    e_owner = owner;
                    e_pos = c.cpos;
                    e_target = Some h;
                    e_body = [];
                  }
                  :: !acc)
              c.heads)
  in
  List.iter go shapes;
  !acc

(* A call is real (not a partial application) when the site saturates
   the callee's non-optional parameters; heads recorded from HOF
   arguments use applied = -1, meaning "saturated by the combinator". *)
let saturated t callee applied =
  applied = -1
  ||
  match Hashtbl.find_opt t.nodes callee with
  | Some m -> applied >= m.node.arity
  | None -> true

let build (nodes : Shape.node list) : table =
  let t =
    {
      nodes = Hashtbl.create 256;
      wrappers = Hashtbl.create 8;
      entries = [];
    }
  in
  List.iter
    (fun (n : Shape.node) ->
      let info =
        {
          node = n;
          calls = [];
          cv = SS.empty;
          unknown_cv = false;
          acquires = SS.empty;
          hard = None;
          blocking = None;
        }
      in
      scan_direct info n.body;
      Hashtbl.replace t.nodes n.key info)
    nodes;
  (* Wrapper detection: a [locked] / [with_lock] function whose body
     opens with a Mutex.lock is treated like Mutex.protect at call
     sites: its closure argument runs under that lock. *)
  Hashtbl.iter
    (fun key info ->
      if wrapper_name key then
        match info.node.body with
        | Shape.Lock (k, _) :: _ -> Hashtbl.replace t.wrappers key k
        | _ -> ())
    t.nodes;
  let entries =
    List.concat_map (fun (n : Shape.node) -> collect_entries n.key n.body) nodes
  in
  (* Fixpoint: propagate hard-suspend, CV keys and acquired locks over
     saturated call edges. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ info ->
        List.iter
          (fun (callee, applied, pos) ->
            if SS.mem callee hard_roots then begin
              if info.hard = None then begin
                info.hard <- Some { what = callee; wpos = pos };
                changed := true
              end;
              if SS.mem callee blocking_roots && info.blocking = None then begin
                info.blocking <- Some { what = callee; wpos = pos };
                changed := true
              end
            end
            else
              match Hashtbl.find_opt t.nodes callee with
              | Some m when saturated t callee applied ->
                  if m.hard <> None && info.hard = None then begin
                    info.hard <- Some { what = callee; wpos = pos };
                    changed := true
                  end;
                  if m.blocking <> None && info.blocking = None then begin
                    info.blocking <- Some { what = callee; wpos = pos };
                    changed := true
                  end;
                  if not (SS.subset m.cv info.cv) then begin
                    info.cv <- SS.union info.cv m.cv;
                    changed := true
                  end;
                  if m.unknown_cv && not info.unknown_cv then begin
                    info.unknown_cv <- true;
                    changed := true
                  end;
                  if not (SS.subset m.acquires info.acquires) then begin
                    info.acquires <- SS.union info.acquires m.acquires;
                    changed := true
                  end
              | _ -> ())
          info.calls)
      t.nodes
  done;
  { t with entries }

(* Render the call chain explaining why [key] may suspend/block: follow
   the recorded [why] links from node to node until a root is reached. *)
let chain_gen t get root_label key =
  let buf = ref [] in
  let seen = Hashtbl.create 8 in
  let rec go key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      match Hashtbl.find_opt t.nodes key with
      | Some m -> (
          match get m with
          | Some next ->
              buf :=
                Printf.sprintf "%s calls %s (%s:%d)" (Shape.pretty key)
                  (Shape.pretty next.what) next.wpos.file next.wpos.line
                :: !buf;
              go next.what
          | None -> ())
      | None ->
          buf :=
            Printf.sprintf "%s is a %s root" (Shape.pretty key) root_label
            :: !buf
    end
  in
  go key;
  List.rev !buf

let chain t key = chain_gen t (fun m -> m.hard) "may-suspend" key
let chain_blocking t key = chain_gen t (fun m -> m.blocking) "blocking" key
