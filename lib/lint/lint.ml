(* conclint driver: load sources, run the rules, apply allowlist
   markers.

   A marker comment [(* conclint: allow CL001 -- reason *)] on the
   offending line or up to three lines above it (so the reason can be
   spelled out across a comment block) suppresses that code at that
   site.  Markers are scanned from the raw text so they work even
   inside code the parser normalizes. *)

let marker_re = Str.regexp ".*conclint: *allow +\\(CL[0-9]+\\)"

type allow = { a_file : string; a_line : int; a_code : string }

let scan_allows path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let acc = ref [] in
      let line = ref 0 in
      (try
         while true do
           let l = input_line ic in
           incr line;
           if Str.string_match marker_re l 0 then
             acc :=
               { a_file = path; a_line = !line; a_code = Str.matched_group 1 l }
               :: !acc
         done
       with End_of_file -> ());
      !acc)

let allowed allows (d : Cldiag.t) =
  List.exists
    (fun a ->
      a.a_file = d.pos.file && a.a_code = d.code
      && a.a_line <= d.pos.line
      && a.a_line >= d.pos.line - 3)
    allows

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry -> ml_files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let run_files files : Cldiag.t list =
  let nodes, parse_errors =
    List.fold_left
      (fun (nodes, errs) file ->
        try (nodes @ Shape.of_file file, errs)
        with Shape.Parse_error (pos, msg) ->
          ( nodes,
            Cldiag.v ~code:"CL000" ~slug:"parse-error" ~pos msg :: errs ))
      ([], []) files
  in
  let table = Effects.build nodes in
  let diags = Rules.run table @ parse_errors in
  let allows = List.concat_map scan_allows files in
  diags
  |> List.filter (fun d -> not (allowed allows d))
  |> List.sort_uniq Cldiag.compare

let run_paths paths : Cldiag.t list =
  run_files (List.concat_map ml_files paths)
