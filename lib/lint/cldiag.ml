(* Diagnostics for conclint, the source-level concurrency linter.

   Codes are stable so CI can grep them:
     CL000  parse-error          (a source file failed to parse)
     CL001  suspend-under-lock   (may-suspend call inside a held-mutex region)
     CL002  lock-order-cycle     (inconsistent lock acquisition order: ABBA)
     CL003  blocking-in-fiber    (blocking primitive reachable from fiber context) *)

type pos = { file : string; line : int }

type t = {
  code : string;
  slug : string;
  pos : pos;
  message : string;
  chain : string list; (* rendered call-chain lines, caller first *)
}

let v ~code ~slug ~pos ?(chain = []) message =
  { code; slug; pos; message; chain }

let compare a b =
  match String.compare a.pos.file b.pos.file with
  | 0 -> (
      match Int.compare a.pos.line b.pos.line with
      | 0 -> (
          match String.compare a.code b.code with
          | 0 -> String.compare a.message b.message
          | c -> c)
      | c -> c)
  | c -> c

let to_string d =
  let head =
    Printf.sprintf "%s:%d: error[%s %s] %s" d.pos.file d.pos.line d.code d.slug
      d.message
  in
  String.concat "\n" (head :: List.map (fun c -> "    " ^ c) d.chain)
