(** The multi-query runtime: an admission gate over a scheduler.

    A {!t} runs submitted jobs (arbitrary closures — in practice compiled
    query plans) on its scheduler, with at most [max_concurrent] executing
    at once; excess submissions wait in FIFO order.  Each job supports
    cancellation and an optional deadline, both delivered through the
    job's [on_cancel] hook — for queries, the hook poisons the plan's root
    cancellation scope, riding the exchange poison/cancel chain, so a
    cancelled query surfaces as [Query_failed] at its consumer. *)

type t

val create : ?max_concurrent:int -> Sched.t -> t
(** Default [max_concurrent]: the scheduler's worker count (or 4 on the
    dedicated scheduler).  Raises [Invalid_argument] if [< 1]. *)

val sched : t -> Sched.t
val max_concurrent : t -> int

exception Cancelled
(** The reason passed to [on_cancel] (and recorded as the job's error) by
    {!cancel}. *)

exception Deadline_exceeded
(** Likewise for a job whose [deadline_s] expired. *)

type 'a job

type status =
  | Queued  (** admitted, waiting for a slot *)
  | Running
  | Finished  (** completed normally *)
  | Failed  (** its closure raised *)
  | Aborted  (** cancelled or deadline-expired *)

val submit :
  t ->
  ?deadline_s:float ->
  ?label:string ->
  ?on_cancel:(exn -> unit) ->
  (unit -> 'a) ->
  'a job
(** Enqueue a job.  [on_cancel reason] is invoked (at most once) when the
    job is cancelled {e while running}; a job cancelled while still queued
    never runs and never sees the hook.  [deadline_s] is relative to
    submission; expiry cancels with {!Deadline_exceeded}.  Raises
    [Invalid_argument] after {!close}. *)

val await : 'a job -> ('a, exn) result
(** Wait for the job's terminal state.  Pool fibers suspend; other
    callers park their domain.  A job cancelled while queued yields
    [Error Cancelled] (or [Error Deadline_exceeded]) without running. *)

val cancel : 'a job -> unit
(** Request cancellation with reason {!Cancelled}.  No-op on a job
    already in a terminal state.  Note the job's own failure wins the
    race: a running job that raises before observing the cancellation
    records what it raised. *)

val status : 'a job -> status
val label : 'a job -> string

val running : t -> int
(** Jobs currently holding an execution slot. *)

val queued : t -> int
(** Jobs admitted but not yet started. *)

val close : t -> unit
(** Drain: wait until every submitted job reaches a terminal state, then
    stop the deadline timer.  Further {!submit}s raise; {!await} on
    finished jobs keeps working.  Idempotent. *)
