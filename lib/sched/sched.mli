(** The pooled domain scheduler.

    The paper forks a fresh process per producer (section 4.1); the first
    port of that idea spawned an OCaml domain per producer, which caps out
    quickly — domains are an OS-level resource whose creation cost
    dominates short queries.  This module replaces spawn-per-producer with
    a fixed pool of worker domains (sized to the host, overridable) running
    tasks from per-worker FIFO run queues with work stealing.

    {2 Task model}

    A task is a closure.  [fork] enqueues it and returns a handle; [await]
    blocks until it completes and returns its result (or the exception it
    died with).  Tasks run as {e fibers} under an effect handler: a task
    that must wait for another task's progress — a full flow-control ring,
    an unpublished port, an unfired event — performs {!suspend} and gives
    its worker back to the pool instead of occupying a domain.  The waker
    it registers is resumed on whatever worker is free, so a pool of [W]
    workers executes arbitrarily deep producer trees without deadlock:
    blocking edges between tasks are suspension points, never parked
    domains.

    Waits that are not task-shaped (page I/O, buffer-pool frame waits)
    still block the worker; the default pool size keeps a floor of 4
    workers so such waits cannot starve the pool on small hosts.

    {2 Modes}

    A scheduler handle is either a pool or the {e dedicated} scheduler,
    which runs every task on a freshly spawned domain — the paper's
    original fork-per-producer behavior, kept as the measured baseline for
    the concurrent-query bench and for A/B experiments
    ([VOLCANO_SCHED=dedicated]). *)

type t

val create : ?workers:int -> unit -> t
(** A new pool of [workers] domains (default: see {!default_workers}).
    Raises [Invalid_argument] if [workers < 1]. *)

val dedicated : unit -> t
(** The spawn-a-domain-per-task scheduler (baseline; no pool). *)

val default : unit -> t
(** The process-wide scheduler, created on first use: a pool of
    {!default_workers} domains, or the dedicated scheduler when
    [VOLCANO_SCHED=dedicated]. *)

val default_workers : unit -> int
(** [VOLCANO_WORKERS] if set, else
    [max 4 (Domain.recommended_domain_count ())].  The floor of 4 keeps
    non-suspending waits (I/O, buffer-pool) from starving single-core
    hosts. *)

val is_pool : t -> bool
val workers : t -> int
(** Pool size; 0 for the dedicated scheduler. *)

val shutdown : t -> unit
(** Stop and join the pool's workers.  Call only when quiescent (no live
    or queued tasks); the process-wide {!default} pool is normally left
    running.  No-op on the dedicated scheduler and on a pool already shut
    down. *)

(** {2 Tasks} *)

type 'a task

val fork : t -> (unit -> 'a) -> 'a task
(** Submit a closure; returns immediately. *)

val await : 'a task -> ('a, exn) result
(** Wait for the task: suspends when called from a pool fiber, parks the
    calling domain otherwise.  On the dedicated scheduler the task's
    domain is also joined.  May be called more than once. *)

(** {2 Suspension} *)

val on_pool : unit -> bool
(** Whether the calling code runs inside a pool fiber (and may therefore
    {!suspend}).  False on plain domains and on dedicated-mode tasks. *)

val suspend : ((unit -> unit) -> bool) -> unit
(** [suspend register] yields the current fiber.  The handler calls
    [register wake] with a thunk that re-enqueues the fiber; [register]
    must store [wake] where the awaited event's signaling path will find
    it and return [true], or return [false] if the event already happened
    (the fiber is then resumed immediately).  [wake] is idempotent — at
    most one resumption happens no matter how many paths invoke it — so
    registrations may be left behind in wake lists; spurious wakes are
    harmless provided the caller re-checks its condition in a loop.
    Raises [Invalid_argument] when called outside a pool fiber. *)

(** One-shot broadcast gate: [wait] returns once [fire] has been called.
    Waiting from a pool fiber suspends; from anywhere else it parks the
    domain.  Replaces the close-permission semaphore of the exchange
    teardown protocol. *)
module Event : sig
  type t

  val create : unit -> t
  val fired : t -> bool
  val fire : t -> unit
  val wait : t -> unit
end

(** {2 Introspection} *)

type stats = {
  pool_workers : int;
  submitted : int;  (** tasks forked *)
  completed : int;  (** tasks whose fiber ran to completion *)
  stolen : int;  (** tasks taken from another worker's queue *)
  suspensions : int;  (** times a fiber yielded its worker *)
  resumptions : int;  (** suspended fibers re-enqueued *)
  peak_queue_depth : int;  (** deepest any single run queue has been *)
}

val stats : t -> stats

val live_tasks : t -> int
(** [submitted - completed]: forked tasks not yet run to completion. *)

val suspended_tasks : t -> int
(** [suspensions - resumptions]: fibers currently parked off-worker. *)

val task_latency_percentile : t -> float -> float
(** Percentile (p in [0, 1]) of fork-to-start task latencies, seconds,
    over a bounded reservoir of all tasks so far.  0 on the dedicated
    scheduler. *)

val register_obs : ?since:stats -> t -> Volcano_obs.Obs.t -> unit
(** Publish scheduler metrics into an observability sink: counters
    [sched.tasks]/[sched.steals]/[sched.suspensions], gauges
    [sched.workers]/[sched.peak_queue_depth], and the task-latency
    histogram [sched.task_latency_s] (p50/p95 of the latency reservoir).
    With [since] (an earlier {!stats} snapshot), counters report the
    delta, scoping the report to one run on a long-lived pool.
    Registering a disabled sink detaches the previous histogram. *)

val assert_quiescent : ?what:string -> t -> unit
(** Raise [Failure] unless every forked task has completed and no fiber
    is suspended — the scheduler analogue of the exchange domain-counter
    teardown assertion.  Allows a short grace period for in-flight
    completion bookkeeping to settle.  Call from test teardowns. *)
