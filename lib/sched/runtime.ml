module Clock = Volcano_util.Clock
module Binheap = Volcano_util.Binheap

exception Cancelled
exception Deadline_exceeded

let () =
  Printexc.register_printer (function
    | Cancelled -> Some "Volcano_sched.Runtime.Cancelled"
    | Deadline_exceeded -> Some "Volcano_sched.Runtime.Deadline_exceeded"
    | _ -> None)

type status = Queued | Running | Finished | Failed | Aborted

(* Jobs are heterogeneous ('a differs), so the admission queue holds
   monomorphic entries of closures over their job. *)
type entry = {
  e_skip : unit -> bool; (* true: terminal already (cancelled while queued) *)
  e_launch : unit -> unit; (* fork the fiber; an execution slot is held *)
}

(* Deadlines poll: stdlib [Condition] has no timed wait, so an on-demand
   timer domain sleeps toward the earliest due time in <= 10 ms slices
   and fires expiries.  Fire thunks are idempotent cancel requests, so a
   job that finished first makes its expiry a no-op. *)
type timer = {
  tm_lock : Mutex.t;
  tm_cond : Condition.t;
  tm_heap : (float * (unit -> unit)) Binheap.t;
  mutable tm_stop : bool;
  mutable tm_domain : unit Domain.t option;
}

type t = {
  rt_sched : Sched.t;
  rt_max : int;
  lock : Mutex.t;
  quiet : Condition.t; (* signaled when [active] drops to 0 *)
  pending : entry Queue.t;
  mutable running : int;
  mutable active : int; (* submitted jobs not yet fully retired *)
  mutable shut : bool;
  timer : timer;
}

type 'a job = {
  j_label : string;
  j_lock : Mutex.t;
  mutable j_state : [ `Queued | `Running | `Done of ('a, exn) result ];
  mutable j_cancel : exn option; (* first cancellation reason, if any *)
  j_on_cancel : exn -> unit;
  j_done : Sched.Event.t;
}

let create ?max_concurrent sched =
  let default = match Sched.workers sched with 0 -> 4 | w -> w in
  let max_c = Option.value max_concurrent ~default in
  if max_c < 1 then
    invalid_arg "Runtime.create: max_concurrent must be positive";
  {
    rt_sched = sched;
    rt_max = max_c;
    lock = Mutex.create ();
    quiet = Condition.create ();
    pending = Queue.create ();
    running = 0;
    active = 0;
    shut = false;
    timer =
      {
        tm_lock = Mutex.create ();
        tm_cond = Condition.create ();
        tm_heap = Binheap.create ~cmp:(fun (a, _) (b, _) -> Float.compare a b);
        tm_stop = false;
        tm_domain = None;
      };
  }

let sched t = t.rt_sched
let max_concurrent t = t.rt_max
let label j = j.j_label

let status j =
  Mutex.lock j.j_lock;
  let s =
    match (j.j_state, j.j_cancel) with
    | `Queued, _ -> Queued
    | `Running, _ -> Running
    | `Done (Ok _), _ -> Finished
    | `Done (Error _), Some _ -> Aborted
    | `Done (Error _), None -> Failed
  in
  Mutex.unlock j.j_lock;
  s

(* ------------------------------------------------------------------ *)
(* Timer                                                               *)

let rec timer_loop tm () =
  Mutex.lock tm.tm_lock;
  if tm.tm_stop then Mutex.unlock tm.tm_lock
  else
    match Binheap.peek tm.tm_heap with
    | None ->
        Condition.wait tm.tm_cond tm.tm_lock;
        Mutex.unlock tm.tm_lock;
        timer_loop tm ()
    | Some (due, _) ->
        let now = Clock.now () in
        if due <= now then begin
          let _, fire = Binheap.pop_exn tm.tm_heap in
          Mutex.unlock tm.tm_lock;
          (try fire () with _ -> ());
          timer_loop tm ()
        end
        else begin
          Mutex.unlock tm.tm_lock;
          Unix.sleepf (Float.min (due -. now) 0.01);
          timer_loop tm ()
        end

let timer_schedule tm ~due fire =
  Mutex.lock tm.tm_lock;
  Binheap.push tm.tm_heap (due, fire);
  if Option.is_none tm.tm_domain then
    tm.tm_domain <- Some (Domain.spawn (timer_loop tm));
  Condition.signal tm.tm_cond;
  Mutex.unlock tm.tm_lock

let timer_stop tm =
  Mutex.lock tm.tm_lock;
  tm.tm_stop <- true;
  Condition.signal tm.tm_cond;
  let dom = tm.tm_domain in
  tm.tm_domain <- None;
  Mutex.unlock tm.tm_lock;
  match dom with Some d -> Domain.join d | None -> ()

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

(* Launch queued entries into free slots.  Lock order: [t.lock] above
   [j_lock] (e_skip peeks job state); forks happen outside both. *)
let pump t =
  Mutex.lock t.lock;
  let launches = ref [] in
  let retired = ref 0 in
  let rec fill () =
    if t.running < t.rt_max then
      match Queue.take_opt t.pending with
      | None -> ()
      | Some e ->
          if e.e_skip () then begin
            (* Cancelled while queued: terminal without ever holding a
               slot; retire it here. *)
            incr retired;
            fill ()
          end
          else begin
            t.running <- t.running + 1;
            launches := e.e_launch :: !launches;
            fill ()
          end
  in
  fill ();
  t.active <- t.active - !retired;
  if t.active = 0 then Condition.broadcast t.quiet;
  Mutex.unlock t.lock;
  List.iter (fun launch -> launch ()) !launches

let release_slot t =
  Mutex.lock t.lock;
  t.running <- t.running - 1;
  t.active <- t.active - 1;
  if t.active = 0 then Condition.broadcast t.quiet;
  Mutex.unlock t.lock;
  pump t

(* ------------------------------------------------------------------ *)
(* Jobs                                                                *)

let cancel_with j reason =
  Mutex.lock j.j_lock;
  let action =
    match (j.j_state, j.j_cancel) with
    | `Done _, _ | _, Some _ -> `Nothing
    | `Queued, None ->
        j.j_cancel <- Some reason;
        j.j_state <- `Done (Error reason);
        `Fire
    | `Running, None ->
        j.j_cancel <- Some reason;
        `Hook
  in
  Mutex.unlock j.j_lock;
  match action with
  | `Fire -> Sched.Event.fire j.j_done
  | `Hook -> ( try j.j_on_cancel reason with _ -> ())
  | `Nothing -> ()

let cancel j = cancel_with j Cancelled

let run_job t j run () =
  let proceed =
    Mutex.lock j.j_lock;
    let p =
      match j.j_state with
      | `Queued -> (
          match j.j_cancel with
          | Some _ ->
              (* Cancelled between admission and fiber start. *)
              j.j_state <- `Done (Error (Option.get j.j_cancel));
              false
          | None ->
              j.j_state <- `Running;
              true)
      | `Running | `Done _ -> false
    in
    Mutex.unlock j.j_lock;
    p
  in
  if proceed then begin
    let result = try Ok (run ()) with exn -> Error exn in
    Mutex.lock j.j_lock;
    j.j_state <- `Done result;
    Mutex.unlock j.j_lock
  end;
  (* Release before firing: an awaiter that proceeds to tear the world
     down must find the slot free and the queue pumped. *)
  release_slot t;
  Sched.Event.fire j.j_done

let submit t ?deadline_s ?(label = "") ?(on_cancel = fun _ -> ()) run =
  let j =
    {
      j_label = label;
      j_lock = Mutex.create ();
      j_state = `Queued;
      j_cancel = None;
      j_on_cancel = on_cancel;
      j_done = Sched.Event.create ();
    }
  in
  let entry =
    {
      e_skip =
        (fun () ->
          Mutex.lock j.j_lock;
          let terminal =
            match j.j_state with `Done _ -> true | `Queued | `Running -> false
          in
          Mutex.unlock j.j_lock;
          terminal);
      e_launch =
        (fun () -> ignore (Sched.fork t.rt_sched (run_job t j run) : _ Sched.task));
    }
  in
  Mutex.lock t.lock;
  if t.shut then begin
    Mutex.unlock t.lock;
    invalid_arg "Runtime.submit: runtime is closed"
  end;
  t.active <- t.active + 1;
  Queue.push entry t.pending;
  Mutex.unlock t.lock;
  (match deadline_s with
  | Some d ->
      timer_schedule t.timer
        ~due:(Clock.now () +. d)
        (fun () -> cancel_with j Deadline_exceeded)
  | None -> ());
  pump t;
  j

let await j =
  Sched.Event.wait j.j_done;
  Mutex.lock j.j_lock;
  let r =
    match j.j_state with
    | `Done r -> r
    | `Queued | `Running -> assert false
  in
  Mutex.unlock j.j_lock;
  r

let running t =
  Mutex.lock t.lock;
  let n = t.running in
  Mutex.unlock t.lock;
  n

let queued t =
  Mutex.lock t.lock;
  let n = Queue.length t.pending in
  Mutex.unlock t.lock;
  n

let close t =
  Mutex.lock t.lock;
  t.shut <- true;
  Mutex.unlock t.lock;
  (* Anything still queued and not yet cancelled gets to run; pump in
     case no running job remains to trigger the next launch. *)
  pump t;
  Mutex.lock t.lock;
  while t.active > 0 do
    Condition.wait t.quiet t.lock
  done;
  Mutex.unlock t.lock;
  timer_stop t.timer
