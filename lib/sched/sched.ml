module Clock = Volcano_util.Clock
module Statx = Volcano_util.Stats
module Obs = Volcano_obs.Obs

(* A task is a closure; a worker is a domain looping over jobs.  A job is
   either "start this task's fiber" or "resume this suspended fiber" —
   both are plain [unit -> unit] thunks by the time they reach a queue.

   Fibers run under a deep effect handler.  Performing [Suspend] unwinds
   the fiber off its worker; the handler hands an idempotent wake thunk to
   the suspender's [register] callback, which parks it wherever the
   awaited event will fire (a lane's waker slot, a port sink, a group's
   publish list, an event's waker list).  Waking re-enqueues the
   continuation as an ordinary job, so the fiber resumes on whichever
   worker is free — the deep handler travels with the continuation, so
   later suspensions of the same fiber are handled identically. *)

type job = unit -> unit

type pool = {
  p_size : int;
  queues : job Queue.t array; (* one FIFO run queue per worker *)
  locks : Mutex.t array;
  idle_lock : Mutex.t;
  idle : Condition.t; (* workers with nothing to run park here *)
  mutable idlers : int;
  mutable stopping : bool;
  pending : int Atomic.t; (* jobs enqueued and not yet dequeued *)
  rr : int Atomic.t; (* queue choice for off-pool submitters *)
  submitted : int Atomic.t;
  completed : int Atomic.t;
  stolen : int Atomic.t;
  suspensions : int Atomic.t;
  resumptions : int Atomic.t;
  peak_queue : int Atomic.t;
  lat_lock : Mutex.t;
  lat : Statx.t; (* fork-to-start latency reservoir *)
  mutable lat_sink : Obs.Histogram.t option; (* under [lat_lock] *)
  mutable domains : unit Domain.t array;
}

type ded = { d_submitted : int Atomic.t; d_completed : int Atomic.t }
type t = Pool of pool | Dedicated of ded

type 'a task = {
  t_lock : Mutex.t;
  t_done : Condition.t;
  mutable t_result : ('a, exn) result option;
  mutable t_wakers : (unit -> unit) list;
  mutable t_domain : unit Domain.t option; (* dedicated mode only *)
}

type _ Effect.t += Suspend : ((unit -> unit) -> bool) -> unit Effect.t

(* Which pool (and which of its workers) the calling domain belongs to. *)
let dls_key : (pool * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let on_pool () = Option.is_some (Domain.DLS.get dls_key)

let suspend register =
  if on_pool () then Effect.perform (Suspend register)
  else invalid_arg "Sched.suspend: not inside a pool fiber"

(* ------------------------------------------------------------------ *)
(* Run queues                                                          *)

let bump_peak pool depth =
  let rec go () =
    let cur = Atomic.get pool.peak_queue in
    if depth > cur && not (Atomic.compare_and_set pool.peak_queue cur depth)
    then go ()
  in
  go ()

(* A worker enqueues to its own queue (locality: a resumed fiber's state
   is warm where its waker ran); everyone else round-robins. *)
let enqueue pool job =
  let i =
    match Domain.DLS.get dls_key with
    | Some (p, me) when p == pool -> me
    | _ -> Atomic.fetch_and_add pool.rr 1 mod pool.p_size
  in
  Atomic.incr pool.pending;
  Mutex.lock pool.locks.(i);
  Queue.push job pool.queues.(i);
  let depth = Queue.length pool.queues.(i) in
  Mutex.unlock pool.locks.(i);
  bump_peak pool depth;
  Mutex.lock pool.idle_lock;
  if pool.idlers > 0 then Condition.signal pool.idle;
  Mutex.unlock pool.idle_lock

let take pool i =
  Mutex.lock pool.locks.(i);
  let job = Queue.take_opt pool.queues.(i) in
  Mutex.unlock pool.locks.(i);
  if Option.is_some job then Atomic.decr pool.pending;
  job

(* ------------------------------------------------------------------ *)
(* Fibers                                                              *)

let exec_fiber pool (body : unit -> unit) =
  let open Effect.Deep in
  match_with body ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Atomic.incr pool.suspensions;
                  let resumed = Atomic.make false in
                  let wake () =
                    (* Idempotent: the first caller wins, so a waker may
                       sit in several wake lists (and race shutdown
                       broadcasts) without double-resuming the fiber. *)
                    if not (Atomic.exchange resumed true) then begin
                      Atomic.incr pool.resumptions;
                      enqueue pool (fun () -> continue k ())
                    end
                  in
                  if not (register wake) then wake ())
          | _ -> None);
    }

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)

let run_job job =
  try job ()
  with exn ->
    (* Task bodies catch their own exceptions into the task result;
       anything reaching here is a scheduler bug or a raising waker.
       Log rather than kill the worker. *)
    prerr_endline ("volcano_sched: worker caught " ^ Printexc.to_string exn)

let worker pool me () =
  Domain.DLS.set dls_key (Some (pool, me));
  let steal () =
    let rec go k =
      if k >= pool.p_size then None
      else
        let i = (me + k) mod pool.p_size in
        match take pool i with
        | Some _ as job ->
            Atomic.incr pool.stolen;
            job
        | None -> go (k + 1)
    in
    go 1
  in
  let try_dequeue () =
    match take pool me with Some _ as job -> job | None -> steal ()
  in
  let rec loop () =
    match try_dequeue () with
    | Some job ->
        run_job job;
        loop ()
    | None ->
        Mutex.lock pool.idle_lock;
        if pool.stopping then Mutex.unlock pool.idle_lock
        else if Atomic.get pool.pending > 0 then begin
          (* A job landed between our scan and the lock: rescan instead
             of sleeping — [pending] is bumped before the signal, so this
             check under the lock cannot miss a wakeup. *)
          Mutex.unlock pool.idle_lock;
          loop ()
        end
        else begin
          pool.idlers <- pool.idlers + 1;
          Condition.wait pool.idle pool.idle_lock;
          pool.idlers <- pool.idlers - 1;
          Mutex.unlock pool.idle_lock;
          loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let default_workers () =
  match Sys.getenv_opt "VOLCANO_WORKERS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg "VOLCANO_WORKERS must be a positive integer")
  | None ->
      (* Floor of 4: waits that are not task-shaped (page I/O, buffer
         frame waits) hold their worker, and a 1-core host would
         otherwise run a 1-worker pool that such a wait can starve. *)
      max 4 (Domain.recommended_domain_count ())

let create ?workers () =
  let size = match workers with Some w -> w | None -> default_workers () in
  if size < 1 then invalid_arg "Sched.create: workers must be positive";
  let pool =
    {
      p_size = size;
      queues = Array.init size (fun _ -> Queue.create ());
      locks = Array.init size (fun _ -> Mutex.create ());
      idle_lock = Mutex.create ();
      idle = Condition.create ();
      idlers = 0;
      stopping = false;
      pending = Atomic.make 0;
      rr = Atomic.make 0;
      submitted = Atomic.make 0;
      completed = Atomic.make 0;
      stolen = Atomic.make 0;
      suspensions = Atomic.make 0;
      resumptions = Atomic.make 0;
      peak_queue = Atomic.make 0;
      lat_lock = Mutex.create ();
      lat = Statx.create ();
      lat_sink = None;
      domains = [||];
    }
  in
  pool.domains <- Array.init size (fun i -> Domain.spawn (worker pool i));
  Pool pool

let dedicated () =
  Dedicated { d_submitted = Atomic.make 0; d_completed = Atomic.make 0 }

let default_lock = Mutex.create ()
let default_sched : t option ref = ref None

let default () =
  Mutex.lock default_lock;
  let t =
    match !default_sched with
    | Some t -> t
    | None ->
        let t =
          match Sys.getenv_opt "VOLCANO_SCHED" with
          | Some "dedicated" -> dedicated ()
          | _ -> create ()
        in
        default_sched := Some t;
        t
  in
  Mutex.unlock default_lock;
  t

let is_pool = function Pool _ -> true | Dedicated _ -> false
let workers = function Pool p -> p.p_size | Dedicated _ -> 0

let shutdown = function
  | Dedicated _ -> ()
  | Pool pool ->
      Mutex.lock pool.idle_lock;
      let already = pool.stopping in
      pool.stopping <- true;
      Condition.broadcast pool.idle;
      Mutex.unlock pool.idle_lock;
      if not already then Array.iter Domain.join pool.domains

(* ------------------------------------------------------------------ *)
(* Tasks                                                               *)

let make_task () =
  {
    t_lock = Mutex.create ();
    t_done = Condition.create ();
    t_result = None;
    t_wakers = [];
    t_domain = None;
  }

let complete task r =
  Mutex.lock task.t_lock;
  task.t_result <- Some r;
  let wakers = task.t_wakers in
  task.t_wakers <- [];
  Condition.broadcast task.t_done;
  Mutex.unlock task.t_lock;
  List.iter (fun wake -> wake ()) wakers

let record_latency pool dt =
  Mutex.lock pool.lat_lock;
  Statx.add pool.lat dt;
  (match pool.lat_sink with
  | Some hist -> Obs.Histogram.observe hist dt
  | None -> ());
  Mutex.unlock pool.lat_lock

let fork t f =
  let task = make_task () in
  (match t with
  | Dedicated d ->
      Atomic.incr d.d_submitted;
      let dom =
        Domain.spawn (fun () ->
            let r = try Ok (f ()) with exn -> Error exn in
            Atomic.incr d.d_completed;
            complete task r)
      in
      task.t_domain <- Some dom
  | Pool pool ->
      Atomic.incr pool.submitted;
      let forked_at = Clock.now () in
      let fiber () =
        record_latency pool (Clock.now () -. forked_at);
        let r = try Ok (f ()) with exn -> Error exn in
        (* Completion order matters for [assert_quiescent]: the counter
           must read as completed before any awaiter can observe the
           result and tear the world down. *)
        Atomic.incr pool.completed;
        complete task r
      in
      enqueue pool (fun () -> exec_fiber pool fiber));
  task

let peek task =
  Mutex.lock task.t_lock;
  let r = task.t_result in
  Mutex.unlock task.t_lock;
  r

(* Dedicated mode: reap the domain once its result is recorded.  Guarded
   swap so concurrent awaiters join at most once. *)
let join_domain task =
  Mutex.lock task.t_lock;
  let d = task.t_domain in
  task.t_domain <- None;
  Mutex.unlock task.t_lock;
  (* conclint: allow CL003 -- t_domain is only ever Some for dedicated
     (one-domain-per-task) tasks; pool tasks carry None, so a fiber
     awaiting a pool task can never reach this join. *)
  match d with Some dom -> Domain.join dom | None -> ()

let await task =
  let result =
    match peek task with
    | Some r -> r
    | None ->
        if on_pool () then begin
          let rec loop () =
            match peek task with
            | Some r -> r
            | None ->
                suspend (fun wake ->
                    Mutex.lock task.t_lock;
                    let still_pending = Option.is_none task.t_result in
                    if still_pending then
                      task.t_wakers <- wake :: task.t_wakers;
                    Mutex.unlock task.t_lock;
                    still_pending);
                loop ()
          in
          loop ()
        end
        else begin
          Mutex.lock task.t_lock;
          while Option.is_none task.t_result do
            Condition.wait task.t_done task.t_lock
          done;
          let r = Option.get task.t_result in
          Mutex.unlock task.t_lock;
          r
        end
  in
  join_domain task;
  result

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

module Event = struct
  type t = {
    e_fired : bool Atomic.t;
    e_lock : Mutex.t;
    e_cond : Condition.t;
    mutable e_wakers : (unit -> unit) list;
  }

  let create () =
    {
      e_fired = Atomic.make false;
      e_lock = Mutex.create ();
      e_cond = Condition.create ();
      e_wakers = [];
    }

  let fired e = Atomic.get e.e_fired

  let fire e =
    if not (Atomic.exchange e.e_fired true) then begin
      Mutex.lock e.e_lock;
      let wakers = e.e_wakers in
      e.e_wakers <- [];
      Condition.broadcast e.e_cond;
      Mutex.unlock e.e_lock;
      List.iter (fun wake -> wake ()) wakers
    end

  let wait e =
    if not (fired e) then
      if on_pool () then begin
        let rec loop () =
          if not (fired e) then begin
            suspend (fun wake ->
                Mutex.lock e.e_lock;
                let pending = not (Atomic.get e.e_fired) in
                if pending then e.e_wakers <- wake :: e.e_wakers;
                Mutex.unlock e.e_lock;
                pending);
            loop ()
          end
        in
        loop ()
      end
      else begin
        Mutex.lock e.e_lock;
        while not (Atomic.get e.e_fired) do
          Condition.wait e.e_cond e.e_lock
        done;
        Mutex.unlock e.e_lock
      end
end

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

type stats = {
  pool_workers : int;
  submitted : int;
  completed : int;
  stolen : int;
  suspensions : int;
  resumptions : int;
  peak_queue_depth : int;
}

let stats = function
  | Pool p ->
      {
        pool_workers = p.p_size;
        submitted = Atomic.get p.submitted;
        completed = Atomic.get p.completed;
        stolen = Atomic.get p.stolen;
        suspensions = Atomic.get p.suspensions;
        resumptions = Atomic.get p.resumptions;
        peak_queue_depth = Atomic.get p.peak_queue;
      }
  | Dedicated d ->
      {
        pool_workers = 0;
        submitted = Atomic.get d.d_submitted;
        completed = Atomic.get d.d_completed;
        stolen = 0;
        suspensions = 0;
        resumptions = 0;
        peak_queue_depth = 0;
      }

let live_tasks t =
  let s = stats t in
  s.submitted - s.completed

let suspended_tasks t =
  let s = stats t in
  s.suspensions - s.resumptions

let task_latency_percentile t p =
  match t with
  | Dedicated _ -> 0.0
  | Pool pool ->
      Mutex.lock pool.lat_lock;
      let v = Statx.percentile pool.lat p in
      Mutex.unlock pool.lat_lock;
      v

let register_obs ?since t obs =
  match t with
  | Pool pool when not (Obs.enabled obs) ->
      (* Detach: a previous sink stops accumulating task latencies. *)
      Mutex.lock pool.lat_lock;
      pool.lat_sink <- None;
      Mutex.unlock pool.lat_lock
  | _ when not (Obs.enabled obs) -> ()
  | t' ->
      let s = stats t' in
      let delta field =
        match since with Some s0 -> field s - field s0 | None -> field s
      in
      Obs.Counter.add (Obs.counter obs "sched.tasks")
        (delta (fun s -> s.submitted));
      Obs.Counter.add (Obs.counter obs "sched.steals")
        (delta (fun s -> s.stolen));
      Obs.Counter.add
        (Obs.counter obs "sched.suspensions")
        (delta (fun s -> s.suspensions));
      Obs.Gauge.set (Obs.gauge obs "sched.workers")
        (float_of_int s.pool_workers);
      Obs.Gauge.set
        (Obs.gauge obs "sched.peak_queue_depth")
        (float_of_int s.peak_queue_depth);
      (match t' with
      | Pool pool ->
          Mutex.lock pool.lat_lock;
          pool.lat_sink <- Some (Obs.histogram obs "sched.task_latency_s");
          Mutex.unlock pool.lat_lock;
          Obs.Gauge.set
            (Obs.gauge obs "sched.task_latency_p50_s")
            (task_latency_percentile t' 0.5);
          Obs.Gauge.set
            (Obs.gauge obs "sched.task_latency_p95_s")
            (task_latency_percentile t' 0.95)
      | Dedicated _ -> ())

(* An awaiter can observe a task's result a moment before the worker
   running it bumps [completed] (the result is published first, so the
   waker fires first).  Quiescence is therefore an eventually-stable
   property: give in-flight bookkeeping a bounded grace period before
   declaring a leak. *)
let assert_quiescent ?(what = "sched") t =
  let deadline = Unix.gettimeofday () +. 0.5 in
  let rec wait () =
    let live = live_tasks t in
    let susp = suspended_tasks t in
    if live = 0 && susp = 0 then ()
    else if Unix.gettimeofday () < deadline then (
      Unix.sleepf 0.001;
      wait ())
    else
      failwith
        (Printf.sprintf
           "%s: scheduler not quiescent: %d live tasks, %d suspended fibers"
           what live susp)
  in
  wait ()
