(** Bounded single-producer/single-consumer ring buffer.

    The fast path is mutex-free: one atomic load and one atomic store
    per operation, plus a plain array access.  Exactly one domain may
    push and exactly one domain may pop; the two may differ and may run
    concurrently.  Blocking, parking, and shutdown wakeups are the
    caller's concern ({!Volcano.Port} layers spin-then-park waits on
    top) — the ring itself only offers non-blocking transfer.

    Capacity is enforced exactly as given (Port folds flow-control slack
    into it); only the backing array is rounded up to a power of two so
    indexing is a mask. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** [dummy] fills empty slots so popped elements are not retained by the
    ring (GC hygiene).  @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
(** The logical bound, as passed to {!create}. *)

val length : 'a t -> int
(** Current occupancy.  Exact from the owning side; a sampler on a third
    domain sees a possibly-stale but well-formed value in
    [0, capacity]. *)

val is_empty : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** Producer only.  [false] when the ring holds [capacity] elements. *)

val try_pop : 'a t -> 'a option
(** Consumer only.  [None] when the ring is empty. *)
