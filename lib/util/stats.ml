type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  (* Bounded reservoir (Vitter's algorithm R) for percentile queries; the
     Welford accumulators above are exact, the reservoir is a uniform
     sample once [n] exceeds its capacity. *)
  reservoir : float array;
  mutable filled : int;
  rng : Rng.t;
}

let default_reservoir = 512

let create ?(reservoir = default_reservoir) () =
  if reservoir < 0 then invalid_arg "Stats.create: negative reservoir";
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    min = infinity;
    max = neg_infinity;
    reservoir = Array.make reservoir 0.0;
    filled = 0;
    (* Seeded deterministically: percentile estimates are reproducible
       run-to-run, like every other sampled quantity in the repository. *)
    rng = Rng.create 0x5eedL;
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  let capacity = Array.length t.reservoir in
  if capacity > 0 then
    if t.filled < capacity then begin
      t.reservoir.(t.filled) <- x;
      t.filled <- t.filled + 1
    end
    else
      let j = Rng.int t.rng t.n in
      if j < capacity then t.reservoir.(j) <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = if t.n = 0 then 0.0 else t.min
let max t = if t.n = 0 then 0.0 else t.max

(* stddev / |mean|.  A zero mean (empty series, or values cancelling out)
   would divide by zero; the conventional report value is 0, not nan/inf —
   downstream JSON reports must stay parseable. *)
let coefficient_of_variation t =
  let m = Float.abs (mean t) in
  if m = 0.0 then 0.0 else stddev t /. m

let percentile t p =
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg "Stats.percentile: p must be in [0, 1]";
  if t.filled = 0 then 0.0
  else begin
    let sorted = Array.sub t.reservoir 0 t.filled in
    Array.sort Float.compare sorted;
    (* Linear interpolation between closest ranks. *)
    let position = p *. float_of_int (t.filled - 1) in
    let lo = int_of_float (Float.floor position) in
    let hi = Stdlib.min (lo + 1) (t.filled - 1) in
    let fraction = position -. float_of_int lo in
    sorted.(lo) +. (fraction *. (sorted.(hi) -. sorted.(lo)))
  end

let of_list ?reservoir xs =
  let t = create ?reservoir () in
  List.iter (add t) xs;
  t

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t)
    (stddev t) (min t) (max t)
