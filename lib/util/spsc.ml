(* Bounded single-producer/single-consumer ring.

   The array size is the next power of two above [capacity] so slot
   indexing is a mask, but occupancy is bounded by [capacity] itself —
   callers that fold flow-control slack into the ring (Port) need the
   bound to be exactly the configured slack, not its power-of-two
   round-up.

   Memory model: the producer publishes a slot with a plain write
   followed by an atomic store of [tail]; the consumer's atomic load of
   [tail] then makes the slot write visible (release/acquire
   publication).  Symmetrically the consumer clears a slot before
   advancing [head], so the producer never overwrites a slot the
   consumer still reads.  Head and tail only ever move forward and only
   by their owner, so neither side needs a retry loop. *)

type 'a t = {
  slots : 'a array;
  mask : int;
  cap : int;
  dummy : 'a; (* parked in empty slots so popped values are not retained *)
  head : int Atomic.t; (* next index to pop; advanced only by the consumer *)
  tail : int Atomic.t; (* next index to push; advanced only by the producer *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~capacity ~dummy =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be positive";
  let size = next_pow2 capacity in
  {
    slots = Array.make size dummy;
    mask = size - 1;
    cap = capacity;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.cap
let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0

let try_push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head >= t.cap then false
  else begin
    t.slots.(tail land t.mask) <- x;
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail - head <= 0 then None
  else begin
    let i = head land t.mask in
    let x = t.slots.(i) in
    t.slots.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    Some x
  end
