(** Counting semaphores built on [Mutex] and [Condition].

    Volcano's exchange operator uses semaphores for three purposes: to signal
    packet arrival, to implement flow control ("back pressure"), and to
    sequence the orderly shutdown of producer process groups.  OCaml domains
    share memory, so a mutex/condition pair gives the same semantics as the
    Sequent Symmetry semaphores in the paper. *)

type t

val create : int -> t
(** [create n] is a semaphore with initial value [n].  [n] must be [>= 0]. *)

val acquire : t -> unit
(** [acquire s] blocks until the value of [s] is positive, then decrements. *)

val try_acquire : t -> bool
(** [try_acquire s] decrements and returns [true] if the value is positive,
    otherwise returns [false] without blocking. *)

val release : t -> unit
(** [release s] increments the value of [s] and wakes one waiter. *)

val release_n : t -> int -> unit
(** [release_n s n] increments the value of [s] by [n] and wakes waiters. *)

val value : t -> int
(** [value s] is the current value (for tests and instrumentation only; the
    value may change concurrently). *)

val waiters : t -> int
(** Number of acquirers currently blocked in {!acquire} — exact waiter
    accounting, so a teardown path can release precisely what is needed
    instead of flooding the count with a magic surplus. *)
