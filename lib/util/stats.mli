(** Streaming descriptive statistics (Welford's algorithm) plus a bounded
    reservoir sample for percentile queries.  Used by the benchmark
    harness, the partition-balance ablation, and the observability
    subsystem's histograms. *)

type t

val create : ?reservoir:int -> unit -> t
(** [reservoir] bounds the memory used for percentile estimation (default
    512 samples; 0 disables percentiles).  The reservoir is a uniform
    sample of the series (Vitter's algorithm R) drawn with a fixed seed,
    so estimates are deterministic for a given insertion order. *)

val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float

val coefficient_of_variation : t -> float
(** stddev / |mean|; 0 (by convention, documented) when the mean is 0 —
    including the empty series — so reports never contain nan or inf.
    Used as the imbalance metric in the partitioning ablation. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 1] (e.g. [0.5] for p50, [0.99] for
    p99): the interpolated closest-rank percentile of the reservoir
    sample.  Exact when the series fits the reservoir; an estimate
    otherwise.  0 for an empty series.  Raises [Invalid_argument] if [p]
    is outside [0, 1]. *)

val of_list : ?reservoir:int -> float list -> t
val pp : Format.formatter -> t -> unit
