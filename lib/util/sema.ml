type t = {
  mutex : Mutex.t;
  nonzero : Condition.t;
  mutable count : int;
  mutable waiting : int; (* blocked acquirers, maintained under [mutex] *)
}

let create n =
  assert (n >= 0);
  {
    mutex = Mutex.create ();
    nonzero = Condition.create ();
    count = n;
    waiting = 0;
  }

let acquire t =
  Mutex.lock t.mutex;
  while t.count = 0 do
    t.waiting <- t.waiting + 1;
    Condition.wait t.nonzero t.mutex;
    t.waiting <- t.waiting - 1
  done;
  t.count <- t.count - 1;
  Mutex.unlock t.mutex

let try_acquire t =
  Mutex.lock t.mutex;
  let ok = t.count > 0 in
  if ok then t.count <- t.count - 1;
  Mutex.unlock t.mutex;
  ok

let release t =
  Mutex.lock t.mutex;
  t.count <- t.count + 1;
  Condition.signal t.nonzero;
  Mutex.unlock t.mutex

let release_n t n =
  assert (n >= 0);
  Mutex.lock t.mutex;
  t.count <- t.count + n;
  Condition.broadcast t.nonzero;
  Mutex.unlock t.mutex

let value t =
  Mutex.lock t.mutex;
  let v = t.count in
  Mutex.unlock t.mutex;
  v

let waiters t =
  Mutex.lock t.mutex;
  let w = t.waiting in
  Mutex.unlock t.mutex;
  w
