module Stats = Volcano_util.Stats
module Clock = Volcano_util.Clock

let now = Clock.now

(* Wall-clock seconds accumulate as integer nanoseconds so that concurrent
   recorders from many domains need only an atomic add, never a lock. *)
let ns_of_s seconds = int_of_float (seconds *. 1e9)
let s_of_ns ns = float_of_int ns *. 1e-9

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

type span = {
  span_label : string;
  node_id : int;
  tid : int; (* domain id of the recording process *)
  start : float; (* wall clock, seconds *)
  stop : float;
  span_rows : int;
}

type span_buffer = { span_lock : Mutex.t; mutable span_items : span list }

(* ------------------------------------------------------------------ *)
(* Per-operator nodes                                                  *)

module Node = struct
  type t = {
    id : int;
    label : string;
    opens : int Atomic.t;
    closes : int Atomic.t;
    next_calls : int Atomic.t;
    rows : int Atomic.t;
    busy_ns : int Atomic.t; (* open + next + close, summed across ranks *)
    open_ns : int Atomic.t;
    spans : span_buffer option; (* None on the null sink *)
  }

  let make ~id ~label ~spans =
    {
      id;
      label;
      opens = Atomic.make 0;
      closes = Atomic.make 0;
      next_calls = Atomic.make 0;
      rows = Atomic.make 0;
      busy_ns = Atomic.make 0;
      open_ns = Atomic.make 0;
      spans;
    }

  let id t = t.id
  let label t = t.label
  let opens t = Atomic.get t.opens
  let closes t = Atomic.get t.closes
  let next_calls t = Atomic.get t.next_calls
  let rows t = Atomic.get t.rows
  let busy_s t = s_of_ns (Atomic.get t.busy_ns)
  let open_s t = s_of_ns (Atomic.get t.open_ns)

  let add_ns a seconds =
    let (_ : int) = Atomic.fetch_and_add a (ns_of_s seconds) in
    ()

  let count_open t = Atomic.incr t.opens
  let count_close t = Atomic.incr t.closes

  let on_open t ~elapsed =
    add_ns t.busy_ns elapsed;
    add_ns t.open_ns elapsed

  let on_next t ~produced ~elapsed =
    Atomic.incr t.next_calls;
    if produced then Atomic.incr t.rows;
    add_ns t.busy_ns elapsed

  let on_close t ~elapsed = add_ns t.busy_ns elapsed

  (* The batch path delivers rows in bulk: one next call moved [rows]
     records through this node. *)
  let on_batch t ~rows ~elapsed =
    Atomic.incr t.next_calls;
    if rows > 0 then begin
      let (_ : int) = Atomic.fetch_and_add t.rows rows in
      ()
    end;
    add_ns t.busy_ns elapsed

  let on_span t ~start ~stop ~rows =
    match t.spans with
    | None -> ()
    | Some buffer ->
        let span =
          {
            span_label = t.label;
            node_id = t.id;
            tid = (Domain.self () :> int);
            start;
            stop;
            span_rows = rows;
          }
        in
        Mutex.lock buffer.span_lock;
        buffer.span_items <- span :: buffer.span_items;
        Mutex.unlock buffer.span_lock
end

(* ------------------------------------------------------------------ *)
(* Exchange samples                                                    *)

type exchange_sample = {
  packets_sent : int;
  packets_received : int;
  records : int;
  max_queue_depth : int;
  flow_waits : int;
  flow_wait_s : float;
  per_producer : int array; (* packets sent by each producer rank *)
  pool_allocated : int; (* fresh packets created by the lane pools *)
  pool_reused : int; (* allocations served from a pool's free ring *)
  pool_recycled : int; (* packets accepted back for reuse *)
  spawn_s : float;
  join_s : float;
  domains : int;
}

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

module Counter = struct
  type t = int Atomic.t

  let incr = Atomic.incr

  let add t n =
    let (_ : int) = Atomic.fetch_and_add t n in
    ()

  let value = Atomic.get
end

module Gauge = struct
  type t = float Atomic.t

  let set = Atomic.set
  let value = Atomic.get
end

module Histogram = struct
  type t = { lock : Mutex.t; stats : Stats.t }

  let make () = { lock = Mutex.create (); stats = Stats.create () }

  let observe t x =
    Mutex.lock t.lock;
    Stats.add t.stats x;
    Mutex.unlock t.lock

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> f t.stats)

  let count t = locked t Stats.count
  let mean t = locked t Stats.mean
  let percentile t p = locked t (fun s -> Stats.percentile s p)

  let summary_json t =
    locked t (fun s ->
        Jsonx.Obj
          [
            ("count", Jsonx.Int (Stats.count s));
            ("mean", Jsonx.Float (Stats.mean s));
            ("min", Jsonx.Float (Stats.min s));
            ("max", Jsonx.Float (Stats.max s));
            ("p50", Jsonx.Float (Stats.percentile s 0.5));
            ("p90", Jsonx.Float (Stats.percentile s 0.9));
            ("p99", Jsonx.Float (Stats.percentile s 0.99));
          ])
end

(* ------------------------------------------------------------------ *)
(* The sink                                                            *)

type active = {
  lock : Mutex.t;
  next_id : int Atomic.t;
  mutable nodes : Node.t list; (* reverse creation order *)
  mutable exchanges : (int * exchange_sample Lazy.t) list; (* keyed by node *)
  spans : span_buffer;
  counters : (string, Counter.t) Hashtbl.t;
  gauges : (string, Gauge.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  started : float;
}

type t = Null | Active of active

let null = Null

let create () =
  Active
    {
      lock = Mutex.create ();
      next_id = Atomic.make 0;
      nodes = [];
      exchanges = [];
      spans = { span_lock = Mutex.create (); span_items = [] };
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 16;
      histograms = Hashtbl.create 16;
      started = now ();
    }

let enabled = function Null -> false | Active _ -> true

let node t ~label =
  match t with
  | Null -> Node.make ~id:(-1) ~label ~spans:None
  | Active a ->
      let id = Atomic.fetch_and_add a.next_id 1 in
      let node = Node.make ~id ~label ~spans:(Some a.spans) in
      Mutex.lock a.lock;
      a.nodes <- node :: a.nodes;
      Mutex.unlock a.lock;
      node

let nodes = function
  | Null -> []
  | Active a ->
      Mutex.lock a.lock;
      let nodes = a.nodes in
      Mutex.unlock a.lock;
      List.rev nodes

(* [sample] is forced at report time (the port's counters are final by
   then); re-registering a node — an exchange reopened for a second run —
   replaces the previous sample. *)
let register_exchange t ~node ~sample =
  match t with
  | Null -> ()
  | Active a ->
      let id = Node.id node in
      Mutex.lock a.lock;
      a.exchanges <-
        (id, Lazy.from_fun sample)
        :: List.filter (fun (i, _) -> i <> id) a.exchanges;
      Mutex.unlock a.lock

let exchange_sample t ~node =
  match t with
  | Null -> None
  | Active a ->
      Mutex.lock a.lock;
      let found = List.assoc_opt (Node.id node) a.exchanges in
      Mutex.unlock a.lock;
      Option.map Lazy.force found

let spans = function
  | Null -> []
  | Active a ->
      Mutex.lock a.spans.span_lock;
      let items = a.spans.span_items in
      Mutex.unlock a.spans.span_lock;
      List.rev items

(* Registry lookups create on first use.  On the null sink they return a
   fresh unregistered instance: updates cost an atomic op and are never
   reported — callers need no disabled-path branching. *)

let with_registry table lock name make =
  Mutex.lock lock;
  let entry =
    match Hashtbl.find_opt table name with
    | Some entry -> entry
    | None ->
        let entry = make () in
        Hashtbl.add table name entry;
        entry
  in
  Mutex.unlock lock;
  entry

let counter t name =
  match t with
  | Null -> Atomic.make 0
  | Active a -> with_registry a.counters a.lock name (fun () -> Atomic.make 0)

let gauge t name =
  match t with
  | Null -> Atomic.make 0.0
  | Active a -> with_registry a.gauges a.lock name (fun () -> Atomic.make 0.0)

let histogram t name =
  match t with
  | Null -> Histogram.make ()
  | Active a -> with_registry a.histograms a.lock name Histogram.make

let registry_json table f =
  Hashtbl.fold (fun name entry acc -> (name, f entry) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let exchange_sample_json sample =
  Jsonx.Obj
    [
      ("packets_sent", Jsonx.Int sample.packets_sent);
      ("packets_received", Jsonx.Int sample.packets_received);
      ("records", Jsonx.Int sample.records);
      ("max_queue_depth", Jsonx.Int sample.max_queue_depth);
      ("flow_waits", Jsonx.Int sample.flow_waits);
      ("flow_wait_s", Jsonx.Float sample.flow_wait_s);
      ( "per_producer_packets",
        Jsonx.List
          (Array.to_list (Array.map (fun n -> Jsonx.Int n) sample.per_producer))
      );
      ("pool_allocated", Jsonx.Int sample.pool_allocated);
      ("pool_reused", Jsonx.Int sample.pool_reused);
      ("pool_recycled", Jsonx.Int sample.pool_recycled);
      ("spawn_s", Jsonx.Float sample.spawn_s);
      ("join_s", Jsonx.Float sample.join_s);
      ("domains", Jsonx.Int sample.domains);
    ]

let node_json t node =
  let base =
    [
      ("id", Jsonx.Int (Node.id node));
      ("label", Jsonx.String (Node.label node));
      ("opens", Jsonx.Int (Node.opens node));
      ("closes", Jsonx.Int (Node.closes node));
      ("next_calls", Jsonx.Int (Node.next_calls node));
      ("rows", Jsonx.Int (Node.rows node));
      ("busy_s", Jsonx.Float (Node.busy_s node));
      ("open_s", Jsonx.Float (Node.open_s node));
    ]
  in
  match exchange_sample t ~node with
  | None -> Jsonx.Obj base
  | Some sample -> Jsonx.Obj (base @ [ ("exchange", exchange_sample_json sample) ])

let report_json t =
  match t with
  | Null -> Jsonx.Obj []
  | Active a ->
      Jsonx.Obj
        [
          ( "nodes",
            Jsonx.List (List.map (node_json t) (nodes t)) );
          ( "counters",
            Jsonx.Obj
              (registry_json a.counters (fun c -> Jsonx.Int (Counter.value c)))
          );
          ( "gauges",
            Jsonx.Obj
              (registry_json a.gauges (fun g -> Jsonx.Float (Gauge.value g)))
          );
          ( "histograms",
            Jsonx.Obj (registry_json a.histograms Histogram.summary_json) );
          ("spans", Jsonx.Int (List.length (spans t)));
        ]

(* Chrome trace_event format: one complete ("X") event per span,
   timestamps in microseconds relative to the sink's creation.  All
   domains share one wall clock (gettimeofday), so cross-domain ordering
   in the trace is faithful to within clock resolution. *)
let trace_json t =
  let origin = match t with Null -> 0.0 | Active a -> a.started in
  let us x = (x -. origin) *. 1e6 in
  let events =
    List.map
      (fun span ->
        Jsonx.Obj
          [
            ("name", Jsonx.String span.span_label);
            ("cat", Jsonx.String "operator");
            ("ph", Jsonx.String "X");
            ("ts", Jsonx.Float (us span.start));
            ("dur", Jsonx.Float ((span.stop -. span.start) *. 1e6));
            ("pid", Jsonx.Int 0);
            ("tid", Jsonx.Int span.tid);
            ( "args",
              Jsonx.Obj
                [
                  ("rows", Jsonx.Int span.span_rows);
                  ("node", Jsonx.Int span.node_id);
                ] );
          ])
      (spans t)
  in
  Jsonx.Obj
    [ ("traceEvents", Jsonx.List events); ("displayTimeUnit", Jsonx.String "ms") ]

let write_trace t ~path = Jsonx.write_file path (trace_json t)
