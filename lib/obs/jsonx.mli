(** A minimal JSON value type and serializer.

    The repository bakes in no JSON library; the observability exporters
    (Chrome trace files, machine-readable benchmark reports) need only
    emission, never parsing, so this module provides exactly that.
    Non-finite floats serialize as [null] — JSON has no NaN literal. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val write_file : string -> t -> unit
(** [write_file path json] writes [json] followed by a newline. *)
