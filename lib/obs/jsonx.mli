(** A minimal JSON value type, serializer, and parser.

    The repository bakes in no JSON library; the observability exporters
    (Chrome trace files, machine-readable benchmark reports) emit through
    this module, and the benchmark regression gate reads its committed
    baselines back through {!read_file}.  Non-finite floats serialize as
    [null] — JSON has no NaN literal. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val write_file : string -> t -> unit
(** [write_file path json] writes [json] followed by a newline. *)

exception Parse_error of string

val parse : string -> t
(** Parse one JSON document.  Covers the subset this module emits (plus
    insignificant whitespace); @raise Parse_error otherwise. *)

val read_file : string -> t
(** {!parse} the entire contents of a file. *)

(** {2 Accessors} — total functions for walking parsed documents. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing fields and non-objects. *)

val to_float_opt : t -> float option
(** [Float] or [Int] as a float. *)

val to_int_opt : t -> int option
val to_list_opt : t -> t list option
