(** The observability sink: metrics, per-operator spans, and exporters.

    The subsystem mirrors the paper's encapsulation thesis: operators are
    instrumented by wrapping their iterators ({!Volcano.Iterator}'s
    [instrumented]), never by editing their algorithms, and the parallel
    machinery (ports, process groups) reports through samples registered
    by exchange — no operator knows it is being observed.

    A sink is either {!null} (observability off) or active.  Plans
    compiled against the null sink are not wrapped at all, so the
    disabled overhead is one option check per plan node at compile time.
    All recorders are safe across domains: node statistics are atomic
    counters, span buffers are mutex-protected and touched only at
    operator open/close.

    Clocks: all timestamps come from one wall clock
    ([Unix.gettimeofday]), shared by every domain, so spans from
    different processes are directly comparable. *)

val now : unit -> float
(** The sink's wall clock, seconds. *)

type span = {
  span_label : string;
  node_id : int;
  tid : int;  (** domain id of the recording process *)
  start : float;
  stop : float;
  span_rows : int;
}

(** Per-operator statistics, aggregated across all ranks evaluating the
    same plan node.  Recorders are called by [Iterator.instrumented]. *)
module Node : sig
  type t

  val id : t -> int
  val label : t -> string
  val opens : t -> int
  val closes : t -> int
  val next_calls : t -> int
  val rows : t -> int

  val busy_s : t -> float
  (** Wall time spent inside this operator's open, next, and close calls,
      summed across ranks (inclusive of its inputs' time — the iterator
      protocol is a call tree). *)

  val open_s : t -> float

  (** {2 Recorders} *)

  val count_open : t -> unit
  val count_close : t -> unit
  val on_open : t -> elapsed:float -> unit
  val on_next : t -> produced:bool -> elapsed:float -> unit
  val on_close : t -> elapsed:float -> unit

  val on_batch : t -> rows:int -> elapsed:float -> unit
  (** The batch-path analogue of {!on_next}: one batch-level next call
      moved [rows] records through this node.  Counts one next call,
      adds [rows] to the row total, and books [elapsed] as busy time —
      so per-node row counts stay exact under batching. *)

  val on_span : t -> start:float -> stop:float -> rows:int -> unit
  (** One open-to-close lifetime of one rank's iterator instance; becomes
      a Chrome trace event. *)
end

(** A snapshot of one exchange's port and process-group counters. *)
type exchange_sample = {
  packets_sent : int;
  packets_received : int;
  records : int;
  max_queue_depth : int;
  flow_waits : int;  (** sends that found their lane ring full *)
  flow_wait_s : float;  (** total time spent blocked there *)
  per_producer : int array;  (** packets sent by each producer rank *)
  pool_allocated : int;  (** fresh packets created by the lane pools *)
  pool_reused : int;  (** allocations served from a pool's free ring *)
  pool_recycled : int;  (** packets accepted back for reuse *)
  spawn_s : float;  (** time to fork the producer group *)
  join_s : float;  (** time to join it at teardown *)
  domains : int;
}

(** {2 Metrics registry} *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  val percentile : t -> float -> float
  (** Backed by {!Volcano_util.Stats.percentile} ([p] in [0, 1]). *)

  val summary_json : t -> Jsonx.t
end

(** {2 The sink} *)

type t

val null : t
(** The disabled sink: nothing registers, nothing is reported.  Metric
    lookups return fresh unregistered instances, so recording through a
    null sink is harmless (one atomic op) — but the intended fast path
    is to skip instrumentation entirely when [enabled] is false. *)

val create : unit -> t
val enabled : t -> bool

val node : t -> label:string -> Node.t
(** Register a per-operator node (one per plan node; all ranks share
    it).  On the null sink: an unregistered dummy. *)

val nodes : t -> Node.t list
(** In registration order. *)

val counter : t -> string -> Counter.t
val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t
(** Find-or-create by name. *)

val register_exchange :
  t -> node:Node.t -> sample:(unit -> exchange_sample) -> unit
(** Called by exchange when it creates its port; [sample] is forced at
    report time, when the counters are final.  Re-registration (a
    reopened exchange) replaces the earlier sample. *)

val exchange_sample : t -> node:Node.t -> exchange_sample option
val spans : t -> span list

(** {2 Exporters} *)

val report_json : t -> Jsonx.t
(** Machine-readable report: nodes (with exchange samples inline),
    counters, gauges, histogram summaries. *)

val trace_json : t -> Jsonx.t
(** Chrome [trace_event] JSON (load via [chrome://tracing] or Perfetto):
    one complete event per operator span, [tid] = domain id,
    microsecond timestamps relative to sink creation. *)

val write_trace : t -> path:string -> unit
val exchange_sample_json : exchange_sample -> Jsonx.t
