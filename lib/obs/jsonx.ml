type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

(* JSON has no NaN/infinity literals; map them to null rather than emit an
   unparseable file. *)
let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let rec emit buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float x ->
      if Float.is_nan x || Float.abs x = infinity then
        Buffer.add_string buffer "null"
      else Buffer.add_string buffer (float_repr x)
  | String s -> escape buffer s
  | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          emit buffer item)
        items;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buffer ',';
          escape buffer k;
          Buffer.add_char buffer ':';
          emit buffer v)
        fields;
      Buffer.add_char buffer '}'

let to_string json =
  let buffer = Buffer.create 1024 in
  emit buffer json;
  Buffer.contents buffer

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string json);
      output_char oc '\n')
