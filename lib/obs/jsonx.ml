type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

(* JSON has no NaN/infinity literals; map them to null rather than emit an
   unparseable file. *)
let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let rec emit buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float x ->
      if Float.is_nan x || Float.abs x = infinity then
        Buffer.add_string buffer "null"
      else Buffer.add_string buffer (float_repr x)
  | String s -> escape buffer s
  | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          emit buffer item)
        items;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buffer ',';
          escape buffer k;
          Buffer.add_char buffer ':';
          emit buffer v)
        fields;
      Buffer.add_char buffer '}'

let to_string json =
  let buffer = Buffer.create 1024 in
  emit buffer json;
  Buffer.contents buffer

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string json);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parsing — a recursive-descent reader for the subset this module
   emits, so the bench regression gate can read back its own committed
   baselines without a JSON dependency. *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.text
    && match c.text.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> c.pos <- c.pos + 1
  | Some got -> parse_error "expected '%c' at offset %d, got '%c'" ch c.pos got
  | None -> parse_error "expected '%c' at offset %d, got end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text && String.sub c.text c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let buffer = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
        c.pos <- c.pos + 1;
        (match peek c with
        | Some '"' -> Buffer.add_char buffer '"'
        | Some '\\' -> Buffer.add_char buffer '\\'
        | Some '/' -> Buffer.add_char buffer '/'
        | Some 'n' -> Buffer.add_char buffer '\n'
        | Some 'r' -> Buffer.add_char buffer '\r'
        | Some 't' -> Buffer.add_char buffer '\t'
        | Some 'b' -> Buffer.add_char buffer '\b'
        | Some 'f' -> Buffer.add_char buffer '\012'
        | Some 'u' ->
            if c.pos + 4 >= String.length c.text then
              parse_error "truncated \\u escape";
            let code =
              int_of_string ("0x" ^ String.sub c.text (c.pos + 1) 4)
            in
            (* The emitter only writes \u for control characters; decode
               the Latin-1 range and reject the rest. *)
            if code > 0xff then parse_error "unsupported \\u escape %04x" code;
            Buffer.add_char buffer (Char.chr code);
            c.pos <- c.pos + 4
        | _ -> parse_error "invalid escape at offset %d" c.pos);
        c.pos <- c.pos + 1;
        go ()
    | Some ch ->
        Buffer.add_char buffer ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buffer

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
        c.pos <- c.pos + 1;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        c.pos <- c.pos + 1;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  if !is_float then Float (float_of_string s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> Float (float_of_string s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else
        let rec items acc =
          let item = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (item :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (item :: acc)
          | _ -> parse_error "expected ',' or ']' at offset %d" c.pos
        in
        List (items [])
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let value = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((key, value) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((key, value) :: acc)
          | _ -> parse_error "expected ',' or '}' at offset %d" c.pos
        in
        Obj (fields [])
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some ch -> parse_error "unexpected '%c' at offset %d" ch c.pos

let parse text =
  let c = { text; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  (match peek c with
  | Some ch -> parse_error "trailing '%c' at offset %d" ch c.pos
  | None -> ());
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* Accessors for picking benchmark fields out of parsed baselines. *)
let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_list_opt = function List items -> Some items | _ -> None
