(* The partition catalog: which partitions a stored table is split into,
   by what function, and which site owns each one.

   This is the storage half of sharding a table across worker sites: the
   catalog is pure placement metadata — partition files themselves are
   ordinary heap files named [partition_name ~table ~part] in whatever
   device holds them, and the row-level partition function is interpreted
   above the storage layer (tuples do not exist down here; range bounds
   are carried as opaque Serial-encoded bytes).  Like the VTOC, the
   catalog serializes to a length-prefixed byte image so placement
   survives a process boundary: the golden fixture in the test suite pins
   the exact bytes.

   Format (all integers little-endian):

       u16 entry count
       per entry (sorted by table name, so the image is deterministic):
         u16 name length | name bytes
         u16 parts
         u8  spec tag: 1 = hash, 2 = range
           hash:  u16 column count | count x u16 column
           range: u16 column | u16 bound count
                  | count x (u16 length | Serial bound bytes)
         parts x u16 owning site *)

type spec =
  | Hash of int list  (** hash of the listed columns, mod parts *)
  | Range of int * string array
      (** column, inclusive upper bounds (Serial-encoded single-column
          tuples); [parts - 1] bounds split the domain into [parts] *)

type entry = {
  table : string;
  parts : int;
  spec : spec;
  sites : int array;  (** partition [k] lives at site [sites.(k)] *)
}

type t = { lock : Mutex.t; entries : (string, entry) Hashtbl.t }

let create () = { lock = Mutex.create (); entries = Hashtbl.create 8 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let partition_name ~table ~part = Printf.sprintf "%s#%d" table part

let validate e =
  if e.parts < 1 then
    invalid_arg (Printf.sprintf "Shard: table %s needs parts >= 1" e.table);
  if Array.length e.sites <> e.parts then
    invalid_arg
      (Printf.sprintf "Shard: table %s has %d parts but %d site entries"
         e.table e.parts (Array.length e.sites));
  Array.iter
    (fun s ->
      if s < 0 then
        invalid_arg
          (Printf.sprintf "Shard: table %s places a partition at site %d"
             e.table s))
    e.sites;
  match e.spec with
  | Hash cols ->
      List.iter
        (fun c ->
          if c < 0 then
            invalid_arg
              (Printf.sprintf "Shard: table %s hashes on column %d" e.table c))
        cols
  | Range (col, bounds) ->
      if col < 0 then
        invalid_arg
          (Printf.sprintf "Shard: table %s ranges on column %d" e.table col);
      if Array.length bounds <> e.parts - 1 then
        invalid_arg
          (Printf.sprintf
             "Shard: table %s has %d parts but %d range bounds (need parts - \
              1)"
             e.table e.parts (Array.length bounds))

let add t entry =
  validate entry;
  locked t (fun () ->
      if Hashtbl.mem t.entries entry.table then
        invalid_arg ("Shard.add: duplicate table " ^ entry.table);
      Hashtbl.add t.entries entry.table entry)

let find t table = locked t (fun () -> Hashtbl.find_opt t.entries table)

let remove t table =
  locked t (fun () ->
      let existed = Hashtbl.mem t.entries table in
      Hashtbl.remove t.entries table;
      existed)

let tables t =
  locked t (fun () ->
      List.sort compare
        (Hashtbl.fold (fun name _ acc -> name :: acc) t.entries []))

let entry_count t = locked t (fun () -> Hashtbl.length t.entries)

(* Which site serves shard [part] of [table] — the routing question the
   remote slicer asks. *)
let site_of t ~table ~part =
  match find t table with
  | None -> None
  | Some e ->
      if part < 0 || part >= e.parts then None else Some e.sites.(part)

(* Every partition [site] owns, in partition order — what a site-local
   environment must load to serve its shards. *)
let partitions_of_site e ~site =
  List.filter
    (fun p -> e.sites.(p) = site)
    (List.init e.parts Fun.id)

(* ------------------------------------------------------------------ *)
(* Byte image                                                          *)

let tag_hash = 1
let tag_range = 2

let encode t =
  locked t (fun () ->
      let ordered =
        List.sort
          (fun a b -> compare a.table b.table)
          (Hashtbl.fold (fun _ e acc -> e :: acc) t.entries [])
      in
      let b = Buffer.create 256 in
      Buffer.add_uint16_le b (List.length ordered);
      List.iter
        (fun e ->
          Buffer.add_uint16_le b (String.length e.table);
          Buffer.add_string b e.table;
          Buffer.add_uint16_le b e.parts;
          (match e.spec with
          | Hash cols ->
              Buffer.add_uint8 b tag_hash;
              Buffer.add_uint16_le b (List.length cols);
              List.iter (Buffer.add_uint16_le b) cols
          | Range (col, bounds) ->
              Buffer.add_uint8 b tag_range;
              Buffer.add_uint16_le b col;
              Buffer.add_uint16_le b (Array.length bounds);
              Array.iter
                (fun bound ->
                  Buffer.add_uint16_le b (String.length bound);
                  Buffer.add_string b bound)
                bounds);
          Array.iter (Buffer.add_uint16_le b) e.sites)
        ordered;
      Buffer.to_bytes b)

exception Corrupt_catalog of string

let () =
  Printexc.register_printer (function
    | Corrupt_catalog msg -> Some (Printf.sprintf "Shard.Corrupt_catalog(%s)" msg)
    | _ -> None)

let decode buf ~pos =
  let cursor = ref pos in
  let need n what =
    if !cursor + n > Bytes.length buf then
      raise (Corrupt_catalog (what ^ ": truncated image"))
  in
  let u16 what =
    need 2 what;
    let v = Bytes.get_uint16_le buf !cursor in
    cursor := !cursor + 2;
    v
  in
  let u8 what =
    need 1 what;
    let v = Bytes.get_uint8 buf !cursor in
    cursor := !cursor + 1;
    v
  in
  let str what =
    let len = u16 what in
    need len what;
    let s = Bytes.sub_string buf !cursor len in
    cursor := !cursor + len;
    s
  in
  let t = create () in
  let count = u16 "catalog" in
  for _ = 1 to count do
    let table = str "table name" in
    let parts = u16 "parts" in
    let spec =
      match u8 "spec tag" with
      | tag when tag = tag_hash ->
          let n = u16 "hash columns" in
          Hash (List.init n (fun _ -> u16 "hash column"))
      | tag when tag = tag_range ->
          let col = u16 "range column" in
          let n = u16 "range bounds" in
          Range (col, Array.init n (fun _ -> str "range bound"))
      | tag ->
          raise
            (Corrupt_catalog (Printf.sprintf "unknown spec tag %d" tag))
    in
    let sites = Array.init parts (fun _ -> u16 "site") in
    let entry = { table; parts; spec; sites } in
    (match validate entry with
    | () -> ()
    | exception Invalid_argument msg -> raise (Corrupt_catalog msg));
    add t entry
  done;
  (t, !cursor - pos)
