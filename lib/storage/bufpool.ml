module Injector = Volcano_fault.Injector

type mode = Two_level | Single_global

exception Buffer_exhausted

type frame = {
  index : int;
  mutable device : Device.t option;
  mutable page : int;
  data : Bytes.t;
  mutable fixes : int;
  mutable dirty : bool;
  lock : Mutex.t; (* descriptor lock: held during I/O on this frame *)
  mutable lru_prev : int; (* -1 = none; links valid only when fixes = 0 *)
  mutable lru_next : int;
  mutable on_lru : bool;
}

type t = {
  pool_lock : Mutex.t;
  frames : frame array;
  table : (int * int, int) Hashtbl.t; (* (device id, page) -> frame index *)
  mutable lru_head : int; (* least recently used *)
  mutable lru_tail : int; (* most recently used *)
  md : mode;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_evictions : int Atomic.t;
  n_writebacks : int Atomic.t;
  n_restarts : int Atomic.t;
  mutable faults : Injector.t; (* chaos harness: fix-denial injection *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  restarts : int;
}

let create ?(mode = Two_level) ~frames ~page_size () =
  assert (frames > 0);
  let make_frame index =
    {
      index;
      device = None;
      page = -1;
      data = Bytes.make page_size '\000';
      fixes = 0;
      dirty = false;
      lock = Mutex.create ();
      lru_prev = index - 1;
      lru_next = (if index = frames - 1 then -1 else index + 1);
      on_lru = true;
    }
  in
  {
    pool_lock = Mutex.create ();
    frames = Array.init frames make_frame;
    table = Hashtbl.create (frames * 2);
    lru_head = 0;
    lru_tail = frames - 1;
    md = mode;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_evictions = Atomic.make 0;
    n_writebacks = Atomic.make 0;
    n_restarts = Atomic.make 0;
    faults = Injector.none;
  }

let set_faults t faults = t.faults <- faults

(* LRU chain manipulation; caller holds the pool lock. *)

let lru_remove t f =
  if f.on_lru then begin
    if f.lru_prev >= 0 then t.frames.(f.lru_prev).lru_next <- f.lru_next
    else t.lru_head <- f.lru_next;
    if f.lru_next >= 0 then t.frames.(f.lru_next).lru_prev <- f.lru_prev
    else t.lru_tail <- f.lru_prev;
    f.lru_prev <- -1;
    f.lru_next <- -1;
    f.on_lru <- false
  end

let lru_append t f =
  assert (not f.on_lru);
  f.lru_prev <- t.lru_tail;
  f.lru_next <- -1;
  if t.lru_tail >= 0 then t.frames.(t.lru_tail).lru_next <- f.index
  else t.lru_head <- f.index;
  t.lru_tail <- f.index;
  f.on_lru <- true

let key dev page = (Device.id dev, page)

(* Pick the least recently used unfixed frame whose descriptor lock is free.
   Caller holds the pool lock; on success the victim's descriptor lock is
   held and the frame is off the LRU chain, but it REMAINS in the hash
   table: a concurrent fix of the old page must find the descriptor and
   fail its test-and-lock (then restart) rather than re-read a page whose
   write-back is still in flight. *)
let claim_victim t =
  let rec walk idx =
    if idx < 0 then None
    else
      let f = t.frames.(idx) in
      if Mutex.try_lock f.lock then begin
        lru_remove t f;
        Some f
      end
      else walk f.lru_next
  in
  walk t.lru_head

let write_back t f =
  match f.device with
  | Some dev when f.dirty ->
      Device.write dev ~page:f.page f.data;
      f.dirty <- false;
      Atomic.incr t.n_writebacks
  | _ -> ()

(* The core fix path.  [load] fills the frame after a miss. *)
let rec fix_loop t dev page ~load ~attempts =
  Mutex.lock t.pool_lock;
  match Hashtbl.find_opt t.table (key dev page) with
  | Some idx ->
      let f = t.frames.(idx) in
      if Mutex.try_lock f.lock then begin
        (* Atomic test-and-lock succeeded: the descriptor is quiescent. *)
        Mutex.unlock f.lock;
        if f.fixes = 0 then lru_remove t f;
        f.fixes <- f.fixes + 1;
        Atomic.incr t.n_hits;
        Mutex.unlock t.pool_lock;
        f
      end
      else begin
        (* Someone is reading or replacing this cluster: release, delay,
           restart — including the hash-table lookup (section 4.5). *)
        Atomic.incr t.n_restarts;
        Mutex.unlock t.pool_lock;
        Domain.cpu_relax ();
        fix_loop t dev page ~load ~attempts
      end
  | None -> (
      match claim_victim t with
      | None ->
          Mutex.unlock t.pool_lock;
          if attempts > 10_000 then raise Buffer_exhausted;
          Domain.cpu_relax ();
          fix_loop t dev page ~load ~attempts:(attempts + 1)
      | Some f ->
          Mutex.unlock t.pool_lock;
          (* Clean the victim under its descriptor lock, with no pool lock
             held and its old mapping still visible.  If the write-back
             dies (a real I/O error or an injected one), the victim must
             go back on the LRU with its descriptor lock released — a
             locked descriptor makes every later fix of its page spin in
             the restart loop forever. *)
          (try
             match f.device with
             | Some odev when f.dirty ->
                 Device.write odev ~page:f.page f.data;
                 f.dirty <- false;
                 Atomic.incr t.n_writebacks
             | _ -> ()
           with exn ->
             Mutex.lock t.pool_lock;
             lru_append t f;
             Mutex.unlock t.pool_lock;
             Mutex.unlock f.lock;
             raise exn);
          Mutex.lock t.pool_lock;
          if Hashtbl.mem t.table (key dev page) then begin
            (* Someone else loaded the wanted page while we were cleaning:
               return the (now clean) victim and restart from the lookup. *)
            lru_append t f;
            Mutex.unlock t.pool_lock;
            Mutex.unlock f.lock;
            Domain.cpu_relax ();
            fix_loop t dev page ~load ~attempts
          end
          else begin
            (match f.device with
            | Some odev ->
                Hashtbl.remove t.table (key odev f.page);
                Atomic.incr t.n_evictions
            | None -> ());
            Hashtbl.replace t.table (key dev page) f.index;
            f.device <- Some dev;
            f.page <- page;
            f.fixes <- 1;
            Atomic.incr t.n_misses;
            Mutex.unlock t.pool_lock;
            (* I/O happens under the descriptor lock only.  A failed load
               (injected or real read error) must undo the mapping and
               free the frame, or the page becomes permanently unfixable:
               its descriptor lock would never be released. *)
            f.dirty <- false;
            (try load f
             with exn ->
               Mutex.lock t.pool_lock;
               Hashtbl.remove t.table (key dev page);
               f.device <- None;
               f.page <- -1;
               f.fixes <- 0;
               lru_append t f;
               Mutex.unlock t.pool_lock;
               Mutex.unlock f.lock;
               raise exn);
            Mutex.unlock f.lock;
            f
          end)

let fix_general t dev page ~load =
  (* Consulted before any pool state changes: an injected denial models a
     transient out-of-buffer condition and leaks nothing. *)
  Injector.hit t.faults Volcano_fault.Bufpool_fix;
  match t.md with
  | Two_level -> fix_loop t dev page ~load ~attempts:0
  | Single_global ->
      Mutex.lock t.pool_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.pool_lock)
        (fun () ->
          match Hashtbl.find_opt t.table (key dev page) with
          | Some idx ->
              let f = t.frames.(idx) in
              if f.fixes = 0 then lru_remove t f;
              f.fixes <- f.fixes + 1;
              Atomic.incr t.n_hits;
              f
          | None -> (
              let rec victim idx =
                if idx < 0 then raise Buffer_exhausted
                else
                  let f = t.frames.(idx) in
                  if f.fixes = 0 then f else victim f.lru_next
              in
              let f = victim t.lru_head in
              lru_remove t f;
              (match f.device with
              | Some odev ->
                  (* Write back before unmapping, restoring the frame on
                     failure so the pool stays consistent. *)
                  (if f.dirty then
                     try
                       Device.write odev ~page:f.page f.data;
                       f.dirty <- false;
                       Atomic.incr t.n_writebacks
                     with exn ->
                       lru_append t f;
                       raise exn);
                  Hashtbl.remove t.table (key odev f.page);
                  Atomic.incr t.n_evictions
              | None -> ());
              Hashtbl.replace t.table (key dev page) f.index;
              f.device <- Some dev;
              f.page <- page;
              f.fixes <- 1;
              f.dirty <- false;
              Atomic.incr t.n_misses;
              (try load f
               with exn ->
                 Hashtbl.remove t.table (key dev page);
                 f.device <- None;
                 f.page <- -1;
                 f.fixes <- 0;
                 lru_append t f;
                 raise exn);
              f))

let fix t dev page =
  fix_general t dev page ~load:(fun f -> Device.read dev ~page f.data)

let fix_new t dev page =
  let f =
    fix_general t dev page ~load:(fun f ->
        Bytes.fill f.data 0 (Bytes.length f.data) '\000')
  in
  f.dirty <- true;
  f

let unfix t f =
  Mutex.lock t.pool_lock;
  if f.fixes <= 0 then begin
    Mutex.unlock t.pool_lock;
    invalid_arg "Bufpool.unfix: frame is not fixed"
  end;
  f.fixes <- f.fixes - 1;
  if f.fixes = 0 then lru_append t f;
  Mutex.unlock t.pool_lock

let mark_dirty f = f.dirty <- true
let bytes f = f.data

let frame_device f =
  match f.device with
  | Some d -> d
  | None -> invalid_arg "Bufpool.frame_device: empty frame"

let frame_page f = f.page
let fix_count f = f.fixes

let contains t dev page =
  Mutex.lock t.pool_lock;
  let resident = Hashtbl.mem t.table (key dev page) in
  Mutex.unlock t.pool_lock;
  resident

let flush_page t dev page =
  Mutex.lock t.pool_lock;
  let frame =
    match Hashtbl.find_opt t.table (key dev page) with
    | Some idx ->
        let f = t.frames.(idx) in
        if f.dirty && Mutex.try_lock f.lock then Some f else None
    | None -> None
  in
  Mutex.unlock t.pool_lock;
  match frame with
  | Some f ->
      Fun.protect ~finally:(fun () -> Mutex.unlock f.lock) (fun () ->
          write_back t f);
      true
  | None -> false

let prefetch t dev page =
  let f = fix t dev page in
  unfix t f

let flush_all t =
  Array.iter
    (fun f ->
      Mutex.lock f.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock f.lock) (fun () ->
          write_back t f))
    t.frames

let purge_device t dev =
  Mutex.lock t.pool_lock;
  Array.iter
    (fun f ->
      match f.device with
      | Some d when Device.id d = Device.id dev ->
          if f.fixes > 0 then begin
            Mutex.unlock t.pool_lock;
            invalid_arg "Bufpool.purge_device: page still fixed"
          end;
          Hashtbl.remove t.table (key d f.page);
          f.device <- None;
          f.page <- -1;
          f.dirty <- false
      | _ -> ())
    t.frames;
  Mutex.unlock t.pool_lock

let stats t =
  {
    hits = Atomic.get t.n_hits;
    misses = Atomic.get t.n_misses;
    evictions = Atomic.get t.n_evictions;
    writebacks = Atomic.get t.n_writebacks;
    restarts = Atomic.get t.n_restarts;
  }

let frames_total t = Array.length t.frames
let mode t = t.md

let leaked_fixes t =
  Mutex.lock t.pool_lock;
  let n = Array.fold_left (fun acc f -> acc + f.fixes) 0 t.frames in
  Mutex.unlock t.pool_lock;
  n

let leak_report t =
  Mutex.lock t.pool_lock;
  let leaks =
    Array.fold_left
      (fun acc f ->
        if f.fixes > 0 then
          Printf.sprintf "frame %d: %s page %d fixed %d times" f.index
            (match f.device with Some d -> Device.name d | None -> "<none>")
            f.page f.fixes
          :: acc
        else acc)
      [] t.frames
  in
  Mutex.unlock t.pool_lock;
  String.concat "\n" (List.rev leaks)

let assert_quiescent ?(what = "buffer pool") t =
  let n = leaked_fixes t in
  if n > 0 then
    failwith
      (Printf.sprintf "%s: %d leaked buffer fix(es)\n%s" what n (leak_report t))
