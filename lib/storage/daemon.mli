(** Read-ahead / write-behind daemons (paper, section 4.5).

    "One or more copies of this daemon process are forked when the buffer
    manager is initialized, and accept work requests on a queue and
    semaphore."  Requests are FLUSH (write a cluster if resident and dirty),
    READAHEAD (read a cluster onto the LRU chain), and QUIT. *)

type request =
  | Flush of Device.t * int
  | Read_ahead of Device.t * int

type t

val start :
  ?sched:Volcano_sched.Sched.t -> buffer:Bufpool.t -> workers:int -> unit -> t
(** Fork [workers] daemon domains serving a shared request queue.  With
    [~sched] naming a pool scheduler, no domains are forked: each request
    runs as a fire-and-forget task on the pool ([workers] is ignored), so
    an idle daemon holds no domain.  A dedicated scheduler falls back to
    daemon domains. *)

val submit : t -> request -> unit
(** Enqueue a request; returns immediately.
    @raise Invalid_argument after {!stop}. *)

val pending : t -> int

val drain : t -> unit
(** Block until the queue is empty and all workers are idle. *)

val stop : t -> unit
(** Send QUIT to every worker and join them.  Idempotent. *)

val flushes_done : t -> int
val reads_done : t -> int
