module Sched = Volcano_sched.Sched

type request =
  | Flush of Device.t * int
  | Read_ahead of Device.t * int

type job = Work of request | Quit

(* Two serving modes: dedicated daemon domains looping over the queue (the
   paper's forked daemon processes), or fire-and-forget tasks on a shared
   scheduler pool — one task per request, so idle daemons cost nothing. *)
type mode = Domains | Pooled of Sched.t

type t = {
  buffer : Bufpool.t;
  mode : mode;
  queue : job Queue.t; (* Domains mode only *)
  lock : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;
  mutable busy : int;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  flushes : int Atomic.t;
  reads : int Atomic.t;
}

let perform t request =
  match request with
  | Flush (dev, page) ->
      if Bufpool.flush_page t.buffer dev page then Atomic.incr t.flushes
  | Read_ahead (dev, page) ->
      Bufpool.prefetch t.buffer dev page;
      Atomic.incr t.reads

let retire t =
  Mutex.lock t.lock;
  t.busy <- t.busy - 1;
  if t.busy = 0 && Queue.is_empty t.queue then Condition.broadcast t.idle;
  Mutex.unlock t.lock

let serve t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue do
      Condition.wait t.nonempty t.lock
    done;
    let job = Queue.pop t.queue in
    (match job with Work _ -> t.busy <- t.busy + 1 | Quit -> ());
    Mutex.unlock t.lock;
    match job with
    | Quit -> ()
    | Work request ->
        perform t request;
        retire t;
        loop ()
  in
  loop ()

let start ?sched ~buffer ~workers () =
  assert (workers > 0);
  let mode =
    match sched with
    | Some s when Sched.is_pool s -> Pooled s
    | Some _ | None -> Domains
  in
  let t =
    {
      buffer;
      mode;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      busy = 0;
      stopped = false;
      workers = [];
      flushes = Atomic.make 0;
      reads = Atomic.make 0;
    }
  in
  (match mode with
  | Domains -> t.workers <- List.init workers (fun _ -> Domain.spawn (serve t))
  | Pooled _ -> ());
  t

let submit t request =
  Mutex.lock t.lock;
  if t.stopped then begin
    Mutex.unlock t.lock;
    invalid_arg "Daemon.submit: daemon stopped"
  end;
  match t.mode with
  | Domains ->
      Queue.push (Work request) t.queue;
      Condition.signal t.nonempty;
      Mutex.unlock t.lock
  | Pooled sched ->
      t.busy <- t.busy + 1;
      Mutex.unlock t.lock;
      ignore
        (Sched.fork sched (fun () ->
             Fun.protect
               ~finally:(fun () -> retire t)
               (fun () -> perform t request))
          : unit Sched.task)

let pending t =
  Mutex.lock t.lock;
  let n = Queue.length t.queue in
  Mutex.unlock t.lock;
  n

let drain t =
  Mutex.lock t.lock;
  while not (Queue.is_empty t.queue && t.busy = 0) do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock

let stop t =
  Mutex.lock t.lock;
  if not t.stopped then begin
    t.stopped <- true;
    match t.mode with
    | Domains ->
        List.iter (fun _ -> Queue.push Quit t.queue) t.workers;
        Condition.broadcast t.nonempty;
        Mutex.unlock t.lock;
        List.iter Domain.join t.workers
    | Pooled _ ->
        (* In-flight tasks belong to the pool; wait them out so stopped
           means quiescent, matching the joined-domains guarantee. *)
        Mutex.unlock t.lock;
        drain t
  end
  else Mutex.unlock t.lock

let flushes_done t = Atomic.get t.flushes
let reads_done t = Atomic.get t.reads
