(** Devices.

    A {e real} device is a file of fixed-size pages accessed with seek/read/
    write under the paper's two exclusive locks: the {e device busy} lock
    around the seek-and-transfer pair (two processes must not race between
    seek and transfer) and the {e map busy} lock around the free-space
    bitmap (section 4.5).

    A {e virtual} device has no backing store: its pages "exist only in the
    buffer, and are discarded when unfixed" (section 3).  Virtual devices
    give intermediate results real RIDs.  Ours additionally accept spilled
    pages (evicted while dirty) into an in-memory side table so that
    operators such as external sort can overflow the buffer pool. *)

type t

val create_real : path:string -> page_size:int -> capacity:int -> t
(** Create (truncating) a file-backed device of [capacity] pages.  Page 0 is
    reserved for the superblock. *)

val open_real : path:string -> t
(** Open an existing real device, restoring its bitmap and VTOC from the
    superblock written by {!close}. *)

val create_virtual : ?name:string -> page_size:int -> capacity:int -> unit -> t

val id : t -> int
(** Process-unique device number (the RID device component). *)

val name : t -> string
val page_size : t -> int
val capacity : t -> int
val is_virtual : t -> bool
val vtoc : t -> Vtoc.t

val read : t -> page:int -> bytes -> unit
(** Read a page into a frame.  Unwritten real pages read as zeros; reading a
    virtual page that was never spilled raises [Invalid_argument] (it can
    only live in the buffer pool). *)

val write : t -> page:int -> bytes -> unit

val allocate : t -> int
(** Allocate a free page.  @raise Failure when the device is full. *)

val free : t -> int -> unit
(** Return a page to the free map.  On a virtual device the spilled copy, if
    any, is discarded — this is the "discard on unfix" behaviour. *)

val allocated_pages : t -> int

val reads : t -> int
val writes : t -> int
(** I/O counters (tests and benchmarks). *)

val set_faults : t -> Volcano_fault.Injector.t -> unit
(** Install a fault injector consulted at the [Device_read] and
    [Device_write] sites (before each transfer).  Injected failures model
    media errors; injected delays model slow I/O.  Pass
    {!Volcano_fault.Injector.none} to clear. *)

val sync : t -> unit
(** Persist superblock (bitmap + VTOC) of a real device; no-op on virtual. *)

val close : t -> unit
(** Sync and release the backing file descriptor. *)
