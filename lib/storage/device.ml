module Injector = Volcano_fault.Injector

type backing =
  | Real of Unix.file_descr
  | Virtual of (int, Bytes.t) Hashtbl.t (* spilled pages *)

type t = {
  id : int;
  name : string;
  page_size : int;
  capacity : int;
  backing : backing;
  device_busy : Mutex.t; (* held across seek + transfer *)
  map_busy : Mutex.t; (* held across bitmap search/update *)
  mutable map : Bitmap.t;
  mutable table : Vtoc.t;
  reads : int Atomic.t;
  writes : int Atomic.t;
  mutable faults : Injector.t; (* chaos harness: I/O fault injection *)
}

let next_id = Atomic.make 0

let superblock_magic = 0x564f4c43 (* "VOLC" *)

let check_page t page =
  if page < 1 || page >= t.capacity then
    invalid_arg
      (Printf.sprintf "Device %s: page %d out of range [1,%d)" t.name page t.capacity)

let make ~name ~page_size ~capacity backing =
  assert (page_size >= 64);
  assert (capacity >= 2);
  let map = Bitmap.create capacity in
  Bitmap.set map 0;
  (* superblock page *)
  {
    id = Atomic.fetch_and_add next_id 1;
    name;
    page_size;
    capacity;
    backing;
    device_busy = Mutex.create ();
    map_busy = Mutex.create ();
    map;
    table = Vtoc.create ();
    reads = Atomic.make 0;
    writes = Atomic.make 0;
    faults = Injector.none;
  }

let set_faults t faults = t.faults <- faults

let create_real ~path ~page_size ~capacity =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  make ~name:path ~page_size ~capacity (Real fd)

let create_virtual ?(name = "<virtual>") ~page_size ~capacity () =
  make ~name ~page_size ~capacity (Virtual (Hashtbl.create 64))

let id t = t.id
let name t = t.name
let page_size t = t.page_size
let capacity t = t.capacity
let is_virtual t = match t.backing with Virtual _ -> true | Real _ -> false
let vtoc t = t.table
let reads t = Atomic.get t.reads
let writes t = Atomic.get t.writes

let read_exact fd buf =
  let rec step pos =
    if pos < Bytes.length buf then begin
      (* conclint: allow CL003 -- page-sized read from a regular file:
         disk I/O is the device's whole job, and the prefetch daemon
         fiber exists precisely to absorb this stall off the scan path. *)
      let n = Unix.read fd buf pos (Bytes.length buf - pos) in
      if n = 0 then
        (* Short read past EOF: the page was never written. *)
        Bytes.fill buf pos (Bytes.length buf - pos) '\000'
      else step (pos + n)
    end
  in
  step 0

let write_exact fd buf =
  let rec step pos =
    if pos < Bytes.length buf then
      (* conclint: allow CL003 -- page-sized write to a regular file;
         the write-back daemon fiber absorbs the stall by design. *)
      let n = Unix.write fd buf pos (Bytes.length buf - pos) in
      step (pos + n)
  in
  step 0

let read t ~page buf =
  check_page t page;
  if Bytes.length buf <> t.page_size then invalid_arg "Device.read: bad frame size";
  Injector.hit t.faults Volcano_fault.Device_read;
  Atomic.incr t.reads;
  match t.backing with
  | Real fd ->
      Mutex.lock t.device_busy;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.device_busy)
        (fun () ->
          let _ = Unix.lseek fd (page * t.page_size) Unix.SEEK_SET in
          read_exact fd buf)
  | Virtual spilled -> (
      Mutex.lock t.device_busy;
      let copy = Hashtbl.find_opt spilled page in
      Mutex.unlock t.device_busy;
      match copy with
      | Some data -> Bytes.blit data 0 buf 0 t.page_size
      | None ->
          invalid_arg
            (Printf.sprintf "Device %s: virtual page %d is not resident" t.name page))

let write t ~page buf =
  check_page t page;
  if Bytes.length buf <> t.page_size then invalid_arg "Device.write: bad frame size";
  Injector.hit t.faults Volcano_fault.Device_write;
  Atomic.incr t.writes;
  match t.backing with
  | Real fd ->
      Mutex.lock t.device_busy;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.device_busy)
        (fun () ->
          let _ = Unix.lseek fd (page * t.page_size) Unix.SEEK_SET in
          write_exact fd buf)
  | Virtual spilled ->
      Mutex.lock t.device_busy;
      Hashtbl.replace spilled page (Bytes.copy buf);
      Mutex.unlock t.device_busy

let allocate t =
  Mutex.lock t.map_busy;
  let page = Bitmap.allocate t.map in
  Mutex.unlock t.map_busy;
  match page with
  | Some p -> p
  | None -> failwith (Printf.sprintf "Device %s: out of pages (%d)" t.name t.capacity)

let free t page =
  check_page t page;
  Mutex.lock t.map_busy;
  Bitmap.clear t.map page;
  Mutex.unlock t.map_busy;
  match t.backing with
  | Real _ -> ()
  | Virtual spilled ->
      Mutex.lock t.device_busy;
      Hashtbl.remove spilled page;
      Mutex.unlock t.device_busy

let allocated_pages t =
  Mutex.lock t.map_busy;
  let n = Bitmap.used t.map in
  Mutex.unlock t.map_busy;
  n

(* Superblock layout: magic, page_size, capacity, bitmap length + bytes,
   VTOC encoding.  It must fit in page 0. *)
let encode_superblock t =
  let buffer = Buffer.create t.page_size in
  Buffer.add_int32_le buffer (Int32.of_int superblock_magic);
  Buffer.add_int32_le buffer (Int32.of_int t.page_size);
  Buffer.add_int32_le buffer (Int32.of_int t.capacity);
  let map_bytes = Mutex.lock t.map_busy; let b = Bitmap.to_bytes t.map in Mutex.unlock t.map_busy; b in
  Buffer.add_int32_le buffer (Int32.of_int (Bytes.length map_bytes));
  Buffer.add_bytes buffer map_bytes;
  Buffer.add_bytes buffer (Vtoc.encode t.table);
  let encoded = Buffer.to_bytes buffer in
  if Bytes.length encoded > t.page_size then
    failwith (Printf.sprintf "Device %s: superblock exceeds page size" t.name);
  let page = Bytes.make t.page_size '\000' in
  Bytes.blit encoded 0 page 0 (Bytes.length encoded);
  page

let sync t =
  match t.backing with
  | Virtual _ -> ()
  | Real fd ->
      let page = encode_superblock t in
      Mutex.lock t.device_busy;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.device_busy)
        (fun () ->
          let _ = Unix.lseek fd 0 Unix.SEEK_SET in
          write_exact fd page)

let open_real ~path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  (* Read a generous prefix to discover the real page size. *)
  let probe = Bytes.make 16 '\000' in
  read_exact fd probe;
  let magic = Int32.to_int (Bytes.get_int32_le probe 0) in
  if magic <> superblock_magic then failwith (path ^ ": not a Volcano device");
  let page_size = Int32.to_int (Bytes.get_int32_le probe 4) in
  let capacity = Int32.to_int (Bytes.get_int32_le probe 8) in
  let page = Bytes.make page_size '\000' in
  let _ = Unix.lseek fd 0 Unix.SEEK_SET in
  read_exact fd page;
  let map_len = Int32.to_int (Bytes.get_int32_le page 12) in
  let map = Bitmap.of_bytes (Bytes.sub page 16 map_len) ~n:capacity in
  let table, _ = Vtoc.decode page ~pos:(16 + map_len) in
  let t = make ~name:path ~page_size ~capacity (Real fd) in
  t.map <- map;
  t.table <- table;
  t

let close t =
  sync t;
  match t.backing with Real fd -> Unix.close fd | Virtual _ -> ()
