(** The buffer manager.

    Pages are {e fixed} (pinned) in the pool and later {e unfixed}; each
    fixed frame is owned by the fixing code until it unfixes or hands the
    frame on — the paper's record-ownership protocol (section 3).

    Concurrency follows section 4.5's two-level scheme: one {e pool} lock
    protects the hash table and the LRU chain and "is never held while doing
    I/O"; each descriptor has its own lock, taken with an atomic
    test-and-lock.  If the test fails the whole operation — including the
    hash-table lookup — is released, delayed, and restarted, because the
    lock holder may be reading or replacing the very cluster requested.
    This restart scheme has no hold-and-wait and therefore cannot deadlock.

    For the locking ablation (DESIGN.md A4) a [`Single_global] mode
    serializes every operation, I/O included, under one lock — the
    alternative the paper rejected for "decreased concurrency". *)

type t
type frame

type mode = Two_level | Single_global

exception Buffer_exhausted
(** Raised when every frame is fixed and a new page is requested. *)

val create : ?mode:mode -> frames:int -> page_size:int -> unit -> t

val fix : t -> Device.t -> int -> frame
(** Pin a page, reading it from the device on a miss. *)

val fix_new : t -> Device.t -> int -> frame
(** Pin a freshly-allocated page without reading; the frame arrives zeroed
    and dirty. *)

val unfix : t -> frame -> unit
(** Release one pin.  @raise Invalid_argument if the frame is not fixed. *)

val mark_dirty : frame -> unit

val bytes : frame -> bytes
(** The page contents.  Valid only while the frame is fixed. *)

val frame_device : frame -> Device.t
val frame_page : frame -> int
val fix_count : frame -> int

val contains : t -> Device.t -> int -> bool
(** Whether the page is currently resident (instrumentation). *)

val flush_page : t -> Device.t -> int -> bool
(** Write the page back if resident and dirty; returns whether a write
    happened.  Used by the write-behind daemon. *)

val prefetch : t -> Device.t -> int -> unit
(** Read a page into the pool and leave it unfixed on the LRU chain — the
    read-ahead daemon's operation. *)

val flush_all : t -> unit
(** Write back every dirty frame. *)

val purge_device : t -> Device.t -> unit
(** Drop all resident pages of a device without write-back (used when
    dropping virtual devices).  Pages must be unfixed. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  restarts : int;  (** descriptor-lock restarts (contention metric) *)
}

val stats : t -> stats
val frames_total : t -> int
val mode : t -> mode

val set_faults : t -> Volcano_fault.Injector.t -> unit
(** Install a fault injector consulted at the [Bufpool_fix] site, before
    any pool state changes — an injected failure is a clean fix denial.
    Pass {!Volcano_fault.Injector.none} to clear. *)

(** {2 Leak detection} *)

val leaked_fixes : t -> int
(** Total outstanding fix counts across all frames.  Zero whenever no
    query is running: every operator must balance its fixes even when it
    fails or is cancelled. *)

val leak_report : t -> string
(** Human-readable listing of still-fixed frames (empty when quiescent). *)

val assert_quiescent : ?what:string -> t -> unit
(** @raise Failure with {!leak_report} if any frame is still fixed.
    Called from test teardowns: a failed or cancelled query must leave
    the pool quiescent. *)
