(** The partition catalog: how a stored table is split into partition
    files and which site owns each partition.  Pure placement metadata —
    the row-level partition function is interpreted above the storage
    layer (range bounds are opaque Serial-encoded bytes down here), and
    the byte image pins the format a catalog crosses process boundaries
    in. *)

type spec =
  | Hash of int list  (** hash of the listed columns, mod parts *)
  | Range of int * string array
      (** column, inclusive upper bounds (Serial-encoded single-column
          tuples); [parts - 1] bounds split the domain into [parts] *)

type entry = {
  table : string;
  parts : int;
  spec : spec;
  sites : int array;  (** partition [k] lives at site [sites.(k)] *)
}

type t

exception Corrupt_catalog of string

val create : unit -> t

val partition_name : table:string -> part:int -> string
(** The heap-file naming convention partition files live under
    (["table#part"]), shared with the compiler's group-rank lookup. *)

val add : t -> entry -> unit
(** Raises [Invalid_argument] on a duplicate table or an inconsistent
    entry (parts/sites/bounds disagreement). *)

val find : t -> string -> entry option
val remove : t -> string -> bool
val tables : t -> string list
val entry_count : t -> int

val site_of : t -> table:string -> part:int -> int option
(** Which site serves shard [part] of [table]; [None] when the table is
    uncataloged or the partition out of range. *)

val partitions_of_site : entry -> site:int -> int list
(** Every partition the site owns, in partition order. *)

val encode : t -> bytes

val decode : bytes -> pos:int -> t * int
(** Decode an image produced by [encode]; returns the catalog and the
    number of bytes consumed.  Raises [Corrupt_catalog] on a truncated
    or inconsistent image. *)
