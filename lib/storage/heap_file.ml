type t = {
  name : string;
  device : Device.t;
  buffer : Bufpool.t;
  lock : Mutex.t; (* serializes structural changes (append, delete) *)
  mutable first_page : int;
  mutable last_page : int;
  mutable pages : int;
  mutable records : int;
}

let page_kind_heap = 1

let create ~buffer ~device ~name =
  let entry =
    { Vtoc.name; first_page = -1; last_page = -1; pages = 0; records = 0 }
  in
  Vtoc.add (Device.vtoc device) entry;
  {
    name;
    device;
    buffer;
    lock = Mutex.create ();
    first_page = -1;
    last_page = -1;
    pages = 0;
    records = 0;
  }

let open_existing ~buffer ~device ~name =
  match Vtoc.find (Device.vtoc device) name with
  | None -> raise Not_found
  | Some e ->
      {
        name;
        device;
        buffer;
        lock = Mutex.create ();
        first_page = e.first_page;
        last_page = e.last_page;
        pages = e.pages;
        records = e.records;
      }

let name t = t.name
let device t = t.device
let record_count t = t.records
let page_count t = t.pages

let sync_vtoc t =
  match Vtoc.find (Device.vtoc t.device) t.name with
  | None -> ()
  | Some e ->
      e.first_page <- t.first_page;
      e.last_page <- t.last_page;
      e.pages <- t.pages;
      e.records <- t.records

let add_page t =
  let page_no = Device.allocate t.device in
  let frame =
    try Bufpool.fix_new t.buffer t.device page_no
    with exn ->
      Device.free t.device page_no;
      raise exn
  in
  (* Self-clean on failure: if linking the previous tail fails (e.g. an
     injected fix denial), the new frame must not stay fixed and the file
     must be left unchanged. *)
  (try
     Page.init (Bufpool.bytes frame) ~kind:page_kind_heap;
     Bufpool.mark_dirty frame;
     if t.first_page <> -1 then begin
       (* Link the previous tail to the new page. *)
       let prev = Bufpool.fix t.buffer t.device t.last_page in
       Page.set_next_page (Bufpool.bytes prev) page_no;
       Bufpool.mark_dirty prev;
       Bufpool.unfix t.buffer prev
     end
   with exn ->
     Bufpool.unfix t.buffer frame;
     Device.free t.device page_no;
     raise exn);
  if t.first_page = -1 then t.first_page <- page_no;
  t.last_page <- page_no;
  t.pages <- t.pages + 1;
  (page_no, frame)

let insert t record =
  if String.length record = 0 then invalid_arg "Heap_file.insert: empty record";
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let page_no, frame =
        if t.last_page = -1 then add_page t
        else (t.last_page, Bufpool.fix t.buffer t.device t.last_page)
      in
      match Page.insert (Bufpool.bytes frame) record with
      | Some slot ->
          Bufpool.mark_dirty frame;
          Bufpool.unfix t.buffer frame;
          t.records <- t.records + 1;
          Rid.make ~device:(Device.id t.device) ~page:page_no ~slot
      | None ->
          Bufpool.unfix t.buffer frame;
          let page_no, frame = add_page t in
          (match Page.insert (Bufpool.bytes frame) record with
          | Some slot ->
              Bufpool.mark_dirty frame;
              Bufpool.unfix t.buffer frame;
              t.records <- t.records + 1;
              Rid.make ~device:(Device.id t.device) ~page:page_no ~slot
          | None ->
              Bufpool.unfix t.buffer frame;
              invalid_arg
                (Printf.sprintf "Heap_file.insert: record of %d bytes exceeds page capacity"
                   (String.length record))))

let get t rid =
  if rid.Rid.device <> Device.id t.device then None
  else begin
    let frame = Bufpool.fix t.buffer t.device rid.Rid.page in
    let result = Page.read (Bufpool.bytes frame) rid.Rid.slot in
    Bufpool.unfix t.buffer frame;
    result
  end

let delete t rid =
  if rid.Rid.device <> Device.id t.device then false
  else begin
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let frame = Bufpool.fix t.buffer t.device rid.Rid.page in
        let deleted = Page.delete (Bufpool.bytes frame) rid.Rid.slot in
        if deleted then begin
          Bufpool.mark_dirty frame;
          t.records <- t.records - 1
        end;
        Bufpool.unfix t.buffer frame;
        deleted)
  end

let update t rid record =
  if rid.Rid.device <> Device.id t.device then false
  else begin
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let frame = Bufpool.fix t.buffer t.device rid.Rid.page in
        let updated = Page.replace (Bufpool.bytes frame) rid.Rid.slot record in
        if updated then Bufpool.mark_dirty frame;
        Bufpool.unfix t.buffer frame;
        updated)
  end

let page_chain t =
  let rec walk page acc =
    if page = -1 then List.rev acc
    else begin
      let frame = Bufpool.fix t.buffer t.device page in
      let next = Page.next_page (Bufpool.bytes frame) in
      Bufpool.unfix t.buffer frame;
      walk next (page :: acc)
    end
  in
  walk t.first_page []

type cursor = {
  file : t;
  mutable frame : Bufpool.frame option; (* currently pinned page *)
  mutable page_no : int;
  mutable slot : int;
  mutable finished : bool;
}

let scan t = { file = t; frame = None; page_no = t.first_page; slot = 0; finished = t.first_page = -1 }

let release cursor =
  match cursor.frame with
  | Some f ->
      Bufpool.unfix cursor.file.buffer f;
      cursor.frame <- None
  | None -> ()

let close_cursor cursor =
  release cursor;
  cursor.finished <- true

let rec next cursor =
  if cursor.finished then None
  else
    match cursor.frame with
    | None ->
        if cursor.page_no = -1 then begin
          cursor.finished <- true;
          None
        end
        else begin
          cursor.frame <-
            Some (Bufpool.fix cursor.file.buffer cursor.file.device cursor.page_no);
          cursor.slot <- 0;
          next cursor
        end
    | Some frame ->
        let data = Bufpool.bytes frame in
        if cursor.slot >= Page.n_slots data then begin
          let next_page = Page.next_page data in
          release cursor;
          cursor.page_no <- next_page;
          next cursor
        end
        else begin
          let slot = cursor.slot in
          cursor.slot <- slot + 1;
          match Page.read data slot with
          | None -> next cursor
          | Some record ->
              let rid =
                Rid.make ~device:(Device.id cursor.file.device)
                  ~page:cursor.page_no ~slot
              in
              Some (rid, record)
        end

let iter t f =
  let cursor = scan t in
  let rec step () =
    match next cursor with
    | None -> ()
    | Some (rid, record) ->
        f rid record;
        step ()
  in
  Fun.protect ~finally:(fun () -> close_cursor cursor) step

let drop t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      (* Walk the chain collecting page numbers before purging frames. *)
      let rec chain page acc =
        if page = -1 then List.rev acc
        else begin
          let frame = Bufpool.fix t.buffer t.device page in
          let next = Page.next_page (Bufpool.bytes frame) in
          Bufpool.unfix t.buffer frame;
          chain next (page :: acc)
        end
      in
      let pages = chain t.first_page [] in
      List.iter
        (fun p ->
          let _ = Bufpool.flush_page t.buffer t.device p in
          Device.free t.device p)
        pages;
      t.first_page <- -1;
      t.last_page <- -1;
      t.pages <- 0;
      t.records <- 0;
      let _ = Vtoc.remove (Device.vtoc t.device) t.name in
      ())
