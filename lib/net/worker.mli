(** The worker-process side of remote exchange.

    A worker is spawned by {!Launcher.launch}, connects back over the
    Unix-domain socket it was given, receives a [Hello] frame naming its
    task and shard, resolves the task to a record stream, and streams
    [Data] frames (one packet of {!Volcano_tuple.Serial}-encoded records
    each) followed by [Eos] — or an [Err] frame carrying the failure's
    site and message, which the consumer re-raises as the selfsame
    [Query_failed].  A [Cancel] frame (checked between packets) or a torn
    connection ends the worker cleanly. *)

type pull = unit -> Volcano_tuple.Tuple.t option

val run :
  socket:string ->
  resolve:(task:string -> shard:int -> shards:int -> pull) ->
  unit
(** Worker-process main.  [resolve] maps the opaque task string to this
    shard's record stream — typically: rebuild the plan the task names,
    slice its leaves to [shard] of [shards] ([Remote.slice]), compile,
    and drain.  An exception from [resolve] or from the stream is
    reported as an [Err] frame; this function never raises and returns
    once the socket is closed. *)
