(** Packet ↔ frame-payload codec.

    One tuple encoding for the whole system: {!Volcano_tuple.Serial}, the
    storage layer's format.  A [Data] payload is a 2-byte little-endian
    record count followed by the serialized tuples; a row-list payload
    (serve responses) is the same with a 4-byte count. *)

val encode : Volcano.Packet.t -> bytes
(** Serialize a packet's records (the end-of-stream tag does not cross
    the wire: it is its own frame kind). *)

val decode_into : bytes -> Volcano.Packet.t -> unit
(** Decode a [Data] payload into an empty packet shell (from the port
    lane's recycling pool).
    @raise Wire.Corrupt on truncated input, a bad tag, trailing bytes, or
    a count exceeding the shell's capacity. *)

val encode_rows : Volcano_tuple.Tuple.t list -> bytes
val decode_rows : bytes -> Volcano_tuple.Tuple.t list
