module Obs = Volcano_obs.Obs

(* The query-serving plane: a daemon wrapping a Session behind the same
   framed protocol the data plane uses, a thread per connection (handler
   threads spend their lives blocked in socket reads or in Session.await,
   both safe off the fiber pool), and a tiny client.

   A connection is persistent: a client sends any number of Request
   frames, each answered by exactly one Resp_ok/Resp_err, so a
   load-generating client measures per-request latency without paying a
   connection setup per query. *)

type handler = string -> (Volcano_tuple.Tuple.t list, string * string) result

module Server = struct
  type t = {
    listener : Unix.file_descr;
    stopping : bool Atomic.t;
    lock : Mutex.t;
    mutable conns : Unix.file_descr list;
    mutable handlers : Thread.t list;
    mutable acceptor : Thread.t option;
    requests : Obs.Counter.t;
    errors : Obs.Counter.t;
    latency : Obs.Histogram.t;
  }

  let with_lock t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let requests t = Obs.Counter.value t.requests
  let errors t = Obs.Counter.value t.errors

  let initiate_stop t =
    if not (Atomic.exchange t.stopping true) then begin
      (* Closing the listener kicks the acceptor out of accept; shutting
         the live connections kicks handlers out of their reads. *)
      (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with _ -> ());
      (try Unix.close t.listener with _ -> ());
      with_lock t (fun () -> t.conns)
      |> List.iter (fun fd ->
             try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
    end

  let handle_conn t ~handle fd =
    let finally () =
      with_lock t (fun () -> t.conns <- List.filter (fun c -> c <> fd) t.conns);
      try Unix.close fd with _ -> ()
    in
    Fun.protect ~finally (fun () ->
        let rec loop () =
          match Wire.read_frame fd with
          | Wire.Request, payload ->
              Obs.Counter.incr t.requests;
              let t0 = Obs.now () in
              (match handle (Bytes.to_string payload) with
              | Ok rows ->
                  Wire.write_frame fd Wire.Resp_ok (Codec.encode_rows rows)
              | Error (site, message) ->
                  Obs.Counter.incr t.errors;
                  Wire.write_frame fd Wire.Resp_err (Wire.err ~site ~message)
              | exception exn ->
                  Obs.Counter.incr t.errors;
                  Wire.write_frame fd Wire.Resp_err
                    (Wire.err ~site:"serve" ~message:(Printexc.to_string exn)));
              Obs.Histogram.observe t.latency (Obs.now () -. t0);
              loop ()
          | Wire.Shutdown, _ -> initiate_stop t
          | _, _ -> () (* protocol violation: drop the connection *)
          | exception _ -> () (* client went away (or we are stopping) *)
        in
        loop ())

  let start ?(obs = Obs.null) ~socket ~handle () =
    (* A client that vanished mid-response must cost one connection,
       not the whole server. *)
    Wire.ignore_sigpipe ();
    (try Unix.unlink socket with _ -> ());
    let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind listener (Unix.ADDR_UNIX socket);
    (* Hundreds of clients connect at once in the load bench: the backlog
       must absorb the burst, not reset it. *)
    Unix.listen listener 1024;
    let t =
      {
        listener;
        stopping = Atomic.make false;
        lock = Mutex.create ();
        conns = [];
        handlers = [];
        acceptor = None;
        requests = Obs.counter obs "serve.requests";
        errors = Obs.counter obs "serve.errors";
        latency = Obs.histogram obs "serve.latency_s";
      }
    in
    let acceptor =
      Thread.create
        (fun () ->
          let rec loop () =
            match
              (* conclint: allow CL003 -- the acceptor is a dedicated
                 systhread, never a pool fiber. *)
              Unix.accept t.listener
            with
            | fd, _ ->
                if Atomic.get t.stopping then (
                  try Unix.close fd with _ -> ())
                else begin
                  with_lock t (fun () ->
                      t.conns <- fd :: t.conns;
                      t.handlers <-
                        Thread.create (fun () -> handle_conn t ~handle fd) ()
                        :: t.handlers)
                end;
                loop ()
            | exception _ -> () (* listener closed: stopping *)
          in
          loop ())
        ()
    in
    t.acceptor <- Some acceptor;
    t

  let stop t =
    initiate_stop t;
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    let rec drain () =
      match with_lock t (fun () -> t.handlers) with
      | [] -> ()
      | handlers ->
          with_lock t (fun () ->
              t.handlers <-
                List.filter
                  (fun th -> not (List.memq th handlers))
                  t.handlers);
          List.iter Thread.join handlers;
          drain ()
    in
    drain ()

  (* Block until something stops the server (a [Shutdown] frame, or
     [stop] from another thread), then finish the teardown.  The daemon
     entry point's main loop. *)
  let wait t =
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    stop t
end

module Client = struct
  type t = Unix.file_descr

  let connect ~socket =
    Wire.ignore_sigpipe ();
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (* conclint: allow CL003 -- clients run on their own threads (bench
       load generators, the CLI), never on a pool fiber. *)
    (try Unix.connect fd (Unix.ADDR_UNIX socket)
     with exn ->
       (try Unix.close fd with _ -> ());
       raise exn);
    fd

  let query fd task =
    Wire.write_frame fd Wire.Request (Bytes.of_string task);
    match Wire.read_frame fd with
    | Wire.Resp_ok, payload -> Ok (Codec.decode_rows payload)
    | Wire.Resp_err, payload -> Error (Wire.parse_err payload)
    | _, _ -> raise (Wire.Corrupt "serve: unexpected response kind")

  let shutdown_server fd = Wire.write_frame fd Wire.Shutdown Bytes.empty
  let close fd = try Unix.close fd with _ -> ()
end
