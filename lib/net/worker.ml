module Packet = Volcano.Packet
module Exchange = Volcano.Exchange

(* The worker half of remote exchange: connect back to the parent,
   receive a shard assignment, resolve it to a record stream, and pump
   serialized packets until end of stream, cancellation, or failure.

   The worker is intentionally dumb about plans: [resolve] maps the
   opaque task string (plus this worker's shard) to a pull function, so
   the vocabulary of tasks lives with whoever owns both sides of the
   socket (the CLI, the test harness), and no closures ever cross the
   process boundary. *)

type pull = unit -> Volcano_tuple.Tuple.t option

let failure_site = function
  | Exchange.Query_failed { site; origin } ->
      (site, Printexc.to_string origin)
  | Volcano_fault.Injected { site; _ } as exn ->
      (Volcano_fault.site_name site, Printexc.to_string exn)
  | exn -> ("net-worker", Printexc.to_string exn)

let cancelled fd =
  Wire.frame_ready fd
  &&
  match Wire.read_frame fd with
  | Wire.Cancel, _ -> true
  | _ -> false
  | exception _ -> true

let run ~socket ~resolve =
  (* A parent that cancelled us closes its end; a write must then raise
     EPIPE (caught below as a clean exit), not kill the process with
     SIGPIPE before the handler can reason about it. *)
  Wire.ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* conclint: allow CL003 -- the worker process's main thread is a
     dedicated transport context; there is no pool here at all. *)
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let finish () = try Unix.close fd with _ -> () in
  match Wire.read_frame fd with
  | exception _ -> finish ()
  | Wire.Hello, payload -> (
      let { Wire.task; shard; shards; packet_size } =
        Wire.parse_hello payload
      in
      let report_failure exn =
        let site, message = failure_site exn in
        try Wire.write_frame fd Wire.Err (Wire.err ~site ~message)
        with _ -> ()
      in
      match resolve ~task ~shard ~shards with
      | exception exn ->
          report_failure exn;
          finish ()
      | next -> (
          let shell = Packet.create ~capacity:packet_size ~producer:shard in
          let flush () =
            if not (Packet.is_empty shell) then begin
              Wire.write_frame fd Wire.Data (Codec.encode shell);
              Packet.reset shell
            end
          in
          match
            let rec pump () =
              match next () with
              | None -> flush ()
              | Some tuple ->
                  Packet.add shell tuple;
                  if Packet.is_full shell then begin
                    (* Between packets is the cancellation point: a
                       Cancel frame (or a torn-down connection) stops the
                       stream without waiting for the shard to drain. *)
                    if cancelled fd then raise Exit;
                    flush ()
                  end;
                  pump ()
            in
            pump ()
          with
          | () -> (
              match Wire.write_frame fd Wire.Eos Bytes.empty with
              | () -> finish ()
              | exception _ -> finish ())
          | exception Exit -> finish ()
          | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
              (* The parent went away mid-stream: that is a cancellation
                 from our perspective, not a failure to report. *)
              finish ()
          | exception exn ->
              report_failure exn;
              finish ()))
  | _ -> finish ()
