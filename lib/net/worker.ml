module Packet = Volcano.Packet
module Exchange = Volcano.Exchange

(* The worker half of remote exchange: connect back to the parent,
   receive a shard assignment, resolve it to a record stream, and pump
   serialized packets until end of stream, cancellation, or failure.

   The worker is intentionally dumb about plans: [resolve] maps the
   opaque task string (plus this worker's shard) to a pull function, so
   the vocabulary of tasks lives with whoever owns both sides of the
   socket (the CLI, the test harness), and no closures ever cross the
   process boundary.

   Two stream modes, chosen by the parent's Hello: a merge edge sends
   [Data] frames (any consumer may take any packet), while a
   repartitioning edge applies the partition function the parent shipped
   in a [Repartition] frame and sends routed packets — one open shell per
   destination, each flushed as [u16 dest | packet bytes]. *)

type pull = unit -> Volcano_tuple.Tuple.t option

let failure_site = function
  | Exchange.Query_failed { site; origin } ->
      (site, Printexc.to_string origin)
  | Volcano_fault.Injected { site; _ } as exn ->
      (Volcano_fault.site_name site, Printexc.to_string exn)
  | exn -> ("net-worker", Printexc.to_string exn)

let cancelled fd =
  Wire.frame_ready fd
  &&
  match Wire.read_frame fd with
  | Wire.Cancel, _ -> true
  | _ -> false
  | exception _ -> true

(* The worker address vocabulary, shared with {!Launcher}: a plain
   string is a Unix-domain socket path; "tcp:HOST:PORT" dials the TCP
   lane (with Nagle off — the stream is already batched into frames, so
   delaying a flushed packet buys nothing). *)
let tcp_prefix = "tcp:"

let is_tcp address =
  String.length address > String.length tcp_prefix
  && String.sub address 0 (String.length tcp_prefix) = tcp_prefix

let connect address =
  if is_tcp address then begin
    let rest =
      String.sub address (String.length tcp_prefix)
        (String.length address - String.length tcp_prefix)
    in
    match String.rindex_opt rest ':' with
    | None -> invalid_arg ("Worker.connect: bad tcp address " ^ address)
    | Some i ->
        let host = String.sub rest 0 i in
        let port =
          match int_of_string_opt (String.sub rest (i + 1) (String.length rest - i - 1)) with
          | Some p when p > 0 && p < 65536 -> p
          | Some _ | None ->
              invalid_arg ("Worker.connect: bad tcp port in " ^ address)
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (* conclint: allow CL003 -- the worker process's main thread is a
           dedicated transport context; there is no pool here at all. *)
        (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
         with exn ->
           (try Unix.close fd with _ -> ());
           raise exn);
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
        fd
  end
  else begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (* conclint: allow CL003 -- the worker process's main thread is a
       dedicated transport context; there is no pool here at all. *)
    (try Unix.connect fd (Unix.ADDR_UNIX address)
     with exn ->
       (try Unix.close fd with _ -> ());
       raise exn);
    fd
  end

(* Merge mode: one shell, flushed as mergeable [Data] frames. *)
let pump_merge fd ~packet_size ~shard next =
  let shell = Packet.create ~capacity:packet_size ~producer:shard in
  let flush () =
    if not (Packet.is_empty shell) then begin
      Wire.write_frame fd Wire.Data (Codec.encode shell);
      Packet.reset shell
    end
  in
  let rec pump () =
    match next () with
    | None -> flush ()
    | Some tuple ->
        Packet.add shell tuple;
        if Packet.is_full shell then begin
          (* Between packets is the cancellation point: a Cancel frame
             (or a torn-down connection) stops the stream without
             waiting for the shard to drain. *)
          if cancelled fd then raise Exit;
          flush ()
        end;
        pump ()
  in
  pump ()

(* Repartition mode: one shell per destination; a full (or final) shell
   flushes as a routed frame.  Tail flushes walk every destination so a
   key that hashed to a lone row still arrives. *)
let pump_repartition fd ~packet_size ~shard ~repartition next =
  let { Wire.dests; spec } = repartition in
  let route = Repart.route spec ~dests in
  let shells =
    Array.init dests (fun _ -> Packet.create ~capacity:packet_size ~producer:shard)
  in
  let flush dest =
    let shell = shells.(dest) in
    if not (Packet.is_empty shell) then begin
      let body = Codec.encode shell in
      let payload = Bytes.create (2 + Bytes.length body) in
      Bytes.set_uint16_le payload 0 dest;
      Bytes.blit body 0 payload 2 (Bytes.length body);
      Wire.write_frame fd Wire.Repartition payload;
      Packet.reset shell
    end
  in
  let rec pump () =
    match next () with
    | None -> Array.iteri (fun dest _ -> flush dest) shells
    | Some tuple ->
        let dest = ((route tuple mod dests) + dests) mod dests in
        let shell = shells.(dest) in
        Packet.add shell tuple;
        if Packet.is_full shell then begin
          if cancelled fd then raise Exit;
          flush dest
        end;
        pump ()
  in
  pump ()

let run ~socket ~resolve =
  (* A parent that cancelled us closes its end; a write must then raise
     EPIPE (caught below as a clean exit), not kill the process with
     SIGPIPE before the handler can reason about it. *)
  Wire.ignore_sigpipe ();
  let fd = connect socket in
  let finish () = try Unix.close fd with _ -> () in
  match Wire.read_frame fd with
  | exception _ -> finish ()
  | Wire.Hello, payload -> (
      let { Wire.task; shard; shards; packet_size; repartition } =
        Wire.parse_hello payload
      in
      let report_failure exn =
        let site, message = failure_site exn in
        try Wire.write_frame fd Wire.Err (Wire.err ~site ~message)
        with _ -> ()
      in
      match
        let repartition =
          if not repartition then None
          else
            match Wire.read_frame fd with
            | Wire.Repartition, payload ->
                Some (Wire.parse_repartition payload)
            | _ -> raise (Wire.Corrupt "expected a Repartition frame")
        in
        (repartition, resolve ~task ~shard ~shards)
      with
      | exception exn ->
          report_failure exn;
          finish ()
      | repartition, next -> (
          match
            match repartition with
            | None -> pump_merge fd ~packet_size ~shard next
            | Some repartition ->
                pump_repartition fd ~packet_size ~shard ~repartition next
          with
          | () -> (
              match Wire.write_frame fd Wire.Eos Bytes.empty with
              | () -> finish ()
              | exception _ -> finish ())
          | exception Exit -> finish ()
          | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
              (* The parent went away mid-stream: that is a cancellation
                 from our perspective, not a failure to report. *)
              finish ()
          | exception exn ->
              report_failure exn;
              finish ()))
  | _ -> finish ()
