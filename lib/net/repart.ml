module Shard = Volcano_storage.Shard
module Support = Volcano_tuple.Support
module Serial = Volcano_tuple.Serial

(* Interpret a wire-safe partition spec as a tuple router.  Both sides of
   a repartitioning edge reduce to the same [Support.Partition] functions
   a local exchange instantiates, so a remote hash edge routes a key to
   exactly the consumer the in-process edge would. *)

let decode_bound encoded = (Serial.decode_bytes (Bytes.of_string encoded)).(0)

let route spec ~dests =
  match spec with
  | Shard.Hash cols -> Support.Partition.hash ~consumers:dests ~on:cols ()
  | Shard.Range (col, bounds) ->
      Support.Partition.range ~consumers:dests ~on:col
        ~bounds:(Array.map decode_bound bounds) ()

(* Lower an exchange partition spec to its wire form.  [Round_robin] is
   the merge edge (no repartition frame at all), so callers filter it out
   before asking; [Custom] closures and [Broadcast] replication cannot
   cross the process boundary — planlint VL704 rejects such plans, and
   this guard keeps a launcher honest if analysis was bypassed. *)
let of_partition_spec spec ~dests =
  match (spec : Volcano.Exchange.partition_spec) with
  | Volcano.Exchange.Hash_on cols -> { Wire.dests; spec = Shard.Hash cols }
  | Volcano.Exchange.Range_on (col, bounds) ->
      {
        Wire.dests;
        spec =
          Shard.Range
            ( col,
              Array.map
                (fun v -> Bytes.to_string (Serial.encode [| v |]))
                bounds );
      }
  | Volcano.Exchange.Round_robin ->
      invalid_arg "Repart.of_partition_spec: round-robin is a merge edge"
  | Volcano.Exchange.Custom _ ->
      invalid_arg
        "Repart.of_partition_spec: a custom partition closure cannot cross \
         the process boundary"
  | Volcano.Exchange.Broadcast ->
      invalid_arg
        "Repart.of_partition_spec: broadcast is not expressible on a remote \
         edge"
