(** Worker-process launcher for remote exchange.

    [launch] spawns a group of worker processes, listens on a private
    socket for them to connect back, assigns shards in accept order via
    [Hello] frames, and wraps each connection as a
    {!Volcano.Port.Transport.source} — the [connect] argument of
    [Exchange.remote_iterator].

    [command ~socket] must render an argv that starts a worker which
    connects to [socket] and speaks the {!Worker} protocol (typically the
    current executable with a worker-mode argument, so parent and workers
    share one binary and therefore one task vocabulary).  [socket] is a
    Unix-domain path on the default [`Unix] lane, or ["tcp:127.0.0.1:PORT"]
    on the [`Tcp] lane — {!Worker.run} dials either form. *)

type site_stats = { rows : int Atomic.t; bytes : int Atomic.t }

type launched = {
  sources : Volcano.Port.Transport.source array;
  pids : int array;  (** worker process ids (spawn order, not shard order) *)
  address : string;
      (** the address workers dialed: a Unix-domain path, or
          ["tcp:127.0.0.1:PORT"] on the TCP lane *)
  stats : site_stats array;
      (** per-site arrival totals (records and payload bytes), indexed by
          shard; mirrored into the sink as [net.site<k>.rows] and
          [net.site<k>.bytes] *)
}

val launch :
  ?faults:Volcano_fault.Injector.t ->
  ?lane:[ `Unix | `Tcp ] ->
  ?repartition:Wire.repartition ->
  ?obs:Volcano_obs.Obs.t ->
  command:(socket:string -> string array) ->
  workers:int ->
  task:string ->
  packet_size:int ->
  unit ->
  launched
(** Spawns [workers] processes and blocks until all have connected (30s
    accept timeout per worker).  On any setup failure — a worker that
    never connects, an injected [Net_connect] fault — every spawned
    process is killed and reaped, and the exception propagates (surfacing
    as [Query_failed] at site ["net-connect"] from the exchange).
    [faults] is threaded into every frame read/write of the returned
    sources.

    [lane] picks the transport ([`Unix] default).  The TCP listener binds
    loopback port 0 and reads the kernel's choice back, retrying the bind
    once on [EADDRINUSE], so concurrent launchers never race for a port.

    [repartition] turns the edge into a repartitioning edge: every Hello
    is flagged and followed by the partition function, and workers answer
    with routed packets ([Transport.Routed]) instead of mergeable data. *)
