(** Worker-process launcher for remote exchange.

    [launch] spawns a group of worker processes, listens on a private
    (anonymous, unlinked after setup) Unix-domain socket for them to
    connect back, assigns shards in accept order via [Hello] frames, and
    wraps each connection as a {!Volcano.Port.Transport.source} —
    the [connect] argument of [Exchange.remote_iterator].

    [command ~socket] must render an argv that starts a worker which
    connects to [socket] and speaks the {!Worker} protocol (typically the
    current executable with a worker-mode argument, so parent and workers
    share one binary and therefore one task vocabulary). *)

type launched = {
  sources : Volcano.Port.Transport.source array;
  pids : int array;  (** worker process ids (spawn order, not shard order) *)
}

val launch :
  ?faults:Volcano_fault.Injector.t ->
  command:(socket:string -> string array) ->
  workers:int ->
  task:string ->
  packet_size:int ->
  unit ->
  launched
(** Spawns [workers] processes and blocks until all have connected (30s
    accept timeout per worker).  On any setup failure — a worker that
    never connects, an injected [Net_connect] fault — every spawned
    process is killed and reaped, and the exception propagates (surfacing
    as [Query_failed] at site ["net-connect"] from the exchange).
    [faults] is threaded into every frame read/write of the returned
    sources. *)
