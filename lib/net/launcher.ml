module Injector = Volcano_fault.Injector
module Transport = Volcano.Port.Transport

(* Launch a remote producer group: spawn [workers] worker processes, hand
   each a shard of the task over a private Unix-domain socket, and expose
   each connection as a {!Volcano.Port.Transport.source} for
   [Exchange.remote_iterator] to consume.

   The parent is the listener (workers connect back to it), so a worker
   that never comes up is detected here as an accept timeout, not as a
   hang.  Shards are assigned in accept order: the Hello frame tells each
   worker which shard of which task it owns, so the worker binary needs no
   per-shard command line and one [command] template spawns the whole
   group. *)

type launched = {
  sources : Transport.source array;
  pids : int array;  (** worker process ids, in shard order *)
}

let accept_timeout_s = 30.0

let rec waitpid_quiet pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_quiet pid
  | exception _ -> ()

let source_of ~faults ~packet_size ~rank fd pid =
  let terminal : Transport.event option ref = ref None in
  let joined = Atomic.make false in
  let pull ~alloc =
    match !terminal with
    | Some event -> event
    | None -> (
        let finish event =
          terminal := Some event;
          event
        in
        match Wire.read_frame ~faults fd with
        | Wire.Data, payload ->
            let packet = alloc ~capacity:packet_size in
            Codec.decode_into payload packet;
            Transport.Data packet
        | Wire.Eos, _ -> finish Transport.Eos
        | Wire.Err, payload ->
            let site, message = Wire.parse_err payload in
            finish (Transport.Failed (Transport.Remote_failure { site; message }))
        | (Wire.Hello | Wire.Cancel | Wire.Request | Wire.Resp_ok
          | Wire.Resp_err | Wire.Shutdown), _ ->
            finish
              (Transport.Failed
                 (Wire.Corrupt
                    (Printf.sprintf "worker %d: unexpected frame kind" rank)))
        | exception exn ->
            (* A dropped connection (EOF, ECONNRESET, a truncated frame):
               the stream ends in failure, which the feeder reports as the
               same single Query_failed a dead local producer causes. *)
            finish (Transport.Failed exn))
  in
  let cancel () =
    (* Best effort, non-blocking-ish: tell the worker to stop, then tear
       the connection so a worker deep in a write unblocks with EPIPE.
       The fd stays open (only shut down) so a concurrently blocked pull
       wakes with EOF instead of racing a reused descriptor. *)
    (try Wire.write_frame fd Wire.Cancel Bytes.empty with _ -> ());
    try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ()
  in
  let join () =
    if not (Atomic.exchange joined true) then begin
      waitpid_quiet pid;
      try Unix.close fd with _ -> ()
    end
  in
  { Transport.pull; cancel; join }

let launch ?(faults = Injector.none) ~command ~workers ~task ~packet_size () =
  if workers < 1 then invalid_arg "Launcher.launch: workers must be positive";
  let socket = Filename.temp_file "volcano_net_" ".sock" in
  Unix.unlink socket;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let pids = ref [] in
  let fds = ref [] in
  let cleanup () =
    List.iter (fun fd -> try Unix.close fd with _ -> ()) !fds;
    List.iter
      (fun pid ->
        (try Unix.kill pid Sys.sigkill with _ -> ());
        waitpid_quiet pid)
      !pids;
    (try Unix.close listener with _ -> ());
    try Unix.unlink socket with _ -> ()
  in
  (* A worker killed mid-stream must surface as EPIPE from the cancel
     write (swallowed by [cancel]), not as SIGPIPE killing the consumer. *)
  Wire.ignore_sigpipe ();
  try
    Unix.bind listener (Unix.ADDR_UNIX socket);
    Unix.listen listener workers;
    let argv = command ~socket in
    pids :=
      List.init workers (fun _ ->
          Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr);
    let accept_one shard =
      Injector.hit faults Volcano_fault.Net_connect;
      (* conclint: allow CL003 -- launch runs in the exchange's open path
         on the consumer, bounded by the accept timeout; workers connect
         immediately or died (and then we fail the query, not hang). *)
      match Unix.select [ listener ] [] [] accept_timeout_s with
      | [], _, _ ->
          failwith
            (Printf.sprintf "worker %d did not connect within %.0fs" shard
               accept_timeout_s)
      | _ :: _, _, _ ->
          (* conclint: allow CL003 -- see the select above; a ready
             listener makes this accept immediate. *)
          let fd, _ = Unix.accept listener in
          fds := fd :: !fds;
          Wire.write_frame ~faults fd Wire.Hello
            (Wire.hello ~task ~shard ~shards:workers ~packet_size);
          fd
    in
    let fds_in_order = Array.init workers accept_one in
    (try Unix.close listener with _ -> ());
    (try Unix.unlink socket with _ -> ());
    (* Shards are assigned in accept order, so source [rank] is not
       necessarily fed by process [pids.(rank)] — workers race to
       connect.  It does not matter which source reaps which pid: the
       ranks jointly cover every spawned process exactly once. *)
    let pids_arr = Array.of_list !pids in
    {
      sources =
        Array.mapi
          (fun rank fd ->
            source_of ~faults ~packet_size ~rank fd pids_arr.(rank))
          fds_in_order;
      pids = pids_arr;
    }
  with exn ->
    cleanup ();
    raise exn
