module Injector = Volcano_fault.Injector
module Transport = Volcano.Port.Transport
module Obs = Volcano_obs.Obs

(* Launch a remote producer group: spawn [workers] worker processes, hand
   each a shard of the task over a private socket, and expose each
   connection as a {!Volcano.Port.Transport.source} for
   [Exchange.remote_iterator] to consume.

   The parent is the listener (workers connect back to it), so a worker
   that never comes up is detected here as an accept timeout, not as a
   hang.  Shards are assigned in accept order: the Hello frame tells each
   worker which shard of which task it owns, so the worker binary needs no
   per-shard command line and one [command] template spawns the whole
   group.

   Two lanes carry the same framing: [`Unix] (a temp-path Unix-domain
   socket, the default) and [`Tcp] (loopback, port chosen by the kernel —
   bind port 0 and read it back, so concurrent launchers never race for a
   fixed port). *)

type site_stats = { rows : int Atomic.t; bytes : int Atomic.t }

type launched = {
  sources : Transport.source array;
  pids : int array;  (** worker process ids, in shard order *)
  address : string;
      (** the address workers dialed: a Unix-domain path, or
          ["tcp:127.0.0.1:PORT"] on the TCP lane *)
  stats : site_stats array;
      (** per-site arrival totals (records and payload bytes), indexed by
          shard; mirrored into the sink as [net.site<k>.rows/bytes] *)
}

let accept_timeout_s = 30.0

let rec waitpid_quiet pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_quiet pid
  | exception _ -> ()

let source_of ~faults ~packet_size ~rank ~stats ~rows_c ~bytes_c fd pid =
  let terminal : Transport.event option ref = ref None in
  let joined = Atomic.make false in
  let arrived packet ~payload_bytes =
    let rows = Volcano.Packet.length packet in
    Atomic.fetch_and_add stats.rows rows |> ignore;
    Atomic.fetch_and_add stats.bytes payload_bytes |> ignore;
    Obs.Counter.add rows_c rows;
    Obs.Counter.add bytes_c payload_bytes
  in
  let pull ~alloc =
    match !terminal with
    | Some event -> event
    | None -> (
        let finish event =
          terminal := Some event;
          event
        in
        match Wire.read_frame ~faults fd with
        | Wire.Data, payload ->
            let packet = alloc ~capacity:packet_size in
            Codec.decode_into payload packet;
            arrived packet ~payload_bytes:(Bytes.length payload);
            Transport.Data packet
        | Wire.Repartition, payload ->
            (* A routed packet from a repartitioning worker:
               [u16 dest | packet bytes]. *)
            if Bytes.length payload < 2 then
              finish
                (Transport.Failed
                   (Wire.Corrupt
                      (Printf.sprintf "worker %d: short routed frame" rank)))
            else begin
              let dest = Bytes.get_uint16_le payload 0 in
              let body = Bytes.sub payload 2 (Bytes.length payload - 2) in
              let packet = alloc ~capacity:packet_size in
              Codec.decode_into body packet;
              arrived packet ~payload_bytes:(Bytes.length payload);
              Transport.Routed (dest, packet)
            end
        | Wire.Eos, _ -> finish Transport.Eos
        | Wire.Err, payload ->
            let site, message = Wire.parse_err payload in
            finish (Transport.Failed (Transport.Remote_failure { site; message }))
        | (Wire.Hello | Wire.Cancel | Wire.Request | Wire.Resp_ok
          | Wire.Resp_err | Wire.Shutdown), _ ->
            finish
              (Transport.Failed
                 (Wire.Corrupt
                    (Printf.sprintf "worker %d: unexpected frame kind" rank)))
        | exception exn ->
            (* A dropped connection (EOF, ECONNRESET, a truncated frame):
               the stream ends in failure, which the feeder reports as the
               same single Query_failed a dead local producer causes. *)
            finish (Transport.Failed exn))
  in
  let cancel () =
    (* Best effort, non-blocking-ish: tell the worker to stop, then tear
       the connection so a worker deep in a write unblocks with EPIPE.
       The fd stays open (only shut down) so a concurrently blocked pull
       wakes with EOF instead of racing a reused descriptor. *)
    (try Wire.write_frame fd Wire.Cancel Bytes.empty with _ -> ());
    try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ()
  in
  let join () =
    if not (Atomic.exchange joined true) then begin
      waitpid_quiet pid;
      try Unix.close fd with _ -> ()
    end
  in
  { Transport.pull; cancel; join }

(* Bind the listener for the requested lane; returns it with the address
   string workers must dial and the path to unlink on teardown (if any).
   Binds retry once on EADDRINUSE: temp-path and kernel-chosen-port
   collisions are already vanishingly rare, and one retry turns "rare"
   into "a genuine environment fault worth surfacing". *)
let bind_listener lane =
  let attempt () =
    match lane with
    | `Unix ->
        let path = Filename.temp_file "volcano_net_" ".sock" in
        Unix.unlink path;
        let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.bind listener (Unix.ADDR_UNIX path)
         with exn ->
           (try Unix.close listener with _ -> ());
           raise exn);
        (listener, path, Some path)
    | `Tcp ->
        let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt listener Unix.SO_REUSEADDR true;
           Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
         with exn ->
           (try Unix.close listener with _ -> ());
           raise exn);
        let port =
          match Unix.getsockname listener with
          | Unix.ADDR_INET (_, port) -> port
          | _ -> assert false
        in
        (listener, Printf.sprintf "tcp:127.0.0.1:%d" port, None)
  in
  try attempt ()
  with Unix.Unix_error (Unix.EADDRINUSE, _, _) -> attempt ()

let launch ?(faults = Injector.none) ?(lane = `Unix) ?repartition
    ?(obs = Obs.null) ~command ~workers ~task ~packet_size () =
  if workers < 1 then invalid_arg "Launcher.launch: workers must be positive";
  let listener, address, unlink_path = bind_listener lane in
  let pids = ref [] in
  let fds = ref [] in
  let cleanup () =
    List.iter (fun fd -> try Unix.close fd with _ -> ()) !fds;
    List.iter
      (fun pid ->
        (try Unix.kill pid Sys.sigkill with _ -> ());
        waitpid_quiet pid)
      !pids;
    (try Unix.close listener with _ -> ());
    match unlink_path with
    | None -> ()
    | Some path -> ( try Unix.unlink path with _ -> ())
  in
  (* A worker killed mid-stream must surface as EPIPE from the cancel
     write (swallowed by [cancel]), not as SIGPIPE killing the consumer. *)
  Wire.ignore_sigpipe ();
  try
    Unix.listen listener workers;
    let argv = command ~socket:address in
    pids :=
      List.init workers (fun _ ->
          Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr);
    let accept_one shard =
      Injector.hit faults Volcano_fault.Net_connect;
      (* conclint: allow CL003 -- launch runs in the exchange's open path
         on the consumer, bounded by the accept timeout; workers connect
         immediately or died (and then we fail the query, not hang). *)
      match Unix.select [ listener ] [] [] accept_timeout_s with
      | [], _, _ ->
          failwith
            (Printf.sprintf "worker %d did not connect within %.0fs" shard
               accept_timeout_s)
      | _ :: _, _, _ ->
          (* conclint: allow CL003 -- see the select above; a ready
             listener makes this accept immediate. *)
          let fd, _ = Unix.accept listener in
          fds := fd :: !fds;
          (match lane with
          | `Tcp -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
          | `Unix -> ());
          Wire.write_frame ~faults fd Wire.Hello
            (Wire.hello
               ~repartition:(repartition <> None)
               ~task ~shard ~shards:workers ~packet_size ());
          (match repartition with
          | None -> ()
          | Some r -> Wire.write_frame ~faults fd Wire.Repartition (Wire.repartition r));
          fd
    in
    let fds_in_order = Array.init workers accept_one in
    (try Unix.close listener with _ -> ());
    (match unlink_path with
    | None -> ()
    | Some path -> ( try Unix.unlink path with _ -> ()));
    (* Shards are assigned in accept order, so source [rank] is not
       necessarily fed by process [pids.(rank)] — workers race to
       connect.  It does not matter which source reaps which pid: the
       ranks jointly cover every spawned process exactly once. *)
    let pids_arr = Array.of_list !pids in
    let stats =
      Array.init workers (fun _ ->
          { rows = Atomic.make 0; bytes = Atomic.make 0 })
    in
    {
      sources =
        Array.mapi
          (fun rank fd ->
            let rows_c = Obs.counter obs (Printf.sprintf "net.site%d.rows" rank)
            and bytes_c =
              Obs.counter obs (Printf.sprintf "net.site%d.bytes" rank)
            in
            source_of ~faults ~packet_size ~rank ~stats:stats.(rank) ~rows_c
              ~bytes_c fd pids_arr.(rank))
          fds_in_order;
      pids = pids_arr;
      address;
      stats;
    }
  with exn ->
    cleanup ();
    raise exn
