(** The query-serving plane: a framed request/response protocol over a
    Unix-domain socket, a thread-per-connection server, and a client.

    The server is transport and policy only — [handle] owns query
    execution (the CLI wires it to a [Session] so admission control,
    deadlines, and cancellation are the runtime's).  Connections are
    persistent: each [Request] frame (an opaque task string) is answered
    by exactly one [Resp_ok] (rows) or [Resp_err] (site + message). *)

type handler = string -> (Volcano_tuple.Tuple.t list, string * string) result

module Server : sig
  type t

  val start :
    ?obs:Volcano_obs.Obs.t -> socket:string -> handle:handler -> unit -> t
  (** Bind [socket] (an owned path; any stale file is replaced), start
      the acceptor thread, and return.  Each connection gets a handler
      thread.  With [obs], per-request latency lands in the ["serve.latency_s"]
      histogram and counts in ["serve.requests"] / ["serve.errors"]. *)

  val stop : t -> unit
  (** Stop accepting, tear down live connections, and join every thread.
      Also triggered remotely by a [Shutdown] frame — [stop] then merely
      joins.  Idempotent. *)

  val wait : t -> unit
  (** Block until the server is stopped — by a client's [Shutdown] frame
      or a concurrent {!stop} — and finish the teardown.  The daemon's
      main loop. *)

  val requests : t -> int
  val errors : t -> int
end

module Client : sig
  type t

  val connect : socket:string -> t

  val query :
    t -> string -> (Volcano_tuple.Tuple.t list, string * string) result
  (** One request/response round trip.  [Error (site, message)] is the
      server-side query failure, site verbatim from [Query_failed].
      @raise End_of_file if the server went away. *)

  val shutdown_server : t -> unit
  (** Ask the server to stop serving (all connections included). *)

  val close : t -> unit
end
