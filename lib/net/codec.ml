module Packet = Volcano.Packet
module Serial = Volcano_tuple.Serial

(* The packet codec: a [Data] frame's payload is

       u16 LE record count | count × Serial-encoded tuples

   reusing the storage layer's tuple serialization, so the wire format
   has exactly one tuple encoding in the whole system.  Packet shells are
   the serialization buffers on both sides: the worker encodes out of the
   shell it just filled (and resets it for the next batch), the consumer
   decodes into a shell from the port lane's recycling pool. *)

let encode packet =
  let n = Packet.length packet in
  let size = ref 2 in
  for i = 0 to n - 1 do
    size := !size + Serial.encoded_size (Packet.get packet i)
  done;
  let buf = Bytes.create !size in
  Bytes.set_uint16_le buf 0 n;
  let pos = ref 2 in
  for i = 0 to n - 1 do
    pos := !pos + Serial.encode_into (Packet.get packet i) buf ~pos:!pos
  done;
  buf

let decode_into buf packet =
  if Bytes.length buf < 2 then raise (Wire.Corrupt "data frame: no count");
  let n = Bytes.get_uint16_le buf 0 in
  if n > Packet.capacity packet then
    raise
      (Wire.Corrupt
         (Printf.sprintf "data frame: %d records exceed packet capacity %d" n
            (Packet.capacity packet)));
  let pos = ref 2 in
  (try
     for _ = 1 to n do
       let tuple = Serial.decode buf ~pos:!pos in
       pos := !pos + Serial.encoded_size tuple;
       Packet.add packet tuple
     done
   with Invalid_argument msg ->
     raise (Wire.Corrupt ("data frame: " ^ msg)));
  if !pos <> Bytes.length buf then
    raise (Wire.Corrupt "data frame: trailing bytes")

(* Row-list payloads for the serve plane: u32 LE count, then the rows. *)

let encode_rows rows =
  let b = Buffer.create 256 in
  Buffer.add_int32_le b (Int32.of_int (List.length rows));
  List.iter (fun row -> Buffer.add_bytes b (Serial.encode row)) rows;
  Buffer.to_bytes b

let decode_rows buf =
  if Bytes.length buf < 4 then raise (Wire.Corrupt "rows: no count");
  let n = Int32.to_int (Bytes.get_int32_le buf 0) in
  if n < 0 then raise (Wire.Corrupt "rows: negative count");
  let pos = ref 4 in
  let rows =
    try
      List.init n (fun _ ->
          let row = Serial.decode buf ~pos:!pos in
          pos := !pos + Serial.encoded_size row;
          row)
    with Invalid_argument msg -> raise (Wire.Corrupt ("rows: " ^ msg))
  in
  if !pos <> Bytes.length buf then raise (Wire.Corrupt "rows: trailing bytes");
  rows
