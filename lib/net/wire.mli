(** Length-prefixed framing for the network lanes.

    Every message on a socket — data-plane packets between worker and
    consumer, control-plane requests between client and server — is one
    frame: a 4-byte little-endian payload length, a 1-byte kind, then the
    payload.  A dropped connection mid-frame surfaces as [End_of_file]
    from the short read; a malformed header raises {!Corrupt}. *)

type kind =
  | Hello  (** parent → worker: task assignment (see {!hello}) *)
  | Data  (** worker → parent: one packet of records ({!Codec}) *)
  | Eos  (** worker → parent: clean end of the worker's stream *)
  | Err  (** worker → parent: the worker's failure, site + message *)
  | Cancel  (** parent → worker: stop early (best effort) *)
  | Request  (** client → server: a task string to run *)
  | Resp_ok  (** server → client: result rows *)
  | Resp_err  (** server → client: query failure, site + message *)
  | Shutdown  (** client → server: stop serving *)
  | Repartition
      (** parent → worker: the partition function for a repartitioning
          edge (the frame after a flagged {!hello}); worker → parent: one
          routed packet, [u16 dest | packet bytes] *)

exception Corrupt of string
(** A frame that cannot be parsed (bad kind, absurd length, truncated
    payload structure) — distinct from [End_of_file], which is a
    connection dropped between or inside frames. *)

val max_frame : int

val ignore_sigpipe : unit -> unit
(** Set this process to see a torn peer as [EPIPE] from the write rather
    than dying of SIGPIPE.  Idempotent; every endpoint (worker, launcher,
    server, client) calls it before its first write. *)

val write_frame :
  ?faults:Volcano_fault.Injector.t -> Unix.file_descr -> kind -> bytes -> unit
(** Write one frame; blocks until fully written.  [faults] is consulted
    at the [Net_write] site. *)

val read_frame :
  ?faults:Volcano_fault.Injector.t -> Unix.file_descr -> kind * bytes
(** Read one frame; blocks until fully read.  [faults] is consulted at
    [Net_read] (before the header) and [Net_frame] (between header and
    payload — the truncated-frame site).
    @raise End_of_file on a dropped connection
    @raise Corrupt on an unparseable header *)

val frame_ready : Unix.file_descr -> bool
(** Non-blocking: is at least one byte readable right now?  Workers poll
    this between packet writes to notice a [Cancel] frame. *)

(** {2 Payloads} *)

type hello = {
  task : string;
  shard : int;
  shards : int;
  packet_size : int;
  repartition : bool;
      (** a {!type-repartition} frame follows the Hello, and the worker
          must answer with routed packets instead of mergeable [Data] *)
}

val hello :
  ?repartition:bool ->
  task:string ->
  shard:int ->
  shards:int ->
  packet_size:int ->
  unit ->
  bytes

val parse_hello : bytes -> hello

val err : site:string -> message:string -> bytes
(** [site] is a failure-site name exactly as {!Volcano.Exchange.Query_failed}
    carries it; it crosses the wire verbatim. *)

val parse_err : bytes -> string * string
(** [(site, message)]. *)

type repartition = { dests : int; spec : Volcano_storage.Shard.spec }
(** The partition function a repartitioning edge ships to its workers:
    downstream consumer count plus the catalog's wire-safe spec (hash
    columns, or a range column with Serial-encoded bounds).  Custom
    partition closures cannot cross the process boundary — planlint VL704
    rejects such plans before a launcher is asked to encode one. *)

val repartition : repartition -> bytes

val parse_repartition : bytes -> repartition
(** @raise Corrupt on a zero destination count, unknown spec tag, or
    truncation *)
