module Injector = Volcano_fault.Injector

(* The framing layer shared by the remote-exchange data plane and the
   serve control plane: every message is one length-prefixed frame,

       u32 LE payload length | u8 kind | payload

   so a reader always knows how many bytes the current message still
   needs, and a connection dropped mid-frame is detected as a short read
   rather than a silent truncation.  The payload of a [Data] frame is a
   whole packet of records (see {!Codec}): the wire unit is the batch,
   never the single record. *)

type kind =
  | Hello
  | Data
  | Eos
  | Err
  | Cancel
  | Request
  | Resp_ok
  | Resp_err
  | Shutdown
  | Repartition
      (* Both halves of exchange-boundary repartitioning share this kind:
         parent -> worker, the frame after a flagged Hello carries the
         partition function ({!repartition} payload); worker -> parent,
         each data frame is a routed packet ([u16 dest | packet bytes])
         instead of a mergeable [Data] frame. *)

exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some (Printf.sprintf "Wire.Corrupt(%s)" msg)
    | _ -> None)

(* Any process that frames over sockets must see a torn peer as EPIPE
   from the write, not die of SIGPIPE before the exception can be
   raised.  Called by every endpoint (worker, launcher, server, client)
   before its first write. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let kind_code = function
  | Hello -> 1
  | Data -> 2
  | Eos -> 3
  | Err -> 4
  | Cancel -> 5
  | Request -> 6
  | Resp_ok -> 7
  | Resp_err -> 8
  | Shutdown -> 9
  | Repartition -> 10

let kind_of_code = function
  | 1 -> Hello
  | 2 -> Data
  | 3 -> Eos
  | 4 -> Err
  | 5 -> Cancel
  | 6 -> Request
  | 7 -> Resp_ok
  | 8 -> Resp_err
  | 9 -> Shutdown
  | 10 -> Repartition
  | code -> raise (Corrupt (Printf.sprintf "unknown frame kind %d" code))

(* A frame larger than this is corruption, not data: the largest legal
   payload is one packet of 255 maximal tuples, far below 16 MiB. *)
let max_frame = 1 lsl 24

let rec write_exact fd buf pos len =
  if len > 0 then begin
    (* conclint: allow CL003 -- socket writes run on dedicated transport
       domains (workers, feeders, serve handler threads), never on a pool
       worker. *)
    let n = Unix.write fd buf pos len in
    write_exact fd buf (pos + n) (len - n)
  end

let rec read_exact fd buf pos len =
  if len > 0 then begin
    (* conclint: allow CL003 -- socket reads run on dedicated transport
       domains (workers, feeders, serve handler threads), never on a pool
       worker. *)
    let n = Unix.read fd buf pos len in
    if n = 0 then raise End_of_file;
    read_exact fd buf (pos + n) (len - n)
  end

let write_frame ?(faults = Injector.none) fd kind payload =
  Injector.hit faults Volcano_fault.Net_write;
  let len = Bytes.length payload in
  if len > max_frame then raise (Corrupt "frame too large");
  let header = Bytes.create 5 in
  Bytes.set_int32_le header 0 (Int32.of_int len);
  Bytes.set_uint8 header 4 (kind_code kind);
  write_exact fd header 0 5;
  write_exact fd payload 0 len

let read_frame ?(faults = Injector.none) fd =
  Injector.hit faults Volcano_fault.Net_read;
  let header = Bytes.create 5 in
  read_exact fd header 0 5;
  let len = Int32.to_int (Bytes.get_int32_le header 0) in
  if len < 0 || len > max_frame then
    raise (Corrupt (Printf.sprintf "bad frame length %d" len));
  let kind = kind_of_code (Bytes.get_uint8 header 4) in
  (* The frame-truncation site fires between header and payload — the
     reader has committed to a length it will never receive, exercising
     the same teardown a connection dropped mid-frame takes. *)
  Injector.hit faults Volcano_fault.Net_frame;
  let payload = Bytes.create len in
  read_exact fd payload 0 len;
  (kind, payload)

let frame_ready fd =
  (* conclint: allow CL003 -- zero-timeout poll on a transport thread. *)
  match Unix.select [ fd ] [] [] 0.0 with
  | [], _, _ -> false
  | _ :: _, _, _ -> true

(* ------------------------------------------------------------------ *)
(* Payload constructors and parsers                                    *)

let check_room what buf pos need =
  if pos + need > Bytes.length buf then
    raise (Corrupt (Printf.sprintf "%s: truncated payload" what))

let get_str what buf pos =
  check_room what buf !pos 2;
  let len = Bytes.get_uint16_le buf !pos in
  check_room what buf (!pos + 2) len;
  let s = Bytes.sub_string buf (!pos + 2) len in
  pos := !pos + 2 + len;
  s

let add_str b s =
  if String.length s > 0xffff then raise (Corrupt "string field too long");
  Buffer.add_uint16_le b (String.length s);
  Buffer.add_string b s

type hello = {
  task : string;
  shard : int;
  shards : int;
  packet_size : int;
  repartition : bool;
      (* a Repartition frame carrying the partition function follows the
         Hello, and the worker must answer with routed packets *)
}

let flag_repartition = 1

let hello ?(repartition = false) ~task ~shard ~shards ~packet_size () =
  let b = Buffer.create (9 + String.length task) in
  Buffer.add_uint16_le b shard;
  Buffer.add_uint16_le b shards;
  Buffer.add_uint16_le b packet_size;
  Buffer.add_uint8 b (if repartition then flag_repartition else 0);
  add_str b task;
  Buffer.to_bytes b

let parse_hello buf =
  check_room "hello" buf 0 7;
  let shard = Bytes.get_uint16_le buf 0 in
  let shards = Bytes.get_uint16_le buf 2 in
  let packet_size = Bytes.get_uint16_le buf 4 in
  let flags = Bytes.get_uint8 buf 6 in
  let pos = ref 7 in
  let task = get_str "hello" buf pos in
  {
    task;
    shard;
    shards;
    packet_size;
    repartition = flags land flag_repartition <> 0;
  }

let err ~site ~message =
  let b = Buffer.create (4 + String.length site + String.length message) in
  add_str b site;
  (* Rendered messages can exceed a u16; truncate rather than refuse to
     report the failure at all. *)
  add_str b
    (if String.length message > 0xffff then String.sub message 0 0xffff
     else message);
  Buffer.to_bytes b

let parse_err buf =
  let pos = ref 0 in
  let site = get_str "err" buf pos in
  let message = get_str "err" buf pos in
  (site, message)

(* The partition function a repartitioning edge ships to its workers:
   destination count plus the catalog's wire-safe spec (columns, or a
   column with Serial-encoded bounds).  Custom partition closures cannot
   cross the process boundary — planlint VL704 rejects them before a
   launcher would ever be asked to encode one. *)
type repartition = { dests : int; spec : Volcano_storage.Shard.spec }

let repartition { dests; spec } =
  let b = Buffer.create 16 in
  Buffer.add_uint16_le b dests;
  (match spec with
  | Volcano_storage.Shard.Hash cols ->
      Buffer.add_uint8 b 1;
      Buffer.add_uint16_le b (List.length cols);
      List.iter (Buffer.add_uint16_le b) cols
  | Volcano_storage.Shard.Range (col, bounds) ->
      Buffer.add_uint8 b 2;
      Buffer.add_uint16_le b col;
      Buffer.add_uint16_le b (Array.length bounds);
      Array.iter (fun bound -> add_str b bound) bounds);
  Buffer.to_bytes b

let parse_repartition buf =
  check_room "repartition" buf 0 3;
  let dests = Bytes.get_uint16_le buf 0 in
  if dests < 1 then raise (Corrupt "repartition: no destinations");
  let pos = ref 3 in
  let u16 () =
    check_room "repartition" buf !pos 2;
    let v = Bytes.get_uint16_le buf !pos in
    pos := !pos + 2;
    v
  in
  let spec =
    match Bytes.get_uint8 buf 2 with
    | 1 ->
        let n = u16 () in
        Volcano_storage.Shard.Hash (List.init n (fun _ -> u16 ()))
    | 2 ->
        let col = u16 () in
        let n = u16 () in
        Volcano_storage.Shard.Range
          (col, Array.init n (fun _ -> get_str "repartition" buf pos))
    | tag -> raise (Corrupt (Printf.sprintf "repartition: unknown spec %d" tag))
  in
  { dests; spec }
