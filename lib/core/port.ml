module Sema = Volcano_util.Sema
module Clock = Volcano_util.Clock
module Injector = Volcano_fault.Injector

type queue = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : Packet.t Queue.t;
  flow : Sema.t option; (* acquired by send, released by receive *)
}

type t = {
  n_producers : int;
  n_consumers : int;
  separate : bool;
  queues : queue array;
  shut : bool Atomic.t;
  poisoned : exn option Atomic.t; (* first producer/consumer failure *)
  on_shutdown : unit -> unit; (* cancellation chaining (runs once) *)
  hook_ran : bool Atomic.t;
  faults : Injector.t;
  sent : int Atomic.t;
  received : int Atomic.t;
  records : int Atomic.t;
  depth : int Atomic.t;
  peak : int Atomic.t;
  sent_by : int Atomic.t array; (* packets per producer rank *)
  stalls : int Atomic.t; (* sends that blocked on flow control *)
  stall_ns : int Atomic.t; (* time blocked there; updated when [timed] *)
  timed : bool; (* profiling on: clock the flow-control waits *)
}

let make_queue flow_slack =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    flow = Option.map Sema.create flow_slack;
  }

let create ~producers ~consumers ?flow_slack ?(keep_separate = false)
    ?(faults = Injector.none) ?(on_shutdown = fun () -> ()) ?(timed = false) () =
  assert (producers > 0 && consumers > 0);
  (match flow_slack with Some n -> assert (n > 0) | None -> ());
  let n_queues = if keep_separate then producers * consumers else consumers in
  {
    n_producers = producers;
    n_consumers = consumers;
    separate = keep_separate;
    queues = Array.init n_queues (fun _ -> make_queue flow_slack);
    shut = Atomic.make false;
    poisoned = Atomic.make None;
    on_shutdown;
    hook_ran = Atomic.make false;
    faults;
    sent = Atomic.make 0;
    received = Atomic.make 0;
    records = Atomic.make 0;
    depth = Atomic.make 0;
    peak = Atomic.make 0;
    sent_by = Array.init producers (fun _ -> Atomic.make 0);
    stalls = Atomic.make 0;
    stall_ns = Atomic.make 0;
    timed;
  }

let producers t = t.n_producers
let consumers t = t.n_consumers
let keep_separate t = t.separate

let queue_of t ~producer ~consumer =
  if t.separate then t.queues.((producer * t.n_consumers) + consumer)
  else t.queues.(consumer)

let note_depth t delta =
  let d = Atomic.fetch_and_add t.depth delta + delta in
  let rec bump () =
    let peak = Atomic.get t.peak in
    if d > peak && not (Atomic.compare_and_set t.peak peak d) then bump ()
  in
  bump ()

let send t ~producer ~consumer packet =
  Injector.hit t.faults Volcano_fault.Port_send;
  let queue = queue_of t ~producer ~consumer in
  (* Flow control: "after a producer has inserted a new packet into the
     port, it must request the flow control semaphore" — acquiring before
     insertion is equivalent and simpler to reason about. *)
  (match queue.flow with
  | Some sema when not (Atomic.get t.shut) ->
      (* Blocks while the consumer is [flow_slack] packets behind; a
         shutdown floods the semaphore to wake blocked senders.  A stall
         (the fast-path try fails) is counted always and clocked only on
         timed ports, so un-profiled queries never read the clock here. *)
      if not (Sema.try_acquire sema) then begin
        Atomic.incr t.stalls;
        if t.timed then begin
          let t0 = Clock.now () in
          Sema.acquire sema;
          let waited = Clock.now () -. t0 in
          let _ = Atomic.fetch_and_add t.stall_ns (int_of_float (waited *. 1e9)) in
          ()
        end
        else Sema.acquire sema
      end
  | _ -> ());
  if not (Atomic.get t.shut) then begin
    Mutex.lock queue.lock;
    Queue.push packet queue.items;
    note_depth t 1;
    Condition.signal queue.nonempty;
    Mutex.unlock queue.lock;
    Atomic.incr t.sent;
    Atomic.incr t.sent_by.(producer);
    let _ = Atomic.fetch_and_add t.records (Packet.length packet) in
    ()
  end

let receive_queue t queue =
  Injector.hit t.faults Volcano_fault.Port_receive;
  Mutex.lock queue.lock;
  let rec wait () =
    if Atomic.get t.shut && Queue.is_empty queue.items then begin
      Mutex.unlock queue.lock;
      None
    end
    else
      match Queue.take_opt queue.items with
      | Some packet ->
          note_depth t (-1);
          Mutex.unlock queue.lock;
          (match queue.flow with Some sema -> Sema.release sema | None -> ());
          Atomic.incr t.received;
          Some packet
      | None ->
          (* Sleep briefly rather than waiting on the condition alone so
             that shutdown (signalled via the atomic) cannot be missed. *)
          Condition.wait queue.nonempty queue.lock;
          wait ()
  in
  wait ()

let receive t ~consumer =
  if t.separate then
    invalid_arg "Port.receive: keep-separate port requires receive_from";
  receive_queue t t.queues.(consumer)

let receive_from t ~producer ~consumer =
  receive_queue t (queue_of t ~producer ~consumer)

let try_receive t ~consumer =
  if t.separate then
    invalid_arg "Port.try_receive: keep-separate port requires receive_from";
  let queue = t.queues.(consumer) in
  Mutex.lock queue.lock;
  let packet = Queue.take_opt queue.items in
  (match packet with Some _ -> note_depth t (-1) | None -> ());
  Mutex.unlock queue.lock;
  match packet with
  | Some p ->
      (match queue.flow with Some sema -> Sema.release sema | None -> ());
      Atomic.incr t.received;
      Some p
  | None -> None

let shutdown t =
  Atomic.set t.shut true;
  Array.iter
    (fun queue ->
      (match queue.flow with
      | Some sema -> Sema.release_n sema (t.n_producers * t.n_consumers * 1024)
      | None -> ());
      Mutex.lock queue.lock;
      Condition.broadcast queue.nonempty;
      Mutex.unlock queue.lock)
    t.queues;
  (* Chain the cancellation downwards exactly once: ports created below
     this exchange must also wake their blocked producers and consumers,
     or a producer stuck in a descendant's receive would never observe
     this shutdown (satellite: early close of a deep pipeline). *)
  if not (Atomic.exchange t.hook_ran true) then t.on_shutdown ()

let poison t exn =
  (* First failure wins; [None] is immediate so compare-and-set is exact. *)
  ignore (Atomic.compare_and_set t.poisoned None (Some exn));
  shutdown t

let failure t = Atomic.get t.poisoned
let is_shut_down t = Atomic.get t.shut
let packets_sent t = Atomic.get t.sent
let packets_received t = Atomic.get t.received
let records_sent t = Atomic.get t.records
let max_depth t = Atomic.get t.peak
let packets_sent_by t = Array.map Atomic.get t.sent_by
let flow_stalls t = Atomic.get t.stalls
let flow_stall_s t = float_of_int (Atomic.get t.stall_ns) *. 1e-9
