module Clock = Volcano_util.Clock
module Spsc = Volcano_util.Spsc
module Injector = Volcano_fault.Injector
module Sched = Volcano_sched.Sched

(* Every (producer, consumer) pair owns a dedicated lane, so each lane
   has exactly one writing domain and one reading domain — single
   producer, single consumer — whatever the port's mode:

   - flow control on: the lane is a bounded SPSC ring whose capacity IS
     the flow-control slack.  The uncontended send is one try_push (two
     atomics), with no semaphore and no mutex; a full ring makes the
     sender spin briefly, then park on the lane's condition until the
     consumer frees a slot or the port shuts down.

   - flow control off: producers must be able to run unboundedly ahead
     (the no-fork interchange relies on this: each process is both
     producer and consumer, so any bound can cycle into a deadlock), so
     the lane falls back to a striped mutex+queue — still per pair, so
     producers never contend with each other, only pairwise with their
     consumer.

   Consumers park on one per-consumer sink (a waiting flag plus
   mutex/condition) covering all of that consumer's lanes; producers
   signal it only when the flag is up, so the uncontended receive path
   takes no lock either.  The flag is set before the final empty
   re-check and read after the push (both seq_cst), the classic Dekker
   handshake that makes a lost wakeup impossible.

   Scheduler integration: a blocked side running inside a pool fiber
   (Sched.on_pool) must not park its worker domain — it suspends the
   fiber instead, leaving an idempotent waker in the lane's or sink's
   parked slot.  Every path that would broadcast the corresponding
   condition also drains that slot, and registration follows the same
   flag-up-then-recheck handshake as the condition path, so the two
   parking disciplines share one lost-wakeup argument. *)

type lane = {
  ring : Packet.t Spsc.t option; (* Some = bounded (flow-controlled) *)
  q_lock : Mutex.t; (* unbounded queue; doubles as the producer's park *)
  items : Packet.t Queue.t; (* unbounded fallback, empty in ring mode *)
  q_count : int Atomic.t; (* occupancy of [items], for lock-free polls *)
  nonfull : Condition.t; (* ring producer parks here when full *)
  producer_waiting : bool Atomic.t;
  mutable parked_producer : (unit -> unit) option; (* under [q_lock] *)
  pool : Packet.Pool.t; (* recycled packets, consumer back to producer *)
  peak : int Atomic.t; (* producer-side high-water occupancy *)
}

type sink = {
  s_lock : Mutex.t;
  arrived : Condition.t;
  consumer_waiting : bool Atomic.t;
  mutable parked_consumer : (unit -> unit) option; (* under [s_lock] *)
  mutable rr : int; (* next producer lane to poll; consumer-local *)
}

type t = {
  n_producers : int;
  n_consumers : int;
  separate : bool;
  lanes : lane array; (* producer-major: index p * n_consumers + c *)
  sinks : sink array; (* one per consumer *)
  shut : bool Atomic.t;
  poisoned : exn option Atomic.t; (* first producer/consumer failure *)
  on_shutdown : unit -> unit; (* cancellation chaining (runs once) *)
  hook_ran : bool Atomic.t;
  faults : Injector.t;
  sent : int Atomic.t;
  received : int Atomic.t;
  records : int Atomic.t;
  sent_by : int Atomic.t array; (* packets per producer rank *)
  stalls : int Atomic.t; (* sends that found their ring full *)
  stall_ns : int Atomic.t; (* time blocked there; updated when [timed] *)
  timed : bool; (* profiling on: clock the full-ring waits *)
}

(* Parking is the slow path; before taking it, a blocked side burns a
   short bounded spin in case the peer is actively draining/filling on
   another core.  On a single-core host the peer cannot run while we
   spin, so spinning is pure waste — park immediately. *)
let spin_budget = if Domain.recommended_domain_count () > 1 then 150 else 0

(* With real parallelism a parked producer is woken the moment a slot
   frees, keeping the pipeline as full as the ring allows.  On a single
   core the woken producer cannot run until the consumer yields anyway,
   so per-slot wakeups cost a futex round trip per packet for nothing:
   wake only when the lane drains, and the producer refills a whole ring
   per wakeup.  (Deadlock-free either way: the consumer never parks
   while any of its lanes holds a packet, so a full lane is always
   drained to empty eventually.) *)
let eager_wake = Domain.recommended_domain_count () > 1

let make_lane flow_slack =
  {
    ring =
      Option.map
        (fun slack ->
          Spsc.create ~capacity:slack
            ~dummy:(Packet.create ~capacity:1 ~producer:0))
        flow_slack;
    q_lock = Mutex.create ();
    items = Queue.create ();
    q_count = Atomic.make 0;
    nonfull = Condition.create ();
    producer_waiting = Atomic.make false;
    parked_producer = None;
    pool =
      Packet.Pool.create
        ~slots:(match flow_slack with Some slack -> slack + 2 | None -> 8);
    peak = Atomic.make 0;
  }

let make_sink () =
  {
    s_lock = Mutex.create ();
    arrived = Condition.create ();
    consumer_waiting = Atomic.make false;
    parked_consumer = None;
    rr = 0;
  }

let create ~producers ~consumers ?flow_slack ?(keep_separate = false)
    ?(faults = Injector.none) ?(on_shutdown = fun () -> ()) ?(timed = false) () =
  assert (producers > 0 && consumers > 0);
  (match flow_slack with Some n -> assert (n > 0) | None -> ());
  {
    n_producers = producers;
    n_consumers = consumers;
    separate = keep_separate;
    lanes = Array.init (producers * consumers) (fun _ -> make_lane flow_slack);
    sinks = Array.init consumers (fun _ -> make_sink ());
    shut = Atomic.make false;
    poisoned = Atomic.make None;
    on_shutdown;
    hook_ran = Atomic.make false;
    faults;
    sent = Atomic.make 0;
    received = Atomic.make 0;
    records = Atomic.make 0;
    sent_by = Array.init producers (fun _ -> Atomic.make 0);
    stalls = Atomic.make 0;
    stall_ns = Atomic.make 0;
    timed;
  }

let producers t = t.n_producers
let consumers t = t.n_consumers
let keep_separate t = t.separate

let lane_of t ~producer ~consumer =
  t.lanes.((producer * t.n_consumers) + consumer)

let bump_peak lane occupancy =
  if occupancy > Atomic.get lane.peak then Atomic.set lane.peak occupancy

(* ------------------------------------------------------------------ *)
(* Producer side                                                       *)

let wake_consumer t ~consumer =
  let sink = t.sinks.(consumer) in
  if Atomic.get sink.consumer_waiting then begin
    Atomic.set sink.consumer_waiting false;
    Mutex.lock sink.s_lock;
    let parked = sink.parked_consumer in
    sink.parked_consumer <- None;
    Condition.broadcast sink.arrived;
    Mutex.unlock sink.s_lock;
    match parked with Some wake -> wake () | None -> ()
  end

(* Non-mutating occupancy checks, used as the post-registration re-check
   of the suspension paths (the polls themselves mutate: they pop). *)
let lane_occupied lane =
  match lane.ring with
  | Some ring -> not (Spsc.is_empty ring)
  | None -> Atomic.get lane.q_count > 0

let ring_has_space ring = Spsc.length ring < Spsc.capacity ring

(* Full ring: spin briefly, then park on the lane condition.  The waiting
   flag is re-published before every wait and re-checked against the ring
   (and shutdown) after, so the consumer's pop-then-signal cannot slip
   between our check and our sleep.  Returns false iff the port shut down
   before a slot freed (the packet is dropped, as post-shutdown sends
   are). *)
let push_parking t lane ring packet =
  let rec spin budget =
    if Spsc.try_push ring packet then true
    else if Atomic.get t.shut then false
    else if budget = 0 then
      if Sched.on_pool () then park_pooled () else park ()
    else begin
      Domain.cpu_relax ();
      spin (budget - 1)
    end
  (* Pool fiber: yield the worker instead of parking it.  Same handshake
     as [park] below — waiting flag up, then re-check ring and shutdown —
     except the "sleep" is a suspension whose waker sits in
     [parked_producer] for [take_lane]/[shutdown] to drain. *)
  and park_pooled () =
    Injector.hit t.faults Volcano_fault.Sched_park;
    let rec wait () =
      if Spsc.try_push ring packet then true
      else if Atomic.get t.shut then false
      else begin
        Sched.suspend (fun wake ->
            Mutex.lock lane.q_lock;
            lane.parked_producer <- Some wake;
            Atomic.set lane.producer_waiting true;
            let blocked =
              (not (ring_has_space ring)) && not (Atomic.get t.shut)
            in
            if not blocked then begin
              lane.parked_producer <- None;
              Atomic.set lane.producer_waiting false
            end;
            Mutex.unlock lane.q_lock;
            blocked);
        wait ()
      end
    in
    wait ()
  and park () =
    Mutex.lock lane.q_lock;
    let rec wait () =
      if Spsc.try_push ring packet then begin
        Mutex.unlock lane.q_lock;
        true
      end
      else if Atomic.get t.shut then begin
        Mutex.unlock lane.q_lock;
        false
      end
      else begin
        Atomic.set lane.producer_waiting true;
        if Spsc.try_push ring packet then begin
          Atomic.set lane.producer_waiting false;
          Mutex.unlock lane.q_lock;
          true
        end
        else if Atomic.get t.shut then begin
          Atomic.set lane.producer_waiting false;
          Mutex.unlock lane.q_lock;
          false
        end
        else begin
          Condition.wait lane.nonfull lane.q_lock;
          wait ()
        end
      end
    in
    wait ()
  in
  spin spin_budget

let send t ~producer ~consumer packet =
  Injector.hit t.faults Volcano_fault.Port_send;
  if not (Atomic.get t.shut) then begin
    let lane = lane_of t ~producer ~consumer in
    let delivered =
      match lane.ring with
      | Some ring ->
          if Spsc.try_push ring packet then true
          else begin
            (* A stall (the fast-path push fails) is counted always and
               clocked only on timed ports, so un-profiled queries never
               read the clock here. *)
            Atomic.incr t.stalls;
            if t.timed then begin
              let t0 = Clock.now () in
              let ok = push_parking t lane ring packet in
              let waited = Clock.now () -. t0 in
              let _ =
                Atomic.fetch_and_add t.stall_ns
                  (int_of_float (waited *. 1e9))
              in
              ok
            end
            else push_parking t lane ring packet
          end
      | None ->
          Mutex.lock lane.q_lock;
          Queue.push packet lane.items;
          Mutex.unlock lane.q_lock;
          let occupancy = Atomic.fetch_and_add lane.q_count 1 + 1 in
          bump_peak lane occupancy;
          true
    in
    if delivered then begin
      (match lane.ring with
      | Some ring -> bump_peak lane (Spsc.length ring)
      | None -> ());
      Atomic.incr t.sent;
      Atomic.incr t.sent_by.(producer);
      let _ = Atomic.fetch_and_add t.records (Packet.length packet) in
      wake_consumer t ~consumer
    end
  end

(* ------------------------------------------------------------------ *)
(* Consumer side                                                       *)

(* Non-blocking take from one lane; on success, a parked producer of a
   ring lane is woken to refill the slot we just freed. *)
let take_lane lane =
  match lane.ring with
  | Some ring -> (
      match Spsc.try_pop ring with
      | Some _ as packet ->
          if
            Atomic.get lane.producer_waiting
            && (eager_wake || Spsc.is_empty ring)
          then begin
            Atomic.set lane.producer_waiting false;
            Mutex.lock lane.q_lock;
            let parked = lane.parked_producer in
            lane.parked_producer <- None;
            Condition.broadcast lane.nonfull;
            Mutex.unlock lane.q_lock;
            match parked with Some wake -> wake () | None -> ()
          end;
          packet
      | None -> None)
  | None ->
      if Atomic.get lane.q_count = 0 then None
      else begin
        Mutex.lock lane.q_lock;
        let packet = Queue.take_opt lane.items in
        Mutex.unlock lane.q_lock;
        (match packet with
        | Some _ -> Atomic.decr lane.q_count
        | None -> ());
        packet
      end

(* Poll the consumer's lanes round-robin from where the last receive left
   off, so no producer is starved behind rank 0's stream. *)
let poll_any t ~consumer =
  let sink = t.sinks.(consumer) in
  let n = t.n_producers in
  let rec go i =
    if i = n then None
    else
      let producer = (sink.rr + i) mod n in
      match take_lane (lane_of t ~producer ~consumer) with
      | Some _ as packet ->
          sink.rr <- (producer + 1) mod n;
          packet
      | None -> go (i + 1)
  in
  go 0

(* Blocking receive around an arbitrary non-blocking [poll]: spin, then
   park on the consumer's sink.  Shutdown is checked only after a failed
   poll, so packets already queued survive a shutdown (drain-then-None
   semantics).  [ready] is the non-mutating counterpart of [poll], used
   to re-check for arrivals after a suspension waker is registered. *)
let receive_with t ~consumer ~ready poll =
  Injector.hit t.faults Volcano_fault.Port_receive;
  match poll () with
  | Some _ as packet ->
      Atomic.incr t.received;
      packet
  | None ->
      let sink = t.sinks.(consumer) in
      let rec spin budget =
        match poll () with
        | Some _ as packet -> packet
        | None ->
            if Atomic.get t.shut then None
            else if budget = 0 then
              if Sched.on_pool () then park_pooled () else park ()
            else begin
              Domain.cpu_relax ();
              spin (budget - 1)
            end
      (* Pool fiber: suspend instead of blocking the worker, waker in
         [parked_consumer].  Flag-up-then-recheck as in [park]. *)
      and park_pooled () =
        Injector.hit t.faults Volcano_fault.Sched_park;
        let rec wait () =
          match poll () with
          | Some _ as packet -> packet
          | None ->
              if Atomic.get t.shut then None
              else begin
                Sched.suspend (fun wake ->
                    Mutex.lock sink.s_lock;
                    sink.parked_consumer <- Some wake;
                    Atomic.set sink.consumer_waiting true;
                    let blocked = not (ready () || Atomic.get t.shut) in
                    if not blocked then begin
                      sink.parked_consumer <- None;
                      Atomic.set sink.consumer_waiting false
                    end;
                    Mutex.unlock sink.s_lock;
                    blocked);
                wait ()
              end
        in
        wait ()
      and park () =
        Mutex.lock sink.s_lock;
        let rec wait () =
          match poll () with
          | Some _ as packet ->
              Mutex.unlock sink.s_lock;
              packet
          | None ->
              if Atomic.get t.shut then begin
                Mutex.unlock sink.s_lock;
                None
              end
              else begin
                Atomic.set sink.consumer_waiting true;
                match poll () with
                | Some _ as packet ->
                    Atomic.set sink.consumer_waiting false;
                    Mutex.unlock sink.s_lock;
                    packet
                | None ->
                    if Atomic.get t.shut then begin
                      Atomic.set sink.consumer_waiting false;
                      Mutex.unlock sink.s_lock;
                      None
                    end
                    else begin
                      Condition.wait sink.arrived sink.s_lock;
                      wait ()
                    end
              end
        in
        wait ()
      in
      let packet = spin spin_budget in
      (match packet with Some _ -> Atomic.incr t.received | None -> ());
      packet

let any_lane_occupied t ~consumer =
  let n = t.n_producers in
  let rec go producer =
    producer < n
    && (lane_occupied (lane_of t ~producer ~consumer) || go (producer + 1))
  in
  go 0

let receive t ~consumer =
  if t.separate then
    invalid_arg "Port.receive: keep-separate port requires receive_from";
  receive_with t ~consumer
    ~ready:(fun () -> any_lane_occupied t ~consumer)
    (fun () -> poll_any t ~consumer)

let receive_from t ~producer ~consumer =
  let lane = lane_of t ~producer ~consumer in
  receive_with t ~consumer
    ~ready:(fun () -> lane_occupied lane)
    (fun () -> take_lane lane)

let try_receive t ~consumer =
  if t.separate then
    invalid_arg "Port.try_receive: keep-separate port requires receive_from";
  match poll_any t ~consumer with
  | Some _ as packet ->
      Atomic.incr t.received;
      packet
  | None -> None

(* ------------------------------------------------------------------ *)
(* Packet recycling                                                    *)

let alloc t ~producer ~consumer ~capacity =
  Packet.Pool.alloc (lane_of t ~producer ~consumer).pool ~capacity ~producer

let recycle t ~consumer packet =
  let producer = Packet.producer packet in
  if producer >= 0 && producer < t.n_producers then
    Packet.Pool.recycle (lane_of t ~producer ~consumer).pool packet

let pool_allocated t =
  Array.fold_left (fun acc l -> acc + Packet.Pool.allocated l.pool) 0 t.lanes

let pool_reused t =
  Array.fold_left (fun acc l -> acc + Packet.Pool.reused l.pool) 0 t.lanes

let pool_recycled t =
  Array.fold_left (fun acc l -> acc + Packet.Pool.recycled l.pool) 0 t.lanes

(* ------------------------------------------------------------------ *)
(* Shutdown                                                            *)

let shutdown t =
  Atomic.set t.shut true;
  (* Exact wakeups: every parked consumer sits on its sink and every
     parked producer on its lane's [nonfull]; one broadcast under each
     lock reaches precisely the waiters (no semaphore flooding).  The
     woken side re-checks [shut] before sleeping again, so the
     flag-then-broadcast order cannot strand a late sleeper. *)
  Array.iter
    (fun sink ->
      Mutex.lock sink.s_lock;
      let parked = sink.parked_consumer in
      sink.parked_consumer <- None;
      Condition.broadcast sink.arrived;
      Mutex.unlock sink.s_lock;
      match parked with Some wake -> wake () | None -> ())
    t.sinks;
  Array.iter
    (fun lane ->
      Mutex.lock lane.q_lock;
      let parked = lane.parked_producer in
      lane.parked_producer <- None;
      Condition.broadcast lane.nonfull;
      Mutex.unlock lane.q_lock;
      match parked with Some wake -> wake () | None -> ())
    t.lanes;
  (* Chain the cancellation downwards exactly once: ports created below
     this exchange must also wake their blocked producers and consumers,
     or a producer stuck in a descendant's receive would never observe
     this shutdown (satellite: early close of a deep pipeline). *)
  if not (Atomic.exchange t.hook_ran true) then t.on_shutdown ()

let poison t exn =
  (* First failure wins; [None] is immediate so compare-and-set is exact. *)
  ignore (Atomic.compare_and_set t.poisoned None (Some exn));
  shutdown t

let failure t = Atomic.get t.poisoned
let is_shut_down t = Atomic.get t.shut
let packets_sent t = Atomic.get t.sent
let packets_received t = Atomic.get t.received
let records_sent t = Atomic.get t.records

let max_depth t =
  Array.fold_left (fun acc lane -> max acc (Atomic.get lane.peak)) 0 t.lanes

let packets_sent_by t = Array.map Atomic.get t.sent_by
let flow_stalls t = Atomic.get t.stalls
let flow_stall_s t = float_of_int (Atomic.get t.stall_ns) *. 1e-9

(* ------------------------------------------------------------------ *)
(* Transport abstraction                                               *)

module Transport = struct
  exception Remote_failure of { site : string; message : string }

  let () =
    Printexc.register_printer (function
      | Remote_failure { site; message } ->
          Some
            (Printf.sprintf "Port.Transport.Remote_failure(site %s: %s)" site
               message)
      | _ -> None)

  (* [Routed] is the repartitioning event: the remote producer already
     applied the partition function, and the packet must reach consumer
     [dest] specifically — a merge edge ([Data]) lets the feeder pick any
     consumer. *)
  type event =
    | Data of Packet.t
    | Routed of int * Packet.t
    | Eos
    | Failed of exn

  type source = {
    pull : alloc:(capacity:int -> Packet.t) -> event;
    cancel : unit -> unit;
    join : unit -> unit;
  }

  (* The in-memory SPSC lane as one transport among others: a pull is a
     blocking [receive_from]; the lane's own buffers carry the packets, so
     [alloc] is unused.  A drained shut-down lane distinguishes poison
     (the producer's failure) from a clean end of stream. *)
  let of_port t ~producer ~consumer =
    {
      pull =
        (fun ~alloc:_ ->
          match receive_from t ~producer ~consumer with
          | Some packet -> Data packet
          | None -> (
              match failure t with Some exn -> Failed exn | None -> Eos));
      cancel = (fun () -> shutdown t);
      join = (fun () -> ());
    }
end
