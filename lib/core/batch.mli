(** Batch iterators: the vectorized in-process counterpart of {!Iterator}.

    Inside a process group the per-record iterator protocol — one closure
    call per [next], one boxed option per row — dominates once exchange's
    hot path is cheap.  A batch iterator amortizes it: [next] yields a
    whole {!Packet} of records built on the same shells (capacity 1..255)
    the exchange ports circulate, so an exchange producer fed by a batch
    pipeline copies rows straight from batch to port packet with no
    per-record closure hop in between.

    Ownership contract: the packet returned by [next] belongs to the
    batch iterator and is valid only until the following [next] or
    [close] call — implementations reuse one shell.  End of stream is
    [None] (a yielded packet never carries the end-of-stream tag, and is
    never empty).  Exchange remains the only place batches cross a
    domain boundary, and there they are re-packetized onto the port's
    pooled packets — batches themselves never travel between domains.

    The open–next–close protocol and its rules are exactly
    {!Iterator}'s. *)

type t

val make :
  open_:(unit -> unit) ->
  next:(unit -> Packet.t option) ->
  close:(unit -> unit) ->
  t

val open_ : t -> unit
val next : t -> Packet.t option
val close : t -> unit

val default_size : int
(** 64 — the default [batch_size] knob setting. *)

val validate : batch_size:int -> (string * string) list
(** The single validation path for the [batch_size] knob, shared by
    {!Volcano_plan.Env} and planlint's batch pass (like
    {!Exchange.validate}).  0 means the batch path is disabled and is
    valid; otherwise the size must fit a packet shell, 1..255.  Returns
    [(code, message)] diagnoses — code ["batch-size"] — or [[]]. *)

(** {2 Fused pipelines}

    A fused chain is one tight loop: a {!cursor} steps the source,
    pushing each record through a composed {!Volcano_tuple.Support.Stage}
    emit function that lands survivors in the output shell.  No
    per-record option, no per-operator [next]. *)

type cursor = {
  reset : unit -> unit;  (** (re)position at the first record *)
  step : emit:(Volcano_tuple.Tuple.t -> unit) -> max:int -> int;
      (** Drive up to [max] source records through [emit]; returns the
          number of source records consumed — 0 means exhausted.  [emit]
          adds at most one output record per source record. *)
  stop : unit -> unit;  (** release source resources *)
}

val fused : batch_size:int -> ?stage:Volcano_tuple.Support.Stage.t -> cursor -> t
(** The fused pipeline: per [next], reset the reused shell and loop the
    cursor until the shell fills or the source is exhausted.  [stage]
    (default identity) must emit at most one record per input record —
    the fill loop bounds each step by the shell's remaining room.
    @raise Invalid_argument unless [1 <= batch_size <= 255]. *)

val generator_cursor : count:int -> f:(int -> Volcano_tuple.Tuple.t) -> cursor
val array_cursor : Volcano_tuple.Tuple.t array -> cursor

val iterator_cursor : Iterator.t -> cursor
(** Wrap any record iterator as a batch source ([reset] opens it, [stop]
    closes it). *)

(** {2 Record-at-a-time bridges}

    The adapter contract: operators not yet vectorized (sort, hash
    match, merge, ...) consume a fused subtree through {!to_iterator}
    unchanged, and a record subtree feeds a batch consumer through
    {!of_iterator}.  Both preserve record order exactly, so the batch
    and record paths are bit-identical. *)

val of_iterator : batch_size:int -> Iterator.t -> t
(** [fused] over {!iterator_cursor}. *)

val to_iterator : t -> Iterator.t
(** The record view of a batch stream: [next] serves rows out of the
    current batch and pulls the next one on exhaustion. *)

val iter : (Volcano_tuple.Tuple.t -> unit) -> t -> unit
(** Open, drive every batch (applying [f] per record), close — also on
    exceptions.  The bulk consumer for batch-aware blocking operators. *)

val consume : t -> int
(** Open, count records, close. *)
