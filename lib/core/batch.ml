type t = {
  open_ : unit -> unit;
  next : unit -> Packet.t option;
  close : unit -> unit;
}

let make ~open_ ~next ~close = { open_; next; close }

let open_ t = t.open_ ()
let next t = t.next ()
let close t = t.close ()

let default_size = 64

let validate ~batch_size =
  if batch_size = 0 then [] (* disabled: the record-at-a-time path *)
  else if batch_size < 1 || batch_size > Packet.max_capacity then
    [
      ( "batch-size",
        Printf.sprintf "batch size must be 0 (disabled) or in [1, %d]"
          Packet.max_capacity );
    ]
  else []

(* ------------------------------------------------------------------ *)
(* Fused pipelines                                                     *)

type cursor = {
  reset : unit -> unit;
  step : emit:(Volcano_tuple.Tuple.t -> unit) -> max:int -> int;
  stop : unit -> unit;
}

let fused ~batch_size ?(stage = fun k -> k) cursor =
  (match validate ~batch_size with
  | [] when batch_size > 0 -> ()
  | _ -> invalid_arg "Batch.fused: batch_size must be in [1, 255]");
  (* A fresh shell per batch, deliberately NOT one long-lived reused
     shell: a reused shell is promoted to the major heap after a few
     minor collections, and from then on every refill overwrites
     major-heap pointer fields.  Any per-record allocation downstream
     keeps OCaml 5's concurrent marking active, and each such overwrite
     then pays the deletion barrier — measured ~5x the cost of
     bump-allocating a young shell that dies with its batch.  [emit] is
     composed once and reaches the current shell through one cell. *)
  let shell = ref (Packet.create ~capacity:batch_size ~producer:0) in
  let emit = stage (fun tuple -> Packet.add !shell tuple) in
  let finished = ref true in
  {
    open_ =
      (fun () ->
        finished := false;
        cursor.reset ());
    next =
      (fun () ->
        if !finished then None
        else begin
          let packet = Packet.create ~capacity:batch_size ~producer:0 in
          shell := packet;
          (* The tight loop: step the source, bounded by the shell's
             remaining room (stages emit at most one record per input
             record, so the shell cannot overflow). *)
          let exhausted = ref false in
          while (not !exhausted) && not (Packet.is_full packet) do
            let room = Packet.capacity packet - Packet.length packet in
            if cursor.step ~emit ~max:room = 0 then exhausted := true
          done;
          if !exhausted then finished := true;
          if Packet.is_empty packet then None else Some packet
        end);
    close =
      (fun () ->
        finished := true;
        cursor.stop ());
  }

let generator_cursor ~count ~f =
  let pos = ref 0 in
  {
    reset = (fun () -> pos := 0);
    step =
      (fun ~emit ~max ->
        let i = !pos in
        let n = min max (count - i) in
        if n <= 0 then 0
        else begin
          for k = i to i + n - 1 do
            emit (f k)
          done;
          pos := i + n;
          n
        end);
    stop = (fun () -> ());
  }

let array_cursor tuples =
  let total = Array.length tuples in
  let pos = ref 0 in
  {
    reset = (fun () -> pos := 0);
    step =
      (fun ~emit ~max ->
        let i = !pos in
        let n = min max (total - i) in
        if n <= 0 then 0
        else begin
          for k = i to i + n - 1 do
            emit (Array.unsafe_get tuples k)
          done;
          pos := i + n;
          n
        end);
    stop = (fun () -> ());
  }

let iterator_cursor iter =
  {
    reset = (fun () -> Iterator.open_ iter);
    step =
      (fun ~emit ~max ->
        let n = ref 0 in
        (try
           while !n < max do
             match Iterator.next iter with
             | Some tuple ->
                 emit tuple;
                 incr n
             | None -> raise Exit
           done
         with Exit -> ());
        !n);
    stop = (fun () -> Iterator.close iter);
  }

(* ------------------------------------------------------------------ *)
(* Record-at-a-time bridges                                            *)

let of_iterator ~batch_size iter = fused ~batch_size (iterator_cursor iter)

let to_iterator t =
  (* The fast path must stay closure-free and match-free: one bounds
     compare, one load, one [Some].  A drained sentinel (any packet with
     everything consumed) funnels the slow path into [refill], defined
     once per iterator rather than per call. *)
  let drained = Packet.create ~capacity:1 ~producer:0 in
  let current = ref drained in
  let pos = ref 0 in
  let len = ref 0 in
  let rec refill () =
    match t.next () with
    | None ->
        current := drained;
        pos := 0;
        len := 0;
        None
    | Some packet ->
        let n = Packet.length packet in
        (* The protocol says producers never hand over an empty packet,
           but a defensive skip costs nothing off the fast path. *)
        if n = 0 then refill ()
        else begin
          current := packet;
          pos := 1;
          len := n;
          Some (Packet.get packet 0)
        end
  in
  Iterator.make
    ~open_:(fun () ->
      current := drained;
      pos := 0;
      len := 0;
      t.open_ ())
    ~next:(fun () ->
      let i = !pos in
      if i < !len then begin
        pos := i + 1;
        Some (Packet.get !current i)
      end
      else refill ())
    ~close:(fun () ->
      current := drained;
      pos := 0;
      len := 0;
      t.close ())

let iter f t =
  t.open_ ();
  Fun.protect
    ~finally:(fun () -> t.close ())
    (fun () ->
      let rec drive () =
        match t.next () with
        | None -> ()
        | Some packet ->
            for i = 0 to Packet.length packet - 1 do
              f (Packet.get packet i)
            done;
            drive ()
      in
      drive ())

let consume t =
  let n = ref 0 in
  iter (fun _ -> incr n) t;
  !n
