(** Process groups.

    "If an operator or an operator subtree is executed in parallel by a
    group of processes, one of them is designated the master" (paper,
    section 4.2).  A [Group.t] is one process's view of its group: its rank,
    the group size, and shared state through which the group master
    publishes ports for the other members — the paper's "address known only
    to the BC processes" with its double synchronization around port
    creation. *)

type t

exception Cancelled
(** Raised by {!lookup_port} when the group was cancelled before the
    awaited port was published. *)

val solo : unit -> t
(** The size-1 group of the query root process. *)

type shared

val make_shared : size:int -> shared
(** Shared state for a new producer group of [size] processes. *)

val attach : shared -> rank:int -> t
(** The view of member [rank] (0 is the master). *)

val rank : t -> int
val size : t -> int
val is_master : t -> bool

val publish_port : t -> key:int -> Port.t -> unit
(** Master only: make a port visible to the whole group under an exchange
    instance key. *)

val lookup_port : t -> key:int -> Port.t
(** Block until the master has published the port for [key].  Raises
    {!Cancelled} if the group is cancelled while waiting — a member that
    dies may never publish, so waiting on would deadlock the joiner. *)

val cancel : t -> unit
(** Mark the group dead and wake every blocked {!lookup_port}.  Called by
    the failure path when a member dies: a sibling waiting for a port the
    dead member would have published must not wait forever. *)

val barrier : t -> unit
(** Synchronize all members of the group. *)
