(** The exchange operator — the paper's contribution.

    Exchange is itself an iterator, so "it can be inserted at any one place
    or at multiple places in a complex query tree" (section 4).  It
    encapsulates all three forms of parallelism:

    - {e vertical} (pipelining): the consumer side is an ordinary iterator
      while the producer side, running in freshly forked processes, becomes
      the data-driven driver of the subtree below;
    - {e bushy}: two exchanges under a binary operator let both inputs be
      computed concurrently;
    - {e intra-operator}: [degree > 1] producers partition their output
      across the consumer group with a partitioning support function.

    Variants from section 4.4 are all here: {e broadcast} (replicate the
    stream to every consumer), {e keep-separate} producer streams for merge
    networks ({!producer_streams}), and the {e no-fork interchange} that
    lives in the middle of a process's operator tree and turns the process
    into both producer and consumer ({!interchange}).

    Everything below the exchange runs unchanged single-process code: this
    module alone performs the translation between demand-driven dataflow
    within a process and data-driven dataflow between processes.

    "Processes" are tasks on a {!Volcano_sched.Sched} scheduler (shared
    memory, like the paper's Sequent processes).  Under the default pool
    scheduler producers are closures submitted to a fixed set of worker
    domains and blocked producers suspend, yielding their worker; under
    {!Volcano_sched.Sched.dedicated} each producer still gets a fresh
    domain, reproducing the original fork-per-producer behaviour.

    {2 Failure semantics}

    A failure anywhere in a parallel plan — a producer domain dying, a
    consumer-side fault, an injected error from {!Volcano_fault} —
    surfaces at the consuming [next] as a single {!Query_failed} carrying
    the original exception and the site that raised it.  The failing
    process poisons its port, which wakes every blocked peer, cancels
    sibling producers, and (through cancellation {!Scope}s chained across
    nested exchanges) shuts every descendant port so processes blocked
    deep inside the pipeline observe the cancellation.  Teardown then
    joins every producer domain and closes every subtree iterator, so no
    domain and no buffer fix outlives the failed query. *)

exception Query_failed of { site : string; origin : exn }
(** The one exception a consumer sees when a parallel query dies: [site]
    names where the failure originated (a {!Volcano_fault.site} name, or
    ["producer"] / ["consumer"] / ["interchange"]), [origin] is the
    undisturbed original exception.  Never nested: a failure crossing
    several exchanges keeps its innermost site. *)

val as_query_failed : fallback:string -> exn -> exn
(** Normalize an exception to {!Query_failed} — idempotent, and maps
    {!Volcano_fault.Injected} to its site name. *)

(** Cancellation scopes: a scope collects the ports created below one
    exchange; shutting that exchange's port cancels the scope, which
    shuts the registered descendant ports, recursively.  Compiled plans
    thread a child scope into each exchange node. *)
module Scope : sig
  type t

  val create : unit -> t

  val register : t -> Port.t -> unit
  (** Registering on an already-cancelled scope shuts the port at once. *)

  val cancel : t -> unit
  (** Shut every registered port (each chains into its own scope).  Runs
      the shutdowns at most once. *)

  val poison : t -> exn -> unit
  (** Like {!cancel}, but poison the registered ports so consumers report
      [exn] (as {!Query_failed}) instead of ending their streams quietly —
      the entry point for runtime-initiated cancellation of a whole query.
      Ports registered after the poisoning are poisoned on arrival. *)

  val cancelled : t -> bool
end

type partition_spec =
  | Round_robin
  | Hash_on of int list  (** hash-partition on these columns *)
  | Range_on of int * Volcano_tuple.Value.t array
      (** range-partition on a column given ascending split bounds *)
  | Custom of Volcano_tuple.Support.Partition.t
  | Broadcast  (** replicate every record to every consumer (section 4.4) *)

type fork_mode =
  | Fork_tree  (** propagation-tree forking (section 4.2, after Gerber) *)
  | Fork_central  (** master forks every producer itself *)

type config = private {
  degree : int;  (** number of producer processes *)
  packet_size : int;  (** records per packet, 1..255; default 83 *)
  flow_slack : int option;
      (** [Some n] enables flow control with [n] slack packets *)
  partition : partition_spec;
  fork_mode : fork_mode;
}
(** Private: a [config] can only come from the validating {!config}
    constructor, so every value in circulation has already passed
    {!validate} — planlint and the runtime share one validation path. *)

val config :
  ?degree:int ->
  ?packet_size:int ->
  ?flow_slack:int option ->
  ?partition:partition_spec ->
  ?fork_mode:fork_mode ->
  unit ->
  config
(** Defaults: degree 1, packet size 83, flow control with 4 slack packets,
    round-robin partitioning, tree forking.

    Raises [Invalid_argument] on a config that could only fail at fork
    time, deep inside a producer task: [degree < 1], [packet_size]
    outside [1, 255] (the paper's one-byte field), or a non-positive
    flow-control slack — the first problem {!validate} reports. *)

val validate :
  degree:int ->
  packet_size:int ->
  flow_slack:int option ->
  (string * string) list
(** The single validation path behind {!config}, exposed for static
    analysis over not-yet-constructed configurations.  Returns
    [(code, message)] diagnoses — codes ["exchange-degree"],
    ["exchange-packet-size"], ["exchange-flow-slack"] — or [[]] when the
    combination is acceptable. *)

val fresh_id : unit -> int
(** Allocate an exchange instance key.  All consumers of one logical
    exchange (one per member of the consuming group) must share the key so
    that non-master members find the master's port. *)

type producer_source = Record_source of Iterator.t | Batch_source of Batch.t
(** What a producer task drives: the compiled subtree as a record
    iterator, or — when the subtree fused into a batch pipeline — as a
    {!Batch.t} whose packets the producer drains into port packets in a
    tight per-batch loop, with no per-record closure hop.  Either way
    records cross the domain boundary only inside port packets: batches
    are re-packetized here, never handed across domains. *)

val source_iterator :
  ?id:int ->
  ?faults:Volcano_fault.Injector.t ->
  ?parent_scope:Scope.t ->
  ?scope:Scope.t ->
  ?obs:Volcano_obs.Obs.t * Volcano_obs.Obs.Node.t ->
  ?sched:Volcano_sched.Sched.t ->
  config ->
  group:Group.t ->
  input:(Group.t -> producer_source) ->
  Iterator.t
(** {!iterator} generalized over the producer source: each producer task
    evaluates [input] and drives whichever side of {!producer_source} it
    returns.  The consumer side is identical. *)

val iterator :
  ?id:int ->
  ?faults:Volcano_fault.Injector.t ->
  ?parent_scope:Scope.t ->
  ?scope:Scope.t ->
  ?obs:Volcano_obs.Obs.t * Volcano_obs.Obs.Node.t ->
  ?sched:Volcano_sched.Sched.t ->
  config ->
  group:Group.t ->
  input:(Group.t -> Iterator.t) ->
  Iterator.t
(** The exchange iterator for the calling process (one member of the
    consuming group).  On [open_], the group master creates the port and
    forks the producer group as tasks on [sched] (default
    {!Volcano_sched.Sched.default}); each producer evaluates [input] —
    in its own task, with its own group context — and drives it, pushing
    packets.  [next] returns records as they arrive; [close] on the master
    permits producers to shut down and joins them (closing before
    end-of-stream cancels the producers).  Other group members attach to
    the master's port and close locally.

    [obs] (a sink and this exchange's plan node) turns on deep
    instrumentation: the port is created timed (flow-control stalls are
    clocked), and a sample of its packet/stall/spawn/join counters is
    registered with the sink for the profile report. *)

val remote_iterator :
  ?id:int ->
  ?faults:Volcano_fault.Injector.t ->
  ?parent_scope:Scope.t ->
  ?scope:Scope.t ->
  ?obs:Volcano_obs.Obs.t * Volcano_obs.Obs.Node.t ->
  config ->
  group:Group.t ->
  connect:(unit -> Port.Transport.source array) ->
  Iterator.t
(** The consumer half of exchange when the producer group lives behind
    {!Port.Transport.source}s — worker processes across a socket
    ([Volcano_net]), or in-memory lanes via {!Port.Transport.of_port}.
    On the master's [open_], [connect] establishes one source per remote
    producer (a refused connection raises {!Query_failed} at site
    ["net-connect"]); one dedicated feeder domain per source pumps pulled
    packets into a local port, so [next], EOS counting, flow control, and
    the failure semantics are exactly the shared-memory paths: a dropped
    connection or a shipped worker failure surfaces as the same single
    {!Query_failed} a dead local producer produces, and closing early (or
    a runtime cancel through the scopes) cancels the sources, which sends
    best-effort cancel frames and closes the sockets.  [close] joins the
    feeder domains and the sources (reaping worker processes).  The
    partition spec of [cfg] is not re-applied on the wire edge: workers
    already sharded the data, so packets merge round-robin across the
    consuming group. *)

val producer_streams :
  ?id:int ->
  ?faults:Volcano_fault.Injector.t ->
  ?parent_scope:Scope.t ->
  ?scope:Scope.t ->
  ?obs:Volcano_obs.Obs.t * Volcano_obs.Obs.Node.t ->
  ?sched:Volcano_sched.Sched.t ->
  config ->
  group:Group.t ->
  input:(Group.t -> Iterator.t) ->
  Iterator.t array
(** The merge-network variant: [degree] iterators, one per producer, whose
    records are kept separate so a merge iterator can consume sorted runs
    producer-by-producer.  The streams share one port and one producer
    group; the first [open_] performs setup, the last [close] tears down. *)

val interchange :
  ?id:int ->
  ?faults:Volcano_fault.Injector.t ->
  ?parent_scope:Scope.t ->
  ?scope:Scope.t ->
  ?obs:Volcano_obs.Obs.t * Volcano_obs.Obs.Node.t ->
  config ->
  group:Group.t ->
  input:Iterator.t ->
  Iterator.t
(** The no-fork variant (section 4.4): the exchange lives in the middle of
    this process's operator tree, making every group member both a producer
    and a consumer.  [next] first serves packets already queued for this
    process; otherwise it drives its own input, routing records to peer
    queues until one lands in its own partition.  No processes are forked
    and flow control is unnecessary: "a process runs a producer only if it
    does not have input for the consumer". *)

(** {2 Instrumentation}

    The counters keep their historical names but count producer {e tasks}
    submitted to the scheduler — under {!Volcano_sched.Sched.dedicated}
    these are still one domain each. *)

val domains_spawned : unit -> int
(** Total producer tasks forked so far (tests, spawn ablation). *)

val domains_joined : unit -> int
(** Total producer tasks joined so far.  Equal to {!domains_spawned}
    whenever no query is running — the chaos harness asserts the
    difference is zero after every run, failed or not. *)

val live_domains : unit -> int
(** Producer tasks whose body is still executing. *)

val unjoined_domains : unit -> int
(** [domains_spawned () - domains_joined ()]. *)

(**/**)

module For_testing : sig
  val children_of : int -> int -> int list
  (** Ranks a producer forks in the propagation-tree scheme. *)
end
