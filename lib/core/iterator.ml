exception Protocol_error of string

type t = {
  open_ : unit -> unit;
  next : unit -> Volcano_tuple.Tuple.t option;
  close : unit -> unit;
}

let make ~open_ ~next ~close = { open_; next; close }

let open_ t = t.open_ ()
let next t = t.next ()
let close t = t.close ()

type protocol_state = Created | Opened | Exhausted | Closed

let checked t =
  let state = ref Created in
  let fail what =
    let name = function
      | Created -> "created"
      | Opened -> "opened"
      | Exhausted -> "exhausted"
      | Closed -> "closed"
    in
    raise (Protocol_error (Printf.sprintf "%s called while %s" what (name !state)))
  in
  {
    open_ =
      (fun () ->
        (match !state with Created -> () | _ -> fail "open");
        t.open_ ();
        state := Opened);
    next =
      (fun () ->
        (match !state with Opened -> () | _ -> fail "next");
        match t.next () with
        | Some _ as result -> result
        | None ->
            state := Exhausted;
            None);
    close =
      (fun () ->
        (match !state with Opened | Exhausted -> () | _ -> fail "close");
        t.close ();
        state := Closed);
  }

(* The observability wrapper: times the three entry points and counts
   rows, leaving the wrapped operator's algorithm untouched — the
   observability analogue of exchange's encapsulation of parallelism.
   One wrapper instance serves one rank; the shared [node] aggregates
   across ranks via atomics, while the open-to-close span is recorded
   per instance (it becomes one Chrome trace event on this domain). *)
let instrumented ~node t =
  let module Obs = Volcano_obs.Obs in
  let span_start = ref nan in
  let span_rows = ref 0 in
  make
    ~open_:(fun () ->
      Obs.Node.count_open node;
      let t0 = Obs.now () in
      span_start := t0;
      span_rows := 0;
      t.open_ ();
      Obs.Node.on_open node ~elapsed:(Obs.now () -. t0))
    ~next:(fun () ->
      let t0 = Obs.now () in
      match t.next () with
      | Some _ as result ->
          incr span_rows;
          Obs.Node.on_next node ~produced:true ~elapsed:(Obs.now () -. t0);
          result
      | None ->
          Obs.Node.on_next node ~produced:false ~elapsed:(Obs.now () -. t0);
          None
      | exception exn ->
          Obs.Node.on_next node ~produced:false ~elapsed:(Obs.now () -. t0);
          raise exn)
    ~close:(fun () ->
      Obs.Node.count_close node;
      let t0 = Obs.now () in
      t.close ();
      let stop = Obs.now () in
      Obs.Node.on_close node ~elapsed:(stop -. t0);
      if not (Float.is_nan !span_start) then begin
        Obs.Node.on_span node ~start:!span_start ~stop ~rows:!span_rows;
        span_start := nan
      end)

let of_array tuples =
  let pos = ref 0 in
  {
    open_ = (fun () -> pos := 0);
    next =
      (fun () ->
        if !pos >= Array.length tuples then None
        else begin
          let tuple = tuples.(!pos) in
          incr pos;
          Some tuple
        end);
    close = (fun () -> ());
  }

let of_list tuples = of_array (Array.of_list tuples)

let generate ~count ~f =
  let pos = ref 0 in
  {
    open_ = (fun () -> pos := 0);
    next =
      (fun () ->
        if !pos >= count then None
        else begin
          let tuple = f !pos in
          incr pos;
          Some tuple
        end);
    close = (fun () -> ());
  }

let empty = of_array [||]

let fold f init t =
  open_ t;
  let rec drive acc =
    match next t with None -> acc | Some tuple -> drive (f acc tuple)
  in
  let result = Fun.protect ~finally:(fun () -> close t) (fun () -> drive init) in
  result

let to_list t = List.rev (fold (fun acc tuple -> tuple :: acc) [] t)
let iter f t = fold (fun () tuple -> f tuple) () t
let consume t = fold (fun n _ -> n + 1) 0 t
