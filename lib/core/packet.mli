(** Exchange packets.

    "The output of next is collected in packets ... which contain 83
    NEXT_RECORD structures" (paper, section 4.1).  "The actual packet size
    is an argument in the state record, and can be set between 1 and 255
    records."  The last packet from a producer carries an end-of-stream
    tag; it may also carry records. *)

type t

val default_capacity : int
(** 83, the paper's standard packet size. *)

val max_capacity : int
(** 255 *)

val create : capacity:int -> producer:int -> t
(** @raise Invalid_argument unless [1 <= capacity <= max_capacity]. *)

val producer : t -> int
val capacity : t -> int
val length : t -> int
val is_full : t -> bool
val is_empty : t -> bool

val add : t -> Volcano_tuple.Tuple.t -> unit
(** @raise Invalid_argument if full. *)

val get : t -> int -> Volcano_tuple.Tuple.t

val tag_end_of_stream : t -> unit
val end_of_stream : t -> bool

val reset : t -> unit
(** Empty the packet and clear its end-of-stream tag, keeping the record
    array for reuse.  Called only by an owner refilling a shell it
    exclusively holds: the pool (on packets the consumer has explicitly
    released) and {!Batch} pipelines (on their private shells). *)

(** A per-lane packet recycler: the consumer returns drained packets
    through a bounded SPSC free ring and the producer's next allocation
    reuses them, eliminating per-packet allocation in steady state.
    Single recycler, single allocator — exactly a port lane's consumer
    and producer. *)
module Pool : sig
  type packet := t
  type t

  val create : slots:int -> t
  (** [slots] bounds the free ring; overflow recycles fall through to
      the GC. *)

  val alloc : t -> capacity:int -> producer:int -> packet
  (** A reset pooled packet when one with matching capacity and producer
      is available, otherwise a fresh one. *)

  val recycle : t -> packet -> unit
  (** Hand a packet back for reuse.  The caller must not touch the
      packet afterwards: the producer may refill it immediately. *)

  val allocated : t -> int
  val reused : t -> int
  val recycled : t -> int
end
