module Latch = Volcano_util.Latch

exception Cancelled

type shared = {
  group_size : int;
  lock : Mutex.t;
  published : Condition.t;
  ports : (int, Port.t) Hashtbl.t;
  mutable dead : bool;
  sync : Latch.Barrier.t;
}

type t = { rank : int; shared : shared }

let make_shared ~size =
  assert (size > 0);
  {
    group_size = size;
    lock = Mutex.create ();
    published = Condition.create ();
    ports = Hashtbl.create 8;
    dead = false;
    sync = Latch.Barrier.create size;
  }

let attach shared ~rank =
  assert (rank >= 0 && rank < shared.group_size);
  { rank; shared }

let solo () = attach (make_shared ~size:1) ~rank:0

let rank t = t.rank
let size t = t.shared.group_size
let is_master t = t.rank = 0

let publish_port t ~key port =
  if not (is_master t) then invalid_arg "Group.publish_port: not the master";
  Mutex.lock t.shared.lock;
  Hashtbl.replace t.shared.ports key port;
  Condition.broadcast t.shared.published;
  Mutex.unlock t.shared.lock

(* A member that dies may do so before publishing a port its siblings are
   waiting for — nothing would ever signal [published] again, and the
   waiters (and the joiner behind them) would hang forever.  The failure
   handler marks the whole group dead and wakes every waiter; a woken
   lookup that still finds no port gives up. *)
let cancel t =
  Mutex.lock t.shared.lock;
  t.shared.dead <- true;
  Condition.broadcast t.shared.published;
  Mutex.unlock t.shared.lock

let lookup_port t ~key =
  Mutex.lock t.shared.lock;
  let rec wait () =
    match Hashtbl.find_opt t.shared.ports key with
    | Some port ->
        Mutex.unlock t.shared.lock;
        port
    | None ->
        if t.shared.dead then begin
          Mutex.unlock t.shared.lock;
          raise Cancelled
        end;
        Condition.wait t.shared.published t.shared.lock;
        wait ()
  in
  wait ()

let barrier t = Latch.Barrier.await t.shared.sync
