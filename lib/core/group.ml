module Latch = Volcano_util.Latch
module Sched = Volcano_sched.Sched

exception Cancelled

type shared = {
  group_size : int;
  lock : Mutex.t;
  published : Condition.t;
  ports : (int, Port.t) Hashtbl.t;
  mutable dead : bool;
  (* Suspended pool fibers waiting for a publish (or cancellation);
     drained under [lock] by [publish_port] and [cancel].  Wakers are
     idempotent and waiters re-register, so waking on every publish is
     correct even when a fiber waits for a different key. *)
  mutable waiters : (unit -> unit) list;
  sync : Latch.Barrier.t;
}

type t = { rank : int; shared : shared }

let make_shared ~size =
  assert (size > 0);
  {
    group_size = size;
    lock = Mutex.create ();
    published = Condition.create ();
    ports = Hashtbl.create 8;
    dead = false;
    waiters = [];
    sync = Latch.Barrier.create size;
  }

let attach shared ~rank =
  assert (rank >= 0 && rank < shared.group_size);
  { rank; shared }

let solo () = attach (make_shared ~size:1) ~rank:0

let rank t = t.rank
let size t = t.shared.group_size
let is_master t = t.rank = 0

let drain_waiters shared =
  let wakers = shared.waiters in
  shared.waiters <- [];
  wakers

let publish_port t ~key port =
  if not (is_master t) then invalid_arg "Group.publish_port: not the master";
  Mutex.lock t.shared.lock;
  Hashtbl.replace t.shared.ports key port;
  Condition.broadcast t.shared.published;
  let wakers = drain_waiters t.shared in
  Mutex.unlock t.shared.lock;
  List.iter (fun wake -> wake ()) wakers

(* A member that dies may do so before publishing a port its siblings are
   waiting for — nothing would ever signal [published] again, and the
   waiters (and the joiner behind them) would hang forever.  The failure
   handler marks the whole group dead and wakes every waiter; a woken
   lookup that still finds no port gives up. *)
let cancel t =
  Mutex.lock t.shared.lock;
  t.shared.dead <- true;
  Condition.broadcast t.shared.published;
  let wakers = drain_waiters t.shared in
  Mutex.unlock t.shared.lock;
  List.iter (fun wake -> wake ()) wakers

let lookup_port t ~key =
  if Sched.on_pool () then begin
    (* Pool fiber: suspend rather than park the worker.  The waker is
       registered under the same lock that publish/cancel take, so the
       found-nothing re-check inside [register] cannot race them. *)
    let rec wait () =
      Mutex.lock t.shared.lock;
      let found = Hashtbl.find_opt t.shared.ports key in
      let dead = t.shared.dead in
      Mutex.unlock t.shared.lock;
      match found with
      | Some port -> port
      | None ->
          if dead then raise Cancelled;
          Sched.suspend (fun wake ->
              Mutex.lock t.shared.lock;
              let pending =
                (not (Hashtbl.mem t.shared.ports key)) && not t.shared.dead
              in
              if pending then t.shared.waiters <- wake :: t.shared.waiters;
              Mutex.unlock t.shared.lock;
              pending);
          wait ()
    in
    wait ()
  end
  else begin
    Mutex.lock t.shared.lock;
    let rec wait () =
      match Hashtbl.find_opt t.shared.ports key with
      | Some port ->
          Mutex.unlock t.shared.lock;
          port
      | None ->
          if t.shared.dead then begin
            Mutex.unlock t.shared.lock;
            raise Cancelled
          end;
          Condition.wait t.shared.published t.shared.lock;
          wait ()
    in
    wait ()
  end

let barrier t = Latch.Barrier.await t.shared.sync
