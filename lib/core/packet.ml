type t = {
  tuples : Volcano_tuple.Tuple.t array;
  mutable len : int;
  mutable eos : bool;
  producer : int;
}

let default_capacity = 83
let max_capacity = 255

let create ~capacity ~producer =
  if capacity < 1 || capacity > max_capacity then
    invalid_arg "Packet.create: capacity must be in [1, 255]";
  { tuples = Array.make capacity [||]; len = 0; eos = false; producer }

let producer t = t.producer
let capacity t = Array.length t.tuples
let length t = t.len
let is_full t = t.len = Array.length t.tuples
let is_empty t = t.len = 0

(* Per-record operations: the explicit range checks make the subsequent
   unsafe array accesses safe, without paying the bounds check twice. *)
let add t tuple =
  if is_full t then invalid_arg "Packet.add: packet full";
  Array.unsafe_set t.tuples t.len tuple;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Packet.get: out of range";
  Array.unsafe_get t.tuples i

let tag_end_of_stream t = t.eos <- true
let end_of_stream t = t.eos

let reset t =
  t.len <- 0;
  t.eos <- false

(* Recycling: the consumer hands drained packets back through a bounded
   SPSC ring (it is the free ring's producer; the allocating producer is
   its consumer), so steady-state transfer reuses the same few
   [capacity]-slot arrays instead of allocating one per packet.  Stale
   tuple references in a pooled packet are overwritten on refill, never
   read: [reset] truncates [len], and consumers only read below [len]. *)
module Pool = struct
  module Spsc = Volcano_util.Spsc

  type packet = t

  let fresh = create

  type t = {
    free : packet Spsc.t;
    allocated : int Atomic.t; (* fresh arrays created *)
    reused : int Atomic.t; (* allocs served from the free ring *)
    recycled : int Atomic.t; (* returns accepted into the free ring *)
  }

  let create ~slots =
    {
      free =
        Spsc.create ~capacity:(max 1 slots)
          ~dummy:(fresh ~capacity:1 ~producer:0);
      allocated = Atomic.make 0;
      reused = Atomic.make 0;
      recycled = Atomic.make 0;
    }

  let alloc t ~capacity ~producer =
    match Spsc.try_pop t.free with
    | Some p when Array.length p.tuples = capacity && p.producer = producer ->
        Atomic.incr t.reused;
        reset p;
        p
    | Some _ | None ->
        (* Empty ring, or a foreign packet slipped in (capacity or
           producer mismatch): drop it and pay one allocation. *)
        Atomic.incr t.allocated;
        fresh ~capacity ~producer

  let recycle t p =
    if Spsc.try_push t.free p then Atomic.incr t.recycled
  (* A full free ring just lets the packet go to the GC. *)

  let allocated t = Atomic.get t.allocated
  let reused t = Atomic.get t.reused
  let recycled t = Atomic.get t.recycled
end
