(** Ports: the shared-memory data structures through which producer and
    consumer process groups exchange packets (paper, section 4.1).

    A port holds one packet queue per consumer — or, in {e keep-separate}
    mode (the merge-network variant of section 4.4), one queue per
    (producer, consumer) pair so that a merge iterator can distinguish
    records by producer.

    Flow control is a counting semaphore per queue: "the initial value of
    the flow control semaphore, e.g., 4, determines how many packets the
    producers may get ahead of the consumers".

    Dataflow through a port is data-driven (eager): producers push without
    request messages; consumers block on arrival. *)

type t

val create :
  producers:int ->
  consumers:int ->
  ?flow_slack:int ->
  ?keep_separate:bool ->
  ?faults:Volcano_fault.Injector.t ->
  ?on_shutdown:(unit -> unit) ->
  ?timed:bool ->
  unit ->
  t
(** [flow_slack] enables flow control ([None] disables it, the paper's
    run-time switch).  [keep_separate] gives each producer its own queue per
    consumer.  [faults] is consulted at the [Port_send] and [Port_receive]
    sites.  [on_shutdown] runs exactly once, on the first {!shutdown} (or
    {!poison}) — exchange uses it to cancel descendant ports so that
    processes blocked deep inside a pipeline observe the cancellation.
    [timed] (profiling) additionally clocks the time senders spend blocked
    on flow control; untimed ports never read the clock. *)

val producers : t -> int
val consumers : t -> int
val keep_separate : t -> bool

val send : t -> producer:int -> consumer:int -> Packet.t -> unit
(** Insert a packet, blocking on flow control if enabled.  After
    {!shutdown} this becomes a no-op (the packet is dropped). *)

val receive : t -> consumer:int -> Packet.t option
(** Next packet for the consumer, blocking until one arrives.  In
    keep-separate mode use {!receive_from}.  [None] after {!shutdown}. *)

val receive_from : t -> producer:int -> consumer:int -> Packet.t option
(** Next packet from one specific producer — the "third argument to
    next-exchange" that merge networks need. *)

val try_receive : t -> consumer:int -> Packet.t option
(** Non-blocking variant; [None] when the queue is momentarily empty (used
    by the no-fork interchange variant). *)

val shutdown : t -> unit
(** Early termination: wake all blocked senders and receivers; subsequent
    sends are dropped and receives return [None]. *)

val poison : t -> exn -> unit
(** {!shutdown}, additionally recording the exception that killed the
    stream.  The first poisoning wins; consumers that drain the port learn
    the cause from {!failure} and re-raise it as
    {!Exchange.Query_failed}. *)

val failure : t -> exn option
(** The recorded failure, if the port was poisoned. *)

val is_shut_down : t -> bool

(** {2 Instrumentation} *)

val packets_sent : t -> int

val packets_received : t -> int
(** Packets delivered to consumers.  After a full drain of a healthy
    stream this equals {!packets_sent}; the difference is packets still
    queued (or dropped by a shutdown). *)

val records_sent : t -> int

val max_depth : t -> int
(** Highest number of packets ever queued at once across the port — the
    observable effect of flow-control slack (ablation A1). *)

val packets_sent_by : t -> int array
(** Packets sent per producer rank — the skew view of {!packets_sent}. *)

val flow_stalls : t -> int
(** Sends that found the flow-control semaphore empty and blocked. *)

val flow_stall_s : t -> float
(** Total sender time spent blocked on flow control.  Only accumulated on
    [timed] ports; 0 otherwise. *)
