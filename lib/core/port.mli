(** Ports: the shared-memory data structures through which producer and
    consumer process groups exchange packets (paper, section 4.1).

    Every (producer, consumer) pair owns a dedicated single-producer
    single-consumer lane.  With flow control on, a lane is a bounded
    lock-free ring whose capacity {e is} the flow-control slack: "the
    initial value of the flow control semaphore, e.g., 4, determines how
    many packets the producers may get ahead of the consumers" — here the
    slack bounds each producer-consumer pair rather than a shared queue,
    so the uncontended send is two atomic operations and no lock.  With
    flow control off the lane is an unbounded striped queue (the no-fork
    interchange needs producers to run unboundedly ahead).

    In {e keep-separate} mode (the merge-network variant of section 4.4)
    consumers read lanes individually via {!receive_from}; otherwise
    {!receive} polls all of the consumer's lanes round-robin.

    Dataflow through a port is data-driven (eager): producers push without
    request messages; consumers block on arrival.  Blocked parties spin
    briefly (only on multi-core hosts), then park on a condition
    variable; wakeups on shutdown are exact — each waiter's own condition
    is broadcast once. *)

type t

val create :
  producers:int ->
  consumers:int ->
  ?flow_slack:int ->
  ?keep_separate:bool ->
  ?faults:Volcano_fault.Injector.t ->
  ?on_shutdown:(unit -> unit) ->
  ?timed:bool ->
  unit ->
  t
(** [flow_slack] enables flow control ([None] disables it, the paper's
    run-time switch) and is the exact ring capacity of each
    producer-consumer lane.  [keep_separate] requires consumers to use
    {!receive_from}.  [faults] is consulted at the [Port_send] and
    [Port_receive] sites.  [on_shutdown] runs exactly once, on the first
    {!shutdown} (or {!poison}) — exchange uses it to cancel descendant
    ports so that processes blocked deep inside a pipeline observe the
    cancellation.  [timed] (profiling) additionally clocks the time
    senders spend blocked on flow control; untimed ports never read the
    clock. *)

val producers : t -> int
val consumers : t -> int
val keep_separate : t -> bool

val send : t -> producer:int -> consumer:int -> Packet.t -> unit
(** Insert a packet, blocking on flow control (a full lane ring) if
    enabled.  After {!shutdown} this becomes a no-op (the packet is
    dropped). *)

val receive : t -> consumer:int -> Packet.t option
(** Next packet for the consumer, blocking until one arrives.  Polls the
    consumer's producer lanes round-robin.  In keep-separate mode use
    {!receive_from}.  [None] after {!shutdown} once the lanes are
    drained. *)

val receive_from : t -> producer:int -> consumer:int -> Packet.t option
(** Next packet from one specific producer — the "third argument to
    next-exchange" that merge networks need. *)

val try_receive : t -> consumer:int -> Packet.t option
(** Non-blocking variant; [None] when all lanes are momentarily empty
    (used by the no-fork interchange variant). *)

val shutdown : t -> unit
(** Early termination: wake all blocked senders and receivers; subsequent
    sends are dropped and receives return [None] once drained. *)

val poison : t -> exn -> unit
(** {!shutdown}, additionally recording the exception that killed the
    stream.  The first poisoning wins; consumers that drain the port learn
    the cause from {!failure} and re-raise it as
    {!Exchange.Query_failed}. *)

val failure : t -> exn option
(** The recorded failure, if the port was poisoned. *)

val is_shut_down : t -> bool

(** {2 Packet recycling}

    Each lane carries a pool that recycles drained packets from the
    consumer back to its producer, so steady-state transfer reuses the
    same few record arrays instead of allocating one per packet. *)

val alloc : t -> producer:int -> consumer:int -> capacity:int -> Packet.t
(** A packet for [producer] to fill and {!send} towards [consumer] —
    recycled when the lane's pool has one, fresh otherwise.  Producer
    side only. *)

val recycle : t -> consumer:int -> Packet.t -> unit
(** Return a fully drained packet to its lane's pool.  The caller must
    not touch the packet afterwards: the producer may refill it
    immediately.  Consumer side only; packets from foreign ports are
    ignored safely only if their producer rank is out of range, so only
    recycle packets received from this port. *)

(** {2 Instrumentation} *)

val packets_sent : t -> int

val packets_received : t -> int
(** Packets delivered to consumers.  After a full drain of a healthy
    stream this equals {!packets_sent}; the difference is packets still
    queued (or dropped by a shutdown). *)

val records_sent : t -> int

val max_depth : t -> int
(** Highest number of packets ever queued at once in any single lane —
    the observable effect of flow-control slack (ablation A1).  Bounded
    by [flow_slack] when flow control is on. *)

val packets_sent_by : t -> int array
(** Packets sent per producer rank — the skew view of {!packets_sent}. *)

val flow_stalls : t -> int
(** Sends that found their lane ring full and had to wait. *)

val flow_stall_s : t -> float
(** Total sender time spent blocked on flow control.  Only accumulated on
    [timed] ports; 0 otherwise. *)

val pool_allocated : t -> int
(** Fresh packets created by {!alloc} across all lanes. *)

val pool_reused : t -> int
(** {!alloc} calls served from a lane pool's free ring. *)

val pool_recycled : t -> int
(** Packets accepted back into a lane pool by {!recycle}. *)

(** {2 Transport abstraction}

    A {e transport source} is one producer's packet stream viewed from the
    consumer side, independent of what carries it: the in-memory SPSC lane
    ({!Transport.of_port}) and the socket lane of [Volcano_net] are the two
    implementations.  Remote exchange consumes sources only, so EOS,
    failure, and cancellation flow identically whether the producer shares
    the address space or a machine boundary. *)
module Transport : sig
  exception Remote_failure of { site : string; message : string }
  (** A producer-side failure that crossed a serialization boundary: the
      original exception cannot be shipped, so the wire carries its fault
      [site] and rendered [message].  [Exchange.as_query_failed] maps this
      to the same [Query_failed] a local producer's death produces. *)

  type event =
    | Data of Packet.t  (** a packet; ownership passes to the consumer *)
    | Routed of int * Packet.t
        (** a packet pinned to consumer [dest] by a repartitioning remote
            producer; a merge edge never emits this *)
    | Eos  (** clean end of this producer's stream *)
    | Failed of exn  (** the producer died; the stream is truncated *)

  type source = {
    pull : alloc:(capacity:int -> Packet.t) -> event;
        (** Block until the next event.  [alloc] lets the transport fill a
            recycled packet shell instead of allocating (wire transports
            deserialize into it; the in-memory lane ignores it).  After
            [Eos] or [Failed], further pulls return the same event. *)
    cancel : unit -> unit;
        (** Consumer-initiated early termination (idempotent, non-blocking
            best effort): stop the producer and release its resources. *)
    join : unit -> unit;
        (** Wait for the transport's resources (worker process, socket) to
            be fully released.  Call after [cancel] or a terminal event. *)
  }

  val of_port : t -> producer:int -> consumer:int -> source
  (** One lane of an in-memory port as a transport source. *)
end
