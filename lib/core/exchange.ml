module Sema = Volcano_util.Sema
module Support = Volcano_tuple.Support

type partition_spec =
  | Round_robin
  | Hash_on of int list
  | Range_on of int * Volcano_tuple.Value.t array
  | Custom of Support.Partition.t
  | Broadcast

type fork_mode = Fork_tree | Fork_central

type config = {
  degree : int;
  packet_size : int;
  flow_slack : int option;
  partition : partition_spec;
  fork_mode : fork_mode;
}

let config ?(degree = 1) ?(packet_size = Packet.default_capacity)
    ?(flow_slack = Some 4) ?(partition = Round_robin) ?(fork_mode = Fork_tree)
    () =
  if degree < 1 then invalid_arg "Exchange.config: degree must be positive";
  if packet_size < 1 || packet_size > Packet.max_capacity then
    invalid_arg "Exchange.config: packet size must be in [1, 255]";
  (match flow_slack with
  | Some slack when slack < 1 ->
      invalid_arg "Exchange.config: flow-control slack must be positive"
  | Some _ | None -> ());
  { degree; packet_size; flow_slack; partition; fork_mode }

let id_counter = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add id_counter 1

let spawn_counter = Atomic.make 0
let domains_spawned () = Atomic.get spawn_counter

let instantiate_partition spec ~consumers =
  match spec with
  | Round_robin -> Support.Partition.round_robin ~consumers ()
  | Hash_on cols -> Support.Partition.hash ~consumers ~on:cols ()
  | Range_on (col, bounds) ->
      Support.Partition.range ~consumers ~on:col ~bounds ()
  | Custom factory ->
      let f = factory () in
      fun tuple -> ((f tuple mod consumers) + consumers) mod consumers
  | Broadcast -> fun _ -> 0 (* not used; producers replicate explicitly *)

(* ------------------------------------------------------------------ *)
(* Producer side                                                       *)

(* The producer half of exchange: "the driver for the query tree below the
   exchange operator" (section 4.1).  Runs in a forked domain. *)
let run_producer_inner cfg port close_allowed group input =
  let rank = Group.rank group in
  let iter = input group in
  Iterator.open_ iter;
  let consumers = Port.consumers port in
  let fresh () = Packet.create ~capacity:cfg.packet_size ~producer:rank in
  let packets = Array.init consumers (fun _ -> fresh ()) in
  let flush consumer ~eos =
    let packet = packets.(consumer) in
    if eos then Packet.tag_end_of_stream packet;
    if eos || not (Packet.is_empty packet) then
      Port.send port ~producer:rank ~consumer packet;
    packets.(consumer) <- fresh ()
  in
  let deliver consumer tuple =
    Packet.add packets.(consumer) tuple;
    if Packet.is_full packets.(consumer) then flush consumer ~eos:false
  in
  let partition = instantiate_partition cfg.partition ~consumers in
  let rec drive () =
    if Port.is_shut_down port then ()
    else
      match Iterator.next iter with
      | None -> ()
      | Some tuple ->
          (match cfg.partition with
          | Broadcast ->
              (* Replicate to all consumers.  Tuples are immutable and
                 shared by reference — the analogue of pinning the record
                 once per consumer rather than copying it (section 4.4). *)
              for consumer = 0 to consumers - 1 do
                deliver consumer tuple
              done
          | Round_robin | Hash_on _ | Range_on _ | Custom _ ->
              deliver (partition tuple) tuple);
          drive ()
  in
  drive ();
  (* Flag the last packet to every consumer with the end-of-stream tag. *)
  if not (Port.is_shut_down port) then
    for consumer = 0 to consumers - 1 do
      flush consumer ~eos:true
    done;
  (* "waits until the consumer allows closing all open files" — records may
     still be in flight or pinned by consumers (section 4.1). *)
  Sema.acquire close_allowed;
  Iterator.close iter

(* A producer that dies must not hang the query: shut the port down so
   consumers drain and finish, and let the exception surface when the
   master joins the producer domains at close. *)
let run_producer cfg port close_allowed group input =
  try run_producer_inner cfg port close_allowed group input
  with exn ->
    Port.shutdown port;
    raise exn

(* children_of r: ranks this producer forks in the propagation-tree scheme
   (section 4.2): in round k the processes with rank < 2^k fork rank + 2^k. *)
let children_of rank size =
  let rec collect k acc =
    let stride = 1 lsl k in
    if rank + stride >= size then List.rev acc
    else if stride > rank then collect (k + 1) ((rank + stride) :: acc)
    else collect (k + 1) acc
  in
  collect 0 []

module For_testing = struct
  let children_of = children_of
end

(* Fork the producer group; returns a function that joins all of it. *)
let spawn_producers cfg port close_allowed input =
  let shared = Group.make_shared ~size:cfg.degree in
  let run rank =
    run_producer cfg port close_allowed (Group.attach shared ~rank) input
  in
  match cfg.fork_mode with
  | Fork_central ->
      let domains =
        List.init cfg.degree (fun rank ->
            Atomic.incr spawn_counter;
            Domain.spawn (fun () -> run rank))
      in
      fun () -> List.iter Domain.join domains
  | Fork_tree ->
      let rec subtree rank () =
        let spawned =
          List.map
            (fun child ->
              Atomic.incr spawn_counter;
              Domain.spawn (subtree child))
            (children_of rank cfg.degree)
        in
        run rank;
        List.iter Domain.join spawned
      in
      Atomic.incr spawn_counter;
      let root = Domain.spawn (subtree 0) in
      fun () -> Domain.join root

(* ------------------------------------------------------------------ *)
(* Consumer side                                                       *)

type consumer_state = {
  port : Port.t;
  close_allowed : Sema.t;
  joiner : (unit -> unit) option; (* master only *)
  mutable current : Packet.t option;
  mutable pos : int;
  mutable eos_tags : int;
  mutable finished : bool;
}

let setup_consumer ?(keep_separate = false) cfg ~id ~group ~input =
  if Group.is_master group then begin
    let port =
      Port.create ~producers:cfg.degree ~consumers:(Group.size group)
        ?flow_slack:cfg.flow_slack ~keep_separate ()
    in
    let close_allowed = Sema.create 0 in
    let joiner = spawn_producers cfg port close_allowed input in
    Group.publish_port group ~key:id port;
    (* The semaphore rides along for non-master members (unused by them). *)
    (port, close_allowed, Some joiner)
  end
  else
    let port = Group.lookup_port group ~key:id in
    (port, Sema.create 0, None)

let teardown_consumer cfg ~group state =
  if Group.is_master group then begin
    if not state.finished then
      (* Early close: cancel the producers before permitting shutdown. *)
      Port.shutdown state.port;
    Sema.release_n state.close_allowed cfg.degree;
    match state.joiner with Some join -> join () | None -> ()
  end

let consume_packets state ~receive =
  let rec step () =
    match state.current with
    | Some packet when state.pos < Packet.length packet ->
        let tuple = Packet.get packet state.pos in
        state.pos <- state.pos + 1;
        Some tuple
    | Some packet ->
        if Packet.end_of_stream packet then
          state.eos_tags <- state.eos_tags + 1;
        state.current <- None;
        step ()
    | None ->
        if state.finished then None
        else if state.eos_tags >= Port.producers state.port then begin
          state.finished <- true;
          None
        end
        else (
          match receive () with
          | Some packet ->
              state.current <- Some packet;
              state.pos <- 0;
              step ()
          | None ->
              (* Port shut down. *)
              state.finished <- true;
              None)
  in
  step ()

let iterator ?id cfg ~group ~input =
  let id = match id with Some i -> i | None -> fresh_id () in
  let state = ref None in
  let get_state () =
    match !state with
    | Some s -> s
    | None -> invalid_arg "Exchange.iterator: not open"
  in
  Iterator.make
    ~open_:(fun () ->
      let port, close_allowed, joiner = setup_consumer cfg ~id ~group ~input in
      state :=
        Some
          { port; close_allowed; joiner; current = None; pos = 0; eos_tags = 0; finished = false })
    ~next:(fun () ->
      let s = get_state () in
      consume_packets s ~receive:(fun () ->
          Port.receive s.port ~consumer:(Group.rank group)))
    ~close:(fun () ->
      let s = get_state () in
      teardown_consumer cfg ~group s;
      state := None)

(* Keep-separate variant: one stream per producer, so that "the merge
   iterator [can] distinguish the input records by their producer"
   (section 4.4).  The streams share setup and teardown via refcounts. *)
let producer_streams ?id cfg ~group ~input =
  let id = match id with Some i -> i | None -> fresh_id () in
  let shared = ref None in
  let open_count = ref 0 in
  let close_count = ref 0 in
  let lock = Mutex.create () in
  let ensure_open () =
    Mutex.lock lock;
    if !open_count = 0 then begin
      let port, close_allowed, joiner =
        setup_consumer ~keep_separate:true cfg ~id ~group ~input
      in
      shared := Some (port, close_allowed, joiner)
    end;
    incr open_count;
    Mutex.unlock lock
  in
  let all_finished = Array.make cfg.degree false in
  let release () =
    Mutex.lock lock;
    incr close_count;
    let last = !close_count = cfg.degree in
    Mutex.unlock lock;
    if last then
      match !shared with
      | Some (port, close_allowed, joiner) ->
          if Array.exists not all_finished then Port.shutdown port;
          Sema.release_n close_allowed cfg.degree;
          (match joiner with Some join -> join () | None -> ());
          shared := None
      | None -> ()
  in
  Array.init cfg.degree (fun producer ->
      let stream_state = ref None in
      Iterator.make
        ~open_:(fun () ->
          ensure_open ();
          let port, close_allowed, _ =
            match !shared with Some s -> s | None -> assert false
          in
          stream_state :=
            Some
              {
                port;
                close_allowed;
                joiner = None;
                current = None;
                pos = 0;
                eos_tags = 0;
                finished = false;
              })
        ~next:(fun () ->
          match !stream_state with
          | None -> invalid_arg "Exchange.producer_streams: not open"
          | Some s ->
              (* Exactly one end-of-stream tag arrives on this queue. *)
              let result =
                let rec step () =
                  match s.current with
                  | Some packet when s.pos < Packet.length packet ->
                      let tuple = Packet.get packet s.pos in
                      s.pos <- s.pos + 1;
                      Some tuple
                  | Some packet ->
                      if Packet.end_of_stream packet then s.finished <- true;
                      s.current <- None;
                      if s.finished then None else step ()
                  | None ->
                      if s.finished then None
                      else (
                        match
                          Port.receive_from s.port ~producer
                            ~consumer:(Group.rank group)
                        with
                        | Some packet ->
                            s.current <- Some packet;
                            s.pos <- 0;
                            step ()
                        | None ->
                            s.finished <- true;
                            None)
                in
                step ()
              in
              if result = None then all_finished.(producer) <- true;
              result)
        ~close:(fun () ->
          (match !stream_state with
          | Some s -> if s.finished then all_finished.(producer) <- true
          | None -> ());
          stream_state := None;
          release ()))

(* ------------------------------------------------------------------ *)
(* No-fork interchange (section 4.4)                                   *)

let interchange ?id cfg ~group ~input =
  let id = match id with Some i -> i | None -> fresh_id () in
  let rank = Group.rank group in
  let size = Group.size group in
  let state = ref None in
  let input_done = ref false in
  let packets = ref [||] in
  let partition = ref (fun _ -> 0) in
  Iterator.make
    ~open_:(fun () ->
      let port =
        if Group.is_master group then begin
          (* Flow control is pointless here: a process produces only when
             it has nothing to consume. *)
          let port =
            Port.create ~producers:size ~consumers:size ~keep_separate:false ()
          in
          Group.publish_port group ~key:id port;
          port
        end
        else Group.lookup_port group ~key:id
      in
      Iterator.open_ input;
      input_done := false;
      packets :=
        Array.init size (fun _ ->
            Packet.create ~capacity:cfg.packet_size ~producer:rank);
      (partition :=
         match cfg.partition with
         | Broadcast ->
             invalid_arg "Exchange.interchange: broadcast not supported"
         | spec -> instantiate_partition spec ~consumers:size);
      state :=
        Some
          {
            port;
            close_allowed = Sema.create 0;
            joiner = None;
            current = None;
            pos = 0;
            eos_tags = 0;
            finished = false;
          })
    ~next:(fun () ->
      match !state with
      | None -> invalid_arg "Exchange.interchange: not open"
      | Some s ->
          let flush consumer ~eos =
            let packet = !packets.(consumer) in
            if eos then Packet.tag_end_of_stream packet;
            if eos || not (Packet.is_empty packet) then
              Port.send s.port ~producer:rank ~consumer packet;
            !packets.(consumer) <-
              Packet.create ~capacity:cfg.packet_size ~producer:rank
          in
          let rec step () =
            match s.current with
            | Some packet when s.pos < Packet.length packet ->
                let tuple = Packet.get packet s.pos in
                s.pos <- s.pos + 1;
                Some tuple
            | Some packet ->
                if Packet.end_of_stream packet then
                  s.eos_tags <- s.eos_tags + 1;
                s.current <- None;
                step ()
            | None ->
                if s.finished then None
                else if s.eos_tags >= size then begin
                  s.finished <- true;
                  None
                end
                else (
                  (* Prefer packets already queued for this process. *)
                  match Port.try_receive s.port ~consumer:rank with
                  | Some packet ->
                      s.current <- Some packet;
                      s.pos <- 0;
                      step ()
                  | None ->
                      if not !input_done then (
                        (* Run the producer: pull own input, route records,
                           and return as soon as one lands here. *)
                        match Iterator.next input with
                        | Some tuple ->
                            let consumer = !partition tuple in
                            if consumer = rank then Some tuple
                            else begin
                              Packet.add !packets.(consumer) tuple;
                              if Packet.is_full !packets.(consumer) then
                                flush consumer ~eos:false;
                              step ()
                            end
                        | None ->
                            input_done := true;
                            for consumer = 0 to size - 1 do
                              flush consumer ~eos:true
                            done;
                            step ())
                      else (
                        match Port.receive s.port ~consumer:rank with
                        | Some packet ->
                            s.current <- Some packet;
                            s.pos <- 0;
                            step ()
                        | None ->
                            s.finished <- true;
                            None))
          in
          step ())
    ~close:(fun () ->
      (match !state with
      | Some s ->
          if Group.is_master group && not s.finished then Port.shutdown s.port
      | None -> ());
      Iterator.close input;
      state := None)
