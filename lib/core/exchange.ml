module Support = Volcano_tuple.Support
module Injector = Volcano_fault.Injector
module Obs = Volcano_obs.Obs
module Sched = Volcano_sched.Sched

exception Query_failed of { site : string; origin : exn }

let () =
  Printexc.register_printer (function
    | Query_failed { site; origin } ->
        Some
          (Printf.sprintf "Exchange.Query_failed(site %s: %s)" site
             (Printexc.to_string origin))
    | _ -> None)

(* Normalize an exception into the single well-typed failure the consumer
   sees; never wrap twice when the failure crosses nested exchanges. *)
let as_query_failed ~fallback origin =
  match origin with
  | Query_failed _ -> origin
  | Volcano_fault.Injected { site; _ } ->
      Query_failed { site = Volcano_fault.site_name site; origin }
  | Port.Transport.Remote_failure { site; _ } ->
      (* A worker-process failure that crossed the wire: the frame carries
         the original site name, so the consumer reports the same site a
         local producer's death would. *)
      Query_failed { site; origin }
  | origin -> Query_failed { site = fallback; origin }

(* ------------------------------------------------------------------ *)
(* Cancellation scopes                                                  *)

(* A scope collects the ports created below one exchange.  The exchange's
   own port cancels its scope on shutdown, so cancellation (early close or
   a poisoned port) propagates down the whole subtree: without this, a
   producer blocked in a descendant port's receive or flow-control
   semaphore would never observe that its output port was shut. *)
module Scope = struct
  type t = {
    lock : Mutex.t;
    mutable fired : bool;
    mutable reason : exn option; (* Some: poisoned, not merely cancelled *)
    mutable ports : Port.t list;
  }

  let create () =
    { lock = Mutex.create (); fired = false; reason = None; ports = [] }

  let register t port =
    Mutex.lock t.lock;
    let already = if t.fired then Some t.reason else None in
    (match already with None -> t.ports <- port :: t.ports | Some _ -> ());
    Mutex.unlock t.lock;
    (* Born cancelled: the subtree is already being torn down. *)
    match already with
    | Some (Some exn) -> Port.poison port exn
    | Some None -> Port.shutdown port
    | None -> ()

  let fire t reason =
    Mutex.lock t.lock;
    let ports = if t.fired then [] else t.ports in
    t.fired <- true;
    if Option.is_none t.reason then t.reason <- reason;
    t.ports <- [];
    Mutex.unlock t.lock;
    (* Each shutdown chains into that port's own scope via its
       [on_shutdown] hook, cancelling the tree recursively. *)
    match reason with
    | None -> List.iter Port.shutdown ports
    | Some exn -> List.iter (fun port -> Port.poison port exn) ports

  let cancel t = fire t None

  (* Poison, not shutdown: a plain shutdown ends the streams quietly
     (drain-then-None), which for a runtime-initiated cancellation would
     let the query "succeed" truncated.  Poisoning records the reason so
     the consumer's next raises [Query_failed] instead. *)
  let poison t exn = fire t (Some exn)

  let cancelled t =
    Mutex.lock t.lock;
    let fired = t.fired in
    Mutex.unlock t.lock;
    fired
end

type partition_spec =
  | Round_robin
  | Hash_on of int list
  | Range_on of int * Volcano_tuple.Value.t array
  | Custom of Support.Partition.t
  | Broadcast

type fork_mode = Fork_tree | Fork_central

type config = {
  degree : int;
  packet_size : int;
  flow_slack : int option;
  partition : partition_spec;
  fork_mode : fork_mode;
}

(* The one validation path, shared by the smart constructor below and by
   planlint's exchange pass: a diagnosis is a (code, message) pair whose
   code matches the analyzer's diagnostic codes. *)
let validate ~degree ~packet_size ~flow_slack =
  let problems = ref [] in
  let problem code msg = problems := (code, msg) :: !problems in
  if degree < 1 then problem "exchange-degree" "degree must be positive";
  if packet_size < 1 || packet_size > Packet.max_capacity then
    problem "exchange-packet-size"
      (Printf.sprintf "packet size must be in [1, %d]" Packet.max_capacity);
  (match flow_slack with
  | Some slack when slack < 1 ->
      problem "exchange-flow-slack" "flow-control slack must be positive"
  | Some _ | None -> ());
  List.rev !problems

let config ?(degree = 1) ?(packet_size = Packet.default_capacity)
    ?(flow_slack = Some 4) ?(partition = Round_robin) ?(fork_mode = Fork_tree)
    () =
  match validate ~degree ~packet_size ~flow_slack with
  | [] -> { degree; packet_size; flow_slack; partition; fork_mode }
  | (_, msg) :: _ -> invalid_arg ("Exchange.config: " ^ msg)

let id_counter = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add id_counter 1
let spawn_counter = Atomic.make 0
let join_counter = Atomic.make 0
let live_counter = Atomic.make 0
let domains_spawned () = Atomic.get spawn_counter
let domains_joined () = Atomic.get join_counter
let live_domains () = Atomic.get live_counter
let unjoined_domains () = domains_spawned () - domains_joined ()

(* Producers are scheduler tasks, not dedicated domains: the counters keep
   their historical names but count tasks submitted to [sched].  Under a
   pool scheduler many tasks share a few worker domains; under
   [Sched.dedicated] each task still gets its own domain. *)
let spawn_task sched body =
  Atomic.incr spawn_counter;
  Atomic.incr live_counter;
  Sched.fork sched (fun () ->
      Fun.protect ~finally:(fun () -> Atomic.decr live_counter) body)

(* Await, absorbing the task's exception: producer failures reach the
   consumer through port poisoning, never through join — a raising join
   would abort teardown half-way and leak the remaining tasks. *)
let join_quiet task =
  ignore (Sched.await task : (unit, exn) result);
  Atomic.incr join_counter

(* Remote-exchange feeders are dedicated raw domains, not scheduler
   tasks: each spends its life blocked in transport pulls (socket reads),
   which must never occupy a pool worker.  They are counted in the same
   spawn/join ledger as producer tasks so the chaos harness's zero-diff
   teardown assertion covers them too. *)
let spawn_domain body =
  Atomic.incr spawn_counter;
  Atomic.incr live_counter;
  Domain.spawn (fun () ->
      Fun.protect ~finally:(fun () -> Atomic.decr live_counter) body)

let join_domain_quiet domain =
  (try Domain.join domain with _ -> ());
  Atomic.incr join_counter

let instantiate_partition spec ~consumers =
  match spec with
  | Round_robin -> Support.Partition.round_robin ~consumers ()
  | Hash_on cols -> Support.Partition.hash ~consumers ~on:cols ()
  | Range_on (col, bounds) ->
      Support.Partition.range ~consumers ~on:col ~bounds ()
  | Custom factory ->
      let f = factory () in
      fun tuple -> ((f tuple mod consumers) + consumers) mod consumers
  | Broadcast -> fun _ -> 0 (* not used; producers replicate explicitly *)

(* ------------------------------------------------------------------ *)
(* Producer side                                                       *)

(* What a producer drives: the subtree below the exchange, compiled either
   to a record iterator or — when the whole subtree fused into a batch
   pipeline — to a batch iterator whose packets the producer drains into
   port packets in a tight loop, with no per-record closure hop. *)
type producer_source = Record_source of Iterator.t | Batch_source of Batch.t

(* The producer half of exchange: "the driver for the query tree below the
   exchange operator" (section 4.1).  Runs in a forked domain.
   [closer_slot] exposes the subtree to the failure handler so it can be
   closed (and its buffer fixes released) when the producer dies
   mid-stream. *)
let run_producer_inner cfg faults port close_allowed group closer_slot input =
  let rank = Group.rank group in
  let source = input group in
  let consumers = Port.consumers port in
  (* Packets come from the lane pool: in steady state each refill reuses
     an array the consumer drained and recycled moments ago. *)
  let fresh consumer =
    Port.alloc port ~producer:rank ~consumer ~capacity:cfg.packet_size
  in
  let packets = Array.init consumers fresh in
  let flush consumer ~eos =
    let packet = packets.(consumer) in
    if eos then Packet.tag_end_of_stream packet;
    if eos || not (Packet.is_empty packet) then
      Port.send port ~producer:rank ~consumer packet;
    (* The end-of-stream flush is the last touch of this slot; skipping
       its refill keeps the pool ledger exact (allocations + reuses =
       packets sent on a full drain). *)
    if not eos then packets.(consumer) <- fresh consumer
  in
  let deliver consumer tuple =
    let packet = packets.(consumer) in
    Packet.add packet tuple;
    if Packet.is_full packet then flush consumer ~eos:false
  in
  let partition = instantiate_partition cfg.partition ~consumers in
  (* Hoisted: the injector does nothing without rules, and this check
     runs once per record. *)
  let faults_live = not (Injector.is_none faults) in
  (match source with
  | Record_source iter ->
      closer_slot := Some (fun () -> Iterator.close iter);
      Iterator.open_ iter;
      let rec drive () =
        if Port.is_shut_down port then ()
        else
          match Iterator.next iter with
          | None -> ()
          | Some tuple ->
              if faults_live then
                Injector.hit faults (Volcano_fault.Producer rank);
              (match cfg.partition with
              | Broadcast ->
                  (* Replicate to all consumers.  Tuples are immutable and
                     shared by reference — the analogue of pinning the
                     record once per consumer rather than copying it
                     (section 4.4). *)
                  for consumer = 0 to consumers - 1 do
                    deliver consumer tuple
                  done
              | Round_robin | Hash_on _ | Range_on _ | Custom _ ->
                  deliver (partition tuple) tuple);
              drive ()
      in
      drive ()
  | Batch_source batches ->
      closer_slot := Some (fun () -> Batch.close batches);
      Batch.open_ batches;
      (* The batch drive loop: one [Batch.next] per packet of records,
         then a tight for-loop routing records into port packets — the
         per-record [Iterator.next] closure hop is gone.  The shutdown
         check runs per batch (at most one batch of records is routed
         into dropped sends after a shutdown). *)
      let rec drive () =
        if Port.is_shut_down port then ()
        else
          match Batch.next batches with
          | None -> ()
          | Some batch ->
              let n = Packet.length batch in
              (match cfg.partition with
              | Broadcast ->
                  for i = 0 to n - 1 do
                    if faults_live then
                      Injector.hit faults (Volcano_fault.Producer rank);
                    let tuple = Packet.get batch i in
                    for consumer = 0 to consumers - 1 do
                      deliver consumer tuple
                    done
                  done
              | Round_robin | Hash_on _ | Range_on _ | Custom _ ->
                  for i = 0 to n - 1 do
                    if faults_live then
                      Injector.hit faults (Volcano_fault.Producer rank);
                    let tuple = Packet.get batch i in
                    deliver (partition tuple) tuple
                  done);
              drive ()
      in
      drive ());
  (* Flag the last packet to every consumer with the end-of-stream tag. *)
  if not (Port.is_shut_down port) then
    for consumer = 0 to consumers - 1 do
      flush consumer ~eos:true
    done;
  (* "waits until the consumer allows closing all open files" — records may
     still be in flight or pinned by consumers (section 4.1).  The gate is
     a broadcast event: waiting suspends a pooled producer instead of
     occupying its worker domain. *)
  Sched.Event.wait close_allowed;
  closer_slot := None;
  match source with
  | Record_source iter -> Iterator.close iter
  | Batch_source batches -> Batch.close batches

(* A producer that dies must not hang or silently truncate the query:
   poison the port — recording the cause, waking blocked consumers
   immediately and cancelling sibling producers and descendant ports via
   the shutdown chain — then close the subtree to release its resources.
   The consumer re-raises the cause from its [next] as [Query_failed]. *)
let run_producer cfg faults port close_allowed group input =
  let closer_slot = ref None in
  try
    (* Fires at the very start of the scheduled task, before the subtree
       even opens — a failure here must still poison the port. *)
    Injector.hit faults Volcano_fault.Sched_task;
    run_producer_inner cfg faults port close_allowed group closer_slot input
  with exn ->
    Port.poison port exn;
    (* Siblings may be blocked in [Group.lookup_port] for a nested port
       this rank was about to publish (its open died first); nothing else
       would ever wake them.  Poison first so the consumer reports the
       original failure, not the siblings' [Group.Cancelled]. *)
    Group.cancel group;
    (match !closer_slot with
    | Some close_subtree -> ( try close_subtree () with _ -> ())
    | None -> ());
    raise exn

(* children_of r: ranks this producer forks in the propagation-tree scheme
   (section 4.2): in round k the processes with rank < 2^k fork rank + 2^k. *)
let children_of rank size =
  let rec collect k acc =
    let stride = 1 lsl k in
    if rank + stride >= size then List.rev acc
    else if stride > rank then collect (k + 1) ((rank + stride) :: acc)
    else collect (k + 1) acc
  in
  collect 0 []

module For_testing = struct
  let children_of = children_of
end

(* Fork the producer group as scheduler tasks; returns a function that
   joins all of it.  The joiner awaits every task and never raises: a
   failed producer already reported through the poisoned port. *)
let spawn_producers sched cfg faults port close_allowed input =
  let shared = Group.make_shared ~size:cfg.degree in
  let run rank =
    run_producer cfg faults port close_allowed (Group.attach shared ~rank) input
  in
  match cfg.fork_mode with
  | Fork_central ->
      let tasks =
        List.init cfg.degree (fun rank ->
            spawn_task sched (fun () -> run rank))
      in
      fun () -> List.iter join_quiet tasks
  | Fork_tree ->
      let rec subtree rank () =
        let spawned =
          List.map
            (fun child -> spawn_task sched (subtree child))
            (children_of rank cfg.degree)
        in
        (* Join the forked children even when this rank dies, or their
           tasks would leak on a mid-tree failure. *)
        Fun.protect
          ~finally:(fun () -> List.iter join_quiet spawned)
          (fun () -> run rank)
      in
      let root = spawn_task sched (subtree 0) in
      fun () -> join_quiet root

(* ------------------------------------------------------------------ *)
(* Consumer side                                                       *)

type consumer_state = {
  port : Port.t;
  close_allowed : Sched.Event.t;
  joiner : (unit -> unit) option; (* master only *)
  recv : unit -> Packet.t option;
  (* receive and recycle are built once at open: [next] runs per record
     and must not allocate fresh closures on every call *)
  recy : Packet.t -> unit;
  mutable current : Packet.t option;
  mutable pos : int;
  mutable eos_tags : int;
  mutable finished : bool;
}

let setup_consumer ?(keep_separate = false) ?(faults = Injector.none)
    ?parent_scope ?scope ?obs ~sched cfg ~id ~group ~input =
  if Group.is_master group then begin
    let on_shutdown =
      match scope with Some s -> fun () -> Scope.cancel s | None -> fun () -> ()
    in
    let port =
      Port.create ~producers:cfg.degree ~consumers:(Group.size group)
        ?flow_slack:cfg.flow_slack ~keep_separate ~faults ~on_shutdown
        ~timed:(Option.is_some obs) ()
    in
    (match parent_scope with Some s -> Scope.register s port | None -> ());
    let close_allowed = Sched.Event.create () in
    let spawn_t0 = if Option.is_some obs then Obs.now () else 0.0 in
    let joiner = spawn_producers sched cfg faults port close_allowed input in
    let joiner =
      match obs with
      | None -> joiner
      | Some (sink, node) ->
          let spawn_s = Obs.now () -. spawn_t0 in
          let join_s = ref 0.0 in
          Obs.register_exchange sink ~node ~sample:(fun () ->
              {
                Obs.packets_sent = Port.packets_sent port;
                packets_received = Port.packets_received port;
                records = Port.records_sent port;
                max_queue_depth = Port.max_depth port;
                flow_waits = Port.flow_stalls port;
                flow_wait_s = Port.flow_stall_s port;
                per_producer = Port.packets_sent_by port;
                pool_allocated = Port.pool_allocated port;
                pool_reused = Port.pool_reused port;
                pool_recycled = Port.pool_recycled port;
                spawn_s;
                join_s = !join_s;
                domains = cfg.degree;
              });
          fun () ->
            let t0 = Obs.now () in
            joiner ();
            join_s := !join_s +. (Obs.now () -. t0)
    in
    Group.publish_port group ~key:id port;
    (* The event rides along for non-master members (unused by them). *)
    (port, close_allowed, Some joiner)
  end
  else
    let port = Group.lookup_port group ~key:id in
    (port, Sched.Event.create (), None)

let teardown_consumer ~group state =
  if Group.is_master group then begin
    (* Early close: cancel the producers.  The shutdown releases any
       flow-control slack they are blocked on and (via the shutdown chain)
       cancels every descendant port — a producer stuck in a deeper
       receive must observe the cancellation too.  After a normal
       end-of-stream the port must NOT be shut: sibling consumers may
       still be draining their queues, and producers stop sending the
       moment they see the port down. *)
    if not state.finished then Port.shutdown state.port;
    Sched.Event.fire state.close_allowed;
    match state.joiner with Some join -> join () | None -> ()
  end

let consume_packets state =
  let rec step () =
    match state.current with
    | Some packet when state.pos < Packet.length packet ->
        let tuple = Packet.get packet state.pos in
        state.pos <- state.pos + 1;
        Some tuple
    | Some packet ->
        if Packet.end_of_stream packet then
          state.eos_tags <- state.eos_tags + 1;
        state.current <- None;
        (* Drained: hand the packet back to its lane's pool.  All tuples
           were already yielded by reference, so only the array shell is
           reused. *)
        state.recy packet;
        step ()
    | None ->
        if state.finished then None
        else if state.eos_tags >= Port.producers state.port then begin
          state.finished <- true;
          None
        end
        else (
          match state.recv () with
          | Some packet ->
              state.current <- Some packet;
              state.pos <- 0;
              step ()
          | None ->
              (* Port shut down: either cancellation (stream just ends) or
                 a poisoned port — then the producer's failure surfaces
                 here, as a single well-typed exception. *)
              state.finished <- true;
              (match Port.failure state.port with
              | Some origin ->
                  raise (as_query_failed ~fallback:"producer" origin)
              | None -> None))
  in
  step ()

let source_iterator ?id ?(faults = Injector.none) ?parent_scope ?scope ?obs
    ?sched cfg ~group ~input =
  let id = match id with Some i -> i | None -> fresh_id () in
  let sched = match sched with Some s -> s | None -> Sched.default () in
  let state = ref None in
  let get_state () =
    match !state with
    | Some s -> s
    | None -> invalid_arg "Exchange.iterator: not open"
  in
  Iterator.make
    ~open_:(fun () ->
      let port, close_allowed, joiner =
        setup_consumer ~faults ?parent_scope ?scope ?obs ~sched cfg ~id ~group
          ~input
      in
      let consumer = Group.rank group in
      state :=
        Some
          {
            port;
            close_allowed;
            joiner;
            recv = (fun () -> Port.receive port ~consumer);
            recy = Port.recycle port ~consumer;
            current = None;
            pos = 0;
            eos_tags = 0;
            finished = false;
          })
    ~next:(fun () ->
      let s = get_state () in
      match consume_packets s with
      | result -> result
      | exception exn ->
          (* A consumer-side failure (e.g. an injected receive fault) must
             also cancel the producers, not leave them pumping. *)
          s.finished <- true;
          Port.poison s.port exn;
          raise (as_query_failed ~fallback:"consumer" exn))
    ~close:(fun () ->
      (* Tolerate a close without a successful open: failing operators
         close their inputs best-effort while unwinding, and an exchange
         that never opened has nothing to tear down. *)
      match !state with
      | None -> ()
      | Some s ->
          teardown_consumer ~group s;
          state := None)

let iterator ?id ?faults ?parent_scope ?scope ?obs ?sched cfg ~group ~input =
  source_iterator ?id ?faults ?parent_scope ?scope ?obs ?sched cfg ~group
    ~input:(fun producer_group -> Record_source (input producer_group))

(* ------------------------------------------------------------------ *)
(* Remote exchange: producers behind transport sources                  *)

(* The consumer half of exchange when the producer group lives behind
   {!Port.Transport.source}s — worker processes on the far side of a
   socket, or any other carrier.  The local port stays the flow-control
   and failure rendezvous: one feeder domain per source pumps pulled
   packets into it, so [next], EOS counting, poisoning, and the shutdown
   chain are exactly the shared-memory code paths.  Backpressure is
   end-to-end for free: a full lane ring blocks the feeder's send, the
   feeder stops pulling, and the kernel socket buffer pushes back on the
   worker's writes. *)
let remote_iterator ?id ?(faults = Injector.none) ?parent_scope ?scope ?obs cfg
    ~group ~connect =
  let id = match id with Some i -> i | None -> fresh_id () in
  let state = ref None in
  Iterator.make
    ~open_:(fun () ->
      let port, close_allowed, joiner =
        if Group.is_master group then begin
          let sources =
            (* A refused connection is the same single error a producer
               dying at fork time is. *)
            try (connect () : Port.Transport.source array)
            with exn -> raise (as_query_failed ~fallback:"net-connect" exn)
          in
          let producers = Array.length sources in
          if producers = 0 then
            invalid_arg "Exchange.remote_iterator: connect returned no sources";
          let consumers = Group.size group in
          let cancel_sources () =
            Array.iter
              (fun (s : Port.Transport.source) -> try s.cancel () with _ -> ())
              sources
          in
          let on_shutdown () =
            (* Cancellation chaining across the machine boundary: shutting
               this port must stop the remote producers (best-effort cancel
               frames + closed sockets) exactly as it cancels local
               descendant ports. *)
            cancel_sources ();
            match scope with Some s -> Scope.cancel s | None -> ()
          in
          let port =
            Port.create ~producers ~consumers ?flow_slack:cfg.flow_slack
              ~faults ~on_shutdown ~timed:(Option.is_some obs) ()
          in
          (match parent_scope with Some s -> Scope.register s port | None -> ());
          let spawn_t0 = if Option.is_some obs then Obs.now () else 0.0 in
          let feeders =
            Array.to_list
              (Array.mapi
                 (fun rank (src : Port.Transport.source) ->
                   spawn_domain (fun () ->
                       (* Whole packets round-robin across consumers: the
                          workers already sharded the data, so the wire
                          edge is a merge and any consumer may take any
                          packet. *)
                       let next_consumer = ref 0 in
                       let alloc ~capacity =
                         Port.alloc port ~producer:rank
                           ~consumer:!next_consumer ~capacity
                       in
                       let rec pump () =
                         if not (Port.is_shut_down port) then
                           match src.pull ~alloc with
                           | Port.Transport.Data packet ->
                               let consumer = !next_consumer in
                               next_consumer := (consumer + 1) mod consumers;
                               Port.send port ~producer:rank ~consumer packet;
                               pump ()
                           | Port.Transport.Routed (dest, packet) ->
                               (* A repartitioning edge: the worker already
                                  applied the partition function, so the
                                  packet is pinned to its destination
                                  consumer instead of merged round-robin. *)
                               Port.send port ~producer:rank
                                 ~consumer:(dest mod consumers) packet;
                               pump ()
                           | Port.Transport.Eos ->
                               (* Every consumer counts one EOS tag per
                                  producer, as in the local exchange. *)
                               for consumer = 0 to consumers - 1 do
                                 let packet =
                                   Port.alloc port ~producer:rank ~consumer
                                     ~capacity:1
                                 in
                                 Packet.tag_end_of_stream packet;
                                 Port.send port ~producer:rank ~consumer packet
                               done
                           | Port.Transport.Failed origin ->
                               raise
                                 (as_query_failed
                                    ~fallback:
                                      (Printf.sprintf "net-worker-%d" rank)
                                    origin)
                       in
                       try pump ()
                       with exn ->
                         (* First failure wins; a dropped connection or a
                            shipped worker failure surfaces at the
                            consumer's next as one [Query_failed]. *)
                         Port.poison port exn;
                         try src.cancel () with _ -> ()))
                 sources)
          in
          let joiner () =
            List.iter join_domain_quiet feeders;
            Array.iter
              (fun (s : Port.Transport.source) -> try s.join () with _ -> ())
              sources
          in
          let joiner =
            match obs with
            | None -> joiner
            | Some (sink, node) ->
                let spawn_s = Obs.now () -. spawn_t0 in
                let join_s = ref 0.0 in
                Obs.register_exchange sink ~node ~sample:(fun () ->
                    {
                      Obs.packets_sent = Port.packets_sent port;
                      packets_received = Port.packets_received port;
                      records = Port.records_sent port;
                      max_queue_depth = Port.max_depth port;
                      flow_waits = Port.flow_stalls port;
                      flow_wait_s = Port.flow_stall_s port;
                      per_producer = Port.packets_sent_by port;
                      pool_allocated = Port.pool_allocated port;
                      pool_reused = Port.pool_reused port;
                      pool_recycled = Port.pool_recycled port;
                      spawn_s;
                      join_s = !join_s;
                      domains = producers;
                    });
                fun () ->
                  let t0 = Obs.now () in
                  joiner ();
                  join_s := !join_s +. (Obs.now () -. t0)
          in
          Group.publish_port group ~key:id port;
          (port, Sched.Event.create (), Some joiner)
        end
        else
          let port = Group.lookup_port group ~key:id in
          (port, Sched.Event.create (), None)
      in
      let consumer = Group.rank group in
      state :=
        Some
          {
            port;
            close_allowed;
            joiner;
            recv = (fun () -> Port.receive port ~consumer);
            recy = Port.recycle port ~consumer;
            current = None;
            pos = 0;
            eos_tags = 0;
            finished = false;
          })
    ~next:(fun () ->
      let s =
        match !state with
        | Some s -> s
        | None -> invalid_arg "Exchange.remote_iterator: not open"
      in
      match consume_packets s with
      | result -> result
      | exception exn ->
          s.finished <- true;
          Port.poison s.port exn;
          raise (as_query_failed ~fallback:"consumer" exn))
    ~close:(fun () ->
      match !state with
      | None -> ()
      | Some s ->
          teardown_consumer ~group s;
          state := None)

(* Keep-separate variant: one stream per producer, so that "the merge
   iterator [can] distinguish the input records by their producer"
   (section 4.4).  The streams share setup and teardown via refcounts. *)
let producer_streams ?id ?(faults = Injector.none) ?parent_scope ?scope ?obs
    ?sched cfg ~group ~input =
  let id = match id with Some i -> i | None -> fresh_id () in
  let sched = match sched with Some s -> s | None -> Sched.default () in
  let shared = ref None in
  let open_count = ref 0 in
  let close_count = ref 0 in
  let lock = Mutex.create () in
  let ready = Sched.Event.create () in
  (* [setup_consumer] can suspend the calling fiber (a non-master rank
     waits for the master's port publication), so it must run OUTSIDE
     [lock]: a suspension would unwind the fiber off its worker with the
     pthread mutex still owned by that worker thread — later lockers
     would deadlock against an idle worker, and the resumed fiber would
     unlock from the wrong thread.  The counter mutex therefore only
     elects the first opener; racers park on [ready] instead.  (In
     practice all [degree] streams are opened by the one consumer fiber
     that merges them, so the wait is never exercised — this is
     belt-and-braces for exotic callers.) *)
  let ensure_open () =
    Mutex.lock lock;
    let first = !open_count = 0 in
    incr open_count;
    Mutex.unlock lock;
    if first then
      Fun.protect
        ~finally:(fun () -> Sched.Event.fire ready)
        (fun () ->
          shared :=
            Some
              (setup_consumer ~keep_separate:true ~faults ?parent_scope ?scope
                 ?obs ~sched cfg ~id ~group
                 ~input:(fun producer_group ->
                   Record_source (input producer_group))))
    else begin
      Sched.Event.wait ready;
      if !shared = None then
        failwith "Exchange.producer_streams: shared setup failed"
    end
  in
  let all_finished = Array.make cfg.degree false in
  let release () =
    Mutex.lock lock;
    incr close_count;
    let last = !close_count = cfg.degree in
    Mutex.unlock lock;
    if last then
      match !shared with
      | Some (port, close_allowed, joiner) ->
          if Array.exists not all_finished then Port.shutdown port;
          Sched.Event.fire close_allowed;
          (match joiner with Some join -> join () | None -> ());
          shared := None
      | None -> ()
  in
  Array.init cfg.degree (fun producer ->
      let stream_state = ref None in
      Iterator.make
        ~open_:(fun () ->
          ensure_open ();
          let port, close_allowed, _ =
            match !shared with Some s -> s | None -> assert false
          in
          let consumer = Group.rank group in
          stream_state :=
            Some
              {
                port;
                close_allowed;
                joiner = None;
                recv =
                  (fun () -> Port.receive_from port ~producer ~consumer);
                recy = Port.recycle port ~consumer;
                current = None;
                pos = 0;
                eos_tags = 0;
                finished = false;
              })
        ~next:(fun () ->
          match !stream_state with
          | None -> invalid_arg "Exchange.producer_streams: not open"
          | Some s ->
              (* Exactly one end-of-stream tag arrives on this queue. *)
              let result =
                let rec step () =
                  match s.current with
                  | Some packet when s.pos < Packet.length packet ->
                      let tuple = Packet.get packet s.pos in
                      s.pos <- s.pos + 1;
                      Some tuple
                  | Some packet ->
                      if Packet.end_of_stream packet then s.finished <- true;
                      s.current <- None;
                      s.recy packet;
                      if s.finished then None else step ()
                  | None ->
                      if s.finished then None
                      else (
                        match s.recv () with
                        | Some packet ->
                            s.current <- Some packet;
                            s.pos <- 0;
                            step ()
                        | None ->
                            s.finished <- true;
                            (match Port.failure s.port with
                            | Some origin ->
                                raise
                                  (as_query_failed ~fallback:"producer" origin)
                            | None -> None))
                in
                step ()
              in
              (match result with
              | None -> all_finished.(producer) <- true
              | Some _ -> ());
              result)
        ~close:(fun () ->
          (match !stream_state with
          | Some s -> if s.finished then all_finished.(producer) <- true
          | None -> ());
          stream_state := None;
          release ()))

(* ------------------------------------------------------------------ *)
(* No-fork interchange (section 4.4)                                   *)

let interchange ?id ?(faults = Injector.none) ?parent_scope ?scope ?obs cfg
    ~group ~input =
  let id = match id with Some i -> i | None -> fresh_id () in
  let rank = Group.rank group in
  let size = Group.size group in
  let state = ref None in
  let input_done = ref false in
  let packets = ref [||] in
  let partition = ref (fun _ -> 0) in
  Iterator.make
    ~open_:(fun () ->
      let port =
        if Group.is_master group then begin
          (* Flow control is pointless here: a process produces only when
             it has nothing to consume. *)
          let on_shutdown =
            match scope with
            | Some s -> fun () -> Scope.cancel s
            | None -> fun () -> ()
          in
          let port =
            Port.create ~producers:size ~consumers:size ~keep_separate:false
              ~faults ~on_shutdown ~timed:(Option.is_some obs) ()
          in
          (match parent_scope with
          | Some s -> Scope.register s port
          | None -> ());
          (match obs with
          | None -> ()
          | Some (sink, node) ->
              (* No processes are forked here: spawn/join are zero and
                 [domains] reports 0 by construction. *)
              Obs.register_exchange sink ~node ~sample:(fun () ->
                  {
                    Obs.packets_sent = Port.packets_sent port;
                    packets_received = Port.packets_received port;
                    records = Port.records_sent port;
                    max_queue_depth = Port.max_depth port;
                    flow_waits = Port.flow_stalls port;
                    flow_wait_s = Port.flow_stall_s port;
                    per_producer = Port.packets_sent_by port;
                    pool_allocated = Port.pool_allocated port;
                    pool_reused = Port.pool_reused port;
                    pool_recycled = Port.pool_recycled port;
                    spawn_s = 0.0;
                    join_s = 0.0;
                    domains = 0;
                  }));
          Group.publish_port group ~key:id port;
          port
        end
        else Group.lookup_port group ~key:id
      in
      Iterator.open_ input;
      input_done := false;
      packets :=
        Array.init size (fun consumer ->
            Port.alloc port ~producer:rank ~consumer
              ~capacity:cfg.packet_size);
      (partition :=
         match cfg.partition with
         | Broadcast ->
             invalid_arg "Exchange.interchange: broadcast not supported"
         | spec -> instantiate_partition spec ~consumers:size);
      state :=
        Some
          {
            port;
            close_allowed = Sched.Event.create ();
            joiner = None;
            recv = (fun () -> Port.receive port ~consumer:rank);
            recy = Port.recycle port ~consumer:rank;
            current = None;
            pos = 0;
            eos_tags = 0;
            finished = false;
          })
    ~next:(fun () ->
      match !state with
      | None -> invalid_arg "Exchange.interchange: not open"
      | Some s -> (
          let flush consumer ~eos =
            let packet = !packets.(consumer) in
            if eos then Packet.tag_end_of_stream packet;
            if eos || not (Packet.is_empty packet) then
              Port.send s.port ~producer:rank ~consumer packet;
            if not eos then
              !packets.(consumer) <-
                Port.alloc s.port ~producer:rank ~consumer
                  ~capacity:cfg.packet_size
          in
          let rec step () =
            match s.current with
            | Some packet when s.pos < Packet.length packet ->
                let tuple = Packet.get packet s.pos in
                s.pos <- s.pos + 1;
                Some tuple
            | Some packet ->
                if Packet.end_of_stream packet then
                  s.eos_tags <- s.eos_tags + 1;
                s.current <- None;
                s.recy packet;
                step ()
            | None ->
                if s.finished then None
                else if Port.is_shut_down s.port then begin
                  (* Cancellation or a peer's failure: stop driving the
                     input — routed sends are dropped anyway, so an
                     unbounded input would spin here forever. *)
                  s.finished <- true;
                  match Port.failure s.port with
                  | Some origin ->
                      raise (as_query_failed ~fallback:"interchange" origin)
                  | None -> None
                end
                else if s.eos_tags >= size then begin
                  s.finished <- true;
                  None
                end
                else (
                  (* Prefer packets already queued for this process. *)
                  match Port.try_receive s.port ~consumer:rank with
                  | Some packet ->
                      s.current <- Some packet;
                      s.pos <- 0;
                      step ()
                  | None ->
                      if not !input_done then (
                        (* Run the producer: pull own input, route records,
                           and return as soon as one lands here. *)
                        match Iterator.next input with
                        | Some tuple ->
                            let consumer = !partition tuple in
                            if consumer = rank then Some tuple
                            else begin
                              Packet.add !packets.(consumer) tuple;
                              if Packet.is_full !packets.(consumer) then
                                flush consumer ~eos:false;
                              step ()
                            end
                        | None ->
                            input_done := true;
                            for consumer = 0 to size - 1 do
                              flush consumer ~eos:true
                            done;
                            step ())
                      else (
                        match Port.receive s.port ~consumer:rank with
                        | Some packet ->
                            s.current <- Some packet;
                            s.pos <- 0;
                            step ()
                        | None ->
                            s.finished <- true;
                            (match Port.failure s.port with
                            | Some origin ->
                                raise
                                  (as_query_failed ~fallback:"interchange"
                                     origin)
                            | None -> None)))
          in
          match step () with
          | result -> result
          | exception exn ->
              (* Every member is a producer here: a member whose input dies
                 must poison the shared port or its peers would block
                 forever waiting for this member's packets. *)
              s.finished <- true;
              Port.poison s.port exn;
              raise (as_query_failed ~fallback:"interchange" exn)))
    ~close:(fun () ->
      (match !state with
      | Some s ->
          (* Any member closing an unfinished interchange cancels the whole
             group: peers block on each other's packets, so a silent
             departure — master or not — would strand them. *)
          if not s.finished then Port.shutdown s.port
      | None -> ());
      Iterator.close input;
      state := None)
