(** The iterator (open–next–close) protocol.

    "All algebra operators are implemented as iterators, i.e., they support
    a simple open-next-close protocol" (paper, section 3).  An iterator's
    input is anonymous: nothing about this type reveals whether tuples come
    from a file scan, a complex subtree, or another process via exchange —
    the {e streams} abstraction.

    Within a process, query evaluation is demand-driven: calling {!next} on
    the root pulls records up through the tree.  The exchange operator
    translates this to data-driven flow between processes. *)

exception Protocol_error of string
(** Raised by {!checked} iterators on protocol violations. *)

type t

val make :
  open_:(unit -> unit) ->
  next:(unit -> Volcano_tuple.Tuple.t option) ->
  close:(unit -> unit) ->
  t
(** Package the three entry points of an operator's state record. *)

val open_ : t -> unit
val next : t -> Volcano_tuple.Tuple.t option
val close : t -> unit

val checked : t -> t
(** Wrap with a protocol monitor: [open_] must come first and only once,
    [next] only between [open_] and [close], [close] at most once.  [next]
    after end-of-stream is also rejected.  Used by tests and available to
    applications for debugging new operators. *)

val instrumented : node:Volcano_obs.Obs.Node.t -> t -> t
(** Wrap with the observability recorder: open/next/close wall time and
    rows produced accumulate into [node] (shared by all ranks evaluating
    the same plan node), and each open-to-close lifetime is recorded as a
    span on the calling domain.  Applied by the plan compiler only when a
    profiling sink is supplied, so un-profiled queries pay nothing. *)

(** {2 Leaf constructors} *)

val of_list : Volcano_tuple.Tuple.t list -> t
val of_array : Volcano_tuple.Tuple.t array -> t

val generate : count:int -> f:(int -> Volcano_tuple.Tuple.t) -> t
(** [generate ~count ~f] produces [f 0 .. f (count-1)]; the record-generator
    used by the section 5 experiments. *)

val empty : t

(** {2 Consumers (drive a query to completion)} *)

val to_list : t -> Volcano_tuple.Tuple.t list
(** Open, drain, close. *)

val iter : (Volcano_tuple.Tuple.t -> unit) -> t -> unit

val fold : ('a -> Volcano_tuple.Tuple.t -> 'a) -> 'a -> t -> 'a

val consume : t -> int
(** Open, count every tuple, close — the "top of the query" driver loop. *)
