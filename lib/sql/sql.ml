module Session = Volcano_plan.Session

exception Error of string

let wrap f =
  try f () with
  | Lexer.Error m -> raise (Error ("lex error: " ^ m))
  | Parser.Error m -> raise (Error ("parse error: " ^ m))
  | Binder.Error m -> raise (Error ("bind error: " ^ m))
  | Optimizer.Error m -> raise (Error ("plan error: " ^ m))

let parse text = wrap (fun () -> Parser.parse text)
let print = Ast.to_string
let bind env ast = wrap (fun () -> Binder.bind env ast)

let plan ?workers env text =
  wrap (fun () -> Optimizer.optimize ?workers env (Binder.bind env (Parser.parse text)))

let explain ?workers env text =
  wrap (fun () -> Optimizer.explain ?workers env (Binder.bind env (Parser.parse text)))

let install () =
  Session.set_frontend (fun ?workers env text ->
      let choice = plan ?workers env text in
      {
        Session.cq_plan = choice.Optimizer.plan;
        cq_explain = Optimizer.render env choice;
      })
