(** Abstract syntax for the SQL subset, plus its canonical rendering.

    The grammar is deliberately pragmatic: single-block SELECT with
    projection expressions, WHERE, inner JOIN .. ON, GROUP BY with
    aggregates, DISTINCT, ORDER BY, LIMIT, and UNION ALL between blocks.
    Table references are catalog tables, [generate(n)] (a one-column
    integer range) and [wisconsin(n [, seed])] (the benchmark relation).

    {!to_string} prints the canonical form: uppercase keywords, fully
    parenthesized expressions, explicit ASC/DESC.  Parsing a canonical
    string and reprinting it is the identity — the round-trip fixpoint
    the test suite checks. *)

type agg_fn = A_count | A_sum | A_min | A_max | A_avg

type binop = Add | Sub | Mul | Div | Mod

type expr =
  | Col of string option * string  (** optional qualifier, column name *)
  | Int of int
  | Float of float
  | Str of string
  | Bin of binop * expr * expr
  | Neg of expr
  | Cmp of Volcano_tuple.Expr.cmp_op * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of { neg : bool; arg : expr }  (** [neg]: IS NOT NULL *)
  | Agg of agg_fn * expr option  (** [None] only for ["COUNT(*)"] *)

type table_ref =
  | Table of { name : string; alias : string option }
  | Range of { count : int; alias : string option }  (** [generate(n)] *)
  | Wisconsin of { rows : int; seed : int option; alias : string option }

type sel_item = Star | Sel of { expr : expr; alias : string option }

type join = { table : table_ref; on : expr }

type select = {
  distinct : bool;
  items : sel_item list;
  from : table_ref;
  joins : join list;
  where : expr option;
  group_by : expr list;
  order_by : (expr * Volcano_tuple.Support.direction) list;
  limit : int option;
}

type query = Select of select | Union_all of query * query

val keywords : string list
(** Every reserved word, lowercase — shared with the lexer, and used by
    the printer to decide which identifiers need quoting. *)

val agg_str : agg_fn -> string
(** Uppercase function name ([COUNT], [SUM], ...). *)

val expr_to_string : expr -> string
(** Canonical (fully parenthesized) rendering of one expression. *)

val to_string : query -> string
(** Canonical rendering of a whole query; [to_string] after a parse of a
    canonical string is the identity. *)
