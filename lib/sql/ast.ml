module E = Volcano_tuple.Expr
module Support = Volcano_tuple.Support

type agg_fn = A_count | A_sum | A_min | A_max | A_avg

type binop = Add | Sub | Mul | Div | Mod

type expr =
  | Col of string option * string
  | Int of int
  | Float of float
  | Str of string
  | Bin of binop * expr * expr
  | Neg of expr
  | Cmp of E.cmp_op * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of { neg : bool; arg : expr }
  | Agg of agg_fn * expr option

type table_ref =
  | Table of { name : string; alias : string option }
  | Range of { count : int; alias : string option }
  | Wisconsin of { rows : int; seed : int option; alias : string option }

type sel_item = Star | Sel of { expr : expr; alias : string option }

type join = { table : table_ref; on : expr }

type select = {
  distinct : bool;
  items : sel_item list;
  from : table_ref;
  joins : join list;
  where : expr option;
  group_by : expr list;
  order_by : (expr * Support.direction) list;
  limit : int option;
}

type query = Select of select | Union_all of query * query

let keywords =
  [
    "select"; "distinct"; "from"; "where"; "join"; "inner"; "on"; "group";
    "by"; "order"; "limit"; "union"; "all"; "and"; "or"; "not"; "is";
    "null"; "as"; "asc"; "desc"; "count"; "sum"; "min"; "max"; "avg";
  ]

(* --- canonical printing ---------------------------------------------- *)

let plain_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       s
  && not (List.mem s keywords)

let ident s = if plain_ident s then s else "\"" ^ s ^ "\""

let string_lit s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string b "''" else Buffer.add_char b c)
    s;
  Buffer.add_char b '\'';
  Buffer.contents b

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let cmp_str = function
  | E.Eq -> "="
  | E.Ne -> "<>"
  | E.Lt -> "<"
  | E.Le -> "<="
  | E.Gt -> ">"
  | E.Ge -> ">="

let agg_str = function
  | A_count -> "COUNT"
  | A_sum -> "SUM"
  | A_min -> "MIN"
  | A_max -> "MAX"
  | A_avg -> "AVG"

(* %.12g keeps the printed float lexable (plain decimal or exponent, both
   of which the lexer accepts) and short enough to stay readable. *)
let float_str f = Printf.sprintf "%.12g" f

let rec expr_to_string = function
  | Col (None, n) -> ident n
  | Col (Some q, n) -> ident q ^ "." ^ ident n
  | Int n -> string_of_int n
  | Float f -> float_str f
  | Str s -> string_lit s
  | Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_str op)
        (expr_to_string b)
  | Neg a -> Printf.sprintf "(- %s)" (expr_to_string a)
  | Cmp (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (cmp_str op)
        (expr_to_string b)
  | And (a, b) ->
      Printf.sprintf "(%s AND %s)" (expr_to_string a) (expr_to_string b)
  | Or (a, b) ->
      Printf.sprintf "(%s OR %s)" (expr_to_string a) (expr_to_string b)
  | Not a -> Printf.sprintf "(NOT %s)" (expr_to_string a)
  | Is_null { neg; arg } ->
      Printf.sprintf "(%s IS %sNULL)" (expr_to_string arg)
        (if neg then "NOT " else "")
  | Agg (A_count, None) -> "COUNT(*)"
  | Agg (fn, None) -> agg_str fn ^ "(*)"
  | Agg (fn, Some e) -> Printf.sprintf "%s(%s)" (agg_str fn) (expr_to_string e)

let alias_str = function None -> "" | Some a -> " AS " ^ ident a

let table_ref_to_string = function
  | Table { name; alias } -> ident name ^ alias_str alias
  | Range { count; alias } ->
      Printf.sprintf "generate(%d)%s" count (alias_str alias)
  | Wisconsin { rows; seed = None; alias } ->
      Printf.sprintf "wisconsin(%d)%s" rows (alias_str alias)
  | Wisconsin { rows; seed = Some s; alias } ->
      Printf.sprintf "wisconsin(%d, %d)%s" rows s (alias_str alias)

let sel_item_to_string = function
  | Star -> "*"
  | Sel { expr; alias } -> expr_to_string expr ^ alias_str alias

let select_to_string s =
  let b = Buffer.create 128 in
  Buffer.add_string b "SELECT ";
  if s.distinct then Buffer.add_string b "DISTINCT ";
  Buffer.add_string b
    (String.concat ", " (List.map sel_item_to_string s.items));
  Buffer.add_string b (" FROM " ^ table_ref_to_string s.from);
  List.iter
    (fun j ->
      Buffer.add_string b
        (Printf.sprintf " JOIN %s ON %s"
           (table_ref_to_string j.table)
           (expr_to_string j.on)))
    s.joins;
  Option.iter
    (fun w -> Buffer.add_string b (" WHERE " ^ expr_to_string w))
    s.where;
  (match s.group_by with
  | [] -> ()
  | keys ->
      Buffer.add_string b
        (" GROUP BY " ^ String.concat ", " (List.map expr_to_string keys)));
  (match s.order_by with
  | [] -> ()
  | items ->
      Buffer.add_string b
        (" ORDER BY "
        ^ String.concat ", "
            (List.map
               (fun (e, dir) ->
                 expr_to_string e
                 ^ match dir with Support.Asc -> " ASC" | Support.Desc -> " DESC")
               items)));
  Option.iter
    (fun n -> Buffer.add_string b (Printf.sprintf " LIMIT %d" n))
    s.limit;
  Buffer.contents b

let rec to_string = function
  | Select s -> select_to_string s
  | Union_all (a, b) -> to_string a ^ " UNION ALL " ^ to_string b
