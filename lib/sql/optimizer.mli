(** Cost-based physical optimizer: {!Binder.query} to {!Plan.t}, with
    {!Compile.analyze} as the legality oracle.

    The optimizer makes every decision today's plan layer leaves to the
    plan author: left-deep join order and per-join algorithm (hash vs
    sort) from cardinality estimates; for each parallel candidate, the
    per-edge exchange vector — degree, partitioning function
    (round-robin gather, [Hash_on] repartition, or a shard-aligned
    [Range_on]/no-op when the storage partitioning already co-locates
    the keys), packet size and flow slack within planlint's budgets,
    and pipeline-vs-merge gathering for ORDER BY.

    Candidate degrees come from the scheduler's worker pool and the
    partition counts of sharded tables the query scans; a table with
    partition files {e must} be scanned at exactly its partition count
    (the compiler's group-rank lookup maps member [r] to partition file
    [r]), so conflicting shard widths simply rule parallel candidates
    out.  Candidates are ranked by estimated cost and each is submitted
    to the analyzer; the first one with {e zero} diagnostics — warnings
    included — wins.  Candidates that trip any diagnostic are pruned,
    never patched, and the pruning is recorded in the choice's notes.
    The serial plan is always a candidate, so a legal plan always
    exists. *)

exception Error of string

type choice = {
  plan : Volcano_plan.Plan.t;  (** passes planlint with zero diagnostics *)
  notes : string list;
      (** one line per candidate, cost order: chosen / pruned (with
          diagnostic codes) / not chosen *)
}

val optimize :
  ?workers:int -> Volcano_plan.Env.t -> Binder.query -> choice
(** [workers] overrides {!Volcano_plan.Env.sched_workers} for both the
    candidate degrees and the analyzer's placement advisory.
    @raise Error if even the serial plan trips the analyzer (a binder or
    catalog inconsistency — not an expected outcome). *)

val render : Volcano_plan.Env.t -> choice -> string
(** The choice's operator tree plus the optimizer's notes. *)

val explain : ?workers:int -> Volcano_plan.Env.t -> Binder.query -> string
(** [render] of [optimize]. *)
