module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Parallel = Volcano_plan.Parallel
module Partition = Volcano_plan.Partition
module Exchange = Volcano.Exchange
module Expr = Volcano_tuple.Expr
module Value = Volcano_tuple.Value
module Agg = Volcano_ops.Aggregate
module Shard = Volcano_storage.Shard
module Diag = Volcano_analysis.Diag
module W = Volcano_wisconsin.Wisconsin
module B = Binder

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type choice = { plan : Plan.t; notes : string list }

let codes diags =
  String.concat ", "
    (List.sort_uniq compare
       (List.map
          (fun d ->
            (match Diag.vl_code d with Some v -> v ^ " " | None -> "")
            ^ d.Diag.code)
          diags))

(* --- global-id remapping ---------------------------------------------- *)

(* Streams carry [cols]: position [i] of the tuple holds the binder's
   global column [cols.(i)].  Every predicate/expression in the logical
   form is over global ids and gets remapped at the node that uses it. *)

let pos_of cols g =
  let hit = ref (-1) in
  Array.iteri (fun i c -> if c = g && !hit < 0 then hit := i) cols;
  if !hit < 0 then fail "internal error: global column %d not in stream" g;
  !hit

let remap_num cols e = Expr.subst (fun g -> Expr.Col (pos_of cols g)) e

let rec remap_pred cols p =
  match p with
  | Expr.True | Expr.False -> p
  | Expr.Cmp (op, a, b) -> Expr.Cmp (op, remap_num cols a, remap_num cols b)
  | Expr.And (a, b) -> Expr.And (remap_pred cols a, remap_pred cols b)
  | Expr.Or (a, b) -> Expr.Or (remap_pred cols a, remap_pred cols b)
  | Expr.Not a -> Expr.Not (remap_pred cols a)
  | Expr.Is_null e -> Expr.Is_null (remap_num cols e)
  | Expr.Str_prefix (s, e) -> Expr.Str_prefix (s, remap_num cols e)

let remap_agg cols = function
  | Agg.Count -> Agg.Count
  | Agg.Sum e -> Agg.Sum (remap_num cols e)
  | Agg.Min e -> Agg.Min (remap_num cols e)
  | Agg.Max e -> Agg.Max (remap_num cols e)
  | Agg.Avg e -> Agg.Avg (remap_num cols e)

let conj = function
  | [] -> Expr.True
  | p :: tl -> List.fold_left (fun a b -> Expr.And (a, b)) p tl

let lg x = log (max 2.0 x) /. log 2.0

(* --- logical phase: greedy left-deep join order ------------------------ *)

let src_of sources g =
  let hit = ref (-1) in
  Array.iteri
    (fun i (s : B.source) ->
      if g >= s.offset && g < s.offset + Array.length s.schema then hit := i)
    sources;
  !hit

type step = {
  src : int;
  pairs : (int * int) list;  (* (bound-side global col, new-side global col) *)
  residual : B.conjunct list;
  est : float;  (* estimated rows after this step *)
}

(* Split the conjunct pool: [singles.(i)] filters source [i] at its leaf
   (constant predicates ride on source 0), the rest connect sources and
   drive the join order. *)
let split_conjuncts (s : B.select) =
  let n = Array.length s.sources in
  let singles = Array.make n [] in
  let multis = ref [] in
  List.iter
    (fun (cj : B.conjunct) ->
      match cj.refs with
      | [] -> singles.(0) <- cj :: singles.(0)
      | [ i ] -> singles.(i) <- cj :: singles.(i)
      | _ -> multis := cj :: !multis)
    s.conjuncts;
  let eff =
    Array.mapi
      (fun i (src : B.source) ->
        let sel =
          List.fold_left (fun acc cj -> acc *. cj.B.sel) 1.0 singles.(i)
        in
        max 1.0 (float_of_int src.rows *. sel))
      s.sources
  in
  (singles, List.rev !multis, eff)

let order_sources (s : B.select) multis eff =
  let n = Array.length s.sources in
  let first = ref 0 in
  Array.iteri (fun i r -> if r < eff.(!first) then first := i) eff;
  let first = !first in
  let bound = Array.make n false in
  bound.(first) <- true;
  let multis = Array.of_list multis in
  let used = Array.make (Array.length multis) false in
  let cur = ref eff.(first) in
  let steps = ref [] in
  for _ = 2 to n do
    (* best = (connected, step, indexes of conjuncts the step consumes) *)
    let best = ref None in
    for c = 0 to n - 1 do
      if not bound.(c) then begin
        let consumed = ref [] in
        Array.iteri
          (fun i (cj : B.conjunct) ->
            if
              (not used.(i))
              && List.for_all (fun r -> r = c || bound.(r)) cj.refs
            then consumed := (i, cj) :: !consumed)
          multis;
        let consumed = List.rev !consumed in
        let pairs, residual =
          List.partition_map
            (fun (_, (cj : B.conjunct)) ->
              match cj.equi with
              | Some (a, b)
                when src_of s.sources b = c && bound.(src_of s.sources a) ->
                  Either.Left (a, b)
              | Some (a, b)
                when src_of s.sources a = c && bound.(src_of s.sources b) ->
                  Either.Left (b, a)
              | Some _ | None -> Either.Right cj)
            consumed
        in
        let base =
          if pairs <> [] then
            min !cur eff.(c) *. (0.1 ** float_of_int (List.length pairs - 1))
          else !cur *. eff.(c)
        in
        let est =
          max 1.0
            (List.fold_left (fun acc cj -> acc *. cj.B.sel) base residual)
        in
        let connected = pairs <> [] in
        let better =
          match !best with
          | None -> true
          | Some (bconn, bstep, _) ->
              (connected && not bconn)
              || (connected = bconn && est < bstep.est)
        in
        if better then
          best :=
            Some (connected, { src = c; pairs; residual; est },
                  List.map fst consumed)
      end
    done;
    match !best with
    | None -> assert false
    | Some (_, step, consumed_idx) ->
        bound.(step.src) <- true;
        List.iter (fun i -> used.(i) <- true) consumed_idx;
        cur := step.est;
        steps := step :: !steps
  done;
  (first, List.rev !steps)

(* --- physical streams -------------------------------------------------- *)

type prop =
  | P_none
  | P_hash of int list  (* partitioned by hash of these global columns *)
  | P_range of int * Value.t array

type stream = {
  plan : Plan.t;
  cols : int array;
  rows : float;  (* global row estimate (all members together) *)
  work : float;  (* serial-equivalent operator work *)
  ovh : float;  (* exchange overhead (parallel candidates only) *)
  prop : prop;
}

let prop_of_spec offset = function
  | Shard.Hash cs -> P_hash (List.map (fun c -> offset + c) cs)
  | Shard.Range (c, bounds) ->
      P_range (offset + c, Array.map Partition.decode_bound bounds)

let xchg ~packet ~degree ?partition st =
  let cfg =
    Exchange.config ~degree ~packet_size:packet ~flow_slack:(Some 4)
      ?partition ()
  in
  {
    st with
    plan = Plan.Exchange { cfg; input = st.plan };
    ovh = st.ovh +. (40.0 *. float_of_int degree) +. (0.3 *. st.rows);
  }

let leaf ~parallel ~degree (s : B.select) singles eff i =
  let src = s.sources.(i) in
  let plan, prop =
    match src.kind with
    | B.K_table name ->
        if not parallel then (Plan.Scan_table name, P_none)
        else (
          match src.parts with
          | Some (spec, p) when p = degree ->
              (* shard-aligned: member r reads partition file r *)
              (Plan.Scan_table_slice name, prop_of_spec src.offset spec)
          | Some _ ->
              (* degree selection guarantees d = parts for sharded scans *)
              assert false
          | None -> (Plan.Scan_table_slice name, P_none))
    | B.K_range count -> (Plan.Generate_range { start = 0; count }, P_none)
    | B.K_wisconsin { rows; seed } ->
        if parallel then (W.plan_slice ?seed ~n:rows (), P_none)
        else (W.plan ?seed ~n:rows (), P_none)
  in
  let cols =
    Array.init (Array.length src.schema) (fun j -> src.offset + j)
  in
  let raw = float_of_int src.rows in
  match singles.(i) with
  | [] -> { plan; cols; rows = max 1.0 raw; work = raw; ovh = 0.0; prop }
  | cjs ->
      let pred =
        conj (List.map (fun (cj : B.conjunct) -> remap_pred cols cj.pred) cjs)
      in
      {
        plan = Plan.Filter { pred; mode = `Compiled; input = plan };
        cols;
        rows = eff.(i);
        work = raw +. (0.1 *. raw);
        ovh = 0.0;
        prop;
      }

(* Which exchanges does a parallel join edge need?  A side whose stream
   is already partitioned compatibly with the join keys (a shard-aligned
   scan, or the residue of an earlier repartitioning) stays in place and
   the other side is partitioned {e with the same function} on the
   paired columns — the catalog spec and local exchange share one
   router, so equal keys land on the same group member.  Only when
   neither side helps do both get the classic GAMMA hash repartition. *)
let covered prop own =
  match prop with
  | P_hash cl when cl <> [] && List.for_all (fun c -> List.mem c own) cl ->
      Some (`H cl)
  | P_range (c, b) when List.mem c own -> Some (`R (c, b))
  | P_hash _ | P_range _ | P_none -> None

let place ~packet ~degree l r pairs =
  let lcols = List.map fst pairs and rcols = List.map snd pairs in
  let partner_l c = List.assoc c pairs in
  let partner_r c = fst (List.find (fun (_, b) -> b = c) pairs) in
  match (covered l.prop lcols, covered r.prop rcols) with
  | Some (`H cl), rcov -> (
      let partners = List.map partner_l cl in
      match rcov with
      | Some (`H cr) when cr = partners -> (l, r, l.prop)
      | _ ->
          let r' =
            xchg ~packet ~degree
              ~partition:
                (Exchange.Hash_on (List.map (pos_of r.cols) partners))
              r
          in
          (l, r', l.prop))
  | Some (`R (c, b)), rcov -> (
      let rc = partner_l c in
      match rcov with
      | Some (`R (c2, b2)) when c2 = rc && b2 = b -> (l, r, l.prop)
      | _ ->
          let r' =
            xchg ~packet ~degree
              ~partition:(Exchange.Range_on (pos_of r.cols rc, b))
              r
          in
          (l, r', l.prop))
  | None, Some (`H cr) ->
      let partners = List.map partner_r cr in
      let l' =
        xchg ~packet ~degree
          ~partition:(Exchange.Hash_on (List.map (pos_of l.cols) partners))
          l
      in
      (l', r, r.prop)
  | None, Some (`R (c, b)) ->
      let lc = partner_r c in
      let l' =
        xchg ~packet ~degree
          ~partition:(Exchange.Range_on (pos_of l.cols lc, b))
          l
      in
      (l', r, r.prop)
  | None, None ->
      let l' =
        xchg ~packet ~degree
          ~partition:(Exchange.Hash_on (List.map (pos_of l.cols) lcols))
          l
      in
      let r' =
        xchg ~packet ~degree
          ~partition:(Exchange.Hash_on (List.map (pos_of r.cols) rcols))
          r
      in
      (l', r', P_hash lcols)

let join ~parallel ~packet ~degree env l r (st : step) =
  let cols = Array.append l.cols r.cols in
  match st.pairs with
  | [] ->
      (* theta or cross join: serial candidates only *)
      let preds =
        List.map (fun (cj : B.conjunct) -> remap_pred cols cj.pred) st.residual
      in
      let plan =
        match preds with
        | [] -> Plan.Cross { left = l.plan; right = r.plan }
        | ps -> Plan.Theta_join { pred = conj ps; left = l.plan; right = r.plan }
      in
      {
        plan;
        cols;
        rows = st.est;
        work = l.work +. r.work +. (l.rows *. r.rows);
        ovh = l.ovh +. r.ovh;
        prop = P_none;
      }
  | pairs ->
      let l, r, prop =
        if parallel then place ~packet ~degree l r pairs else (l, r, P_none)
      in
      let lkey = List.map (fun (a, _) -> pos_of l.cols a) pairs in
      let rkey = List.map (fun (_, b) -> pos_of r.cols b) pairs in
      let small = min l.rows r.rows and big = max l.rows r.rows in
      let algo =
        if small > float_of_int (Env.sort_run_capacity env) then
          Plan.Sort_based
        else Plan.Hash_based
      in
      let jcost =
        match algo with
        | Plan.Hash_based -> (1.5 *. small) +. big +. (0.2 *. st.est)
        | Plan.Sort_based ->
            l.rows +. r.rows
            +. (0.4 *. ((l.rows *. lg l.rows) +. (r.rows *. lg r.rows)))
      in
      let matched =
        Plan.Match
          {
            algo;
            kind = Volcano_ops.Match_op.Join;
            left_key = lkey;
            right_key = rkey;
            left = l.plan;
            right = r.plan;
          }
      in
      let plan, fcost =
        match st.residual with
        | [] -> (matched, 0.0)
        | rs ->
            ( Plan.Filter
                {
                  pred =
                    conj
                      (List.map
                         (fun (cj : B.conjunct) -> remap_pred cols cj.pred)
                         rs);
                  mode = `Compiled;
                  input = matched;
                },
              0.1 *. st.est )
      in
      {
        plan;
        cols;
        rows = st.est;
        work = l.work +. r.work +. jcost +. fcost;
        ovh = l.ovh +. r.ovh;
        prop;
      }

(* --- output shape ------------------------------------------------------ *)

let is_identity_over cols exprs =
  List.length exprs = Array.length cols
  && List.for_all2 (fun e g -> e = Expr.Col g) exprs (Array.to_list cols)

let is_layout_identity arity post =
  List.length post = arity
  && List.for_all Fun.id (List.mapi (fun i e -> e = Expr.Col i) post)

let sort_node key input = Plan.Sort { key; input }

let serial_tail env st (s : B.select) =
  ignore env;
  let st, arity =
    match s.shape with
    | B.Flat exprs ->
        if is_identity_over st.cols exprs then (st, List.length exprs)
        else
          ( {
              st with
              plan =
                Plan.Project_exprs
                  {
                    exprs = List.map (remap_num st.cols) exprs;
                    input = st.plan;
                  };
              work = st.work +. (0.05 *. st.rows);
            },
            List.length exprs )
    | B.Grouped { keys; aggs; post } ->
        let key_pos = List.map (pos_of st.cols) keys in
        let aggs' = List.map (remap_agg st.cols) aggs in
        let groups =
          if keys = [] then 1.0 else max 1.0 (st.rows /. 10.0)
        in
        let plan =
          Plan.Aggregate
            {
              algo = Plan.Hash_based;
              group_by = key_pos;
              aggs = aggs';
              input = st.plan;
            }
        in
        let layout = List.length keys + List.length aggs in
        let plan =
          if is_layout_identity layout post then plan
          else Plan.Project_exprs { exprs = post; input = plan }
        in
        ( {
            st with
            plan;
            rows = groups;
            work = st.work +. (1.5 *. st.rows);
          },
          List.length post )
  in
  let st =
    if s.distinct then
      {
        st with
        plan =
          Plan.Distinct
            {
              algo = Plan.Hash_based;
              on = List.init arity Fun.id;
              input = st.plan;
            };
        rows = max 1.0 (st.rows *. 0.5);
        work = st.work +. st.rows;
      }
    else st
  in
  let st =
    if s.order_by = [] then st
    else
      {
        st with
        plan = sort_node s.order_by st.plan;
        work = st.work +. (0.4 *. st.rows *. lg st.rows);
      }
  in
  match s.limit with
  | None -> st
  | Some count -> { st with plan = Plan.Limit { count; input = st.plan } }

(* Gather the per-member stream at the region root: a merge network when
   the query orders its output (each member sorts its share), a plain
   round-robin exchange otherwise. *)
let gather ~packet ~degree st (s : B.select) =
  if s.order_by = [] then xchg ~packet ~degree st
  else
    let cfg =
      Exchange.config ~degree ~packet_size:packet ~flow_slack:(Some 4) ()
    in
    {
      st with
      plan =
        Plan.Exchange_merge
          { cfg; key = s.order_by; input = sort_node s.order_by st.plan };
      work = st.work +. (0.4 *. st.rows *. lg st.rows);
      ovh = st.ovh +. (40.0 *. float_of_int degree) +. (0.3 *. st.rows);
    }

let parallel_tail ~packet ~degree st (s : B.select) =
  let finish_root st arity =
    (* solo-consumer steps after the gather *)
    let st =
      if s.distinct then
        {
          st with
          plan =
            Plan.Distinct
              {
                algo = Plan.Hash_based;
                on = List.init arity Fun.id;
                input = st.plan;
              };
          rows = max 1.0 (st.rows *. 0.5);
          work = st.work +. st.rows;
        }
      else st
    in
    match s.limit with
    | None -> st
    | Some count -> { st with plan = Plan.Limit { count; input = st.plan } }
  in
  match s.shape with
  | B.Flat exprs ->
      let arity = List.length exprs in
      let st =
        if is_identity_over st.cols exprs then st
        else
          {
            st with
            plan =
              Plan.Project_exprs
                { exprs = List.map (remap_num st.cols) exprs; input = st.plan };
            work = st.work +. (0.05 *. st.rows);
          }
      in
      let st =
        if not s.distinct then st
        else
          (* duplicates agree on every column, so hashing the whole row
             co-locates them; each member then deduplicates its share *)
          let st =
            xchg ~packet ~degree
              ~partition:(Exchange.Hash_on (List.init arity Fun.id))
              st
          in
          {
            st with
            plan =
              Plan.Distinct
                {
                  algo = Plan.Hash_based;
                  on = List.init arity Fun.id;
                  input = st.plan;
                };
            rows = max 1.0 (st.rows *. 0.5);
            work = st.work +. st.rows;
          }
      in
      let st = gather ~packet ~degree st s in
      (* distinct already ran inside the region *)
      let st =
        match s.limit with
        | None -> st
        | Some count -> { st with plan = Plan.Limit { count; input = st.plan } }
      in
      st
  | B.Grouped { keys; aggs; post } ->
      let key_pos = List.map (pos_of st.cols) keys in
      let aggs' = List.map (remap_agg st.cols) aggs in
      let k = List.length keys in
      let local_aggs, global_aggs, projection =
        Parallel.two_phase_decomposition ~group_by:key_pos ~aggs:aggs'
      in
      (* the binder decomposes AVG itself, so no Avg reaches this point
         and the decomposition never needs its own projection *)
      assert (projection = None);
      let layout = k + List.length aggs in
      let groups = if keys = [] then 1.0 else max 1.0 (st.rows /. 10.0) in
      if keys = [] then begin
        (* scalar aggregate: local phase per member, gathered and
           combined at the solo consumer — Hash_on [] would be a
           planlint warning, so no repartitioning is even attempted *)
        let st =
          {
            st with
            plan =
              Plan.Aggregate
                {
                  algo = Plan.Hash_based;
                  group_by = [];
                  aggs = local_aggs;
                  input = st.plan;
                };
            rows = float_of_int degree;
            work = st.work +. (1.5 *. st.rows);
          }
        in
        let st = xchg ~packet ~degree st in
        let st =
          {
            st with
            plan =
              Plan.Aggregate
                {
                  algo = Plan.Hash_based;
                  group_by = [];
                  aggs = global_aggs;
                  input = st.plan;
                };
            rows = 1.0;
          }
        in
        let st =
          if is_layout_identity layout post then st
          else { st with plan = Plan.Project_exprs { exprs = post; input = st.plan } }
        in
        let st =
          if s.order_by = [] then st
          else { st with plan = sort_node s.order_by st.plan }
        in
        finish_root st (List.length post)
      end
      else begin
        let covered_by_keys =
          match st.prop with
          | P_hash cl -> cl <> [] && List.for_all (fun c -> List.mem c keys) cl
          | P_range (c, _) -> List.mem c keys
          | P_none -> false
        in
        let st =
          if covered_by_keys then
            (* shard-aligned grouping: every group is wholly local to
               one member, so one aggregation pass suffices and no
               repartitioning edge is placed at all *)
            {
              st with
              plan =
                Plan.Aggregate
                  {
                    algo = Plan.Hash_based;
                    group_by = key_pos;
                    aggs = aggs';
                    input = st.plan;
                  };
              rows = groups;
              work = st.work +. (1.5 *. st.rows);
            }
          else
            let local =
              {
                st with
                plan =
                  Plan.Aggregate
                    {
                      algo = Plan.Hash_based;
                      group_by = key_pos;
                      aggs = local_aggs;
                      input = st.plan;
                    };
                rows = min st.rows (groups *. float_of_int degree);
                work = st.work +. (1.5 *. st.rows);
              }
            in
            let rep =
              xchg ~packet ~degree
                ~partition:(Exchange.Hash_on (List.init k Fun.id))
                local
            in
            {
              rep with
              plan =
                Plan.Aggregate
                  {
                    algo = Plan.Hash_based;
                    group_by = List.init k Fun.id;
                    aggs = global_aggs;
                    input = rep.plan;
                  };
              rows = groups;
              work = rep.work +. (1.5 *. rep.rows);
            }
        in
        let st =
          if is_layout_identity layout post then st
          else
            {
              st with
              plan = Plan.Project_exprs { exprs = post; input = st.plan };
              work = st.work +. (0.05 *. st.rows);
            }
        in
        let st = gather ~packet ~degree st s in
        finish_root st (List.length post)
      end

(* --- candidates -------------------------------------------------------- *)

type candidate = { label : string; cost : float; cplan : Plan.t }

let packet_for env =
  min 255 (max Volcano.Packet.default_capacity (Env.batch_size env))

let build env (s : B.select) (first, steps) singles eff ~degree =
  let parallel = degree > 1 in
  let packet = packet_for env in
  let l0 = leaf ~parallel ~degree s singles eff first in
  let stream =
    List.fold_left
      (fun l st ->
        let r = leaf ~parallel ~degree s singles eff st.src in
        join ~parallel ~packet ~degree env l r st)
      l0 steps
  in
  if parallel then
    let st = parallel_tail ~packet ~degree stream s in
    {
      label = Printf.sprintf "degree %d" degree;
      cost = (st.work /. float_of_int degree) +. st.ovh;
      cplan = st.plan;
    }
  else
    let st = serial_tail env stream s in
    { label = "serial"; cost = st.work; cplan = st.plan }

let allowed_degrees ~workers (s : B.select) steps =
  (* theta/cross steps have no partitioning key, and a pool of fewer
     than two workers has nothing to run partitions on: serial only *)
  if workers < 2 || List.exists (fun st -> st.pairs = []) steps then []
  else
    let parts =
      Array.to_list s.sources
      |> List.filter_map (fun (src : B.source) -> Option.map snd src.parts)
      |> List.sort_uniq compare
    in
    match parts with
    | [] -> List.sort_uniq compare (List.filter (fun d -> d >= 2) [ workers; 2 ])
    | [ p ] ->
        (* a sharded table must be scanned at exactly its partition
           count: the compiler maps group member r to partition file r *)
        if p >= 2 then [ p ] else []
    | _ :: _ :: _ -> []

let select_plan env ~workers ~allow_parallel (s : B.select) =
  let singles, multis, eff = split_conjuncts s in
  let order = order_sources s multis eff in
  let degrees =
    if allow_parallel then allowed_degrees ~workers s (snd order) else []
  in
  let cands =
    build env s order singles eff ~degree:1
    :: List.map (fun d -> build env s order singles eff ~degree:d) degrees
  in
  let cands = List.sort (fun a b -> compare a.cost b.cost) cands in
  let evaluated =
    List.map (fun c -> (c, Compile.analyze ~workers env c.cplan)) cands
  in
  let chosen =
    match List.find_opt (fun (_, diags) -> diags = []) evaluated with
    | Some hit -> hit
    | None ->
        let _, diags = List.nth evaluated (List.length evaluated - 1) in
        fail "no legal plan: even the serial candidate trips the analyzer \
              (%s)"
          (codes diags)
  in
  let notes =
    List.map
      (fun (c, diags) ->
        let status =
          if c == fst chosen then "chosen"
          else if diags <> [] then "pruned: " ^ codes diags
          else "not chosen (higher cost)"
        in
        Printf.sprintf "%-10s cost %12.0f  %s" c.label c.cost status)
      evaluated
  in
  { plan = (fst chosen).cplan; notes }

let rec plan_query env ~workers ~allow_parallel q =
  match q with
  | B.Q_select s -> select_plan env ~workers ~allow_parallel s
  | B.Q_union (a, b) -> (
      let ca = plan_query env ~workers ~allow_parallel a in
      let cb = plan_query env ~workers ~allow_parallel b in
      let plan = Plan.Union_all { left = ca.plan; right = cb.plan } in
      match Compile.analyze ~workers env plan with
      | [] -> { plan; notes = ca.notes @ cb.notes }
      | diags when allow_parallel ->
          (* arms that are legal alone can overcommit the scheduler
             together; prune the parallel choices, don't patch them *)
          let c = plan_query env ~workers ~allow_parallel:false q in
          {
            c with
            notes =
              c.notes
              @ [
                  Printf.sprintf "union arms serialized (combined plan: %s)"
                    (codes diags);
                ];
          }
      | diags -> fail "no legal plan for UNION ALL: %s" (codes diags))

let optimize ?workers env q =
  let workers =
    match workers with Some w -> w | None -> Env.sched_workers env
  in
  plan_query env ~workers ~allow_parallel:true q

let render env (c : choice) =
  Plan.explain env c.plan
  ^ "-- optimizer --\n"
  ^ String.concat "\n" c.notes
  ^ "\n"

let explain ?workers env q = render env (optimize ?workers env q)
