module Expr = Volcano_tuple.Expr
module Value = Volcano_tuple.Value
module Agg = Volcano_ops.Aggregate
module Support = Volcano_tuple.Support
module Shard = Volcano_storage.Shard
module Schema = Volcano_tuple.Schema
module Env = Volcano_plan.Env
module Heap_file = Volcano_storage.Heap_file
module W = Volcano_wisconsin.Wisconsin
module Ir = Volcano_analysis.Ir

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type kind =
  | K_table of string
  | K_range of int
  | K_wisconsin of { rows : int; seed : int64 option }

type source = {
  alias : string;
  kind : kind;
  schema : (string * Value.ty) array;
  rows : int;
  offset : int;
  parts : (Shard.spec * int) option;
}

type conjunct = {
  pred : Expr.pred;
  refs : int list;
  equi : (int * int) option;
  sel : float;
}

type shape =
  | Flat of Expr.num list
  | Grouped of { keys : int list; aggs : Agg.agg list; post : Expr.num list }

type select = {
  sources : source array;
  conjuncts : conjunct list;
  shape : shape;
  distinct : bool;
  order_by : (int * Support.direction) list;
  limit : int option;
  out_names : string list;
  out_tys : Value.ty list;
}

type query = Q_select of select | Q_union of query * query

let ty_name = function
  | Value.Tint -> "int"
  | Value.Tfloat -> "float"
  | Value.Tstr -> "string"

let schema_fields schema =
  Array.map
    (fun (f : Schema.field) -> (f.Schema.name, f.Schema.ty))
    (Schema.fields schema)

(* --- sources ---------------------------------------------------------- *)

let default_alias = function
  | Ast.Table { name; _ } -> name
  | Ast.Range _ -> "generate"
  | Ast.Wisconsin _ -> "wisconsin"

let bind_source env offset ref_ =
  let alias =
    match ref_ with
    | Ast.Table { alias; _ } | Ast.Range { alias; _ }
    | Ast.Wisconsin { alias; _ } ->
        Option.value alias ~default:(default_alias ref_)
  in
  match ref_ with
  | Ast.Table { name; _ } -> (
      match Env.table env name with
      | exception Not_found ->
          let known = List.sort compare (Env.table_names env) in
          fail "unknown table %S%s" name
            (if known = [] then ""
             else " (catalog: " ^ String.concat ", " known ^ ")")
      | file, schema ->
          let parts =
            match Shard.find (Env.catalog env) name with
            | Some entry -> Some (entry.Shard.spec, entry.Shard.parts)
            | None -> None
          in
          {
            alias;
            kind = K_table name;
            schema = schema_fields schema;
            rows = Heap_file.record_count file;
            offset;
            parts;
          })
  | Ast.Range { count; _ } ->
      if count < 0 then fail "generate(%d): negative count" count;
      {
        alias;
        kind = K_range count;
        schema = [| ("i", Value.Tint) |];
        rows = count;
        offset;
        parts = None;
      }
  | Ast.Wisconsin { rows; seed; _ } ->
      if rows < 0 then fail "wisconsin(%d): negative row count" rows;
      {
        alias;
        kind = K_wisconsin { rows; seed = Option.map Int64.of_int seed };
        schema = schema_fields W.schema;
        rows;
        offset;
        parts = None;
      }

(* --- name resolution -------------------------------------------------- *)

let resolver sources =
  let find_in src name =
    let found = ref None in
    Array.iteri
      (fun j (n, ty) ->
        if n = name && !found = None then found := Some (src.offset + j, ty))
      src.schema;
    !found
  in
  fun qualifier name ->
    match qualifier with
    | Some q -> (
        match Array.find_opt (fun s -> s.alias = q) sources with
        | None -> fail "unknown table alias %S in %s.%s" q q name
        | Some src -> (
            match find_in src name with
            | Some hit -> hit
            | None -> fail "no column %S in %s" name q))
    | None -> (
        let hits =
          Array.to_list sources |> List.filter_map (fun s -> find_in s name)
        in
        match hits with
        | [ hit ] -> hit
        | [] -> fail "unknown column %S" name
        | _ :: _ -> fail "ambiguous column %S (qualify it)" name)

(* --- scalar lowering -------------------------------------------------- *)

let numeric what = function
  | Value.Tint | Value.Tfloat -> ()
  | Value.Tstr -> fail "%s requires a numeric argument, got string" what

let join_ty a b =
  match (a, b) with
  | Value.Tfloat, _ | _, Value.Tfloat -> Value.Tfloat
  | _ -> Value.Tint

(* [lower_num] lowers a scalar expression; [agg] handles Agg nodes (the
   scalar contexts reject them, grouped select items map them to
   aggregate output slots). *)
let rec lower_num resolve ~agg e =
  match e with
  | Ast.Col (q, n) ->
      let g, ty = resolve q n in
      (Expr.Col g, ty)
  | Ast.Int n -> (Expr.Const (Value.Int n), Value.Tint)
  | Ast.Float f -> (Expr.Const (Value.Float f), Value.Tfloat)
  | Ast.Str s -> (Expr.Const (Value.Str s), Value.Tstr)
  | Ast.Neg a ->
      let e, ty = lower_num resolve ~agg a in
      numeric "unary minus" ty;
      (Expr.Neg e, ty)
  | Ast.Bin (op, a, b) ->
      let ea, ta = lower_num resolve ~agg a in
      let eb, tb = lower_num resolve ~agg b in
      numeric "arithmetic" ta;
      numeric "arithmetic" tb;
      let node =
        match op with
        | Ast.Add -> Expr.Add (ea, eb)
        | Ast.Sub -> Expr.Sub (ea, eb)
        | Ast.Mul -> Expr.Mul (ea, eb)
        | Ast.Div -> Expr.Div (ea, eb)
        | Ast.Mod ->
            if ta <> Value.Tint || tb <> Value.Tint then
              fail "%% requires integer arguments";
            Expr.Mod (ea, eb)
      in
      (node, join_ty ta tb)
  | Ast.Agg _ -> agg e
  | Ast.Cmp _ | Ast.And _ | Ast.Or _ | Ast.Not _ | Ast.Is_null _ ->
      fail "boolean expression %s where a value is expected"
        (Ast.expr_to_string e)

let no_aggs_here what e =
  ignore e;
  fail "aggregates are not allowed in %s" what

let rec lower_pred resolve ~what e =
  match e with
  | Ast.Cmp (op, a, b) ->
      let ea, ta = lower_num resolve ~agg:(no_aggs_here what) a in
      let eb, tb = lower_num resolve ~agg:(no_aggs_here what) b in
      (match (ta, tb) with
      | Value.Tstr, Value.Tstr -> ()
      | Value.Tstr, _ | _, Value.Tstr ->
          fail "cannot compare %s with %s in %s" (ty_name ta) (ty_name tb)
            (Ast.expr_to_string e)
      | _ -> ());
      let sel =
        match op with Expr.Eq -> 0.1 | Expr.Ne -> 0.9 | _ -> 0.3
      in
      (Expr.Cmp (op, ea, eb), sel)
  | Ast.And (a, b) ->
      let pa, sa = lower_pred resolve ~what a in
      let pb, sb = lower_pred resolve ~what b in
      (Expr.And (pa, pb), sa *. sb)
  | Ast.Or (a, b) ->
      let pa, sa = lower_pred resolve ~what a in
      let pb, sb = lower_pred resolve ~what b in
      (Expr.Or (pa, pb), sa +. sb -. (sa *. sb))
  | Ast.Not a ->
      let pa, sa = lower_pred resolve ~what a in
      (Expr.Not pa, 1.0 -. sa)
  | Ast.Is_null { neg; arg } ->
      let e, _ = lower_num resolve ~agg:(no_aggs_here what) arg in
      if neg then (Expr.Not (Expr.Is_null e), 0.95) else (Expr.Is_null e, 0.05)
  | _ -> fail "%s expects a boolean, got %s" what (Ast.expr_to_string e)

(* --- conjunct pool ---------------------------------------------------- *)

let rec split_and = function
  | Ast.And (a, b) -> split_and a @ split_and b
  | e -> [ e ]

let src_of_col sources g =
  let hit = ref (-1) in
  Array.iteri
    (fun i s ->
      if g >= s.offset && g < s.offset + Array.length s.schema then hit := i)
    sources;
  !hit

let conjunct sources resolve ~what e =
  let pred, sel = lower_pred resolve ~what e in
  let refs =
    List.sort_uniq compare
      (List.map (src_of_col sources) (Ir.cols_of_pred pred))
  in
  let equi =
    match pred with
    | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b)
      when src_of_col sources a <> src_of_col sources b ->
        Some (a, b)
    | _ -> None
  in
  { pred; refs; equi; sel }

(* --- select ----------------------------------------------------------- *)

let rec contains_agg = function
  | Ast.Agg _ -> true
  | Ast.Col _ | Ast.Int _ | Ast.Float _ | Ast.Str _ -> false
  | Ast.Neg a | Ast.Not a | Ast.Is_null { arg = a; _ } -> contains_agg a
  | Ast.Bin (_, a, b) | Ast.Cmp (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
      contains_agg a || contains_agg b

let item_name item =
  match item with
  | Ast.Sel { alias = Some a; _ } -> a
  | Ast.Sel { expr = Ast.Col (_, n); alias = None } -> n
  | Ast.Sel { expr; alias = None } -> Ast.expr_to_string expr
  | Ast.Star -> "*"

(* outputs: per output column, the defining AST (for ORDER BY structural
   matching), its name, its type. *)
type out_col = { o_ast : Ast.expr; o_name : string; o_ty : Value.ty }

let resolve_order_by outs items =
  let arity = List.length outs in
  let outs = Array.of_list outs in
  List.map
    (fun (e, dir) ->
      let pos =
        match e with
        | Ast.Int k ->
            if k < 1 || k > arity then
              fail "ORDER BY position %d out of range 1..%d" k arity;
            k - 1
        | _ -> (
            let by_name =
              match e with
              | Ast.Col (None, n) ->
                  let hits = ref [] in
                  Array.iteri
                    (fun i o -> if o.o_name = n then hits := i :: !hits)
                    outs;
                  (match !hits with
                  | [ i ] -> Some i
                  | [] -> None
                  | _ -> fail "ORDER BY %s is ambiguous" n)
              | _ -> None
            in
            match by_name with
            | Some i -> i
            | None -> (
                let structural = ref None in
                Array.iteri
                  (fun i o ->
                    if o.o_ast = e && !structural = None then
                      structural := Some i)
                  outs;
                match !structural with
                | Some i -> i
                | None ->
                    fail
                      "ORDER BY %s must name an output column (by alias, \
                       position, or the exact select expression)"
                      (Ast.expr_to_string e)))
      in
      (pos, dir))
    items

let bind_select env (s : Ast.select) : select =
  let refs = s.from :: List.map (fun j -> j.Ast.table) s.joins in
  let sources =
    let offset = ref 0 in
    Array.of_list
      (List.map
         (fun r ->
           let src = bind_source env !offset r in
           offset := !offset + Array.length src.schema;
           src)
         refs)
  in
  (let seen = Hashtbl.create 4 in
   Array.iter
     (fun src ->
       if Hashtbl.mem seen src.alias then
         fail "duplicate table alias %S (use AS to rename)" src.alias;
       Hashtbl.add seen src.alias ())
     sources);
  let resolve = resolver sources in
  let conjuncts =
    List.concat_map
      (fun (what, e) ->
        List.map (conjunct sources resolve ~what) (split_and e))
      (List.map (fun j -> ("ON", j.Ast.on)) s.joins
      @ match s.where with None -> [] | Some w -> [ ("WHERE", w) ])
  in
  let grouped =
    s.group_by <> []
    || List.exists
         (function Ast.Star -> false | Ast.Sel { expr; _ } -> contains_agg expr)
         s.items
  in
  let shape, outs =
    if not grouped then begin
      let outs =
        List.concat_map
          (function
            | Ast.Star ->
                Array.to_list sources
                |> List.concat_map (fun src ->
                       Array.to_list src.schema
                       |> List.map (fun (n, ty) ->
                              {
                                o_ast = Ast.Col (Some src.alias, n);
                                o_name = n;
                                o_ty = ty;
                              }))
            | Ast.Sel { expr; alias } ->
                let _, ty =
                  lower_num resolve ~agg:(no_aggs_here "a flat select") expr
                in
                [
                  {
                    o_ast = expr;
                    o_name =
                      Option.value alias
                        ~default:(item_name (Ast.Sel { expr; alias }));
                    o_ty = ty;
                  };
                ])
          s.items
      in
      let exprs =
        List.map
          (fun o -> fst (lower_num resolve ~agg:(no_aggs_here "select") o.o_ast))
          outs
      in
      (Flat exprs, outs)
    end
    else begin
      let keys =
        List.map
          (fun e ->
            match e with
            | Ast.Col (q, n) -> fst (resolve q n)
            | _ ->
                fail "GROUP BY takes bare columns, not %s"
                  (Ast.expr_to_string e))
          s.group_by
      in
      (match
         List.fold_left
           (fun seen k -> if List.mem k seen then raise Exit else k :: seen)
           [] keys
       with
      | _ -> ()
      | exception Exit -> fail "duplicate GROUP BY column");
      let k = List.length keys in
      let aggs = ref [] in
      let slot_of a =
        let rec go i = function
          | [] ->
              aggs := !aggs @ [ a ];
              i
          | hd :: _ when hd = a -> i
          | _ :: tl -> go (i + 1) tl
        in
        go 0 !aggs
      in
      let rec lower_g e =
        match e with
        | Ast.Agg (Ast.A_count, None) ->
            (Expr.Col (k + slot_of Agg.Count), Value.Tint)
        | Ast.Agg (Ast.A_count, Some _) ->
            fail "COUNT(expr) is not supported; use COUNT(*)"
        | Ast.Agg (fn, None) ->
            fail "%s requires an argument" (Ast.agg_str fn)
        | Ast.Agg (fn, Some arg) -> (
            let num, ty =
              lower_num resolve ~agg:(fun _ -> fail "aggregates cannot nest")
                arg
            in
            match fn with
            | Ast.A_count -> assert false
            | Ast.A_sum ->
                numeric "SUM" ty;
                (Expr.Col (k + slot_of (Agg.Sum num)), ty)
            | Ast.A_min -> (Expr.Col (k + slot_of (Agg.Min num)), ty)
            | Ast.A_max -> (Expr.Col (k + slot_of (Agg.Max num)), ty)
            | Ast.A_avg ->
                (* AVG decomposes to "SUM"/"COUNT(*)" here, once, so serial
                   and parallel plans agree bit-for-bit (integer
                   division for integer arguments). *)
                numeric "AVG" ty;
                let sum = slot_of (Agg.Sum num) in
                let cnt = slot_of Agg.Count in
                (Expr.Div (Expr.Col (k + sum), Expr.Col (k + cnt)), ty))
        | Ast.Col (q, n) -> (
            let g, ty = resolve q n in
            match List.mapi (fun i key -> (i, key)) keys
                  |> List.find_opt (fun (_, key) -> key = g)
            with
            | Some (i, _) -> (Expr.Col i, ty)
            | None ->
                fail
                  "column %s must appear in GROUP BY or inside an aggregate"
                  (Ast.expr_to_string e))
        | Ast.Int n -> (Expr.Const (Value.Int n), Value.Tint)
        | Ast.Float f -> (Expr.Const (Value.Float f), Value.Tfloat)
        | Ast.Str str -> (Expr.Const (Value.Str str), Value.Tstr)
        | Ast.Neg a ->
            let e, ty = lower_g a in
            numeric "unary minus" ty;
            (Expr.Neg e, ty)
        | Ast.Bin (op, a, b) ->
            let ea, ta = lower_g a in
            let eb, tb = lower_g b in
            numeric "arithmetic" ta;
            numeric "arithmetic" tb;
            let node =
              match op with
              | Ast.Add -> Expr.Add (ea, eb)
              | Ast.Sub -> Expr.Sub (ea, eb)
              | Ast.Mul -> Expr.Mul (ea, eb)
              | Ast.Div -> Expr.Div (ea, eb)
              | Ast.Mod ->
                  if ta <> Value.Tint || tb <> Value.Tint then
                    fail "%% requires integer arguments";
                  Expr.Mod (ea, eb)
            in
            (node, join_ty ta tb)
        | Ast.Cmp _ | Ast.And _ | Ast.Or _ | Ast.Not _ | Ast.Is_null _ ->
            fail "boolean expression %s where a value is expected"
              (Ast.expr_to_string e)
      in
      let outs =
        List.map
          (function
            | Ast.Star ->
                fail "SELECT * cannot be combined with GROUP BY or aggregates"
            | Ast.Sel { expr; alias } ->
                let post, ty = lower_g expr in
                ( post,
                  {
                    o_ast = expr;
                    o_name =
                      Option.value alias
                        ~default:(item_name (Ast.Sel { expr; alias }));
                    o_ty = ty;
                  } ))
          s.items
      in
      (Grouped { keys; aggs = !aggs; post = List.map fst outs },
       List.map snd outs)
    end
  in
  let order_by = resolve_order_by outs s.order_by in
  {
    sources;
    conjuncts;
    shape;
    distinct = s.distinct;
    order_by;
    limit = s.limit;
    out_names = List.map (fun o -> o.o_name) outs;
    out_tys = List.map (fun o -> o.o_ty) outs;
  }

let rec bind env = function
  | Ast.Select s -> Q_select (bind_select env s)
  | Ast.Union_all (a, b) ->
      let qa = bind env a and qb = bind env b in
      let rec tys = function
        | Q_select s -> s.out_tys
        | Q_union (l, _) -> tys l
      in
      let ta = tys qa and tb = tys qb in
      if List.length ta <> List.length tb then
        fail
          "UNION ALL requires union-compatible inputs; left has %d \
           column(s), right has %d"
          (List.length ta) (List.length tb);
      List.iteri
        (fun i (x, y) ->
          if x <> y then
            fail "UNION ALL column %d has type %s on the left and %s on \
                  the right"
              (i + 1) (ty_name x) (ty_name y))
        (List.combine ta tb);
      Q_union (qa, qb)
