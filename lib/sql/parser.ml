module E = Volcano_tuple.Expr
module Support = Volcano_tuple.Support

exception Error of string

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let pos_of st = snd st.toks.(st.pos)

let fail st fmt =
  Printf.ksprintf
    (fun m ->
      raise
        (Error
           (Printf.sprintf "%s (found %s at %d)" m
              (Lexer.token_to_string (peek st))
              (pos_of st))))
    fmt

let advance st = st.pos <- st.pos + 1

let eat_kw st kw =
  match peek st with
  | Lexer.Kw k when k = kw -> advance st
  | _ -> fail st "expected %s" (String.uppercase_ascii kw)

let eat_sym st sym =
  match peek st with
  | Lexer.Sym s when s = sym -> advance st
  | _ -> fail st "expected %S" sym

let try_kw st kw =
  match peek st with
  | Lexer.Kw k when k = kw ->
      advance st;
      true
  | _ -> false

let try_sym st sym =
  match peek st with
  | Lexer.Sym s when s = sym ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.Ident name ->
      advance st;
      name
  | _ -> fail st "expected an identifier"

let int_lit st =
  match peek st with
  | Lexer.Int_lit n ->
      advance st;
      n
  | _ -> fail st "expected an integer"

(* --- expressions ------------------------------------------------------ *)

let agg_of_kw = function
  | "count" -> Some Ast.A_count
  | "sum" -> Some Ast.A_sum
  | "min" -> Some Ast.A_min
  | "max" -> Some Ast.A_max
  | "avg" -> Some Ast.A_avg
  | _ -> None

let rec parse_or st =
  let a = parse_and st in
  if try_kw st "or" then Ast.Or (a, parse_or st) else a

and parse_and st =
  let a = parse_not st in
  if try_kw st "and" then Ast.And (a, parse_and st) else a

and parse_not st =
  if try_kw st "not" then Ast.Not (parse_not st) else parse_cmp st

and parse_cmp st =
  let a = parse_add st in
  match peek st with
  | Lexer.Sym "=" ->
      advance st;
      Ast.Cmp (E.Eq, a, parse_add st)
  | Lexer.Sym "<>" ->
      advance st;
      Ast.Cmp (E.Ne, a, parse_add st)
  | Lexer.Sym "<" ->
      advance st;
      Ast.Cmp (E.Lt, a, parse_add st)
  | Lexer.Sym "<=" ->
      advance st;
      Ast.Cmp (E.Le, a, parse_add st)
  | Lexer.Sym ">" ->
      advance st;
      Ast.Cmp (E.Gt, a, parse_add st)
  | Lexer.Sym ">=" ->
      advance st;
      Ast.Cmp (E.Ge, a, parse_add st)
  | Lexer.Kw "is" ->
      advance st;
      let neg = try_kw st "not" in
      eat_kw st "null";
      Ast.Is_null { neg; arg = a }
  | _ -> a

and parse_add st =
  let rec loop a =
    if try_sym st "+" then loop (Ast.Bin (Ast.Add, a, parse_mul st))
    else if try_sym st "-" then loop (Ast.Bin (Ast.Sub, a, parse_mul st))
    else a
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop a =
    if try_sym st "*" then loop (Ast.Bin (Ast.Mul, a, parse_unary st))
    else if try_sym st "/" then loop (Ast.Bin (Ast.Div, a, parse_unary st))
    else if try_sym st "%" then loop (Ast.Bin (Ast.Mod, a, parse_unary st))
    else a
  in
  loop (parse_unary st)

and parse_unary st =
  if try_sym st "-" then Ast.Neg (parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.Int_lit n ->
      advance st;
      Ast.Int n
  | Lexer.Float_lit f ->
      advance st;
      Ast.Float f
  | Lexer.Str_lit s ->
      advance st;
      Ast.Str s
  | Lexer.Sym "(" ->
      advance st;
      let e = parse_or st in
      eat_sym st ")";
      e
  | Lexer.Kw kw when agg_of_kw kw <> None ->
      advance st;
      let fn = Option.get (agg_of_kw kw) in
      eat_sym st "(";
      let arg =
        if try_sym st "*" then None else Some (parse_or st)
      in
      eat_sym st ")";
      Ast.Agg (fn, arg)
  | Lexer.Ident name ->
      advance st;
      if try_sym st "." then Ast.Col (Some name, ident st)
      else Ast.Col (None, name)
  | _ -> fail st "expected an expression"

(* --- clauses ---------------------------------------------------------- *)

let parse_alias st =
  if try_kw st "as" then Some (ident st)
  else
    match peek st with
    | Lexer.Ident name ->
        advance st;
        Some name
    | _ -> None

let parse_table_ref st =
  let name = ident st in
  if try_sym st "(" then begin
    let args =
      let first = int_lit st in
      if try_sym st "," then [ first; int_lit st ] else [ first ]
    in
    eat_sym st ")";
    let alias = parse_alias st in
    match (name, args) with
    | "generate", [ count ] -> Ast.Range { count; alias }
    | "wisconsin", [ rows ] -> Ast.Wisconsin { rows; seed = None; alias }
    | "wisconsin", [ rows; seed ] ->
        Ast.Wisconsin { rows; seed = Some seed; alias }
    | _ ->
        raise
          (Error
             (Printf.sprintf
                "unknown table function %s/%d (generate(n) or \
                 wisconsin(n[, seed]))"
                name (List.length args)))
  end
  else Ast.Table { name; alias = parse_alias st }

let parse_sel_items st =
  if try_sym st "*" then [ Ast.Star ]
  else
    let item () =
      let expr = parse_or st in
      Ast.Sel { expr; alias = parse_alias st }
    in
    let rec loop acc = if try_sym st "," then loop (item () :: acc) else acc in
    List.rev (loop [ item () ])

let parse_order_item st =
  let e = parse_or st in
  let dir =
    if try_kw st "desc" then Support.Desc
    else begin
      ignore (try_kw st "asc");
      Support.Asc
    end
  in
  (e, dir)

let rec comma_list st f =
  let first = f st in
  if try_sym st "," then first :: comma_list st f else [ first ]

let parse_select st =
  eat_kw st "select";
  let distinct = try_kw st "distinct" in
  let items = parse_sel_items st in
  eat_kw st "from";
  let from = parse_table_ref st in
  let joins = ref [] in
  let rec joins_loop () =
    let j =
      if try_kw st "inner" then begin
        eat_kw st "join";
        true
      end
      else try_kw st "join"
    in
    if j then begin
      let table = parse_table_ref st in
      eat_kw st "on";
      let on = parse_or st in
      joins := { Ast.table; on } :: !joins;
      joins_loop ()
    end
  in
  joins_loop ();
  let where = if try_kw st "where" then Some (parse_or st) else None in
  let group_by =
    if try_kw st "group" then begin
      eat_kw st "by";
      comma_list st parse_or
    end
    else []
  in
  let order_by =
    if try_kw st "order" then begin
      eat_kw st "by";
      comma_list st parse_order_item
    end
    else []
  in
  let limit =
    if try_kw st "limit" then begin
      let n = int_lit st in
      if n < 0 then fail st "LIMIT must be non-negative";
      Some n
    end
    else None
  in
  Ast.Select
    {
      distinct;
      items;
      from;
      joins = List.rev !joins;
      where;
      group_by;
      order_by;
      limit;
    }

let parse src =
  let st = { toks = Lexer.tokens src; pos = 0 } in
  let rec unions acc =
    if try_kw st "union" then begin
      eat_kw st "all";
      unions (Ast.Union_all (acc, parse_select st))
    end
    else acc
  in
  let q = unions (parse_select st) in
  (match peek st with
  | Lexer.Sym ";" -> advance st
  | _ -> ());
  (match peek st with
  | Lexer.Eof -> ()
  | _ -> fail st "trailing input after query");
  q
