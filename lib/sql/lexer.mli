(** Hand-written SQL lexer.

    Keywords are case-insensitive; bare identifiers fold to lowercase
    and double-quoted identifiers preserve case (and are never
    keywords).  String literals use single quotes with [''] escaping.
    Numbers are decimal integers or floats (optional fraction and
    exponent). *)

exception Error of string
(** Lexical error, with a character position in the message. *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Kw of string  (** canonical lowercase keyword, from {!Ast.keywords} *)
  | Sym of string  (** one of ( ) , . * + - / % = <> < <= > >= *)
  | Eof

val token_to_string : token -> string
(** For error messages: ["keyword FROM"], ["identifier \"x\""], ... *)

val tokens : string -> (token * int) array
(** Tokenize a whole query; the [int] is the byte offset of the token.
    The final element is always [(Eof, _)].  @raise Error on a character
    or literal the lexer cannot interpret. *)
