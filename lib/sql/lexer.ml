exception Error of string

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Kw of string
  | Sym of string
  | Eof

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit n -> Printf.sprintf "integer %d" n
  | Float_lit f -> Printf.sprintf "float %g" f
  | Str_lit s -> Printf.sprintf "string %S" s
  | Kw k -> "keyword " ^ String.uppercase_ascii k
  | Sym s -> Printf.sprintf "%S" s
  | Eof -> "end of input"

let fail pos fmt =
  Printf.ksprintf (fun m -> raise (Error (Printf.sprintf "%s at %d" m pos))) fmt

let is_ident_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let tokens src =
  let n = String.length src in
  let out = ref [] in
  let emit tok pos = out := (tok, pos) :: !out in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let c = src.[start] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.lowercase_ascii (String.sub src start (!i - start)) in
      if List.mem word Ast.keywords then emit (Kw word) start
      else emit (Ident word) start
    end
    else if is_digit c then begin
      while !i < n && is_digit src.[!i] do incr i done;
      let is_float = ref false in
      if !i + 1 < n && src.[!i] = '.' && is_digit src.[!i + 1] then begin
        is_float := true;
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        let j = if !i + 1 < n && (src.[!i + 1] = '+' || src.[!i + 1] = '-')
                then !i + 2 else !i + 1 in
        if j < n && is_digit src.[j] then begin
          is_float := true;
          i := j;
          while !i < n && is_digit src.[!i] do incr i done
        end
      end;
      let text = String.sub src start (!i - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> emit (Float_lit f) start
        | None -> fail start "bad numeric literal %S" text
      else
        match int_of_string_opt text with
        | Some v -> emit (Int_lit v) start
        | None -> fail start "integer literal %S out of range" text
    end
    else if c = '\'' then begin
      (* string literal; '' is an escaped quote *)
      let b = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then fail start "unterminated string literal"
        else if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char b '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char b src.[!i];
          incr i
        end
      done;
      emit (Str_lit (Buffer.contents b)) start
    end
    else if c = '"' then begin
      (* quoted identifier: case-preserving, never a keyword *)
      incr i;
      let s = !i in
      while !i < n && src.[!i] <> '"' do incr i done;
      if !i >= n then fail start "unterminated quoted identifier";
      let name = String.sub src s (!i - s) in
      incr i;
      if name = "" then fail start "empty quoted identifier";
      emit (Ident name) start
    end
    else begin
      let two =
        if start + 1 < n then String.sub src start 2 else ""
      in
      match two with
      | "<>" | "<=" | ">=" ->
          emit (Sym two) start;
          i := start + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '%' | '=' | '<'
          | '>' | ';' ->
              emit (Sym (String.make 1 c)) start;
              incr i
          | _ -> fail start "unexpected character %C" c)
    end
  done;
  emit Eof n;
  Array.of_list (List.rev !out)
