(** Recursive-descent parser for the SQL subset (grammar in {!Ast}).

    Operator precedence, loosest first: [OR] < [AND] < [NOT] <
    comparison / [IS NULL] < [+ -] < [* / %] < unary minus. *)

exception Error of string

val parse : string -> Ast.query
(** Parse a complete query (trailing [;] tolerated).
    @raise Error on a syntax error (also re-raised for lexical errors),
    with a character position in the message. *)
