(** Name resolution and typechecking: {!Ast.query} against the
    environment's catalog, into a typed logical form the optimizer
    consumes.

    Columns get {e global} identifiers: source [i]'s column [j] is
    [sources.(i).offset + j], numbering the concatenation of all FROM
    sources in syntactic order.  Predicates are split into a flat
    conjunct pool (WHERE and every JOIN .. ON together — inner joins
    only, so the pools are equivalent); each conjunct records which
    sources it touches and whether it is a two-source equality the
    optimizer can turn into a join key.

    Pragmatic restrictions (each one a reported error, not silent
    misbehaviour): GROUP BY takes bare columns only; a non-aggregated
    select item in a grouped query must be one of the group columns;
    ["COUNT(expr)"] is rejected (use ["COUNT(*)"]); aggregates cannot nest
    and cannot appear in WHERE or ON; [AVG] is decomposed here into
    [SUM]/["COUNT(*)"] plus a division in [post] — so every plan the
    optimizer emits computes AVG the same way, serial or parallel
    (integer division for integer arguments). *)

module Expr = Volcano_tuple.Expr
module Value = Volcano_tuple.Value
module Agg = Volcano_ops.Aggregate
module Support = Volcano_tuple.Support
module Shard = Volcano_storage.Shard

exception Error of string

type kind =
  | K_table of string
  | K_range of int  (** [generate(n)]: one column [i : Tint] *)
  | K_wisconsin of { rows : int; seed : int64 option }

type source = {
  alias : string;
  kind : kind;
  schema : (string * Value.ty) array;
  rows : int;  (** catalog cardinality (exact for every source kind) *)
  offset : int;  (** global id of this source's column 0 *)
  parts : (Shard.spec * int) option;
      (** partitioned storage: spec and partition count, when the
          catalog says the table is sharded *)
}

type conjunct = {
  pred : Expr.pred;  (** over global column ids *)
  refs : int list;  (** sorted source indexes the predicate touches *)
  equi : (int * int) option;
      (** [Some (a, b)] when the predicate is exactly an equality
          between single columns of two different sources *)
  sel : float;  (** selectivity estimate in [0, 1] *)
}

type shape =
  | Flat of Expr.num list  (** output expressions over global ids *)
  | Grouped of {
      keys : int list;  (** group-by columns, global ids *)
      aggs : Agg.agg list;  (** deduplicated, over global ids; never Avg *)
      post : Expr.num list;
          (** output expressions over the aggregate's [keys @ aggs]
              output layout *)
    }

type select = {
  sources : source array;
  conjuncts : conjunct list;
  shape : shape;
  distinct : bool;
  order_by : (int * Support.direction) list;  (** output positions *)
  limit : int option;
  out_names : string list;
  out_tys : Value.ty list;
}

type query = Q_select of select | Q_union of query * query

val bind : Volcano_plan.Env.t -> Ast.query -> query
(** @raise Error on any resolution or typing failure. *)
