(** The SQL front end, rolled up: parse, bind, optimize, install.

    The pipeline is {!Lexer}/{!Parser} (text to {!Ast.query}),
    {!Binder} (names and types against the catalog, aggregates
    decomposed, AVG lowered to SUM/COUNT), and {!Optimizer} (cost-based
    join order, algorithm choice, and per-edge exchange placement, with
    the analyzer as legality oracle).  This module composes them and
    funnels every stage's failure into one {!Error} so callers handle a
    single exception.

    {!install} registers the pipeline as the process-wide
    {!Volcano_plan.Session.set_frontend}, after which
    [Session.query s "SELECT ..."] works.  The call is explicit because
    OCaml links nothing from a library that is never referenced —
    a program that wants SQL must say so once. *)

exception Error of string
(** Any front-end failure — lexing, parsing, binding, or optimization —
    with a human-readable message. *)

val parse : string -> Ast.query
(** Text to AST.  @raise Error on lexical or syntax errors. *)

val print : Ast.query -> string
(** Canonical rendering; [print (parse (print q)) = print q]. *)

val bind : Volcano_plan.Env.t -> Ast.query -> Binder.query
(** Resolve and typecheck against the environment's catalog.
    @raise Error on unknown tables/columns, type clashes, or malformed
    aggregation. *)

val plan :
  ?workers:int -> Volcano_plan.Env.t -> string -> Optimizer.choice
(** The whole pipeline: parse, bind, optimize.  The resulting plan
    passes {!Volcano_plan.Compile.analyze} with zero diagnostics.
    @raise Error on any front-end failure. *)

val explain : ?workers:int -> Volcano_plan.Env.t -> string -> string
(** The chosen plan's operator tree plus the optimizer's notes. *)

val install : unit -> unit
(** Register this front end with {!Volcano_plan.Session.set_frontend}
    (idempotent), enabling [Session.query] / [Session.explain] and
    [`Sql] inputs everywhere. *)
