type predicate = Tuple.t -> bool
type comparator = Tuple.t -> Tuple.t -> int
type hash_fn = Tuple.t -> int
type key_fn = Tuple.t -> Tuple.t

type direction = Asc | Desc
type sort_key = (int * direction) list

let compare_on key a b =
  let rec columns = function
    | [] -> 0
    | (i, dir) :: rest ->
        let c = Value.compare a.(i) b.(i) in
        let c = match dir with Asc -> c | Desc -> -c in
        if c <> 0 then c else columns rest
  in
  columns key

let compare_cols cols = compare_on (List.map (fun i -> (i, Asc)) cols)

let equal_on cols a b =
  List.for_all (fun i -> Value.equal a.(i) b.(i)) cols

let hash_on cols tuple =
  (* The 31x mixing step can overflow into the sign bit; partitioning needs
     a non-negative result. *)
  List.fold_left (fun acc i -> (acc * 31) + Value.hash tuple.(i)) 17 cols
  land max_int

let key_on cols tuple = Tuple.project tuple cols

let of_pred p = Expr.Compiled.pred p
let of_pred_interpreted p tuple = Expr.Interp.pred p tuple

(* Emit-style batch stages: a stage takes the downstream emit function and
   returns its own.  Composing a chain yields ONE function applied per
   record inside a batch fill loop — no per-stage iterator protocol, no
   option allocation per hop. *)
module Stage = struct
  type emit = Tuple.t -> unit
  type t = emit -> emit

  let filter pred k tuple = if pred tuple then k tuple
  let map f k tuple = k (f tuple)
  let project_cols cols = map (fun tuple -> Tuple.project tuple cols)

  let project_exprs es =
    let compiled = Array.of_list (List.map Expr.Compiled.num es) in
    map (fun tuple -> Array.map (fun f -> f tuple) compiled)

  let tap f k tuple =
    f tuple;
    k tuple

  let compose stages emit = List.fold_right (fun stage k -> stage k) stages emit
end

module Partition = struct
  type t = unit -> Tuple.t -> int

  let round_robin ~consumers () =
    assert (consumers > 0);
    let next = ref 0 in
    fun _tuple ->
      let c = !next in
      (* wrap by compare, not [mod]: this runs once per record *)
      next := (if c + 1 = consumers then 0 else c + 1);
      c

  let hash ~consumers ~on () =
    assert (consumers > 0);
    let h = hash_on on in
    fun tuple -> h tuple mod consumers

  let range ~consumers ~on ~bounds () =
    assert (Array.length bounds = consumers - 1);
    fun tuple ->
      let key = tuple.(on) in
      let rec search i =
        if i >= Array.length bounds then consumers - 1
        else if Value.compare key bounds.(i) <= 0 then i
        else search (i + 1)
      in
      search 0

  let constant c () _tuple = c
end
