type t = Value.t array

let make values = Array.of_list values
let arity = Array.length
let get t i = t.(i)
let int_exn t i = Value.int_exn t.(i)
let float_exn t i = Value.float_exn t.(i)
let str_exn t i = Value.str_exn t.(i)
(* Both sit on per-record paths (generators, key extraction); building
   the array directly skips the intermediate mapped list. *)
let of_ints = function
  | [] -> [||]
  | x :: _ as xs ->
      let a = Array.make (List.length xs) (Value.Int x) in
      List.iteri (fun i x -> a.(i) <- Value.Int x) xs;
      a

let concat = Array.append

let project t indices =
  match indices with
  | [] -> [||]
  | i :: _ as indices ->
      let a = Array.make (List.length indices) t.(i) in
      List.iteri (fun k i -> a.(k) <- t.(i)) indices;
      a

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec fields i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else fields (i + 1)
  in
  fields 0

let equal a b = compare a b = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let pp ppf t =
  Format.fprintf ppf "[";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf "; ";
      Value.pp ppf v)
    t;
  Format.fprintf ppf "]"

let to_string t = Format.asprintf "%a" pp t
