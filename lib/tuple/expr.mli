(** A small expression and predicate language over tuples.

    The paper's support functions come in two flavours (section 3): compiled
    (a machine-code function plus a constant argument) and interpreted (an
    interpreter plus a code argument).  We mirror both: {!Interp} walks the
    AST per tuple; {!Compiled} translates the AST into nested closures once,
    ahead of execution.  The two must agree — a property the test suite
    checks exhaustively. *)

(** Scalar expressions. *)
type num =
  | Col of int  (** field by position *)
  | Const of Value.t
  | Add of num * num
  | Sub of num * num
  | Mul of num * num
  | Div of num * num
  | Neg of num
  | Mod of num * num

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

(** Predicates. *)
type pred =
  | True
  | False
  | Cmp of cmp_op * num * num
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Is_null of num
  | Str_prefix of string * num  (** string field starts with constant *)

val col : int -> num
val int : int -> num
val str : string -> num
val not_ : pred -> pred

(** Builder notation, meant to be opened locally:
    [Expr.Infix.(col 0 < int 10 && col 1 = str "x")]. *)
module Infix : sig
  val ( + ) : num -> num -> num
  val ( - ) : num -> num -> num
  val ( * ) : num -> num -> num
  val ( = ) : num -> num -> pred
  val ( <> ) : num -> num -> pred
  val ( < ) : num -> num -> pred
  val ( <= ) : num -> num -> pred
  val ( > ) : num -> num -> pred
  val ( >= ) : num -> num -> pred
  val ( && ) : pred -> pred -> pred
  val ( || ) : pred -> pred -> pred
end

module Interp : sig
  val num : num -> Tuple.t -> Value.t
  val pred : pred -> Tuple.t -> bool
end

module Compiled : sig
  val num : num -> Tuple.t -> Value.t
  (** [num e] performs the translation when partially applied; the returned
      closure does no AST traversal.  Integer-only expressions get an
      unboxed fast path spliced in front of the generic closure. *)

  val pred : pred -> Tuple.t -> bool

  exception Fallback
  (** Raised by a {!num_int} closure for a record that needs the generic
      semantics: a non-int field, or division by zero (Null in the
      generic evaluator). *)

  val num_int : num -> (Tuple.t -> int) option
  (** The unboxed kernel for an integer-only expression: computes in
      native ints with no allocation, raising {!Fallback} on the records
      it cannot handle.  [None] when the expression is statically not
      integer-only.  Callers must pair it with {!num} for the fallback. *)
end

val subst : (int -> num) -> num -> num
(** [subst bind e] replaces every [Col i] by [bind i] — composition of
    [e] through a projection.  Expression evaluation is total, so the
    substituted expression evaluates on the projection's input exactly
    as [e] evaluates on its output. *)

val pp_num : Format.formatter -> num -> unit
val pp_pred : Format.formatter -> pred -> unit
