(** Support functions.

    In Volcano "all functions on data records, e.g., comparisons and hashing
    ... are compiled prior to execution and passed to the processing
    algorithms by means of pointers to the function entry points" (section
    3).  In OCaml the function pointers are closures.  Operators only ever
    see these opaque function values, never tuple structure. *)

type predicate = Tuple.t -> bool
type comparator = Tuple.t -> Tuple.t -> int
type hash_fn = Tuple.t -> int
type key_fn = Tuple.t -> Tuple.t

type direction = Asc | Desc
type sort_key = (int * direction) list

val compare_on : sort_key -> comparator
(** Lexicographic comparison on the given columns and directions. *)

val compare_cols : int list -> comparator
(** [compare_on] with every column ascending. *)

val equal_on : int list -> Tuple.t -> Tuple.t -> bool
val hash_on : int list -> hash_fn
val key_on : int list -> key_fn

val of_pred : Expr.pred -> predicate
(** Compiled-mode predicate (closure translation of the AST). *)

val of_pred_interpreted : Expr.pred -> predicate
(** Interpreted-mode predicate (AST walked per tuple). *)

(** Batch accessors: emit-style record stages for the vectorized path.  A
    stage takes the downstream emit function and returns its own, so a
    fused chain composes to a single function applied per record inside a
    batch fill loop — one closure call per stage, no option allocation,
    no per-stage iterator protocol.  Every stage emits at most one record
    per input record (the batch fill loop relies on this to bound packet
    growth). *)
module Stage : sig
  type emit = Tuple.t -> unit
  type t = emit -> emit

  val filter : predicate -> t
  val map : (Tuple.t -> Tuple.t) -> t
  val project_cols : int list -> t
  val project_exprs : Expr.num list -> t

  val tap : (Tuple.t -> unit) -> t
  (** Pass records through unchanged, calling [f] on each — row counting
      and fault injection for the fused path. *)

  val compose : t list -> t
  (** Stages listed source-to-sink; the first stage sees input records
      first. *)
end

(** Partitioning support functions for the exchange operator (section 4.2:
    "round-robin-, key-range-, or hash-partitioning"). *)
module Partition : sig
  type t = unit -> Tuple.t -> int
  (** A partitioning-function factory: each producer process instantiates its
      own (possibly stateful, as for round-robin) partitioner mapping a tuple
      to a consumer index in [\[0, consumers)]. *)

  val round_robin : consumers:int -> t
  val hash : consumers:int -> on:int list -> t

  val range : consumers:int -> on:int -> bounds:Value.t array -> t
  (** [bounds] are [consumers - 1] ascending split points; a tuple goes to
      the first partition whose bound its key does not exceed. *)

  val constant : int -> t
end
