type num =
  | Col of int
  | Const of Value.t
  | Add of num * num
  | Sub of num * num
  | Mul of num * num
  | Div of num * num
  | Neg of num
  | Mod of num * num

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | True
  | False
  | Cmp of cmp_op * num * num
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Is_null of num
  | Str_prefix of string * num

let col i = Col i
let int x = Const (Value.Int x)
let str s = Const (Value.Str s)
let not_ p = Not p

module Infix = struct
  let ( + ) a b = Add (a, b)
  let ( - ) a b = Sub (a, b)
  let ( * ) a b = Mul (a, b)
  let ( = ) a b = Cmp (Eq, a, b)
  let ( <> ) a b = Cmp (Ne, a, b)
  let ( < ) a b = Cmp (Lt, a, b)
  let ( <= ) a b = Cmp (Le, a, b)
  let ( > ) a b = Cmp (Gt, a, b)
  let ( >= ) a b = Cmp (Ge, a, b)
  let ( && ) a b = And (a, b)
  let ( || ) a b = Or (a, b)
end

(* Arithmetic with numeric promotion: int op int stays int (division by zero
   yields Null rather than raising, so that malformed data cannot abort a
   query pipeline); anything involving a float is float; Null propagates. *)
let arith int_op float_op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> int_op x y
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
      Value.Float (float_op (Value.float_exn a) (Value.float_exn b))
  | _ -> Value.Null

let add = arith (fun x y -> Value.Int (Stdlib.( + ) x y)) Stdlib.( +. )
let sub = arith (fun x y -> Value.Int (Stdlib.( - ) x y)) Stdlib.( -. )
let mul = arith (fun x y -> Value.Int (Stdlib.( * ) x y)) Stdlib.( *. )

let div =
  arith
    (fun x y -> if Stdlib.( = ) y 0 then Value.Null else Value.Int (Stdlib.( / ) x y))
    (fun x y -> Stdlib.( /. ) x y)

let rem =
  arith
    (fun x y -> if Stdlib.( = ) y 0 then Value.Null else Value.Int (Stdlib.(mod) x y))
    Float.rem

let neg = function
  | Value.Int x -> Value.Int (Stdlib.( - ) 0 x)
  | Value.Float x -> Value.Float (Stdlib.( -. ) 0.0 x)
  | _ -> Value.Null

let cmp_holds op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> false
  | _ ->
      let c = Value.compare a b in
      (match op with
      | Eq -> Stdlib.( = ) c 0
      | Ne -> Stdlib.( <> ) c 0
      | Lt -> Stdlib.( < ) c 0
      | Le -> Stdlib.( <= ) c 0
      | Gt -> Stdlib.( > ) c 0
      | Ge -> Stdlib.( >= ) c 0)

module Interp = struct
  let rec num e tuple =
    match e with
    | Col i -> tuple.(i)
    | Const v -> v
    | Add (a, b) -> add (num a tuple) (num b tuple)
    | Sub (a, b) -> sub (num a tuple) (num b tuple)
    | Mul (a, b) -> mul (num a tuple) (num b tuple)
    | Div (a, b) -> div (num a tuple) (num b tuple)
    | Mod (a, b) -> rem (num a tuple) (num b tuple)
    | Neg a -> neg (num a tuple)

  let rec pred p tuple =
    match p with
    | True -> true
    | False -> false
    | Cmp (op, a, b) -> cmp_holds op (num a tuple) (num b tuple)
    | And (a, b) -> pred a tuple && pred b tuple
    | Or (a, b) -> pred a tuple || pred b tuple
    | Not a -> not (pred a tuple)
    | Is_null a -> (match num a tuple with Value.Null -> true | _ -> false)
    | Str_prefix (prefix, a) -> (
        match num a tuple with
        | Value.Str s ->
            String.length s >= String.length prefix
            && String.equal (String.sub s 0 (String.length prefix)) prefix
        | _ -> false)
end

module Compiled = struct
  (* Translate the AST into closures once; the result never revisits it. *)
  let rec num_gen e =
    match e with
    | Col i -> fun tuple -> tuple.(i)
    | Const v -> fun _ -> v
    | Add (a, b) ->
        let fa = num_gen a and fb = num_gen b in
        fun tuple -> add (fa tuple) (fb tuple)
    | Sub (a, b) ->
        let fa = num_gen a and fb = num_gen b in
        fun tuple -> sub (fa tuple) (fb tuple)
    | Mul (a, b) ->
        let fa = num_gen a and fb = num_gen b in
        fun tuple -> mul (fa tuple) (fb tuple)
    | Div (a, b) ->
        let fa = num_gen a and fb = num_gen b in
        fun tuple -> div (fa tuple) (fb tuple)
    | Mod (a, b) ->
        let fa = num_gen a and fb = num_gen b in
        fun tuple -> rem (fa tuple) (fb tuple)
    | Neg a ->
        let fa = num_gen a in
        fun tuple -> neg (fa tuple)

  let rec pred_gen p =
    match p with
    | True -> fun _ -> true
    | False -> fun _ -> false
    | Cmp (op, a, b) ->
        let fa = num_gen a and fb = num_gen b in
        fun tuple -> cmp_holds op (fa tuple) (fb tuple)
    | And (a, b) ->
        let fa = pred_gen a and fb = pred_gen b in
        fun tuple -> fa tuple && fb tuple
    | Or (a, b) ->
        let fa = pred_gen a and fb = pred_gen b in
        fun tuple -> fa tuple || fb tuple
    | Not a ->
        let fa = pred_gen a in
        fun tuple -> not (fa tuple)
    | Is_null a ->
        let fa = num_gen a in
        fun tuple -> (match fa tuple with Value.Null -> true | _ -> false)
    | Str_prefix (prefix, a) ->
        let fa = num_gen a in
        let plen = String.length prefix in
        fun tuple ->
          (match fa tuple with
          | Value.Str s ->
              String.length s >= plen && String.equal (String.sub s 0 plen) prefix
          | _ -> false)

  (* Unboxed integer fast path.  An integer-only expression compiles to a
     closure computing in native ints — no intermediate [Value] boxes, no
     generic compare.  The closure raises [Fallback] for the odd record
     needing the generic semantics (a non-int field, division by zero →
     Null, Null propagation); callers pair it with the generic closure.
     Compilation returns [None] when the expression is statically not
     integer-only (a float/string constant, a string predicate). *)
  exception Fallback

  (* The int in column [i], or the generic path. *)
  let ix tuple i =
    match tuple.(i) with Value.Int x -> x | _ -> raise Fallback

  (* The ubiquitous operand shapes — [col op col], [col op const] — are
     flattened into a single closure; constants fold at compile time
     (including a divisor's zero check).  A scan-heavy plan evaluates
     these once per record, so every saved closure hop shows up
     directly in throughput. *)
  let rec num_int e =
    let bin a b op =
      match (num_int a, num_int b) with
      | Some fa, Some fb -> Some (fun tuple -> op (fa tuple) (fb tuple))
      | _ -> None
    in
    match e with
    | Col i -> Some (fun tuple -> ix tuple i)
    | Const (Value.Int x) -> Some (fun _ -> x)
    | Const _ -> None
    | Add (Col i, Col j) -> Some (fun t -> Stdlib.( + ) (ix t i) (ix t j))
    | Add (Col i, Const (Value.Int k)) -> Some (fun t -> Stdlib.( + ) (ix t i) k)
    | Add (Const (Value.Int k), Col j) -> Some (fun t -> Stdlib.( + ) k (ix t j))
    | Add (a, Const (Value.Int k)) ->
        Option.map (fun fa t -> Stdlib.( + ) (fa t) k) (num_int a)
    | Add (Const (Value.Int k), b) ->
        Option.map (fun fb t -> Stdlib.( + ) k (fb t)) (num_int b)
    | Add (a, b) -> bin a b Stdlib.( + )
    | Sub (Col i, Col j) -> Some (fun t -> Stdlib.( - ) (ix t i) (ix t j))
    | Sub (Col i, Const (Value.Int k)) -> Some (fun t -> Stdlib.( - ) (ix t i) k)
    | Sub (Const (Value.Int k), Col j) -> Some (fun t -> Stdlib.( - ) k (ix t j))
    | Sub (a, Const (Value.Int k)) ->
        Option.map (fun fa t -> Stdlib.( - ) (fa t) k) (num_int a)
    | Sub (Const (Value.Int k), b) ->
        Option.map (fun fb t -> Stdlib.( - ) k (fb t)) (num_int b)
    | Sub (a, b) -> bin a b Stdlib.( - )
    | Mul (Col i, Col j) -> Some (fun t -> Stdlib.( * ) (ix t i) (ix t j))
    | Mul (Col i, Const (Value.Int k)) -> Some (fun t -> Stdlib.( * ) (ix t i) k)
    | Mul (Const (Value.Int k), Col j) -> Some (fun t -> Stdlib.( * ) k (ix t j))
    | Mul (a, Const (Value.Int k)) ->
        Option.map (fun fa t -> Stdlib.( * ) (fa t) k) (num_int a)
    | Mul (Const (Value.Int k), b) ->
        Option.map (fun fb t -> Stdlib.( * ) k (fb t)) (num_int b)
    | Mul (a, b) -> bin a b Stdlib.( * )
    | Div (a, Const (Value.Int k)) ->
        if Stdlib.( = ) k 0 then Some (fun _ -> raise Fallback)
        else (
          match a with
          | Col i -> Some (fun t -> ix t i / k)
          | _ -> Option.map (fun fa t -> fa t / k) (num_int a))
    | Div (a, b) ->
        bin a b (fun x y -> if Stdlib.( = ) y 0 then raise Fallback else x / y)
    | Mod (a, Const (Value.Int k)) ->
        if Stdlib.( = ) k 0 then Some (fun _ -> raise Fallback)
        else (
          match a with
          | Col i -> Some (fun t -> Stdlib.( mod ) (ix t i) k)
          | _ -> Option.map (fun fa t -> Stdlib.( mod ) (fa t) k) (num_int a))
    | Mod (a, b) ->
        bin a b (fun x y ->
            if Stdlib.( = ) y 0 then raise Fallback else Stdlib.( mod ) x y)
    | Neg a -> (
        match num_int a with
        | Some fa -> Some (fun tuple -> Stdlib.( - ) 0 (fa tuple))
        | None -> None)

  let rec pred_int p =
    let both a b op =
      match (pred_int a, pred_int b) with
      | Some fa, Some fb -> Some (op fa fb)
      | _ -> None
    in
    match p with
    | True -> Some (fun _ -> true)
    | False -> Some (fun _ -> false)
    | Cmp (op, a, b) -> (
        match num_int a with
        | None -> None
        | Some fa -> (
            (* Comparison against a constant — the dominant filter shape
               — inlines the int compare into one closure. *)
            match b with
            | Const (Value.Int k) ->
                Some
                  (match op with
                  | Eq -> fun t -> Stdlib.( = ) (fa t) k
                  | Ne -> fun t -> Stdlib.( <> ) (fa t) k
                  | Lt -> fun t -> Stdlib.( < ) (fa t) k
                  | Le -> fun t -> Stdlib.( <= ) (fa t) k
                  | Gt -> fun t -> Stdlib.( > ) (fa t) k
                  | Ge -> fun t -> Stdlib.( >= ) (fa t) k)
            | _ -> (
                match num_int b with
                | None -> None
                | Some fb ->
                    Some
                      (match op with
                      | Eq -> fun t -> Stdlib.( = ) (fa t) (fb t)
                      | Ne -> fun t -> Stdlib.( <> ) (fa t) (fb t)
                      | Lt -> fun t -> Stdlib.( < ) (fa t) (fb t)
                      | Le -> fun t -> Stdlib.( <= ) (fa t) (fb t)
                      | Gt -> fun t -> Stdlib.( > ) (fa t) (fb t)
                      | Ge -> fun t -> Stdlib.( >= ) (fa t) (fb t)))))
    | And (a, b) -> both a b (fun fa fb tuple -> fa tuple && fb tuple)
    | Or (a, b) -> both a b (fun fa fb tuple -> fa tuple || fb tuple)
    | Not a -> (
        match pred_int a with
        | Some fa -> Some (fun tuple -> not (fa tuple))
        | None -> None)
    | Is_null _ | Str_prefix _ -> None

  (* The public entry points splice the fast path in front of the generic
     closure.  [try] setup is a couple of nanoseconds; the records that
     take the handler pay the generic evaluation they would have paid
     anyway. *)
  let num e =
    let generic = num_gen e in
    match e with
    | Col _ | Const _ -> generic (* already a single load *)
    | _ -> (
        match num_int e with
        | Some fast ->
            fun tuple ->
              (try Value.Int (fast tuple) with Fallback -> generic tuple)
        | None -> generic)

  let pred p =
    let generic = pred_gen p in
    match p with
    | True | False -> generic
    | _ -> (
        match pred_int p with
        | Some fast ->
            fun tuple -> (try fast tuple with Fallback -> generic tuple)
        | None -> generic)
end

(* Composition through a projection: replace every column reference by
   what the projection computes there.  Evaluation is total (division by
   zero yields Null, never an exception), so substitution is exact:
   eval (subst bind e) t = eval e (projected t) for every tuple. *)
let rec subst bind e =
  match e with
  | Col i -> bind i
  | Const _ -> e
  | Add (a, b) -> Add (subst bind a, subst bind b)
  | Sub (a, b) -> Sub (subst bind a, subst bind b)
  | Mul (a, b) -> Mul (subst bind a, subst bind b)
  | Div (a, b) -> Div (subst bind a, subst bind b)
  | Mod (a, b) -> Mod (subst bind a, subst bind b)
  | Neg a -> Neg (subst bind a)

let cmp_op_to_string = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp_num ppf = function
  | Col i -> Format.fprintf ppf "$%d" i
  | Const v -> Value.pp ppf v
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_num a pp_num b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_num a pp_num b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_num a pp_num b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp_num a pp_num b
  | Mod (a, b) -> Format.fprintf ppf "(%a %% %a)" pp_num a pp_num b
  | Neg a -> Format.fprintf ppf "(- %a)" pp_num a

let rec pp_pred ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" pp_num a (cmp_op_to_string op) pp_num b
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_pred a pp_pred b
  | Not a -> Format.fprintf ppf "(not %a)" pp_pred a
  | Is_null a -> Format.fprintf ppf "%a is null" pp_num a
  | Str_prefix (p, a) -> Format.fprintf ppf "%a like %S%%" pp_num a p
