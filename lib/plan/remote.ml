(* Shard rewriting for worker processes.

   A remote exchange's worker must produce exactly what local producer
   rank [shard] of a [shards]-wide group would produce, but it compiles
   the subtree in a solo group (rank 0, size 1): the group-rank-governed
   leaves must therefore be rewritten to their shard explicitly.  The
   rewrite mirrors Compile's group semantics:

   - [Generate_slice] is the rank-sliced leaf: member r generates indices
     r, r+N, ... — rewritten to a plain [Generate] enumerating exactly
     those indices;
   - leaves that local producers duplicate ([Generate], [Scan_table],
     [Scan_list], [Scan_index]) are duplicated by workers too, unchanged;
   - recursion stops at nested [Exchange] / [Exchange_merge] / [Remote]
     boundaries — their own producer groups govern the leaves below, in
     the worker exactly as locally — and continues through [Interchange],
     which compiles in the same group. *)

let rec slice ~shard ~shards plan =
  if shards < 1 || shard < 0 || shard >= shards then
    invalid_arg "Remote.slice: shard out of range";
  let continue_ input = slice ~shard ~shards input in
  match plan with
  | Plan.Generate_slice { arity; count; gen } ->
      let local = max 0 ((count - shard + shards - 1) / shards) in
      Plan.Generate
        { arity; count = local; gen = (fun i -> gen (shard + (i * shards))) }
  | Plan.Generate_range { start; count } ->
      (* Rank-sliced like Generate_slice: worker [shard] produces the
         range indices congruent to it.  The worker-side rewrite may use
         a closure — only the shipped plan must stay closure-free. *)
      let local = max 0 ((count - shard + shards - 1) / shards) in
      Plan.Generate
        {
          arity = 1;
          count = local;
          gen =
            (fun i ->
              [| Volcano_tuple.Value.Int (start + shard + (i * shards)) |]);
        }
  | Plan.Scan_table_slice name ->
      (* Partition files are keyed by group rank ("name#r"): worker
         [shard] owns partition [shard], so the sliced scan resolves to
         that one partition file in the worker's site-local environment.
         A worker whose environment does not hold the partition fails
         loudly at compile (Not_found -> an Err frame), which is exactly
         what a misrouted shard should do. *)
      Plan.Scan_table
        (Volcano_storage.Shard.partition_name ~table:name ~part:shard)
  | Plan.Scan_table _ | Plan.Scan_index _ | Plan.Scan_list _ | Plan.Generate _
    ->
      plan
  | Plan.Exchange _ | Plan.Exchange_merge _ | Plan.Remote _ -> plan
  | Plan.Interchange { cfg; input } ->
      Plan.Interchange { cfg; input = continue_ input }
  | Plan.Filter { pred; mode; input } ->
      Plan.Filter { pred; mode; input = continue_ input }
  | Plan.Project_cols { cols; input } ->
      Plan.Project_cols { cols; input = continue_ input }
  | Plan.Project_exprs { exprs; input } ->
      Plan.Project_exprs { exprs; input = continue_ input }
  | Plan.Sort { key; input } -> Plan.Sort { key; input = continue_ input }
  | Plan.Match { algo; kind; left_key; right_key; left; right } ->
      Plan.Match
        {
          algo;
          kind;
          left_key;
          right_key;
          left = continue_ left;
          right = continue_ right;
        }
  | Plan.Cross { left; right } ->
      Plan.Cross { left = continue_ left; right = continue_ right }
  | Plan.Union_all { left; right } ->
      Plan.Union_all { left = continue_ left; right = continue_ right }
  | Plan.Theta_join { pred; left; right } ->
      Plan.Theta_join
        { pred; left = continue_ left; right = continue_ right }
  | Plan.Aggregate { algo; group_by; aggs; input } ->
      Plan.Aggregate { algo; group_by; aggs; input = continue_ input }
  | Plan.Distinct { algo; on; input } ->
      Plan.Distinct { algo; on; input = continue_ input }
  | Plan.Division { algo; quotient; divisor_attrs; divisor_key; dividend; divisor }
    ->
      Plan.Division
        {
          algo;
          quotient;
          divisor_attrs;
          divisor_key;
          dividend = continue_ dividend;
          divisor = continue_ divisor;
        }
  | Plan.Limit { count; input } ->
      Plan.Limit { count; input = continue_ input }
  | Plan.Choose { decide; alternatives } ->
      Plan.Choose { decide; alternatives = List.map continue_ alternatives }

(* Drain a compiled shard: the worker-side pull for [Worker.run]'s
   resolve — compile [input] sliced to this shard in a fresh solo group
   and hand back its record stream. *)
let shard_pull env ~shard ~shards plan =
  let sliced = slice ~shard ~shards plan in
  let iter = Compile.compile env sliced in
  Volcano.Iterator.open_ iter;
  let closed = ref false in
  fun () ->
    if !closed then None
    else
      match Volcano.Iterator.next iter with
      | Some _ as tuple -> tuple
      | None ->
          closed := true;
          Volcano.Iterator.close iter;
          None
      | exception exn ->
          closed := true;
          (try Volcano.Iterator.close iter with _ -> ());
          raise exn
