(** Query evaluation plans: "complex algebra expressions; the operators of
    this algebra are query processing algorithms" (paper, section 3).

    A plan is a tree of logical operator applications with explicit
    algorithm choices (sort- vs hash-based) and explicit exchange
    placements.  {!Compile} turns a plan into an iterator tree; exchange
    nodes fork process groups at open time. *)

type algo = Sort_based | Hash_based

(** Key-range bounds for index scans, over the index's key columns. *)
type index_bound =
  | Ix_unbounded
  | Ix_inclusive of Volcano_tuple.Tuple.t
  | Ix_exclusive of Volcano_tuple.Tuple.t

type t =
  | Scan_table of string  (** by catalog name *)
  | Scan_table_slice of string
      (** intra-operator parallel scan: in a group of size N, member r scans
          the registered partition file ["name#r"] if present, otherwise
          every Nth record of ["name"] — the plan-level analogue of
          "partitioning of stored datasets is achieved by using multiple
          files" (section 4.2) *)
  | Scan_index of { index : string; lo : index_bound; hi : index_bound }
      (** secondary-index range scan + fetch from the base table *)
  | Scan_list of { arity : int; tuples : Volcano_tuple.Tuple.t list }
  | Generate of { arity : int; count : int; gen : int -> Volcano_tuple.Tuple.t }
  | Generate_slice of {
      arity : int;
      count : int;
      gen : int -> Volcano_tuple.Tuple.t;
    }  (** group member r generates indices r, r+N, ... of [0, count) *)
  | Generate_range of { start : int; count : int }
      (** closure-free integer range: one [Tint] column holding
          [start .. start+count-1].  Slice-aware like {!Generate_slice}
          (group member r produces the indices congruent to r), so the
          optimizer can parallelize it; carrying no closure, it survives
          IR lowering and any future plan serialization intact — which is
          why the SQL front end lowers [generate(n)] to this leaf *)
  | Filter of {
      pred : Volcano_tuple.Expr.pred;
      mode : [ `Compiled | `Interpreted ];
      input : t;
    }
  | Project_cols of { cols : int list; input : t }
  | Project_exprs of { exprs : Volcano_tuple.Expr.num list; input : t }
  | Sort of { key : Volcano_tuple.Support.sort_key; input : t }
  | Match of {
      algo : algo;
      kind : Volcano_ops.Match_op.kind;
      left_key : int list;
      right_key : int list;
      left : t;
      right : t;
    }  (** sort-based match sorts its own inputs on the keys *)
  | Cross of { left : t; right : t }
  | Theta_join of { pred : Volcano_tuple.Expr.pred; left : t; right : t }
  | Aggregate of {
      algo : algo;
      group_by : int list;
      aggs : Volcano_ops.Aggregate.agg list;
      input : t;
    }
  | Distinct of { algo : algo; on : int list; input : t }
  | Division of {
      algo : [ `Hash | `Count | `Sort ];
      quotient : int list;
      divisor_attrs : int list;
      divisor_key : int list;
      dividend : t;
      divisor : t;
    }
  | Limit of { count : int; input : t }
  | Union_all of { left : t; right : t }
      (** bag concatenation (SQL [UNION ALL]): drains [left] to
          exhaustion, then [right] — both inputs must have the same
          arity.  The fixed drain order cannot close a §4.4 wait cycle. *)
  | Choose of { decide : unit -> int; alternatives : t list }
      (** dynamic query evaluation plans (Graefe & Ward 1989): at open time
          the decision support function picks one alternative; all
          alternatives must produce the same schema *)
  | Exchange of { cfg : Volcano.Exchange.config; input : t }
      (** vertical / intra-operator parallelism boundary *)
  | Exchange_merge of {
      cfg : Volcano.Exchange.config;
      key : Volcano_tuple.Support.sort_key;
      input : t;
    }  (** keep-separate exchange feeding a merge (producers must emit
          sorted streams) *)
  | Interchange of { cfg : Volcano.Exchange.config; input : t }
      (** the no-fork variant inside an already-parallel group *)
  | Remote of {
      cfg : Volcano.Exchange.config;
      workers : int;
      task : string;
      input : t;
    }
      (** network-distributed exchange: the producer group runs in
          [workers] worker {e processes} which rebuild [input]'s subtree
          from the opaque [task] string (see {!Remote.slice} for the
          shard convention), stream serialized packets back over
          sockets, and merge at the consumer.  [input] documents the
          shipped subtree — the consumer never compiles it; the task
          string must rebuild it in the worker.  [cfg.degree] must equal
          [workers] (planlint VL701) and [cfg.partition] is not
          re-applied on the wire edge. *)

val arity : Env.t -> t -> int
(** Output tuple width. *)

val label : t -> string
(** One-line description of the node alone (no children): a tree line of
    {!pp}, and the span label of the node's profile instrumentation. *)

val children : t -> t list
(** Direct inputs in display order (left before right, dividend before
    divisor, alternatives in listed order). *)

val pp : Format.formatter -> t -> unit
(** Operator-tree rendering with one node per line ("explain"). *)

val explain : Env.t -> t -> string
(** Rendering plus per-node output arities. *)
