module Schema = Volcano_tuple.Schema
module Expr = Volcano_tuple.Expr
module Match_op = Volcano_ops.Match_op
module Exchange = Volcano.Exchange

type algo = Sort_based | Hash_based

type index_bound =
  | Ix_unbounded
  | Ix_inclusive of Volcano_tuple.Tuple.t
  | Ix_exclusive of Volcano_tuple.Tuple.t

type t =
  | Scan_table of string
  | Scan_table_slice of string
  | Scan_index of { index : string; lo : index_bound; hi : index_bound }
  | Scan_list of { arity : int; tuples : Volcano_tuple.Tuple.t list }
  | Generate of { arity : int; count : int; gen : int -> Volcano_tuple.Tuple.t }
  | Generate_slice of {
      arity : int;
      count : int;
      gen : int -> Volcano_tuple.Tuple.t;
    }
  | Generate_range of { start : int; count : int }
  | Filter of {
      pred : Expr.pred;
      mode : [ `Compiled | `Interpreted ];
      input : t;
    }
  | Project_cols of { cols : int list; input : t }
  | Project_exprs of { exprs : Expr.num list; input : t }
  | Sort of { key : Volcano_tuple.Support.sort_key; input : t }
  | Match of {
      algo : algo;
      kind : Match_op.kind;
      left_key : int list;
      right_key : int list;
      left : t;
      right : t;
    }
  | Cross of { left : t; right : t }
  | Theta_join of { pred : Expr.pred; left : t; right : t }
  | Aggregate of {
      algo : algo;
      group_by : int list;
      aggs : Volcano_ops.Aggregate.agg list;
      input : t;
    }
  | Distinct of { algo : algo; on : int list; input : t }
  | Division of {
      algo : [ `Hash | `Count | `Sort ];
      quotient : int list;
      divisor_attrs : int list;
      divisor_key : int list;
      dividend : t;
      divisor : t;
    }
  | Limit of { count : int; input : t }
  | Union_all of { left : t; right : t }
  | Choose of { decide : unit -> int; alternatives : t list }
  | Exchange of { cfg : Exchange.config; input : t }
  | Exchange_merge of {
      cfg : Exchange.config;
      key : Volcano_tuple.Support.sort_key;
      input : t;
    }
  | Interchange of { cfg : Exchange.config; input : t }
  | Remote of {
      cfg : Exchange.config;
      workers : int;
      task : string;
      input : t;
    }

let rec arity env plan =
  match plan with
  | Scan_table name | Scan_table_slice name ->
      let _, schema = Env.table env name in
      Schema.arity schema
  | Scan_index { index; _ } ->
      let _, file, _ = Env.index env index in
      let _ = file in
      (* the fetch returns base-table records; find its schema via the
         catalog *)
      let rec width = function
        | [] -> invalid_arg "Plan.arity: index over unregistered table"
        | name :: rest -> (
            match Env.table env name with
            | f, schema
              when Volcano_storage.Heap_file.name f
                   = Volcano_storage.Heap_file.name file ->
                let _ = f in
                Schema.arity schema
            | _ -> width rest
            | exception Not_found -> width rest)
      in
      width (Env.table_names env)
  | Scan_list { arity; _ } -> arity
  | Generate { arity; _ } | Generate_slice { arity; _ } -> arity
  | Generate_range _ -> 1
  | Filter { input; _ } -> arity env input
  | Project_cols { cols; _ } -> List.length cols
  | Project_exprs { exprs; _ } -> List.length exprs
  | Sort { input; _ } -> arity env input
  | Match { algo = _; kind; left; right; _ } ->
      Match_op.output_arity kind ~left_arity:(arity env left)
        ~right_arity:(arity env right)
  | Cross { left; right } | Theta_join { left; right; _ } ->
      arity env left + arity env right
  | Aggregate { group_by; aggs; _ } -> List.length group_by + List.length aggs
  | Distinct { input; _ } -> arity env input
  | Division { quotient; _ } -> List.length quotient
  | Limit { input; _ } -> arity env input
  | Union_all { left; _ } -> arity env left
  | Choose { alternatives; _ } -> (
      match alternatives with
      | [] -> invalid_arg "Plan.arity: Choose with no alternatives"
      | first :: _ -> arity env first)
  | Exchange { input; _ } | Exchange_merge { input; _ } | Interchange { input; _ }
    ->
      arity env input
  | Remote { input; _ } -> arity env input

let algo_to_string = function Sort_based -> "sort" | Hash_based -> "hash"

let cols_to_string cols =
  "[" ^ String.concat "," (List.map string_of_int cols) ^ "]"

let key_to_string key =
  "["
  ^ String.concat ","
      (List.map
         (fun (c, dir) ->
           string_of_int c
           ^ match dir with Volcano_tuple.Support.Asc -> "" | Desc -> " desc")
         key)
  ^ "]"

let cfg_to_string (cfg : Exchange.config) =
  let partition =
    match cfg.partition with
    | Exchange.Round_robin -> "round-robin"
    | Exchange.Hash_on cols -> "hash" ^ cols_to_string cols
    | Exchange.Range_on (c, _) -> Printf.sprintf "range[%d]" c
    | Exchange.Custom _ -> "custom"
    | Exchange.Broadcast -> "broadcast"
  in
  Printf.sprintf "degree=%d packet=%d flow=%s partition=%s" cfg.degree
    cfg.packet_size
    (match cfg.flow_slack with Some n -> string_of_int n | None -> "off")
    partition

(* One-line description of a node, without its children — the text of a
   tree line, shared by [pp], the analyzer, and the profiler's annotated
   tree (EXPLAIN ANALYZE). *)
let label plan =
  match plan with
  | Scan_table name -> Printf.sprintf "scan %s" name
  | Scan_index { index; _ } -> Printf.sprintf "index-scan %s" index
  | Scan_table_slice name -> Printf.sprintf "scan-slice %s" name
  | Scan_list { tuples; _ } ->
      Printf.sprintf "scan-list (%d tuples)" (List.length tuples)
  | Generate { count; _ } -> Printf.sprintf "generate (%d tuples)" count
  | Generate_slice { count; _ } ->
      Printf.sprintf "generate-slice (%d tuples)" count
  | Generate_range { start; count } ->
      Printf.sprintf "generate-range [%d, %d)" start (start + count)
  | Filter { pred; mode; _ } ->
      Format.asprintf "filter (%s) %a"
        (match mode with `Compiled -> "compiled" | `Interpreted -> "interpreted")
        Expr.pp_pred pred
  | Project_cols { cols; _ } -> Printf.sprintf "project %s" (cols_to_string cols)
  | Project_exprs { exprs; _ } ->
      Printf.sprintf "project (%d exprs)" (List.length exprs)
  | Sort { key; _ } -> Printf.sprintf "sort %s" (key_to_string key)
  | Match { algo; kind; left_key; right_key; _ } ->
      Printf.sprintf "%s-%s on %s=%s" (algo_to_string algo)
        (Match_op.to_string kind) (cols_to_string left_key)
        (cols_to_string right_key)
  | Cross _ -> "cartesian-product"
  | Theta_join { pred; _ } ->
      Format.asprintf "nested-loops-join %a" Expr.pp_pred pred
  | Aggregate { algo; group_by; aggs; _ } ->
      Printf.sprintf "%s-aggregate by %s (%d aggs)" (algo_to_string algo)
        (cols_to_string group_by) (List.length aggs)
  | Distinct { algo; on; _ } ->
      Printf.sprintf "%s-distinct on %s" (algo_to_string algo)
        (cols_to_string on)
  | Division { algo; quotient; divisor_attrs; _ } ->
      Printf.sprintf "%s-division quotient=%s attrs=%s"
        (match algo with `Hash -> "hash" | `Count -> "count" | `Sort -> "sort")
        (cols_to_string quotient)
        (cols_to_string divisor_attrs)
  | Limit { count; _ } -> Printf.sprintf "limit %d" count
  | Union_all _ -> "union-all"
  | Choose { alternatives; _ } ->
      Printf.sprintf "choose-plan (%d alternatives)" (List.length alternatives)
  | Exchange { cfg; _ } -> Printf.sprintf "exchange (%s)" (cfg_to_string cfg)
  | Exchange_merge { cfg; key; _ } ->
      Printf.sprintf "exchange-merge %s (%s)" (key_to_string key)
        (cfg_to_string cfg)
  | Interchange { cfg; _ } ->
      Printf.sprintf "interchange (%s)" (cfg_to_string cfg)
  | Remote { cfg; workers; task; _ } ->
      Printf.sprintf "remote-exchange workers=%d task=%S (%s)" workers task
        (cfg_to_string cfg)

let children = function
  | Scan_table _ | Scan_table_slice _ | Scan_index _ | Scan_list _ | Generate _
  | Generate_slice _ | Generate_range _ ->
      []
  | Filter { input; _ }
  | Project_cols { input; _ }
  | Project_exprs { input; _ }
  | Sort { input; _ }
  | Aggregate { input; _ }
  | Distinct { input; _ }
  | Limit { input; _ }
  | Exchange { input; _ }
  | Exchange_merge { input; _ }
  | Interchange { input; _ }
  | Remote { input; _ } ->
      [ input ]
  | Match { left; right; _ }
  | Cross { left; right }
  | Theta_join { left; right; _ }
  | Union_all { left; right } ->
      [ left; right ]
  | Division { dividend; divisor; _ } -> [ dividend; divisor ]
  | Choose { alternatives; _ } -> alternatives

let rec pp_indented ppf indent plan =
  Format.fprintf ppf "%s%s" (String.make (indent * 2) ' ') (label plan);
  Format.pp_print_newline ppf ();
  List.iter (pp_indented ppf (indent + 1)) (children plan)

let pp ppf plan = pp_indented ppf 0 plan

let explain env plan =
  Format.asprintf "%a-- output arity: %d@." pp plan (arity env plan)
