(** Plan compilation: from algebra trees to iterator trees.

    Exchange nodes need one port key shared by every member of the
    consuming process group.  [compile] pre-assigns a key to each exchange
    node of the plan; the closures capturing that assignment are shared by
    all group members (they all run the same compiled thunk), so members
    agree on keys without further coordination.

    Before compiling, the static analyzer ({!Volcano_analysis.Analyze})
    runs over the plan: structural mistakes that would otherwise fail at
    runtime deep inside a forked domain — out-of-range column or
    partition-column references, malformed exchange configurations,
    unsorted merge inputs — are rejected at submit time instead. *)

exception Rejected of Volcano_analysis.Diag.t list
(** Raised by [compile ~check:true] when the analyzer reports errors.
    Carries the [Error]-severity diagnostics. *)

val analyze : Env.t -> Plan.t -> Volcano_analysis.Diag.t list
(** Run all analyzer passes on the plan (sorted errors-first), resolving
    leaves against the environment's catalog and sizing the resource pass
    from its buffer pool.  Warnings do not block compilation. *)

val compile : ?check:bool -> Env.t -> Plan.t -> Volcano.Iterator.t
(** Compile for the query root process (a fresh solo group).  [check]
    defaults to [true]: the plan is analyzed first and {!Rejected} is
    raised if any [Error]-severity diagnostic is found.  Pass
    [~check:false] to compile a plan the analyzer would reject — it then
    fails (or silently misbehaves) at runtime, as before. *)

val run : ?check:bool -> Env.t -> Plan.t -> Volcano_tuple.Tuple.t list
(** Compile, open, drain, close. *)

val run_count : ?check:bool -> Env.t -> Plan.t -> int
