(** Plan compilation: from algebra trees to iterator trees.

    Exchange nodes need one port key shared by every member of the
    consuming process group.  [compile] pre-assigns a key to each exchange
    node of the plan; the closures capturing that assignment are shared by
    all group members (they all run the same compiled thunk), so members
    agree on keys without further coordination.

    Before compiling, the static analyzer ({!Volcano_analysis.Analyze})
    runs over the plan: structural mistakes that would otherwise fail at
    runtime deep inside a forked domain — out-of-range column or
    partition-column references, malformed exchange configurations,
    unsorted merge inputs — are rejected at submit time instead. *)

exception Rejected of Volcano_analysis.Diag.t list
(** Raised by [compile ~check:true] when the analyzer reports errors.
    Carries the [Error]-severity diagnostics. *)

type obs = {
  sink : Volcano_obs.Obs.t;
  node_of : Plan.t -> Volcano_obs.Obs.Node.t option;
}
(** An observability assignment for one plan: a sink plus the obs node
    registered for each plan node (keyed by physical identity, like port
    keys).  Built by {!observe}; pass it to {!compile} to instrument the
    iterator tree. *)

val observe : Volcano_obs.Obs.t -> Plan.t -> obs
(** Register one obs node per plan node (pre-order, so node ids follow the
    {!Plan.pp} display order) and return the assignment.  With a null sink
    this registers nothing and [node_of] is constantly [None], so
    [compile ?obs] adds no wrappers — the disabled path stays on the
    uninstrumented code. *)

val analyze :
  ?workers:int ->
  ?flow_budget:int ->
  ?batch_size:int ->
  Env.t ->
  Plan.t ->
  Volcano_analysis.Diag.t list
(** Run all analyzer passes on the plan (sorted errors-first), resolving
    leaves against the environment's catalog, sizing the resource pass
    from its buffer pool, the scheduler-placement pass from its
    worker pool ({!Env.sched_workers}; override with [workers] — 0
    disables the advisory), and the batch pass from its vectorization
    knob ({!Env.batch_size}; override with [batch_size]).
    [flow_budget] bounds the flow-control memory pass
    ({!Volcano_analysis.Analyze.memory_pass}).  Warnings do not block
    compilation. *)

val compile :
  ?check:bool ->
  ?obs:obs ->
  ?scope:Volcano.Exchange.Scope.t ->
  ?cancel:exn option Atomic.t ->
  Env.t ->
  Plan.t ->
  Volcano.Iterator.t
(** Compile for the query root process (a fresh solo group).  [check]
    defaults to [true]: the plan is analyzed first and {!Rejected} is
    raised if any [Error]-severity diagnostic is found.  Pass
    [~check:false] to compile a plan the analyzer would reject — it then
    fails (or silently misbehaves) at runtime, as before.

    [scope] becomes the parent cancellation scope of the plan's top-level
    exchanges: {!Volcano.Exchange.Scope.poison} on it tears the whole
    running query down.  [cancel] is checked once per record at the root;
    when set to [Some exn] the next pull raises it as
    {!Volcano.Exchange.Query_failed} — together they let a Session cancel
    a query both at its leaves and at its root.

    With [~obs] (from {!observe}), every compiled node is wrapped in
    {!Volcano.Iterator.instrumented} against its assigned obs node, and
    exchange nodes additionally report port/group samples to the sink.
    Producer subtrees recompiled per rank share the plan node, hence the
    obs node: counters aggregate across the whole process group. *)

val run : ?check:bool -> Env.t -> Plan.t -> Volcano_tuple.Tuple.t list
[@@deprecated "use Session.exec — the Session is the one entry point"]
(** Compile, open, drain, close.  Deprecated shim: go through
    {!Session.exec}, which adds the worker pool, cancellation scope, and
    runtime admission around the same path. *)

val run_count : ?check:bool -> Env.t -> Plan.t -> int
[@@deprecated "use Session.exec_count — the Session is the one entry point"]
