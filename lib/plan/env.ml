module Bufpool = Volcano_storage.Bufpool
module Device = Volcano_storage.Device
module Heap_file = Volcano_storage.Heap_file
module Schema = Volcano_tuple.Schema
module Injector = Volcano_fault.Injector
module Sched = Volcano_sched.Sched

type remote_launcher =
  faults:Injector.t ->
  repartition:(Volcano.Exchange.partition_spec * int) option ->
  workers:int ->
  task:string ->
  packet_size:int ->
  Volcano.Port.Transport.source array

type t = {
  buffer : Bufpool.t;
  workspace : Device.t;
  tables : (string, Heap_file.t * Schema.t) Hashtbl.t;
  catalog : Volcano_storage.Shard.t;
      (* which tables are partitioned, how, and which worker site owns
         each partition — consulted when lowering [Scan_table_slice] and
         by the analyzer's placement checks *)
  indexes : (string, Volcano_btree.Btree.t * Heap_file.t * int list) Hashtbl.t;
  lock : Mutex.t;
  mutable run_capacity : int;
  mutable batch_size : int; (* records per fused batch; 0 disables *)
  mutable faults : Injector.t;
  mutable remote : remote_launcher option;
      (* Injected by whoever wires Volcano_net in (the CLI, the test
         harness): keeps this library independent of the networking
         subsystem while letting compiled Remote nodes launch workers. *)
  sched : Sched.t Lazy.t;
      (* Lazy: an env created just for catalog work should not start the
         process-global worker pool. *)
}

let check_batch_size ~what n =
  match Volcano.Batch.validate ~batch_size:n with
  | [] -> n
  | (_, msg) :: _ -> invalid_arg (what ^ ": " ^ msg)

(* The default batch size: the VOLCANO_BATCH_SIZE environment variable
   when set to a valid value (0 disables the batch path), else
   [Batch.default_size]. *)
let default_batch_size () =
  match Sys.getenv_opt "VOLCANO_BATCH_SIZE" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when Volcano.Batch.validate ~batch_size:n = [] -> n
      | Some _ | None -> Volcano.Batch.default_size)
  | None -> Volcano.Batch.default_size

let create ?(frames = 256) ?(page_size = 4096) ?(workspace_capacity = 65536)
    ?batch_size ?sched () =
  {
    buffer = Bufpool.create ~frames ~page_size ();
    workspace =
      Device.create_virtual ~name:"<workspace>" ~page_size
        ~capacity:workspace_capacity ();
    tables = Hashtbl.create 16;
    catalog = Volcano_storage.Shard.create ();
    indexes = Hashtbl.create 16;
    lock = Mutex.create ();
    run_capacity = 65536;
    batch_size =
      (match batch_size with
      | Some n -> check_batch_size ~what:"Env.create" n
      | None -> default_batch_size ());
    faults = Injector.none;
    remote = None;
    sched =
      (match sched with
      | Some s -> Lazy.from_val s
      | None -> lazy (Sched.default ()));
  }

let buffer t = t.buffer
let workspace t = t.workspace
let catalog t = t.catalog
let sched t = Lazy.force t.sched

(* Worker count for the analyzer's placement advisory, WITHOUT forcing
   the lazy scheduler — analysis of a catalog-only env must not start
   the process-global pool.  When the scheduler has not materialized we
   predict what [Sched.default] would build (mirroring its VOLCANO_SCHED
   check); 0 means dedicated/domain-per-task. *)
let sched_workers t =
  if Lazy.is_val t.sched then Sched.workers (Lazy.force t.sched)
  else
    match Sys.getenv_opt "VOLCANO_SCHED" with
    | Some "dedicated" -> 0
    | _ -> Sched.default_workers ()

let spill t =
  { Volcano_ops.Sort.device = t.workspace; buffer = t.buffer }

let register_table t ~name ~file ~schema =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if Hashtbl.mem t.tables name then
        invalid_arg ("Env.register_table: duplicate table " ^ name);
      Hashtbl.add t.tables name (file, schema))

let create_table t ~name ~schema =
  let file = Heap_file.create ~buffer:t.buffer ~device:t.workspace ~name in
  register_table t ~name ~file ~schema;
  file

let table t name =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Hashtbl.find_opt t.tables name with
      | Some entry -> entry
      | None -> raise Not_found)

let table_names t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [])

(* Index keys are serialized key projections compared by value order. *)
let index_cmp a b =
  Volcano_tuple.Tuple.compare
    (Volcano_tuple.Serial.decode_bytes (Bytes.of_string a))
    (Volcano_tuple.Serial.decode_bytes (Bytes.of_string b))

let create_index t ~table:table_name ~name ~key =
  let file, _schema = table t table_name in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if Hashtbl.mem t.indexes name then
        invalid_arg ("Env.create_index: duplicate index " ^ name));
  let tree =
    Volcano_btree.Btree.create ~buffer:t.buffer ~device:t.workspace ~name
      ~cmp:index_cmp
  in
  let key_of tuple =
    Bytes.to_string
      (Volcano_tuple.Serial.encode (Volcano_tuple.Tuple.project tuple key))
  in
  let entries = Volcano_ops.Scan.build_index ~tree ~key_of file in
  Mutex.lock t.lock;
  Hashtbl.add t.indexes name (tree, file, key);
  Mutex.unlock t.lock;
  entries

let index t name =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Hashtbl.find_opt t.indexes name with
      | Some entry -> entry
      | None -> raise Not_found)

let sort_run_capacity t = t.run_capacity
let set_sort_run_capacity t n = t.run_capacity <- n
let batch_size t = t.batch_size

let set_batch_size t n =
  t.batch_size <- check_batch_size ~what:"Env.set_batch_size" n
let faults t = t.faults

let set_faults t faults =
  t.faults <- faults;
  Bufpool.set_faults t.buffer faults;
  Device.set_faults t.workspace faults

let clear_faults t = set_faults t Injector.none
let set_remote_launcher t launcher = t.remote <- Some launcher
let remote_launcher t = t.remote
