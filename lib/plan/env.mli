(** Execution environment: the buffer pool, a workspace device for
    intermediate results (virtual — pages live in the buffer), and the table
    catalog.  One [Env.t] is shared by every process evaluating a query, as
    the Sequent's shared memory was. *)

type t

val create :
  ?frames:int ->
  ?page_size:int ->
  ?workspace_capacity:int ->
  ?batch_size:int ->
  ?sched:Volcano_sched.Sched.t ->
  unit ->
  t
(** Defaults: 256 frames of 4096 bytes, a 65536-page virtual workspace,
    and the process-wide {!Volcano_sched.Sched.default} scheduler (forced
    lazily, on first use — pass [~sched] to pin a specific scheduler).
    [batch_size] is the vectorized-execution knob (see {!batch_size});
    its default is the [VOLCANO_BATCH_SIZE] environment variable when set
    to a valid value, else {!Volcano.Batch.default_size}.
    @raise Invalid_argument when an explicit [batch_size] fails
    {!Volcano.Batch.validate}. *)

val buffer : t -> Volcano_storage.Bufpool.t
val workspace : t -> Volcano_storage.Device.t

(** The partition catalog: which tables are sharded, how their rows were
    partitioned, and which worker site owns each partition.  Populated by
    [Partition.split] / [Partition.load_site]; consulted when lowering
    [Scan_table_slice] for analysis and by the remote-placement planlint
    pass (VL704). *)
val catalog : t -> Volcano_storage.Shard.t
val spill : t -> Volcano_ops.Sort.spill

val sched : t -> Volcano_sched.Sched.t
(** The scheduler onto which plans compiled from this environment submit
    their exchange producer tasks. *)

val sched_workers : t -> int
(** The worker-pool size this environment's queries will run on, for the
    analyzer's placement advisory; 0 for the dedicated (domain-per-task)
    scheduler.  Unlike {!sched} this never forces the lazy default
    scheduler: for an env that has not run anything yet it predicts the
    pool {!Volcano_sched.Sched.default} would build. *)

val register_table :
  t ->
  name:string ->
  file:Volcano_storage.Heap_file.t ->
  schema:Volcano_tuple.Schema.t ->
  unit
(** @raise Invalid_argument on duplicate names. *)

val create_table :
  t -> name:string -> schema:Volcano_tuple.Schema.t -> Volcano_storage.Heap_file.t
(** Create a fresh table on the workspace device and register it. *)

val table : t -> string -> Volcano_storage.Heap_file.t * Volcano_tuple.Schema.t
(** @raise Not_found for unknown tables. *)

val create_index : t -> table:string -> name:string -> key:int list -> int
(** Build a secondary B+-tree index over the named table's key columns on
    the workspace device and register it; returns the entry count.  Index
    keys order by the value ordering of the key columns. *)

val index :
  t -> string -> Volcano_btree.Btree.t * Volcano_storage.Heap_file.t * int list
(** The index, its base table file, and its key columns.
    @raise Not_found for unknown indexes. *)

val table_names : t -> string list

val sort_run_capacity : t -> int
val set_sort_run_capacity : t -> int -> unit
(** Tuples per in-memory sort run (spill threshold); default 65536. *)

val batch_size : t -> int
(** Records per fused batch on the vectorized execution path — fusible
    scan chains compile to one tight loop yielding packets of this many
    records.  0 disables batching (every node compiles
    record-at-a-time); otherwise 1..255, a packet shell's capacity
    range. *)

val set_batch_size : t -> int -> unit
(** Queries compiled afterwards use the new size.
    @raise Invalid_argument when the size fails
    {!Volcano.Batch.validate}. *)

val faults : t -> Volcano_fault.Injector.t
(** The installed fault injector ({!Volcano_fault.Injector.none} by
    default).  Plans compiled from this environment consult it at every
    site: the buffer pool, the workspace device, the exchange ports,
    producers, and operators. *)

val set_faults : t -> Volcano_fault.Injector.t -> unit
(** Install the injector on the environment, its buffer pool, and its
    workspace device.  Queries compiled afterwards run under it. *)

val clear_faults : t -> unit

type remote_launcher =
  faults:Volcano_fault.Injector.t ->
  repartition:(Volcano.Exchange.partition_spec * int) option ->
  workers:int ->
  task:string ->
  packet_size:int ->
  Volcano.Port.Transport.source array
(** Launch a remote producer group for a [Plan.Remote] node: spawn
    [workers] processes that each resolve [task] to their shard and
    stream packets back, returned as one transport source per worker.
    [repartition] is [Some (spec, consumers)] when the enclosing exchange
    partitions (rather than merges) across [consumers] downstream ranks:
    the launcher must ship the partition function to the workers so rows
    come back routed.  [Volcano_net.Launcher.launch] is the
    implementation; this library only knows the shape, so it stays
    independent of the networking subsystem. *)

val set_remote_launcher : t -> remote_launcher -> unit
(** Install the launcher (the CLI and the test harness do this at
    startup, closing over their worker-mode command line).  Compiling a
    [Plan.Remote] node without one raises [Invalid_argument] at open. *)

val remote_launcher : t -> remote_launcher option
