module Ir = Volcano_analysis.Ir
module Exchange = Volcano.Exchange
module Support = Volcano_tuple.Support
module Agg = Volcano_ops.Aggregate

let cfg (c : Exchange.config) : Ir.cfg =
  {
    Ir.degree = c.degree;
    packet_size = c.packet_size;
    flow_slack = c.flow_slack;
    partition =
      (match c.partition with
      | Exchange.Round_robin -> Ir.Round_robin
      | Exchange.Hash_on cols -> Ir.Hash_on cols
      | Exchange.Range_on (col, bounds) ->
          Ir.Range_on (col, Array.length bounds)
      | Exchange.Custom _ -> Ir.Custom
      | Exchange.Broadcast -> Ir.Broadcast);
  }

let key k =
  List.map
    (fun (c, dir) ->
      (c, match dir with Support.Asc -> Ir.Asc | Support.Desc -> Ir.Desc))
    k

let algo = function
  | Plan.Sort_based -> Ir.Sort_based
  | Plan.Hash_based -> Ir.Hash_based

let agg_cols aggs =
  List.map
    (function
      | Agg.Count -> []
      | Agg.Sum e | Agg.Min e | Agg.Max e | Agg.Avg e -> Ir.cols_of_num e)
    aggs

(* Leaves resolve against the catalog; a missing table or index becomes
   [Unresolved] and the analyzer reports it in place. *)
let leaf ?parts env plan label =
  match Plan.arity env plan with
  | arity -> Ir.Leaf { label; arity; rows = None; bad_rows = 0; parts }
  | exception (Not_found | Invalid_argument _) -> Ir.Unresolved { label }

let rec ir env plan =
  match plan with
  | Plan.Scan_table name -> leaf env plan ("scan:" ^ name)
  | Plan.Scan_table_slice name ->
      (* A sliced scan of a partitioned table carries the catalog's
         partition count into the IR, so the remote-placement pass can
         check parts against workers without a dependency on the env. *)
      let parts =
        match Volcano_storage.Shard.find (Env.catalog env) name with
        | Some entry -> Some entry.Volcano_storage.Shard.parts
        | None -> None
      in
      leaf ?parts env plan ("scan-slice:" ^ name)
  | Plan.Scan_index { index; _ } -> leaf env plan ("index:" ^ index)
  | Plan.Scan_list { arity; tuples } ->
      Ir.Leaf
        {
          label = "list";
          arity;
          rows = Some (List.length tuples);
          bad_rows =
            List.length
              (List.filter (fun t -> Array.length t <> arity) tuples);
          parts = None;
        }
  | Plan.Generate { arity; count; _ } ->
      Ir.Leaf
        { label = "generate"; arity; rows = Some count; bad_rows = 0;
          parts = None }
  | Plan.Generate_slice { arity; count; _ } ->
      Ir.Leaf
        { label = "generate-slice"; arity; rows = Some count; bad_rows = 0;
          parts = None }
  | Plan.Generate_range { count; _ } ->
      Ir.Leaf
        { label = "generate-range"; arity = 1; rows = Some count; bad_rows = 0;
          parts = None }
  | Plan.Filter { pred; input; _ } ->
      Ir.Filter { cols = Ir.cols_of_pred pred; input = ir env input }
  | Plan.Project_cols { cols; input } ->
      Ir.Project_cols { cols; input = ir env input }
  | Plan.Project_exprs { exprs; input } ->
      Ir.Project_exprs
        {
          arity = List.length exprs;
          cols = List.sort_uniq compare (List.concat_map Ir.cols_of_num exprs);
          input = ir env input;
        }
  | Plan.Sort { key = k; input } -> Ir.Sort { key = key k; input = ir env input }
  | Plan.Match { algo = a; kind; left_key; right_key; left; right } ->
      Ir.Match
        {
          algo = algo a;
          kind;
          left_key;
          right_key;
          left = ir env left;
          right = ir env right;
        }
  | Plan.Cross { left; right } ->
      Ir.Cross { left = ir env left; right = ir env right }
  | Plan.Theta_join { pred; left; right } ->
      Ir.Theta_join
        {
          cols = Ir.cols_of_pred pred;
          left = ir env left;
          right = ir env right;
        }
  | Plan.Aggregate { algo = a; group_by; aggs; input } ->
      Ir.Aggregate
        {
          algo = algo a;
          group_by;
          agg_cols = agg_cols aggs;
          input = ir env input;
        }
  | Plan.Distinct { algo = a; on; input } ->
      Ir.Distinct { algo = algo a; on; input = ir env input }
  | Plan.Division { algo = a; quotient; divisor_attrs; divisor_key; dividend; divisor }
    ->
      Ir.Division
        {
          algo = a;
          quotient;
          divisor_attrs;
          divisor_key;
          dividend = ir env dividend;
          divisor = ir env divisor;
        }
  | Plan.Limit { count; input } -> Ir.Limit { count; input = ir env input }
  | Plan.Union_all { left; right } ->
      Ir.Union_all { left = ir env left; right = ir env right }
  | Plan.Choose { alternatives; _ } ->
      Ir.Choose { alternatives = List.map (ir env) alternatives }
  | Plan.Exchange { cfg = c; input } ->
      Ir.Exchange { cfg = cfg c; input = ir env input }
  | Plan.Exchange_merge { cfg = c; key = k; input } ->
      Ir.Exchange_merge { cfg = cfg c; key = key k; input = ir env input }
  | Plan.Interchange { cfg = c; input } ->
      Ir.Interchange { cfg = cfg c; input = ir env input }
  | Plan.Remote { cfg = c; workers; task; input } ->
      Ir.Remote { cfg = cfg c; workers; task; input = ir env input }
