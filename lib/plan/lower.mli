(** Lowering plans onto the analyzer's closure-free IR.

    The projection keeps everything static analysis can use — arities
    resolved against the catalog, column references extracted from
    expression ASTs, sort keys, exchange configurations — and drops the
    closures (generators, custom partitioners, choose-plan decision
    functions).  Scans of unregistered tables or indexes lower to
    [Ir.Unresolved] rather than raising, so the analyzer can report them
    as diagnostics with a plan location. *)

val ir : Env.t -> Plan.t -> Volcano_analysis.Ir.t
