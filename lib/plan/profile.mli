(** EXPLAIN ANALYZE for plans: compile against a fresh observability sink,
    run to exhaustion, and report per-node statistics alongside
    buffer-pool, workspace-device, and domain-spawn deltas.

    The deltas subtract the environment's counters before and after the
    run, so a shared environment should be quiescent while profiling;
    device counts cover the workspace device only (registered real-device
    tables are not included). *)

type report = {
  sink : Volcano_obs.Obs.t;
  obs : Compile.obs;
  plan : Plan.t;
  rows : int;  (** rows delivered to the query root *)
  elapsed_s : float;  (** wall time of the open-drain-close *)
  buffer : Volcano_storage.Bufpool.stats;  (** delta over the run *)
  device_reads : int;  (** workspace device, delta *)
  device_writes : int;
  domains : int;  (** producer tasks spawned during the run *)
  sched : Volcano_sched.Sched.stats;
      (** scheduler activity: counters are deltas over the run;
          [pool_workers] and [peak_queue_depth] are absolute *)
}

val execute : ?check:bool -> Env.t -> Plan.t -> report
(** Compile with {!Compile.observe} instrumentation and drain the query.
    [check] as in {!Compile.compile}; {!Compile.Rejected} propagates.
    Prefer {!Session.profile}, which calls this on the session's
    environment. *)

val run : ?check:bool -> Env.t -> Plan.t -> report
[@@deprecated "use Session.profile (or Profile.execute on a bare Env)"]
(** Former name of {!execute}. *)

val render : report -> string
(** The annotated plan tree: a header (rows, time, buffer/device deltas)
    and one line per node with rows, next calls, and busy time; exchange
    nodes get extra lines for packet, flow-control, and group timings. *)

val to_json : report -> Volcano_obs.Jsonx.t
(** The run summary plus the sink's full {!Volcano_obs.Obs.report_json}. *)

val write_json : report -> path:string -> unit

val write_trace : report -> path:string -> unit
(** Chrome [trace_event] export of the run's operator spans. *)
