(** Partitioned stored tables.

    {!split} shards a registered table into per-partition heap files named
    ["table#k"] — the same convention [Plan.Scan_table_slice] resolves at
    compile time, so shard [k] of a sliced scan reads exactly partition
    [k].  {!load_site} is the worker-side mirror: materialize only the
    partitions one site owns from a deterministic generator.  Both record
    the placement in the environment's {!Env.catalog}.

    Range bounds live in the catalog as opaque Serial-encoded bytes (the
    storage layer cannot depend on the tuple library); this module turns
    a catalog spec back into a row router, identically to
    [Volcano_net.Repart] on the worker side of a repartitioning edge. *)

val encode_bound : Volcano_tuple.Value.t -> string
(** A range bound as the catalog stores it: a Serial-encoded
    single-column tuple. *)

val decode_bound : string -> Volcano_tuple.Value.t

val hash_spec : int list -> Volcano_storage.Shard.spec
(** Partition by hash of the listed columns. *)

val range_spec :
  col:int -> bounds:Volcano_tuple.Value.t array -> Volcano_storage.Shard.spec
(** Partition by range on [col]; [bounds] are the [parts - 1] ascending
    inclusive upper bounds. *)

val route :
  Volcano_storage.Shard.spec -> parts:int -> Volcano_tuple.Tuple.t -> int
(** Instantiate a catalog spec as a row router over [parts] partitions —
    the same [Support.Partition] functions local exchange uses. *)

val split :
  Env.t ->
  table:string ->
  spec:Volcano_storage.Shard.spec ->
  parts:int ->
  ?sites:int array ->
  unit ->
  int array
(** Split the registered table [table] into [parts] partition files,
    register each, and add the catalog entry.  [sites] (default the
    identity placement: partition [k] at site [k]) says which worker site
    owns each partition.  Returns per-partition row counts.  The source
    table stays registered — a local plan can still scan it whole.
    @raise Invalid_argument on a malformed spec, duplicate partition
    names, or a catalog entry that already exists
    @raise Not_found when [table] is not registered *)

val load_site :
  Env.t ->
  table:string ->
  schema:Volcano_tuple.Schema.t ->
  spec:Volcano_storage.Shard.spec ->
  parts:int ->
  ?sites:int array ->
  site:int ->
  count:int ->
  gen:(int -> Volcano_tuple.Tuple.t) ->
  unit ->
  int array
(** Materialize, in a (typically worker-local) environment, only the
    partitions that [site] owns, routing rows [gen 0 .. gen (count - 1)]
    through the spec; partitions owned elsewhere are routed but dropped.
    Adds the same catalog entry every site derives, so placement agrees
    across processes by construction.  Returns per-partition row counts
    (zero for partitions not owned). *)
