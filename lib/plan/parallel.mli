(** Parallelization combinators: the standard exchange placements of
    section 4, packaged as plan rewrites.

    These are mechanical insertions of exchange nodes — "new query
    processing algorithms [are] coded for single-process execution but run
    in a highly parallel environment without modifications" (section 6). *)

val pipeline :
  ?packet_size:int -> ?flow_slack:int option -> Plan.t -> Plan.t
(** Vertical parallelism: run the subtree in its own process. *)

val partitioned_scan :
  degree:int -> ?packet_size:int -> table:string -> unit -> Plan.t
(** [degree] processes each scan a slice of the table and stream to the
    consumer. *)

val partitioned_match :
  degree:int ->
  ?packet_size:int ->
  algo:Plan.algo ->
  kind:Volcano_ops.Match_op.kind ->
  left_key:int list ->
  right_key:int list ->
  left:Plan.t ->
  right:Plan.t ->
  unit ->
  Plan.t
(** Intra-operator parallel match: both inputs are hash-partitioned on their
    keys across [degree] match processes (GAMMA-style repartitioning); the
    match processes stream results to the consumer.  [left] and [right]
    should be slice-aware (e.g. {!Plan.Scan_table_slice}) so the producer
    groups divide the base data. *)

val partitioned_aggregate :
  degree:int ->
  ?packet_size:int ->
  algo:Plan.algo ->
  group_by:int list ->
  aggs:Volcano_ops.Aggregate.agg list ->
  Plan.t ->
  Plan.t
(** Intra-operator parallel aggregation: input partitioned by hash on the
    grouping columns, one aggregation process per partition. *)

val partitioned_aggregate_two_phase :
  degree:int ->
  ?packet_size:int ->
  group_by:int list ->
  aggs:Volcano_ops.Aggregate.agg list ->
  Plan.t ->
  Plan.t
(** Two-phase parallel aggregation: every producer pre-aggregates its slice
    locally (no data movement), the partial results are hash-partitioned on
    the grouping columns, and a second aggregation combines them.  Count
    becomes a sum of partial counts, Sum/Min/Max combine with themselves,
    and Avg decomposes into sum and count with a final projection.  Far
    less data crosses the exchange than with {!partitioned_aggregate} when
    groups are few. *)

val two_phase_decomposition :
  group_by:int list ->
  aggs:Volcano_ops.Aggregate.agg list ->
  Volcano_ops.Aggregate.agg list
  * Volcano_ops.Aggregate.agg list
  * Volcano_tuple.Expr.num list option
(** The aggregate split behind {!partitioned_aggregate_two_phase},
    exposed for planners that compose the phases themselves: the local
    (per-slice) aggregate list with Avg expanded to Sum + Count, the
    global combining list over the local output layout (group columns
    first, then one column per local aggregate), and the final
    projection mapping combined partials back to the requested
    aggregates ([None] when it would be the identity). *)

val parallel_sort :
  degree:int ->
  ?packet_size:int ->
  key:Volcano_tuple.Support.sort_key ->
  Plan.t ->
  Plan.t
(** Merge network: [degree] processes sort slices of the input; the
    consumer merges the sorted streams with the keep-separate exchange
    variant (section 4.4). *)

val broadcast_join :
  degree:int ->
  ?packet_size:int ->
  kind:Volcano_ops.Match_op.kind ->
  left_key:int list ->
  right_key:int list ->
  left:Plan.t ->
  right:Plan.t ->
  unit ->
  Plan.t
(** Fragment-and-replicate: the left input is sliced across [degree] join
    processes while the right (build) input is broadcast to all of them —
    Baru's join strategy enabled by the broadcast exchange (section 4.4). *)
