module Obs = Volcano_obs.Obs
module Jsonx = Volcano_obs.Jsonx
module Bufpool = Volcano_storage.Bufpool
module Device = Volcano_storage.Device
module Iterator = Volcano.Iterator
module Exchange = Volcano.Exchange
module Sched = Volcano_sched.Sched

type report = {
  sink : Obs.t;
  obs : Compile.obs;
  plan : Plan.t;
  rows : int;
  elapsed_s : float;
  buffer : Bufpool.stats;  (** delta over the run *)
  device_reads : int;  (** workspace device, delta *)
  device_writes : int;
  domains : int;  (** producer tasks spawned during the run *)
  sched : Sched.stats;  (** counters are deltas over the run *)
}

let delta_stats (s0 : Sched.stats) (s1 : Sched.stats) =
  {
    Sched.pool_workers = s1.pool_workers;
    submitted = s1.submitted - s0.submitted;
    completed = s1.completed - s0.completed;
    stolen = s1.stolen - s0.stolen;
    suspensions = s1.suspensions - s0.suspensions;
    resumptions = s1.resumptions - s0.resumptions;
    peak_queue_depth = s1.peak_queue_depth;
  }

let execute ?check env plan =
  let sink = Obs.create () in
  let obs = Compile.observe sink plan in
  let iterator = Compile.compile ?check ~obs env plan in
  let pool = Env.buffer env in
  let workspace = Env.workspace env in
  let sched = Env.sched env in
  let b0 = Bufpool.stats pool in
  let r0 = Device.reads workspace and w0 = Device.writes workspace in
  let d0 = Exchange.domains_spawned () in
  let s0 = Sched.stats sched in
  (* Attach before the run so task latencies stream into the sink's
     histogram; the [~since] delta is zero at this point. *)
  Sched.register_obs ~since:s0 sched sink;
  let t0 = Obs.now () in
  let rows = Iterator.consume iterator in
  let elapsed_s = Obs.now () -. t0 in
  (* Push the run's counter deltas (the attach call added zero), then
     detach the latency histogram from this throwaway sink. *)
  Sched.register_obs ~since:s0 sched sink;
  Sched.register_obs sched Obs.null;
  let b1 = Bufpool.stats pool in
  {
    sink;
    obs;
    plan;
    rows;
    elapsed_s;
    buffer =
      {
        Bufpool.hits = b1.Bufpool.hits - b0.Bufpool.hits;
        misses = b1.Bufpool.misses - b0.Bufpool.misses;
        evictions = b1.Bufpool.evictions - b0.Bufpool.evictions;
        writebacks = b1.Bufpool.writebacks - b0.Bufpool.writebacks;
        restarts = b1.Bufpool.restarts - b0.Bufpool.restarts;
      };
    device_reads = Device.reads workspace - r0;
    device_writes = Device.writes workspace - w0;
    domains = Exchange.domains_spawned () - d0;
    sched = delta_stats s0 (Sched.stats sched);
  }

let fmt_s s =
  if s < 0.0009995 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 0.9995 then Printf.sprintf "%.1fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

let render r =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  add "%d rows in %s  (%d producer tasks)" r.rows (fmt_s r.elapsed_s)
    r.domains;
  if r.sched.Sched.pool_workers > 0 then
    add "sched: %d workers, %d tasks (%d stolen), %d suspensions"
      r.sched.Sched.pool_workers r.sched.Sched.submitted r.sched.Sched.stolen
      r.sched.Sched.suspensions;
  add "buffer: %d hits, %d misses, %d evictions, %d writebacks, %d restarts"
    r.buffer.Bufpool.hits r.buffer.Bufpool.misses r.buffer.Bufpool.evictions
    r.buffer.Bufpool.writebacks r.buffer.Bufpool.restarts;
  add "workspace: %d reads, %d writes" r.device_reads r.device_writes;
  add "";
  (* Pre-order with depth; shared subtrees print at every occurrence, as
     in [Plan.pp], but resolve to the same obs node. *)
  let rec flat depth plan =
    (depth, plan) :: List.concat_map (flat (depth + 1)) (Plan.children plan)
  in
  let entries = flat 0 r.plan in
  let width =
    List.fold_left
      (fun w (d, p) -> max w ((2 * d) + String.length (Plan.label p)))
      0 entries
  in
  List.iter
    (fun (d, p) ->
      let line = String.make (2 * d) ' ' ^ Plan.label p in
      match r.obs.Compile.node_of p with
      | None -> add "%s" line
      | Some n ->
          add "%s%s  rows=%-8d next=%-8d busy=%s" line
            (String.make (width - String.length line) ' ')
            (Obs.Node.rows n) (Obs.Node.next_calls n)
            (fmt_s (Obs.Node.busy_s n));
          (match Obs.exchange_sample r.sink ~node:n with
          | None -> ()
          | Some s ->
              let pad = String.make ((2 * d) + 4) ' ' in
              add "%spackets: %d sent, %d received, %d records, peak queue %d"
                pad s.Obs.packets_sent s.Obs.packets_received s.Obs.records
                s.Obs.max_queue_depth;
              add "%sflow: %d stalls, %s blocked; per-producer [%s]" pad
                s.Obs.flow_waits (fmt_s s.Obs.flow_wait_s)
                (String.concat ";"
                   (Array.to_list (Array.map string_of_int s.Obs.per_producer)));
              add "%spool: %d allocated, %d reused, %d recycled" pad
                s.Obs.pool_allocated s.Obs.pool_reused s.Obs.pool_recycled;
              if s.Obs.domains > 0 then
                add "%sgroup: %d domains, spawn %s, join %s" pad s.Obs.domains
                  (fmt_s s.Obs.spawn_s) (fmt_s s.Obs.join_s)))
    entries;
  String.concat "\n" (List.rev !lines) ^ "\n"

let to_json r =
  Jsonx.Obj
    [
      ("rows", Jsonx.Int r.rows);
      ("elapsed_s", Jsonx.Float r.elapsed_s);
      ("domains_spawned", Jsonx.Int r.domains);
      ( "buffer",
        Jsonx.Obj
          [
            ("hits", Jsonx.Int r.buffer.Bufpool.hits);
            ("misses", Jsonx.Int r.buffer.Bufpool.misses);
            ("evictions", Jsonx.Int r.buffer.Bufpool.evictions);
            ("writebacks", Jsonx.Int r.buffer.Bufpool.writebacks);
            ("restarts", Jsonx.Int r.buffer.Bufpool.restarts);
          ] );
      ( "workspace",
        Jsonx.Obj
          [
            ("reads", Jsonx.Int r.device_reads);
            ("writes", Jsonx.Int r.device_writes);
          ] );
      ( "sched",
        Jsonx.Obj
          [
            ("workers", Jsonx.Int r.sched.Sched.pool_workers);
            ("tasks", Jsonx.Int r.sched.Sched.submitted);
            ("stolen", Jsonx.Int r.sched.Sched.stolen);
            ("suspensions", Jsonx.Int r.sched.Sched.suspensions);
            ("peak_queue_depth", Jsonx.Int r.sched.Sched.peak_queue_depth);
          ] );
      ("obs", Obs.report_json r.sink);
    ]

let write_json r ~path = Jsonx.write_file path (to_json r)
let write_trace r ~path = Obs.write_trace r.sink ~path

let run = execute
