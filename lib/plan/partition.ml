module Shard = Volcano_storage.Shard
module Heap_file = Volcano_storage.Heap_file
module Serial = Volcano_tuple.Serial
module Support = Volcano_tuple.Support

(* Partitioned stored tables: split a heap file into per-partition files
   named by {!Shard.partition_name} ("table#k", the same convention
   [Scan_table_slice] resolves at compile time) and record the placement
   in the environment's catalog.

   The catalog's [spec] is pure placement metadata — storage cannot
   depend on the tuple library, so range bounds live there as opaque
   Serial-encoded single-column tuples.  This module is where a spec
   becomes a row router again; [Volcano_net.Repart] does the identical
   interpretation on the worker side of a repartitioning edge, and the
   distributed differential suite pins the two to the same answers. *)

let encode_bound v = Bytes.to_string (Serial.encode [| v |])
let decode_bound encoded = (Serial.decode_bytes (Bytes.of_string encoded)).(0)
let hash_spec cols = Shard.Hash cols

let range_spec ~col ~bounds =
  Shard.Range (col, Array.map encode_bound bounds)

(* Instantiate a spec as a router over [parts] partitions — the same
   [Support.Partition] functions a local exchange uses, so a stored hash
   partition and a hash repartitioning edge send a key the same way. *)
let route spec ~parts =
  match spec with
  | Shard.Hash cols -> Support.Partition.hash ~consumers:parts ~on:cols ()
  | Shard.Range (col, bounds) ->
      Support.Partition.range ~consumers:parts ~on:col
        ~bounds:(Array.map decode_bound bounds) ()

let default_sites parts = Array.init parts Fun.id

let check_spec ~what ~parts spec =
  if parts < 1 then invalid_arg (what ^ ": parts must be positive");
  match spec with
  | Shard.Hash [] -> invalid_arg (what ^ ": hash spec needs columns")
  | Shard.Hash cols ->
      if List.exists (fun c -> c < 0) cols then
        invalid_arg (what ^ ": negative hash column")
  | Shard.Range (col, bounds) ->
      if col < 0 then invalid_arg (what ^ ": negative range column");
      if Array.length bounds <> parts - 1 then
        invalid_arg
          (Printf.sprintf "%s: range spec has %d bounds for %d parts" what
             (Array.length bounds) parts)

(* Split a registered table into [parts] partition files, register each
   under its partition name, and record the placement in the catalog.
   Returns per-partition row counts.  [sites] defaults to the identity
   placement (partition [k] at site [k]). *)
let split env ~table ~spec ~parts ?sites () =
  check_spec ~what:"Partition.split" ~parts spec;
  let sites = match sites with Some s -> s | None -> default_sites parts in
  let file, schema = Env.table env table in
  let targets =
    Array.init parts (fun part ->
        Env.create_table env
          ~name:(Shard.partition_name ~table ~part)
          ~schema)
  in
  let counts = Array.make parts 0 in
  let router = route spec ~parts in
  Heap_file.iter file (fun _rid record ->
      let tuple = Serial.decode_bytes (Bytes.of_string record) in
      let part = ((router tuple mod parts) + parts) mod parts in
      ignore (Heap_file.insert targets.(part) record);
      counts.(part) <- counts.(part) + 1);
  Shard.add (Env.catalog env) { Shard.table; parts; spec; sites };
  counts

(* The worker-site mirror of {!split}: materialize only the partitions
   that [site] owns, from a deterministic generator, without ever holding
   the full table.  Every site running [load_site] over the same
   [gen]/[count]/[spec] reconstructs exactly the placement the parent's
   catalog describes, so a worker resolves [Scan_table_slice] locally. *)
let load_site env ~table ~schema ~spec ~parts ?sites ~site ~count ~gen () =
  check_spec ~what:"Partition.load_site" ~parts spec;
  let sites = match sites with Some s -> s | None -> default_sites parts in
  if Array.length sites <> parts then
    invalid_arg "Partition.load_site: sites length must equal parts";
  let owned = Array.init parts (fun part -> sites.(part) = site) in
  let targets =
    Array.init parts (fun part ->
        if owned.(part) then
          Some
            (Env.create_table env
               ~name:(Shard.partition_name ~table ~part)
               ~schema)
        else None)
  in
  let counts = Array.make parts 0 in
  let router = route spec ~parts in
  for i = 0 to count - 1 do
    let tuple = gen i in
    let part = ((router tuple mod parts) + parts) mod parts in
    match targets.(part) with
    | None -> ()
    | Some file ->
        ignore (Heap_file.insert file (Bytes.to_string (Serial.encode tuple)));
        counts.(part) <- counts.(part) + 1
  done;
  Shard.add (Env.catalog env) { Shard.table; parts; spec; sites };
  counts
