(** The session facade — the one entry point a client needs.

    A session owns an execution environment ({!Env}), a scheduler handle
    ({!Volcano_sched.Sched}), and a multi-query runtime
    ({!Volcano_sched.Runtime}) whose admission gate bounds the number of
    plans executing concurrently.  Queries go through the runtime whether
    submitted asynchronously ({!submit} / {!await}) or run synchronously
    ({!exec}), so a burst of queries from many domains degrades to an
    orderly queue instead of oversubscribing the worker pool.

    Every execution entry point takes an {!input}: either a hand-built
    [`Plan] or a [`Sql] string, which the installed front end (see
    {!set_frontend}; [Volcano_sql.install ()] is the stock one) parses,
    binds against the session's catalog, and optimizes into a plan that
    passes the analyzer with zero diagnostics.  For the common case the
    SQL path is one line:

    {[
      Session.with_session (fun s ->
          let rows = Session.query s "SELECT COUNT(*) FROM wisc" in
          ...)
    ]}

    Cancellation and deadlines plug into the exchange poison chain: a
    cancelled query's root scope is poisoned, which shuts every port in
    the running plan, and its root iterator stops pulling — the awaiter
    gets [Error (Query_failed ...)] carrying the cancellation reason
    ({!Volcano_sched.Runtime.Cancelled} or
    {!Volcano_sched.Runtime.Deadline_exceeded}). *)

type t

val create :
  ?frames:int ->
  ?page_size:int ->
  ?workspace_capacity:int ->
  ?batch_size:int ->
  ?sched:Volcano_sched.Sched.t ->
  ?workers:int ->
  ?max_concurrent:int ->
  unit ->
  t
(** [frames]/[page_size]/[workspace_capacity]/[batch_size] size the
    environment as in {!Env.create} ([batch_size] is the vectorized
    execution knob: 0 disables batching, default
    {!Volcano.Batch.default_size} or the [VOLCANO_BATCH_SIZE]
    environment variable).  Scheduling: [~sched] adopts an existing
    scheduler, [~workers:n] creates a private [n]-worker pool owned (and
    shut down) by this session; default is the shared process-wide
    {!Volcano_sched.Sched.default}.  [max_concurrent] bounds plans in
    flight as in {!Volcano_sched.Runtime.create}.
    @raise Invalid_argument when both [~sched] and [~workers] are given. *)

val with_session :
  ?frames:int ->
  ?page_size:int ->
  ?workspace_capacity:int ->
  ?batch_size:int ->
  ?sched:Volcano_sched.Sched.t ->
  ?workers:int ->
  ?max_concurrent:int ->
  (t -> 'a) ->
  'a
(** [create], apply, then {!close} — also on exceptions. *)

val env : t -> Env.t
(** The session's environment: catalog registration, faults, tuning knobs
    all live here. *)

val sched : t -> Volcano_sched.Sched.t
val runtime : t -> Volcano_sched.Runtime.t

val set_faults : t -> Volcano_fault.Injector.t -> unit
(** Shorthand for {!Env.set_faults} on the session's environment. *)

val clear_faults : t -> unit

(** {2 Queries}

    Execution entry points accept either form. *)

type input = [ `Sql of string | `Plan of Plan.t ]

exception No_frontend
(** A [`Sql] input was given but no front end is installed — call
    [Volcano_sql.install ()] (linking the [volcano_sql] library) first. *)

type compiled_query = {
  cq_plan : Plan.t;  (** optimizer output; zero analyzer diagnostics *)
  cq_explain : string;
      (** the chosen plan's operator tree plus the optimizer's
          candidate-by-candidate notes *)
}

val set_frontend :
  (?workers:int -> Env.t -> string -> compiled_query) -> unit
(** Install the SQL front end (process-wide).  The plan layer cannot
    depend on the SQL layer, so the front end registers itself here:
    [Volcano_sql.install ()] is the stock implementation.  Front-end
    failures (parse, bind, optimize) should raise the front end's own
    exception type. *)

val compile_sql : ?workers:int -> t -> string -> compiled_query
(** Run the installed front end against this session's environment
    without executing.  @raise No_frontend if none is installed. *)

val exec :
  ?check:bool ->
  ?deadline_s:float ->
  t ->
  input ->
  Volcano_tuple.Tuple.t list
(** Compile and drain the query through the runtime (waiting for an
    admission slot if the session is at [max_concurrent]); returns the
    result rows.  [check] as in {!Compile.compile}; a [deadline_s] that
    expires poisons the query and raises
    {!Volcano.Exchange.Query_failed}. *)

val exec_count : ?check:bool -> ?deadline_s:float -> t -> input -> int
(** {!exec}, but count rows instead of materializing them. *)

val query : t -> string -> Volcano_tuple.Tuple.t list
(** [query s sql] is [exec s (`Sql sql)] — SQL in, rows out. *)

val explain : ?workers:int -> t -> string -> string
(** The front end's rendering of the plan it would run for this SQL:
    operator tree plus optimizer notes.  Nothing is executed. *)

type 'a job = 'a Volcano_sched.Runtime.job

val submit :
  ?check:bool ->
  ?deadline_s:float ->
  ?label:string ->
  t ->
  input ->
  Volcano_tuple.Tuple.t list job
(** Asynchronous {!exec}: enqueue the query and return at once.  A [`Sql]
    input is compiled {e before} enqueueing (front-end errors raise
    here); the plan itself is compiled inside the job (after admission),
    so {!Compile.Rejected} surfaces in the job result, not here. *)

val submit_count :
  ?check:bool -> ?deadline_s:float -> ?label:string -> t -> input -> int job

val await : 'a job -> ('a, exn) result
val cancel : 'a job -> unit

val status : 'a job -> Volcano_sched.Runtime.status

(** {2 Inspection} *)

val profile : ?check:bool -> t -> input -> Profile.report
(** EXPLAIN ANALYZE via {!Profile.execute}, including the session
    scheduler's task counters.  Runs outside the admission gate. *)

val analyze :
  ?workers:int ->
  ?flow_budget:int ->
  ?batch_size:int ->
  t ->
  input ->
  Volcano_analysis.Diag.t list
(** Static analysis via {!Compile.analyze}.  The scheduler-placement
    advisory sizes itself from this session's pool, and the batch pass
    from its environment's knob, unless [workers] / [batch_size]
    override them.  (A [`Sql] input analyzes the optimizer's chosen
    plan, which is diagnostic-free by construction — useful as an
    end-to-end check.) *)

val close : t -> unit
(** Drain the runtime (running and queued jobs finish; new submits are
    rejected) and, if this session created its own worker pool, shut it
    down. *)
