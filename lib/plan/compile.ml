module Iterator = Volcano.Iterator
module Exchange = Volcano.Exchange
module Group = Volcano.Group
module Expr = Volcano_tuple.Expr
module Support = Volcano_tuple.Support
module Ops = Volcano_ops
module Injector = Volcano_fault.Injector
module Obs = Volcano_obs.Obs

(* Pre-assign port keys to exchange nodes, keyed by physical identity: the
   one compiled thunk shared by a group captures this table, so every
   member resolves the same node to the same key. *)
let assign_ids plan =
  let table = ref [] in
  let note node =
    if not (List.exists (fun (n, _) -> n == node) !table) then
      table := (node, Exchange.fresh_id ()) :: !table
  in
  let rec walk plan =
    (match plan with
    | Plan.Exchange _ | Plan.Exchange_merge _ | Plan.Interchange _
    | Plan.Remote _ ->
        note plan
    | _ -> ());
    match plan with
    | Plan.Scan_table _ | Plan.Scan_table_slice _ | Plan.Scan_index _
    | Plan.Scan_list _ | Plan.Generate _ | Plan.Generate_slice _
    | Plan.Generate_range _ ->
        ()
    (* The Remote subtree is never compiled locally: the workers rebuild
       it from the task string, so its nested exchanges take their ids in
       the worker process. *)
    | Plan.Remote _ -> ()
    | Plan.Filter { input; _ }
    | Plan.Project_cols { input; _ }
    | Plan.Project_exprs { input; _ }
    | Plan.Sort { input; _ }
    | Plan.Aggregate { input; _ }
    | Plan.Distinct { input; _ }
    | Plan.Limit { input; _ }
    | Plan.Exchange { input; _ }
    | Plan.Exchange_merge { input; _ }
    | Plan.Interchange { input; _ } ->
        walk input
    | Plan.Match { left; right; _ }
    | Plan.Cross { left; right }
    | Plan.Theta_join { left; right; _ }
    | Plan.Union_all { left; right } ->
        walk left;
        walk right
    | Plan.Choose { alternatives; _ } -> List.iter walk alternatives
    | Plan.Division { dividend; divisor; _ } ->
        walk dividend;
        walk divisor
  in
  walk plan;
  let ids = !table in
  fun node ->
    match List.find_opt (fun (n, _) -> n == node) ids with
    | Some (_, id) -> id
    | None -> invalid_arg "Compile: exchange node without id"

(* Observability: one obs node per plan node, keyed (like port ids) by
   physical identity so that every rank evaluating the same node — and
   every producer re-compiling a subtree per open — aggregates into the
   same counters. *)
type obs = { sink : Obs.t; node_of : Plan.t -> Obs.Node.t option }

let observe sink plan =
  if not (Obs.enabled sink) then { sink; node_of = (fun _ -> None) }
  else begin
    let table = ref [] in
    (* Pre-order walk: node ids follow the display order of [Plan.pp]. *)
    let rec walk plan =
      if not (List.exists (fun (n, _) -> n == plan) !table) then begin
        table := (plan, Obs.node sink ~label:(Plan.label plan)) :: !table;
        List.iter walk (Plan.children plan)
      end
    in
    walk plan;
    let entries = !table in
    {
      sink;
      node_of =
        (fun node ->
          Option.map snd (List.find_opt (fun (n, _) -> n == node) entries));
    }
  end

(* The (sink, node) pair handed to an exchange node for its port/group
   instrumentation. *)
let exchange_obs obs plan =
  match obs with
  | None -> None
  | Some o -> Option.map (fun node -> (o.sink, node)) (o.node_of plan)

(* Every Nth tuple, offset by the group rank — used by the slice leaves. *)
let slice_iterator group inner =
  let rank = Group.rank group and size = Group.size group in
  if size = 1 then inner
  else begin
    let index = ref 0 in
    Iterator.make
      ~open_:(fun () ->
        index := 0;
        Iterator.open_ inner)
      ~next:(fun () ->
        let rec step () =
          match Iterator.next inner with
          | None -> None
          | Some tuple ->
              let i = !index in
              incr index;
              if i mod size = rank then Some tuple else step ()
        in
        step ())
      ~close:(fun () -> Iterator.close inner)
  end

let limit_iterator count inner =
  let remaining = ref count in
  Iterator.make
    ~open_:(fun () ->
      remaining := count;
      Iterator.open_ inner)
    ~next:(fun () ->
      if !remaining <= 0 then None
      else
        match Iterator.next inner with
        | None -> None
        | Some tuple ->
            decr remaining;
            Some tuple)
    ~close:(fun () -> Iterator.close inner)

let sort_cmp key = Support.compare_on key
let cols_cmp cols = Support.compare_cols cols

(* With faults installed, every compiled node also checks the generic
   [Operator] site once per record — a failure "anywhere in the operator
   tree", not tied to a specific subsystem. *)
let guard faults inner =
  if Injector.is_none faults then inner
  else
    Iterator.make
      ~open_:(fun () -> Iterator.open_ inner)
      ~next:(fun () ->
        Injector.hit faults Volcano_fault.Operator;
        Iterator.next inner)
      ~close:(fun () -> Iterator.close inner)

(* ------------------------------------------------------------------ *)
(* Vectorized (batch) execution                                        *)

module Batch = Volcano.Batch

(* A compiled subtree is either a record iterator or — when the whole
   subtree is a fusible scan chain and the env's [batch_size] knob is on
   — a batch pipeline.  Batch-aware consumers (exchange producers, hash
   aggregation) take the [Batches] side directly; every other parent
   bridges through the record-at-a-time adapter [Batch.to_iterator]. *)
type stream = Rows of Iterator.t | Batches of Batch.t

(* Obs bookkeeping for one node of a fused chain: a tap stage counts the
   node's output rows into [fn_rows], flushed once per batch by
   [instrumented_chain]. *)
type fused_node = {
  fn_node : Obs.Node.t;
  fn_rows : int ref;  (* rows since the last flush *)
  fn_total : int ref;  (* rows this open-to-close span *)
}

(* The batch-level analogue of [Iterator.instrumented] for a whole fused
   chain: opens, closes, and spans are booked once per lifetime on every
   chain node, and each node's tap-counted rows are flushed per batch
   with [Obs.Node.on_batch] — per-node row totals stay exact under
   batching while next-call counts become per-batch. *)
let instrumented_chain nodes pipeline =
  match nodes with
  | [] -> pipeline
  | _ ->
      let span_start = ref nan in
      let flush elapsed =
        List.iter
          (fun fn ->
            Obs.Node.on_batch fn.fn_node ~rows:!(fn.fn_rows) ~elapsed;
            fn.fn_total := !(fn.fn_total) + !(fn.fn_rows);
            fn.fn_rows := 0)
          nodes
      in
      Batch.make
        ~open_:(fun () ->
          List.iter
            (fun fn ->
              Obs.Node.count_open fn.fn_node;
              fn.fn_rows := 0;
              fn.fn_total := 0)
            nodes;
          let t0 = Obs.now () in
          span_start := t0;
          Batch.open_ pipeline;
          let dt = Obs.now () -. t0 in
          List.iter (fun fn -> Obs.Node.on_open fn.fn_node ~elapsed:dt) nodes)
        ~next:(fun () ->
          let t0 = Obs.now () in
          match Batch.next pipeline with
          | result ->
              flush (Obs.now () -. t0);
              result
          | exception exn ->
              flush (Obs.now () -. t0);
              raise exn)
        ~close:(fun () ->
          List.iter (fun fn -> Obs.Node.count_close fn.fn_node) nodes;
          let t0 = Obs.now () in
          Batch.close pipeline;
          let stop = Obs.now () in
          List.iter
            (fun fn -> Obs.Node.on_close fn.fn_node ~elapsed:(stop -. t0))
            nodes;
          if not (Float.is_nan !span_start) then begin
            List.iter
              (fun fn ->
                Obs.Node.on_span fn.fn_node ~start:!span_start ~stop
                  ~rows:!(fn.fn_total))
              nodes;
            span_start := nan
          end)

(* Try to compile [plan] as one fused batch pipeline: a batch-source
   leaf (generate, list, table scan, and their slices) under any number
   of fusible chain operators (filter, projections, hash distinct).
   Everything else — blocking operators, joins, index scans, limits,
   choose, and every exchange — refuses, and the subtree compiles
   record-at-a-time.  Exchange edges can therefore never end up inside
   a chain: batches stay strictly within one process group, and records
   cross domains only inside port packets (planlint's batch pass checks
   the knob against each edge's packet size).

   The per-record decoration the record path applies per node — the
   generic [Operator] fault site and the obs row count — becomes a tap
   stage per node, so faults fire and rows count inside the fused loop
   exactly as they would in the nested-closure tree.  Stateful pieces
   (the slice counter, distinct's seen table) hang their
   re-initialization on [cursor.reset], so reopening the pipeline
   replays from scratch like any iterator. *)
type fused_chain = {
  fc_cursor : Batch.cursor;
  fc_stage : Support.Stage.t;
  fc_nodes : fused_node list;
}

let fuse_chain env obs group plan =
  let batch_size = Env.batch_size env in
  if batch_size = 0 then None
  else begin
    let faults = Env.faults env in
    let faults_live = not (Injector.is_none faults) in
    let chain_nodes = ref [] in
    let resets = ref [] in
    let on_reset f = resets := f :: !resets in
    let node_stages plan op_stages =
      let stages =
        if faults_live then
          op_stages
          @ [
              Support.Stage.tap (fun _ ->
                  Injector.hit faults Volcano_fault.Operator);
            ]
        else op_stages
      in
      match Option.bind obs (fun o -> o.node_of plan) with
      | None -> stages
      | Some node ->
          let fn = { fn_node = node; fn_rows = ref 0; fn_total = ref 0 } in
          chain_nodes := fn :: !chain_nodes;
          stages @ [ Support.Stage.tap (fun _ -> incr fn.fn_rows) ]
    in
    let leaf plan cursor = Some (cursor, node_stages plan []) in
    let rec chain plan =
      match plan with
      | Plan.Generate { count; gen; _ } ->
          leaf plan (Batch.generator_cursor ~count ~f:gen)
      | Plan.Generate_slice { count; gen; _ } ->
          let rank = Group.rank group and size = Group.size group in
          let mine = (count - rank + size - 1) / size in
          leaf plan
            (Batch.generator_cursor ~count:mine ~f:(fun i ->
                 gen ((i * size) + rank)))
      | Plan.Generate_range { start; count } ->
          let rank = Group.rank group and size = Group.size group in
          let mine = (count - rank + size - 1) / size in
          leaf plan
            (Batch.generator_cursor ~count:mine ~f:(fun i ->
                 [| Volcano_tuple.Value.Int (start + (i * size) + rank) |]))
      | Plan.Scan_list { tuples; _ } ->
          leaf plan (Batch.array_cursor (Array.of_list tuples))
      | Plan.Scan_table name ->
          leaf plan (Ops.Scan.heap_cursor (fst (Env.table env name)))
      | Plan.Scan_table_slice name -> (
          let rank = Group.rank group and size = Group.size group in
          let partition_name = Printf.sprintf "%s#%d" name rank in
          match Env.table env partition_name with
          | file, _ -> leaf plan (Ops.Scan.heap_cursor file)
          | exception Not_found ->
              let cursor = Ops.Scan.heap_cursor (fst (Env.table env name)) in
              if size = 1 then leaf plan cursor
              else begin
                let index = ref 0 in
                on_reset (fun () -> index := 0);
                let slice k tuple =
                  let i = !index in
                  incr index;
                  if i mod size = rank then k tuple
                in
                Some (cursor, node_stages plan [ slice ])
              end)
      | Plan.Filter { pred; mode; input } ->
          let pred =
            match mode with
            | `Compiled -> Support.of_pred pred
            | `Interpreted -> Support.of_pred_interpreted pred
          in
          Option.map
            (fun (cursor, stages) ->
              (cursor, stages @ node_stages plan [ Support.Stage.filter pred ]))
            (chain input)
      | Plan.Project_cols { cols; input } ->
          Option.map
            (fun (cursor, stages) ->
              ( cursor,
                stages @ node_stages plan [ Support.Stage.project_cols cols ] ))
            (chain input)
      | Plan.Project_exprs { exprs; input } ->
          Option.map
            (fun (cursor, stages) ->
              ( cursor,
                stages @ node_stages plan [ Support.Stage.project_exprs exprs ]
              ))
            (chain input)
      | Plan.Distinct { algo = Plan.Hash_based; on; input } ->
          Option.map
            (fun (cursor, stages) ->
              let pred = ref (fun _ -> true) in
              on_reset (fun () ->
                  pred := Ops.Aggregate.distinct_filter ~on ());
              let distinct k tuple = if !pred tuple then k tuple in
              (cursor, stages @ node_stages plan [ distinct ]))
            (chain input)
      | _ -> None
    in
    match chain plan with
    | None -> None
    | Some (cursor, stages) ->
        let cursor =
          match !resets with
          | [] -> cursor
          | fs ->
              {
                cursor with
                Batch.reset =
                  (fun () ->
                    List.iter (fun f -> f ()) fs;
                    cursor.Batch.reset ());
              }
        in
        Some
          {
            fc_cursor = cursor;
            fc_stage = Support.Stage.compose stages;
            fc_nodes = !chain_nodes;
          }
  end

let fuse env obs group plan =
  match fuse_chain env obs group plan with
  | None -> None
  | Some fc ->
      let pipeline =
        Batch.fused ~batch_size:(Env.batch_size env) ~stage:fc.fc_stage
          fc.fc_cursor
      in
      Some (instrumented_chain fc.fc_nodes pipeline)

(* Sink fusion: when the consumer of a fusible chain is itself batch
   aware and blocking (hash aggregation), there is no reason to
   materialize even a packet shell between the tight loop and the
   consumer — the chain's emit path can call the consumer's feed
   function directly.  [fused_drain] compiles the subtree into such a
   drive loop: the consumer calls it once with its feed, and the whole
   scan-filter-project-consume plan runs as one loop.  Obs bookkeeping
   mirrors [instrumented_chain] — opens, closes, and spans once per
   lifetime, tap-counted rows flushed once per step — and the fault taps
   sit in the stage chain exactly as in the packet pipeline. *)
let fused_drain env obs group plan =
  match fuse_chain env obs group plan with
  | None -> None
  | Some fc ->
      let batch_size = Env.batch_size env in
      let nodes = fc.fc_nodes in
      Some
        (fun feed ->
          let emit = fc.fc_stage feed in
          let step () = fc.fc_cursor.Batch.step ~emit ~max:batch_size in
          match nodes with
          | [] ->
              (* No obs: the drive loop is just the cursor and the
                 composed stages — nothing else per record or per step. *)
              fc.fc_cursor.Batch.reset ();
              Fun.protect
                ~finally:(fun () -> fc.fc_cursor.Batch.stop ())
                (fun () -> while step () <> 0 do () done)
          | _ ->
              List.iter
                (fun fn ->
                  Obs.Node.count_open fn.fn_node;
                  fn.fn_rows := 0;
                  fn.fn_total := 0)
                nodes;
              let span_start = Obs.now () in
              fc.fc_cursor.Batch.reset ();
              let dt = Obs.now () -. span_start in
              List.iter (fun fn -> Obs.Node.on_open fn.fn_node ~elapsed:dt) nodes;
              Fun.protect
                ~finally:(fun () ->
                  List.iter (fun fn -> Obs.Node.count_close fn.fn_node) nodes;
                  let t0 = Obs.now () in
                  fc.fc_cursor.Batch.stop ();
                  let stop = Obs.now () in
                  List.iter
                    (fun fn ->
                      Obs.Node.on_close fn.fn_node ~elapsed:(stop -. t0);
                      Obs.Node.on_span fn.fn_node ~start:span_start ~stop
                        ~rows:!(fn.fn_total))
                    nodes)
                (fun () ->
                  let continue = ref true in
                  while !continue do
                    let t0 = Obs.now () in
                    let n = step () in
                    let dt = Obs.now () -. t0 in
                    List.iter
                      (fun fn ->
                        Obs.Node.on_batch fn.fn_node ~rows:!(fn.fn_rows)
                          ~elapsed:dt;
                        fn.fn_total := !(fn.fn_total) + !(fn.fn_rows);
                        fn.fn_rows := 0)
                      nodes;
                    if n = 0 then continue := false
                  done))

(* [scope] is the cancellation scope enclosing this node: exchange nodes
   register their port in it and open a child scope over their producer
   subtrees, so that shutting any exchange cancels everything below it.
   The producer thunk re-enters [compile_stream], so nested exchanges get
   a fresh subtree (and fresh inner scopes) per producer, per open. *)
let rec compile_stream env ids obs group scope plan =
  match fuse env obs group plan with
  | Some pipeline -> Batches pipeline
  | None ->
      let faults = Env.faults env in
      let inner = guard faults (compile_node env ids obs group scope plan) in
      Rows
        (match Option.bind obs (fun o -> o.node_of plan) with
        | None -> inner
        | Some node -> Iterator.instrumented ~node inner)

and compile_in env ids obs group scope plan =
  match compile_stream env ids obs group scope plan with
  | Rows iter -> iter
  | Batches pipeline -> Batch.to_iterator pipeline

and compile_node env ids obs group scope plan =
  let faults = Env.faults env in
  let recur = compile_in env ids obs group scope in
  let sorted ~cmp input =
    Ops.Sort.iterator ~run_capacity:(Env.sort_run_capacity env)
      ~spill:(Env.spill env) ~cmp input
  in
  match plan with
  | Plan.Scan_table name -> Ops.Scan.heap (fst (Env.table env name))
  | Plan.Scan_table_slice name -> (
      let rank = Group.rank group in
      let partition_name = Printf.sprintf "%s#%d" name rank in
      match Env.table env partition_name with
      | file, _ -> Ops.Scan.heap file
      | exception Not_found ->
          slice_iterator group (Ops.Scan.heap (fst (Env.table env name))))
  | Plan.Scan_index { index; lo; hi } ->
      let tree, file, _key = Env.index env index in
      let encode t = Bytes.to_string (Volcano_tuple.Serial.encode t) in
      let bound = function
        | Plan.Ix_unbounded -> Volcano_btree.Btree.Unbounded
        | Plan.Ix_inclusive t -> Volcano_btree.Btree.Inclusive (encode t)
        | Plan.Ix_exclusive t -> Volcano_btree.Btree.Exclusive (encode t)
      in
      Ops.Scan.index_fetch ~tree ~file ~lo:(bound lo) ~hi:(bound hi)
  | Plan.Scan_list { tuples; _ } -> Iterator.of_list tuples
  | Plan.Generate { count; gen; _ } -> Iterator.generate ~count ~f:gen
  | Plan.Generate_slice { count; gen; _ } ->
      let rank = Group.rank group and size = Group.size group in
      let mine = (count - rank + size - 1) / size in
      Iterator.generate ~count:mine ~f:(fun i -> gen ((i * size) + rank))
  | Plan.Generate_range { start; count } ->
      let rank = Group.rank group and size = Group.size group in
      let mine = (count - rank + size - 1) / size in
      Iterator.generate ~count:mine ~f:(fun i ->
          [| Volcano_tuple.Value.Int (start + (i * size) + rank) |])
  | Plan.Filter { pred; mode; input } ->
      let pred =
        match mode with
        | `Compiled -> Support.of_pred pred
        | `Interpreted -> Support.of_pred_interpreted pred
      in
      Ops.Filter.iterator ~pred (recur input)
  | Plan.Project_cols { cols; input } -> Ops.Project.columns cols (recur input)
  | Plan.Project_exprs { exprs; input } -> Ops.Project.exprs exprs (recur input)
  | Plan.Sort { key; input } -> sorted ~cmp:(sort_cmp key) (recur input)
  | Plan.Match { algo; kind; left_key; right_key; left; right } -> (
      let left_arity = Plan.arity env left in
      let right_arity = Plan.arity env right in
      match algo with
      | Plan.Sort_based ->
          Ops.Merge_match.iterator ~kind ~left_key ~right_key ~left_arity
            ~right_arity
            ~left:(sorted ~cmp:(cols_cmp left_key) (recur left))
            ~right:(sorted ~cmp:(cols_cmp right_key) (recur right))
      | Plan.Hash_based ->
          Ops.Hash_match.iterator
            ~build_capacity:(Env.sort_run_capacity env)
            ~spill:(Env.spill env) ~kind ~left_key ~right_key ~left_arity
            ~right_arity (recur left) (recur right))
  | Plan.Cross { left; right } ->
      Ops.Nested_loops.cross ~left:(recur left) ~right:(recur right)
  | Plan.Theta_join { pred; left; right } ->
      Ops.Nested_loops.join ~pred:(Support.of_pred pred) ~left:(recur left)
        ~right:(recur right)
  | Plan.Aggregate { algo; group_by; aggs; input } -> (
      match algo with
      | Plan.Hash_based -> (
          (* Batch-aware consumer.  Best case: the whole input chain
             sink-fuses into the hash build's drive loop — not even a
             packet shell between the scan and the accumulators.
             Projections sitting directly under the aggregate are folded
             into the aggregate's own key and argument expressions
             ([Expr.subst] — exact, since expression evaluation is
             total), so the fused loop never materializes the projected
             tuple.  Folding drops those nodes from the compiled tree,
             so it is gated off whenever per-node observability or fault
             injection needs every operator materialized.  Otherwise, a
             batch pipeline feeds the build straight out of packets,
             skipping the record bridge. *)
          let plain = Option.is_none obs && Injector.is_none faults in
          let subst_agg bind agg =
            match agg with
            | Ops.Aggregate.Count -> agg
            | Ops.Aggregate.Sum e -> Ops.Aggregate.Sum (Expr.subst bind e)
            | Ops.Aggregate.Min e -> Ops.Aggregate.Min (Expr.subst bind e)
            | Ops.Aggregate.Max e -> Ops.Aggregate.Max (Expr.subst bind e)
            | Ops.Aggregate.Avg e -> Ops.Aggregate.Avg (Expr.subst bind e)
          in
          let rec peel keys aggs input =
            let through bind inner =
              peel
                (List.map (Expr.subst bind) keys)
                (List.map (subst_agg bind) aggs)
                inner
            in
            match input with
            | Plan.Project_cols { cols; input } ->
                let arr = Array.of_list cols in
                through (fun i -> Expr.Col arr.(i)) input
            | Plan.Project_exprs { exprs; input } ->
                let arr = Array.of_list exprs in
                through (fun i -> arr.(i)) input
            | _ -> (keys, aggs, input)
          in
          let keys0 = List.map Expr.col group_by in
          let keys, aggs', input' =
            if plain then peel keys0 aggs input else (keys0, aggs, input)
          in
          match fused_drain env obs group input' with
          | Some drain -> Ops.Aggregate.hash_feed_exprs ~keys ~aggs:aggs' ~drain
          | None -> (
              (* The peeled chain did not fuse: compile the original
                 subtree, projections and all. *)
              match compile_stream env ids obs group scope input with
              | Batches pipeline ->
                  Ops.Aggregate.hash_batches ~group_by ~aggs pipeline
              | Rows iter -> Ops.Aggregate.hash_iterator ~group_by ~aggs iter))
      | Plan.Sort_based ->
          Ops.Aggregate.sorted_iterator ~group_by ~aggs
            (sorted ~cmp:(cols_cmp group_by) (recur input)))
  | Plan.Distinct { algo; on; input } -> (
      match algo with
      | Plan.Hash_based -> Ops.Aggregate.distinct_hash ~on (recur input)
      | Plan.Sort_based ->
          Ops.Aggregate.distinct_sorted ~on (sorted ~cmp:(cols_cmp on) (recur input)))
  | Plan.Division { algo; quotient; divisor_attrs; divisor_key; dividend; divisor }
    -> (
      match algo with
      | `Hash ->
          Ops.Division.hash_division ~quotient ~divisor_attrs ~divisor_key
            ~dividend:(recur dividend) ~divisor:(recur divisor)
      | `Count ->
          Ops.Division.count_division ~quotient ~divisor_attrs ~divisor_key
            ~dividend:(recur dividend) ~divisor:(recur divisor)
      | `Sort ->
          let dividend_key = quotient @ divisor_attrs in
          Ops.Division.sort_division ~quotient ~divisor_attrs ~divisor_key
            ~dividend:(sorted ~cmp:(cols_cmp dividend_key) (recur dividend))
            ~divisor:(sorted ~cmp:(cols_cmp divisor_key) (recur divisor)))
  | Plan.Limit { count; input } -> limit_iterator count (recur input)
  | Plan.Union_all { left; right } ->
      (* Bag concatenation: drain the left input to exhaustion, then the
         right.  Both open eagerly (like any binary operator) so nested
         exchanges fork their groups at open time. *)
      let l = recur left and r = recur right in
      let on_left = ref true in
      Iterator.make
        ~open_:(fun () ->
          on_left := true;
          Iterator.open_ l;
          Iterator.open_ r)
        ~next:(fun () ->
          if !on_left then
            match Iterator.next l with
            | Some _ as tuple -> tuple
            | None ->
                on_left := false;
                Iterator.next r
          else Iterator.next r)
        ~close:(fun () ->
          Iterator.close l;
          Iterator.close r)
  | Plan.Choose { decide; alternatives } ->
      Ops.Choose_plan.iterator ~decide
        ~alternatives:(Array.of_list (List.map recur alternatives))
  | Plan.Exchange { cfg; input } ->
      let child = Exchange.Scope.create () in
      (* Batch-aware producers: a fused subtree hands the producer task a
         batch pipeline whose packets it drains into port packets with no
         per-record closure hop — exchange stays the sole place records
         cross a domain boundary. *)
      Exchange.source_iterator ~id:(ids plan) ~faults ?parent_scope:scope
        ~scope:child
        ?obs:(exchange_obs obs plan)
        ~sched:(Env.sched env) cfg ~group
        ~input:(fun producer_group ->
          match
            compile_stream env ids obs producer_group (Some child) input
          with
          | Rows iter -> Exchange.Record_source iter
          | Batches pipeline -> Exchange.Batch_source pipeline)
  | Plan.Exchange_merge { cfg; key; input } ->
      let child = Exchange.Scope.create () in
      Ops.Merge.exchange_merge ~id:(ids plan) ~faults ?parent_scope:scope
        ~scope:child
        ?obs:(exchange_obs obs plan)
        ~sched:(Env.sched env) cfg ~cmp:(sort_cmp key) ~group
        ~input:(fun producer_group ->
          compile_in env ids obs producer_group (Some child) input)
  | Plan.Interchange { cfg; input } ->
      let child = Exchange.Scope.create () in
      Exchange.interchange ~id:(ids plan) ~faults ?parent_scope:scope
        ~scope:child
        ?obs:(exchange_obs obs plan)
        cfg ~group
        ~input:(compile_in env ids obs group (Some child) input)
  | Plan.Remote { cfg; workers; task; input = _ } ->
      (* The subtree never compiles here: worker processes rebuild it
         from [task], shard it, and stream packets back through the
         launcher's transport sources.  The launcher itself is injected
         through the environment so this library stays independent of the
         networking subsystem. *)
      let launch =
        match Env.remote_launcher env with
        | Some launch -> launch
        | None ->
            invalid_arg
              "Compile: Plan.Remote needs Env.set_remote_launcher (wire \
               Volcano_net.Launcher in)"
      in
      let child = Exchange.Scope.create () in
      (* A partitioning spec on a remote edge means exchange-boundary
         repartitioning: the launcher ships the partition function to the
         workers, and rows come back routed to the [consumers] ranks of
         this (consuming) group instead of merge-order.  With one
         consumer, routing degenerates to merging — skip the frames. *)
      let consumers = Group.size group in
      let repartition =
        match cfg.Exchange.partition with
        | Exchange.Round_robin -> None
        | spec when consumers > 1 -> Some (spec, consumers)
        | _ -> None
      in
      Exchange.remote_iterator ~id:(ids plan) ~faults ?parent_scope:scope
        ~scope:child
        ?obs:(exchange_obs obs plan)
        cfg ~group
        ~connect:(fun () ->
          launch ~faults ~repartition ~workers ~task
            ~packet_size:cfg.packet_size)

exception Rejected of Volcano_analysis.Diag.t list

let () =
  Printexc.register_printer (function
    | Rejected diags ->
        Some
          ("Compile.Rejected:\n"
          ^ String.concat "\n"
              (List.map Volcano_analysis.Diag.to_string diags))
    | _ -> None)

let analyze ?workers ?flow_budget ?batch_size env plan =
  let frames =
    Volcano_storage.Bufpool.frames_total (Env.buffer env)
  in
  let workers =
    match workers with Some w -> w | None -> Env.sched_workers env
  in
  let batch_size =
    match batch_size with Some b -> b | None -> Env.batch_size env
  in
  Volcano_analysis.Analyze.analyze ~frames ~workers ?flow_budget ~batch_size
    (Lower.ir env plan)

(* The root-level cancellation check: consult the flag once per record so
   a query cancelled from outside (Session/Runtime) stops pulling even
   when no exchange sits on the path to the root. *)
let cancel_guard flag inner =
  let check () =
    match Atomic.get flag with
    | Some exn -> raise (Exchange.as_query_failed ~fallback:"session" exn)
    | None -> ()
  in
  Iterator.make
    ~open_:(fun () ->
      check ();
      Iterator.open_ inner)
    ~next:(fun () ->
      check ();
      Iterator.next inner)
    ~close:(fun () -> Iterator.close inner)

let compile ?(check = true) ?obs ?scope ?cancel env plan =
  (if check then
     match Volcano_analysis.Diag.errors (analyze env plan) with
     | [] -> ()
     | errors -> raise (Rejected errors));
  let iter = compile_in env (assign_ids plan) obs (Group.solo ()) scope plan in
  match cancel with None -> iter | Some flag -> cancel_guard flag iter

let run ?check env plan = Iterator.to_list (compile ?check env plan)
let run_count ?check env plan = Iterator.consume (compile ?check env plan)
