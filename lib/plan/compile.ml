module Iterator = Volcano.Iterator
module Exchange = Volcano.Exchange
module Group = Volcano.Group
module Support = Volcano_tuple.Support
module Ops = Volcano_ops
module Injector = Volcano_fault.Injector
module Obs = Volcano_obs.Obs

(* Pre-assign port keys to exchange nodes, keyed by physical identity: the
   one compiled thunk shared by a group captures this table, so every
   member resolves the same node to the same key. *)
let assign_ids plan =
  let table = ref [] in
  let note node =
    if not (List.exists (fun (n, _) -> n == node) !table) then
      table := (node, Exchange.fresh_id ()) :: !table
  in
  let rec walk plan =
    (match plan with
    | Plan.Exchange _ | Plan.Exchange_merge _ | Plan.Interchange _ -> note plan
    | _ -> ());
    match plan with
    | Plan.Scan_table _ | Plan.Scan_table_slice _ | Plan.Scan_index _
    | Plan.Scan_list _ | Plan.Generate _ | Plan.Generate_slice _ ->
        ()
    | Plan.Filter { input; _ }
    | Plan.Project_cols { input; _ }
    | Plan.Project_exprs { input; _ }
    | Plan.Sort { input; _ }
    | Plan.Aggregate { input; _ }
    | Plan.Distinct { input; _ }
    | Plan.Limit { input; _ }
    | Plan.Exchange { input; _ }
    | Plan.Exchange_merge { input; _ }
    | Plan.Interchange { input; _ } ->
        walk input
    | Plan.Match { left; right; _ }
    | Plan.Cross { left; right }
    | Plan.Theta_join { left; right; _ } ->
        walk left;
        walk right
    | Plan.Choose { alternatives; _ } -> List.iter walk alternatives
    | Plan.Division { dividend; divisor; _ } ->
        walk dividend;
        walk divisor
  in
  walk plan;
  let ids = !table in
  fun node ->
    match List.find_opt (fun (n, _) -> n == node) ids with
    | Some (_, id) -> id
    | None -> invalid_arg "Compile: exchange node without id"

(* Observability: one obs node per plan node, keyed (like port ids) by
   physical identity so that every rank evaluating the same node — and
   every producer re-compiling a subtree per open — aggregates into the
   same counters. *)
type obs = { sink : Obs.t; node_of : Plan.t -> Obs.Node.t option }

let observe sink plan =
  if not (Obs.enabled sink) then { sink; node_of = (fun _ -> None) }
  else begin
    let table = ref [] in
    (* Pre-order walk: node ids follow the display order of [Plan.pp]. *)
    let rec walk plan =
      if not (List.exists (fun (n, _) -> n == plan) !table) then begin
        table := (plan, Obs.node sink ~label:(Plan.label plan)) :: !table;
        List.iter walk (Plan.children plan)
      end
    in
    walk plan;
    let entries = !table in
    {
      sink;
      node_of =
        (fun node ->
          Option.map snd (List.find_opt (fun (n, _) -> n == node) entries));
    }
  end

(* The (sink, node) pair handed to an exchange node for its port/group
   instrumentation. *)
let exchange_obs obs plan =
  match obs with
  | None -> None
  | Some o -> Option.map (fun node -> (o.sink, node)) (o.node_of plan)

(* Every Nth tuple, offset by the group rank — used by the slice leaves. *)
let slice_iterator group inner =
  let rank = Group.rank group and size = Group.size group in
  if size = 1 then inner
  else begin
    let index = ref 0 in
    Iterator.make
      ~open_:(fun () ->
        index := 0;
        Iterator.open_ inner)
      ~next:(fun () ->
        let rec step () =
          match Iterator.next inner with
          | None -> None
          | Some tuple ->
              let i = !index in
              incr index;
              if i mod size = rank then Some tuple else step ()
        in
        step ())
      ~close:(fun () -> Iterator.close inner)
  end

let limit_iterator count inner =
  let remaining = ref count in
  Iterator.make
    ~open_:(fun () ->
      remaining := count;
      Iterator.open_ inner)
    ~next:(fun () ->
      if !remaining <= 0 then None
      else
        match Iterator.next inner with
        | None -> None
        | Some tuple ->
            decr remaining;
            Some tuple)
    ~close:(fun () -> Iterator.close inner)

let sort_cmp key = Support.compare_on key
let cols_cmp cols = Support.compare_cols cols

(* With faults installed, every compiled node also checks the generic
   [Operator] site once per record — a failure "anywhere in the operator
   tree", not tied to a specific subsystem. *)
let guard faults inner =
  if Injector.is_none faults then inner
  else
    Iterator.make
      ~open_:(fun () -> Iterator.open_ inner)
      ~next:(fun () ->
        Injector.hit faults Volcano_fault.Operator;
        Iterator.next inner)
      ~close:(fun () -> Iterator.close inner)

(* [scope] is the cancellation scope enclosing this node: exchange nodes
   register their port in it and open a child scope over their producer
   subtrees, so that shutting any exchange cancels everything below it.
   The producer thunk re-enters [compile_in], so nested exchanges get a
   fresh subtree (and fresh inner scopes) per producer, per open. *)
let rec compile_in env ids obs group scope plan =
  let faults = Env.faults env in
  let inner = guard faults (compile_node env ids obs group scope plan) in
  match obs with
  | None -> inner
  | Some o -> (
      match o.node_of plan with
      | None -> inner
      | Some node -> Iterator.instrumented ~node inner)

and compile_node env ids obs group scope plan =
  let faults = Env.faults env in
  let recur = compile_in env ids obs group scope in
  let sorted ~cmp input =
    Ops.Sort.iterator ~run_capacity:(Env.sort_run_capacity env)
      ~spill:(Env.spill env) ~cmp input
  in
  match plan with
  | Plan.Scan_table name -> Ops.Scan.heap (fst (Env.table env name))
  | Plan.Scan_table_slice name -> (
      let rank = Group.rank group in
      let partition_name = Printf.sprintf "%s#%d" name rank in
      match Env.table env partition_name with
      | file, _ -> Ops.Scan.heap file
      | exception Not_found ->
          slice_iterator group (Ops.Scan.heap (fst (Env.table env name))))
  | Plan.Scan_index { index; lo; hi } ->
      let tree, file, _key = Env.index env index in
      let encode t = Bytes.to_string (Volcano_tuple.Serial.encode t) in
      let bound = function
        | Plan.Ix_unbounded -> Volcano_btree.Btree.Unbounded
        | Plan.Ix_inclusive t -> Volcano_btree.Btree.Inclusive (encode t)
        | Plan.Ix_exclusive t -> Volcano_btree.Btree.Exclusive (encode t)
      in
      Ops.Scan.index_fetch ~tree ~file ~lo:(bound lo) ~hi:(bound hi)
  | Plan.Scan_list { tuples; _ } -> Iterator.of_list tuples
  | Plan.Generate { count; gen; _ } -> Iterator.generate ~count ~f:gen
  | Plan.Generate_slice { count; gen; _ } ->
      let rank = Group.rank group and size = Group.size group in
      let mine = (count - rank + size - 1) / size in
      Iterator.generate ~count:mine ~f:(fun i -> gen ((i * size) + rank))
  | Plan.Filter { pred; mode; input } ->
      let pred =
        match mode with
        | `Compiled -> Support.of_pred pred
        | `Interpreted -> Support.of_pred_interpreted pred
      in
      Ops.Filter.iterator ~pred (recur input)
  | Plan.Project_cols { cols; input } -> Ops.Project.columns cols (recur input)
  | Plan.Project_exprs { exprs; input } -> Ops.Project.exprs exprs (recur input)
  | Plan.Sort { key; input } -> sorted ~cmp:(sort_cmp key) (recur input)
  | Plan.Match { algo; kind; left_key; right_key; left; right } -> (
      let left_arity = Plan.arity env left in
      let right_arity = Plan.arity env right in
      match algo with
      | Plan.Sort_based ->
          Ops.Merge_match.iterator ~kind ~left_key ~right_key ~left_arity
            ~right_arity
            ~left:(sorted ~cmp:(cols_cmp left_key) (recur left))
            ~right:(sorted ~cmp:(cols_cmp right_key) (recur right))
      | Plan.Hash_based ->
          Ops.Hash_match.iterator
            ~build_capacity:(Env.sort_run_capacity env)
            ~spill:(Env.spill env) ~kind ~left_key ~right_key ~left_arity
            ~right_arity (recur left) (recur right))
  | Plan.Cross { left; right } ->
      Ops.Nested_loops.cross ~left:(recur left) ~right:(recur right)
  | Plan.Theta_join { pred; left; right } ->
      Ops.Nested_loops.join ~pred:(Support.of_pred pred) ~left:(recur left)
        ~right:(recur right)
  | Plan.Aggregate { algo; group_by; aggs; input } -> (
      match algo with
      | Plan.Hash_based -> Ops.Aggregate.hash_iterator ~group_by ~aggs (recur input)
      | Plan.Sort_based ->
          Ops.Aggregate.sorted_iterator ~group_by ~aggs
            (sorted ~cmp:(cols_cmp group_by) (recur input)))
  | Plan.Distinct { algo; on; input } -> (
      match algo with
      | Plan.Hash_based -> Ops.Aggregate.distinct_hash ~on (recur input)
      | Plan.Sort_based ->
          Ops.Aggregate.distinct_sorted ~on (sorted ~cmp:(cols_cmp on) (recur input)))
  | Plan.Division { algo; quotient; divisor_attrs; divisor_key; dividend; divisor }
    -> (
      match algo with
      | `Hash ->
          Ops.Division.hash_division ~quotient ~divisor_attrs ~divisor_key
            ~dividend:(recur dividend) ~divisor:(recur divisor)
      | `Count ->
          Ops.Division.count_division ~quotient ~divisor_attrs ~divisor_key
            ~dividend:(recur dividend) ~divisor:(recur divisor)
      | `Sort ->
          let dividend_key = quotient @ divisor_attrs in
          Ops.Division.sort_division ~quotient ~divisor_attrs ~divisor_key
            ~dividend:(sorted ~cmp:(cols_cmp dividend_key) (recur dividend))
            ~divisor:(sorted ~cmp:(cols_cmp divisor_key) (recur divisor)))
  | Plan.Limit { count; input } -> limit_iterator count (recur input)
  | Plan.Choose { decide; alternatives } ->
      Ops.Choose_plan.iterator ~decide
        ~alternatives:(Array.of_list (List.map recur alternatives))
  | Plan.Exchange { cfg; input } ->
      let child = Exchange.Scope.create () in
      Exchange.iterator ~id:(ids plan) ~faults ?parent_scope:scope ~scope:child
        ?obs:(exchange_obs obs plan) ~sched:(Env.sched env) cfg ~group
        ~input:(fun producer_group ->
          compile_in env ids obs producer_group (Some child) input)
  | Plan.Exchange_merge { cfg; key; input } ->
      let child = Exchange.Scope.create () in
      Ops.Merge.exchange_merge ~id:(ids plan) ~faults ?parent_scope:scope
        ~scope:child
        ?obs:(exchange_obs obs plan)
        ~sched:(Env.sched env) cfg ~cmp:(sort_cmp key) ~group
        ~input:(fun producer_group ->
          compile_in env ids obs producer_group (Some child) input)
  | Plan.Interchange { cfg; input } ->
      let child = Exchange.Scope.create () in
      Exchange.interchange ~id:(ids plan) ~faults ?parent_scope:scope
        ~scope:child
        ?obs:(exchange_obs obs plan)
        cfg ~group
        ~input:(compile_in env ids obs group (Some child) input)

exception Rejected of Volcano_analysis.Diag.t list

let () =
  Printexc.register_printer (function
    | Rejected diags ->
        Some
          ("Compile.Rejected:\n"
          ^ String.concat "\n"
              (List.map Volcano_analysis.Diag.to_string diags))
    | _ -> None)

let analyze ?workers ?flow_budget env plan =
  let frames =
    Volcano_storage.Bufpool.frames_total (Env.buffer env)
  in
  let workers =
    match workers with Some w -> w | None -> Env.sched_workers env
  in
  Volcano_analysis.Analyze.analyze ~frames ~workers ?flow_budget
    (Lower.ir env plan)

(* The root-level cancellation check: consult the flag once per record so
   a query cancelled from outside (Session/Runtime) stops pulling even
   when no exchange sits on the path to the root. *)
let cancel_guard flag inner =
  let check () =
    match Atomic.get flag with
    | Some exn -> raise (Exchange.as_query_failed ~fallback:"session" exn)
    | None -> ()
  in
  Iterator.make
    ~open_:(fun () ->
      check ();
      Iterator.open_ inner)
    ~next:(fun () ->
      check ();
      Iterator.next inner)
    ~close:(fun () -> Iterator.close inner)

let compile ?(check = true) ?obs ?scope ?cancel env plan =
  (if check then
     match Volcano_analysis.Diag.errors (analyze env plan) with
     | [] -> ()
     | errors -> raise (Rejected errors));
  let iter = compile_in env (assign_ids plan) obs (Group.solo ()) scope plan in
  match cancel with None -> iter | Some flag -> cancel_guard flag iter

let run ?check env plan = Iterator.to_list (compile ?check env plan)
let run_count ?check env plan = Iterator.consume (compile ?check env plan)
