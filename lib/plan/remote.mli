(** Worker-side sharding for [Plan.Remote] subtrees.

    A remote worker compiles its subtree in a solo group, so the
    group-rank-governed leaves must be rewritten to the worker's shard
    explicitly; {!slice} performs exactly the rewrite that makes worker
    [shard] of [shards] produce what local producer rank [shard] of a
    [shards]-wide exchange group produces — the invariant behind the
    remote-vs-local differential test. *)

val slice : shard:int -> shards:int -> Plan.t -> Plan.t
(** Rewrite [Generate_slice] leaves to this shard's slice (a plain
    [Generate] over indices [shard, shard+shards, ...]) and
    [Scan_table_slice] leaves to a scan of partition file
    ["table#shard"] ({!Volcano_storage.Shard.partition_name} — the
    worker's site must hold that partition, or compilation fails its
    catalog lookup and the failure crosses as an [Err] frame); leave
    duplicated leaves and nested exchange boundaries untouched; recurse
    through everything else (including [Interchange], which compiles in
    the same group).
    @raise Invalid_argument on a shard outside [0, shards). *)

val shard_pull :
  Env.t ->
  shard:int ->
  shards:int ->
  Plan.t ->
  unit ->
  Volcano_tuple.Tuple.t option
(** Compile this shard's slice of the subtree and return a record pull —
    the resolve hook for [Volcano_net.Worker.run].  The iterator opens on
    the first call, closes at end of stream, and closes best-effort if a
    pull raises (the exception propagates, for the worker to report as an
    [Err] frame). *)
