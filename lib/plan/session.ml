module Sched = Volcano_sched.Sched
module Runtime = Volcano_sched.Runtime
module Exchange = Volcano.Exchange
module Iterator = Volcano.Iterator

type t = {
  env : Env.t;
  sched_ : Sched.t;
  runtime : Runtime.t;
  owns_sched : bool; (* created here, so shut down here *)
}

let create ?frames ?page_size ?workspace_capacity ?batch_size ?sched ?workers
    ?max_concurrent () =
  let sched_, owns_sched =
    match (sched, workers) with
    | Some _, Some _ ->
        invalid_arg "Session.create: pass either ~sched or ~workers, not both"
    | Some s, None -> (s, false)
    | None, Some w -> (Sched.create ~workers:w (), true)
    | None, None -> (Sched.default (), false)
  in
  let env =
    Env.create ?frames ?page_size ?workspace_capacity ?batch_size ~sched:sched_
      ()
  in
  { env; sched_; runtime = Runtime.create ?max_concurrent sched_; owns_sched }

let env t = t.env
let sched t = t.sched_
let runtime t = t.runtime
let set_faults t faults = Env.set_faults t.env faults
let clear_faults t = Env.clear_faults t.env

(* --- the SQL front door ------------------------------------------------ *)

type input = [ `Sql of string | `Plan of Plan.t ]

exception No_frontend

type compiled_query = { cq_plan : Plan.t; cq_explain : string }

(* The plan layer cannot depend on the SQL layer, so the front end is a
   process-wide hook the SQL library installs explicitly
   ([Volcano_sql.install ()]) — explicit because OCaml never links (or
   initializes) a library no one references. *)
let frontend :
    (?workers:int -> Env.t -> string -> compiled_query) option Atomic.t =
  Atomic.make None

let set_frontend f = Atomic.set frontend (Some f)

let compile_sql ?workers t sql =
  match Atomic.get frontend with
  | None -> raise No_frontend
  | Some f -> f ?workers t.env sql

let resolve t = function
  | `Plan p -> p
  | `Sql sql -> (compile_sql t sql).cq_plan

let query_label = function
  | `Plan _ -> None
  | `Sql sql -> Some (if String.length sql <= 60 then sql
                      else String.sub sql 0 57 ^ "...")

type 'a job = 'a Runtime.job

(* Each query gets a root cancellation scope (the parent of its top-level
   exchanges) and a cancel flag checked at the root iterator: cancelling
   poisons the plan at its leaves and stops the drain at its root, so the
   job fails promptly whether or not an exchange is currently active. *)
let submit_plan t ?check ?deadline_s ?label collect plan =
  let scope = Exchange.Scope.create () in
  let flag = Atomic.make None in
  Runtime.submit t.runtime ?deadline_s ?label
    ~on_cancel:(fun exn ->
      Atomic.set flag (Some exn);
      Exchange.Scope.poison scope exn)
    (fun () ->
      let iter = Compile.compile ?check ~scope ~cancel:flag t.env plan in
      collect iter)

let submit_with t ?check ?deadline_s ?label collect input =
  let label = match label with Some _ -> label | None -> query_label input in
  submit_plan t ?check ?deadline_s ?label collect (resolve t input)

let submit ?check ?deadline_s ?label t input =
  submit_with t ?check ?deadline_s ?label Iterator.to_list input

let submit_count ?check ?deadline_s ?label t input =
  submit_with t ?check ?deadline_s ?label Iterator.consume input

let await = Runtime.await
let cancel = Runtime.cancel
let status = Runtime.status

let block_on job =
  match Runtime.await job with Ok v -> v | Error exn -> raise exn

let exec ?check ?deadline_s t input =
  block_on (submit ?check ?deadline_s t input)

let exec_count ?check ?deadline_s t input =
  block_on (submit_count ?check ?deadline_s t input)

let query t sql = exec t (`Sql sql)
let explain ?workers t sql = (compile_sql ?workers t sql).cq_explain
let profile ?check t input = Profile.execute ?check t.env (resolve t input)

let analyze ?workers ?flow_budget ?batch_size t input =
  Compile.analyze ?workers ?flow_budget ?batch_size t.env (resolve t input)

let close t =
  Runtime.close t.runtime;
  if t.owns_sched then Sched.shutdown t.sched_

let with_session ?frames ?page_size ?workspace_capacity ?batch_size ?sched
    ?workers ?max_concurrent f =
  let t =
    create ?frames ?page_size ?workspace_capacity ?batch_size ?sched ?workers
      ?max_concurrent ()
  in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
