module Sched = Volcano_sched.Sched
module Runtime = Volcano_sched.Runtime
module Exchange = Volcano.Exchange
module Iterator = Volcano.Iterator

type t = {
  env : Env.t;
  sched_ : Sched.t;
  runtime : Runtime.t;
  owns_sched : bool; (* created here, so shut down here *)
}

let create ?frames ?page_size ?workspace_capacity ?batch_size ?sched ?workers
    ?max_concurrent () =
  let sched_, owns_sched =
    match (sched, workers) with
    | Some _, Some _ ->
        invalid_arg "Session.create: pass either ~sched or ~workers, not both"
    | Some s, None -> (s, false)
    | None, Some w -> (Sched.create ~workers:w (), true)
    | None, None -> (Sched.default (), false)
  in
  let env =
    Env.create ?frames ?page_size ?workspace_capacity ?batch_size ~sched:sched_
      ()
  in
  { env; sched_; runtime = Runtime.create ?max_concurrent sched_; owns_sched }

let env t = t.env
let sched t = t.sched_
let runtime t = t.runtime
let set_faults t faults = Env.set_faults t.env faults
let clear_faults t = Env.clear_faults t.env

type 'a job = 'a Runtime.job

(* Each query gets a root cancellation scope (the parent of its top-level
   exchanges) and a cancel flag checked at the root iterator: cancelling
   poisons the plan at its leaves and stops the drain at its root, so the
   job fails promptly whether or not an exchange is currently active. *)
let submit_with t ?check ?deadline_s ?label collect plan =
  let scope = Exchange.Scope.create () in
  let flag = Atomic.make None in
  Runtime.submit t.runtime ?deadline_s ?label
    ~on_cancel:(fun exn ->
      Atomic.set flag (Some exn);
      Exchange.Scope.poison scope exn)
    (fun () ->
      let iter = Compile.compile ?check ~scope ~cancel:flag t.env plan in
      collect iter)

let submit ?check ?deadline_s ?label t plan =
  submit_with t ?check ?deadline_s ?label Iterator.to_list plan

let submit_count ?check ?deadline_s ?label t plan =
  submit_with t ?check ?deadline_s ?label Iterator.consume plan

let await = Runtime.await
let cancel = Runtime.cancel
let status = Runtime.status

let block_on job =
  match Runtime.await job with Ok v -> v | Error exn -> raise exn

let exec ?check ?deadline_s t plan = block_on (submit ?check ?deadline_s t plan)

let exec_count ?check ?deadline_s t plan =
  block_on (submit_count ?check ?deadline_s t plan)

let profile ?check t plan = Profile.run ?check t.env plan

let analyze ?workers ?flow_budget ?batch_size t plan =
  Compile.analyze ?workers ?flow_budget ?batch_size t.env plan

let close t =
  Runtime.close t.runtime;
  if t.owns_sched then Sched.shutdown t.sched_

let with_session ?frames ?page_size ?workspace_capacity ?batch_size ?sched
    ?workers ?max_concurrent f =
  let t =
    create ?frames ?page_size ?workspace_capacity ?batch_size ?sched ?workers
      ?max_concurrent ()
  in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
