module Expr = Volcano_tuple.Expr

type partition =
  | Round_robin
  | Hash_on of int list
  | Range_on of int * int
  | Custom
  | Broadcast

type cfg = {
  degree : int;
  packet_size : int;
  flow_slack : int option;
  partition : partition;
}

type direction = Asc | Desc

type sort_key = (int * direction) list

type algo = Sort_based | Hash_based

type t =
  | Leaf of {
      label : string;
      arity : int;
      rows : int option;
      bad_rows : int;
      parts : int option;
          (* for a partitioned stored-table leaf (scan-slice), the
             partition count from the catalog — the remote-placement pass
             checks it against the worker count *)
    }
  | Unresolved of { label : string }
  | Filter of { cols : int list; input : t }
  | Project_cols of { cols : int list; input : t }
  | Project_exprs of { arity : int; cols : int list; input : t }
  | Sort of { key : sort_key; input : t }
  | Match of {
      algo : algo;
      kind : Volcano_ops.Match_op.kind;
      left_key : int list;
      right_key : int list;
      left : t;
      right : t;
    }
  | Cross of { left : t; right : t }
  | Theta_join of { cols : int list; left : t; right : t }
  | Aggregate of {
      algo : algo;
      group_by : int list;
      agg_cols : int list list;
      input : t;
    }
  | Distinct of { algo : algo; on : int list; input : t }
  | Division of {
      algo : [ `Hash | `Count | `Sort ];
      quotient : int list;
      divisor_attrs : int list;
      divisor_key : int list;
      dividend : t;
      divisor : t;
    }
  | Limit of { count : int; input : t }
  | Union_all of { left : t; right : t }
  | Choose of { alternatives : t list }
  | Exchange of { cfg : cfg; input : t }
  | Exchange_merge of { cfg : cfg; key : sort_key; input : t }
  | Interchange of { cfg : cfg; input : t }
  | Remote of { cfg : cfg; workers : int; task : string; input : t }

let label = function
  | Leaf { label; _ } | Unresolved { label; _ } -> label
  | Filter _ -> "filter"
  | Project_cols _ | Project_exprs _ -> "project"
  | Sort _ -> "sort"
  | Match _ -> "match"
  | Cross _ -> "cross"
  | Theta_join _ -> "theta-join"
  | Aggregate _ -> "aggregate"
  | Distinct _ -> "distinct"
  | Division _ -> "division"
  | Limit _ -> "limit"
  | Union_all _ -> "union-all"
  | Choose _ -> "choose"
  | Exchange _ -> "exchange"
  | Exchange_merge _ -> "exchange-merge"
  | Interchange _ -> "interchange"
  | Remote _ -> "remote-exchange"

let rec num_cols acc = function
  | Expr.Col c -> c :: acc
  | Expr.Const _ -> acc
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b)
  | Expr.Mod (a, b) ->
      num_cols (num_cols acc a) b
  | Expr.Neg a -> num_cols acc a

let rec pred_cols acc = function
  | Expr.True | Expr.False -> acc
  | Expr.Cmp (_, a, b) -> num_cols (num_cols acc a) b
  | Expr.And (p, q) | Expr.Or (p, q) -> pred_cols (pred_cols acc p) q
  | Expr.Not p -> pred_cols acc p
  | Expr.Is_null n | Expr.Str_prefix (_, n) -> num_cols acc n

let cols_of_num e = List.sort_uniq compare (num_cols [] e)
let cols_of_pred p = List.sort_uniq compare (pred_cols [] p)
