module Match_op = Volcano_ops.Match_op

let child_path path seg = if path = "" then seg else path ^ "/" ^ seg

(* ------------------------------------------------------------------ *)
(* Pass 1: schema / arity inference                                    *)

let schema_pass root =
  let diags = ref [] in
  let err path code msg = diags := Diag.error ~code ~path msg :: !diags in
  let warn path code msg = diags := Diag.warning ~code ~path msg :: !diags in
  (* Column checks are skipped when the input arity is unknown (an
     [Unresolved] leaf below already carries its own error). *)
  let check_cols path what arity cols =
    match arity with
    | None -> ()
    | Some a ->
        List.iter
          (fun c ->
            if c < 0 || c >= a then
              err path "schema-col"
                (Printf.sprintf
                   "%s references column %d, but the input has %d column(s)"
                   what c a))
          cols
  in
  let rec infer prefix node =
    let path = child_path prefix (Ir.label node) in
    match node with
    | Ir.Leaf { arity; bad_rows; _ } ->
        if bad_rows > 0 then
          err path "schema-row-width"
            (Printf.sprintf
               "%d literal tuple(s) do not match the declared arity %d"
               bad_rows arity);
        Some arity
    | Ir.Unresolved { label } ->
        err path "schema-unknown-source" (label ^ " is not in the catalog");
        None
    | Ir.Filter { cols; input } ->
        let a = infer path input in
        check_cols path "filter predicate" a cols;
        a
    | Ir.Project_cols { cols; input } ->
        let a = infer path input in
        check_cols path "projection" a cols;
        Some (List.length cols)
    | Ir.Project_exprs { arity; cols; input } ->
        let a = infer path input in
        check_cols path "projection expression" a cols;
        Some arity
    | Ir.Sort { key; input } ->
        let a = infer path input in
        check_cols path "sort key" a (List.map fst key);
        a
    | Ir.Match { kind; left_key; right_key; left; right; _ } ->
        let la = infer (child_path path "left") left in
        let ra = infer (child_path path "right") right in
        if List.length left_key <> List.length right_key then
          err path "schema-match-keys"
            (Printf.sprintf
               "left key has %d column(s) but right key has %d; keys are \
                matched pairwise"
               (List.length left_key)
               (List.length right_key));
        check_cols path "match left key" la left_key;
        check_cols path "match right key" ra right_key;
        (match kind with
        | Match_op.Union | Match_op.Intersection | Match_op.Difference
        | Match_op.Anti_difference -> (
            match (la, ra) with
            | Some l, Some r when l <> r ->
                err path "schema-union-arity"
                  (Printf.sprintf
                     "%s requires union-compatible inputs; left has %d \
                      column(s), right has %d"
                     (Match_op.to_string kind) l r)
            | _ -> ())
        | _ -> ());
        (match (la, ra) with
        | Some l, Some r ->
            Some (Match_op.output_arity kind ~left_arity:l ~right_arity:r)
        | _ -> None)
    | Ir.Cross { left; right } -> (
        let la = infer (child_path path "left") left in
        let ra = infer (child_path path "right") right in
        match (la, ra) with Some l, Some r -> Some (l + r) | _ -> None)
    | Ir.Theta_join { cols; left; right } ->
        let la = infer (child_path path "left") left in
        let ra = infer (child_path path "right") right in
        let combined =
          match (la, ra) with Some l, Some r -> Some (l + r) | _ -> None
        in
        check_cols path "join predicate" combined cols;
        combined
    | Ir.Aggregate { group_by; agg_cols; input; _ } ->
        let a = infer path input in
        check_cols path "group-by key" a group_by;
        List.iter (fun cols -> check_cols path "aggregate expression" a cols)
          agg_cols;
        Some (List.length group_by + List.length agg_cols)
    | Ir.Distinct { on; input; _ } ->
        let a = infer path input in
        check_cols path "distinct key" a on;
        a
    | Ir.Division { quotient; divisor_attrs; divisor_key; dividend; divisor; _ }
      ->
        let da = infer (child_path path "dividend") dividend in
        let va = infer (child_path path "divisor") divisor in
        check_cols path "division quotient" da quotient;
        check_cols path "division divisor attributes" da divisor_attrs;
        check_cols path "division divisor key" va divisor_key;
        if List.length divisor_attrs <> List.length divisor_key then
          err path "schema-division-keys"
            (Printf.sprintf
               "%d divisor attribute(s) in the dividend but %d divisor key \
                column(s); they are matched pairwise"
               (List.length divisor_attrs)
               (List.length divisor_key));
        Some (List.length quotient)
    | Ir.Limit { count; input } ->
        if count < 0 then
          err path "schema-limit"
            (Printf.sprintf "limit count %d is negative" count);
        infer path input
    | Ir.Union_all { left; right } -> (
        let la = infer (child_path path "left") left in
        let ra = infer (child_path path "right") right in
        match (la, ra) with
        | Some l, Some r when l <> r ->
            err path "schema-union-arity"
              (Printf.sprintf
                 "union-all requires union-compatible inputs; left has %d \
                  column(s), right has %d"
                 l r);
            Some l
        | Some l, _ -> Some l
        | None, ra -> ra)
    | Ir.Choose { alternatives } -> (
        match alternatives with
        | [] ->
            err path "schema-choose-empty" "choose-plan with no alternatives";
            None
        | alts ->
            let arities =
              List.mapi
                (fun i alt ->
                  infer (child_path path (Printf.sprintf "alt%d" i)) alt)
                alts
            in
            let known = List.filter_map Fun.id arities in
            (match List.sort_uniq compare known with
            | _ :: _ :: _ ->
                err path "schema-choose-arity"
                  (Printf.sprintf
                     "alternatives disagree on output arity (%s); the \
                      decision function would change the result width"
                     (String.concat ", " (List.map string_of_int known)))
            | _ -> ());
            List.nth_opt known 0)
    | Ir.Exchange { cfg; input } | Ir.Interchange { cfg; input } ->
        let a = infer path input in
        (match cfg.Ir.partition with
        | Ir.Hash_on [] ->
            warn path "schema-hash-empty"
              "hash partitioning on no columns sends every record to one \
               consumer"
        | Ir.Hash_on cols -> check_cols path "hash partition" a cols
        | Ir.Range_on (c, _) -> check_cols path "range partition" a [ c ]
        | Ir.Round_robin | Ir.Custom | Ir.Broadcast -> ());
        a
    | Ir.Exchange_merge { cfg; key; input } ->
        let a = infer path input in
        check_cols path "merge key" a (List.map fst key);
        (match cfg.Ir.partition with
        | Ir.Hash_on cols -> check_cols path "hash partition" a cols
        | Ir.Range_on (c, _) -> check_cols path "range partition" a [ c ]
        | _ -> ());
        a
    | Ir.Remote { input; _ } ->
        (* Workers rebuild the same subtree, so its schema holds across
           the wire; the partition spec is not re-applied on the wire edge
           (workers arrive pre-sharded), so its columns are not checked. *)
        infer path input
  in
  ignore (infer "" root);
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass 2: exchange configuration and placement                        *)

(* The sort key (if any) that a subtree's output is guaranteed to obey.
   Filter and limit preserve order; everything else is conservative. *)
let rec sorted_key_of = function
  | Ir.Sort { key; _ } -> Some key
  | Ir.Exchange_merge { key; _ } -> Some key
  | Ir.Filter { input; _ } | Ir.Limit { input; _ } -> sorted_key_of input
  | _ -> None

let rec is_key_prefix shorter longer =
  match (shorter, longer) with
  | [], _ -> true
  | _, [] -> false
  | a :: s, b :: l -> a = b && is_key_prefix s l

let key_to_string key =
  "["
  ^ String.concat ","
      (List.map
         (fun (c, dir) ->
           string_of_int c ^ match dir with Ir.Asc -> "" | Ir.Desc -> " desc")
         key)
  ^ "]"

let exchange_pass root =
  let diags = ref [] in
  let err path code msg = diags := Diag.error ~code ~path msg :: !diags in
  let warn path code msg = diags := Diag.warning ~code ~path msg :: !diags in
  (* [consumers] is the size of the group the node executes in — the
     consumer count of any exchange sitting at this position. *)
  let check_cfg path ~consumers (cfg : Ir.cfg) =
    (* The scalar-field checks are the runtime's own: one validation path
       shared with the [Exchange.config] smart constructor, so planlint
       can never drift from what the constructor accepts. *)
    List.iter
      (fun (code, msg) -> err path code msg)
      (Volcano.Exchange.validate ~degree:cfg.degree
         ~packet_size:cfg.packet_size ~flow_slack:cfg.flow_slack);
    match cfg.partition with
    | Ir.Range_on (_, bounds) when bounds <> consumers - 1 ->
        err path "exchange-range-bounds"
          (Printf.sprintf
             "range partitioning has %d split bound(s) for %d consumer(s); \
              exactly %d are required"
             bounds consumers (consumers - 1))
    | _ -> ()
  in
  let rec walk prefix consumers node =
    let path = child_path prefix (Ir.label node) in
    match node with
    | Ir.Leaf _ | Ir.Unresolved _ -> ()
    | Ir.Filter { input; _ }
    | Ir.Project_cols { input; _ }
    | Ir.Project_exprs { input; _ }
    | Ir.Sort { input; _ }
    | Ir.Aggregate { input; _ }
    | Ir.Distinct { input; _ }
    | Ir.Limit { input; _ } ->
        walk path consumers input
    | Ir.Match { left; right; _ } | Ir.Cross { left; right }
    | Ir.Theta_join { left; right; _ } | Ir.Union_all { left; right } ->
        walk (child_path path "left") consumers left;
        walk (child_path path "right") consumers right
    | Ir.Division { dividend; divisor; _ } ->
        walk (child_path path "dividend") consumers dividend;
        walk (child_path path "divisor") consumers divisor
    | Ir.Choose { alternatives } ->
        List.iteri
          (fun i alt ->
            walk (child_path path (Printf.sprintf "alt%d" i)) consumers alt)
          alternatives
    | Ir.Exchange { cfg; input } ->
        check_cfg path ~consumers cfg;
        walk path cfg.degree input
    | Ir.Exchange_merge { cfg; key; input } ->
        check_cfg path ~consumers cfg;
        (match sorted_key_of input with
        | Some produced when is_key_prefix key produced -> ()
        | Some produced ->
            err path "merge-unsorted"
              (Printf.sprintf
                 "merge key %s is not a prefix of the producers' sort key \
                  %s; the merged stream would not be ordered"
                 (key_to_string key) (key_to_string produced))
        | None ->
            err path "merge-unsorted"
              (Printf.sprintf
                 "producers of an exchange-merge must emit streams sorted \
                  on the merge key %s, but the input does not establish an \
                  order"
                 (key_to_string key)));
        walk path cfg.degree input
    | Ir.Interchange { cfg; input } ->
        check_cfg path ~consumers cfg;
        (match cfg.partition with
        | Ir.Broadcast ->
            err path "interchange-broadcast"
              "the no-fork interchange cannot broadcast (every process is \
               both producer and consumer of the same stream)"
        | _ -> ());
        if consumers = 1 then
          warn path "interchange-solo"
            "interchange in a solo group repartitions to itself; it is a \
             no-op costing a packet copy per record"
        else if cfg.degree <> consumers then
          warn path "interchange-degree"
            (Printf.sprintf
               "config degree %d is ignored by interchange; the enclosing \
                group size %d governs"
               cfg.degree consumers);
        walk path consumers input
    | Ir.Remote { cfg; input; _ } ->
        (* Only the scalar config fields govern the wire edge: the
           partition spec is not re-applied (workers arrive pre-sharded
           and the edge merges), so the range-bounds check is skipped.
           Each worker compiles the subtree in a solo group. *)
        List.iter
          (fun (code, msg) -> err path code msg)
          (Volcano.Exchange.validate ~degree:cfg.degree
             ~packet_size:cfg.packet_size ~flow_slack:cfg.flow_slack);
        walk path 1 input
  in
  walk "" 1 root;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass 3: dataflow deadlock hazards (section 4.4)                     *)

(* Exchanges whose consumer side is the current process: reachable from
   [node] without crossing another exchange boundary.  The no-fork
   interchange stays inside the process, so the search continues below
   it. *)
let rec frontier acc = function
  | Ir.Exchange { cfg; _ } | Ir.Exchange_merge { cfg; _ } | Ir.Remote { cfg; _ }
    ->
      cfg :: acc
  | Ir.Interchange { input; _ } -> frontier acc input
  | Ir.Leaf _ | Ir.Unresolved _ -> acc
  | Ir.Filter { input; _ }
  | Ir.Project_cols { input; _ }
  | Ir.Project_exprs { input; _ }
  | Ir.Sort { input; _ }
  | Ir.Aggregate { input; _ }
  | Ir.Distinct { input; _ }
  | Ir.Limit { input; _ } ->
      frontier acc input
  | Ir.Match { left; right; _ }
  | Ir.Cross { left; right }
  | Ir.Theta_join { left; right; _ }
  | Ir.Union_all { left; right } ->
      frontier (frontier acc left) right
  | Ir.Division { dividend; divisor; _ } ->
      frontier (frontier acc dividend) divisor
  | Ir.Choose { alternatives } -> List.fold_left frontier acc alternatives

let flow_controlled (cfg : Ir.cfg) = cfg.flow_slack <> None

let broadcast_flow cfg =
  cfg.Ir.partition = Ir.Broadcast && flow_controlled cfg

let deadlock_pass root =
  let diags = ref [] in
  let warn path code msg = diags := Diag.warning ~code ~path msg :: !diags in
  (* A binary operator with data-dependent input interleaving can block on
     either input depending on record values; fixed-order operators (hash
     match, hash/count division) fully drain one side first and cannot
     close a wait cycle. *)
  let interleaved_binary path consumers left right =
    if consumers >= 2 then begin
      let lf = frontier [] left and rf = frontier [] right in
      let hazard a b =
        List.exists broadcast_flow a && List.exists flow_controlled b
      in
      if hazard lf rf || hazard rf lf then
        warn path "deadlock-broadcast-flow"
          (Printf.sprintf
             "flow-controlled broadcast feeding one side of an operator \
              that interleaves its inputs, with a flow-controlled exchange \
              on the other side and %d consumers: a broadcast producer \
              blocked on one consumer's slack semaphore while that consumer \
              waits on the other input closes a wait cycle (section 4.4); \
              disable flow control on one of the exchanges"
             consumers)
    end
  in
  let rec walk prefix consumers node =
    let path = child_path prefix (Ir.label node) in
    match node with
    | Ir.Leaf _ | Ir.Unresolved _ -> ()
    | Ir.Filter { input; _ }
    | Ir.Project_cols { input; _ }
    | Ir.Project_exprs { input; _ }
    | Ir.Sort { input; _ }
    | Ir.Aggregate { input; _ }
    | Ir.Distinct { input; _ }
    | Ir.Limit { input; _ } ->
        walk path consumers input
    | Ir.Match { algo; left; right; _ } ->
        if algo = Ir.Sort_based then
          interleaved_binary path consumers left right;
        walk (child_path path "left") consumers left;
        walk (child_path path "right") consumers right
    | Ir.Cross { left; right } | Ir.Theta_join { left; right; _ } ->
        interleaved_binary path consumers left right;
        walk (child_path path "left") consumers left;
        walk (child_path path "right") consumers right
    (* Union-all drains left to exhaustion before pulling right: the
       fixed order cannot close a wait cycle, exactly like hash match. *)
    | Ir.Union_all { left; right } ->
        walk (child_path path "left") consumers left;
        walk (child_path path "right") consumers right
    | Ir.Division { algo; dividend; divisor; _ } ->
        if algo = `Sort then interleaved_binary path consumers dividend divisor;
        walk (child_path path "dividend") consumers dividend;
        walk (child_path path "divisor") consumers divisor
    | Ir.Choose { alternatives } ->
        List.iteri
          (fun i alt ->
            walk (child_path path (Printf.sprintf "alt%d" i)) consumers alt)
          alternatives
    | Ir.Exchange { cfg; input } -> walk path cfg.degree input
    | Ir.Exchange_merge { cfg; input; _ } ->
        if flow_controlled cfg && cfg.degree >= 2 && consumers >= 2 then
          warn path "deadlock-merge-flow"
            (Printf.sprintf
               "keep-separate merge network with flow control, %d producers \
                and %d consumers: a producer blocked on one consumer's \
                slack semaphore while another consumer waits on that \
                producer's stream closes a wait cycle (section 4.4); \
                disable flow control or merge in a solo group"
               cfg.degree consumers);
        walk path cfg.degree input
    | Ir.Interchange { input; _ } -> walk path consumers input
    | Ir.Remote { input; _ } ->
        (* Each worker evaluates the subtree in its own solo-group
           process; local wait cycles cannot reach across the socket. *)
        walk path 1 input
  in
  walk "" 1 root;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass 4: resource estimation                                         *)

let rec domains = function
  | Ir.Leaf _ | Ir.Unresolved _ -> 0
  | Ir.Filter { input; _ }
  | Ir.Project_cols { input; _ }
  | Ir.Project_exprs { input; _ }
  | Ir.Sort { input; _ }
  | Ir.Aggregate { input; _ }
  | Ir.Distinct { input; _ }
  | Ir.Limit { input; _ }
  | Ir.Interchange { input; _ } ->
      domains input
  | Ir.Match { left; right; _ }
  | Ir.Cross { left; right }
  | Ir.Theta_join { left; right; _ }
  | Ir.Union_all { left; right } ->
      domains left + domains right
  | Ir.Division { dividend; divisor; _ } -> domains dividend + domains divisor
  | Ir.Choose { alternatives } ->
      List.fold_left (fun acc alt -> max acc (domains alt)) 0 alternatives
  | Ir.Exchange { cfg; input } | Ir.Exchange_merge { cfg; input; _ } ->
      cfg.degree + domains input
  | Ir.Remote { cfg; _ } ->
      (* One local feeder domain per worker socket; the subtree's own
         domains live in the worker processes, not this one. *)
      cfg.degree

(* Concurrently fixed buffer pages, coarsely: a heap scan pins one page at
   a time, an index scan a root-to-leaf path (~3), an external sort or
   spilling hash table ~8 (runs being written plus the merge fan-in) —
   each per group member.  Sort-based binary operators sort both inputs
   themselves. *)
let rec pages members = function
  | Ir.Leaf { label; _ } ->
      let per_member =
        if String.length label >= 5 && String.sub label 0 5 = "index" then 3
        else if String.length label >= 4 && String.sub label 0 4 = "scan" then 1
        else 0
      in
      members * per_member
  | Ir.Unresolved _ -> 0
  | Ir.Filter { input; _ }
  | Ir.Project_cols { input; _ }
  | Ir.Project_exprs { input; _ }
  | Ir.Limit { input; _ }
  | Ir.Interchange { input; _ } ->
      pages members input
  | Ir.Sort { input; _ } -> (8 * members) + pages members input
  | Ir.Aggregate { algo; input; _ } | Ir.Distinct { algo; on = _; input } ->
      (match algo with Ir.Sort_based -> 8 * members | Ir.Hash_based -> 0)
      + pages members input
  | Ir.Match { algo; left; right; _ } ->
      (match algo with
      | Ir.Sort_based -> 16 * members (* sorts both inputs itself *)
      | Ir.Hash_based -> 8 * members (* spill partitions *))
      + pages members left + pages members right
  | Ir.Cross { left; right } | Ir.Theta_join { left; right; _ }
  | Ir.Union_all { left; right } ->
      pages members left + pages members right
  | Ir.Division { algo; dividend; divisor; _ } ->
      (match algo with `Sort -> 16 * members | `Hash | `Count -> 0)
      + pages members dividend + pages members divisor
  | Ir.Choose { alternatives } ->
      List.fold_left (fun acc alt -> max acc (pages members alt)) 0 alternatives
  | Ir.Exchange { cfg; input } | Ir.Exchange_merge { cfg; input; _ } ->
      pages cfg.degree input
  | Ir.Remote _ -> 0 (* the subtree pins pages in the workers' pools *)

let resource_pass ?(max_domains = 512) ?frames root =
  let diags = ref [] in
  let warn code msg = diags := Diag.warning ~code ~path:"root" msg :: !diags in
  let d = domains root in
  if d > max_domains then
    warn "resource-domains"
      (Printf.sprintf
         "plan forks %d producer domains, over the limit of %d; consider \
          lower degrees or the no-fork interchange"
         d max_domains);
  (match frames with
  | Some frames ->
      let p = pages 1 root in
      if p > frames then
        warn "resource-bufpool"
          (Printf.sprintf
             "estimated %d concurrently fixed buffer pages against a pool \
              of %d frames; expect thrashing or fix failures under load"
             p frames)
  | None -> ());
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass 5: scheduler placement (degree of parallelism)                 *)

(* Every exchange producer is one scheduler task alive for the whole
   query.  On the pooled scheduler those tasks share [workers] domains;
   a modest oversubscription is healthy (producers block on flow control
   and I/O), but past it consumers wait whole scheduling rounds between
   packets and the fork-per-group latency the pool was built to hide
   comes back as queueing delay. *)
let sched_pass ?(oversub = 4) ~workers root =
  if workers <= 0 then [] (* dedicated scheduler: one domain per task *)
  else
    let tasks = domains root in
    let limit = oversub * workers in
    if tasks > limit then
      [
        Diag.warning ~code:"sched-dop" ~path:"root"
          (Printf.sprintf
             "plan schedules %d concurrent producer tasks onto a pool of %d \
              worker(s) — over the %dx oversubscription advisory of %d; \
              consumers will wait whole scheduling rounds between packets; \
              lower the exchange degrees, use the no-fork interchange, or \
              size the pool up"
             tasks workers oversub limit);
      ]
    else []

(* ------------------------------------------------------------------ *)
(* Pass 6: flow-control memory bound                                   *)

(* A flow-controlled exchange bounds its buffering: each producer may be
   [flow_slack] packets ahead of each consumer, so the edge pins at most
   [degree x consumers x slack] packets of [packet_size] records at
   once.  Summed over the plan, that worst case is the query's packet
   memory high-water mark; compare it against a budget so a "bounded"
   plan whose bound is absurd is flagged before it runs.  Edges without
   flow control are unbounded by construction and are not counted — the
   paper's position is that their buffering is limited by operator
   demand, not by the exchange.  The no-fork interchange hands packets
   over synchronously and buffers nothing. *)
let memory_pass ?(flow_budget = 1 lsl 20) root =
  let worst = ref 0 in
  let edge (cfg : Ir.cfg) consumers =
    match cfg.flow_slack with
    | Some slack -> worst := !worst + (cfg.degree * consumers * slack * cfg.packet_size)
    | None -> ()
  in
  let rec walk consumers = function
    | Ir.Leaf _ | Ir.Unresolved _ -> ()
    | Ir.Filter { input; _ }
    | Ir.Project_cols { input; _ }
    | Ir.Project_exprs { input; _ }
    | Ir.Sort { input; _ }
    | Ir.Aggregate { input; _ }
    | Ir.Distinct { input; _ }
    | Ir.Limit { input; _ }
    | Ir.Interchange { input; _ } ->
        walk consumers input
    | Ir.Match { left; right; _ }
    | Ir.Cross { left; right }
    | Ir.Theta_join { left; right; _ }
    | Ir.Union_all { left; right } ->
        walk consumers left;
        walk consumers right
    | Ir.Division { dividend; divisor; _ } ->
        walk consumers dividend;
        walk consumers divisor
    | Ir.Choose { alternatives } -> List.iter (walk consumers) alternatives
    | Ir.Exchange { cfg; input } | Ir.Exchange_merge { cfg; input; _ } ->
        edge cfg consumers;
        walk cfg.degree input
    | Ir.Remote { cfg; input; _ } ->
        (* The local port behind the wire edge buffers like any exchange
           edge.  The subtree compiles solo in each of [degree] worker
           processes, so its edges recur [degree] times — the same
           multiplier the walk applies. *)
        edge cfg consumers;
        walk cfg.degree input
  in
  walk 1 root;
  if !worst > flow_budget then
    [
      Diag.warning ~code:"mem-flow-slack" ~path:"root"
        (Printf.sprintf
           "flow-control slack admits up to %d buffered records across the \
            plan's exchange edges, over the budget of %d; shrink flow_slack, \
            packet_size, or the degrees (worst case = sum over \
            flow-controlled edges of degree x consumers x slack x \
            packet_size)"
           !worst flow_budget);
    ]
  else []

(* ------------------------------------------------------------------ *)
(* Pass 7: batch-size legality                                         *)

(* The vectorized path's knob shares the runtime's validation
   ([Volcano.Batch.validate], exactly as the exchange cfg checks share
   [Exchange.validate]), so planlint can never drift from what
   [Batch.fused] accepts.  Every exchange edge is then checked against
   the knob: batches never cross an exchange edge unpacketized — the
   producer re-packetizes rows onto the port's pooled shells — so a
   port packet smaller than the batch size splits every batch at the
   boundary and gives back the per-record overhead batching amortized. *)
let batch_pass ?(batch_size = Volcano.Batch.default_size) root =
  let diags = ref [] in
  List.iter
    (fun (code, msg) -> diags := Diag.error ~code ~path:"root" msg :: !diags)
    (Volcano.Batch.validate ~batch_size);
  if !diags = [] && batch_size > 0 then begin
    let check_edge path (cfg : Ir.cfg) =
      (* Malformed packet sizes are the exchange pass's to report. *)
      if cfg.packet_size >= 1 && cfg.packet_size < batch_size then
        diags :=
          Diag.warning ~code:"batch-packet-mismatch" ~path
            (Printf.sprintf
               "port packet size %d is smaller than the batch size %d; \
                every batch re-packetizes into %d+ port packets at this \
                edge, giving back the per-record overhead batching \
                amortized — raise packet_size to at least the batch size \
                or lower the batch size"
               cfg.packet_size batch_size
               ((batch_size + cfg.packet_size - 1) / cfg.packet_size))
          :: !diags
    in
    let rec walk prefix node =
      let path = child_path prefix (Ir.label node) in
      match node with
      | Ir.Leaf _ | Ir.Unresolved _ -> ()
      | Ir.Filter { input; _ }
      | Ir.Project_cols { input; _ }
      | Ir.Project_exprs { input; _ }
      | Ir.Sort { input; _ }
      | Ir.Aggregate { input; _ }
      | Ir.Distinct { input; _ }
      | Ir.Limit { input; _ } ->
          walk path input
      | Ir.Match { left; right; _ }
      | Ir.Cross { left; right }
      | Ir.Theta_join { left; right; _ }
      | Ir.Union_all { left; right } ->
          walk (child_path path "left") left;
          walk (child_path path "right") right
      | Ir.Division { dividend; divisor; _ } ->
          walk (child_path path "dividend") dividend;
          walk (child_path path "divisor") divisor
      | Ir.Choose { alternatives } ->
          List.iteri
            (fun i alt -> walk (child_path path (Printf.sprintf "alt%d" i)) alt)
            alternatives
      | Ir.Exchange { cfg; input }
      | Ir.Exchange_merge { cfg; input; _ }
      | Ir.Interchange { cfg; input }
      | Ir.Remote { cfg; input; _ } ->
          check_edge path cfg;
          walk path input
    in
    walk "" root
  end;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass 8: remote (network-distributed) exchange configuration         *)

(* A remote exchange ships packets over sockets from worker processes
   that arrive pre-sharded; the wire edge is a merge fed by one local
   feeder per worker.  Its legality conditions are its own:

   - the worker count IS the shard count — [Remote.slice] rewrites the
     subtree so worker [r] of [workers] produces what local producer
     rank [r] of a [workers]-wide group would, and the feeder array is
     sized by [cfg.degree]; the two must agree ([remote-workers]);
   - without flow slack the local port ring is unbounded, so
     backpressure never reaches the kernel socket buffer and a fast
     worker can run the consumer out of memory ([remote-flow-slack]);
   - the wire unit is the packetized batch — with the vectorized batch
     path disabled ([batch_size = 0]) every record is materialized
     individually before serialization ([remote-wire-batch]);
   - a partitioning spec on a remote edge repartitions at the exchange
     boundary: workers route rows to the [consumers] ranks of the
     enclosing group, so the spec must be expressible on the wire and
     sized to that group ([remote-partition-placement]), and a hash spec
     that cannot spread keys is a skew trap ([remote-repartition-skew]);
   - a sliced stored-table scan below a remote edge reads partition
     files by shard: the catalog's partition count must equal the worker
     count or shards read missing/foreign partitions
     ([remote-partition-placement]). *)
let remote_pass ?(batch_size = Volcano.Batch.default_size) root =
  let diags = ref [] in
  let err path code msg = diags := Diag.error ~code ~path msg :: !diags in
  let warn path code msg = diags := Diag.warning ~code ~path msg :: !diags in
  (* The catalog check walks a Remote's subtree exactly as [Remote.slice]
     rewrites it: through one-input operators and Interchange, stopping
     at nested exchange boundaries whose own groups govern what is
     below. *)
  let rec check_slices path workers node =
    match node with
    | Ir.Leaf { label; parts = Some parts; _ }
      when String.length label >= 11 && String.sub label 0 11 = "scan-slice:"
           && parts <> workers ->
        err
          (child_path path (Ir.label node))
          "remote-partition-placement"
          (Printf.sprintf
             "%s is partitioned %d ways but the remote edge runs %d \
              workers: shard k scans partition file k, so counts must \
              agree or shards read missing or foreign partitions"
             (String.sub label 11 (String.length label - 11))
             parts workers)
    | Ir.Leaf _ | Ir.Unresolved _ -> ()
    | Ir.Exchange _ | Ir.Exchange_merge _ | Ir.Remote _ -> ()
    | Ir.Filter { input; _ }
    | Ir.Project_cols { input; _ }
    | Ir.Project_exprs { input; _ }
    | Ir.Sort { input; _ }
    | Ir.Aggregate { input; _ }
    | Ir.Distinct { input; _ }
    | Ir.Limit { input; _ }
    | Ir.Interchange { input; _ } ->
        check_slices (child_path path (Ir.label node)) workers input
    | Ir.Match { left; right; _ }
    | Ir.Cross { left; right }
    | Ir.Theta_join { left; right; _ }
    | Ir.Union_all { left; right } ->
        let path = child_path path (Ir.label node) in
        check_slices (child_path path "left") workers left;
        check_slices (child_path path "right") workers right
    | Ir.Division { dividend; divisor; _ } ->
        let path = child_path path (Ir.label node) in
        check_slices (child_path path "dividend") workers dividend;
        check_slices (child_path path "divisor") workers divisor
    | Ir.Choose { alternatives } ->
        let path = child_path path (Ir.label node) in
        List.iteri
          (fun i alt ->
            check_slices (child_path path (Printf.sprintf "alt%d" i)) workers
              alt)
          alternatives
  in
  let check_repartition path (cfg : Ir.cfg) ~consumers =
    match cfg.partition with
    | Ir.Round_robin -> ()
    | _ when consumers <= 1 ->
        (* One consumer: every spec degenerates to a merge; nothing
           crosses the wire beyond what round-robin would send. *)
        ()
    | Ir.Custom ->
        err path "remote-partition-placement"
          "a custom partition closure cannot cross the process boundary \
           of a repartitioning remote edge; use hash or range \
           partitioning, which ship as data"
    | Ir.Broadcast ->
        err path "remote-partition-placement"
          "broadcast is not expressible on a remote edge: routed frames \
           carry one destination per packet; replicate below the edge or \
           use a local exchange"
    | Ir.Range_on (_, bounds) ->
        if bounds + 1 <> consumers then
          err path "remote-partition-placement"
            (Printf.sprintf
               "range repartitioning with %d bounds splits into %d \
                partitions but the edge feeds %d consumers; bounds must \
                number consumers - 1"
               bounds (bounds + 1) consumers)
    | Ir.Hash_on [] ->
        warn path "remote-repartition-skew"
          "hash repartitioning on no columns routes every row to one \
           consumer — the rest of the group idles; name the key columns"
    | Ir.Hash_on cols ->
        if List.length (List.sort_uniq compare cols) <> List.length cols then
          warn path "remote-repartition-skew"
            "hash repartitioning lists a column more than once: the \
             duplicate adds no spread and usually means a typo in the key"
  in
  let check path (cfg : Ir.cfg) workers task =
    if workers < 1 then
      err path "remote-workers"
        (Printf.sprintf
           "a remote exchange needs at least one worker process, got %d"
           workers)
    else if cfg.degree <> workers then
      err path "remote-workers"
        (Printf.sprintf
           "config degree %d disagrees with the worker count %d: workers \
            shard by their count while the local port forks one feeder per \
            config degree, so records would be lost or feeders starve"
           cfg.degree workers);
    if task = "" then
      err path "remote-workers"
        "the task string is empty; workers cannot resolve the shipped \
         subtree";
    (match cfg.flow_slack with
    | None ->
        warn path "remote-flow-slack"
          "wire edge without flow slack: the local port buffers every frame \
           the feeders pull, so backpressure never reaches the kernel \
           socket buffer and a fast worker can run the consumer out of \
           memory; set flow_slack to bound the edge"
    | Some _ -> ());
    if batch_size = 0 then
      warn path "remote-wire-batch"
        "the vectorized batch path is disabled (batch_size = 0) while this \
         plan ships batches over sockets; workers materialize every record \
         individually before serialization — set a positive batch size"
  in
  (* [group] is the size of the process group a node executes in — the
     consumer count a Remote at that position feeds.  The root runs solo;
     an exchange's producer subtree runs [cfg.degree] wide; Interchange
     stays in the same group. *)
  let rec walk prefix ~group node =
    let path = child_path prefix (Ir.label node) in
    match node with
    | Ir.Leaf _ | Ir.Unresolved _ -> ()
    | Ir.Filter { input; _ }
    | Ir.Project_cols { input; _ }
    | Ir.Project_exprs { input; _ }
    | Ir.Sort { input; _ }
    | Ir.Aggregate { input; _ }
    | Ir.Distinct { input; _ }
    | Ir.Limit { input; _ }
    | Ir.Interchange { input; _ } ->
        walk path ~group input
    | Ir.Exchange { cfg; input } | Ir.Exchange_merge { cfg; input; _ } ->
        walk path ~group:cfg.degree input
    | Ir.Match { left; right; _ }
    | Ir.Cross { left; right }
    | Ir.Theta_join { left; right; _ }
    | Ir.Union_all { left; right } ->
        walk (child_path path "left") ~group left;
        walk (child_path path "right") ~group right
    | Ir.Division { dividend; divisor; _ } ->
        walk (child_path path "dividend") ~group dividend;
        walk (child_path path "divisor") ~group divisor
    | Ir.Choose { alternatives } ->
        List.iteri
          (fun i alt ->
            walk (child_path path (Printf.sprintf "alt%d" i)) ~group alt)
          alternatives
    | Ir.Remote { cfg; workers; task; input } ->
        check path cfg workers task;
        check_repartition path cfg ~consumers:group;
        check_slices path workers input;
        (* The subtree still walks in full: a nested Remote below an
           exchange boundary is checked against its own group. *)
        walk path ~group:1 input
  in
  walk "" ~group:1 root;
  List.rev !diags

let analyze ?max_domains ?frames ?(workers = 0) ?oversub ?flow_budget
    ?batch_size root =
  Diag.sort
    (schema_pass root @ exchange_pass root @ deadlock_pass root
    @ resource_pass ?max_domains ?frames root
    @ sched_pass ?oversub ~workers root
    @ memory_pass ?flow_budget root
    @ batch_pass ?batch_size root
    @ remote_pass ?batch_size root)
