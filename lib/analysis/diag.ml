type severity = Error | Warning

type t = {
  severity : severity;
  code : string;
  path : string;
  message : string;
}

let error ~code ~path message = { severity = Error; code; path; message }
let warning ~code ~path message = { severity = Warning; code; path; message }

(* The stable code registry: every defect class the passes can emit, with
   its machine-readable VL number.  Hundreds digit = pass (1 schema,
   2 exchange, 3 deadlock, 4 resource, 5 scheduler/memory, 6 batch,
   7 remote); numbers are
   append-only — retired slugs keep their number reserved so external
   tooling keyed on [VLnnn] never sees a meaning change. *)
let registry =
  [
    ("schema-col", "VL101");
    ("schema-row-width", "VL102");
    ("schema-unknown-source", "VL103");
    ("schema-match-keys", "VL104");
    ("schema-union-arity", "VL105");
    ("schema-division-keys", "VL106");
    ("schema-limit", "VL107");
    ("schema-choose-empty", "VL108");
    ("schema-choose-arity", "VL109");
    ("schema-hash-empty", "VL110");
    ("exchange-degree", "VL201");
    ("exchange-packet-size", "VL202");
    ("exchange-flow-slack", "VL203");
    ("exchange-range-bounds", "VL204");
    ("merge-unsorted", "VL205");
    ("interchange-broadcast", "VL206");
    ("interchange-solo", "VL207");
    ("interchange-degree", "VL208");
    ("deadlock-broadcast-flow", "VL301");
    ("deadlock-merge-flow", "VL302");
    ("resource-domains", "VL401");
    ("resource-bufpool", "VL402");
    ("sched-dop", "VL501");
    ("mem-flow-slack", "VL502");
    ("batch-size", "VL601");
    ("batch-packet-mismatch", "VL602");
    ("remote-workers", "VL701");
    ("remote-flow-slack", "VL702");
    ("remote-wire-batch", "VL703");
    ("remote-partition-placement", "VL704");
    ("remote-repartition-skew", "VL705");
  ]

let vl_code d = List.assoc_opt d.code registry
let is_error d = d.severity = Error
let errors ds = List.filter is_error ds

let sort ds =
  let rank d = match d.severity with Error -> 0 | Warning -> 1 in
  List.stable_sort
    (fun a b ->
      match compare (rank a) (rank b) with
      | 0 -> (
          match String.compare a.path b.path with
          | 0 -> String.compare a.code b.code
          | c -> c)
      | c -> c)
    ds

let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_string d =
  let code =
    match vl_code d with
    | Some vl -> vl ^ " " ^ d.code
    | None -> d.code (* ad-hoc code: slug only *)
  in
  Printf.sprintf "%s[%s] at %s: %s"
    (severity_to_string d.severity)
    code d.path d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

let pp_report ppf = function
  | [] -> Format.fprintf ppf "no diagnostics@."
  | ds ->
      let ds = sort ds in
      List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
      let n_err = List.length (errors ds) in
      Format.fprintf ppf "%d error(s), %d warning(s)@." n_err
        (List.length ds - n_err)
