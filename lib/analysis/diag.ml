type severity = Error | Warning

type t = {
  severity : severity;
  code : string;
  path : string;
  message : string;
}

let error ~code ~path message = { severity = Error; code; path; message }
let warning ~code ~path message = { severity = Warning; code; path; message }
let is_error d = d.severity = Error
let errors ds = List.filter is_error ds

let sort ds =
  let rank d = match d.severity with Error -> 0 | Warning -> 1 in
  List.stable_sort
    (fun a b ->
      match compare (rank a) (rank b) with
      | 0 -> (
          match String.compare a.path b.path with
          | 0 -> String.compare a.code b.code
          | c -> c)
      | c -> c)
    ds

let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_string d =
  Printf.sprintf "%s[%s] at %s: %s"
    (severity_to_string d.severity)
    d.code d.path d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

let pp_report ppf = function
  | [] -> Format.fprintf ppf "no diagnostics@."
  | ds ->
      let ds = sort ds in
      List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
      let n_err = List.length (errors ds) in
      Format.fprintf ppf "%d error(s), %d warning(s)@." n_err
        (List.length ds - n_err)
