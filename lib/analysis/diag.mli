(** Structured diagnostics for the static plan analyzer.

    Every finding carries a severity, a stable machine-readable code (one
    per defect class, e.g. ["schema-col"] or ["deadlock-merge-flow"]), the
    path of the offending node in the plan tree (e.g.
    ["root/match/left/exchange"]), and a human-readable message.

    {!Analyze} produces these; [Compile.compile ~check:true] rejects plans
    whose diagnostics include an [Error]. *)

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;  (** stable defect-class identifier *)
  path : string;  (** plan-tree location, [/]-separated from the root *)
  message : string;
}

val error : code:string -> path:string -> string -> t
val warning : code:string -> path:string -> string -> t

val is_error : t -> bool

val errors : t list -> t list
(** The [Error]-severity subset, order preserved. *)

val sort : t list -> t list
(** Errors first, then by path, then by code — a stable presentation
    order. *)

val to_string : t -> string
(** One line: ["error[schema-col] at root/project: ..."]. *)

val pp : Format.formatter -> t -> unit

val pp_report : Format.formatter -> t list -> unit
(** All diagnostics, one per line, followed by an [N error(s), M
    warning(s)] summary line.  Prints [no diagnostics] for an empty
    list. *)
