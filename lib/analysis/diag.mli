(** Structured diagnostics for the static plan analyzer.

    Every finding carries a severity, a stable machine-readable code (one
    per defect class, e.g. ["schema-col"] or ["deadlock-merge-flow"]), the
    path of the offending node in the plan tree (e.g.
    ["root/match/left/exchange"]), and a human-readable message.

    {!Analyze} produces these; [Compile.compile ~check:true] rejects plans
    whose diagnostics include an [Error]. *)

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;  (** stable defect-class identifier *)
  path : string;  (** plan-tree location, [/]-separated from the root *)
  message : string;
}

val error : code:string -> path:string -> string -> t
val warning : code:string -> path:string -> string -> t

val registry : (string * string) list
(** Every registered defect-class slug paired with its stable numeric
    code ([("schema-col", "VL101")], ...).  The hundreds digit names the
    pass: 1 schema, 2 exchange configuration, 3 deadlock hazards,
    4 resource estimation, 5 scheduler placement and memory bounds,
    6 batch-size legality.  Append-only: a number is never reassigned. *)

val vl_code : t -> string option
(** The [VLnnn] number for a diagnostic's code, if registered.  Passes
    only emit registered codes; [None] can occur for ad-hoc diagnostics
    built by external callers. *)

val is_error : t -> bool

val errors : t list -> t list
(** The [Error]-severity subset, order preserved. *)

val sort : t list -> t list
(** Errors first, then by path, then by code — a stable presentation
    order. *)

val to_string : t -> string
(** One line: ["error[VL101 schema-col] at root/project: ..."] — the
    stable number first, then the slug (slug alone for unregistered
    codes). *)

val pp : Format.formatter -> t -> unit

val pp_report : Format.formatter -> t list -> unit
(** All diagnostics, one per line, followed by an [N error(s), M
    warning(s)] summary line.  Prints [no diagnostics] for an empty
    list. *)
