(** A closure-free mirror of the plan algebra, for static analysis.

    [Volcano_plan.Plan.t] carries closures (predicates, generators,
    decision functions) that an analyzer cannot inspect, and the plan
    library must be able to {e call} the analyzer before compiling — so
    the analyzer cannot depend on the plan library.  This IR breaks the
    cycle: [Volcano_plan.Lower] projects a plan onto this type, keeping
    exactly the structure static analysis needs — arities, column
    references extracted from expressions, sort keys, exchange
    configurations — and dropping the closures. *)

type partition =
  | Round_robin
  | Hash_on of int list
  | Range_on of int * int  (** partition column, number of split bounds *)
  | Custom  (** opaque user partitioner — nothing to check *)
  | Broadcast

(** Mirror of [Volcano.Exchange.config], minus the fork mode (irrelevant
    to analysis).  Mirrored rather than reused so that analysis also
    applies to configs built as record literals, bypassing the
    [Exchange.config] smart constructor's checks. *)
type cfg = {
  degree : int;
  packet_size : int;
  flow_slack : int option;
  partition : partition;
}

type direction = Asc | Desc

type sort_key = (int * direction) list

type algo = Sort_based | Hash_based

type t =
  | Leaf of {
      label : string;
      arity : int;
      rows : int option;  (** row count when statically known *)
      bad_rows : int;  (** literal tuples whose width contradicts [arity] *)
      parts : int option;
          (** for a partitioned stored-table leaf (scan-slice), the
              catalog's partition count — checked against the worker
              count by the remote-placement pass (VL704) *)
    }
  | Unresolved of { label : string }
      (** a scan of a table or index missing from the catalog *)
  | Filter of { cols : int list; input : t }
      (** [cols]: columns the predicate references *)
  | Project_cols of { cols : int list; input : t }
  | Project_exprs of { arity : int; cols : int list; input : t }
  | Sort of { key : sort_key; input : t }
  | Match of {
      algo : algo;
      kind : Volcano_ops.Match_op.kind;
      left_key : int list;
      right_key : int list;
      left : t;
      right : t;
    }
  | Cross of { left : t; right : t }
  | Theta_join of { cols : int list; left : t; right : t }
  | Aggregate of {
      algo : algo;
      group_by : int list;
      agg_cols : int list list;
      input : t;
    }  (** [agg_cols]: per aggregate, the columns its expression references *)
  | Distinct of { algo : algo; on : int list; input : t }
  | Division of {
      algo : [ `Hash | `Count | `Sort ];
      quotient : int list;
      divisor_attrs : int list;
      divisor_key : int list;
      dividend : t;
      divisor : t;
    }
  | Limit of { count : int; input : t }
  | Union_all of { left : t; right : t }
      (** bag concatenation: drains [left] to exhaustion, then [right];
          the fixed order means it can never close a §4.4 wait cycle *)
  | Choose of { alternatives : t list }
  | Exchange of { cfg : cfg; input : t }
  | Exchange_merge of { cfg : cfg; key : sort_key; input : t }
  | Interchange of { cfg : cfg; input : t }
  | Remote of { cfg : cfg; workers : int; task : string; input : t }
      (** network-distributed exchange: [workers] processes rebuild
          [input] from the opaque [task] string and stream packets back
          over sockets.  [input] is the shipped subtree — never compiled
          by the consumer process — kept here so schema inference can
          still see through the wire edge. *)

val label : t -> string
(** Short node name used in diagnostic paths ([filter], [match],
    [exchange-merge], a leaf's own label, ...). *)

val cols_of_num : Volcano_tuple.Expr.num -> int list
(** Columns referenced by a scalar expression, ascending, deduplicated. *)

val cols_of_pred : Volcano_tuple.Expr.pred -> int list
