(** Planlint: the multi-pass static analyzer over plan IR.

    Exchange's whole point is that single-process operators parallelize
    "without modifications" — which also means a mis-placed exchange, an
    out-of-range partition column, or a flow-controlled merge network
    fails only at runtime, deep inside a forked domain.  Dataflow-transfer
    mistakes are plan-structure properties; these passes check them before
    execution.  [Volcano_plan.Compile.compile ~check:true] (the default)
    rejects plans whose diagnostics include an [Error].

    The four passes:

    - {!schema_pass}: infers output arity bottom-up and checks every
      column reference — projections, predicate columns, match /
      aggregate / division / sort keys, partition columns — against the
      inferred input arity; match key lists must pair up; union-family
      matches and choose-plan alternatives must be width-compatible.
    - {!exchange_pass}: exchange configuration sanity ([degree >= 1],
      [packet_size] in 1..255 — the paper's one-byte field — positive
      flow slack, range-partition bound counts), exchange-merge
      sortedness (producers must emit streams sorted on the merge key),
      and interchange placement rules.
    - {!deadlock_pass}: the section 4.4 hazard class.  Keep-separate
      merge networks combined with flow control and several consumers,
      and broadcast-plus-flow-control wait cycles under operators with
      data-dependent input interleaving.  These are scheduling-dependent
      races, so they are reported as [Warning]s: the plan is hazardous,
      not provably wrong.
    - {!resource_pass}: estimates forked domains and concurrently fixed
      buffer pages against pool capacity and reports over-commit.

    Two scheduler-aware passes ride along when their inputs are known:

    - {!sched_pass}: degree-of-parallelism advisory ([sched-dop]) — the
      plan's total producer-task count against the worker pool size times
      an oversubscription factor.
    - {!memory_pass}: flow-control memory bound ([mem-flow-slack]) — the
      worst-case buffered-record count admitted by the plan's flow-slack
      settings against a configurable budget.

    Every code the passes emit is registered in {!Diag.registry} with a
    stable [VLnnn] number. *)

val schema_pass : Ir.t -> Diag.t list

val exchange_pass : Ir.t -> Diag.t list

val deadlock_pass : Ir.t -> Diag.t list

val resource_pass : ?max_domains:int -> ?frames:int -> Ir.t -> Diag.t list
(** [max_domains] bounds total producer domains the plan may fork
    (default 512).  [frames] is the buffer pool size; when given, the
    estimated concurrently-fixed page count is checked against it. *)

val sched_pass : ?oversub:int -> workers:int -> Ir.t -> Diag.t list
(** Warns ([sched-dop]) when the plan's concurrent producer-task count
    exceeds [oversub] (default 4) times [workers].  [workers] is the
    pool size; pass 0 for the dedicated (domain-per-task) scheduler,
    where the advisory does not apply and the pass is empty. *)

val memory_pass : ?flow_budget:int -> Ir.t -> Diag.t list
(** Warns ([mem-flow-slack]) when the worst-case record count buffered
    under flow control — summed over flow-controlled exchange edges,
    [degree x consumers x flow_slack x packet_size] each — exceeds
    [flow_budget] (default [2^20] records). *)

val batch_pass : ?batch_size:int -> Ir.t -> Diag.t list
(** Batch-size legality for the vectorized path.  Errors ([batch-size])
    when the knob fails {!Volcano.Batch.validate} — the same validation
    the runtime's [Batch.fused] applies, so planlint cannot drift from
    it.  Warns ([batch-packet-mismatch]) at each exchange edge whose
    port [packet_size] is smaller than the batch size: batches never
    cross an exchange edge unpacketized, so such an edge splits every
    batch on re-packetization.  [batch_size] defaults to
    {!Volcano.Batch.default_size}; 0 (batching disabled) checks
    nothing. *)

val remote_pass : ?batch_size:int -> Ir.t -> Diag.t list
(** Remote (network-distributed) exchange configuration.  Errors
    ([remote-workers]) when a [Remote] node's worker count is below one,
    disagrees with its config degree (the worker count is the shard
    count; the local port forks one feeder per degree), or ships an
    empty task string.  Warns ([remote-flow-slack]) on wire edges
    without flow slack — the local port ring is then unbounded and
    backpressure never reaches the kernel socket buffer — and
    ([remote-wire-batch]) when [batch_size] is 0 while the plan has wire
    edges, since the wire unit is the packetized batch. *)

val analyze :
  ?max_domains:int ->
  ?frames:int ->
  ?workers:int ->
  ?oversub:int ->
  ?flow_budget:int ->
  ?batch_size:int ->
  Ir.t ->
  Diag.t list
(** All passes, sorted errors-first (see {!Diag.sort}).  [workers]
    (default 0, meaning unknown/dedicated) enables {!sched_pass};
    [batch_size] (default {!Volcano.Batch.default_size}) parameterizes
    {!batch_pass}. *)
