module Rng = Volcano_util.Rng

type site =
  | Device_read
  | Device_write
  | Bufpool_fix
  | Port_send
  | Port_receive
  | Producer of int
  | Operator
  | Sched_task
  | Sched_park
  | Net_connect
  | Net_read
  | Net_write
  | Net_frame

let site_name = function
  | Device_read -> "device-read"
  | Device_write -> "device-write"
  | Bufpool_fix -> "bufpool-fix"
  | Port_send -> "port-send"
  | Port_receive -> "port-receive"
  | Producer rank -> Printf.sprintf "producer-%d" rank
  | Operator -> "operator"
  | Sched_task -> "sched-task"
  | Sched_park -> "sched-park"
  | Net_connect -> "net-connect"
  | Net_read -> "net-read"
  | Net_write -> "net-write"
  | Net_frame -> "net-frame"

type action = Fail | Delay of float
type trigger = At_hit of int | With_prob of float
type rule = { site : site; trigger : trigger; action : action }
type plan = { seed : int64; rules : rule list }

exception Injected of { site : site; hit : int }

let () =
  Printexc.register_printer (function
    | Injected { site; hit } ->
        Some
          (Printf.sprintf "Volcano_fault.Injected(site %s, hit %d)"
             (site_name site) hit)
    | _ -> None)

let no_plan = { seed = 0L; rules = [] }

let rule_to_string { site; trigger; action } =
  let trigger =
    match trigger with
    | At_hit n -> Printf.sprintf "at hit %d" n
    | With_prob p -> Printf.sprintf "with prob %.4f" p
  in
  let action =
    match action with
    | Fail -> "fail"
    | Delay d -> Printf.sprintf "delay %.4fs" d
  in
  Printf.sprintf "%s %s %s" action (site_name site) trigger

let plan_to_string { seed; rules } =
  Printf.sprintf "{seed=%Ld; %s}" seed
    (String.concat "; " (List.map rule_to_string rules))

(* A rule's decision at hit [k] is a pure function of (seed, rule index, k):
   reproducible regardless of how domains interleave their hits. *)
let decide ~seed ~rule_index ~hit p =
  let mixed =
    Int64.add seed
      (Int64.add
         (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (rule_index + 1)))
         (Int64.mul 0xBF58476D1CE4E5B9L (Int64.of_int hit)))
  in
  Rng.float (Rng.create mixed) 1.0 < p

let random_plan ~seed =
  let rng = Rng.create seed in
  let site () =
    match Rng.int rng 14 with
    | 0 -> Device_read
    | 1 -> Device_write
    | 2 -> Bufpool_fix
    | 3 -> Port_send
    | 4 -> Port_receive
    | 5 | 6 -> Producer (Rng.int rng 3)
    | 7 -> Sched_task
    | 8 -> Sched_park
    | 9 -> Net_connect
    | 10 -> Net_read
    | 11 -> Net_write
    | 12 -> Net_frame
    | _ -> Operator
  in
  let rule () =
    let site = site () in
    let trigger =
      if Rng.bool rng then At_hit (1 + Rng.int rng 400)
      else With_prob (0.0005 +. Rng.float rng 0.01)
    in
    let action =
      (* Mostly failures; delays shake out timing-dependent hangs. *)
      if Rng.int rng 4 = 0 then Delay (0.0001 +. Rng.float rng 0.002) else Fail
    in
    { site; trigger; action }
  in
  { seed; rules = List.init (1 + Rng.int rng 4) (fun _ -> rule ()) }

module Injector = struct
  type compiled = { rule : rule; index : int; count : int Atomic.t }

  type t = {
    seed : int64;
    rules : compiled list;
    n_hits : int Atomic.t;
    n_fired : int Atomic.t;
  }

  let make (plan : plan) =
    {
      seed = plan.seed;
      rules =
        List.mapi
          (fun index rule -> { rule; index; count = Atomic.make 0 })
          plan.rules;
      n_hits = Atomic.make 0;
      n_fired = Atomic.make 0;
    }

  let none = make no_plan
  let is_none t = match t.rules with [] -> true | _ :: _ -> false
  let fired t = Atomic.get t.n_fired
  let hits t = Atomic.get t.n_hits

  (* [hit] sits on per-record paths; the no-rules case must cost one
     branch, not a polymorphic comparison. *)
  let hit t site =
    match t.rules with
    | [] -> ()
    | rules ->
        List.iter
          (fun c ->
            if c.rule.site = site then begin
              Atomic.incr t.n_hits;
              let k = 1 + Atomic.fetch_and_add c.count 1 in
              let fires =
                match c.rule.trigger with
                | At_hit n -> k = n
                | With_prob p ->
                    decide ~seed:t.seed ~rule_index:c.index ~hit:k p
              in
              if fires then
                match c.rule.action with
                (* conclint: allow CL003 -- the injector's whole job is
                   to simulate slow I/O wherever the fault site lives,
                   fibers included; chaos tests opt into the stall. *)
                | Delay d -> Unix.sleepf d
                | Fail ->
                    Atomic.incr t.n_fired;
                    raise (Injected { site; hit = k })
            end)
          rules
end
