(** Fault injection.

    A {e fault plan} is a seedable, fully deterministic description of
    failures to inject at named {e sites} inside the engine: device I/O
    errors and latency, buffer-pool fix denial, packet-port send/receive
    delays, and producer-side exceptions at the Nth record.  The plan is
    compiled into an {!Injector.t} that the storage and exchange layers
    consult at each site ({!Injector.hit}); an injector built from the
    empty plan ({!Injector.none}) is free.

    Decisions are pure functions of [(plan seed, rule index, hit number)],
    so a failure observed under a given [(plan, fault-plan)] seed pair in
    the chaos harness reproduces from the printed seeds alone. *)

type site =
  | Device_read  (** before a page read transfers *)
  | Device_write  (** before a page write transfers *)
  | Bufpool_fix  (** before a fix/fix_new touches pool state (fix denial) *)
  | Port_send  (** before a packet is inserted into a port *)
  | Port_receive  (** before a consumer blocks on a port queue *)
  | Producer of int
      (** in the exchange producer of this rank, once per record *)
  | Operator  (** once per [next] call of every compiled operator *)
  | Sched_task  (** at the start of a scheduled producer task *)
  | Sched_park
      (** before a blocked port wait yields its pool worker (or parks) *)
  | Net_connect  (** before a transport connection is established *)
  | Net_read  (** before a frame read transfers from the socket *)
  | Net_write  (** before a frame write transfers to the socket *)
  | Net_frame  (** after a frame header is read (truncates the payload) *)

val site_name : site -> string

type action =
  | Fail  (** raise {!Injected} at the site *)
  | Delay of float  (** sleep this many seconds at the site *)

type trigger =
  | At_hit of int  (** fire on exactly the Nth hit of the rule's site *)
  | With_prob of float  (** fire each hit with this probability *)

type rule = { site : site; trigger : trigger; action : action }
type plan = { seed : int64; rules : rule list }

exception Injected of { site : site; hit : int }
(** The injected failure: [site] is where it fired, [hit] is the matching
    rule's hit count at that moment. *)

val no_plan : plan
(** The empty plan (no rules; injects nothing). *)

val plan_to_string : plan -> string
(** Human-readable plan, printed by the chaos harness for reproduction. *)

val random_plan : seed:int64 -> plan
(** Deterministic random plan for the chaos harness: 1-4 rules over all
    sites, mixing one-shot counted failures, low-probability failures, and
    sub-millisecond delays. *)

module Injector : sig
  type t

  val none : t
  (** Injects nothing; site consultations are a single list check. *)

  val make : plan -> t
  val is_none : t -> bool

  val hit : t -> site -> unit
  (** Consult the injector at a site: count the hit against every matching
      rule, sleep on a fired [Delay], raise {!Injected} on a fired [Fail]. *)

  val fired : t -> int
  (** Number of [Fail] actions raised so far. *)

  val hits : t -> int
  (** Total site consultations that matched at least one rule. *)
end
